# Development entry points; CI (.github/workflows/ci.yml) runs the same
# build/vet/fmt/race sequence as `make check`.

GO ?= go

.PHONY: all build test race vet fmt check smoke serve-smoke fleet-smoke recovery-smoke overload-smoke faults margins degrade fuzz bench bench-check bench-serve

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

check: build vet fmt race

# The paper-vs-measured reproduction record at full sample size.
smoke:
	$(GO) test -run TestReproduction -count=1 ./internal/experiment/

# Black-box smoke of the planning service: start cmd/pland, plan a
# generated workload (cold build + cache hit), check /metrics, and
# verify SIGTERM drains cleanly.
serve-smoke:
	sh scripts/serve-smoke.sh

# Black-box smoke of the pland fleet: three peers under a chaos
# scenario, one killed mid-load, Mandatory availability must hold at
# 99% and repeated fingerprints must not re-build fleet-wide.
fleet-smoke:
	sh scripts/fleet-smoke.sh

# Crash-recovery smoke: three peers with durable snapshots and warm
# fill, one killed with -9 mid-load and restarted against its snapshot.
# Mandatory availability must hold at 99% and the restarted peer must
# serve its hot keys without a single cold rebuild.
recovery-smoke:
	sh scripts/recovery-smoke.sh

# Overload smoke: three peers driven far past their sustainable rate
# with fresh workloads. Mandatory availability must hold at 99% with
# zero outright failures, the brownout ladder must visibly serve
# degraded plans during the storm, and every peer must walk back to
# full quality once it passes.
overload-smoke:
	sh scripts/overload-smoke.sh

# Graceful-degradation curves under injected faults (robustness study).
faults:
	$(GO) run ./cmd/sweep -study faults

# Robustness margins: breakdown factors, estimation-error sweep, and
# adaptive re-slicing, checkpointed so an interrupted run can resume.
# Small sample so the smoke run stays in CI budget; see EXPERIMENTS.md
# for the 256-graph table.
margins:
	$(GO) run ./cmd/sweep -study margins -graphs 32 -checkpoint margins.jsonl

# Graceful degradation: achieved value vs fault intensity on
# mixed-criticality workloads, across the degradation policies. Small
# sample and a per-workload budget so the smoke run stays in CI budget;
# see EXPERIMENTS.md for the 256-graph table.
degrade:
	$(GO) run ./cmd/sweep -study degrade -graphs 24 -wtimeout 30s

# Pipeline-core performance baseline: runs the benchmark suite and
# refreshes the checked-in BENCH_pipeline.json (cold vs cached builds,
# fingerprint cost, and the breakdown bisection with the plan cache off
# and on).
bench:
	$(GO) run ./cmd/benchpipe -o BENCH_pipeline.json

# Performance gate: re-runs the suite and fails if cold builds or
# incremental rebuilds regressed more than 20% (time or allocations)
# against the checked-in BENCH_pipeline.json.
bench-check:
	sh scripts/bench-check.sh

# Serving-layer baseline: refreshes the checked-in BENCH_serve.json by
# driving a 3-peer fleet (snapshots + warm fill on) through the 30 s
# single-peer blackout scenario for 40 s.
bench-serve:
	sh scripts/bench-serve.sh

# Native fuzzers: the checkpoint-journal parser, the workload reader
# (plain and release-aware), and the chaos scenario parser, each
# briefly past their checked-in seed corpora.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzParseJournal$$' -fuzztime=10s ./internal/experiment/
	$(GO) test -run='^$$' -fuzz='^FuzzReadWorkload$$' -fuzztime=10s ./internal/graphio/
	$(GO) test -run='^$$' -fuzz='^FuzzReadWorkloadRelease$$' -fuzztime=10s ./internal/graphio/
	$(GO) test -run='^$$' -fuzz='^FuzzParseScenario$$' -fuzztime=10s ./internal/chaos/
