#!/bin/sh
# Crash-recovery smoke of the pland fleet: boot three peers with
# durable cache snapshots and warm fill enabled, drive them with
# cmd/loadgen, kill -9 one peer mid-load, restart it against the same
# snapshot file, and assert that recovery was warm — Mandatory
# availability held >= 99%, the fleet paid zero recovery rebuilds, and
# the restarted peer served its hot keys without one cold build. Exits
# non-zero on the first broken contract.
set -eu

fail() { echo "recovery-smoke: $1" >&2; exit 1; }

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pland" ./cmd/pland
go build -o "$tmp/loadgen" ./cmd/loadgen

peers="p0=http://127.0.0.1:18190,p1=http://127.0.0.1:18191,p2=http://127.0.0.1:18192"
boot() {
    i=$1
    "$tmp/pland" -addr "127.0.0.1:1819$i" -peers "$peers" -self "p$i" \
        -snapshot "$tmp/p$i.snap" -snapshot-interval 2s \
        -warm-fill -warm-fill-interval 500ms -probe-interval 200ms \
        2>>"$tmp/p$i.log" &
    eval "pid$i=$!"
    pids="$pids $!"
}
for i in 0 1 2; do boot "$i"; done

for i in 0 1 2; do
    j=0
    until curl -fsS "http://127.0.0.1:1819$i/healthz" >/dev/null 2>&1; do
        j=$((j + 1))
        [ "$j" -ge 100 ] && { cat "$tmp/p$i.log" >&2; fail "p$i never became healthy"; }
        sleep 0.1
    done
done

"$tmp/loadgen" -peers "$peers" -duration 18s -concurrency 8 -workloads 12 \
    -optional-frac 0.25 -min-mandatory-availability 0.99 \
    -out "$tmp/bench.json" 2>"$tmp/loadgen.log" &
lg=$!
pids="$pids $lg"

# Hard-kill one peer mid-load — no drain, no final snapshot, so
# recovery must come from the periodic snapshot and the other peers'
# warm copies — then restart it against the same snapshot file.
sleep 6
kill -9 "$pid2"
sleep 3
boot 2

wait "$lg" || { cat "$tmp/loadgen.log" >&2; fail "mandatory availability fell below 99% (or loadgen broke)"; }

# Recovery rebuilds are cold builds beyond one per distinct
# fingerprint; snapshots + warm fill must hold them at zero.
rebuilds=$(awk -F'[:,]' '/"recoveryRebuilds"/{gsub(/ /,"",$2); print $2; exit}' "$tmp/bench.json")
[ "${rebuilds%.*}" -eq 0 ] || fail "fleet paid $rebuilds recovery rebuilds; want 0"

grep -q "restored" "$tmp/p2.log" || { cat "$tmp/p2.log" >&2; fail "restarted p2 never restored its snapshot"; }

# The restarted peer's hot keys all came back via snapshot + warm
# fill: it served post-restart traffic without a single cold build.
metrics=$(curl -fsS "http://127.0.0.1:18192/metrics")
builds=$(printf '%s\n' "$metrics" | awk '/^pland_builds_total /{print $2}')
[ "${builds:-1}" -eq 0 ] || fail "restarted p2 cold-built $builds plans; want 0"
restored=$(printf '%s\n' "$metrics" | awk '/^pland_snapshot_loaded_plans_total /{print $2}')
pulled=$(printf '%s\n' "$metrics" | awk '/^pland_warmfill_pulled_total /{print $2}')
[ $(( ${restored:-0} + ${pulled:-0} )) -gt 0 ] || fail "restarted p2 recovered nothing (restored=${restored:-0} pulled=${pulled:-0})"

kill -TERM "$pid0" "$pid1" "$pid2" 2>/dev/null || true
wait "$pid0" "$pid1" "$pid2" 2>/dev/null || true
pids=""
grep -q "drained" "$tmp/p2.log" || fail "restarted p2 did not drain cleanly: $(cat "$tmp/p2.log")"

echo "recovery-smoke: ok (availability held through kill -9; recoveryRebuilds=${rebuilds%.*}, p2 post-restart builds=$builds, restored=${restored:-0}, pulled=${pulled:-0})"
