#!/bin/sh
# Black-box smoke of the planning service (cmd/pland): build it, start
# it, plan a generated workload twice (cold build, then cache hit),
# check the /metrics accounting, and verify SIGTERM drains cleanly.
# Exits non-zero on the first broken contract.
set -eu

fail() { echo "serve-smoke: $1" >&2; exit 1; }

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pland" ./cmd/pland
go run ./cmd/taskgen -m 4 -seed 7 -out - >"$tmp/workload.json"

addr=127.0.0.1:18080
"$tmp/pland" -addr "$addr" 2>"$tmp/log" &
pid=$!

# Wait for the health endpoint.
i=0
until curl -fsS "http://$addr/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { cat "$tmp/log" >&2; fail "server never became healthy"; }
    sleep 0.1
done

# First plan: a cold build with a verdict.
curl -fsS -X POST --data-binary @"$tmp/workload.json" \
    "http://$addr/plan?metric=ADAPT-L" >"$tmp/plan1.json" \
    || fail "plan request failed"
grep -q '"feasible"' "$tmp/plan1.json" || fail "plan response has no verdict: $(cat "$tmp/plan1.json")"

# Second identical plan: served from the shared cache.
curl -fsS -X POST --data-binary @"$tmp/workload.json" \
    "http://$addr/plan?metric=ADAPT-L" >"$tmp/plan2.json" \
    || fail "second plan request failed"
cmp -s "$tmp/plan1.json" "$tmp/plan2.json" || fail "cached plan differs from the cold build"

curl -fsS "http://$addr/metrics" >"$tmp/metrics"
grep -q '^pland_builds_total 1$' "$tmp/metrics" \
    || fail "expected exactly one cold build; metrics: $(grep ^pland_ "$tmp/metrics")"
grep -q '^pland_cache_hits_total 1$' "$tmp/metrics" \
    || fail "expected one cache hit; metrics: $(grep ^pland_ "$tmp/metrics")"

# SIGTERM drains: the process exits 0 and logs the drain.
kill -TERM "$pid"
wait "$pid" || fail "pland exited non-zero on SIGTERM: $(cat "$tmp/log")"
pid=""
grep -q "drained" "$tmp/log" || fail "drain not logged: $(cat "$tmp/log")"

echo "serve-smoke: ok"
