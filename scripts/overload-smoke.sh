#!/bin/sh
# Overload smoke of the pland fleet: boot three peers with one planning
# slot each and a tight queue-delay target, warm a small working set,
# then offer fresh never-repeated workloads open-loop at far past the
# sustainable rate. The contract under test is graceful degradation:
# Mandatory availability holds >= 99% (a 429/503 with Retry-After is an
# honest answer; a timeout or 5xx crash is not), no request fails
# outright, the brownout ladder visibly engages (degraded-quality plans
# are served), and once the storm passes every peer walks back to full
# quality on its own. Exits non-zero on the first broken contract.
set -eu

fail() { echo "overload-smoke: $1" >&2; exit 1; }

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pland" ./cmd/pland
go build -o "$tmp/loadgen" ./cmd/loadgen

# The cheap rung sits *below* the admission target on purpose: the
# AIMD admission controller sheds to hold worst-window sojourn near
# the target, so a rung above it only trips during violent transients.
# With cheap < target, any storm the admission controller is actively
# riding also demotes cold builds — degrade quality before (not
# instead of) shedding load.
peers="p0=http://127.0.0.1:18380,p1=http://127.0.0.1:18381,p2=http://127.0.0.1:18382"
for i in 0 1 2; do
    "$tmp/pland" -addr "127.0.0.1:1838$i" -peers "$peers" -self "p$i" \
        -inflight 1 -queue 64 \
        -admit-target 5ms -admit-window 100ms \
        -brownout-cheap 3ms -brownout-cache-only 40ms \
        -probe-interval 200ms 2>>"$tmp/p$i.log" &
    pids="$pids $!"
done

for i in 0 1 2; do
    j=0
    until curl -fsS "http://127.0.0.1:1838$i/healthz" >/dev/null 2>&1; do
        j=$((j + 1))
        [ "$j" -ge 100 ] && { cat "$tmp/p$i.log" >&2; fail "p$i never became healthy"; }
        sleep 0.1
    done
done

# Phase 1+2 in one loadgen run: a short closed-loop warmup over a small
# cycled set, then 2x-plus the sustainable rate of fresh fingerprints
# (every one a cold build) for 6 s. loadgen itself enforces the 99%
# mandatory bar for both phases. The storm is calibrated against the
# fleet as of the zero-alloc cold path: fresh 120-task cold builds run
# ~1 ms end to end, and 1200/s of them keeps three one-slot peers'
# worst-window sojourn pinned above the cheap rung without flapping
# the health probes (rates past ~2x this start timing probes out and
# turn honest sheds into hard failures).
"$tmp/loadgen" -peers "$peers" -duration 4s -concurrency 4 -workloads 12 \
    -tasks 120 -optional-frac 0.25 \
    -overload-rate 1200 -overload-duration 6s -max-outstanding 400 \
    -min-mandatory-availability 0.99 \
    -out "$tmp/overload.json" 2>"$tmp/loadgen.log" \
    || { cat "$tmp/loadgen.log" >&2; fail "availability fell below 99% under overload (or loadgen broke)"; }

# Zero requests failed outright: every tier's "failed" count — main and
# overload phase, mandatory and optional — must be 0. Shed is fine;
# failed is a broken contract.
failed=$(awk '/^[[:space:]]*"failed":/ {gsub(/[^0-9]/,""); s += $0} END {print s+0}' "$tmp/overload.json")
[ "$failed" -eq 0 ] || fail "$failed requests failed outright under overload; want 0"

# The brownout ladder engaged: the fleet served degraded-quality plans
# during the storm.
degraded=$(awk '/^[[:space:]]*"plansDegraded":/ {gsub(/[^0-9.]/,""); s += $0} END {print int(s)}' "$tmp/overload.json")
[ "$degraded" -gt 0 ] || { cat "$tmp/overload.json" >&2; fail "no degraded plans served; brownout never engaged"; }

# Hysteretic recovery: with the storm over, every peer's ladder must
# walk back to full service (pland_brownout_level 0) on its own.
j=0
while :; do
    levels=""
    for i in 0 1 2; do
        l=$(curl -fsS "http://127.0.0.1:1838$i/metrics" | awk '/^pland_brownout_level /{print $2}')
        levels="$levels ${l:-?}"
    done
    [ "$levels" = " 0 0 0" ] && break
    j=$((j + 1))
    [ "$j" -ge 100 ] && fail "brownout levels never recovered to 0 (levels:$levels)"
    sleep 0.2
done

# And the recovered fleet serves at full quality again: a calm re-run
# over the warmed set must come back 100% ok with zero degraded answers.
"$tmp/loadgen" -peers "$peers" -duration 3s -concurrency 2 -workloads 12 \
    -tasks 120 -optional-frac 0.25 -min-mandatory-availability 0.99 \
    -out "$tmp/calm.json" 2>>"$tmp/loadgen.log" \
    || { cat "$tmp/loadgen.log" >&2; fail "post-recovery availability fell below 99%"; }
calm_degraded=$(awk '/^[[:space:]]*"degraded":/ {gsub(/[^0-9]/,""); s += $0} END {print s+0}' "$tmp/calm.json")
[ "$calm_degraded" -eq 0 ] || fail "recovered fleet still served $calm_degraded degraded answers; want 0"

shed=$(awk '/^[[:space:]]*"shed":/ {gsub(/[^0-9]/,""); s += $0} END {print s+0}' "$tmp/overload.json")
echo "overload-smoke: ok (failed=0, shed=$shed, degraded plans=$degraded during the storm, 0 after recovery; brownout walked back to level 0 on all peers)"
