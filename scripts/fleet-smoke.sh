#!/bin/sh
# Black-box smoke of the pland fleet: boot three peers with a chaos
# scenario armed (injected latency and 503s), drive them with
# cmd/loadgen, SIGTERM one peer mid-load, and assert that Mandatory
# requests kept >= 99% availability and that repeated fingerprints did
# not re-build across the fleet. Exits non-zero on the first broken
# contract.
set -eu

fail() { echo "fleet-smoke: $1" >&2; exit 1; }

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pland" ./cmd/pland
go build -o "$tmp/loadgen" ./cmd/loadgen

peers="p0=http://127.0.0.1:18180,p1=http://127.0.0.1:18181,p2=http://127.0.0.1:18182"
for i in 0 1 2; do
    "$tmp/pland" -addr "127.0.0.1:1818$i" -peers "$peers" -self "p$i" \
        -chaos scripts/chaos-smoke.json 2>"$tmp/p$i.log" &
    eval "pid$i=$!"
    pids="$pids $!"
done

for i in 0 1 2; do
    j=0
    until curl -fsS "http://127.0.0.1:1818$i/healthz" >/dev/null 2>&1; do
        j=$((j + 1))
        [ "$j" -ge 100 ] && { cat "$tmp/p$i.log" >&2; fail "p$i never became healthy"; }
        sleep 0.1
    done
done

"$tmp/loadgen" -peers "$peers" -duration 12s -concurrency 8 -workloads 12 \
    -optional-frac 0.25 -min-mandatory-availability 0.99 \
    -out "$tmp/bench.json" 2>"$tmp/loadgen.log" &
lg=$!
pids="$pids $lg"

# One peer dies mid-load, under chaos; the fleet must route around it.
sleep 4
kill -TERM "$pid2"

wait "$lg" || { cat "$tmp/loadgen.log" >&2; fail "mandatory availability fell below 99% (or loadgen broke)"; }

# Repeated fingerprints must not re-build: each peer's cache and
# singleflight build a given fingerprint at most once per process, so
# fleet-wide cold builds are bounded by workloads x peers (36) even
# when chaos and the kill migrate keys — while request volume is in
# the thousands.
builds=$(awk -F'[:,]' '/"builds"/{gsub(/ /,"",$2); print $2; exit}' "$tmp/bench.json")
[ "${builds%.*}" -le 36 ] || fail "fleet built $builds plans for 12 distinct workloads across 3 peers"

kill -TERM "$pid0" "$pid1" 2>/dev/null || true
wait "$pid0" "$pid1" 2>/dev/null || true
pids=""
grep -q "drained" "$tmp/p0.log" || fail "p0 did not drain cleanly: $(cat "$tmp/p0.log")"

echo "fleet-smoke: ok (mandatory availability held under chaos + peer kill; builds=$builds)"
