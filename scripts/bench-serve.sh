#!/bin/sh
# Regenerates the checked-in BENCH_serve.json: a 3-peer pland fleet
# with durable snapshots and warm fill, every peer armed with the
# blackout chaos scenario (p1 goes dark for 30 s mid-run, everyone
# jitters), driven by cmd/loadgen for 40 s. With the recovery layer on,
# the report should show recoveryRebuilds 0 and mandatory availability
# 1.0 — the blackout is absorbed by pre-positioned standby copies and
# hinted handoff instead of cold rebuilds.
#
# A second phase then offers fresh never-repeated workloads open-loop
# past the sustainable rate; the report's "overload" section records
# the shed/degraded/full-quality breakdown and the fleet's brownout
# counters — availability holds through the storm by degrading, not
# failing.
set -eu

out=${1:-BENCH_serve.json}

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    # Let the peers finish draining (final snapshot saves write into
    # $tmp) before removing it.
    for p in $pids; do wait "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pland" ./cmd/pland
go build -o "$tmp/loadgen" ./cmd/loadgen

peers="p0=http://127.0.0.1:18280,p1=http://127.0.0.1:18281,p2=http://127.0.0.1:18282"
for i in 0 1 2; do
    "$tmp/pland" -addr "127.0.0.1:1828$i" -peers "$peers" -self "p$i" \
        -chaos scripts/chaos-blackout.json \
        -inflight 2 -admit-target 5ms -admit-window 100ms \
        -brownout-cheap 10ms -brownout-cache-only 40ms \
        -snapshot "$tmp/p$i.snap" -snapshot-interval 5s \
        -warm-fill -warm-fill-interval 500ms -probe-interval 200ms \
        2>"$tmp/p$i.log" &
    pids="$pids $!"
done

for i in 0 1 2; do
    j=0
    until curl -fsS "http://127.0.0.1:1828$i/healthz" >/dev/null 2>&1; do
        j=$((j + 1))
        [ "$j" -ge 100 ] && { cat "$tmp/p$i.log" >&2; echo "bench-serve: p$i never became healthy" >&2; exit 1; }
        sleep 0.1
    done
done

"$tmp/loadgen" -peers "$peers" -duration 40s -concurrency 8 -workloads 12 \
    -optional-frac 0.25 -seed 1 -min-mandatory-availability 0.99 \
    -tasks 40 -overload-rate 300 -overload-duration 8s -max-outstanding 200 \
    -out "$out"

echo "bench-serve: wrote $out"
