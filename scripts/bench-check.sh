#!/bin/sh
# bench-check: the CI performance gate for the pipeline core.
#
# Re-runs the benchpipe suite and fails if the cold-build or
# incremental-rebuild benchmarks regressed more than 20% in ns/op or
# allocs/op against the checked-in baseline (BENCH_pipeline.json).
# Each benchmark keeps the fastest of three runs on both sides of the
# comparison, so scheduling noise on a shared runner does not trip the
# gate. Refresh the baseline with `make bench` after an intentional
# performance change.
set -eu

cd "$(dirname "$0")/.."

baseline="${1:-BENCH_pipeline.json}"
if [ ! -f "$baseline" ]; then
    echo "bench-check: baseline $baseline not found (run 'make bench' first)" >&2
    exit 1
fi

exec go run ./cmd/benchpipe -check "$baseline"
