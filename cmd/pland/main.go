// Command pland serves the planning pipeline over HTTP/JSON.
//
//	go run ./cmd/pland -addr :8080
//
// POST a workload file (the cmd/taskgen format) to /plan and get the
// plan verdict, the per-task windows, and the schedule back:
//
//	go run ./cmd/taskgen -tasks 20 -procs 4 -out - |
//	    curl -sS -X POST --data-binary @- 'localhost:8080/plan?metric=ADAPT-L'
//
// Query parameters: metric (PURE, NORM, ADAPT-G, ADAPT-L, ...), wcet
// (WCET-AVG, WCET-MAX, WCET-MIN), dispatcher (time-driven, planner,
// insertion, preemptive), verify (1 adds the feasibility verifier), and
// timeout (a per-request planning budget like 500ms).
//
// /healthz answers 200 while serving and 503 while draining; /metrics
// exports the pipeline and admission aggregates in the Prometheus text
// format. On SIGINT/SIGTERM the server drains: new work is refused,
// in-flight plans finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pland:", err)
		os.Exit(1)
	}
}

// run is main under a caller-owned context and log sink, so tests can
// drive the full lifecycle including drain.
func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("pland", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8080", "listen address")
	cacheCap := fs.Int("cache", 4096, "plan cache capacity (entries)")
	inflight := fs.Int("inflight", 0, "max concurrently planning requests (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "max requests waiting for a planning slot before shedding with 429")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request planning budget")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "cap on client-requested budgets")
	drainWait := fs.Duration("drain", 30*time.Second, "max wait for in-flight plans on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := server.New(server.Options{
		MaxInFlight:    *inflight,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CacheCapacity:  *cacheCap,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "pland: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: refuse new work, let in-flight plans finish, then exit.
	fmt.Fprintf(logw, "pland: draining (up to %v)\n", *drainWait)
	srv.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(logw, "pland: drained, bye")
	return nil
}
