// Command pland serves the planning pipeline over HTTP/JSON.
//
//	go run ./cmd/pland -addr :8080
//
// POST a workload file (the cmd/taskgen format) to /plan and get the
// plan verdict, the per-task windows, and the schedule back:
//
//	go run ./cmd/taskgen -tasks 20 -procs 4 -out - |
//	    curl -sS -X POST --data-binary @- 'localhost:8080/plan?metric=ADAPT-L'
//
// Query parameters: metric (PURE, NORM, ADAPT-G, ADAPT-L, ...), wcet
// (WCET-AVG, WCET-MAX, WCET-MIN), dispatcher (time-driven, planner,
// insertion, preemptive), verify, and timeout (a per-request planning
// budget like 500ms). verify selects how the plan is checked before it
// is served: "feas" (or the historical "1") runs the necessary-condition
// checks, "analytic" proves deadlines met by holistic response-time
// analysis (time-driven dispatcher only), "replay" simulates the
// schedule, and "analytic-first" takes the analytic proof and falls back
// to replay when it is inconclusive. The verdict comes back in the
// response's "proof" field and in pland_verify_total{mode,outcome}; the
// -verify flag sets the default mode for requests that do not ask.
//
// /healthz answers 200 while serving and 503 while draining; /metrics
// exports the pipeline and admission aggregates in the Prometheus text
// format. On SIGINT/SIGTERM the server drains: new work is refused,
// in-flight plans finish, then the process exits.
//
// Fleet mode: -peers lists every pland node ("p0=http://a:8080,p1=...")
// and -self names this one. Each node then routes a request to its
// workload fingerprint's ring owner through the retry/hedge/breaker
// client, probes its peers' /healthz, and routes around the dead ones.
// Requests may carry X-Plan-Criticality: under queue pressure the
// server sheds "optional" work before "mandatory".
//
// Overload: past criticality shedding, an adaptive admission
// controller (-admit-target, -admit-window) watches queue delay and
// thins admitted load when it stays over target, while a brownout
// ladder (-brownout-cheap, -brownout-cache-only) first degrades cold
// builds to a cheap configuration and then serves cached plans only,
// instead of failing outright; every 200 carries its served quality in
// X-Plan-Quality. POST /plan/batch (capped by -max-batch) plans many
// workloads under the same shared admission budget and returns
// per-item outcomes.
//
// -chaos loads a fault-injection scenario (internal/chaos JSON) and
// wraps both the serving handler and the fleet client with it, for
// resilience drills like scripts/fleet-smoke.sh.
//
// Recovery: -snapshot names a cache snapshot file — loaded on start,
// saved every -snapshot-interval and again on drain — so a killed and
// restarted pland serves its previous hot set warm. In fleet mode,
// -warm-fill additionally replicates each hot plan onto its ring owner
// and first standby every -warm-fill-interval (peers pull from each
// other's /cache/digest), and a peer that served keys for an
// unreachable owner pushes them back when the owner returns (hinted
// handoff), so neither a blackout nor a restart forces cold rebuilds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/cluster/client"
	"repro/internal/server"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pland:", err)
		os.Exit(1)
	}
}

// run is main under a caller-owned context and log sink, so tests can
// drive the full lifecycle including drain.
func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("pland", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8080", "listen address")
	cacheCap := fs.Int("cache", 4096, "plan cache capacity (entries)")
	inflight := fs.Int("inflight", 0, "max concurrently planning requests (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "max requests waiting for a planning slot before shedding with 429")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request planning budget")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "cap on client-requested budgets")
	drainWait := fs.Duration("drain", 30*time.Second, "max wait for in-flight plans on shutdown")
	peersSpec := fs.String("peers", "", "fleet peer list (name=url,... or url,...); empty runs a single node")
	selfName := fs.String("self", "", "this process's peer name in -peers (required in fleet mode)")
	chaosPath := fs.String("chaos", "", "chaos scenario file; injects faults into the server and fleet client")
	hedgeAfter := fs.Duration("hedge-after", 100*time.Millisecond, "hedge a proxied request to the next peer after this wait (0 disables)")
	probeEvery := fs.Duration("probe-interval", 500*time.Millisecond, "peer /healthz probe interval in fleet mode")
	snapPath := fs.String("snapshot", "", "cache snapshot file: loaded on start, saved periodically and on drain (empty disables)")
	snapEvery := fs.Duration("snapshot-interval", 30*time.Second, "background cache snapshot interval")
	warmFill := fs.Bool("warm-fill", false, "pull hot plans from ring neighbors (owner+standby replication) and push hinted handoffs; fleet mode only")
	warmEvery := fs.Duration("warm-fill-interval", 2*time.Second, "warm-fill round interval")
	admitTarget := fs.Duration("admit-target", 25*time.Millisecond, "queue-delay target for adaptive admission (negative disables the controller)")
	admitWindow := fs.Duration("admit-window", 250*time.Millisecond, "adaptive-admission measurement window")
	brownCheap := fs.Duration("brownout-cheap", 0, "queue delay that engages cheap builds (0 = 2x admit-target)")
	brownCacheOnly := fs.Duration("brownout-cache-only", 0, "queue delay that engages cache-only serving (0 = 8x admit-target)")
	maxBatch := fs.Int("max-batch", 256, "max workload items accepted in one POST /plan/batch")
	verifyDefault := fs.String("verify", "", "default verification mode for requests without ?verify= (off, feas, analytic, replay, analytic-first)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *warmFill && *peersSpec == "" {
		return errors.New("-warm-fill needs fleet mode (-peers and -self)")
	}
	if err := server.CheckVerifyMode(*verifyDefault); err != nil {
		return fmt.Errorf("-verify: %w", err)
	}

	var inj *chaos.Injector
	if *chaosPath != "" {
		sc, err := chaos.LoadScenario(*chaosPath)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		name := *selfName
		if name == "" {
			name = "pland"
		}
		inj = chaos.NewInjector(sc, name)
		fmt.Fprintf(logw, "pland: chaos scenario %s armed for peer %s\n", *chaosPath, name)
	}

	opt := server.Options{
		MaxInFlight:         *inflight,
		MaxQueue:            *queue,
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTimeout,
		CacheCapacity:       *cacheCap,
		AdmitTarget:         *admitTarget,
		AdmitWindow:         *admitWindow,
		BrownoutCheapAt:     *brownCheap,
		BrownoutCacheOnlyAt: *brownCacheOnly,
		MaxBatchItems:       *maxBatch,
		DefaultVerify:       *verifyDefault,
	}
	var ring *cluster.Ring
	if *peersSpec != "" {
		peers, err := cluster.ParsePeers(*peersSpec)
		if err != nil {
			return fmt.Errorf("-peers: %w", err)
		}
		ring, err = cluster.NewRing(peers)
		if err != nil {
			return fmt.Errorf("-peers: %w", err)
		}
		if *selfName == "" {
			return errors.New("-peers needs -self (this node's peer name)")
		}
		if ring.ByName(*selfName) == nil {
			return fmt.Errorf("-self %q is not in -peers", *selfName)
		}
		var transport http.RoundTripper
		if inj != nil {
			transport = inj.Transport(nil)
		}
		opt.Router = &server.Router{
			Ring:   ring,
			Client: client.New(ring, client.Options{HedgeAfter: *hedgeAfter, Transport: transport}),
			Self:   *selfName,
		}
		fmt.Fprintf(logw, "pland: fleet of %d peers, self=%s\n", len(peers), *selfName)
	}

	srv := server.New(opt)

	var prober *cluster.Prober
	if ring != nil {
		// The prober stays chaos-free on purpose: a blacked-out peer is
		// discovered through its failing plan traffic, not by blinding
		// the failure detector. Rise verdicts couple recovery to the
		// rest of the stack: the client expires the risen peer's breaker
		// cooldown (traffic returns within one probe interval instead of
		// the full open timer) and the server pushes its hinted
		// handoffs back.
		fleetClient := opt.Router.Client
		prober = cluster.NewProber(ring, cluster.ProberOptions{
			Interval: *probeEvery,
			OnRise: func(p *cluster.Peer) {
				fleetClient.NoteRisen(p.Name)
				srv.NoteRisen(p.Name)
				fmt.Fprintf(logw, "pland: peer %s risen\n", p.Name)
			},
			OnDown: func(p *cluster.Peer) {
				fmt.Fprintf(logw, "pland: peer %s down\n", p.Name)
			},
		})
	}

	// Durable cache: restore the previous hot set before the listener
	// opens, so a kill -9 + restart serves its old keys warm. A
	// corrupt or missing snapshot degrades to a cold start, never a
	// failed boot.
	if *snapPath != "" {
		if n, err := srv.LoadSnapshot(*snapPath); err != nil {
			fmt.Fprintf(logw, "pland: snapshot %s not restored (%v), starting cold\n", *snapPath, err)
		} else if n > 0 {
			fmt.Fprintf(logw, "pland: restored %d plans from %s\n", n, *snapPath)
		}
	}
	handler := http.Handler(srv.Handler())
	if inj != nil {
		handler = inj.Middleware(handler)
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "pland: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	if prober != nil {
		go prober.Run(ctx)
	}
	if *snapPath != "" && *snapEvery > 0 {
		go srv.RunSnapshots(ctx, *snapPath, *snapEvery)
	}
	if *warmFill {
		fmt.Fprintf(logw, "pland: warm fill every %v\n", *warmEvery)
		go srv.RunWarmFill(ctx, *warmEvery)
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: refuse new work, let in-flight plans finish, then exit.
	fmt.Fprintf(logw, "pland: draining (up to %v)\n", *drainWait)
	srv.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// The post-drain save persists plans finished during the drain
	// window itself (RunSnapshots' final save raced the shutdown).
	if *snapPath != "" {
		if n, err := srv.SaveSnapshot(*snapPath); err != nil {
			fmt.Fprintf(logw, "pland: final snapshot failed: %v\n", err)
		} else {
			fmt.Fprintf(logw, "pland: saved %d plans to %s\n", n, *snapPath)
		}
	}
	if inj != nil {
		fmt.Fprintln(logw, "pland:", inj.Summary())
	}
	fmt.Fprintln(logw, "pland: drained, bye")
	return nil
}
