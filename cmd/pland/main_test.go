package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graphio"
)

// logBuffer is a goroutine-safe log sink run() can write to while the
// test polls it for the listen address.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestRunLifecycle drives the whole service process: start on an
// ephemeral port, answer a plan request, then shut down cleanly on
// context cancellation (the signal path minus the signal).
func TestRunLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var logs logBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain", "5s"}, &logs) }()

	// The listen line carries the resolved port.
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRe.FindStringSubmatch(logs.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never announced its address; log: %q", logs.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	cfg := gen.Default(3)
	cfg.Seed = 21
	w := gen.MustGenerate(cfg)
	var body bytes.Buffer
	if err := graphio.WriteWorkload(&body, w.Graph, w.Platform); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/plan", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/plan: %d %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), `"feasible"`) {
		t.Fatalf("plan response lacks a verdict: %s", raw)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run never drained")
	}
	if !strings.Contains(logs.String(), "drained") {
		t.Fatalf("drain not logged: %q", logs.String())
	}
}
