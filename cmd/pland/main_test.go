package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graphio"
)

// logBuffer is a goroutine-safe log sink run() can write to while the
// test polls it for the listen address.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestRunLifecycle drives the whole service process: start on an
// ephemeral port, answer a plan request, then shut down cleanly on
// context cancellation (the signal path minus the signal).
func TestRunLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var logs logBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain", "5s"}, &logs) }()

	// The listen line carries the resolved port.
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRe.FindStringSubmatch(logs.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never announced its address; log: %q", logs.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	cfg := gen.Default(3)
	cfg.Seed = 21
	w := gen.MustGenerate(cfg)
	var body bytes.Buffer
	if err := graphio.WriteWorkload(&body, w.Graph, w.Platform); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/plan", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/plan: %d %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), `"feasible"`) {
		t.Fatalf("plan response lacks a verdict: %s", raw)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run never drained")
	}
	if !strings.Contains(logs.String(), "drained") {
		t.Fatalf("drain not logged: %q", logs.String())
	}
}

// freeAddrs reserves n distinct loopback addresses by listening and
// immediately closing. The tiny reuse race is acceptable in tests.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// TestFleetLifecycle boots a real 3-process fleet (one with a chaos
// scenario armed), posts the identical workload to every node, and
// checks the fleet-wide contract: every answer is 200, exactly one
// cold build happened anywhere, the non-owners proxied, and all three
// drain cleanly.
func TestFleetLifecycle(t *testing.T) {
	addrs := freeAddrs(t, 3)
	peers := fmt.Sprintf("p0=http://%s,p1=http://%s,p2=http://%s", addrs[0], addrs[1], addrs[2])
	scenario := filepath.Join(t.TempDir(), "chaos.json")
	if err := os.WriteFile(scenario,
		[]byte(`{"seed":7,"rules":[{"peer":"p2","latency":"5ms","latencyProb":0.2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logs := make([]*logBuffer, 3)
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		logs[i] = &logBuffer{}
		args := []string{
			"-addr", addrs[i], "-peers", peers, "-self", fmt.Sprintf("p%d", i),
			"-drain", "5s", "-hedge-after", "50ms", "-probe-interval", "100ms",
		}
		if i == 2 {
			args = append(args, "-chaos", scenario)
		}
		go func(i int, args []string) { done <- run(ctx, args, logs[i]) }(i, args)
	}
	for i := range addrs {
		waitHealthy(t, addrs[i])
	}
	if !strings.Contains(logs[2].String(), "chaos scenario") {
		t.Fatalf("p2 never armed its scenario: %q", logs[2].String())
	}

	cfg := gen.Default(3)
	cfg.Seed = 33
	w := gen.MustGenerate(cfg)
	var body bytes.Buffer
	if err := graphio.WriteWorkload(&body, w.Graph, w.Platform); err != nil {
		t.Fatal(err)
	}
	for i := range addrs {
		resp, err := http.Post("http://"+addrs[i]+"/plan", "application/json", bytes.NewReader(body.Bytes()))
		if err != nil {
			t.Fatalf("p%d: %v", i, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("p%d: status %d: %s", i, resp.StatusCode, raw)
		}
	}

	var builds, routedOut, routedIn float64
	for i := range addrs {
		text := getBody(t, "http://"+addrs[i]+"/metrics")
		builds += sample(t, text, `pland_builds_total`)
		routedOut += sample(t, text, `pland_routed_total\{direction="out"\}`)
		routedIn += sample(t, text, `pland_routed_total\{direction="in"\}`)
	}
	if builds != 1 {
		t.Fatalf("fleet-wide cold builds = %g, want exactly 1", builds)
	}
	if routedOut != 2 || routedIn != 2 {
		t.Fatalf("routing out=%g in=%g, want 2 and 2 (both non-owners proxied)", routedOut, routedIn)
	}

	cancel()
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("fleet member exited with %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("fleet member never drained")
		}
	}
}

// TestSnapshotRestartLifecycle drives the crash-recovery contract
// through the real process lifecycle: a pland with -snapshot saves its
// hot set on drain, and a restart restores it and serves the same
// workload from cache — zero cold rebuilds after the restart.
func TestSnapshotRestartLifecycle(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "cache.snap")
	cfg := gen.Default(3)
	cfg.Seed = 44
	w := gen.MustGenerate(cfg)
	var body bytes.Buffer
	if err := graphio.WriteWorkload(&body, w.Graph, w.Platform); err != nil {
		t.Fatal(err)
	}

	boot := func(logs *logBuffer) (addr string, cancel context.CancelFunc, done chan error) {
		ctx, stop := context.WithCancel(context.Background())
		done = make(chan error, 1)
		go func() {
			done <- run(ctx, []string{
				"-addr", "127.0.0.1:0", "-drain", "5s",
				"-snapshot", snap, "-snapshot-interval", "1h",
			}, logs)
		}()
		addrRe := regexp.MustCompile(`listening on (\S+)`)
		for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
			if m := addrRe.FindStringSubmatch(logs.String()); m != nil {
				return m[1], stop, done
			}
			time.Sleep(5 * time.Millisecond)
		}
		stop()
		t.Fatalf("server never announced its address; log: %q", logs.String())
		return "", nil, nil
	}

	var logs1 logBuffer
	addr, cancel, done := boot(&logs1)
	resp, err := http.Post("http://"+addr+"/plan", "application/json", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/plan: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("first run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("first run never drained")
	}
	if !strings.Contains(logs1.String(), "saved 1 plans to "+snap) {
		t.Fatalf("drain did not save the snapshot: %q", logs1.String())
	}

	var logs2 logBuffer
	addr, cancel, done = boot(&logs2)
	defer cancel()
	if !strings.Contains(logs2.String(), "restored 1 plans from "+snap) {
		t.Fatalf("restart did not restore the snapshot: %q", logs2.String())
	}
	resp, err = http.Post("http://"+addr+"/plan", "application/json", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored /plan: %d", resp.StatusCode)
	}
	text := getBody(t, "http://"+addr+"/metrics")
	if got := sample(t, text, `pland_builds_total`); got != 0 {
		t.Fatalf("restarted pland built %g times, want 0", got)
	}
	if got := sample(t, text, `pland_cache_hits_total`); got != 1 {
		t.Fatalf("restarted pland hits %g, want 1", got)
	}
	if got := sample(t, text, `pland_snapshot_loaded_plans_total`); got != 1 {
		t.Fatalf("snapshot loaded plans %g, want 1", got)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("second run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second run never drained")
	}
}

// TestWarmFillNeedsFleet: -warm-fill outside fleet mode is a
// configuration error, not a silent no-op.
func TestWarmFillNeedsFleet(t *testing.T) {
	var logs logBuffer
	err := run(context.Background(), []string{"-warm-fill"}, &logs)
	if err == nil || !strings.Contains(err.Error(), "fleet mode") {
		t.Fatalf("run(-warm-fill) = %v, want a fleet-mode error", err)
	}
}

func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", addr)
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

// sample extracts one Prometheus sample; missing metrics fail the test.
func sample(t *testing.T, text, pattern string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + pattern + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found", pattern)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
