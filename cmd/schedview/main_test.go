package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGenerated(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-m", "3", "-seed", "4"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"workload:", "metric ADAPT-L", "gantt", "replay:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, sched := range []string{"dispatch", "planner", "insert", "preempt"} {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-m", "2", "-seed", "4", "-sched", sched}, &out, &errBuf); code != 0 {
			t.Errorf("%s: exit %d: %s", sched, code, errBuf.String())
		}
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-sched", "psychic"}, &out, &errBuf); code != 1 {
		t.Errorf("unknown scheduler: exit %d", code)
	}
}

func TestRunExplainTraceFeas(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-m", "2", "-seed", "4", "-explain", "-trace", "-feas"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"round 1", "event log", "feasibility:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunArtifacts(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "g.dot")
	svg := filepath.Join(dir, "s.svg")
	var out, errBuf bytes.Buffer
	code := run([]string{"-m", "2", "-seed", "4", "-dot", dot, "-svg", svg}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if data, err := os.ReadFile(dot); err != nil || !strings.Contains(string(data), "digraph") {
		t.Errorf("dot artifact wrong: %v", err)
	}
	if data, err := os.ReadFile(svg); err != nil || !strings.Contains(string(data), "<svg") {
		t.Errorf("svg artifact wrong: %v", err)
	}
}

func TestRunLoadsWorkloadFile(t *testing.T) {
	// Generate a workload with taskgen-equivalent settings, save, reload.
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")
	var out, errBuf bytes.Buffer
	// First produce a file via the pipeline: use -m generation and -svg to
	// ensure it runs, then write a workload JSON by hand via taskgen's
	// package path is overkill — instead reuse run's generator and check
	// the file-loading error path with garbage.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{path}, &out, &errBuf); code != 1 {
		t.Errorf("garbage workload file: exit %d", code)
	}
	if !strings.Contains(errBuf.String(), "schedview:") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func TestRunBadMetric(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-metric", "MAGIC"}, &out, &errBuf); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
}
