// Command schedview runs the full deadline-distribution and scheduling
// pipeline on one workload and renders the outcome: the per-task window
// assignment, a text Gantt chart of the schedule, and the replay
// verdict.
//
// Usage:
//
//	schedview [-metric NAME] [-wcet avg|max|min] [-sched dispatch|planner|insert|preempt]
//	          [-serialbus] [-trace] [-dot file.dot] [file.json]
//
// Without a file argument a random workload is generated (-m, -seed,
// -olr control it).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/feas"
	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/wcet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	flag := flag.NewFlagSet("schedview", flag.ContinueOnError)
	flag.SetOutput(stderr)
	fatal := func(err error) {
		fmt.Fprintln(stderr, "schedview:", err)
		code = 1
		panic(errExit)
	}
	defer func() {
		if r := recover(); r != nil && r != errExit {
			panic(r)
		}
	}()
	metricName := flag.String("metric", "ADAPT-L", "critical path metric: PURE, NORM, ADAPT-G, ADAPT-L, ADAPT-R")
	wcetName := flag.String("wcet", "avg", "WCET estimation strategy: avg, max, min")
	schedName := flag.String("sched", "dispatch", "scheduler: dispatch, planner, insert, preempt")
	serialBus := flag.Bool("serialbus", false, "verify under a serialized (exclusive) bus")
	showTrace := flag.Bool("trace", false, "print the execution event log")
	showFeas := flag.Bool("feas", false, "run the necessary feasibility conditions on the assignment")
	explain := flag.Bool("explain", false, "print the round-by-round slicing narrative")
	dotFile := flag.String("dot", "", "write the annotated task graph in DOT format to this file")
	svgFile := flag.String("svg", "", "write the schedule as an SVG Gantt chart to this file")
	m := flag.Int("m", 3, "processors when generating a workload")
	seed := flag.Int64("seed", 1, "seed when generating a workload")
	olr := flag.Float64("olr", 0.55, "overall laxity ratio when generating a workload")
	if err := flag.Parse(args); err != nil {
		return 2
	}

	metric, err := slicing.ByName(*metricName)
	if err != nil {
		fatal(err)
	}
	var strat wcet.Strategy
	switch strings.ToLower(*wcetName) {
	case "avg":
		strat = wcet.AVG
	case "max":
		strat = wcet.MAX
	case "min":
		strat = wcet.MIN
	default:
		fatal(fmt.Errorf("unknown WCET strategy %q", *wcetName))
	}

	var (
		g *taskgraph.Graph
		p *arch.Platform
	)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		g, p, err = graphio.ReadWorkload(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if p == nil {
			fatal(fmt.Errorf("%s carries no platform", flag.Arg(0)))
		}
	} else {
		cfg := gen.Default(*m)
		cfg.Seed = *seed
		cfg.OLR = *olr
		w, err := gen.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		g, p = w.Graph, w.Platform
	}

	est, err := pipeline.Estimate(g, p, strat)
	if err != nil {
		fatal(err)
	}
	asg, err := pipeline.Slice(g, est, p.M(), metric, slicing.CalibratedParams())
	if err != nil {
		fatal(err)
	}
	var (
		s   *sched.Schedule
		pre *sched.PreemptiveSchedule
	)
	switch *schedName {
	case "dispatch":
		s, err = pipeline.TimeDriven().Run(g, p, asg)
	case "planner":
		s, err = pipeline.Planner().Run(g, p, asg)
	case "insert":
		s, err = pipeline.Insertion().Run(g, p, asg)
	case "preempt":
		// The viewer needs the concrete preemptive schedule (slices,
		// preemption/migration counts), which the generic dispatcher
		// hook flattens away.
		pre, err = sched.DispatchPreemptive(g, p, asg)
		if pre != nil {
			s = &pre.Schedule
		}
	default:
		fatal(fmt.Errorf("unknown scheduler %q", *schedName))
	}
	if err != nil {
		fatal(err)
	}
	rep, err := sim.Replay(g, p, asg, s, sim.Options{SerializedBus: *serialBus})
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(stdout, "workload: %d tasks, %d arcs, depth %d; %s\n", g.NumTasks(), g.NumArcs(), g.Depth(), p)
	fmt.Fprintf(stdout, "metric %s, %s; %d chains\n\n", metric.Name(), strat, len(asg.Chains))

	fmt.Fprintln(stdout, "task  window           laxity  proc  start  finish  late")
	for i := 0; i < g.NumTasks(); i++ {
		pl := s.Placements[i]
		late := "-"
		if pl.Proc >= 0 {
			late = fmt.Sprintf("%d", pl.Finish-asg.AbsDeadline[i])
		}
		fmt.Fprintf(stdout, "%4d  [%6d,%6d)  %6d  %4d  %5d  %6d  %4s\n",
			i, asg.Arrival[i], asg.AbsDeadline[i], asg.Laxity(i, est), pl.Proc, pl.Start, pl.Finish, late)
	}

	fmt.Fprintf(stdout, "\n%s\n", renderGantt(p, s))
	if s.Feasible {
		fmt.Fprintf(stdout, "FEASIBLE: makespan %d, max lateness %d\n", s.Makespan, s.MaxLateness)
	} else {
		fmt.Fprintf(stdout, "INFEASIBLE: %d tasks missed (max lateness %d): %v\n", len(s.Missed), s.MaxLateness, s.Missed)
	}
	if rep.Valid {
		fmt.Fprintf(stdout, "replay: valid; bus busy %d, utilization %.1f%%\n", rep.BusBusy, 100*rep.Utilization())
	} else if pre != nil {
		fmt.Fprintf(stdout, "replay: %d notes (preemptive slices are not WCET-contiguous; see -trace)\n", len(rep.Violations))
	} else {
		fmt.Fprintf(stdout, "replay: %d violations:\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintln(stdout, "  -", v)
		}
	}
	if pre != nil {
		fmt.Fprintf(stdout, "preemptions: %d, migrations: %d\n", pre.Preemptions, pre.Migrations)
	}

	if *showTrace {
		var log trace.Log
		if pre != nil {
			log = trace.FromPreemptive(g, p, asg, pre)
		} else {
			log = trace.FromSchedule(g, p, asg, s)
		}
		fmt.Fprintf(stdout, "\nevent log (%d events):\n%s", len(log), log)
	}
	if *explain {
		fmt.Fprintln(stdout)
		if err := slicing.Explain(stdout, g, est, asg); err != nil {
			fatal(err)
		}
	}
	if *showFeas {
		violations, err := feas.Check(g, p, asg)
		if err != nil {
			fatal(err)
		}
		if len(violations) == 0 {
			fmt.Fprintln(stdout, "\nfeasibility: no necessary condition violated (assignment may be schedulable)")
		} else {
			fmt.Fprintf(stdout, "\nfeasibility: %d violations — the assignment is provably unschedulable:\n", len(violations))
			for _, v := range violations {
				fmt.Fprintln(stdout, "  -", v)
			}
		}
	}
	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			fatal(err)
		}
		err = graphio.WriteDOT(f, g, asg)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *dotFile)
	}
	if *svgFile != "" {
		f, err := os.Create(*svgFile)
		if err != nil {
			fatal(err)
		}
		err = graphio.WriteScheduleSVG(f, g, p, asg, s)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *svgFile)
	}
	return 0
}

// renderGantt converts a schedule into textplot rows.
func renderGantt(p *arch.Platform, s *sched.Schedule) string {
	rows := make([]textplot.GanttRow, p.M())
	for q := range rows {
		rows[q].Label = fmt.Sprintf("p%d(e%d)", q, p.ClassOf(q))
	}
	for i, pl := range s.Placements {
		if pl.Proc >= 0 {
			rows[pl.Proc].Spans = append(rows[pl.Proc].Spans, textplot.GanttSpan{
				ID: i, Start: int64(pl.Start), End: int64(pl.Finish),
			})
		}
	}
	return textplot.Gantt(rows, int64(s.Makespan), 100)
}

// errExit is the sentinel the local fatal helper panics with to unwind
// run() after printing an error.
var errExit = struct{ s string }{"exit"}
