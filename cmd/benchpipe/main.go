// Command benchpipe runs the pipeline-core benchmark suite through
// testing.Benchmark and renders the results as JSON. `make bench`
// writes the output to BENCH_pipeline.json, the repo's checked-in
// performance baseline.
//
// The suite mirrors internal/pipeline/pipeline_bench_test.go:
//
//   - build/cold              one full estimate→slice→dispatch build
//     (pooled scratch, the steady-state cold cost)
//   - build/cold-pooled       the same build over one caller-owned
//     BuildScratch — the floor with warm working sets and no pool traffic
//   - build/cached            the same spec through a warm plan cache
//   - build/rebuild-estimates one re-slice correction round: Rebuild
//     with a full corrected-estimate vector off the previous plan
//   - build/rebuild-wcet      Rebuild with a single-task WCET bump
//   - fingerprint             the workload hash alone
//   - verify/analytic         the holistic-RTA schedulability proof of
//     the 120-task plan released sporadically — one fixed-point
//     iteration covering every legal release sequence, no timeline
//   - verify/replay           the same sporadic system checked by
//     replay: dispatch and simulate a 32-release horizon (one sequence)
//   - build/verify-analytic   a full cold build of the 120-task graph
//     with the analytic verifier as its fourth stage
//   - breakdown/cache=off     breakdown-factor bisection, re-planning on
//     every probe
//   - breakdown/cache=on      the same bisection planning once
//
// The off/on contrast and the cold/rebuild contrast are the headline
// numbers: the plan cache is what makes the robustness bisection
// affordable, and incremental replanning is what makes the re-slice
// feedback loop cheap. The verify contrast records why analytic-first
// verification is the serving default worth reaching for: proving
// deadlines costs a fixed-point iteration, not a timeline.
//
// With -check BASELINE the suite instead runs fresh and exits nonzero
// if the cold-build numbers regressed more than 20% against the
// checked-in baseline (the CI performance gate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/robust"
	"repro/internal/rtime"
	"repro/internal/sim"
	"repro/internal/verify"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Go      string   `json:"go"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	Results []result `json:"results"`
	// BreakdownSpeedup is breakdown/cache=off ns divided by
	// breakdown/cache=on ns: how much faster the bisection runs when
	// probes hit the plan cache instead of re-planning.
	BreakdownSpeedup float64 `json:"breakdown_speedup"`
	// ResliceSpeedup is build/cold ns divided by
	// build/rebuild-estimates ns: how much cheaper one re-slice
	// correction round is through incremental replanning than through a
	// fresh cold build.
	ResliceSpeedup float64 `json:"reslice_speedup,omitempty"`
	// VerifySpeedup is verify/replay ns divided by verify/analytic ns:
	// how much cheaper proving a 120-task plan's deadlines analytically
	// is than replaying its schedule.
	VerifySpeedup float64 `json:"verify_speedup,omitempty"`
}

func workload(seed int64) (*gen.Workload, error) {
	cfg := gen.Default(3)
	cfg.Seed = seed
	return gen.Generate(cfg)
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	check := flag.String("check", "", "compare a fresh run against this baseline JSON and fail on cold-build regressions")
	flag.Parse()
	if err := run(*out, *check); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipe:", err)
		os.Exit(1)
	}
}

func run(out, check string) error {
	w, err := workload(11)
	if err != nil {
		return err
	}
	spec := pipeline.Spec{Graph: w.Graph, Platform: w.Platform}

	const samples = 8
	bw := make([]*gen.Workload, samples)
	for i := range bw {
		if bw[i], err = workload(100 + int64(i)); err != nil {
			return err
		}
	}
	bisect := func(b *testing.B, cached bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ww := bw[i%samples]
			builder := &pipeline.Builder{}
			if cached {
				builder.Cache = pipeline.NewCache(1)
			}
			if _, err := robust.BreakdownVia(builder,
				pipeline.Spec{Graph: ww.Graph, Platform: ww.Platform},
				robust.BreakdownOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}

	rep := report{Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	// Each benchmark runs three times and keeps the fastest: the minimum
	// is the stable statistic of a shared machine (scheduling noise only
	// ever adds time), and it is what both the baseline and the -check
	// run record, so the gate compares like against like.
	bench := func(name string, f func(b *testing.B)) *result {
		best := testing.Benchmark(f)
		for round := 1; round < 3; round++ {
			r := testing.Benchmark(f)
			if r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		rep.Results = append(rep.Results, result{
			Name:        name,
			Iterations:  best.N,
			NsPerOp:     float64(best.T.Nanoseconds()) / float64(best.N),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
		})
		return &rep.Results[len(rep.Results)-1]
	}

	bench("build/cold", func(b *testing.B) {
		builder := &pipeline.Builder{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := builder.Build(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	bench("build/cold-pooled", func(b *testing.B) {
		builder := &pipeline.Builder{}
		sc := pipeline.NewBuildScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := builder.BuildWith(spec, sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	bench("build/cached", func(b *testing.B) {
		builder := &pipeline.Builder{Cache: pipeline.NewCache(8)}
		if _, err := builder.Build(spec); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := builder.Build(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Incremental replanning: one correction round of the re-slice loop
	// shape (a full corrected vector) and one single-task WCET bump,
	// both off the same previous plan through one Replanner. No cache is
	// configured, so every iteration pays the incremental path, never a
	// residency hit.
	cold := &rep.Results[0]
	prevBuilder := &pipeline.Builder{}
	prev, err := prevBuilder.Build(spec)
	if err != nil {
		return err
	}
	alt := make([][]rtime.Time, 4)
	for v := range alt {
		alt[v] = append([]rtime.Time(nil), prev.Estimates...)
		for i := range alt[v] {
			if i%3 == v%3 {
				alt[v][i] += rtime.Time(1 + v)
			}
		}
	}
	reb := bench("build/rebuild-estimates", func(b *testing.B) {
		rp := prevBuilder.NewReplanner()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := rp.Rebuild(prev, pipeline.EstimatesDelta(alt[i%len(alt)])); err != nil {
				b.Fatal(err)
			}
		}
	})
	n := w.Graph.NumTasks()
	bench("build/rebuild-wcet", func(b *testing.B) {
		rp := prevBuilder.NewReplanner()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			task := i % n
			delta := pipeline.TaskEstimateDelta(task, prev.Estimates[task]+rtime.Time(1+i%7))
			if _, _, err := rp.Rebuild(prev, delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	if reb.NsPerOp > 0 {
		rep.ResliceSpeedup = cold.NsPerOp / reb.NsPerOp
	}
	bench("fingerprint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pipeline.Fingerprint(w.Graph, w.Platform)
		}
	})
	// Analytic verification vs replay, on the standard 120-task graph
	// released sporadically (minimum gap 1.25× the plan horizon, 1/8
	// jitter — a recurring deployment of the same plan). The analytic
	// proof covers every legal release sequence with one fixed-point
	// iteration; replay verification is O(timeline) — it must dispatch
	// and simulate the whole release horizon (32 releases here) to check
	// even one sequence. VerifySpeedup records the gap.
	vcfg := gen.Default(3)
	vcfg.Seed = 11
	vcfg.MinTasks, vcfg.MaxTasks = 120, 120
	vw, err := gen.Generate(vcfg)
	if err != nil {
		return err
	}
	vspec := pipeline.Spec{Graph: vw.Graph, Platform: vw.Platform}
	vplan, err := (&pipeline.Builder{}).Build(vspec)
	if err != nil {
		return err
	}
	var horizon rtime.Time
	for _, d := range vplan.Assignment.AbsDeadline {
		if d > horizon {
			horizon = d
		}
	}
	vrel := gen.Release{
		Mode:   gen.ReleaseSporadic,
		Count:  32,
		MinGap: horizon + horizon/4,
		Jitter: (horizon + horizon/4) / 8,
	}
	vsp := verify.Sporadic{MinGap: vrel.MinGap, Jitter: vrel.Jitter}
	// The contrast is only meaningful if both sides verify the system:
	// the proof must land (accept), and the replayed sequence must agree.
	vres, err := verify.AnalyzeSporadic(vw.Graph, vw.Platform, vplan.Assignment, vsp)
	if err != nil {
		return err
	}
	if vres.Verdict != verify.Accept {
		return fmt.Errorf("verify bench: analytic verdict %v (%s), want accept", vres.Verdict, vres.Reason)
	}
	vrep, _, _, err := sim.ReplayReleases(vw.Graph, vw.Platform, vplan.Assignment, vrel, 11, sim.Options{})
	if err != nil {
		return err
	}
	if !vrep.Valid || len(vrep.DeadlineMisses) > 0 {
		return fmt.Errorf("verify bench: replay disagrees (valid=%v, %d misses)", vrep.Valid, len(vrep.DeadlineMisses))
	}
	va := bench("verify/analytic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := verify.AnalyzeSporadic(vw.Graph, vw.Platform, vplan.Assignment, vsp); err != nil {
				b.Fatal(err)
			}
		}
	})
	vr := bench("verify/replay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := sim.ReplayReleases(vw.Graph, vw.Platform, vplan.Assignment, vrel, 11, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if va.NsPerOp > 0 {
		rep.VerifySpeedup = vr.NsPerOp / va.NsPerOp
	}
	bench("build/verify-analytic", func(b *testing.B) {
		builder := &pipeline.Builder{Verifier: verify.AnalyticVerifier()}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := builder.Build(vspec); err != nil {
				b.Fatal(err)
			}
		}
	})
	off := bench("breakdown/cache=off", func(b *testing.B) { bisect(b, false) })
	on := bench("breakdown/cache=on", func(b *testing.B) { bisect(b, true) })
	if on.NsPerOp > 0 {
		rep.BreakdownSpeedup = off.NsPerOp / on.NsPerOp
	}

	if check != "" {
		return checkAgainst(check, rep)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (breakdown speedup with plan cache: %.1fx, reslice speedup with Rebuild: %.1fx, analytic-verify speedup over replay: %.1fx)\n",
		out, rep.BreakdownSpeedup, rep.ResliceSpeedup, rep.VerifySpeedup)
	return nil
}

// checkTolerance is the allowed regression against the checked-in
// baseline before -check fails: 20% on time, 20% (and at least 8
// absolute, to absorb counting noise near zero) on allocations.
const checkTolerance = 0.20

// checkAgainst gates the fresh run rep on the baseline at path. Only
// the cold-build benchmarks are gated — the cached/fingerprint paths
// are sub-10µs and too noisy for a CI tripwire, and the breakdown
// bisections are derived from the same cold path.
func checkAgainst(path string, rep report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseBy := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	gated := []string{"build/cold", "build/cold-pooled", "build/rebuild-estimates", "build/rebuild-wcet"}
	failed := false
	for _, name := range gated {
		b, ok := baseBy[name]
		if !ok {
			fmt.Printf("check %-24s skipped (not in baseline)\n", name)
			continue
		}
		var cur *result
		for i := range rep.Results {
			if rep.Results[i].Name == name {
				cur = &rep.Results[i]
			}
		}
		if cur == nil {
			return fmt.Errorf("benchmark %s missing from the fresh run", name)
		}
		ok = true
		if cur.NsPerOp > b.NsPerOp*(1+checkTolerance) {
			fmt.Printf("check %-24s FAIL time: %.0f ns/op vs baseline %.0f (+%.0f%%)\n",
				name, cur.NsPerOp, b.NsPerOp, 100*(cur.NsPerOp/b.NsPerOp-1))
			ok = false
		}
		if excess := cur.AllocsPerOp - b.AllocsPerOp; excess > 8 &&
			float64(cur.AllocsPerOp) > float64(b.AllocsPerOp)*(1+checkTolerance) {
			fmt.Printf("check %-24s FAIL allocs: %d/op vs baseline %d (+%d)\n",
				name, cur.AllocsPerOp, b.AllocsPerOp, excess)
			ok = false
		}
		if ok {
			fmt.Printf("check %-24s ok: %.0f ns/op (baseline %.0f), %d allocs/op (baseline %d)\n",
				name, cur.NsPerOp, b.NsPerOp, cur.AllocsPerOp, b.AllocsPerOp)
		} else {
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("cold-build performance regressed beyond %.0f%% of %s", 100*checkTolerance, path)
	}
	return nil
}
