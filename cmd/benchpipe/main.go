// Command benchpipe runs the pipeline-core benchmark suite through
// testing.Benchmark and renders the results as JSON. `make bench`
// writes the output to BENCH_pipeline.json, the repo's checked-in
// performance baseline.
//
// The suite mirrors internal/pipeline/pipeline_bench_test.go:
//
//   - build/cold            one full estimate→slice→dispatch build
//   - build/cached          the same spec through a warm plan cache
//   - fingerprint           the workload hash alone
//   - breakdown/cache=off   breakdown-factor bisection, re-planning on
//     every probe
//   - breakdown/cache=on    the same bisection planning once
//
// The off/on contrast is the headline number: the plan cache is what
// makes the robustness bisection affordable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/robust"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Go      string   `json:"go"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	Results []result `json:"results"`
	// BreakdownSpeedup is breakdown/cache=off ns divided by
	// breakdown/cache=on ns: how much faster the bisection runs when
	// probes hit the plan cache instead of re-planning.
	BreakdownSpeedup float64 `json:"breakdown_speedup"`
}

func workload(seed int64) (*gen.Workload, error) {
	cfg := gen.Default(3)
	cfg.Seed = seed
	return gen.Generate(cfg)
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipe:", err)
		os.Exit(1)
	}
}

func run(out string) error {
	w, err := workload(11)
	if err != nil {
		return err
	}
	spec := pipeline.Spec{Graph: w.Graph, Platform: w.Platform}

	const samples = 8
	bw := make([]*gen.Workload, samples)
	for i := range bw {
		if bw[i], err = workload(100 + int64(i)); err != nil {
			return err
		}
	}
	bisect := func(b *testing.B, cached bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ww := bw[i%samples]
			builder := &pipeline.Builder{}
			if cached {
				builder.Cache = pipeline.NewCache(1)
			}
			if _, err := robust.BreakdownVia(builder,
				pipeline.Spec{Graph: ww.Graph, Platform: ww.Platform},
				robust.BreakdownOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}

	rep := report{Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	bench := func(name string, f func(b *testing.B)) *result {
		r := testing.Benchmark(f)
		rep.Results = append(rep.Results, result{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		return &rep.Results[len(rep.Results)-1]
	}

	bench("build/cold", func(b *testing.B) {
		builder := &pipeline.Builder{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := builder.Build(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	bench("build/cached", func(b *testing.B) {
		builder := &pipeline.Builder{Cache: pipeline.NewCache(8)}
		if _, err := builder.Build(spec); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := builder.Build(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	bench("fingerprint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pipeline.Fingerprint(w.Graph, w.Platform)
		}
	})
	off := bench("breakdown/cache=off", func(b *testing.B) { bisect(b, false) })
	on := bench("breakdown/cache=on", func(b *testing.B) { bisect(b, true) })
	if on.NsPerOp > 0 {
		rep.BreakdownSpeedup = off.NsPerOp / on.NsPerOp
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (breakdown bisection speedup with plan cache: %.1fx)\n",
		out, rep.BreakdownSpeedup)
	return nil
}
