// Command benchpipe runs the pipeline-core benchmark suite through
// testing.Benchmark and renders the results as JSON. `make bench`
// writes the output to BENCH_pipeline.json, the repo's checked-in
// performance baseline.
//
// The suite mirrors internal/pipeline/pipeline_bench_test.go:
//
//   - build/cold              one full estimate→slice→dispatch build
//     (pooled scratch, the steady-state cold cost)
//   - build/cold-pooled       the same build over one caller-owned
//     BuildScratch — the floor with warm working sets and no pool traffic
//   - build/cached            the same spec through a warm plan cache
//   - build/rebuild-estimates one re-slice correction round: Rebuild
//     with a full corrected-estimate vector off the previous plan
//   - build/rebuild-wcet      Rebuild with a single-task WCET bump
//   - fingerprint             the workload hash alone
//   - breakdown/cache=off     breakdown-factor bisection, re-planning on
//     every probe
//   - breakdown/cache=on      the same bisection planning once
//
// The off/on contrast and the cold/rebuild contrast are the headline
// numbers: the plan cache is what makes the robustness bisection
// affordable, and incremental replanning is what makes the re-slice
// feedback loop cheap.
//
// With -check BASELINE the suite instead runs fresh and exits nonzero
// if the cold-build numbers regressed more than 20% against the
// checked-in baseline (the CI performance gate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/robust"
	"repro/internal/rtime"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Go      string   `json:"go"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	Results []result `json:"results"`
	// BreakdownSpeedup is breakdown/cache=off ns divided by
	// breakdown/cache=on ns: how much faster the bisection runs when
	// probes hit the plan cache instead of re-planning.
	BreakdownSpeedup float64 `json:"breakdown_speedup"`
	// ResliceSpeedup is build/cold ns divided by
	// build/rebuild-estimates ns: how much cheaper one re-slice
	// correction round is through incremental replanning than through a
	// fresh cold build.
	ResliceSpeedup float64 `json:"reslice_speedup,omitempty"`
}

func workload(seed int64) (*gen.Workload, error) {
	cfg := gen.Default(3)
	cfg.Seed = seed
	return gen.Generate(cfg)
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	check := flag.String("check", "", "compare a fresh run against this baseline JSON and fail on cold-build regressions")
	flag.Parse()
	if err := run(*out, *check); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipe:", err)
		os.Exit(1)
	}
}

func run(out, check string) error {
	w, err := workload(11)
	if err != nil {
		return err
	}
	spec := pipeline.Spec{Graph: w.Graph, Platform: w.Platform}

	const samples = 8
	bw := make([]*gen.Workload, samples)
	for i := range bw {
		if bw[i], err = workload(100 + int64(i)); err != nil {
			return err
		}
	}
	bisect := func(b *testing.B, cached bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ww := bw[i%samples]
			builder := &pipeline.Builder{}
			if cached {
				builder.Cache = pipeline.NewCache(1)
			}
			if _, err := robust.BreakdownVia(builder,
				pipeline.Spec{Graph: ww.Graph, Platform: ww.Platform},
				robust.BreakdownOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}

	rep := report{Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	// Each benchmark runs three times and keeps the fastest: the minimum
	// is the stable statistic of a shared machine (scheduling noise only
	// ever adds time), and it is what both the baseline and the -check
	// run record, so the gate compares like against like.
	bench := func(name string, f func(b *testing.B)) *result {
		best := testing.Benchmark(f)
		for round := 1; round < 3; round++ {
			r := testing.Benchmark(f)
			if r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		rep.Results = append(rep.Results, result{
			Name:        name,
			Iterations:  best.N,
			NsPerOp:     float64(best.T.Nanoseconds()) / float64(best.N),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
		})
		return &rep.Results[len(rep.Results)-1]
	}

	bench("build/cold", func(b *testing.B) {
		builder := &pipeline.Builder{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := builder.Build(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	bench("build/cold-pooled", func(b *testing.B) {
		builder := &pipeline.Builder{}
		sc := pipeline.NewBuildScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := builder.BuildWith(spec, sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	bench("build/cached", func(b *testing.B) {
		builder := &pipeline.Builder{Cache: pipeline.NewCache(8)}
		if _, err := builder.Build(spec); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := builder.Build(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Incremental replanning: one correction round of the re-slice loop
	// shape (a full corrected vector) and one single-task WCET bump,
	// both off the same previous plan through one Replanner. No cache is
	// configured, so every iteration pays the incremental path, never a
	// residency hit.
	cold := &rep.Results[0]
	prevBuilder := &pipeline.Builder{}
	prev, err := prevBuilder.Build(spec)
	if err != nil {
		return err
	}
	alt := make([][]rtime.Time, 4)
	for v := range alt {
		alt[v] = append([]rtime.Time(nil), prev.Estimates...)
		for i := range alt[v] {
			if i%3 == v%3 {
				alt[v][i] += rtime.Time(1 + v)
			}
		}
	}
	reb := bench("build/rebuild-estimates", func(b *testing.B) {
		rp := prevBuilder.NewReplanner()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := rp.Rebuild(prev, pipeline.EstimatesDelta(alt[i%len(alt)])); err != nil {
				b.Fatal(err)
			}
		}
	})
	n := w.Graph.NumTasks()
	bench("build/rebuild-wcet", func(b *testing.B) {
		rp := prevBuilder.NewReplanner()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			task := i % n
			delta := pipeline.TaskEstimateDelta(task, prev.Estimates[task]+rtime.Time(1+i%7))
			if _, _, err := rp.Rebuild(prev, delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	if reb.NsPerOp > 0 {
		rep.ResliceSpeedup = cold.NsPerOp / reb.NsPerOp
	}
	bench("fingerprint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pipeline.Fingerprint(w.Graph, w.Platform)
		}
	})
	off := bench("breakdown/cache=off", func(b *testing.B) { bisect(b, false) })
	on := bench("breakdown/cache=on", func(b *testing.B) { bisect(b, true) })
	if on.NsPerOp > 0 {
		rep.BreakdownSpeedup = off.NsPerOp / on.NsPerOp
	}

	if check != "" {
		return checkAgainst(check, rep)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (breakdown speedup with plan cache: %.1fx, reslice speedup with Rebuild: %.1fx)\n",
		out, rep.BreakdownSpeedup, rep.ResliceSpeedup)
	return nil
}

// checkTolerance is the allowed regression against the checked-in
// baseline before -check fails: 20% on time, 20% (and at least 8
// absolute, to absorb counting noise near zero) on allocations.
const checkTolerance = 0.20

// checkAgainst gates the fresh run rep on the baseline at path. Only
// the cold-build benchmarks are gated — the cached/fingerprint paths
// are sub-10µs and too noisy for a CI tripwire, and the breakdown
// bisections are derived from the same cold path.
func checkAgainst(path string, rep report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseBy := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	gated := []string{"build/cold", "build/cold-pooled", "build/rebuild-estimates", "build/rebuild-wcet"}
	failed := false
	for _, name := range gated {
		b, ok := baseBy[name]
		if !ok {
			fmt.Printf("check %-24s skipped (not in baseline)\n", name)
			continue
		}
		var cur *result
		for i := range rep.Results {
			if rep.Results[i].Name == name {
				cur = &rep.Results[i]
			}
		}
		if cur == nil {
			return fmt.Errorf("benchmark %s missing from the fresh run", name)
		}
		ok = true
		if cur.NsPerOp > b.NsPerOp*(1+checkTolerance) {
			fmt.Printf("check %-24s FAIL time: %.0f ns/op vs baseline %.0f (+%.0f%%)\n",
				name, cur.NsPerOp, b.NsPerOp, 100*(cur.NsPerOp/b.NsPerOp-1))
			ok = false
		}
		if excess := cur.AllocsPerOp - b.AllocsPerOp; excess > 8 &&
			float64(cur.AllocsPerOp) > float64(b.AllocsPerOp)*(1+checkTolerance) {
			fmt.Printf("check %-24s FAIL allocs: %d/op vs baseline %d (+%d)\n",
				name, cur.AllocsPerOp, b.AllocsPerOp, excess)
			ok = false
		}
		if ok {
			fmt.Printf("check %-24s ok: %.0f ns/op (baseline %.0f), %d allocs/op (baseline %d)\n",
				name, cur.NsPerOp, b.NsPerOp, cur.AllocsPerOp, b.AllocsPerOp)
		} else {
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("cold-build performance regressed beyond %.0f%% of %s", 100*checkTolerance, path)
	}
	return nil
}
