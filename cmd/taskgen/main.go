// Command taskgen generates random workloads (task graph + platform)
// with the paper's §5.2 generator and writes them as JSON, one file per
// workload, for archival and replay with cmd/schedview.
//
// Usage:
//
//	taskgen [-n N] [-m M] [-seed S] [-olr F] [-etd F] [-ccr F]
//	        [-shape layered|fork-join|in-tree|out-tree] [-resources N -resprob F]
//	        [-pin F] [-out DIR]
//
// With -out "-" (the default) a single workload is written to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/gen"
	"repro/internal/graphio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("taskgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 1, "number of workloads to generate")
	m := fs.Int("m", 3, "number of processors")
	seed := fs.Int64("seed", 1, "master seed")
	olr := fs.Float64("olr", 0.55, "overall laxity ratio (E-T-E deadline / workload)")
	etd := fs.Float64("etd", 0.25, "execution time distribution (max deviation from mean)")
	ccr := fs.Float64("ccr", 0.1, "communication-to-computation cost ratio")
	shape := fs.String("shape", "layered", "graph structure: layered, fork-join, in-tree, out-tree")
	resources := fs.Int("resources", 0, "number of exclusive shared resources")
	resProb := fs.Float64("resprob", 0, "probability a task holds a resource")
	pin := fs.Float64("pin", 0, "probability a boundary task is pinned to a processor")
	out := fs.String("out", "-", "output directory, or - for stdout (single workload)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "taskgen:", err)
		return 1
	}

	cfg := gen.Default(*m)
	cfg.OLR = *olr
	cfg.ETD = *etd
	cfg.CCR = *ccr
	cfg.NumResources = *resources
	cfg.ResourceProb = *resProb
	cfg.PinProb = *pin
	switch *shape {
	case "layered":
		cfg.Shape = gen.Layered
	case "fork-join":
		cfg.Shape = gen.ForkJoin
	case "in-tree":
		cfg.Shape = gen.InTree
	case "out-tree":
		cfg.Shape = gen.OutTree
	default:
		return fail(fmt.Errorf("unknown shape %q", *shape))
	}

	if *out == "-" {
		cfg.Seed = gen.SubSeed(*seed, 0)
		w, err := gen.Generate(cfg)
		if err != nil {
			return fail(err)
		}
		if err := graphio.WriteWorkload(stdout, w.Graph, w.Platform); err != nil {
			return fail(err)
		}
		return 0
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fail(err)
	}
	for i := 0; i < *n; i++ {
		cfg.Seed = gen.SubSeed(*seed, i)
		w, err := gen.Generate(cfg)
		if err != nil {
			return fail(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("workload-%04d.json", i))
		f, err := os.Create(path)
		if err != nil {
			return fail(err)
		}
		err = graphio.WriteWorkload(f, w.Graph, w.Platform)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "wrote %s (%d tasks, %d arcs, m=%d)\n",
			path, w.Graph.NumTasks(), w.Graph.NumArcs(), w.Platform.M())
	}
	return 0
}
