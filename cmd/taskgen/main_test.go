package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graphio"
)

func TestRunStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-seed", "3"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	g, p, err := graphio.ReadWorkload(&out)
	if err != nil {
		t.Fatalf("output is not a workload: %v", err)
	}
	if p == nil || g.NumTasks() < 40 {
		t.Errorf("workload shape wrong: %d tasks", g.NumTasks())
	}
}

func TestRunDirectory(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	if code := run([]string{"-n", "3", "-out", dir, "-shape", "in-tree", "-pin", "0.5"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, "workload-000"+string(rune('0'+i))+".json")
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := graphio.ReadWorkload(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(g.Outputs()) != 1 {
			t.Errorf("in-tree should have one output, got %d", len(g.Outputs()))
		}
	}
	if strings.Count(errBuf.String(), "wrote ") != 3 {
		t.Errorf("progress lines: %q", errBuf.String())
	}
}

func TestRunBadShape(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-shape", "mobius"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "unknown shape") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func TestRunBadConfig(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-olr", "0"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}
