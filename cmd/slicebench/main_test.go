package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-fig", "2", "-graphs", "4"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"Figure 2", "PURE", "ADAPT-L", "4 graphs/point"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig", "3", "-graphs", "2", "-csv"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out.String(), "series,0.40") {
		t.Errorf("CSV header wrong: %q", out.String()[:40])
	}
}

func TestRunPlot(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig", "2", "-graphs", "2", "-plot"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "100% |") {
		t.Error("ASCII plot missing")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig", "99", "-graphs", "2"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "no figure 99") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunReportAndSVG(t *testing.T) {
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "r.md")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-graphs", "2", "-report", reportPath}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# Reproduction report") {
		t.Error("report content wrong")
	}

	svgDir := filepath.Join(dir, "svgs")
	out.Reset()
	if code := run([]string{"-fig", "2", "-graphs", "2", "-svgdir", svgDir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	svg, err := os.ReadFile(filepath.Join(svgDir, "figure2.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Error("SVG content wrong")
	}
}
