// Command slicebench regenerates the paper's evaluation figures
// (Figures 2–6): success ratios of the PURE, NORM, ADAPT-G, and ADAPT-L
// deadline-distribution metrics, and of the three WCET estimation
// strategies, over randomly generated workloads.
//
// Usage:
//
//	slicebench [-fig N] [-graphs N] [-seed N] [-workers N] [-csv] [-plot] [-report FILE]
//
// With no -fig flag all five figures are regenerated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/experiment"
	"repro/internal/graphio"
	"repro/internal/report"
	"repro/internal/textplot"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slicebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "figure to regenerate (2..6); 0 means all")
	graphs := fs.Int("graphs", 1024, "workloads per data point (paper: 1024)")
	seed := fs.Int64("seed", 19990412, "master seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	plot := fs.Bool("plot", false, "also draw an ASCII plot of each figure")
	reportFile := fs.String("report", "", "write a full markdown report (all figures) to this file")
	svgDir := fs.String("svgdir", "", "also write each figure as an SVG line chart into this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := experiment.DefaultOptions()
	opts.NumGraphs = *graphs
	opts.MasterSeed = *seed
	opts.Workers = *workers

	if *reportFile != "" {
		f, err := os.Create(*reportFile)
		if err != nil {
			fmt.Fprintln(stderr, "slicebench:", err)
			return 1
		}
		err = report.Generate(f, opts, time.Now())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(stderr, "slicebench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *reportFile)
		return 0
	}

	var figs []int
	if *fig != 0 {
		if _, ok := experiment.Figures[*fig]; !ok {
			fmt.Fprintf(stderr, "slicebench: no figure %d (have 2..6)\n", *fig)
			return 2
		}
		figs = []int{*fig}
	} else {
		for f := range experiment.Figures {
			figs = append(figs, f)
		}
		sort.Ints(figs)
	}

	for _, f := range figs {
		start := time.Now()
		table := experiment.Figures[f](opts)
		if *csv {
			fmt.Fprint(stdout, experiment.FormatTableCSV(table))
			continue
		}
		fmt.Fprint(stdout, experiment.FormatTable(table))
		fmt.Fprintf(stdout, "(%d graphs/point, seed %d, %.1fs)\n\n",
			*graphs, *seed, time.Since(start).Seconds())
		if *plot {
			var series []textplot.Series
			for i, ser := range table.Series {
				series = append(series, textplot.Series{Name: ser.Name, Values: table.SuccessRow(i)})
			}
			fmt.Fprintln(stdout, textplot.Plot("", table.XValues, series,
				textplot.Options{Height: 12, Min: 0, Max: 1, Percent: true}))
		}
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				fmt.Fprintln(stderr, "slicebench:", err)
				return 1
			}
			var names []string
			var rows [][]float64
			for i, ser := range table.Series {
				names = append(names, ser.Name)
				rows = append(rows, table.SuccessRow(i))
			}
			path := fmt.Sprintf("%s/figure%d.svg", *svgDir, f)
			fh, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(stderr, "slicebench:", err)
				return 1
			}
			err = graphio.WriteChartSVG(fh, table.Title, table.XValues, names, rows)
			if cerr := fh.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(stderr, "slicebench:", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
	}
	return 0
}
