package main

import (
	"fmt"

	"repro/internal/degrade"
	"repro/internal/experiment"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

// studyDegrade measures graceful degradation on mixed-criticality
// workloads: as the fault intensity rises, the online mode controller
// climbs the degradation ladder, shedding optional work so the
// mandatory set keeps meeting its deadlines. Mandatory success is 1.0
// at every admitted level and the per-workload achieved value is
// non-increasing along the ramp by construction; the numbers worth
// comparing are how much value each policy retains per metric and how
// often the ladder saturates or rejects outright.
func studyDegrade() int {
	header("graceful degradation: achieved value under overload-triggered mode changes")
	intensities := []float64{0, 0.25, 0.5, 0.75, 1.0}
	run := func(metric slicing.Metric, pol degrade.Policy) (experiment.DegradeCurve, bool) {
		g := genCfg()
		g.OptionalProb = 0.5
		curve, err := experiment.DegradeRun(experiment.DegradeConfig{
			Gen: g, Metric: metric, Params: slicing.CalibratedParams(), WCET: wcet.AVG,
			NumGraphs: sw.graphs, MasterSeed: sw.seed, Workers: sw.workers,
			Intensities: intensities,
			Degrade:     degrade.Options{Policy: pol},
			Reclaim:     true,
			Timeout:     sw.wtimeout,
			Pipe:        sw.pipe,
		})
		if err != nil {
			fmt.Fprintf(sw.errw, "sweep: %v\n", err)
			return curve, false
		}
		return curve, true
	}

	metrics := marginMetrics()
	fmt.Fprintln(sw.w, "  mixed-criticality workloads (p(optional)=0.50, slack reclamation on);")
	fmt.Fprintln(sw.w, "  mean achieved value% / mandatory-success% per fault intensity:")
	for _, pol := range degrade.Policies {
		curves := make([]experiment.DegradeCurve, len(metrics))
		for mi, metric := range metrics {
			c, ok := run(metric, pol)
			if !ok {
				return 2
			}
			curves[mi] = c
		}
		fmt.Fprintf(sw.w, "  policy %v:\n", pol)
		for p, intensity := range intensities {
			fmt.Fprintf(sw.w, "  i=%.2f", intensity)
			for mi, metric := range metrics {
				pt := curves[mi].Points[p]
				fmt.Fprintf(sw.w, "  %s %5.1f%%/%5.1f%%", metric.Name(),
					100*pt.Value.Mean(), 100*pt.MandatoryMet.Value())
			}
			fmt.Fprintln(sw.w)
		}
		// One detail row per policy: how hard ADAPT-L worked at the top
		// of the ramp (the other metrics face identical scenarios).
		for mi, metric := range metrics {
			if metric.Name() != "ADAPT-L" {
				continue
			}
			pt := curves[mi].Points[len(intensities)-1]
			fmt.Fprintf(sw.w, "    (ADAPT-L at i=1.00: mean level %.2f, %d escalations, %d saturated, %d rejected)\n",
				pt.Level.Mean(), pt.Escalations, pt.Saturated, pt.Rejected)
		}
	}
	fmt.Fprintln(sw.w, "  (value is the admitted mode's retained fraction, 0 when even the top")
	fmt.Fprintln(sw.w, "   mode misses mandatory deadlines; misses are judged against the")
	fmt.Fprintln(sw.w, "   re-sliced windows of the admitted mode's own re-verified plan)")
	return 0
}
