package main

import (
	"fmt"

	"repro/internal/experiment"
	"repro/internal/robust"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

// marginMetrics is the metric set of the robustness-margin study: the
// paper's four plus the resource-aware extension.
func marginMetrics() []slicing.Metric {
	return append(slicing.Metrics(), slicing.AdaptR())
}

// The journaled cells. All fields are exported so they roundtrip through
// the JSON journal, and the renderer reads only the cell — never the
// live point — so a resumed sweep prints byte-identically to an
// uninterrupted one (float64 survives encoding/json exactly).
type breakdownCell struct {
	Mean      float64 `json:"mean"`
	Max       float64 `json:"max"`
	Unbounded int     `json:"unbounded"`
	NomSucc   int     `json:"nom_succ"`
	NomTotal  int     `json:"nom_total"`
	Errors    int     `json:"errors"`
	Timeouts  int     `json:"timeouts"`
	Abandoned int     `json:"abandoned,omitempty"`
}

type marginCell struct {
	Succ     int     `json:"succ"`
	Total    int     `json:"total"`
	MissMean float64 `json:"miss_mean"`
	Overruns int     `json:"overruns"`
	Errors   int     `json:"errors"`
}

type resliceCell struct {
	RecSucc   int     `json:"rec_succ"`
	RecTotal  int     `json:"rec_total"`
	ItersMean float64 `json:"iters_mean"`
	Errors    int     `json:"errors"`
	// Correction rounds re-planned incrementally (pipeline.Rebuild) and
	// the subset answered from cache residency. omitempty keeps journals
	// written before these columns replayable.
	Rebuilds    int `json:"rebuilds,omitempty"`
	RebuildHits int `json:"rebuild_hits,omitempty"`
}

// cell returns the journaled value for key, computing and recording it
// on a miss. With a nil journal it always computes.
func cell[T any](j *experiment.Journal, key string, compute func() T) (T, error) {
	var c T
	ok, err := j.Lookup(key, &c)
	if err != nil || ok {
		return c, err
	}
	c = compute()
	return c, j.Record(key, c)
}

// studyMargins measures how much estimation error each metric's
// assignments absorb: breakdown factors (the critical uniform WCET
// scaling survived), success ratios under the wcet estimation-error
// models, and the adaptive re-slicing recovery rate. It is the one
// study wired to the -checkpoint/-resume journal.
func studyMargins() int {
	header("robustness margins under WCET estimation error")
	fingerprint := fmt.Sprintf("margins graphs=%d seed=%d m=%d olr=%g",
		sw.graphs, sw.seed, sw.m, sw.olr)
	var journal *experiment.Journal
	if sw.checkpoint != "" {
		var err error
		journal, err = experiment.OpenJournal(sw.checkpoint, fingerprint, sw.resume)
		if err != nil {
			fmt.Fprintf(sw.errw, "sweep: %v\n", err)
			return 2
		}
		defer journal.Close()
	}
	baseCfg := func(metric slicing.Metric) experiment.MarginConfig {
		return experiment.MarginConfig{
			Gen: genCfg(), Metric: metric, Params: slicing.CalibratedParams(), WCET: wcet.AVG,
			NumGraphs: sw.graphs, MasterSeed: sw.seed, Workers: sw.workers, Timeout: sw.wtimeout,
			Pipe: sw.pipe, Release: sw.rel,
		}
	}

	// Breakdown factors: the largest uniform execution-time scaling each
	// metric's assignments survive (bisection, capped at 4×). The
	// nominal column is the unscaled success ratio — identical to the
	// time-driven row of -study sched by construction.
	fmt.Fprintln(sw.w, "  breakdown factor (critical WCET scale, cap 4x; mean over sample):")
	for _, metric := range marginMetrics() {
		c, err := cell(journal, "breakdown/"+metric.Name(), func() breakdownCell {
			pt := experiment.BreakdownRun(baseCfg(metric))
			return breakdownCell{
				Mean: pt.Factor.Mean(), Max: pt.Factor.Max(), Unbounded: pt.Unbounded,
				NomSucc: pt.Nominal.Succ, NomTotal: pt.Nominal.Total,
				Errors: pt.Errors, Timeouts: pt.Timeouts, Abandoned: pt.Abandoned,
			}
		})
		if err != nil {
			fmt.Fprintf(sw.errw, "sweep: %v\n", err)
			return 2
		}
		fmt.Fprintf(sw.w, "  %-8s mean %5.2f  max %5.2f  unbounded %3.0f%%  nominal %5.1f%%",
			metric.Name(), c.Mean, c.Max,
			100*float64(c.Unbounded)/float64(max(c.NomTotal, 1)),
			100*float64(c.NomSucc)/float64(max(c.NomTotal, 1)))
		if c.Errors > 0 || c.Timeouts > 0 || c.Abandoned > 0 {
			fmt.Fprintf(sw.w, "  (%d errors, %d timeouts", c.Errors, c.Timeouts)
			if c.Abandoned > 0 {
				// Abandoned workload bodies were still running at pool
				// drain despite cooperative cancellation — a stage ran a
				// long uninterruptible computation.
				fmt.Fprintf(sw.w, ", %d abandoned", c.Abandoned)
			}
			fmt.Fprint(sw.w, ")")
		}
		fmt.Fprintln(sw.w)
	}

	// Estimation-error sweep: assignments planned from the estimates,
	// executed under perturbed truth. Level 0 of every model is the
	// zero-perturbation identity row.
	fmt.Fprintln(sw.w, "  success% when true WCETs deviate from the estimates:")
	for _, kind := range wcet.ErrorKinds {
		for _, level := range []float64{0, 0.1, 0.25, 0.5} {
			fmt.Fprintf(sw.w, "  %-4v lvl=%.2f", kind, level)
			for _, metric := range marginMetrics() {
				key := fmt.Sprintf("margin/%v/%g/%s", kind, level, metric.Name())
				c, err := cell(journal, key, func() marginCell {
					cfg := baseCfg(metric)
					cfg.Model = wcet.ErrorModel{Kind: kind, Level: level}
					pt := experiment.MarginRun(cfg)
					return marginCell{
						Succ: pt.Success.Succ, Total: pt.Success.Total,
						MissMean: pt.MissRatio.Mean(), Overruns: pt.Overruns,
						Errors: pt.Errors,
					}
				})
				if err != nil {
					fmt.Fprintf(sw.errw, "sweep: %v\n", err)
					return 2
				}
				fmt.Fprintf(sw.w, "  %s %5.1f%%", metric.Name(),
					100*float64(c.Succ)/float64(max(c.Total, 1)))
			}
			fmt.Fprintln(sw.w)
		}
	}

	// Adaptive re-slicing: runs that missed under the strongest
	// multiplicative error feed the observed execution times back into
	// the slicer (bounded retries, backed-off inflation).
	fmt.Fprintln(sw.w, "  adaptive re-slicing recovery (mult error, lvl=0.50, <=4 retries):")
	for _, metric := range marginMetrics() {
		c, err := cell(journal, "reslice/"+metric.Name(), func() resliceCell {
			cfg := baseCfg(metric)
			cfg.Model = wcet.ErrorModel{Kind: wcet.ErrMultiplicative, Level: 0.5}
			cfg.Reslice = robust.ResliceOptions{MaxRetries: 4}
			pt := experiment.MarginRun(cfg)
			return resliceCell{
				RecSucc: pt.Recovered.Succ, RecTotal: pt.Recovered.Total,
				ItersMean: pt.ResliceIters.Mean(), Errors: pt.Errors,
				Rebuilds: pt.Rebuilds, RebuildHits: pt.RebuildHits,
			}
		})
		if err != nil {
			fmt.Fprintf(sw.errw, "sweep: %v\n", err)
			return 2
		}
		fmt.Fprintf(sw.w, "  %-8s recovered %3.0f%% of %d missed runs, mean %.1f feedback iterations",
			metric.Name(), 100*float64(c.RecSucc)/float64(max(c.RecTotal, 1)),
			c.RecTotal, c.ItersMean)
		if c.Rebuilds > 0 {
			fmt.Fprintf(sw.w, " (%d rebuilds, %d cached)", c.Rebuilds, c.RebuildHits)
		}
		fmt.Fprintln(sw.w)
	}
	fmt.Fprintln(sw.w, "  (misses are always judged against the originally assigned windows)")
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
