package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleStudy(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-study", "mode", "-graphs", "8"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"Consistent vs Faithful", "consistent", "faithful", "ADAPT-L"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunStudyGrid(t *testing.T) {
	// Exercise the cheap studies end-to-end at tiny sample sizes.
	for _, study := range []string{"kl", "kg", "cthres", "hom", "policy", "pinned", "adaptn"} {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-study", study, "-graphs", "4"}, &out, &errBuf); code != 0 {
			t.Errorf("%s: exit %d: %s", study, code, errBuf.String())
		}
		if !strings.Contains(out.String(), "==") {
			t.Errorf("%s: no header", study)
		}
	}
}

func TestRunFaultsStudy(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-study", "faults", "-graphs", "6"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"graceful degradation", "i=0.00", "i=1.00",
		"slack-reclamation", "ADAPT-L", "PURE"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// The robustness study is seed-stable: identical invocations print
// byte-identical tables (all randomness flows through the seeded
// per-workload and per-trace generators).
func TestRunFaultsStudyDeterministic(t *testing.T) {
	render := func() string {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-study", "faults", "-graphs", "6", "-seed", "7"}, &out, &errBuf); code != 0 {
			t.Fatalf("exit %d: %s", code, errBuf.String())
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("same seed, different tables:\n--- first\n%s--- second\n%s", a, b)
	}
}

func TestRunUnknownStudy(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-study", "astrology"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "unknown study") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
