package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleStudy(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-study", "mode", "-graphs", "8"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"Consistent vs Faithful", "consistent", "faithful", "ADAPT-L"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunStudyGrid(t *testing.T) {
	// Exercise the cheap studies end-to-end at tiny sample sizes.
	for _, study := range []string{"kl", "kg", "cthres", "hom", "policy", "pinned", "adaptn"} {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-study", study, "-graphs", "4"}, &out, &errBuf); code != 0 {
			t.Errorf("%s: exit %d: %s", study, code, errBuf.String())
		}
		if !strings.Contains(out.String(), "==") {
			t.Errorf("%s: no header", study)
		}
	}
}

func TestRunFaultsStudy(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-study", "faults", "-graphs", "6"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"graceful degradation", "i=0.00", "i=1.00",
		"slack-reclamation", "ADAPT-L", "PURE"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// The robustness study is seed-stable: identical invocations print
// byte-identical tables (all randomness flows through the seeded
// per-workload and per-trace generators).
func TestRunFaultsStudyDeterministic(t *testing.T) {
	render := func() string {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-study", "faults", "-graphs", "6", "-seed", "7"}, &out, &errBuf); code != 0 {
			t.Fatalf("exit %d: %s", code, errBuf.String())
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("same seed, different tables:\n--- first\n%s--- second\n%s", a, b)
	}
}

func TestRunDegradeStudy(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-study", "degrade", "-graphs", "4"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"graceful degradation", "policy shed-value",
		"policy shed-pset", "policy budget", "i=0.00", "i=1.00", "ADAPT-L", "ADAPT-R",
		"mean level"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// The degradation study is seed-stable for the same reason the faults
// study is: workloads and fault scenarios are derived from the master
// seed alone, and outcomes fold in index order.
func TestRunDegradeStudyDeterministic(t *testing.T) {
	render := func(workers string) string {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-study", "degrade", "-graphs", "4", "-seed", "7",
			"-workers", workers}, &out, &errBuf); code != 0 {
			t.Fatalf("exit %d: %s", code, errBuf.String())
		}
		return out.String()
	}
	if a, b := render("1"), render("5"); a != b {
		t.Errorf("same seed, different tables:\n--- workers=1\n%s--- workers=5\n%s", a, b)
	}
}

func TestRunMarginsStudy(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-study", "margins", "-graphs", "4"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"robustness margins", "breakdown factor",
		"mult lvl=0.00", "tail lvl=0.50", "re-slicing recovery", "ADAPT-R"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// The margins table is byte-identical whatever the worker count: the
// pool collects per-index results and folds them in index order, so the
// floating-point aggregation order never changes.
func TestRunMarginsWorkerIndependent(t *testing.T) {
	render := func(workers string) string {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-study", "margins", "-graphs", "4", "-workers", workers},
			&out, &errBuf); code != 0 {
			t.Fatalf("workers=%s: exit %d: %s", workers, code, errBuf.String())
		}
		return out.String()
	}
	one := render("1")
	for _, workers := range []string{"2", "7"} {
		if got := render(workers); got != one {
			t.Errorf("workers=%s changed the table:\n--- workers=1\n%s--- workers=%s\n%s",
				workers, one, workers, got)
		}
	}
}

// Kill-and-resume: a margins run checkpointed to a journal, interrupted
// (journal truncated mid-cell, torn trailing line included), then
// resumed, renders the final report byte-identically to the
// uninterrupted run.
func TestRunMarginsCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "margins.jsonl")
	args := []string{"-study", "margins", "-graphs", "4", "-checkpoint", journal}

	var full, errBuf bytes.Buffer
	if code := run(args, &full, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}

	// Simulate the crash: keep the header and the first few completed
	// cells, then a torn partial write.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 5 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	torn := strings.Join(lines[:4], "") + `{"key":"margin/mult/0.25/PU`
	if err := os.WriteFile(journal, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	var resumed bytes.Buffer
	errBuf.Reset()
	if code := run(append(args, "-resume"), &resumed, &errBuf); code != 0 {
		t.Fatalf("resume exit %d: %s", code, errBuf.String())
	}
	if resumed.String() != full.String() {
		t.Errorf("resumed report differs from the uninterrupted one:\n--- full\n%s--- resumed\n%s",
			full.String(), resumed.String())
	}
}

// Resuming a journal written under a different configuration must be
// refused (exit 2), not silently mixed in.
func TestRunMarginsCheckpointHeaderMismatch(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "margins.jsonl")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-study", "margins", "-graphs", "4", "-checkpoint", journal},
		&out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-study", "margins", "-graphs", "8", "-checkpoint", journal, "-resume"},
		&out, &errBuf); code != 2 {
		t.Fatalf("mismatched resume: exit %d, want 2 (stderr %q)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "header") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func TestRunUnknownStudy(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-study", "astrology"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "unknown study") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
