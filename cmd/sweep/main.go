// Command sweep runs the ablation studies the paper's discussion (§7)
// calls for, beyond the five headline figures:
//
//	-study kl      ADAPT-L sensitivity to the local adaptivity factor k_L
//	-study kg      ADAPT-G sensitivity to the global adaptivity factor k_G
//	-study cthres  sensitivity to the execution-time threshold factor
//	-study ccr     sensitivity to the communication-to-computation ratio
//	-study mode    Consistent vs Faithful slicing bookkeeping
//	-study sched   dispatcher vs planner vs insertion vs preemptive EDF
//	-study overlap slicing vs the overlapping-window baselines (UD/ED)
//	-study shape   robustness across graph structures (§1's decompositions)
//	-study res     resource contention: ADAPT-L vs the ADAPT-R extension (§7.3)
//	-study optgap  dispatcher-fault vs metric-fault failure attribution
//	-study late    mean max lateness under loose deadlines (§4.2)
//	-study hom     homogeneous single-class platforms (the [12] setting)
//	-study policy  dispatch policies: EDF vs DM vs FIFO vs LLF (§7.3)
//	-study pinned  strict vs relaxed locality constraints (§1)
//	-study headroom searched virtual costs vs ADAPT-L (annealing upper bound)
//	-study adaptn  ADAPT-N (NORM-shaped adaptive) across the ETD axis
//	-study faults  graceful degradation under injected faults (WCET
//	               overruns, processor loss, bus jitter) with and without
//	               online slack reclamation
//	-study margins robustness margins: breakdown factors (the critical
//	               WCET scaling each assignment survives), success under
//	               WCET estimation error (multiplicative, class-bias,
//	               heavy-tail), and adaptive re-slicing recovery
//	-study degrade graceful degradation on mixed-criticality workloads:
//	               achieved value vs fault intensity as the online mode
//	               controller sheds optional work (shed-value, shed-pset,
//	               budget policies)
//
// Each study prints a success-ratio table over its parameter axis for a
// three-processor system at the calibrated operating point.
//
// -release sporadic judges every plan over a recurring workload instead
// of a single release: each workload re-releases -releases times with a
// minimum inter-arrival time of -mit and up to -rjitter of release
// jitter, and a plan succeeds only when every release meets its shifted
// deadlines (the margins and faults studies likewise perturb the whole
// released horizon).
//
// Long sweeps can checkpoint: -checkpoint journal.jsonl records every
// completed cell, and -resume replays the journal so an interrupted run
// recomputes only the missing cells and renders byte-identically.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/anneal"
	"repro/internal/arch"
	"repro/internal/deadline"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

// cfgT carries the sweep-wide knobs; a value is built per invocation so
// the study functions stay testable.
type cfgT struct {
	graphs     int
	seed       int64
	m          int
	olr        float64
	workers    int
	checkpoint string
	resume     bool
	wtimeout   time.Duration
	stats      bool
	rel        gen.Release
	pipe       pipeline.Shared
	w          io.Writer
	errw       io.Writer
}

var sw cfgT

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	graphs := fs.Int("graphs", 512, "workloads per data point")
	seed := fs.Int64("seed", 19990412, "master seed")
	m := fs.Int("m", 3, "number of processors")
	olr := fs.Float64("olr", experiment.DefaultOLR, "overall laxity ratio")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	study := fs.String("study", "", "study to run (empty = all)")
	checkpoint := fs.String("checkpoint", "", "journal completed cells to this file (margins study)")
	resume := fs.Bool("resume", false, "replay the -checkpoint journal before computing")
	wtimeout := fs.Duration("wtimeout", 0, "per-workload wall-clock budget (0 = none; margins study)")
	stats := fs.Bool("stats", false, "print the pipeline per-stage time/alloc breakdown after the studies")
	release := fs.String("release", "single", "release model the studies judge plans under (single, sporadic)")
	releases := fs.Int("releases", 8, "releases per workload under -release sporadic")
	mit := fs.Int64("mit", 1000, "minimum inter-arrival time between releases (sporadic)")
	rjitter := fs.Int64("rjitter", 0, "release jitter on top of the minimum inter-arrival time (sporadic)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	relMode, err := gen.ParseReleaseMode(*release)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: -release: %v\n", err)
		return 2
	}
	rel := gen.Release{Mode: relMode, Count: *releases,
		MinGap: rtime.Time(*mit), Jitter: rtime.Time(*rjitter)}
	if relMode == gen.ReleaseSporadic {
		if err := rel.Validate(); err != nil {
			fmt.Fprintf(stderr, "sweep: %v\n", err)
			return 2
		}
	}
	sw = cfgT{graphs: *graphs, seed: *seed, m: *m, olr: *olr, workers: *workers,
		checkpoint: *checkpoint, resume: *resume, wtimeout: *wtimeout, stats: *stats,
		rel: rel, w: stdout, errw: stderr}
	// One plan cache and recorder shared by every study of the
	// invocation: workloads revisited across studies (same seed, metric,
	// parameters, scheduler) reuse their plans, and -stats aggregates
	// every build. Allocation counters need per-stage ReadMemStats
	// sampling, so they are only taken when -stats asks for the table.
	sw.pipe = pipeline.Shared{Cache: pipeline.NewCache(4096)}
	if sw.stats {
		sw.pipe.Recorder = pipeline.NewRecorder(true)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "sweep: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "sweep: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "sweep: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "sweep: %v\n", err)
			}
		}()
	}
	if sw.stats {
		defer func() {
			fmt.Fprintf(sw.w, "\n%s  plan cache: %d plans resident\n",
				sw.pipe.Recorder.Summary().Format(), sw.pipe.Cache.Len())
		}()
	}

	// ok adapts the infallible studies to the exit-code signature the
	// checkpointing ones need.
	ok := func(f func()) func() int {
		return func() int { f(); return 0 }
	}
	studies := map[string]func() int{
		"kl":       ok(studyKL),
		"kg":       ok(studyKG),
		"cthres":   ok(studyCThres),
		"ccr":      ok(studyCCR),
		"mode":     ok(studyMode),
		"sched":    ok(studySched),
		"overlap":  ok(studyOverlap),
		"shape":    ok(studyShape),
		"res":      ok(studyResources),
		"optgap":   ok(studyOptGap),
		"late":     ok(studyLateness),
		"hom":      ok(studyHom),
		"policy":   ok(studyPolicy),
		"pinned":   ok(studyPinned),
		"headroom": ok(studyHeadroom),
		"adaptn":   ok(studyAdaptN),
		"faults":   ok(studyFaults),
		"margins":  studyMargins,
		"degrade":  studyDegrade,
	}
	if *study != "" {
		f, ok := studies[*study]
		if !ok {
			fmt.Fprintf(stderr, "sweep: unknown study %q\n", *study)
			return 2
		}
		return f()
	}
	code := 0
	for _, name := range []string{"kl", "kg", "cthres", "ccr", "mode", "sched", "overlap", "shape", "res", "optgap", "late", "hom", "policy", "pinned", "headroom", "adaptn", "faults", "margins", "degrade"} {
		if c := studies[name](); c != 0 {
			code = c
		}
		fmt.Fprintln(sw.w)
	}
	return code
}

func genCfg() gen.Config {
	g := gen.Default(sw.m)
	g.OLR = sw.olr
	return g
}

func runPoint(g gen.Config, metric slicing.Metric, params slicing.Params, schd experiment.Scheduler) float64 {
	pt := experiment.Run(experiment.Config{
		Gen: g, Metric: metric, Params: params, WCET: wcet.AVG,
		NumGraphs: sw.graphs, MasterSeed: sw.seed, Workers: sw.workers, Scheduler: schd,
		Pipe: sw.pipe, Release: sw.rel,
	})
	return 100 * pt.Success.Value()
}

// pointSucc renders the success percentage of one ad-hoc pipeline
// configuration — any distributor, any dispatcher — over the standard
// workload sample. A workload failing at any stage simply does not
// count as a success, as in all the ablation studies.
func pointSucc(cfg gen.Config, dist deadline.Distributor, disp pipeline.Dispatcher) float64 {
	b := &pipeline.Builder{
		Distributor: dist,
		Dispatcher:  disp,
		Cache:       sw.pipe.Cache,
		Recorder:    sw.pipe.Recorder,
	}
	succ := 0
	for idx := 0; idx < sw.graphs; idx++ {
		cfg.Seed = gen.SubSeed(sw.seed, idx)
		w, err := gen.Generate(cfg)
		if err != nil {
			continue
		}
		plan, err := b.Build(pipeline.Spec{Graph: w.Graph, Platform: w.Platform})
		if err != nil {
			continue
		}
		if plan.Verdict.Feasible {
			succ++
		}
	}
	return 100 * float64(succ) / float64(sw.graphs)
}

// sliced is the standard calibrated distributor of the ablations.
func sliced(metric slicing.Metric) deadline.Distributor {
	return deadline.Sliced{Metric: metric, Params: slicing.CalibratedParams()}
}

func header(title string) {
	fmt.Fprintf(sw.w, "== %s (m=%d, OLR=%.2f, %d graphs/point", title, sw.m, sw.olr, sw.graphs)
	if sw.rel.Mode == gen.ReleaseSporadic {
		fmt.Fprintf(sw.w, ", sporadic %d×T=%d J=%d", sw.rel.Count, sw.rel.MinGap, sw.rel.Jitter)
	}
	fmt.Fprintln(sw.w, ") ==")
}

func studyKL() {
	header("ADAPT-L sensitivity to k_L (§7.1)")
	for _, kl := range []float64{0.02, 0.05, 0.08, 0.1, 0.15, 0.2, 0.3} {
		p := slicing.CalibratedParams()
		p.KL = kl
		fmt.Fprintf(sw.w, "  k_L=%.2f  %5.1f%%\n", kl, runPoint(genCfg(), slicing.AdaptL(), p, experiment.TimeDriven))
	}
}

func studyKG() {
	header("ADAPT-G sensitivity to k_G (§7.1)")
	for _, kg := range []float64{0.1, 0.25, 0.5, 0.75, 1.0, 1.5} {
		p := slicing.CalibratedParams()
		p.KG = kg
		fmt.Fprintf(sw.w, "  k_G=%.2f  %5.1f%%\n", kg, runPoint(genCfg(), slicing.AdaptG(), p, experiment.TimeDriven))
	}
}

func studyCThres() {
	header("ADAPT-L sensitivity to c_thres factor")
	for _, f := range []float64{0.5, 0.75, 1.0, 1.25, 1.5} {
		p := slicing.CalibratedParams()
		p.CThresFactor = f
		fmt.Fprintf(sw.w, "  c_thres=%.2f·c_mean  %5.1f%%\n", f, runPoint(genCfg(), slicing.AdaptL(), p, experiment.TimeDriven))
	}
}

func studyCCR() {
	header("sensitivity to CCR (paper fixes 0.1)")
	for _, ccr := range []float64{0, 0.05, 0.1, 0.2, 0.5, 1.0} {
		g := genCfg()
		g.CCR = ccr
		fmt.Fprintf(sw.w, "  CCR=%.2f  ADAPT-L %5.1f%%  PURE %5.1f%%\n", ccr,
			runPoint(g, slicing.AdaptL(), slicing.CalibratedParams(), experiment.TimeDriven),
			runPoint(g, slicing.PURE(), slicing.CalibratedParams(), experiment.TimeDriven))
	}
}

func studyMode() {
	header("Consistent vs Faithful constraint bookkeeping (DESIGN.md)")
	for _, mode := range []slicing.Mode{slicing.Consistent, slicing.Faithful} {
		p := slicing.CalibratedParams()
		p.Mode = mode
		fmt.Fprintf(sw.w, "  %-10v", mode)
		for _, metric := range slicing.Metrics() {
			fmt.Fprintf(sw.w, "  %s %5.1f%%", metric.Name(), runPoint(genCfg(), metric, p, experiment.TimeDriven))
		}
		fmt.Fprintln(sw.w)
	}
}

func studySched() {
	header("time-driven dispatcher vs offline planner")
	for _, schd := range []experiment.Scheduler{experiment.TimeDriven, experiment.Planner} {
		fmt.Fprintf(sw.w, "  %-12v", schd)
		for _, metric := range slicing.Metrics() {
			fmt.Fprintf(sw.w, "  %s %5.1f%%", metric.Name(),
				runPoint(genCfg(), metric, slicing.CalibratedParams(), schd))
		}
		fmt.Fprintln(sw.w)
	}
	// The extension schedulers, through the same pipeline core.
	for _, disp := range []pipeline.Dispatcher{pipeline.Insertion(), pipeline.Preemptive()} {
		fmt.Fprintf(sw.w, "  %-12s", disp.Name)
		for _, metric := range slicing.Metrics() {
			fmt.Fprintf(sw.w, "  %s %5.1f%%", metric.Name(), pointSucc(genCfg(), sliced(metric), disp))
		}
		fmt.Fprintln(sw.w)
	}
}

func studyShape() {
	header("robustness across graph structures")
	// Serial-heavy shapes (fork-join) have far less parallelism, so the
	// same OLR is much tighter relative to their critical path; show two
	// tightness rows per shape.
	for _, shape := range gen.Shapes {
		for _, olrV := range []float64{sw.olr, sw.olr + 0.25} {
			fmt.Fprintf(sw.w, "  %-10v OLR=%.2f", shape, olrV)
			for _, metric := range slicing.Metrics() {
				cfg := genCfg()
				cfg.Shape = shape
				cfg.OLR = olrV
				fmt.Fprintf(sw.w, "  %s %5.1f%%", metric.Name(),
					runPoint(cfg, metric, slicing.CalibratedParams(), experiment.TimeDriven))
			}
			fmt.Fprintln(sw.w)
		}
	}
}

func studyResources() {
	header("exclusive-resource contention: ADAPT-L vs ADAPT-R (§7.3)")
	for _, prob := range []float64{0, 0.2, 0.4} {
		cfg := genCfg()
		if prob > 0 {
			cfg.NumResources = 2
			cfg.ResourceProb = prob
		}
		fmt.Fprintf(sw.w, "  p(res)=%.1f  ADAPT-L %5.1f%%  ADAPT-R %5.1f%%\n", prob,
			runPoint(cfg, slicing.AdaptL(), slicing.CalibratedParams(), experiment.TimeDriven),
			runPoint(cfg, slicing.AdaptR(), slicing.CalibratedParams(), experiment.TimeDriven))
	}
}

func studyOptGap() {
	header("failure attribution: dispatcher vs deadline distribution (small graphs)")
	for _, metric := range []slicing.Metric{slicing.PURE(), slicing.AdaptL()} {
		res := experiment.OptGap(experiment.OptGapConfig{
			Metric:     metric,
			Params:     slicing.CalibratedParams(),
			M:          2,
			OLR:        sw.olr,
			MinTasks:   8,
			MaxTasks:   12,
			NumGraphs:  min(sw.graphs, 200),
			MasterSeed: sw.seed,
			NodeBudget: 400_000,
			Workers:    sw.workers,
			Pipe:       sw.pipe,
		})
		fmt.Fprintf(sw.w, "  %-8s %v\n", metric.Name(), res)
	}
}

func studyLateness() {
	header("mean max lateness under loose deadlines (§4.2 secondary measure)")
	opts := experiment.DefaultOptions()
	opts.NumGraphs = sw.graphs
	opts.MasterSeed = sw.seed
	opts.Workers = sw.workers
	fmt.Fprint(sw.w, experiment.FormatLatenessTable(experiment.LatenessStudy(opts)))
}

func studyHom() {
	header("homogeneous single-class platform (the setting of [12])")
	// Identical processors, one class, no per-class ineligibility: the
	// configuration the ADAPT metrics were first proposed for. The same
	// ordering should hold without any heterogeneity in play.
	for _, metric := range slicing.Metrics() {
		cfg := genCfg()
		cfg.Kind = arch.Identical
		cfg.MinClasses, cfg.MaxClasses = 1, 1
		cfg.IneligibleProb = 0
		fmt.Fprintf(sw.w, "  %s %5.1f%%", metric.Name(),
			runPoint(cfg, metric, slicing.CalibratedParams(), experiment.TimeDriven))
	}
	fmt.Fprintln(sw.w)
}

func studyPolicy() {
	header("dispatch policies under ADAPT-L windows (§7.3)")
	for _, pol := range sched.Policies {
		fmt.Fprintf(sw.w, "  %-5v %5.1f%%\n", pol,
			pointSucc(genCfg(), sliced(slicing.AdaptL()), pipeline.WithPolicy(pol)))
	}
}

func studyPinned() {
	header("strict vs relaxed locality constraints (§1)")
	// Pin an increasing fraction of the boundary (sensor/actuator)
	// tasks; pinned tasks have exact a-priori WCETs but zero assignment
	// freedom.
	for _, prob := range []float64{0, 0.25, 0.5, 1.0} {
		fmt.Fprintf(sw.w, "  pin=%.2f ", prob)
		for _, metric := range slicing.Metrics() {
			cfg := genCfg()
			cfg.PinProb = prob
			fmt.Fprintf(sw.w, "  %s %5.1f%%", metric.Name(),
				runPoint(cfg, metric, slicing.CalibratedParams(), experiment.TimeDriven))
		}
		fmt.Fprintln(sw.w)
	}
}

func studyHeadroom() {
	header("headroom above ADAPT-L: annealed virtual costs (related work [15])")
	graphsN := min(sw.graphs, 120)
	builder := &pipeline.Builder{
		Distributor: sliced(slicing.AdaptL()),
		Cache:       sw.pipe.Cache,
		Recorder:    sw.pipe.Recorder,
	}
	alSucc, annSucc := 0, 0
	for idx := 0; idx < graphsN; idx++ {
		cfg := genCfg()
		cfg.Seed = gen.SubSeed(sw.seed, idx)
		w, err := gen.Generate(cfg)
		if err != nil {
			continue
		}
		plan, err := builder.Build(pipeline.Spec{Graph: w.Graph, Platform: w.Platform})
		if err != nil {
			continue
		}
		if plan.Verdict.Feasible {
			alSucc++
			annSucc++ // annealing starts from ADAPT-L: never worse
			continue
		}
		res, err := anneal.Search(w.Graph, w.Platform, plan.Estimates, slicing.CalibratedParams(),
			anneal.Options{Iterations: 300, Seed: gen.SubSeed(sw.seed+1, idx)})
		if err != nil {
			continue
		}
		if res.Schedule.Feasible {
			annSucc++
		}
	}
	fmt.Fprintf(sw.w, "  ADAPT-L %5.1f%%   annealed ĉ %5.1f%%   (%d workloads; the gap is the\n",
		100*float64(alSucc)/float64(graphsN), 100*float64(annSucc)/float64(graphsN), graphsN)
	fmt.Fprintln(sw.w, "   headroom any closed-form virtual-cost metric could still claim)")
}

func studyAdaptN() {
	header("ADAPT-N: NORM-shaped adaptive metric across ETD (§6.3 follow-up)")
	metrics := []slicing.Metric{slicing.NORM(), slicing.AdaptG(), slicing.AdaptL(), slicing.AdaptN()}
	for _, etd := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		fmt.Fprintf(sw.w, "  ETD=%3.0f%%", etd*100)
		for _, metric := range metrics {
			cfg := genCfg()
			cfg.ETD = etd
			fmt.Fprintf(sw.w, "  %s %5.1f%%", metric.Name(),
				runPoint(cfg, metric, slicing.CalibratedParams(), experiment.TimeDriven))
		}
		fmt.Fprintln(sw.w)
	}
}

func studyFaults() {
	header("graceful degradation under injected faults (robustness)")
	runFaultPoint := func(metric slicing.Metric, intensity float64, reclaim bool) experiment.FaultPoint {
		return experiment.FaultRun(experiment.FaultConfig{
			Gen: genCfg(), Metric: metric, Params: slicing.CalibratedParams(), WCET: wcet.AVG,
			NumGraphs: sw.graphs, MasterSeed: sw.seed, Workers: sw.workers,
			Intensity: intensity, Reclaim: reclaim, Pipe: sw.pipe, Release: sw.rel,
		})
	}
	// Success ratio and per-run task miss ratio per metric as the fault
	// intensity rises; intensity 0 is the nominal time-driven row of
	// -study sched.
	intensities := []float64{0, 0.25, 0.5, 0.75, 1.0}
	fmt.Fprintf(sw.w, "  success%% / mean task-miss%% per run:\n")
	for _, intensity := range intensities {
		fmt.Fprintf(sw.w, "  i=%.2f", intensity)
		for _, metric := range slicing.Metrics() {
			p := runFaultPoint(metric, intensity, false)
			fmt.Fprintf(sw.w, "  %s %5.1f%%/%4.1f%%", metric.Name(),
				100*p.Success.Value(), 100*p.MissRatio.Mean())
		}
		fmt.Fprintln(sw.w)
	}
	// Recovery: the same faulted runs with online slack reclamation.
	fmt.Fprintln(sw.w, "  with slack-reclamation recovery:")
	for _, intensity := range intensities {
		fmt.Fprintf(sw.w, "  i=%.2f", intensity)
		for _, metric := range slicing.Metrics() {
			p := runFaultPoint(metric, intensity, true)
			fmt.Fprintf(sw.w, "  %s %5.1f%%/%4.1f%%", metric.Name(),
				100*p.Success.Value(), 100*p.MissRatio.Mean())
		}
		fmt.Fprintln(sw.w)
	}
	p := runFaultPoint(slicing.AdaptL(), 1, true)
	fmt.Fprintf(sw.w, "  (ADAPT-L at i=1.00: %d overruns, %d aborts, %d migrations, %d reclamations\n",
		p.Overruns, p.Aborted, p.Migrations, p.Reclamations)
	fmt.Fprintf(sw.w, "   over %d runs; misses are always judged against the original windows)\n",
		sw.graphs)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func studyOverlap() {
	header("slicing vs overlapping-window baselines (UD/ED)")
	dists := []deadline.Distributor{
		deadline.Sliced{Metric: slicing.AdaptL(), Params: slicing.CalibratedParams()},
		deadline.Sliced{Metric: slicing.PURE(), Params: slicing.CalibratedParams()},
		deadline.UD{},
		deadline.ED{},
	}
	for _, d := range dists {
		fmt.Fprintf(sw.w, "  %-14s %5.1f%%\n", d.Name(), pointSucc(genCfg(), d, pipeline.TimeDriven()))
	}
	fmt.Fprintln(sw.w, "  (UD/ED check only the end-to-end deadline; slicing additionally")
	fmt.Fprintln(sw.w, "   guarantees I1/I2 — independent per-processor scheduling, no jitter)")
}
