// Command loadgen drives a pland fleet through a timed load profile
// using the fault-tolerant fleet client (consistent-hash routing,
// retries, hedging, circuit breakers) and writes a JSON summary of
// what the fleet delivered: request availability split by criticality,
// served quality (full vs brownout-degraded), latency percentiles, the
// client's retry/hedge/breaker counters, and the fleet-wide
// build/hit/shed accounting scraped from every peer's /metrics.
//
//	go run ./cmd/loadgen -peers p0=http://127.0.0.1:18080,p1=...,p2=... \
//	    -duration 30s -concurrency 8 -out BENCH_serve.json
//
// Two load modes:
//
//   - closed loop (default): -concurrency workers each issue the next
//     request when the previous answers, so offered load adapts to the
//     fleet's speed;
//   - open loop (-rate R): requests launch at R per second regardless
//     of responses, capped at -max-outstanding in flight — the honest
//     way to model overload, where clients do not slow down just
//     because the service did.
//
// A fraction of requests (-optional-frac) is marked
// X-Plan-Criticality: optional, so an overloaded or degraded fleet
// sheds them first; -min-mandatory-availability turns the run into an
// assertion (non-zero exit below the bar). Policy refusals — 429 and
// 503, both carrying Retry-After — count as shed, not failed: the
// availability bar measures whether the fleet answered within its
// overload contract, and only transport errors and unexpected statuses
// count against it.
//
// With -overload-rate set, a second phase follows the main one: fresh,
// never-repeated workloads (every request a guaranteed cold build) at
// the given open-loop rate for -overload-duration, reported separately
// under "overload" with the brownout counters scraped from the fleet.
// scripts/overload-smoke.sh uses it to drive the fleet past its
// sustainable rate and assert the brownout ladder degrades service
// instead of failing it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/client"
	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/pipeline"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// Report is the JSON document loadgen emits (BENCH_serve.json).
type Report struct {
	Config    Config         `json:"config"`
	Requests  Requests       `json:"requests"`
	LatencyMS Latency        `json:"latency_ms"`
	Client    ClientSnap     `json:"client"`
	Fleet     Fleet          `json:"fleet"`
	Overload  *OverloadPhase `json:"overload,omitempty"`
}

// Config echoes the run parameters.
type Config struct {
	Peers            []string `json:"peers"`
	Duration         string   `json:"duration"`
	Concurrency      int      `json:"concurrency"`
	Rate             float64  `json:"rate,omitempty"`
	Workloads        int      `json:"workloads"`
	Tasks            int      `json:"tasks,omitempty"`
	OptionalFrac     float64  `json:"optionalFrac"`
	Seed             int64    `json:"seed"`
	OverloadRate     float64  `json:"overloadRate,omitempty"`
	OverloadDuration string   `json:"overloadDuration,omitempty"`
}

// Tier is one criticality tier's request accounting. Degraded counts
// 200s served under brownout at reduced quality; they are a subset of
// OK — a degraded answer is a served answer.
type Tier struct {
	Total        int64   `json:"total"`
	OK           int64   `json:"ok"`
	Degraded     int64   `json:"degraded"`
	Shed         int64   `json:"shed"`
	Failed       int64   `json:"failed"`
	Availability float64 `json:"availability"`
}

// Requests is the end-to-end request accounting. Aborted counts
// requests cut off by the run deadline itself; they are excluded from
// every tier and from availability.
type Requests struct {
	Total     int64 `json:"total"`
	Aborted   int64 `json:"aborted"`
	Mandatory Tier  `json:"mandatory"`
	Optional  Tier  `json:"optional"`
}

// Latency is the successful-request latency distribution.
type Latency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// OverloadPhase is the second-phase report: fresh workloads offered
// open-loop past the sustainable rate, plus the brownout accounting
// the fleet exported afterwards.
type OverloadPhase struct {
	Rate      float64  `json:"rate"`
	Duration  string   `json:"duration"`
	Requests  Requests `json:"requests"`
	LatencyMS Latency  `json:"latency_ms"`
	// Dropped counts requests the open loop never launched because the
	// outstanding cap was full — offered load the client itself shed.
	Dropped int64 `json:"dropped"`
	// Fleet-wide brownout counters scraped after the phase.
	PlansFull           float64 `json:"plansFull"`
	PlansDegraded       float64 `json:"plansDegraded"`
	AdmissionShed       float64 `json:"admissionShed"`
	CacheOnlyMisses     float64 `json:"cacheOnlyMisses"`
	BrownoutTransitions float64 `json:"brownoutTransitions"`
	// BrownoutLevelMax is the deepest rung any peer still reported at
	// scrape time (gauges, so 0 after a full recovery).
	BrownoutLevelMax float64 `json:"brownoutLevelMax"`
}

// ClientSnap folds the fleet client's reliability counters.
type ClientSnap struct {
	Attempts        int64 `json:"attempts"`
	Retries         int64 `json:"retries"`
	Hedges          int64 `json:"hedges"`
	HedgeWins       int64 `json:"hedgeWins"`
	BreakerRefusals int64 `json:"breakerRefusals"`
	BreakerOpens    int64 `json:"breakerOpens"`
	BreakerCloses   int64 `json:"breakerCloses"`
	ConnectRefused  int64 `json:"connectRefused"`
	Timeouts        int64 `json:"timeouts"`
	HTTPFailures    int64 `json:"httpFailures"`
}

// PeerStats is one peer's /metrics accounting after the run.
type PeerStats struct {
	Peer          string  `json:"peer"`
	Scraped       bool    `json:"scraped"`
	Builds        float64 `json:"builds"`
	CacheHits     float64 `json:"cacheHits"`
	Coalesced     float64 `json:"coalesced"`
	ShedOptional  float64 `json:"shedOptional"`
	ShedMandatory float64 `json:"shedMandatory"`
	// PlansFull/PlansDegraded split 200s by served quality; the
	// admission and brownout counters account the overload machinery.
	PlansFull           float64 `json:"plansFull"`
	PlansDegraded       float64 `json:"plansDegraded"`
	AdmissionShed       float64 `json:"admissionShed"`
	CacheOnlyMisses     float64 `json:"cacheOnlyMisses"`
	BrownoutTransitions float64 `json:"brownoutTransitions"`
	BrownoutLevel       float64 `json:"brownoutLevel"`
	// WarmFillPulled/Pushed and SnapshotLoaded account the recovery
	// machinery: plans replicated in from peer digests, hinted plans
	// handed back to a returned owner, and plans restored from a local
	// snapshot on start.
	WarmFillPulled float64 `json:"warmFillPulled"`
	WarmFillPushed float64 `json:"warmFillPushed"`
	SnapshotLoaded float64 `json:"snapshotLoaded"`
}

// Fleet sums the per-peer accounting. Builds against Workloads is the
// duplicate-cold-build check: a healthy fleet builds each distinct
// fingerprint exactly once; peer deaths can migrate a key to a second
// builder, never more per incident.
type Fleet struct {
	Builds        float64 `json:"builds"`
	CacheHits     float64 `json:"cacheHits"`
	Coalesced     float64 `json:"coalesced"`
	ShedOptional  float64 `json:"shedOptional"`
	ShedMandatory float64 `json:"shedMandatory"`
	PlansFull     float64 `json:"plansFull"`
	PlansDegraded float64 `json:"plansDegraded"`
	// RecoveryRebuilds is max(0, Builds − Workloads): cold builds in
	// excess of one per distinct fingerprint, i.e. the rebuilds paid
	// because a key's plan was not where a request landed (owner dead,
	// peer restarted cold). With snapshots and warm fill on, it should
	// be 0 even across blackouts and kills.
	RecoveryRebuilds float64     `json:"recoveryRebuilds"`
	WarmFillPulled   float64     `json:"warmFillPulled"`
	WarmFillPushed   float64     `json:"warmFillPushed"`
	SnapshotLoaded   float64     `json:"snapshotLoaded"`
	Peers            []PeerStats `json:"peers"`
}

func run(ctx context.Context, args []string, stdout, logw io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(logw)
	peersSpec := fs.String("peers", "", "fleet peer list (name=url,... or url,...)")
	duration := fs.Duration("duration", 20*time.Second, "how long to generate load")
	concurrency := fs.Int("concurrency", 8, "parallel request workers (closed loop)")
	rate := fs.Float64("rate", 0, "open-loop request rate per second (0 = closed loop)")
	maxOutstanding := fs.Int("max-outstanding", 256, "open-loop in-flight cap; launches beyond it are dropped")
	workloads := fs.Int("workloads", 12, "distinct workloads cycled through (each is one fingerprint)")
	tasks := fs.Int("tasks", 0, "tasks per generated workload (0 = generator default); bigger graphs plan slower")
	optionalFrac := fs.Float64("optional-frac", 0.25, "fraction of requests marked optional criticality")
	seed := fs.Int64("seed", 1, "workload and traffic seed")
	hedgeAfter := fs.Duration("hedge-after", 100*time.Millisecond, "hedge to the next peer after this wait (0 disables)")
	attemptTimeout := fs.Duration("attempt-timeout", 5*time.Second, "per-attempt timeout")
	overloadRate := fs.Float64("overload-rate", 0, "run a second phase at this open-loop rate with fresh workloads (0 disables)")
	overloadDuration := fs.Duration("overload-duration", 10*time.Second, "length of the overload phase")
	minMandatory := fs.Float64("min-mandatory-availability", 0, "fail the run when mandatory availability lands below this (0 disables)")
	out := fs.String("out", "-", "report path (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peersSpec == "" {
		return errors.New("-peers is required")
	}
	peers, err := cluster.ParsePeers(*peersSpec)
	if err != nil {
		return fmt.Errorf("-peers: %w", err)
	}
	ring, err := cluster.NewRing(peers)
	if err != nil {
		return fmt.Errorf("-peers: %w", err)
	}
	// One shared transport with generous keep-alive pools: every worker
	// reuses warm connections instead of paying a TCP handshake per
	// request, which matters exactly when the point is to measure the
	// fleet and not the dialer.
	transport := &http.Transport{
		MaxIdleConns:        4 * *maxOutstanding,
		MaxIdleConnsPerHost: *maxOutstanding,
		IdleConnTimeout:     90 * time.Second,
	}
	defer transport.CloseIdleConnections()
	cl := client.New(ring, client.Options{
		HedgeAfter:     *hedgeAfter,
		AttemptTimeout: *attemptTimeout,
		Transport:      transport,
		Seed:           *seed,
	})
	scraper := &http.Client{Timeout: 2 * time.Second, Transport: transport}

	gcfg := gen.Default(3)
	if *tasks > 0 {
		gcfg.MinTasks, gcfg.MaxTasks = *tasks, *tasks
	}

	// Pre-generate the main-phase workload set; each distinct seed is
	// one fingerprint, routed to one ring owner.
	bodies := make([][]byte, *workloads)
	keys := make([]uint64, *workloads)
	for i := range bodies {
		keys[i], bodies[i], err = makeWorkload(gcfg, *seed+int64(i))
		if err != nil {
			return fmt.Errorf("workload %d: %w", i, err)
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// The rise callback expires a returned peer's breaker cooldown, so
	// traffic resumes within one probe interval of recovery.
	prober := cluster.NewProber(ring, cluster.ProberOptions{
		Interval: 250 * time.Millisecond,
		OnRise:   func(p *cluster.Peer) { cl.NoteRisen(p.Name) },
	})
	go prober.Run(runCtx)

	mode := "closed loop"
	if *rate > 0 {
		mode = fmt.Sprintf("open loop at %.1f req/s", *rate)
	}
	fmt.Fprintf(logw, "loadgen: %s, %d workloads, %v against %d peers\n",
		mode, *workloads, *duration, len(peers))
	main := runPhase(runCtx, phaseConfig{
		client:       cl,
		duration:     *duration,
		rate:         *rate,
		workers:      *concurrency,
		maxOut:       *maxOutstanding,
		optionalFrac: *optionalFrac,
		seed:         *seed,
		source: func(rnd *rand.Rand, _ int64) (uint64, []byte, error) {
			i := rnd.Intn(len(bodies))
			return keys[i], bodies[i], nil
		},
	})

	snap := cl.Snap()
	rep := Report{
		Config: Config{
			Peers:        peerNames(peers),
			Duration:     duration.String(),
			Concurrency:  *concurrency,
			Rate:         *rate,
			Workloads:    *workloads,
			Tasks:        *tasks,
			OptionalFrac: *optionalFrac,
			Seed:         *seed,
		},
		Requests:  main.req,
		LatencyMS: percentiles(main.latencies),
		Client: ClientSnap{
			Attempts:        snap.Attempts,
			Retries:         snap.Retries,
			Hedges:          snap.Hedges,
			HedgeWins:       snap.HedgeWins,
			BreakerRefusals: snap.BreakerRefusals,
			BreakerOpens:    snap.BreakerOpens,
			BreakerCloses:   snap.BreakerCloses,
			ConnectRefused:  snap.Failures[int(cluster.ConnectRefused)],
			Timeouts:        snap.Failures[int(cluster.Timeout)],
			HTTPFailures:    snap.Failures[int(cluster.HTTPStatus)],
		},
	}

	// distinct counts every fingerprint offered; the overload phase's
	// fresh workloads push it up so the final fleet scrape does not
	// mistake their legitimate cold builds for recovery rebuilds.
	distinct := int64(*workloads)
	if *overloadRate > 0 {
		rep.Config.OverloadRate = *overloadRate
		rep.Config.OverloadDuration = overloadDuration.String()
		fmt.Fprintf(logw, "loadgen: overload phase, fresh workloads open loop at %.1f req/s for %v\n",
			*overloadRate, *overloadDuration)
		before := scrapeFleet(scraper, peers, *workloads)
		var uniq atomic.Int64
		ov := runPhase(runCtx, phaseConfig{
			client:       cl,
			duration:     *overloadDuration,
			rate:         *overloadRate,
			workers:      *concurrency,
			maxOut:       *maxOutstanding,
			optionalFrac: *optionalFrac,
			seed:         *seed + 1_000_003,
			// Every overload request is a fresh fingerprint: a
			// guaranteed cold build somewhere, which is what actually
			// saturates planning capacity (the main phase's cycled set
			// is all cache hits after the first lap).
			source: func(_ *rand.Rand, _ int64) (uint64, []byte, error) {
				return makeWorkload(gcfg, *seed+2_000_003+uniq.Add(1))
			},
		})
		after := scrapeFleet(scraper, peers, *workloads)
		rep.Overload = &OverloadPhase{
			Rate:                *overloadRate,
			Duration:            overloadDuration.String(),
			Requests:            ov.req,
			LatencyMS:           percentiles(ov.latencies),
			Dropped:             ov.dropped,
			PlansFull:           after.PlansFull - before.PlansFull,
			PlansDegraded:       after.PlansDegraded - before.PlansDegraded,
			AdmissionShed:       sumPeer(after, func(p PeerStats) float64 { return p.AdmissionShed }) - sumPeer(before, func(p PeerStats) float64 { return p.AdmissionShed }),
			CacheOnlyMisses:     sumPeer(after, func(p PeerStats) float64 { return p.CacheOnlyMisses }) - sumPeer(before, func(p PeerStats) float64 { return p.CacheOnlyMisses }),
			BrownoutTransitions: sumPeer(after, func(p PeerStats) float64 { return p.BrownoutTransitions }) - sumPeer(before, func(p PeerStats) float64 { return p.BrownoutTransitions }),
			BrownoutLevelMax:    maxPeer(after, func(p PeerStats) float64 { return p.BrownoutLevel }),
		}
		distinct += uniq.Load()
	}

	rep.Fleet = scrapeFleet(scraper, peers, int(distinct))

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	if err != nil {
		return err
	}
	req := rep.Requests
	fmt.Fprintf(logw, "loadgen: mandatory availability %.4f (%d/%d ok, %d degraded, %d shed, %d failed), %d builds fleet-wide (%d recovery rebuilds, %d warm-fills)\n",
		req.Mandatory.Availability, req.Mandatory.OK, req.Mandatory.Total,
		req.Mandatory.Degraded, req.Mandatory.Shed, req.Mandatory.Failed, int(rep.Fleet.Builds),
		int(rep.Fleet.RecoveryRebuilds), int(rep.Fleet.WarmFillPulled))
	if ov := rep.Overload; ov != nil {
		fmt.Fprintf(logw, "loadgen: overload mandatory availability %.4f (%d ok, %d degraded, %d shed, %d failed, %d dropped), fleet served %d degraded plans\n",
			ov.Requests.Mandatory.Availability, ov.Requests.Mandatory.OK,
			ov.Requests.Mandatory.Degraded, ov.Requests.Mandatory.Shed,
			ov.Requests.Mandatory.Failed, ov.Dropped, int(ov.PlansDegraded))
	}
	if *minMandatory > 0 {
		if req.Mandatory.Availability < *minMandatory {
			return fmt.Errorf("mandatory availability %.4f below the %.4f bar",
				req.Mandatory.Availability, *minMandatory)
		}
		if ov := rep.Overload; ov != nil && ov.Requests.Mandatory.Availability < *minMandatory {
			return fmt.Errorf("overload mandatory availability %.4f below the %.4f bar",
				ov.Requests.Mandatory.Availability, *minMandatory)
		}
	}
	return nil
}

// makeWorkload generates one workload from a seed and returns its
// fingerprint and serialized body.
func makeWorkload(gcfg gen.Config, seed int64) (uint64, []byte, error) {
	gcfg.Seed = seed
	w := gen.MustGenerate(gcfg)
	var buf bytes.Buffer
	if err := graphio.WriteWorkload(&buf, w.Graph, w.Platform); err != nil {
		return 0, nil, err
	}
	return pipeline.Fingerprint(w.Graph, w.Platform), buf.Bytes(), nil
}

// phaseConfig shapes one load phase.
type phaseConfig struct {
	client       *client.Client
	duration     time.Duration
	rate         float64 // 0 = closed loop
	workers      int
	maxOut       int
	optionalFrac float64
	seed         int64
	// source yields the next request's key and body; n is the launch
	// ordinal.
	source func(rnd *rand.Rand, n int64) (uint64, []byte, error)
}

// phaseResult is one phase's accounting.
type phaseResult struct {
	req       Requests
	latencies []float64
	dropped   int64
}

// runPhase drives one load phase, closed- or open-loop, and accounts
// every answer: 2xx is OK (degraded when the peer says so), 429/503 is
// shed (a policy refusal within the overload contract), anything else
// is failed.
func runPhase(ctx context.Context, cfg phaseConfig) phaseResult {
	phaseCtx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	var (
		mu  sync.Mutex
		res phaseResult
	)
	record := func(crit string, lat time.Duration, status int, quality string, err error, aborted bool) {
		mu.Lock()
		defer mu.Unlock()
		res.req.Total++
		if aborted {
			res.req.Aborted++
			return
		}
		tier := &res.req.Mandatory
		if crit == "optional" {
			tier = &res.req.Optional
		}
		tier.Total++
		switch {
		case err == nil && status >= 200 && status < 300:
			tier.OK++
			if quality == "degraded" {
				tier.Degraded++
			}
			res.latencies = append(res.latencies, float64(lat)/float64(time.Millisecond))
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			tier.Shed++
		default:
			tier.Failed++
		}
	}

	one := func(rnd *rand.Rand, n int64) {
		key, body, err := cfg.source(rnd, n)
		if err != nil {
			record("mandatory", 0, 0, "", err, false)
			return
		}
		crit := "mandatory"
		if rnd.Float64() < cfg.optionalFrac {
			crit = "optional"
		}
		startAt := time.Now()
		r, err := cfg.client.Do(phaseCtx, client.PlanRequest{
			Key:         key,
			Criticality: crit,
			Body:        body,
		})
		status, quality := 0, ""
		if r != nil {
			status, quality = r.Status, r.Quality
		}
		// A request cut off by the phase deadline is an artifact of
		// stopping, not a service failure.
		aborted := err != nil && phaseCtx.Err() != nil
		record(crit, time.Since(startAt), status, quality, err, aborted)
	}

	var wg sync.WaitGroup
	if cfg.rate <= 0 {
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rnd := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
				for phaseCtx.Err() == nil {
					one(rnd, 0)
				}
			}(w)
		}
		wg.Wait()
		finalize(&res.req)
		return res
	}

	// Open loop: a ticker launches at the offered rate; the outstanding
	// cap bounds client memory, and launches it refuses are reported as
	// dropped rather than silently rescheduled — offered load does not
	// bend to the fleet's speed.
	interval := time.Duration(float64(time.Second) / cfg.rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sem := make(chan struct{}, cfg.maxOut)
	var n int64
	for phaseCtx.Err() == nil {
		select {
		case <-phaseCtx.Done():
		case <-ticker.C:
			n++
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(n int64) {
					defer wg.Done()
					defer func() { <-sem }()
					one(rand.New(rand.NewSource(cfg.seed+n*7919)), n)
				}(n)
			default:
				mu.Lock()
				res.dropped++
				mu.Unlock()
			}
		}
	}
	wg.Wait()
	finalize(&res.req)
	return res
}

// finalize computes each tier's availability: the fraction of answered
// requests the fleet handled within its contract — served (at any
// quality) or refused with an honest policy answer.
func finalize(req *Requests) {
	for _, t := range []*Tier{&req.Mandatory, &req.Optional} {
		if t.Total > 0 {
			t.Availability = float64(t.OK+t.Shed) / float64(t.Total)
		} else {
			t.Availability = 1
		}
	}
}

func peerNames(peers []*cluster.Peer) []string {
	names := make([]string, len(peers))
	for i, p := range peers {
		names[i] = p.Name
	}
	return names
}

// percentiles summarizes successful-request latencies in milliseconds
// using the nearest-rank definition: the q-quantile of N samples is the
// ⌈q·N⌉-th smallest. Flooring a linear index instead (the old rounding)
// collapses upper tails on small samples — p999 of 10 samples must be
// the maximum, not the 9th value — and can never reach the last rank.
func percentiles(ms []float64) Latency {
	if len(ms) == 0 {
		return Latency{}
	}
	sort.Float64s(ms)
	at := func(q float64) float64 {
		rank := int(math.Ceil(q * float64(len(ms))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(ms) {
			rank = len(ms)
		}
		return ms[rank-1]
	}
	return Latency{P50: at(0.50), P90: at(0.90), P95: at(0.95), P99: at(0.99), P999: at(0.999), Max: ms[len(ms)-1]}
}

func sumPeer(fl Fleet, f func(PeerStats) float64) float64 {
	var s float64
	for _, p := range fl.Peers {
		s += f(p)
	}
	return s
}

func maxPeer(fl Fleet, f func(PeerStats) float64) float64 {
	var m float64
	for _, p := range fl.Peers {
		if v := f(p); v > m {
			m = v
		}
	}
	return m
}

// scrapeFleet reads every peer's /metrics and sums the build/hit/shed
// accounting. A peer that died during the run (chaos, kill) simply
// reports scraped=false. workloads is the distinct fingerprint count,
// the floor against which recovery rebuilds are measured.
func scrapeFleet(c *http.Client, peers []*cluster.Peer, workloads int) Fleet {
	var fl Fleet
	for _, p := range peers {
		ps := PeerStats{Peer: p.Name}
		if text, err := fetchMetrics(c, p.URL); err == nil {
			ps.Scraped = true
			ps.Builds = sample(text, `pland_builds_total`)
			ps.CacheHits = sample(text, `pland_cache_hits_total`)
			ps.Coalesced = sample(text, `pland_coalesced_builds_total`)
			ps.ShedOptional = sample(text, `pland_shed_total\{criticality="optional"\}`)
			ps.ShedMandatory = sample(text, `pland_shed_total\{criticality="mandatory"\}`)
			ps.PlansFull = sample(text, `pland_plans_total\{quality="full"\}`)
			ps.PlansDegraded = sample(text, `pland_plans_total\{quality="degraded"\}`)
			ps.AdmissionShed = sample(text, `pland_admission_shed_total`)
			ps.CacheOnlyMisses = sample(text, `pland_cache_only_total\{outcome="miss"\}`)
			ps.BrownoutTransitions = sample(text, `pland_brownout_transitions_total`)
			ps.BrownoutLevel = sample(text, `pland_brownout_level`)
			ps.WarmFillPulled = sample(text, `pland_warmfill_pulled_total`)
			ps.WarmFillPushed = sample(text, `pland_warmfill_pushed_total`)
			ps.SnapshotLoaded = sample(text, `pland_snapshot_loaded_plans_total`)
			fl.Builds += ps.Builds
			fl.CacheHits += ps.CacheHits
			fl.Coalesced += ps.Coalesced
			fl.ShedOptional += ps.ShedOptional
			fl.ShedMandatory += ps.ShedMandatory
			fl.PlansFull += ps.PlansFull
			fl.PlansDegraded += ps.PlansDegraded
			fl.WarmFillPulled += ps.WarmFillPulled
			fl.WarmFillPushed += ps.WarmFillPushed
			fl.SnapshotLoaded += ps.SnapshotLoaded
		}
		fl.Peers = append(fl.Peers, ps)
	}
	if fl.Builds > float64(workloads) {
		fl.RecoveryRebuilds = fl.Builds - float64(workloads)
	}
	return fl
}

func fetchMetrics(c *http.Client, url string) (string, error) {
	resp, err := c.Get(url + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/metrics: %d", resp.StatusCode)
	}
	return string(raw), nil
}

// sample pulls one sample value out of a Prometheus text exposition;
// a missing metric reads as 0.
func sample(text, pattern string) float64 {
	re := regexp.MustCompile(`(?m)^` + pattern + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		return 0
	}
	v, _ := strconv.ParseFloat(m[1], 64)
	return v
}
