// Command loadgen drives a pland fleet through a timed load profile
// using the fault-tolerant fleet client (consistent-hash routing,
// retries, hedging, circuit breakers) and writes a JSON summary of
// what the fleet delivered: request availability split by criticality,
// latency percentiles, the client's retry/hedge/breaker counters, and
// the fleet-wide build/hit/shed accounting scraped from every peer's
// /metrics.
//
//	go run ./cmd/loadgen -peers p0=http://127.0.0.1:18080,p1=...,p2=... \
//	    -duration 30s -concurrency 8 -out BENCH_serve.json
//
// A fraction of requests (-optional-frac) is marked
// X-Plan-Criticality: optional, so an overloaded or degraded fleet
// sheds them first; -min-mandatory-availability turns the run into an
// assertion (non-zero exit below the bar), which is how
// scripts/fleet-smoke.sh checks that killing one peer under chaos
// leaves Mandatory service intact.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/client"
	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/pipeline"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// Report is the JSON document loadgen emits (BENCH_serve.json).
type Report struct {
	Config    Config     `json:"config"`
	Requests  Requests   `json:"requests"`
	LatencyMS Latency    `json:"latency_ms"`
	Client    ClientSnap `json:"client"`
	Fleet     Fleet      `json:"fleet"`
}

// Config echoes the run parameters.
type Config struct {
	Peers        []string `json:"peers"`
	Duration     string   `json:"duration"`
	Concurrency  int      `json:"concurrency"`
	Workloads    int      `json:"workloads"`
	OptionalFrac float64  `json:"optionalFrac"`
	Seed         int64    `json:"seed"`
}

// Tier is one criticality tier's request accounting.
type Tier struct {
	Total        int64   `json:"total"`
	OK           int64   `json:"ok"`
	Shed         int64   `json:"shed"`
	Failed       int64   `json:"failed"`
	Availability float64 `json:"availability"`
}

// Requests is the end-to-end request accounting. Aborted counts
// requests cut off by the run deadline itself; they are excluded from
// every tier and from availability.
type Requests struct {
	Total     int64 `json:"total"`
	Aborted   int64 `json:"aborted"`
	Mandatory Tier  `json:"mandatory"`
	Optional  Tier  `json:"optional"`
}

// Latency is the successful-request latency distribution.
type Latency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// ClientSnap folds the fleet client's reliability counters.
type ClientSnap struct {
	Attempts        int64 `json:"attempts"`
	Retries         int64 `json:"retries"`
	Hedges          int64 `json:"hedges"`
	HedgeWins       int64 `json:"hedgeWins"`
	BreakerRefusals int64 `json:"breakerRefusals"`
	BreakerOpens    int64 `json:"breakerOpens"`
	BreakerCloses   int64 `json:"breakerCloses"`
	ConnectRefused  int64 `json:"connectRefused"`
	Timeouts        int64 `json:"timeouts"`
	HTTPFailures    int64 `json:"httpFailures"`
}

// PeerStats is one peer's /metrics accounting after the run.
type PeerStats struct {
	Peer          string  `json:"peer"`
	Scraped       bool    `json:"scraped"`
	Builds        float64 `json:"builds"`
	CacheHits     float64 `json:"cacheHits"`
	Coalesced     float64 `json:"coalesced"`
	ShedOptional  float64 `json:"shedOptional"`
	ShedMandatory float64 `json:"shedMandatory"`
	// WarmFillPulled/Pushed and SnapshotLoaded account the recovery
	// machinery: plans replicated in from peer digests, hinted plans
	// handed back to a returned owner, and plans restored from a local
	// snapshot on start.
	WarmFillPulled float64 `json:"warmFillPulled"`
	WarmFillPushed float64 `json:"warmFillPushed"`
	SnapshotLoaded float64 `json:"snapshotLoaded"`
}

// Fleet sums the per-peer accounting. Builds against Workloads is the
// duplicate-cold-build check: a healthy fleet builds each distinct
// fingerprint exactly once; peer deaths can migrate a key to a second
// builder, never more per incident.
type Fleet struct {
	Builds        float64 `json:"builds"`
	CacheHits     float64 `json:"cacheHits"`
	Coalesced     float64 `json:"coalesced"`
	ShedOptional  float64 `json:"shedOptional"`
	ShedMandatory float64 `json:"shedMandatory"`
	// RecoveryRebuilds is max(0, Builds − Workloads): cold builds in
	// excess of one per distinct fingerprint, i.e. the rebuilds paid
	// because a key's plan was not where a request landed (owner dead,
	// peer restarted cold). With snapshots and warm fill on, it should
	// be 0 even across blackouts and kills.
	RecoveryRebuilds float64     `json:"recoveryRebuilds"`
	WarmFillPulled   float64     `json:"warmFillPulled"`
	WarmFillPushed   float64     `json:"warmFillPushed"`
	SnapshotLoaded   float64     `json:"snapshotLoaded"`
	Peers            []PeerStats `json:"peers"`
}

func run(ctx context.Context, args []string, stdout, logw io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(logw)
	peersSpec := fs.String("peers", "", "fleet peer list (name=url,... or url,...)")
	duration := fs.Duration("duration", 20*time.Second, "how long to generate load")
	concurrency := fs.Int("concurrency", 8, "parallel request workers")
	workloads := fs.Int("workloads", 12, "distinct workloads cycled through (each is one fingerprint)")
	optionalFrac := fs.Float64("optional-frac", 0.25, "fraction of requests marked optional criticality")
	seed := fs.Int64("seed", 1, "workload and traffic seed")
	hedgeAfter := fs.Duration("hedge-after", 100*time.Millisecond, "hedge to the next peer after this wait (0 disables)")
	attemptTimeout := fs.Duration("attempt-timeout", 5*time.Second, "per-attempt timeout")
	minMandatory := fs.Float64("min-mandatory-availability", 0, "fail the run when mandatory availability lands below this (0 disables)")
	out := fs.String("out", "-", "report path (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peersSpec == "" {
		return errors.New("-peers is required")
	}
	peers, err := cluster.ParsePeers(*peersSpec)
	if err != nil {
		return fmt.Errorf("-peers: %w", err)
	}
	ring, err := cluster.NewRing(peers)
	if err != nil {
		return fmt.Errorf("-peers: %w", err)
	}
	cl := client.New(ring, client.Options{
		HedgeAfter:     *hedgeAfter,
		AttemptTimeout: *attemptTimeout,
		Seed:           *seed,
	})

	// Pre-generate the workload set; each distinct seed is one
	// fingerprint, routed to one ring owner.
	bodies := make([][]byte, *workloads)
	keys := make([]uint64, *workloads)
	for i := range bodies {
		cfg := gen.Default(3)
		cfg.Seed = *seed + int64(i)
		w := gen.MustGenerate(cfg)
		var buf bytes.Buffer
		if err := graphio.WriteWorkload(&buf, w.Graph, w.Platform); err != nil {
			return fmt.Errorf("workload %d: %w", i, err)
		}
		bodies[i] = buf.Bytes()
		keys[i] = pipeline.Fingerprint(w.Graph, w.Platform)
	}

	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()
	// The rise callback expires a returned peer's breaker cooldown, so
	// traffic resumes within one probe interval of recovery.
	prober := cluster.NewProber(ring, cluster.ProberOptions{
		Interval: 250 * time.Millisecond,
		OnRise:   func(p *cluster.Peer) { cl.NoteRisen(p.Name) },
	})
	go prober.Run(runCtx)

	var (
		mu        sync.Mutex
		latencies []float64
		req       Requests
	)
	record := func(crit string, lat time.Duration, status int, err error, aborted bool) {
		mu.Lock()
		defer mu.Unlock()
		req.Total++
		if aborted {
			req.Aborted++
			return
		}
		tier := &req.Mandatory
		if crit == "optional" {
			tier = &req.Optional
		}
		tier.Total++
		switch {
		case err == nil && status >= 200 && status < 300:
			tier.OK++
			latencies = append(latencies, float64(lat)/float64(time.Millisecond))
		case status == http.StatusTooManyRequests:
			tier.Shed++
		default:
			tier.Failed++
		}
	}

	fmt.Fprintf(logw, "loadgen: %d workers, %d workloads, %v against %d peers\n",
		*concurrency, *workloads, *duration, len(peers))
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(*seed + int64(w)*7919))
			for runCtx.Err() == nil {
				i := rnd.Intn(len(bodies))
				crit := "mandatory"
				if rnd.Float64() < *optionalFrac {
					crit = "optional"
				}
				startAt := time.Now()
				res, err := cl.Do(runCtx, client.PlanRequest{
					Key:         keys[i],
					Criticality: crit,
					Body:        bodies[i],
				})
				status := 0
				if res != nil {
					status = res.Status
				}
				// A request cut off by the run deadline is an artifact of
				// stopping, not a service failure.
				aborted := err != nil && runCtx.Err() != nil
				record(crit, time.Since(startAt), status, err, aborted)
			}
		}(w)
	}
	wg.Wait()

	finish := func(t *Tier) {
		if t.Total > 0 {
			t.Availability = float64(t.OK+t.Shed) / float64(t.Total)
		}
	}
	// Shed responses answer within policy (429 + Retry-After); for the
	// availability bar only outright failures count against the fleet.
	finish(&req.Mandatory)
	finish(&req.Optional)

	snap := cl.Snap()
	rep := Report{
		Config: Config{
			Peers:        peerNames(peers),
			Duration:     duration.String(),
			Concurrency:  *concurrency,
			Workloads:    *workloads,
			OptionalFrac: *optionalFrac,
			Seed:         *seed,
		},
		Requests:  req,
		LatencyMS: percentiles(latencies),
		Client: ClientSnap{
			Attempts:        snap.Attempts,
			Retries:         snap.Retries,
			Hedges:          snap.Hedges,
			HedgeWins:       snap.HedgeWins,
			BreakerRefusals: snap.BreakerRefusals,
			BreakerOpens:    snap.BreakerOpens,
			BreakerCloses:   snap.BreakerCloses,
			ConnectRefused:  snap.Failures[int(cluster.ConnectRefused)],
			Timeouts:        snap.Failures[int(cluster.Timeout)],
			HTTPFailures:    snap.Failures[int(cluster.HTTPStatus)],
		},
		Fleet: scrapeFleet(peers, *workloads),
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "loadgen: mandatory availability %.4f (%d/%d ok, %d shed, %d failed), %d builds fleet-wide (%d recovery rebuilds, %d warm-fills)\n",
		req.Mandatory.Availability, req.Mandatory.OK, req.Mandatory.Total,
		req.Mandatory.Shed, req.Mandatory.Failed, int(rep.Fleet.Builds),
		int(rep.Fleet.RecoveryRebuilds), int(rep.Fleet.WarmFillPulled))
	if *minMandatory > 0 && req.Mandatory.Availability < *minMandatory {
		return fmt.Errorf("mandatory availability %.4f below the %.4f bar",
			req.Mandatory.Availability, *minMandatory)
	}
	return nil
}

func peerNames(peers []*cluster.Peer) []string {
	names := make([]string, len(peers))
	for i, p := range peers {
		names[i] = p.Name
	}
	return names
}

// percentiles summarizes successful-request latencies in milliseconds.
func percentiles(ms []float64) Latency {
	if len(ms) == 0 {
		return Latency{}
	}
	sort.Float64s(ms)
	at := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return Latency{P50: at(0.50), P90: at(0.90), P99: at(0.99), P999: at(0.999), Max: ms[len(ms)-1]}
}

// scrapeFleet reads every peer's /metrics after the run and sums the
// build/hit/shed accounting. A peer that died during the run (chaos,
// kill) simply reports scraped=false. workloads is the distinct
// fingerprint count, the floor against which recovery rebuilds are
// measured.
func scrapeFleet(peers []*cluster.Peer, workloads int) Fleet {
	var fl Fleet
	for _, p := range peers {
		ps := PeerStats{Peer: p.Name}
		if text, err := fetchMetrics(p.URL); err == nil {
			ps.Scraped = true
			ps.Builds = sample(text, `pland_builds_total`)
			ps.CacheHits = sample(text, `pland_cache_hits_total`)
			ps.Coalesced = sample(text, `pland_coalesced_builds_total`)
			ps.ShedOptional = sample(text, `pland_shed_total\{criticality="optional"\}`)
			ps.ShedMandatory = sample(text, `pland_shed_total\{criticality="mandatory"\}`)
			ps.WarmFillPulled = sample(text, `pland_warmfill_pulled_total`)
			ps.WarmFillPushed = sample(text, `pland_warmfill_pushed_total`)
			ps.SnapshotLoaded = sample(text, `pland_snapshot_loaded_plans_total`)
			fl.Builds += ps.Builds
			fl.CacheHits += ps.CacheHits
			fl.Coalesced += ps.Coalesced
			fl.ShedOptional += ps.ShedOptional
			fl.ShedMandatory += ps.ShedMandatory
			fl.WarmFillPulled += ps.WarmFillPulled
			fl.WarmFillPushed += ps.WarmFillPushed
			fl.SnapshotLoaded += ps.SnapshotLoaded
		}
		fl.Peers = append(fl.Peers, ps)
	}
	if fl.Builds > float64(workloads) {
		fl.RecoveryRebuilds = fl.Builds - float64(workloads)
	}
	return fl
}

func fetchMetrics(url string) (string, error) {
	c := &http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get(url + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/metrics: %d", resp.StatusCode)
	}
	return string(raw), nil
}

// sample pulls one sample value out of a Prometheus text exposition;
// a missing metric reads as 0.
func sample(text, pattern string) float64 {
	re := regexp.MustCompile(`(?m)^` + pattern + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		return 0
	}
	v, _ := strconv.ParseFloat(m[1], 64)
	return v
}
