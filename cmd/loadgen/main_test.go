package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

// TestLoadgenAgainstFleet runs the generator for a short burst against
// two in-process pland servers and checks the report's accounting:
// full availability on a healthy fleet, each distinct fingerprint
// built at most once fleet-wide (the generator's ring routing plus the
// servers' caches), and a parseable latency distribution.
func TestLoadgenAgainstFleet(t *testing.T) {
	ts0 := httptest.NewServer(server.New(server.Options{}).Handler())
	defer ts0.Close()
	ts1 := httptest.NewServer(server.New(server.Options{}).Handler())
	defer ts1.Close()

	var out, logs bytes.Buffer
	err := run(context.Background(), []string{
		"-peers", fmt.Sprintf("p0=%s,p1=%s", ts0.URL, ts1.URL),
		"-duration", "2s",
		"-concurrency", "4",
		"-workloads", "6",
		"-optional-frac", "0.3",
		"-min-mandatory-availability", "0.99",
	}, &out, &logs)
	if err != nil {
		t.Fatalf("run: %v\nlog: %s", err, logs.String())
	}

	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, out.String())
	}
	if rep.Requests.Mandatory.Total == 0 || rep.Requests.Optional.Total == 0 {
		t.Fatalf("both tiers should have seen traffic: %+v", rep.Requests)
	}
	if rep.Requests.Mandatory.Availability != 1 || rep.Requests.Optional.Availability != 1 {
		t.Fatalf("healthy fleet below full availability: %+v", rep.Requests)
	}
	if rep.Fleet.Builds == 0 || rep.Fleet.Builds > float64(rep.Config.Workloads) {
		t.Fatalf("fleet builds %g, want in [1, %d] (one per distinct fingerprint)",
			rep.Fleet.Builds, rep.Config.Workloads)
	}
	if rep.Fleet.CacheHits+rep.Fleet.Coalesced == 0 {
		t.Fatal("repeated fingerprints never hit the cache")
	}
	if rep.LatencyMS.P50 <= 0 || rep.LatencyMS.P99 < rep.LatencyMS.P50 {
		t.Fatalf("latency distribution malformed: %+v", rep.LatencyMS)
	}
	for _, p := range rep.Fleet.Peers {
		if !p.Scraped {
			t.Fatalf("peer %s not scraped", p.Peer)
		}
	}
}

// TestLoadgenAvailabilityBar: a fleet of one dead peer cannot clear a
// positive availability bar, and the run says so with an error.
func TestLoadgenAvailabilityBar(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close()

	var out, logs bytes.Buffer
	err := run(context.Background(), []string{
		"-peers", "p0=" + dead.URL,
		"-duration", "500ms",
		"-concurrency", "2",
		"-workloads", "2",
		"-attempt-timeout", "200ms",
		"-min-mandatory-availability", "0.99",
	}, &out, &logs)
	if err == nil {
		t.Fatalf("dead fleet cleared the availability bar\n%s", out.String())
	}
}

// TestPercentilesNearestRank pins the nearest-rank quantile definition
// (q-quantile of N samples = ⌈q·N⌉-th smallest) on sample sizes where
// the old floored linear index collapsed the upper tail: p999 of 10
// samples must be the maximum, not the 9th value.
func TestPercentilesNearestRank(t *testing.T) {
	seq := func(n int) []float64 {
		ms := make([]float64, n)
		for i := range ms {
			ms[i] = float64(n - i) // reversed, so the sort matters
		}
		return ms
	}
	cases := []struct {
		name string
		ms   []float64
		want Latency
	}{
		{"empty", nil, Latency{}},
		{"one", seq(1), Latency{P50: 1, P90: 1, P95: 1, P99: 1, P999: 1, Max: 1}},
		{"two", seq(2), Latency{P50: 1, P90: 2, P95: 2, P99: 2, P999: 2, Max: 2}},
		{"ten", seq(10), Latency{P50: 5, P90: 9, P95: 10, P99: 10, P999: 10, Max: 10}},
		{"thousand", seq(1000), Latency{P50: 500, P90: 900, P95: 950, P99: 990, P999: 999, Max: 1000}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := percentiles(c.ms); got != c.want {
				t.Fatalf("percentiles = %+v, want %+v", got, c.want)
			}
		})
	}
}

// TestLoadgenFlagValidation pins the required-flag surface.
func TestLoadgenFlagValidation(t *testing.T) {
	var out, logs bytes.Buffer
	if err := run(context.Background(), nil, &out, &logs); err == nil {
		t.Fatal("missing -peers accepted")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := run(ctx, []string{"-peers", "p0=http://x,p0=http://y"}, &out, &logs); err == nil {
		t.Fatal("duplicate peer names accepted")
	}
}
