package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/anneal"
	"repro/internal/arch"
	"repro/internal/deadline"
	"repro/internal/degrade"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/feas"
	"repro/internal/gen"
	"repro/internal/optsched"
	"repro/internal/periodic"
	"repro/internal/pipeline"
	"repro/internal/robust"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/trace"
	"repro/internal/wcet"
)

// Core model types.
type (
	// Time is a point or span of discrete system time, in time units.
	Time = rtime.Time
	// Window is a task execution window [Arrival, Deadline).
	Window = rtime.Window
	// Graph is an application task graph (build, then Freeze).
	Graph = taskgraph.Graph
	// Task is one node of a task graph.
	Task = taskgraph.Task
	// Arc is one precedence constraint with an optional message.
	Arc = taskgraph.Arc
	// Platform is the multiprocessor architecture.
	Platform = arch.Platform
	// Class is one processor class e_k ∈ E.
	Class = arch.Class
	// Bus is the shared-bus interconnect model.
	Bus = arch.Bus
	// Network refines the bus with dedicated per-pair links (§3.1's
	// arbitrary topology).
	Network = arch.Network
)

// Deadline distribution types.
type (
	// Metric is a critical-path metric for the slicing technique.
	Metric = slicing.Metric
	// Params are the adaptive-metric tunables.
	Params = slicing.Params
	// Assignment is a per-task window assignment.
	Assignment = slicing.Assignment
	// Distributor is any deadline-assignment strategy (slicing or the
	// overlapping-window baselines).
	Distributor = deadline.Distributor
	// WCETStrategy selects how per-class WCETs are collapsed into an
	// estimate before assignment is known.
	WCETStrategy = wcet.Strategy
)

// Scheduling and simulation types.
type (
	// Schedule is a non-preemptive multiprocessor schedule.
	Schedule = sched.Schedule
	// Placement is one task's (processor, start, finish).
	Placement = sched.Placement
	// PreemptiveSchedule is the outcome of the preemptive EDF dispatcher.
	PreemptiveSchedule = sched.PreemptiveSchedule
	// ExactResult is the outcome of the exact branch-and-bound search.
	ExactResult = optsched.Result
	// ExactOptions bounds the exact search.
	ExactOptions = optsched.Options
	// Report is the outcome of replaying a schedule.
	Report = sim.Report
)

// Fault-injection types (robustness evaluation).
type (
	// FaultPlan is a stochastic fault model: probabilities and
	// severities for WCET overruns, processor degradation and loss, and
	// bus jitter, materialized deterministically from its seed.
	FaultPlan = faults.Plan
	// FaultTrace is one concrete materialized fault scenario.
	FaultTrace = faults.Trace
	// InjectedReport is the outcome of executing a schedule under a
	// fault trace: the verified perturbed run plus degradation measures.
	InjectedReport = sim.InjectedReport
	// Degradation quantifies deadline misses, lateness, and fault and
	// recovery events of an injected run.
	Degradation = sim.Degradation
)

// Graceful-degradation types (mixed-criticality mode changes).
type (
	// Criticality classifies a task as Mandatory or Optional.
	Criticality = taskgraph.Criticality
	// DegradePolicy selects how optional work is degraded as the mode
	// level rises.
	DegradePolicy = degrade.Policy
	// DegradeOptions configures mode-ladder construction.
	DegradeOptions = degrade.Options
	// DegradeMode is one operating point of the degradation ladder: a
	// reduced (or budget-shrunk) task graph plus its retained-value
	// fraction and ID maps back to the full application.
	DegradeMode = degrade.Mode
	// ModeController is the online overload-triggered mode-change state
	// machine: immediate escalation, hysteretic re-admission with
	// backed-off probes, bounded lockout.
	ModeController = degrade.Controller
	// ModeControllerOptions tunes the controller's hysteresis.
	ModeControllerOptions = degrade.ControllerOptions
	// ModeObservation is what the controller sees of one executed frame.
	ModeObservation = degrade.Observation
	// ModeTransition records one controller decision.
	ModeTransition = degrade.Transition
	// DegradeConfig parameterizes one graceful-degradation study series.
	DegradeConfig = experiment.DegradeConfig
	// DegradePoint aggregates one intensity of a degradation series.
	DegradePoint = experiment.DegradePoint
	// DegradeCurve is one policy/metric series over the intensity ramp.
	DegradeCurve = experiment.DegradeCurve
)

// Task criticalities (the imprecise-computation split).
const (
	// Mandatory tasks must meet their deadlines in every operating mode.
	Mandatory = taskgraph.Mandatory
	// Optional tasks add value when they complete in time but may be
	// shed or shrunk under overload.
	Optional = taskgraph.Optional
)

// Degradation policies.
const (
	// DegradeNone disables degradation: only the full mode exists.
	DegradeNone = degrade.None
	// DegradeShedLowestValue sheds sheddable tasks cheapest-first.
	DegradeShedLowestValue = degrade.ShedLowestValue
	// DegradeShedLargestParallelSet sheds the most contended tasks first.
	DegradeShedLargestParallelSet = degrade.ShedLargestParallelSet
	// DegradeProportionalBudget shrinks optional execution budgets.
	DegradeProportionalBudget = degrade.ProportionalBudget
)

// DegradeModes builds the degradation ladder of a frozen
// mixed-criticality graph: mode 0 is the full application, each higher
// mode sheds or shrinks strictly more optional value, the mandatory
// subgraph survives at every level, and newly exposed outputs inherit
// end-to-end deadlines so every mode re-slices and re-verifies cleanly.
func DegradeModes(g *Graph, opt DegradeOptions) ([]*DegradeMode, error) {
	return degrade.Modes(g, opt)
}

// NewModeController returns the online mode-change controller, starting
// at level 0 (the full application).
func NewModeController(opt ModeControllerOptions) *ModeController {
	return degrade.NewController(opt)
}

// DegradeStudy evaluates one graceful-degradation series: achieved
// value versus fault intensity, with one controller instance carrying
// each workload up the ascending intensity ramp. With no optional tasks
// or the DegradeNone policy, each point's Fault baseline is
// byte-identical to MarginStudy's sibling FaultRun.
func DegradeStudy(cfg DegradeConfig) (DegradeCurve, error) { return experiment.DegradeRun(cfg) }

// Robustness-margin types (breakdown analysis and adaptive re-slicing).
type (
	// BreakdownOptions bounds the critical-factor bisection.
	BreakdownOptions = robust.BreakdownOptions
	// Breakdown is the critical WCET scaling factor of one assignment.
	Breakdown = robust.Breakdown
	// ResliceOptions bounds the adaptive re-slicing feedback loop.
	ResliceOptions = robust.ResliceOptions
	// ResliceResult reports the feedback iterations and their outcome.
	ResliceResult = robust.ResliceResult
	// WCETErrorModel is a parametric estimation-error scenario: true
	// execution times deviating from the estimates the assignment was
	// planned with.
	WCETErrorModel = wcet.ErrorModel
	// WCETErrorKind selects the deviation shape.
	WCETErrorKind = wcet.ErrorKind
	// MarginConfig parameterizes one robustness-margin data point.
	MarginConfig = experiment.MarginConfig
	// MarginPoint aggregates one estimation-error data point.
	MarginPoint = experiment.MarginPoint
	// BreakdownPoint aggregates one breakdown-factor data point.
	BreakdownPoint = experiment.BreakdownPoint
)

// WCET estimation-error shapes (margin studies).
const (
	// WCETErrNone is the identity model: truth equals the estimate.
	WCETErrNone = wcet.ErrNone
	// WCETErrMultiplicative draws an independent uniform factor per task.
	WCETErrMultiplicative = wcet.ErrMultiplicative
	// WCETErrClassBias draws one factor per processor class (systematic
	// mis-calibration of a class's timing model).
	WCETErrClassBias = wcet.ErrClassBias
	// WCETErrHeavyTail overruns rarely but severely (truncated Pareto).
	WCETErrHeavyTail = wcet.ErrHeavyTail
)

// BreakdownFactor bisects for the critical uniform WCET scaling factor:
// the largest φ such that the schedule built from the assignment still
// meets every window when all execution times scale by φ. It is the
// per-workload robustness margin of a deadline distribution.
func BreakdownFactor(g *Graph, p *Platform, asg *Assignment, s *Schedule,
	opt BreakdownOptions) (Breakdown, error) {
	return robust.BreakdownFactor(g, p, asg, s, opt)
}

// ResliceLoop runs the adaptive re-slicing feedback loop: execute under
// the fault trace, fold observed overruns back into the estimates
// (bounded retries, backed-off inflation), and re-distribute deadlines
// until the perturbed execution is clean or the loop provably cannot
// learn more.
func ResliceLoop(g *Graph, p *Platform, est []Time, metric Metric, params Params,
	tr *FaultTrace, opt ResliceOptions) (*ResliceResult, error) {
	return robust.ResliceLoop(g, p, est, metric, params, tr, opt)
}

// MarginStudy evaluates one estimation-error data point over the
// workload sample: assignments planned from estimates, executed under
// perturbed truth. The zero model reproduces the nominal success ratio
// exactly.
func MarginStudy(cfg MarginConfig) MarginPoint { return experiment.MarginRun(cfg) }

// BreakdownStudy measures the breakdown-factor distribution of one
// metric over the workload sample.
func BreakdownStudy(cfg MarginConfig) BreakdownPoint { return experiment.BreakdownRun(cfg) }

// Workload generation and experiment types.
type (
	// WorkloadConfig parameterizes the random workload generator (§5.2).
	WorkloadConfig = gen.Config
	// Workload is one generated (graph, platform) instance.
	Workload = gen.Workload
	// ExperimentOptions configures figure regeneration.
	ExperimentOptions = experiment.Options
	// FigureTable is the harness rendering of one paper figure.
	FigureTable = experiment.Table
	// Expansion is a periodic task set unrolled over its planning cycle.
	Expansion = periodic.Expansion
)

// Unset marks an unassigned timing attribute (e.g. an ineligible WCET
// entry).
const Unset = rtime.Unset

// WCET estimation strategies (§5.3).
const (
	WCETAvg = wcet.AVG
	WCETMax = wcet.MAX
	WCETMin = wcet.MIN
)

// NewGraph returns an empty task graph over numClasses processor
// classes.
func NewGraph(numClasses int) *Graph { return taskgraph.NewGraph(numClasses) }

// NewPlatform builds a heterogeneous platform with the given classes,
// one processor per classOf entry, and a shared bus charging
// busDelayPerItem time units per transmitted data item.
func NewPlatform(classes []Class, classOf []int, busDelayPerItem Time) (*Platform, error) {
	return arch.New(arch.Unrelated, classes, classOf, arch.Bus{DelayPerItem: busDelayPerItem})
}

// HomogeneousPlatform builds an m-processor single-class platform.
func HomogeneousPlatform(m int) *Platform { return arch.Homogeneous(m) }

// NewNetwork creates an m-processor topology whose pairs fall back to
// the shared bus until SetLink installs dedicated links.
func NewNetwork(m int) *Network { return arch.NewNetwork(m) }

// The paper's four critical-path metrics (§4.5).
func PURE() Metric   { return slicing.PURE() }
func NORM() Metric   { return slicing.NORM() }
func AdaptG() Metric { return slicing.AdaptG() }
func AdaptL() Metric { return slicing.AdaptL() }

// AdaptR is the resource-aware extension of ADAPT-L (the paper's §7.3
// future-work direction); it degenerates to ADAPT-L when no task
// declares exclusive resources.
func AdaptR() Metric { return slicing.AdaptR() }

// Metrics returns the paper's four metrics in presentation order (the
// extension metrics AdaptR and AdaptN are separate constructors).
func Metrics() []Metric { return slicing.Metrics() }

// MetricByName resolves "PURE", "NORM", "ADAPT-G", "ADAPT-L", or the
// extension metrics "ADAPT-R" and "ADAPT-N".
func MetricByName(name string) (Metric, error) { return slicing.ByName(name) }

// DefaultParams returns the paper's §6 adaptive parameters; see also
// CalibratedParams.
func DefaultParams() Params { return slicing.DefaultParams() }

// CalibratedParams returns the adaptivity factors calibrated for this
// implementation (see EXPERIMENTS.md).
func CalibratedParams() Params { return slicing.CalibratedParams() }

// Estimates computes the estimated WCET c̄ of every task under the given
// strategy.
func Estimates(g *Graph, p *Platform, s WCETStrategy) ([]Time, error) {
	return pipeline.Estimate(g, p, s)
}

// Distribute runs the slicing technique (Figure 1) over the graph.
func Distribute(g *Graph, est []Time, m int, metric Metric, params Params) (*Assignment, error) {
	return pipeline.Slice(g, est, m, metric, params)
}

// Dispatch schedules the assignment with the paper's non-preemptive
// time-driven EDF dispatcher.
func Dispatch(g *Graph, p *Platform, asg *Assignment) (*Schedule, error) {
	return pipeline.TimeDriven().Run(g, p, asg)
}

// PlanEDF schedules the assignment with the offline greedy EDF list
// scheduler.
func PlanEDF(g *Graph, p *Platform, asg *Assignment) (*Schedule, error) {
	return pipeline.Planner().Run(g, p, asg)
}

// InsertEDF schedules with the insertion-based (backfilling) offline EDF
// variant.
func InsertEDF(g *Graph, p *Platform, asg *Assignment) (*Schedule, error) {
	return pipeline.Insertion().Run(g, p, asg)
}

// DispatchPreemptive schedules with the global preemptive EDF dispatcher
// with migration (§7.3 extension).
func DispatchPreemptive(g *Graph, p *Platform, asg *Assignment) (*PreemptiveSchedule, error) {
	return sched.DispatchPreemptive(g, p, asg)
}

// DispatchPolicy selects the ready-task rule of the time-driven
// dispatcher.
type DispatchPolicy = sched.Policy

// Dispatch policies (§7.3's policy axis).
const (
	PolicyEDF  = sched.EDFPolicy
	PolicyDM   = sched.DMPolicy
	PolicyFIFO = sched.FIFOPolicy
	PolicyLLF  = sched.LLFPolicy
)

// DispatchWith runs the time-driven dispatcher under an alternative
// ready-task policy.
func DispatchWith(g *Graph, p *Platform, asg *Assignment, policy DispatchPolicy) (*Schedule, error) {
	return sched.DispatchWith(g, p, asg, policy)
}

// DispatchActual simulates execution times below the worst-case bound:
// task i runs for ceil(frac[i]·WCET) units. Early completions can both
// rescue and — via the Graham anomaly — break a schedule.
func DispatchActual(g *Graph, p *Platform, asg *Assignment, frac []float64) (*Schedule, error) {
	return sched.DispatchActual(g, p, asg, frac)
}

// ExactSchedule runs the exact branch-and-bound search over active
// schedules — the optimality yardstick for the heuristics; practical up
// to roughly 20 tasks.
func ExactSchedule(g *Graph, p *Platform, asg *Assignment, opt ExactOptions) (*ExactResult, error) {
	return optsched.Schedule(g, p, asg, opt)
}

// TraceLog is a time-ordered execution event log.
type TraceLog = trace.Log

// TraceSchedule derives the event log (starts, finishes, messages,
// misses) of a non-preemptive schedule.
func TraceSchedule(g *Graph, p *Platform, asg *Assignment, s *Schedule) TraceLog {
	return trace.FromSchedule(g, p, asg, s)
}

// AnnealOptions tunes the virtual-cost search.
type AnnealOptions = anneal.Options

// AnnealResult reports the searched assignment and its outcome.
type AnnealResult = anneal.Result

// AnnealVirtualCosts searches the virtual-cost space the ADAPT metrics
// live in by simulated annealing, starting from ADAPT-L's closed-form
// choice — an upper bound on what any metric of that family can achieve
// on this workload.
func AnnealVirtualCosts(g *Graph, p *Platform, est []Time, params Params, opt AnnealOptions) (*AnnealResult, error) {
	return anneal.Search(g, p, est, params, opt)
}

// Explain writes a round-by-round narrative of a deadline distribution.
func Explain(w io.Writer, g *Graph, est []Time, asg *Assignment) error {
	return slicing.Explain(w, g, est, asg)
}

// FeasViolation is one failed necessary feasibility condition.
type FeasViolation = feas.Violation

// CheckFeasibility runs fast necessary conditions (own-window capacity,
// processor demand, resource demand) against a window assignment; any
// violation proves the assignment unschedulable by every scheduler.
func CheckFeasibility(g *Graph, p *Platform, asg *Assignment) ([]FeasViolation, error) {
	return feas.Check(g, p, asg)
}

// Replay re-executes a schedule and verifies it; serializedBus switches
// the shared bus from the nominal-delay model to exclusive FCFS use.
func Replay(g *Graph, p *Platform, asg *Assignment, s *Schedule, serializedBus bool) (*Report, error) {
	return sim.Replay(g, p, asg, s, sim.Options{SerializedBus: serializedBus})
}

// ScaledFaultPlan returns the standard fault plan at the given
// intensity in [0, 1]: 0 is fault-free, 1 the harshest standard mix of
// WCET overruns, processor slowdown/loss, and bus jitter. The same
// (intensity, seed) pair always yields the same plan.
func ScaledFaultPlan(intensity float64, seed int64) FaultPlan {
	return faults.Scaled(intensity, seed)
}

// MaterializeFaults draws one concrete fault scenario from the plan for
// the given workload; span is the failure-instant horizon (normally the
// end-to-end deadline).
func MaterializeFaults(plan FaultPlan, g *Graph, p *Platform, span Time) (*FaultTrace, error) {
	return plan.Materialize(g, p, span)
}

// InjectFaults executes the planned schedule under the fault trace with
// the time-driven dispatcher and reports the degradation; reclaim
// enables the online slack-reclamation recovery policy. A zero trace
// reproduces the nominal Replay exactly.
func InjectFaults(g *Graph, p *Platform, asg *Assignment, s *Schedule,
	tr *FaultTrace, reclaim bool) (*InjectedReport, error) {
	return sim.Inject(g, p, asg, s, sim.Options{Faults: tr, Reclaim: reclaim})
}

// DefaultWorkloadConfig returns the paper's §5 workload setup for m
// processors.
func DefaultWorkloadConfig(m int) WorkloadConfig { return gen.Default(m) }

// Generate builds one random workload.
func Generate(cfg WorkloadConfig) (*Workload, error) { return gen.Generate(cfg) }

// SubSeed derives the idx-th independent per-graph seed from a master
// seed.
func SubSeed(master int64, idx int) int64 { return gen.SubSeed(master, idx) }

// ExpandPeriodic unrolls a periodic task graph over its planning cycle
// (§3.3).
func ExpandPeriodic(g *Graph) (*Expansion, error) { return periodic.Expand(g) }

// Figure regenerates one of the paper's evaluation figures (2–6).
func Figure(n int, opts ExperimentOptions) (FigureTable, error) {
	f, ok := experiment.Figures[n]
	if !ok {
		return FigureTable{}, fmt.Errorf("repro: no figure %d (have 2..6)", n)
	}
	return f(opts), nil
}

// DefaultExperimentOptions mirrors the paper's 1024 workloads per data
// point.
func DefaultExperimentOptions() ExperimentOptions { return experiment.DefaultOptions() }

// Instrumented pipeline-core types. The internal pipeline package is
// the single owner of the estimate → slice → dispatch sequence; every
// experiment, study, and command routes planning through it, and these
// aliases expose its artifacts to library users.
type (
	// Plan is the immutable artifact of one pipeline build: estimates,
	// window assignment, schedule, verdict, and per-stage timing.
	Plan = pipeline.Plan
	// PlanKey identifies a plan in the cache: workload fingerprint plus
	// every policy knob that shaped the plan.
	PlanKey = pipeline.Key
	// PlanVerdict summarizes a plan's schedulability outcome.
	PlanVerdict = pipeline.Verdict
	// PlanStats carries per-stage wall time and allocation counters.
	PlanStats = pipeline.PlanStats
	// StageStats instruments one pipeline stage.
	StageStats = pipeline.StageStats
	// PlanCache is a thread-safe LRU cache of immutable plans.
	PlanCache = pipeline.Cache
	// PlanRecorder aggregates build/hit counts and stage timings across
	// pipeline runs.
	PlanRecorder = pipeline.Recorder
	// PlanSummary is a recorder's aggregate view.
	PlanSummary = pipeline.Summary
)

// NewPlanCache returns an LRU plan cache holding up to capacity plans.
func NewPlanCache(capacity int) *PlanCache { return pipeline.NewCache(capacity) }

// NewPlanRecorder returns a pipeline instrumentation recorder;
// withAllocs additionally counts per-stage heap allocations (slower:
// it reads runtime memory stats around every stage).
func NewPlanRecorder(withAllocs bool) *PlanRecorder { return pipeline.NewRecorder(withAllocs) }

// WorkloadFingerprint hashes the planning-relevant content of a
// workload — task timing, precedence, platform shape, communication
// costs — ignoring display names. It is the workload half of a PlanKey.
func WorkloadFingerprint(g *Graph, p *Platform) uint64 { return pipeline.Fingerprint(g, p) }

// Result bundles the artifacts of one pipeline run.
type Result struct {
	// Estimates are the c̄ values used for deadline distribution.
	Estimates []Time
	// Assignment is the window assignment produced by the distributor.
	Assignment *Assignment
	// Schedule is the constructed schedule.
	Schedule *Schedule
	// Report is the replay verification of the schedule.
	Report *Report
	// Plan is the underlying pipeline artifact, carrying the cache key,
	// the verdict, and per-stage timing. Plans are immutable and may be
	// shared with the cache: do not mutate through this pointer.
	Plan *Plan
}

// Pipeline is the generate-to-verify flow with pluggable policies.
type Pipeline struct {
	// Metric is the critical-path metric (default ADAPT-L).
	Metric Metric
	// Params are the adaptive parameters (default CalibratedParams).
	Params Params
	// WCET is the estimation strategy (default WCET-AVG).
	WCET WCETStrategy
	// UsePlanner selects the offline greedy scheduler instead of the
	// time-driven dispatcher.
	UsePlanner bool
	// SerializedBus verifies the schedule under exclusive bus use.
	SerializedBus bool
	// Cache, when non-nil, memoizes plans across Run calls keyed by
	// (workload fingerprint, metric, params, scheduler).
	Cache *PlanCache
	// Recorder, when non-nil, accumulates per-stage instrumentation.
	Recorder *PlanRecorder
}

// DefaultPipeline returns the paper's default policy set with this
// implementation's calibrated parameters.
func DefaultPipeline() Pipeline {
	return Pipeline{Metric: slicing.AdaptL(), Params: slicing.CalibratedParams(), WCET: wcet.AVG}
}

// Run executes estimate → slice → schedule → replay on one workload.
// It is RunContext under the background context.
func (pl Pipeline) Run(g *Graph, p *Platform) (*Result, error) {
	return pl.RunContext(context.Background(), g, p)
}

// RunContext is Run under a cancellation context: the planning stages
// check ctx at their boundaries (cooperatively — a running stage is
// never interrupted), a done context ends the run with ctx.Err(), and
// canceled plans are never cached. With a shared Cache, concurrent runs
// of an identical workload coalesce onto a single cold build; the
// Recorder's Coalesced and Canceled columns count both effects.
func (pl Pipeline) RunContext(ctx context.Context, g *Graph, p *Platform) (*Result, error) {
	metric := pl.Metric
	if metric == nil {
		metric = slicing.AdaptL()
	}
	params := pl.Params
	if params == (Params{}) {
		params = slicing.CalibratedParams()
	}
	disp := pipeline.TimeDriven()
	if pl.UsePlanner {
		disp = pipeline.Planner()
	}
	b := &pipeline.Builder{
		Estimator:   pipeline.StrategyEstimator(pl.WCET),
		Distributor: deadline.Sliced{Metric: metric, Params: params},
		Dispatcher:  disp,
		Cache:       pl.Cache,
		Recorder:    pl.Recorder,
	}
	plan, err := b.BuildContext(ctx, pipeline.Spec{Graph: g, Platform: p})
	if err != nil {
		return nil, err
	}
	rep, err := sim.Replay(g, p, plan.Assignment, plan.Schedule, sim.Options{SerializedBus: pl.SerializedBus})
	if err != nil {
		return nil, err
	}
	return &Result{
		Estimates:  plan.Estimates,
		Assignment: plan.Assignment,
		Schedule:   plan.Schedule,
		Report:     rep,
		Plan:       plan,
	}, nil
}
