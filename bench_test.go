package repro

import (
	"fmt"
	"testing"

	"repro/internal/anneal"
	"repro/internal/arch"
	"repro/internal/experiment"
	"repro/internal/feas"
	"repro/internal/gen"
	"repro/internal/optsched"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/slicing"
	"repro/internal/trace"
	"repro/internal/wcet"
)

// ---------------------------------------------------------------------
// Figure benchmarks: one per evaluation figure of the paper. Each
// iteration regenerates the figure on a reduced sample (the full 1024
// graphs/point run is cmd/slicebench); the reported custom metric
// "succ/point" is the mean success ratio over the figure, so regressions
// in *results*, not just speed, show up in benchmark diffs.
// ---------------------------------------------------------------------

func benchFigure(b *testing.B, fig int) {
	b.Helper()
	opts := experiment.DefaultOptions()
	opts.NumGraphs = 8
	b.ReportAllocs()
	var mean float64
	for i := 0; i < b.N; i++ {
		table := experiment.Figures[fig](opts)
		var sum float64
		var cells int
		for _, s := range table.Series {
			for _, p := range s.Points {
				sum += p.Success.Value()
				cells++
			}
		}
		mean = sum / float64(cells)
	}
	b.ReportMetric(mean, "succ/point")
}

// BenchmarkFig2SystemSize regenerates Figure 2: success ratio vs system
// size (m = 2..8) for all four metrics.
func BenchmarkFig2SystemSize(b *testing.B) { benchFigure(b, 2) }

// BenchmarkFig3OLR regenerates Figure 3: success ratio vs deadline
// tightness (OLR sweep) at m = 3.
func BenchmarkFig3OLR(b *testing.B) { benchFigure(b, 3) }

// BenchmarkFig4ETD regenerates Figure 4: success ratio vs execution time
// distribution at m = 3.
func BenchmarkFig4ETD(b *testing.B) { benchFigure(b, 4) }

// BenchmarkFig5WCETOLR regenerates Figure 5: ADAPT-L success ratio vs
// OLR under the three WCET estimation strategies.
func BenchmarkFig5WCETOLR(b *testing.B) { benchFigure(b, 5) }

// BenchmarkFig6WCETETD regenerates Figure 6: ADAPT-L success ratio vs
// ETD under the three WCET estimation strategies.
func BenchmarkFig6WCETETD(b *testing.B) { benchFigure(b, 6) }

// ---------------------------------------------------------------------
// Pipeline-stage micro-benchmarks on a fixed paper-sized workload.
// ---------------------------------------------------------------------

func benchWorkload(b *testing.B, m int) (*Workload, []Time) {
	b.Helper()
	cfg := gen.Default(m)
	cfg.Seed = 12345
	cfg.OLR = experiment.DefaultOLR
	w, err := gen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		b.Fatal(err)
	}
	return w, est
}

// BenchmarkGenerate measures the §5.2 workload generator.
func BenchmarkGenerate(b *testing.B) {
	cfg := gen.Default(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := gen.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistribute measures the slicing algorithm per metric on a
// paper-sized graph (the ADAPT-L case includes the parallel-set usage;
// the closure itself is paid at Freeze).
func BenchmarkDistribute(b *testing.B) {
	w, est := benchWorkload(b, 3)
	for _, metric := range slicing.Metrics() {
		b.Run(metric.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := slicing.Distribute(w.Graph, est, 3, metric, slicing.CalibratedParams()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulers measures the two scheduler variants.
func BenchmarkSchedulers(b *testing.B) {
	w, est := benchWorkload(b, 3)
	asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Dispatch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sched.Dispatch(w.Graph, w.Platform, asg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PlanEDF", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sched.EDF(w.Graph, w.Platform, asg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReplay measures the discrete-event replay under both bus
// models.
func BenchmarkReplay(b *testing.B) {
	w, est := benchWorkload(b, 3)
	asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.Dispatch(w.Graph, w.Platform, asg)
	if err != nil {
		b.Fatal(err)
	}
	for _, serialized := range []bool{false, true} {
		b.Run(fmt.Sprintf("serialized=%v", serialized), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Replay(w.Graph, w.Platform, asg, s, sim.Options{SerializedBus: serialized}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipeline measures the full generate-to-verify flow the
// experiment harness runs per workload, at each system size of Figure 2.
func BenchmarkPipeline(b *testing.B) {
	for _, m := range []int{2, 3, 8} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			pipe := DefaultPipeline()
			cfg := DefaultWorkloadConfig(m)
			cfg.OLR = experiment.DefaultOLR
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = SubSeed(1, i)
				w, err := Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := pipe.Run(w.Graph, w.Platform); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFreeze measures the derived-structure computation (topo
// order, transitive closure, parallel sets) that ADAPT-L's O(n³)
// complexity discussion (§7.2) refers to.
func BenchmarkFreeze(b *testing.B) {
	cfg := gen.Default(3)
	cfg.Seed = 777
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Regenerate to get an unfrozen graph; generation cost is part
		// of the loop for both, so report the delta via BenchmarkGenerate.
		if _, err := gen.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimates measures the WCET estimation strategies.
func BenchmarkEstimates(b *testing.B) {
	w, _ := benchWorkload(b, 3)
	for _, s := range wcet.Strategies {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wcet.Estimates(w.Graph, w.Platform, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModeAblation compares the Consistent and Faithful constraint
// bookkeeping (the design decision DESIGN.md calls out).
func BenchmarkModeAblation(b *testing.B) {
	w, est := benchWorkload(b, 3)
	for _, mode := range []slicing.Mode{slicing.Consistent, slicing.Faithful} {
		b.Run(mode.String(), func(b *testing.B) {
			params := slicing.CalibratedParams()
			params.Mode = mode
			succ := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), params)
				if err != nil {
					b.Fatal(err)
				}
				s, err := sched.Dispatch(w.Graph, w.Platform, asg)
				if err != nil {
					b.Fatal(err)
				}
				if s.Feasible {
					succ++
				}
			}
			b.ReportMetric(float64(succ)/float64(b.N), "feasible")
		})
	}
}

// ---------------------------------------------------------------------
// Extension benchmarks: the §7.3 features and the exact yardstick.
// ---------------------------------------------------------------------

// BenchmarkExtensionSchedulers measures the insertion planner and the
// preemptive dispatcher against the same assignment as
// BenchmarkSchedulers.
func BenchmarkExtensionSchedulers(b *testing.B) {
	w, est := benchWorkload(b, 3)
	asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("InsertEDF", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sched.InsertEDF(w.Graph, w.Platform, asg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DispatchPreemptive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sched.DispatchPreemptive(w.Graph, w.Platform, asg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAdaptR measures the resource-aware metric on a
// resource-bearing workload (includes the per-task conflict counting).
func BenchmarkAdaptR(b *testing.B) {
	cfg := gen.Default(3)
	cfg.Seed = 4242
	cfg.NumResources = 3
	cfg.ResourceProb = 0.3
	w, err := gen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptR(), slicing.CalibratedParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactSmall measures the branch-and-bound scheduler on a
// 10-task instance (feasibility query with early stop).
func BenchmarkExactSmall(b *testing.B) {
	cfg := gen.Default(2)
	cfg.Seed = 31
	cfg.MinTasks, cfg.MaxTasks = 10, 10
	cfg.MinDepth, cfg.MaxDepth = 3, 4
	cfg.OLR = 0.6
	w, err := gen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		b.Fatal(err)
	}
	asg, err := slicing.Distribute(w.Graph, est, 2, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := optsched.Schedule(w.Graph, w.Platform, asg,
			optsched.Options{NodeBudget: 500_000, StopAtFeasible: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Nodes), "nodes")
		}
	}
}

// BenchmarkShapes measures generation across the structural families.
func BenchmarkShapes(b *testing.B) {
	for _, shape := range gen.Shapes {
		b.Run(shape.String(), func(b *testing.B) {
			cfg := gen.Default(3)
			cfg.Shape = shape
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i)
				if _, err := gen.Generate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceLog measures event-log derivation.
func BenchmarkTraceLog(b *testing.B) {
	w, est := benchWorkload(b, 3)
	asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.Dispatch(w.Graph, w.Platform, asg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = trace.FromSchedule(w.Graph, w.Platform, asg, s)
	}
}

// BenchmarkLatenessStudy measures the §4.2 secondary-measure harness on
// a reduced sample.
func BenchmarkLatenessStudy(b *testing.B) {
	opts := experiment.DefaultOptions()
	opts.NumGraphs = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiment.LatenessStudy(opts)
	}
}

// BenchmarkFeasCheck measures the necessary-condition certificates on a
// paper-sized workload.
func BenchmarkFeasCheck(b *testing.B) {
	w, est := benchWorkload(b, 3)
	asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := feas.Check(w.Graph, w.Platform, asg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnealStep measures the annealing search at a small
// iteration budget (each iteration is one full slice+dispatch pipeline).
func BenchmarkAnnealStep(b *testing.B) {
	w, est := benchWorkload(b, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := anneal.Search(w.Graph, w.Platform, est, slicing.CalibratedParams(),
			anneal.Options{Iterations: 10, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkDispatch compares dispatching over the pure shared
// bus against a platform with dedicated links (same workload).
func BenchmarkNetworkDispatch(b *testing.B) {
	w, est := benchWorkload(b, 3)
	asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bus", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sched.Dispatch(w.Graph, w.Platform, asg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("links", func(b *testing.B) {
		linked := *w.Platform
		linked.Net = arch.NewNetwork(linked.M())
		for q := 1; q < linked.M(); q++ {
			linked.Net.SetLink(0, q, 0)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sched.Dispatch(w.Graph, &linked, asg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
