package repro_test

import (
	"fmt"

	"repro"
)

// ExampleDistribute slices a three-task pipeline's end-to-end deadline
// into non-overlapping execution windows.
func ExampleDistribute() {
	g := repro.NewGraph(1)
	sense := g.MustAddTask("sense", []repro.Time{10}, 0)
	filter := g.MustAddTask("filter", []repro.Time{20}, 0)
	act := g.MustAddTask("act", []repro.Time{10}, 0)
	g.MustAddArc(sense.ID, filter.ID, 1)
	g.MustAddArc(filter.ID, act.ID, 1)
	act.ETEDeadline = 100
	g.MustFreeze()

	est := []repro.Time{10, 20, 10}
	asg, err := repro.Distribute(g, est, 2, repro.PURE(), repro.DefaultParams())
	if err != nil {
		panic(err)
	}
	for i := 0; i < g.NumTasks(); i++ {
		fmt.Printf("%s: window [%d, %d)\n", g.Task(i).Name, asg.Arrival[i], asg.AbsDeadline[i])
	}
	// Output:
	// sense: window [0, 30)
	// filter: window [30, 70)
	// act: window [70, 100)
}

// ExamplePipeline_Run drives the full generate → estimate → slice →
// dispatch → verify flow on a deterministic workload.
func ExamplePipeline_Run() {
	cfg := repro.DefaultWorkloadConfig(3)
	cfg.Seed = 42
	cfg.OLR = 0.6
	w, err := repro.Generate(cfg)
	if err != nil {
		panic(err)
	}
	res, err := repro.DefaultPipeline().Run(w.Graph, w.Platform)
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", res.Schedule.Feasible)
	fmt.Println("replay valid:", res.Report.Valid)
	// Output:
	// feasible: true
	// replay valid: true
}

// ExampleExpandPeriodic unrolls a two-rate periodic application over its
// planning cycle.
func ExampleExpandPeriodic() {
	g := repro.NewGraph(1)
	fast := g.MustAddTask("fast", []repro.Time{5}, 0)
	slow := g.MustAddTask("slow", []repro.Time{5}, 0)
	fast.Period, slow.Period = 40, 80
	fast.ETEDeadline = 30
	slow.ETEDeadline = 70
	g.MustFreeze()

	e, err := repro.ExpandPeriodic(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cycle %d: %d invocations\n", e.Cycle, e.Graph.NumTasks())
	for j, src := range e.Source {
		fmt.Printf("%s#%d arrives at %d\n", g.Task(src).Name, e.Invocation[j], e.Graph.Task(j).Phase)
	}
	// Output:
	// cycle 80: 3 invocations
	// fast#1 arrives at 0
	// fast#2 arrives at 40
	// slow#1 arrives at 0
}

// ExampleCheckFeasibility certifies an over-packed assignment as
// unschedulable without running any scheduler.
func ExampleCheckFeasibility() {
	g := repro.NewGraph(1)
	for i := 0; i < 3; i++ {
		t := g.MustAddTask(fmt.Sprintf("t%d", i), []repro.Time{10}, 0)
		t.ETEDeadline = 25
	}
	g.MustFreeze()
	p := repro.HomogeneousPlatform(1)
	est := []repro.Time{10, 10, 10}
	asg, err := repro.Distribute(g, est, 1, repro.PURE(), repro.DefaultParams())
	if err != nil {
		panic(err)
	}
	v, err := repro.CheckFeasibility(g, p, asg)
	if err != nil {
		panic(err)
	}
	fmt.Println(v[0])
	// Output:
	// processors: demand 30 exceeds capacity 25 in [0, 25)
}
