// Package repro is a production-quality Go reproduction of
//
//	Jan Jonsson, "A Robust Adaptive Metric for Deadline Assignment in
//	Heterogeneous Distributed Real-Time Systems", IPPS 1999.
//
// It implements the slicing technique for distributing end-to-end
// deadlines over precedence-constrained task graphs on heterogeneous
// multiprocessors under relaxed locality constraints, together with the
// four critical-path metrics the paper evaluates (PURE, NORM, ADAPT-G,
// and the paper's contribution ADAPT-L), the WCET estimation strategies
// (AVG/MAX/MIN), a non-preemptive time-driven EDF dispatcher, a
// discrete-event replay simulator, a random workload generator matching
// the paper's §5 setup, and the experiment harness that regenerates
// every figure of the evaluation.
//
// Beyond the paper, a fault-injection subsystem (internal/faults with
// the sim.Inject executor) tests the "robust" claim in the title
// directly: schedules are executed under seeded WCET overruns,
// processor slowdown and loss, and bus jitter, with an optional online
// slack-reclamation recovery policy, reporting graceful-degradation
// measures (ScaledFaultPlan, MaterializeFaults, InjectFaults; `go run
// ./cmd/sweep -study faults`).
//
// When overload exceeds every margin, the graceful-degradation
// subsystem (internal/degrade) sheds quality instead of correctness:
// tasks carry a Mandatory/Optional criticality, DegradeModes builds a
// ladder of re-planned reduced operating modes whose mandatory subgraph
// survives at every level, and the online ModeController escalates
// under overload and re-admits shed work through bounded, backed-off
// probes (DegradeStudy; `go run ./cmd/sweep -study degrade`).
//
// This root package is the public API: it re-exports the stable types
// and provides the Pipeline convenience for the common
// generate → estimate → slice → schedule → replay flow. Pipeline.Run
// has a context-aware sibling, RunContext, whose cancellation the
// planning stages honor at their boundaries; with a shared PlanCache,
// concurrent runs of one workload coalesce onto a single cold build
// (the PlanRecorder's Coalesced and Canceled columns account for
// both). The same core is served over HTTP/JSON by `cmd/pland` —
// bounded admission with backpressure, per-request deadlines,
// Prometheus-style /metrics, graceful drain on SIGTERM. The underlying
// packages live in internal/ and are documented individually; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// # Quick start
//
//	w, _ := repro.Generate(repro.DefaultWorkloadConfig(3))
//	pipe := repro.DefaultPipeline()
//	result, _ := pipe.Run(w.Graph, w.Platform)
//	fmt.Println(result.Schedule.Feasible)
//
// See examples/ for complete programs.
package repro
