package repro

import (
	"reflect"
	"testing"
)

func TestPipelineOnGeneratedWorkload(t *testing.T) {
	cfg := DefaultWorkloadConfig(4)
	cfg.Seed = 101
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DefaultPipeline().Run(w.Graph, w.Platform)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != w.Graph.NumTasks() {
		t.Error("estimates missing")
	}
	if err := res.Assignment.Validate(w.Graph); err != nil {
		t.Errorf("assignment invalid: %v", err)
	}
	if !res.Report.Valid {
		t.Errorf("replay violations: %v", res.Report.Violations)
	}
	if res.Schedule.Feasible != (len(res.Report.DeadlineMisses) == 0) {
		t.Error("scheduler and replay disagree on feasibility")
	}
}

func TestPipelineZeroValueDefaults(t *testing.T) {
	// A zero Pipeline must fall back to sensible policies rather than
	// crash on the nil metric.
	w, err := Generate(DefaultWorkloadConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var pipe Pipeline
	if _, err := pipe.Run(w.Graph, w.Platform); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineVariants(t *testing.T) {
	cfg := DefaultWorkloadConfig(3)
	cfg.Seed = 7
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pipe := range []Pipeline{
		{Metric: PURE(), Params: DefaultParams(), WCET: WCETMax},
		{Metric: NORM(), Params: DefaultParams(), WCET: WCETMin, UsePlanner: true},
		{Metric: AdaptG(), Params: CalibratedParams(), SerializedBus: true},
	} {
		res, err := pipe.Run(w.Graph, w.Platform)
		if err != nil {
			t.Fatalf("%+v: %v", pipe, err)
		}
		if res.Schedule == nil || res.Report == nil {
			t.Fatalf("%+v: missing artifacts", pipe)
		}
	}
}

func TestHandBuiltGraphThroughAPI(t *testing.T) {
	g := NewGraph(2)
	sensor := g.MustAddTask("sensor", []Time{5, 7}, 0)
	filter := g.MustAddTask("filter", []Time{20, 14}, 0)
	act := g.MustAddTask("actuate", []Time{6, Unset}, 0)
	g.MustAddArc(sensor.ID, filter.ID, 2)
	g.MustAddArc(filter.ID, act.ID, 1)
	act.ETEDeadline = 90
	g.MustFreeze()

	p, err := NewPlatform([]Class{{Name: "dsp"}, {Name: "cpu"}}, []int{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DefaultPipeline().Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Feasible {
		t.Errorf("3-task pipeline with deadline 90 should schedule: %+v", res.Schedule.Placements)
	}
	// The actuator is only eligible on the dsp class.
	if got := res.Schedule.Placements[act.ID].Proc; got != 0 {
		t.Errorf("actuator on processor %d, want 0", got)
	}
}

func TestMetricHelpers(t *testing.T) {
	if len(Metrics()) != 4 {
		t.Error("Metrics should return four metrics")
	}
	m, err := MetricByName("ADAPT-L")
	if err != nil || m.Name() != "ADAPT-L" {
		t.Errorf("MetricByName failed: %v", err)
	}
	if _, err := MetricByName("nope"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestFigureDispatch(t *testing.T) {
	opts := DefaultExperimentOptions()
	opts.NumGraphs = 2
	table, err := Figure(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Series) != 4 {
		t.Errorf("figure 2 has %d series", len(table.Series))
	}
	if _, err := Figure(99, opts); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestPeriodicThroughAPI(t *testing.T) {
	g := NewGraph(1)
	a := g.MustAddTask("a", []Time{10}, 0)
	b := g.MustAddTask("b", []Time{10}, 0)
	a.Period, b.Period = 50, 50
	g.MustAddArc(a.ID, b.ID, 1)
	c := g.MustAddTask("c", []Time{10}, 0)
	c.Period = 100
	b.ETEDeadline = 45
	c.ETEDeadline = 95
	g.MustFreeze()

	e, err := ExpandPeriodic(g)
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph.NumTasks() != 5 {
		t.Fatalf("expanded to %d tasks, want 5", e.Graph.NumTasks())
	}
	res, err := DefaultPipeline().Run(e.Graph, HomogeneousPlatform(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Feasible {
		t.Errorf("periodic expansion should schedule: missed %v", res.Schedule.Missed)
	}
}

func TestSubSeedExported(t *testing.T) {
	if SubSeed(1, 2) == SubSeed(1, 3) {
		t.Error("SubSeed collision")
	}
}

func TestExtensionSchedulersThroughAPI(t *testing.T) {
	cfg := DefaultWorkloadConfig(3)
	cfg.Seed = 55
	cfg.OLR = 0.6
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimates(w.Graph, w.Platform, WCETAvg)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := Distribute(w.Graph, est, w.Platform.M(), AdaptL(), CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InsertEDF(w.Graph, w.Platform, asg); err != nil {
		t.Errorf("InsertEDF: %v", err)
	}
	pre, err := DispatchPreemptive(w.Graph, w.Platform, asg)
	if err != nil {
		t.Fatalf("DispatchPreemptive: %v", err)
	}
	if len(pre.Slices) == 0 {
		t.Error("preemptive schedule has no slices")
	}
}

func TestExactScheduleThroughAPI(t *testing.T) {
	g := NewGraph(1)
	g.MustAddTask("a", []Time{5}, 0)
	g.MustAddTask("b", []Time{5}, 0)
	g.MustAddArc(0, 1, 0)
	g.Task(1).ETEDeadline = 20
	g.MustFreeze()
	p := HomogeneousPlatform(1)
	est, err := Estimates(g, p, WCETAvg)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := Distribute(g, est, 1, PURE(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExactSchedule(g, p, asg, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || !res.Schedule.Feasible {
		t.Errorf("trivial exact search failed: %+v", res)
	}
}

func TestAdaptRThroughAPI(t *testing.T) {
	if AdaptR().Name() != "ADAPT-R" {
		t.Error("AdaptR name wrong")
	}
	if m, err := MetricByName("ADAPT-R"); err != nil || m.Name() != "ADAPT-R" {
		t.Errorf("MetricByName(ADAPT-R): %v", err)
	}
}

func TestResourceWorkloadThroughAPI(t *testing.T) {
	cfg := DefaultWorkloadConfig(3)
	cfg.Seed = 66
	cfg.NumResources = 2
	cfg.ResourceProb = 0.3
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hasRes := false
	for _, tk := range w.Graph.Tasks() {
		if len(tk.Resources) > 0 {
			hasRes = true
		}
	}
	if !hasRes {
		t.Fatal("no resources generated")
	}
	res, err := Pipeline{Metric: AdaptR(), Params: CalibratedParams()}.Run(w.Graph, w.Platform)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Valid {
		t.Errorf("replay violations: %v", res.Report.Violations)
	}
}

func TestFaultInjectionThroughAPI(t *testing.T) {
	cfg := DefaultWorkloadConfig(3)
	cfg.Seed = 77
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DefaultPipeline().Run(w.Graph, w.Platform)
	if err != nil {
		t.Fatal(err)
	}
	var span Time
	for _, o := range w.Graph.Outputs() {
		if d := w.Graph.Task(o).ETEDeadline; d > span {
			span = d
		}
	}
	// Zero intensity reproduces the nominal replay exactly.
	tr, err := MaterializeFaults(ScaledFaultPlan(0, 7), w.Graph, w.Platform, span)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := InjectFaults(w.Graph, w.Platform, res.Assignment, res.Schedule, tr, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&ir.Report, res.Report) {
		t.Errorf("zero-intensity injection diverged from nominal replay")
	}
	// Full intensity degrades but still verifies.
	tr, err = MaterializeFaults(ScaledFaultPlan(1, 7), w.Graph, w.Platform, span)
	if err != nil {
		t.Fatal(err)
	}
	ir, err = InjectFaults(w.Graph, w.Platform, res.Assignment, res.Schedule, tr, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Valid {
		t.Errorf("injected run structurally invalid: %v", ir.Violations)
	}
	if ir.Degradation.Overruns == 0 {
		t.Error("full-intensity plan injected no overruns")
	}
}

func TestBreakdownFactorThroughAPI(t *testing.T) {
	cfg := DefaultWorkloadConfig(3)
	cfg.Seed = 33
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DefaultPipeline().Run(w.Graph, w.Platform)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BreakdownFactor(w.Graph, w.Platform, res.Assignment, res.Schedule, BreakdownOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.SurvivesNominal != res.Schedule.Feasible {
		t.Errorf("breakdown nominal %v, schedule feasible %v", b.SurvivesNominal, res.Schedule.Feasible)
	}
	if b.SurvivesNominal && b.Factor < 1 {
		t.Errorf("nominally feasible but factor %.3f < 1", b.Factor)
	}
}

func TestMarginStudyThroughAPI(t *testing.T) {
	cfg := MarginConfig{
		Gen:        DefaultWorkloadConfig(3),
		Metric:     AdaptL(),
		Params:     CalibratedParams(),
		WCET:       WCETAvg,
		NumGraphs:  10,
		MasterSeed: 5,
		Model:      WCETErrorModel{Kind: WCETErrMultiplicative, Level: 0.25},
	}
	pt := MarginStudy(cfg)
	if pt.Success.Total != 10 || pt.Errors != 0 {
		t.Fatalf("margin point malformed: %+v", pt)
	}
	bp := BreakdownStudy(cfg)
	if bp.Nominal.Total != 10 || bp.Errors != 0 {
		t.Fatalf("breakdown point malformed: %+v", bp)
	}
}

func TestResliceLoopThroughAPI(t *testing.T) {
	cfg := DefaultWorkloadConfig(3)
	cfg.Seed = 11
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimates(w.Graph, w.Platform, WCETAvg)
	if err != nil {
		t.Fatal(err)
	}
	var span Time
	for _, o := range w.Graph.Outputs() {
		if d := w.Graph.Task(o).ETEDeadline; d > span {
			span = d
		}
	}
	tr, err := MaterializeFaults(ScaledFaultPlan(0, 3), w.Graph, w.Platform, span)
	if err != nil {
		t.Fatal(err)
	}
	// A zero trace needs no feedback: the loop must report immediate
	// recovery (or an over-constrained base assignment) with 0 iterations.
	rr, err := ResliceLoop(w.Graph, w.Platform, est, AdaptL(), CalibratedParams(), tr, ResliceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Iterations != 0 {
		t.Errorf("zero trace demanded %d feedback iterations", rr.Iterations)
	}
}

func TestDegradationThroughAPI(t *testing.T) {
	cfg := DefaultWorkloadConfig(3)
	cfg.Seed = 13
	cfg.OptionalProb = 0.5
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	modes, err := DegradeModes(w.Graph, DegradeOptions{Policy: DegradeShedLowestValue})
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) < 2 {
		t.Fatalf("no degraded modes at p(optional)=0.5: %d", len(modes))
	}
	if modes[0].Graph != w.Graph || modes[0].Quality != 1 {
		t.Errorf("mode 0 is not the full application: %+v", modes[0])
	}
	for _, m := range modes[1:] {
		if m.Quality >= 1 || m.Shed == 0 {
			t.Errorf("mode %d sheds nothing: quality %v, shed %d", m.Level, m.Quality, m.Shed)
		}
		for old, crit := range criticalities(w.Graph) {
			if crit == Mandatory && m.Old2New[old] < 0 {
				t.Errorf("mode %d shed mandatory task %d", m.Level, old)
			}
		}
	}

	// The controller escalates on a hot frame and probes back after a
	// clean streak.
	ctl := NewModeController(ModeControllerOptions{MaxLevel: len(modes) - 1, CleanStreak: 2})
	if tr := ctl.Observe(ModeObservation{MandatoryMisses: 1}); tr.To != 1 {
		t.Errorf("no escalation: %+v", tr)
	}
	ctl.Observe(ModeObservation{})
	if tr := ctl.Observe(ModeObservation{}); tr.To != 0 {
		t.Errorf("no probe after a clean streak: %+v", tr)
	}

	curve, err := DegradeStudy(DegradeConfig{
		Gen: cfg, Metric: AdaptL(), Params: CalibratedParams(), WCET: WCETAvg,
		NumGraphs: 4, MasterSeed: 5, Intensities: []float64{0, 1},
		Degrade: DegradeOptions{Policy: DegradeProportionalBudget},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 2 {
		t.Fatalf("points: %d", len(curve.Points))
	}
	if curve.Points[0].Value.Mean() < curve.Points[1].Value.Mean() {
		t.Errorf("achieved value increased with intensity: %v then %v",
			curve.Points[0].Value.Mean(), curve.Points[1].Value.Mean())
	}
}

// criticalities flattens the graph's criticality labels by task ID.
func criticalities(g *Graph) []Criticality {
	out := make([]Criticality, g.NumTasks())
	for i := range out {
		out[i] = g.Task(i).Criticality
	}
	return out
}
