package wcet

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

func threeClassTask(t *testing.T) *taskgraph.Task {
	t.Helper()
	g := taskgraph.NewGraph(3)
	return g.MustAddTask("t", []rtime.Time{10, 20, 31}, 0)
}

func TestEstimateAllPresent(t *testing.T) {
	tk := threeClassTask(t)
	present := []bool{true, true, true}
	cases := []struct {
		s    Strategy
		want rtime.Time
	}{
		{AVG, 20}, // (10+20+31)/3 = 20.33 → 20
		{MAX, 31},
		{MIN, 10},
	}
	for _, c := range cases {
		got, err := c.s.Estimate(tk, present)
		if err != nil {
			t.Fatalf("%v: %v", c.s, err)
		}
		if got != c.want {
			t.Errorf("%v = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestEstimateSkipsAbsentClasses(t *testing.T) {
	tk := threeClassTask(t)
	present := []bool{true, false, true} // class 1 has no processor
	got, err := AVG.Estimate(tk, present)
	if err != nil {
		t.Fatal(err)
	}
	if got != 21 { // (10+31)/2 = 20.5 → rounds up to 21
		t.Errorf("AVG = %d, want 21", got)
	}
	if got, _ := MAX.Estimate(tk, present); got != 31 {
		t.Errorf("MAX = %d, want 31", got)
	}
	if got, _ := MIN.Estimate(tk, present); got != 10 {
		t.Errorf("MIN = %d, want 10", got)
	}
}

func TestEstimateSkipsIneligibleClasses(t *testing.T) {
	g := taskgraph.NewGraph(3)
	tk := g.MustAddTask("t", []rtime.Time{rtime.Unset, 20, 30}, 0)
	present := []bool{true, true, true}
	if got, _ := MIN.Estimate(tk, present); got != 20 {
		t.Errorf("MIN = %d, want 20 (class 0 ineligible)", got)
	}
	if got, _ := AVG.Estimate(tk, present); got != 25 {
		t.Errorf("AVG = %d, want 25", got)
	}
}

func TestEstimateNoValidClass(t *testing.T) {
	g := taskgraph.NewGraph(2)
	tk := g.MustAddTask("t", []rtime.Time{5, rtime.Unset}, 0)
	if _, err := AVG.Estimate(tk, []bool{false, true}); err == nil {
		t.Error("task eligible only on an absent class should fail")
	}
}

func TestEstimates(t *testing.T) {
	g := taskgraph.NewGraph(2)
	g.MustAddTask("a", []rtime.Time{10, 30}, 0)
	g.MustAddTask("b", []rtime.Time{rtime.Unset, 16}, 0)
	g.MustFreeze()
	p := arch.MustNew(arch.Unrelated,
		[]arch.Class{{Name: "x"}, {Name: "y"}}, []int{0, 1}, arch.Bus{DelayPerItem: 1})
	est, err := Estimates(g, p, AVG)
	if err != nil {
		t.Fatal(err)
	}
	if est[0] != 20 || est[1] != 16 {
		t.Errorf("est = %v, want [20 16]", est)
	}
}

func TestEstimatesFailurePropagates(t *testing.T) {
	g := taskgraph.NewGraph(2)
	g.MustAddTask("a", []rtime.Time{10, rtime.Unset}, 0)
	g.MustFreeze()
	// Platform only has class-1 processors; task a is only valid on class 0.
	p := arch.MustNew(arch.Unrelated,
		[]arch.Class{{Name: "x"}, {Name: "y"}}, []int{1}, arch.Bus{DelayPerItem: 1})
	if _, err := Estimates(g, p, MAX); err == nil {
		t.Error("unsatisfiable task should surface an error")
	}
}

func TestMeanEstimate(t *testing.T) {
	if got := MeanEstimate([]rtime.Time{10, 20, 30}); got != 20 {
		t.Errorf("mean = %d, want 20", got)
	}
	if got := MeanEstimate([]rtime.Time{1, 2}); got != 2 { // 1.5 rounds up
		t.Errorf("mean = %d, want 2", got)
	}
	if got := MeanEstimate(nil); got != 0 {
		t.Errorf("mean of empty = %d, want 0", got)
	}
}

func TestStrategyString(t *testing.T) {
	if AVG.String() != "WCET-AVG" || MAX.String() != "WCET-MAX" || MIN.String() != "WCET-MIN" {
		t.Error("strategy names wrong")
	}
	if !strings.Contains(Strategy(9).String(), "9") {
		t.Error("unknown strategy should include its number")
	}
	if len(Strategies) != 3 {
		t.Error("Strategies should list all three")
	}
}

func TestUnknownStrategyErrors(t *testing.T) {
	g := taskgraph.NewGraph(1)
	tk := g.MustAddTask("t", []rtime.Time{5}, 0)
	if _, err := Strategy(42).Estimate(tk, []bool{true}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestPinnedEstimateBypassesStrategy(t *testing.T) {
	g := taskgraph.NewGraph(2)
	a := g.MustAddTask("a", []rtime.Time{10, 30}, 0)
	a.Pinned = 0
	g.MustFreeze()
	p := arch.MustNew(arch.Unrelated, []arch.Class{{}, {}}, []int{0, 1}, arch.Bus{DelayPerItem: 1})
	for _, s := range Strategies {
		est, err := Estimates(g, p, s)
		if err != nil {
			t.Fatal(err)
		}
		if est[0] != 10 {
			t.Errorf("%v: pinned estimate = %d, want exact 10", s, est[0])
		}
	}
	// Pinned beyond the platform errors.
	g2 := taskgraph.NewGraph(2)
	b := g2.MustAddTask("b", []rtime.Time{10, 30}, 0)
	b.Pinned = 9
	g2.MustFreeze()
	if _, err := Estimates(g2, p, AVG); err == nil {
		t.Error("out-of-range pin accepted")
	}
}
