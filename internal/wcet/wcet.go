// Package wcet implements the estimated-WCET strategies of §5.3. When
// task assignments are not yet known (relaxed locality constraints), the
// deadline-distribution algorithm works from an estimate c̄ᵢ derived from
// the per-class WCET array:
//
//	WCET-AVG (eq. 9): the average of all valid execution times,
//	WCET-MAX (eq. 10): the maximum (pessimistic),
//	WCET-MIN (eq. 11): the minimum (optimistic).
//
// Only classes that are both valid for the task and present on the
// platform are considered — a class with no processor can never host the
// task, so its WCET carries no information about the eventual assignment.
package wcet

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// Strategy estimates a task's WCET from its per-class array before the
// task's processor assignment is known.
type Strategy int

const (
	// AVG averages the valid per-class WCETs (the paper's default).
	AVG Strategy = iota
	// MAX takes the pessimistic maximum.
	MAX
	// MIN takes the optimistic minimum.
	MIN
)

// Strategies lists every strategy in presentation order (used by the
// figure-5/6 harness).
var Strategies = []Strategy{AVG, MAX, MIN}

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case AVG:
		return "WCET-AVG"
	case MAX:
		return "WCET-MAX"
	case MIN:
		return "WCET-MIN"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Estimate returns c̄ for a single task given which classes are present
// on the platform. It fails if the task is eligible on no present class,
// since such a task can never be assigned.
func (s Strategy) Estimate(t *taskgraph.Task, present []bool) (rtime.Time, error) {
	var (
		sum   rtime.Time
		count rtime.Time
		maxC  = rtime.Time(0)
		minC  = rtime.Infinity
	)
	for k, c := range t.WCET {
		if !c.IsSet() || k >= len(present) || !present[k] {
			continue
		}
		sum += c
		count++
		if c > maxC {
			maxC = c
		}
		if c < minC {
			minC = c
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("wcet: task %d (%s) is eligible on no present processor class", t.ID, t.Name)
	}
	switch s {
	case AVG:
		// Round to the nearest time unit; ties round up.
		return (sum + count/2) / count, nil
	case MAX:
		return maxC, nil
	case MIN:
		return minC, nil
	}
	return 0, fmt.Errorf("wcet: unknown strategy %d", int(s))
}

// Estimates computes c̄ for every task of g on platform p. Tasks under
// strict locality constraints (Task.Pinned ≥ 0) have a known assignment,
// so their estimate is the exact WCET on the pinned processor's class —
// the a-priori information the paper's §1 says strict tasks come with.
func Estimates(g *taskgraph.Graph, p *arch.Platform, s Strategy) ([]rtime.Time, error) {
	present := p.ClassesPresent()
	est := make([]rtime.Time, g.NumTasks())
	for i, t := range g.Tasks() {
		if t.Pinned >= 0 {
			if t.Pinned >= p.M() {
				return nil, fmt.Errorf("wcet: task %d pinned to missing processor %d", i, t.Pinned)
			}
			class := p.ClassOf(t.Pinned)
			if !t.EligibleOn(class) {
				return nil, fmt.Errorf("wcet: task %d pinned to processor %d of ineligible class %d",
					i, t.Pinned, class)
			}
			est[i] = t.WCET[class]
			continue
		}
		c, err := s.Estimate(t, present)
		if err != nil {
			return nil, err
		}
		est[i] = c
	}
	return est, nil
}

// MeanEstimate returns the mean of est rounded to the nearest time unit.
// The adaptive metrics use it as the default execution-time threshold
// c_thres = 1.0 · c_mean (§6).
func MeanEstimate(est []rtime.Time) rtime.Time {
	if len(est) == 0 {
		return 0
	}
	var sum rtime.Time
	for _, c := range est {
		sum += c
	}
	n := rtime.Time(len(est))
	return (sum + n/2) / n
}
