package wcet

import (
	"fmt"
	"math"
	"math/rand"
)

// ErrorKind selects how the *true* execution times of a workload deviate
// from the WCET estimates the deadline-distribution step worked from.
// The paper's robustness claim (§5.3, figures 5–6) is evaluated only by
// swapping the estimation strategy; these models instead perturb reality
// away from the estimates, so the harness can measure how much
// estimation error each metric's assignment tolerates.
type ErrorKind int

const (
	// ErrNone leaves reality exactly at the declared per-class WCETs.
	ErrNone ErrorKind = iota
	// ErrMultiplicative scales every task independently by a factor
	// uniform in [1−level, 1+level] — unbiased symmetric noise.
	ErrMultiplicative
	// ErrClassBias scales every processor class by its own factor
	// uniform in [1−level, 1+level]: a systematically mis-characterized
	// class (e.g. a benchmark run on the wrong silicon revision).
	ErrClassBias
	// ErrHeavyTail leaves most tasks exact but makes a few overrun by a
	// truncated-Pareto factor — the rare-path blowups WCET analysis
	// tends to miss. The overrun probability and severity both grow with
	// level.
	ErrHeavyTail
)

// ErrorKinds lists the perturbing models in presentation order.
var ErrorKinds = []ErrorKind{ErrMultiplicative, ErrClassBias, ErrHeavyTail}

// String implements fmt.Stringer.
func (k ErrorKind) String() string {
	switch k {
	case ErrNone:
		return "none"
	case ErrMultiplicative:
		return "mult"
	case ErrClassBias:
		return "bias"
	case ErrHeavyTail:
		return "tail"
	}
	return fmt.Sprintf("ErrorKind(%d)", int(k))
}

// ErrorModel is one estimation-error scenario: a deviation shape and a
// magnitude. Level 0 is always the identity — every scale factor is
// exactly 1 — for every kind, which anchors the zero-perturbation
// identity property the margin studies rely on.
type ErrorModel struct {
	Kind  ErrorKind
	Level float64
}

// Zero reports whether the model can only produce identity
// perturbations.
func (e ErrorModel) Zero() bool { return e.Kind == ErrNone || e.Level == 0 }

// ParamError is a typed rejection of an error-model parameter, so
// callers can errors.As for configuration mistakes (negative levels,
// NaN/Inf, unknown kinds) instead of silently drawing nonsense
// perturbations.
type ParamError struct {
	// Param is the rejected field, "Kind" or "Level".
	Param string
	// Value is the offending value.
	Value float64
	// Reason says what was expected.
	Reason string
}

// Error implements error.
func (e *ParamError) Error() string {
	return fmt.Sprintf("wcet: error-model %s = %v %s", e.Param, e.Value, e.Reason)
}

// Validate checks the model: the kind must be known and the level a
// finite non-negative magnitude. NaN and Inf are rejected explicitly —
// they pass naive range comparisons and would otherwise propagate into
// every drawn scale factor.
func (e ErrorModel) Validate() error {
	switch e.Kind {
	case ErrNone, ErrMultiplicative, ErrClassBias, ErrHeavyTail:
	default:
		return &ParamError{Param: "Kind", Value: float64(e.Kind), Reason: "is not a known error kind"}
	}
	if math.IsNaN(e.Level) || math.IsInf(e.Level, 0) {
		return &ParamError{Param: "Level", Value: e.Level, Reason: "is not a finite magnitude"}
	}
	if e.Level < 0 {
		return &ParamError{Param: "Level", Value: e.Level, Reason: "is negative"}
	}
	return nil
}

// Perturbation is one concrete draw of truth-vs-estimate scale factors
// for a workload: per-task multiplicative factors and per-class
// multiplicative factors (both 1 when unperturbed). The sim package's
// fault traces carry exactly this shape (Trace.ExecScale / Trace.Slow),
// so a Perturbation injects through the existing executor.
type Perturbation struct {
	// TaskScale[i] multiplies task i's execution time (≥ 0; values
	// below 1 model early completion).
	TaskScale []float64
	// ClassScale[k] multiplies every execution time on class k.
	ClassScale []float64
}

// Zero reports whether the perturbation changes nothing.
func (p Perturbation) Zero() bool {
	for _, s := range p.TaskScale {
		if s != 1 {
			return false
		}
	}
	for _, s := range p.ClassScale {
		if s != 1 {
			return false
		}
	}
	return true
}

// heavyTailCap truncates the Pareto overrun factor so a single unlucky
// draw cannot dominate a whole study cell.
const heavyTailCap = 8.0

// Draw materializes one deterministic perturbation for a workload of n
// tasks over numClasses processor classes. The same (model, n,
// numClasses, seed) always yields the same factors: task draws happen in
// ID order, class draws in class order, so the draw is stable regardless
// of how the caller consumes it.
func (e ErrorModel) Draw(n, numClasses int, seed int64) Perturbation {
	p := Perturbation{
		TaskScale:  make([]float64, n),
		ClassScale: make([]float64, numClasses),
	}
	for i := range p.TaskScale {
		p.TaskScale[i] = 1
	}
	for k := range p.ClassScale {
		p.ClassScale[k] = 1
	}
	if e.Zero() {
		return p
	}
	rng := rand.New(rand.NewSource(seed))
	level := e.Level
	switch e.Kind {
	case ErrMultiplicative:
		for i := 0; i < n; i++ {
			p.TaskScale[i] = 1 + level*(2*rng.Float64()-1)
		}
	case ErrClassBias:
		for k := 0; k < numClasses; k++ {
			p.ClassScale[k] = 1 + level*(2*rng.Float64()-1)
		}
	case ErrHeavyTail:
		// Overrun probability 0.1·(1+level); severity a Pareto(α=1.5)
		// factor blended in by level, truncated at heavyTailCap.
		prob := 0.1 * (1 + level)
		const alpha = 1.5
		for i := 0; i < n; i++ {
			u := rng.Float64()
			hit := u < prob
			x := math.Pow(1-rng.Float64(), -1/alpha) // Pareto ≥ 1
			if !hit {
				continue
			}
			if x > heavyTailCap {
				x = heavyTailCap
			}
			p.TaskScale[i] = 1 + level*(x-1)
		}
	}
	for i := range p.TaskScale {
		if p.TaskScale[i] < 0 {
			p.TaskScale[i] = 0
		}
	}
	for k := range p.ClassScale {
		if p.ClassScale[k] < 0 {
			p.ClassScale[k] = 0
		}
	}
	return p
}
