package wcet

import (
	"errors"
	"math"
	"testing"
)

func TestErrorModelZeroLevelIsIdentity(t *testing.T) {
	for _, kind := range append([]ErrorKind{ErrNone}, ErrorKinds...) {
		m := ErrorModel{Kind: kind, Level: 0}
		if !m.Zero() {
			t.Errorf("%v at level 0: Zero() = false", kind)
		}
		p := m.Draw(20, 3, 42)
		if !p.Zero() {
			t.Errorf("%v at level 0: non-identity perturbation %+v", kind, p)
		}
	}
}

func TestErrorModelDeterministic(t *testing.T) {
	for _, kind := range ErrorKinds {
		m := ErrorModel{Kind: kind, Level: 0.5}
		a := m.Draw(30, 2, 7)
		b := m.Draw(30, 2, 7)
		for i := range a.TaskScale {
			if a.TaskScale[i] != b.TaskScale[i] {
				t.Fatalf("%v: task %d scale differs across identical draws", kind, i)
			}
		}
		for k := range a.ClassScale {
			if a.ClassScale[k] != b.ClassScale[k] {
				t.Fatalf("%v: class %d scale differs across identical draws", kind, k)
			}
		}
	}
}

func TestErrorModelShapes(t *testing.T) {
	// Multiplicative noise perturbs tasks only; class bias perturbs
	// classes only; heavy tail only ever inflates.
	mult := ErrorModel{Kind: ErrMultiplicative, Level: 0.5}.Draw(50, 3, 1)
	for k, s := range mult.ClassScale {
		if s != 1 {
			t.Errorf("mult: class %d scaled to %v", k, s)
		}
	}
	touched := false
	for _, s := range mult.TaskScale {
		if s < 0.5-1e-9 || s > 1.5+1e-9 {
			t.Errorf("mult: task scale %v outside [0.5, 1.5]", s)
		}
		if s != 1 {
			touched = true
		}
	}
	if !touched {
		t.Error("mult at level 0.5 perturbed nothing")
	}

	bias := ErrorModel{Kind: ErrClassBias, Level: 0.5}.Draw(50, 3, 1)
	for i, s := range bias.TaskScale {
		if s != 1 {
			t.Errorf("bias: task %d scaled to %v", i, s)
		}
	}

	tail := ErrorModel{Kind: ErrHeavyTail, Level: 1}.Draw(400, 3, 1)
	overruns := 0
	for _, s := range tail.TaskScale {
		if s < 1 {
			t.Errorf("tail: deflating scale %v", s)
		}
		if s > 1+heavyTailCap {
			t.Errorf("tail: scale %v above cap", s)
		}
		if s > 1 {
			overruns++
		}
	}
	if overruns == 0 || overruns == 400 {
		t.Errorf("tail: %d/400 overruns, want a sparse non-empty set", overruns)
	}
}

func TestErrorModelValidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name  string
		model ErrorModel
		param string // expected ParamError.Param, "" for valid
	}{
		{"zero model", ErrorModel{}, ""},
		{"mult", ErrorModel{Kind: ErrMultiplicative, Level: 0.3}, ""},
		{"bias", ErrorModel{Kind: ErrClassBias, Level: 1}, ""},
		{"tail", ErrorModel{Kind: ErrHeavyTail, Level: 0.5}, ""},
		{"unknown kind", ErrorModel{Kind: ErrorKind(99)}, "Kind"},
		{"negative level", ErrorModel{Kind: ErrMultiplicative, Level: -0.1}, "Level"},
		{"nan level", ErrorModel{Kind: ErrClassBias, Level: nan}, "Level"},
		{"inf level", ErrorModel{Kind: ErrHeavyTail, Level: inf}, "Level"},
		{"neg inf level", ErrorModel{Kind: ErrMultiplicative, Level: math.Inf(-1)}, "Level"},
	}
	for _, tc := range cases {
		err := tc.model.Validate()
		if tc.param == "" {
			if err != nil {
				t.Errorf("%s: Validate = %v, want nil", tc.name, err)
			}
			continue
		}
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Errorf("%s: Validate = %v, want *ParamError", tc.name, err)
			continue
		}
		if pe.Param != tc.param {
			t.Errorf("%s: rejected %q, want %q (%v)", tc.name, pe.Param, tc.param, pe)
		}
	}
}
