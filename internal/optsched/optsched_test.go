package optsched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

func c1(v rtime.Time) []rtime.Time { return []rtime.Time{v} }

func manual(arr, dl []rtime.Time) *slicing.Assignment {
	rel := make([]rtime.Time, len(arr))
	for i := range rel {
		rel[i] = dl[i] - arr[i]
	}
	return &slicing.Assignment{Arrival: arr, AbsDeadline: dl, RelDeadline: rel}
}

func TestExactSingleTask(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("", c1(10), 0)
	g.MustFreeze()
	res, err := Schedule(g, arch.Homogeneous(1), manual([]rtime.Time{0}, []rtime.Time{10}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Schedule == nil || !res.Schedule.Feasible {
		t.Fatalf("res = %+v", res)
	}
	if res.Schedule.MaxLateness != 0 {
		t.Errorf("lateness = %d, want 0", res.Schedule.MaxLateness)
	}
}

func TestExactFindsNonGreedySolution(t *testing.T) {
	// The classic non-preemptive EDF trap: at t=0 only the long slack
	// task is ready; the work-conserving dispatcher starts it, blocking
	// the processor, and the tight task arriving at 2 misses by 5. The
	// optimal schedule deliberately idles [0,2), runs tight [2,5), then
	// long [5,15) — an *active* schedule (the long task cannot shift
	// left without delaying the tight one), so Giffler–Thompson finds it.
	g := taskgraph.NewGraph(1)
	g.MustAddTask("long", c1(10), 0)
	g.MustAddTask("tight", c1(3), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := manual([]rtime.Time{0, 2}, []rtime.Time{30, 8})

	d, err := sched.Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Feasible || d.MaxLateness != 5 {
		t.Fatalf("dispatcher should miss by 5, got %d (feasible=%v)", d.MaxLateness, d.Feasible)
	}

	res, err := Schedule(g, p, asg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("tiny instance must be solved to optimality")
	}
	if !res.Schedule.Feasible || res.Schedule.MaxLateness != -3 {
		t.Errorf("max lateness = %d, want -3 (tight [2,5), long [5,15))", res.Schedule.MaxLateness)
	}
	if res.Schedule.Placements[1].Start != 2 || res.Schedule.Placements[0].Start != 5 {
		t.Errorf("placements = %+v", res.Schedule.Placements)
	}
}

func TestExactBeatsDispatchOnProcessorChoice(t *testing.T) {
	// Two tasks, two heterogeneous processors. Greedy EDF sends the
	// first task to the fast processor; the optimal assignment swaps
	// them so both meet their deadlines.
	g := taskgraph.NewGraph(2)
	g.MustAddTask("a", []rtime.Time{10, 30}, 0) // slow on class 1
	g.MustAddTask("b", []rtime.Time{10, 12}, 0)
	g.MustFreeze()
	p := arch.MustNew(arch.Unrelated, []arch.Class{{}, {}}, []int{0, 1}, arch.Bus{DelayPerItem: 1})
	// a must use class 0 to fit; b fits on class 1.
	asg := manual([]rtime.Time{0, 0}, []rtime.Time{10, 12})

	d, err := sched.Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(g, p, asg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("instance too small to exhaust budget")
	}
	if !res.Schedule.Feasible {
		t.Fatalf("optimal is feasible: a→p0 [0,10), b→p1 [0,12); got lateness %d",
			res.Schedule.MaxLateness)
	}
	// The dispatcher happens to solve this too (both procs idle at 0,
	// each task picks min finish) — assert exact is at least as good.
	if res.Schedule.MaxLateness > d.MaxLateness {
		t.Errorf("exact (%d) worse than dispatch (%d)", res.Schedule.MaxLateness, d.MaxLateness)
	}
}

func TestStopAtFeasible(t *testing.T) {
	g := taskgraph.NewGraph(1)
	for i := 0; i < 6; i++ {
		g.MustAddTask("", c1(5), 0)
	}
	g.MustFreeze()
	p := arch.Homogeneous(2)
	asg := manual(
		[]rtime.Time{0, 0, 0, 0, 0, 0},
		[]rtime.Time{40, 40, 40, 40, 40, 40})
	res, err := Schedule(g, p, asg, Options{StopAtFeasible: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || !res.Schedule.Feasible {
		t.Fatalf("loose instance should stop at the first feasible schedule: %+v", res)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// 12 independent tasks on 3 processors with a 2-node budget cannot
	// possibly finish.
	g := taskgraph.NewGraph(1)
	for i := 0; i < 12; i++ {
		g.MustAddTask("", c1(5), 0)
	}
	g.MustFreeze()
	arr := make([]rtime.Time, 12)
	dl := make([]rtime.Time, 12)
	for i := range dl {
		dl[i] = 100
	}
	res, err := Schedule(g, arch.Homogeneous(3), manual(arr, dl), Options{NodeBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Error("budget-capped search must not claim optimality")
	}
}

func TestUnplaceableTaskIsConclusive(t *testing.T) {
	g := taskgraph.NewGraph(2)
	g.MustAddTask("", []rtime.Time{10, rtime.Unset}, 0)
	g.MustFreeze()
	p := arch.MustNew(arch.Unrelated, []arch.Class{{}, {}}, []int{1}, arch.Bus{DelayPerItem: 1})
	res, err := Schedule(g, p, manual([]rtime.Time{0}, []rtime.Time{100}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Schedule != nil {
		t.Errorf("no schedule exists; res = %+v", res)
	}
}

// Property: on small random workloads the exact schedule verifies, and
// its max lateness is never worse than the dispatcher's.
func TestExactDominatesHeuristics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := gen.Default(2 + rng.Intn(2))
		cfg.Seed = seed
		cfg.MinTasks, cfg.MaxTasks = 6, 10
		cfg.MinDepth, cfg.MaxDepth = 2, 4
		cfg.OLR = 0.4 + rng.Float64()*0.4
		w, err := gen.Generate(cfg)
		if err != nil {
			return false
		}
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			return false
		}
		asg, err := slicing.Distribute(w.Graph, est, w.Platform.M(), slicing.AdaptL(), slicing.CalibratedParams())
		if err != nil {
			return false
		}
		d, err := sched.Dispatch(w.Graph, w.Platform, asg)
		if err != nil {
			return false
		}
		res, err := Schedule(w.Graph, w.Platform, asg, Options{NodeBudget: 500_000})
		if err != nil {
			return false
		}
		if res.Schedule == nil {
			return !res.Optimal // ran out of budget without a leaf: acceptable
		}
		if err := sched.Verify(w.Graph, w.Platform, asg, res.Schedule); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.Optimal && everyTaskPlaced(d) && res.Schedule.MaxLateness > d.MaxLateness {
			t.Logf("seed %d: exact %d vs dispatch %d", seed, res.Schedule.MaxLateness, d.MaxLateness)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func everyTaskPlaced(s *sched.Schedule) bool {
	for _, pl := range s.Placements {
		if pl.Proc < 0 {
			return false
		}
	}
	return true
}
