// Package optsched is an exact branch-and-bound scheduler for small
// task graphs. The combined deadline-distribution and task-assignment
// problem is NP-complete (§1, [11]), which is why the paper — like the
// branch-and-bound assignment algorithms it cites [3, 4] — resorts to
// heuristics; this package provides the optimal yardstick those
// heuristics are implicitly measured against.
//
// The search enumerates *active* non-preemptive schedules with the
// Giffler–Thompson branching scheme, generalized to heterogeneous
// processors, window arrival times, shared-bus communication delays,
// and exclusive resources: at each node it computes the earliest
// possible (start, finish) of every ready (task, processor) pair,
// identifies the minimal earliest finish t*, and branches only on pairs
// that start strictly before t* — a complete scheme for regular
// objectives such as maximum lateness. Subtrees are pruned as soon as a
// lower bound on some task's finish time exceeds its deadline by more
// than the best lateness found so far.
//
// Use it for graphs up to roughly 20 tasks; NodeBudget caps the search
// so callers degrade gracefully instead of hanging.
package optsched

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Options bounds the search.
type Options struct {
	// NodeBudget caps the number of explored branch nodes (0 means the
	// default of 2 million).
	NodeBudget int
	// StopAtFeasible ends the search at the first schedule with no
	// deadline miss instead of proving optimal max lateness.
	StopAtFeasible bool
}

// Result reports the outcome of an exact search.
type Result struct {
	// Schedule is the best schedule found (nil when no complete
	// schedule was constructed within the budget).
	Schedule *sched.Schedule
	// Optimal reports that the search space was exhausted, so
	// Schedule's max lateness is minimal over all active schedules (or,
	// with StopAtFeasible, that a feasible schedule was found).
	Optimal bool
	// Nodes is the number of branch nodes explored.
	Nodes int
}

type searcher struct {
	g   *taskgraph.Graph
	p   *arch.Platform
	asg *slicing.Assignment
	opt Options

	n, m int

	// Mutable state, undone on backtrack.
	placed    []sched.Placement
	procFree  []rtime.Time
	resFree   []rtime.Time
	predsLeft []int
	doneCount int

	bestLate rtime.Time
	best     []sched.Placement
	nodes    int
	budget   int
	finished bool
}

// Schedule runs the exact search.
func Schedule(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, opt Options) (*Result, error) {
	n := g.NumTasks()
	if len(asg.Arrival) != n || len(asg.AbsDeadline) != n {
		return nil, fmt.Errorf("optsched: assignment covers %d tasks, graph has %d", len(asg.Arrival), n)
	}
	// Every task must have an eligible present class; otherwise no
	// complete schedule exists at all.
	present := p.ClassesPresent()
	for i := 0; i < n; i++ {
		ok := false
		for k, c := range g.Task(i).WCET {
			if c.IsSet() && k < len(present) && present[k] {
				ok = true
				break
			}
		}
		if !ok {
			return &Result{Optimal: true}, nil
		}
	}

	s := &searcher{
		g: g, p: p, asg: asg, opt: opt,
		n: n, m: p.M(),
		placed:    make([]sched.Placement, n),
		procFree:  make([]rtime.Time, p.M()),
		resFree:   makeResTable(g),
		predsLeft: make([]int, n),
		bestLate:  rtime.Infinity,
		budget:    opt.NodeBudget,
	}
	if s.budget <= 0 {
		s.budget = 2_000_000
	}
	for i := range s.placed {
		s.placed[i] = sched.Placement{Proc: -1}
		s.predsLeft[i] = len(g.Preds(i))
	}
	s.dfs(-rtime.Infinity)

	res := &Result{Nodes: s.nodes}
	if s.best != nil {
		res.Schedule = s.buildSchedule()
	}
	// The result is conclusive when the search space was exhausted
	// within budget, or when a feasible schedule satisfied an early-stop
	// request.
	res.Optimal = s.nodes < s.budget || (opt.StopAtFeasible && s.finished)
	return res, nil
}

func makeResTable(g *taskgraph.Graph) []rtime.Time {
	max := -1
	for _, t := range g.Tasks() {
		for _, r := range t.Resources {
			if r > max {
				max = r
			}
		}
	}
	return make([]rtime.Time, max+1)
}

// earliest computes the earliest (start, finish) of task i on processor
// q in the current partial schedule, or ok=false if ineligible.
func (s *searcher) earliest(i, q int) (start, finish rtime.Time, ok bool) {
	task := s.g.Task(i)
	if task.Pinned >= 0 && q != task.Pinned {
		return 0, 0, false
	}
	class := s.p.ClassOf(q)
	if !task.EligibleOn(class) {
		return 0, 0, false
	}
	start = rtime.Max(s.procFree[q], s.asg.Arrival[i])
	for _, pr := range s.g.Preds(i) {
		pl := s.placed[pr]
		arrive := pl.Finish + s.p.CommCost(pl.Proc, q, s.g.MessageItems(pr, i))
		if arrive > start {
			start = arrive
		}
	}
	for _, r := range task.Resources {
		if s.resFree[r] > start {
			start = s.resFree[r]
		}
	}
	return start, start + task.WCET[class], true
}

// bound returns a lower bound on the maximum lateness achievable from
// the current partial schedule: for each unscheduled ready-or-not task,
// its earliest possible finish ignoring processor contention (critical
// path over unscheduled tasks, best class).
func (s *searcher) bound(curLate rtime.Time) rtime.Time {
	lb := curLate
	topo := s.g.TopoOrder()
	eft := make([]rtime.Time, s.n) // earliest finish bound
	for _, v := range topo {
		if s.placed[v].Proc >= 0 {
			eft[v] = s.placed[v].Finish
			continue
		}
		start := s.asg.Arrival[v]
		for _, pr := range s.g.Preds(v) {
			if eft[pr] > start { // free communication: still a valid bound
				start = eft[pr]
			}
		}
		bestC := rtime.Infinity
		for k, c := range s.g.Task(v).WCET {
			if c.IsSet() && k < len(s.p.Classes) && c < bestC {
				bestC = c
			}
		}
		eft[v] = start + bestC
		if late := eft[v] - s.asg.AbsDeadline[v]; late > lb {
			lb = late
		}
	}
	return lb
}

func (s *searcher) dfs(curLate rtime.Time) {
	if s.nodes >= s.budget || s.finished {
		return
	}
	s.nodes++

	if s.doneCount == s.n {
		if curLate < s.bestLate {
			s.bestLate = curLate
			s.best = append([]sched.Placement(nil), s.placed...)
			if s.opt.StopAtFeasible && curLate <= 0 {
				s.finished = true
			}
		}
		return
	}

	if lb := s.bound(curLate); lb >= s.bestLate {
		return // cannot improve
	}
	if s.opt.StopAtFeasible && s.bestLate <= 0 {
		s.finished = true
		return
	}

	// Giffler–Thompson: find the minimal earliest finish t* among all
	// ready (task, proc) pairs, then branch on every pair starting
	// before t*.
	type move struct {
		task, proc    int
		start, finish rtime.Time
	}
	var moves []move
	tStar := rtime.Infinity
	type symKey struct {
		task, class int
		free        rtime.Time
	}
	seen := map[symKey]bool{}
	for i := 0; i < s.n; i++ {
		if s.placed[i].Proc >= 0 || s.predsLeft[i] != 0 {
			continue
		}
		for q := 0; q < s.m; q++ {
			// Symmetry breaking: two processors of the same class with
			// identical availability are interchangeable — branch only
			// on the lowest-indexed one. Dedicated network links break
			// the symmetry, so the optimization only applies to pure
			// shared-bus platforms.
			if s.p.Net == nil {
				key := symKey{i, s.p.ClassOf(q), s.procFree[q]}
				if seen[key] {
					continue
				}
				seen[key] = true
			}
			st, fin, ok := s.earliest(i, q)
			if !ok {
				continue
			}
			moves = append(moves, move{i, q, st, fin})
			if fin < tStar {
				tStar = fin
			}
		}
	}
	// Branch only on pairs that start before t* (active schedules).
	for _, mv := range moves {
		if mv.start >= tStar {
			continue
		}
		// Apply.
		late := mv.finish - s.asg.AbsDeadline[mv.task]
		newLate := curLate
		if late > newLate {
			newLate = late
		}
		if newLate >= s.bestLate {
			continue
		}
		prevProcFree := s.procFree[mv.proc]
		task := s.g.Task(mv.task)
		prevRes := make([]rtime.Time, len(task.Resources))
		for k, r := range task.Resources {
			prevRes[k] = s.resFree[r]
			s.resFree[r] = mv.finish
		}
		s.placed[mv.task] = sched.Placement{Proc: mv.proc, Start: mv.start, Finish: mv.finish}
		s.procFree[mv.proc] = mv.finish
		for _, u := range s.g.Succs(mv.task) {
			s.predsLeft[u]--
		}
		s.doneCount++

		s.dfs(newLate)

		// Undo.
		s.doneCount--
		for _, u := range s.g.Succs(mv.task) {
			s.predsLeft[u]++
		}
		s.procFree[mv.proc] = prevProcFree
		for k, r := range task.Resources {
			s.resFree[r] = prevRes[k]
		}
		s.placed[mv.task] = sched.Placement{Proc: -1}
		if s.finished {
			return
		}
	}
}

func (s *searcher) buildSchedule() *sched.Schedule {
	out := &sched.Schedule{
		Placements:  s.best,
		Feasible:    s.bestLate <= 0,
		MaxLateness: s.bestLate,
	}
	for i, pl := range s.best {
		if pl.Proc < 0 {
			continue
		}
		if pl.Finish > out.Makespan {
			out.Makespan = pl.Finish
		}
		if pl.Finish > s.asg.AbsDeadline[i] {
			out.Missed = append(out.Missed, i)
		}
	}
	return out
}
