// Package periodic implements the periodic-task machinery of §3.3: the
// planning cycle and the expansion of a periodic application into the
// finite set of invocations that repeats over the lifetime of the
// system.
//
// A periodic task τ with phasing φ and period T gives rise to
// invocations τᵏ with arrival aᵏ = φ + T(k−1). For a task set with
// identical arrival times the planning cycle is P = [0, L) with L the
// least common multiple of the periods; within P, τ is invoked L/T
// times. For arbitrary arrival times the planning cycle is
// P = [0, a + 2L) with a = max φ.
//
// Expand rewrites the task graph so that each invocation becomes its own
// node; the paper's single-shot pipeline (slicing, scheduling,
// simulation) then applies unchanged to the expanded graph. Precedence
// constraints connect equal invocation indices, which requires every
// pair of dependent tasks to share a period — the standard restriction
// for precedence-constrained periodic applications.
package periodic

import (
	"fmt"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// Expansion is a periodic task set unrolled over its planning cycle.
type Expansion struct {
	// Graph is the expanded invocation graph; the original graph is not
	// modified.
	Graph *taskgraph.Graph
	// Source[j] is the original task ID of expanded node j.
	Source []int
	// Invocation[j] is the 1-based invocation index k of expanded node j.
	Invocation []int
	// Cycle is L, the LCM of all periods.
	Cycle rtime.Time
	// Span is the planning-cycle length: L for synchronous task sets,
	// maxφ + 2L otherwise.
	Span rtime.Time
}

// NodeOf returns the expanded node ID for invocation k (1-based) of the
// original task id, or -1 if out of range.
func (e *Expansion) NodeOf(id, k int) int {
	for j, src := range e.Source {
		if src == id && e.Invocation[j] == k {
			return j
		}
	}
	return -1
}

// Cycle computes the planning-cycle parameters of a frozen graph:
// L = lcm{Tᵢ} and the cycle span. Tasks with Period 0 are single-shot
// and do not contribute to L.
func Cycle(g *taskgraph.Graph) (l, span rtime.Time, err error) {
	l = 1
	var maxPhase rtime.Time
	periodic := false
	for _, t := range g.Tasks() {
		if t.Phase > maxPhase {
			maxPhase = t.Phase
		}
		if t.Period == 0 {
			continue
		}
		if t.Period < 0 {
			return 0, 0, fmt.Errorf("periodic: task %d has negative period %d", t.ID, t.Period)
		}
		periodic = true
		l = rtime.LCM(l, t.Period)
	}
	if !periodic {
		return 0, 0, fmt.Errorf("periodic: no periodic task in the graph")
	}
	if maxPhase == 0 {
		return l, l, nil
	}
	return l, maxPhase + 2*l, nil
}

// Expand unrolls the graph over its planning cycle. Every output task
// must carry an end-to-end deadline; each invocation's deadline is the
// base deadline shifted by (k−1)·T. Dependent tasks must share a period,
// and a task's end-to-end deadline must not exceed its period (the
// paper's dᵢ ≤ Tᵢ requirement lifted to the application level), so
// invocation windows cannot overlap.
func Expand(g *taskgraph.Graph) (*Expansion, error) {
	if !g.Frozen() {
		return nil, fmt.Errorf("periodic: graph must be frozen")
	}
	l, span, err := Cycle(g)
	if err != nil {
		return nil, err
	}
	for _, a := range g.Arcs() {
		pf, pt := period(g, a.From, l), period(g, a.To, l)
		if pf != pt {
			return nil, fmt.Errorf("periodic: dependent tasks %d (T=%d) and %d (T=%d) have different periods",
				a.From, pf, a.To, pt)
		}
	}
	for _, out := range g.Outputs() {
		t := g.Task(out)
		if !t.ETEDeadline.IsSet() {
			return nil, fmt.Errorf("periodic: output task %d has no end-to-end deadline", out)
		}
		if t.ETEDeadline > period(g, out, l) {
			return nil, fmt.Errorf("periodic: output %d deadline %d exceeds its period %d",
				out, t.ETEDeadline, period(g, out, l))
		}
	}

	e := &Expansion{
		Graph: taskgraph.NewGraph(g.NumClasses),
		Cycle: l,
		Span:  span,
	}
	// node[id][k-1] = expanded ID. Within the planning cycle P = [0,
	// span) a task is invoked once per period window whose arrival falls
	// inside P: span/T times for synchronous sets (span = L), and up to
	// (maxφ + 2L)/T times for phased ones (§3.3).
	node := make([][]int, g.NumTasks())
	for _, t := range g.Tasks() {
		T := period(g, t.ID, l)
		count := 0
		for k := 1; t.Phase+T*rtime.Time(k-1) < span; k++ {
			count++
		}
		node[t.ID] = make([]int, count)
		for k := 1; k <= count; k++ {
			phase := t.Phase + T*rtime.Time(k-1)
			nt, err := e.Graph.AddTask(fmt.Sprintf("%s#%d", t.Name, k), t.WCET, phase)
			if err != nil {
				return nil, err
			}
			if t.ETEDeadline.IsSet() {
				// ETEDeadline is the absolute deadline of invocation 1
				// (as the slicing package interprets it); invocation k's
				// deadline shifts by (k−1)·T.
				nt.ETEDeadline = t.ETEDeadline + T*rtime.Time(k-1)
			}
			node[t.ID][k-1] = nt.ID
			e.Source = append(e.Source, t.ID)
			e.Invocation = append(e.Invocation, k)
		}
	}
	for _, a := range g.Arcs() {
		// Dependent tasks share a period but may differ in phase, so
		// their invocation counts inside the cycle can differ by one;
		// connect the invocations both sides have.
		kMax := len(node[a.From])
		if len(node[a.To]) < kMax {
			kMax = len(node[a.To])
		}
		for k := 0; k < kMax; k++ {
			if err := e.Graph.AddArc(node[a.From][k], node[a.To][k], a.Items); err != nil {
				return nil, err
			}
		}
	}
	if err := e.Graph.Freeze(); err != nil {
		return nil, err
	}
	return e, nil
}

// period returns the effective period of a task: its own, or the
// planning cycle for single-shot tasks.
func period(g *taskgraph.Graph, id int, l rtime.Time) rtime.Time {
	if t := g.Task(id); t.Period > 0 {
		return t.Period
	}
	return l
}
