package periodic

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

func c1(v rtime.Time) []rtime.Time { return []rtime.Time{v} }

// periodicChain builds a → b with the given period and end-to-end
// deadline.
func periodicChain(t *testing.T, period, ete rtime.Time) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(10), 0)
	b := g.MustAddTask("b", c1(10), 0)
	a.Period, b.Period = period, period
	g.MustAddArc(a.ID, b.ID, 1)
	b.ETEDeadline = ete
	g.MustFreeze()
	return g
}

func TestCycle(t *testing.T) {
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(5), 0)
	b := g.MustAddTask("b", c1(5), 0)
	a.Period, b.Period = 40, 60
	g.MustFreeze()
	l, span, err := Cycle(g)
	if err != nil {
		t.Fatal(err)
	}
	if l != 120 || span != 120 {
		t.Errorf("cycle = (%d, %d), want (120, 120)", l, span)
	}
}

func TestCycleWithPhases(t *testing.T) {
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(5), 7)
	a.Period = 50
	g.MustFreeze()
	l, span, err := Cycle(g)
	if err != nil {
		t.Fatal(err)
	}
	if l != 50 || span != 107 { // maxφ + 2L
		t.Errorf("cycle = (%d, %d), want (50, 107)", l, span)
	}
}

func TestCycleNoPeriodicTasks(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", c1(5), 0)
	g.MustFreeze()
	if _, _, err := Cycle(g); err == nil {
		t.Error("aperiodic-only graph should be rejected")
	}
}

func TestExpandChain(t *testing.T) {
	g := periodicChain(t, 100, 80)
	e, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph.NumTasks() != 2 || e.Cycle != 100 {
		t.Fatalf("single-cycle expansion wrong: n=%d L=%d", e.Graph.NumTasks(), e.Cycle)
	}

	// Two tasks with period 50 under a 100-cycle... give them period 50.
	g2 := periodicChain(t, 50, 40)
	e2, err := Expand(g2)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Graph.NumTasks() != 2 {
		t.Fatalf("expanded %d nodes, want 2 (one cycle = one invocation each)", e2.Graph.NumTasks())
	}
}

func TestExpandMultipleInvocations(t *testing.T) {
	// Mixed: a chain at period 50 plus an independent task at period 100
	// → L = 100, chain invoked twice.
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(5), 0)
	b := g.MustAddTask("b", c1(5), 0)
	slow := g.MustAddTask("slow", c1(5), 0)
	a.Period, b.Period, slow.Period = 50, 50, 100
	g.MustAddArc(a.ID, b.ID, 1)
	b.ETEDeadline = 45
	slow.ETEDeadline = 90
	g.MustFreeze()

	e, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if e.Cycle != 100 {
		t.Errorf("L = %d, want 100", e.Cycle)
	}
	if e.Graph.NumTasks() != 5 { // 2+2 chain invocations + 1 slow
		t.Fatalf("expanded %d nodes, want 5", e.Graph.NumTasks())
	}
	// Second invocation of a arrives at 50 and b#2's deadline is 45+50.
	a2 := e.NodeOf(a.ID, 2)
	b2 := e.NodeOf(b.ID, 2)
	if a2 < 0 || b2 < 0 {
		t.Fatal("second invocations missing")
	}
	if e.Graph.Task(a2).Phase != 50 {
		t.Errorf("a#2 phase = %d, want 50", e.Graph.Task(a2).Phase)
	}
	if e.Graph.Task(b2).ETEDeadline != 95 {
		t.Errorf("b#2 deadline = %d, want 95", e.Graph.Task(b2).ETEDeadline)
	}
	// Arcs connect equal invocation indices only.
	if _, ok := e.Graph.ArcBetween(e.NodeOf(a.ID, 1), b2); ok {
		t.Error("cross-invocation arc present")
	}
	if _, ok := e.Graph.ArcBetween(a2, b2); !ok {
		t.Error("second-invocation arc missing")
	}
}

func TestExpandRejectsMixedPeriodDependence(t *testing.T) {
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(5), 0)
	b := g.MustAddTask("b", c1(5), 0)
	a.Period, b.Period = 50, 100
	g.MustAddArc(a.ID, b.ID, 0)
	b.ETEDeadline = 90
	g.MustFreeze()
	if _, err := Expand(g); err == nil {
		t.Error("dependent tasks with different periods accepted")
	}
}

func TestExpandRejectsDeadlineBeyondPeriod(t *testing.T) {
	g := periodicChain(t, 50, 60) // deadline 60 > period 50
	if _, err := Expand(g); err == nil {
		t.Error("deadline exceeding period accepted")
	}
}

func TestExpandRejectsMissingDeadline(t *testing.T) {
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(5), 0)
	a.Period = 50
	g.MustFreeze()
	if _, err := Expand(g); err == nil {
		t.Error("missing end-to-end deadline accepted")
	}
}

// End-to-end: a periodic pipeline expands, slices, and schedules with
// non-overlapping invocation windows.
func TestExpandedPipelineSchedules(t *testing.T) {
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(10), 0)
	b := g.MustAddTask("b", c1(10), 0)
	c := g.MustAddTask("c", c1(10), 0)
	a.Period, b.Period, c.Period = 60, 60, 60
	g.MustAddArc(a.ID, b.ID, 1)
	g.MustAddArc(b.ID, c.ID, 1)
	c.ETEDeadline = 55
	g.MustFreeze()

	// Force two invocations by adding an independent period-120 task.
	// Instead, rebuild with the slow task for a 2-invocation cycle.
	g2 := taskgraph.NewGraph(1)
	a2 := g2.MustAddTask("a", c1(10), 0)
	b2 := g2.MustAddTask("b", c1(10), 0)
	c2 := g2.MustAddTask("c", c1(10), 0)
	slow := g2.MustAddTask("slow", c1(20), 0)
	a2.Period, b2.Period, c2.Period, slow.Period = 60, 60, 60, 120
	g2.MustAddArc(a2.ID, b2.ID, 1)
	g2.MustAddArc(b2.ID, c2.ID, 1)
	c2.ETEDeadline = 55
	slow.ETEDeadline = 110
	g2.MustFreeze()

	e, err := Expand(g2)
	if err != nil {
		t.Fatal(err)
	}
	est := make([]rtime.Time, e.Graph.NumTasks())
	for i, tk := range e.Graph.Tasks() {
		est[i] = tk.WCET[0]
	}
	asg, err := slicing.Distribute(e.Graph, est, 2, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	// Invocation windows of the same task must not overlap (dᵢ ≤ Tᵢ).
	for id := 0; id < g2.NumTasks(); id++ {
		n1, n2 := e.NodeOf(id, 1), e.NodeOf(id, 2)
		if n2 < 0 {
			continue
		}
		if asg.AbsDeadline[n1] > asg.Arrival[n2] {
			t.Errorf("task %d invocation windows overlap: [%d,%d] then [%d,%d]",
				id, asg.Arrival[n1], asg.AbsDeadline[n1], asg.Arrival[n2], asg.AbsDeadline[n2])
		}
	}
	p := arch.Homogeneous(2)
	s, err := sched.Dispatch(e.Graph, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible {
		t.Errorf("periodic pipeline should schedule on 2 processors: missed %v", s.Missed)
	}
}

func TestExpandPhasedSpansTwoCycles(t *testing.T) {
	// A phased periodic task: φ = 10, T = 50 → span = 10 + 2·50 = 110,
	// invocations at 10 and 60 and... 10+2·50 = 110 is excluded, so 2
	// invocations fit... arrivals 10, 60 (and 110 is outside [0,110)).
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(5), 10)
	a.Period = 50
	a.ETEDeadline = 40
	g.MustFreeze()
	e, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if e.Span != 110 {
		t.Fatalf("span = %d, want 110", e.Span)
	}
	if e.Graph.NumTasks() != 2 {
		t.Fatalf("invocations = %d, want 2 (arrivals 10, 60 inside [0,110))", e.Graph.NumTasks())
	}
	if e.Graph.Task(0).Phase != 10 || e.Graph.Task(1).Phase != 60 {
		t.Errorf("phases = %d, %d", e.Graph.Task(0).Phase, e.Graph.Task(1).Phase)
	}
}

func TestExpandPhasedChainKeepsArcsAligned(t *testing.T) {
	// a (φ=0) → b (φ=0), both T=50, but force differing counts by
	// pairing with a phased independent task that stretches the span.
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(5), 0)
	b := g.MustAddTask("b", c1(5), 0)
	ph := g.MustAddTask("phased", c1(5), 30)
	a.Period, b.Period, ph.Period = 50, 50, 50
	g.MustAddArc(a.ID, b.ID, 1)
	b.ETEDeadline = 45
	ph.ETEDeadline = 45
	g.MustFreeze()
	e, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	// span = 30 + 100 = 130 → a and b have arrivals 0, 50, 100 (3);
	// phased has 30, 80, 130(excluded) → 2... 30+2·50=130 outside → 2.
	if e.Span != 130 {
		t.Fatalf("span = %d", e.Span)
	}
	counts := map[int]int{}
	for _, src := range e.Source {
		counts[src]++
	}
	if counts[a.ID] != 3 || counts[b.ID] != 3 || counts[ph.ID] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	// Arcs connect matching invocation indices for all three pairs.
	for k := 1; k <= 3; k++ {
		na, nb := e.NodeOf(a.ID, k), e.NodeOf(b.ID, k)
		if na < 0 || nb < 0 {
			t.Fatalf("invocation %d missing", k)
		}
		if _, ok := e.Graph.ArcBetween(na, nb); !ok {
			t.Errorf("arc a#%d → b#%d missing", k, k)
		}
	}
}
