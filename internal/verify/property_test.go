package verify_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/rtime"
	"repro/internal/sim"
	"repro/internal/verify"
)

// The conservativeness contract (DESIGN.md §12): the analytic verifier
// never accepts a plan the replay simulator rejects, and never rejects
// a plan the replay accepts. These property tests are the empirical
// arbiter of that contract over seeded random corpora; `make check`
// runs them, and any disagreement is a soundness bug in the analysis.

// replayAccepts is the ground truth: the dispatched schedule replays
// validly with every deadline met under the nominal bus model.
func replayAccepts(t *testing.T, plan *pipeline.Plan) bool {
	t.Helper()
	if !plan.Schedule.Feasible {
		return false
	}
	rep, err := sim.Replay(plan.Graph, plan.Platform, plan.Assignment, plan.Schedule, sim.Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return rep.Valid && len(rep.DeadlineMisses) == 0
}

func TestAnalyticConservativeSingleShot(t *testing.T) {
	const master = int64(0x5EED5EED)
	olrs := []float64{0.5, 0.8, 1.2, 2.0, 4.0}
	graphs := 80
	if testing.Short() {
		graphs = 20
	}
	accepts, rejects, inconclusive := 0, 0, 0
	b := &pipeline.Builder{} // defaults: WCET-AVG, ADAPT-L, time-driven EDF
	for idx := 0; idx < graphs; idx++ {
		cfg := gen.Default(2 + idx%7)
		cfg.Seed = gen.SubSeed(master, idx)
		cfg.OLR = olrs[idx%len(olrs)]
		if idx%3 == 1 {
			cfg.PinProb = 0.3
		}
		w := gen.MustGenerate(cfg)
		plan, err := b.Build(pipeline.Spec{Graph: w.Graph, Platform: w.Platform})
		if err != nil {
			t.Fatalf("graph %d: build: %v", idx, err)
		}
		res, err := verify.Analyze(w.Graph, w.Platform, plan.Assignment)
		if err != nil {
			t.Fatalf("graph %d: analyze: %v", idx, err)
		}
		ground := replayAccepts(t, plan)
		switch res.Verdict {
		case verify.Accept:
			accepts++
			if !ground {
				t.Fatalf("graph %d (seed %d, olr %v): analytic ACCEPT but replay rejects — unsound",
					idx, cfg.Seed, cfg.OLR)
			}
		case verify.Reject:
			rejects++
			if ground {
				t.Fatalf("graph %d (seed %d, olr %v): analytic REJECT (%s) but replay accepts — unsound",
					idx, cfg.Seed, cfg.OLR, res.Reason)
			}
		default:
			inconclusive++
		}
	}
	t.Logf("single-shot corpus: %d accept / %d reject / %d inconclusive", accepts, rejects, inconclusive)
	if accepts == 0 {
		t.Error("corpus produced no analytic accepts — the fast path never fires; retune the corpus")
	}
}

func TestAnalyticConservativeSporadic(t *testing.T) {
	const master = int64(0x0DDB411)
	graphs := 40
	if testing.Short() {
		graphs = 12
	}
	accepts, inconclusive := 0, 0
	b := &pipeline.Builder{}
	for idx := 0; idx < graphs; idx++ {
		cfg := gen.Default(2 + idx%4)
		cfg.Seed = gen.SubSeed(master, idx)
		cfg.MinTasks, cfg.MaxTasks = 8, 16
		cfg.MinDepth, cfg.MaxDepth = 3, 5
		cfg.OLR = []float64{1.0, 2.0, 4.0}[idx%3]
		w := gen.MustGenerate(cfg)
		plan, err := b.Build(pipeline.Spec{Graph: w.Graph, Platform: w.Platform})
		if err != nil {
			t.Fatalf("graph %d: build: %v", idx, err)
		}
		// Spacing from sparse (releases barely interact) to dense
		// (heavy cross-release interference) relative to the observed
		// makespan, with and without release jitter.
		span := plan.Schedule.Makespan
		if span < 4 {
			span = 4
		}
		gaps := []rtime.Time{span * 2, span, span/2 + 1, span/4 + 1}
		minGap := gaps[idx%len(gaps)]
		jitter := rtime.Time(0)
		if idx%2 == 1 {
			jitter = minGap / 5
		}
		sp := verify.Sporadic{MinGap: minGap, Jitter: jitter}
		res, err := verify.AnalyzeSporadic(w.Graph, w.Platform, plan.Assignment, sp)
		if err != nil {
			t.Fatalf("graph %d: analyze sporadic: %v", idx, err)
		}
		rel := gen.Release{Mode: gen.ReleaseSporadic, Count: 8, MinGap: minGap, Jitter: jitter}
		rep, s, _, err := sim.ReplayReleases(w.Graph, w.Platform, plan.Assignment,
			rel, cfg.Seed, sim.Options{})
		if err != nil {
			t.Fatalf("graph %d: replay releases: %v", idx, err)
		}
		ground := s.Feasible && rep.Valid && len(rep.DeadlineMisses) == 0
		switch res.Verdict {
		case verify.Accept:
			accepts++
			if !ground {
				t.Fatalf("graph %d (seed %d, gap %d, jitter %d): analytic ACCEPT but sporadic replay rejects — unsound",
					idx, cfg.Seed, minGap, jitter)
			}
		case verify.Reject:
			if ground {
				t.Fatalf("graph %d (seed %d, gap %d, jitter %d): analytic REJECT (%s) but sporadic replay accepts — unsound",
					idx, cfg.Seed, minGap, jitter, res.Reason)
			}
		default:
			inconclusive++
		}
	}
	t.Logf("sporadic corpus: %d accept / %d inconclusive of %d", accepts, inconclusive, graphs)
	if accepts == 0 {
		t.Error("sporadic corpus produced no analytic accepts — the fast path never fires; retune the corpus")
	}
}
