// Package verify proves schedulability analytically, without replaying
// the schedule: holistic response-time analysis in the style of Tindell
// & Clark's distributed analysis and Kermia's non-preemptive
// multiprocessor bounds, specialized to this repository's time-driven
// EDF dispatcher (sched.Dispatch).
//
// The analysis computes, for every task i, a worst-case ready-time
// bound rᵢ (arrival plus predecessor finish bounds plus worst-case
// message landing — the "release jitter" propagated along precedence
// edges) and a worst-case finish bound Fᵢ = rᵢ + Lᵢ + Cᵢᵐᵃˣ, where the
// busy wait Lᵢ is the least fixed point of
//
//	L = ⌊(B(i) + Σ_{j ∈ hp(i)} interferes(j, rᵢ, L)·Cⱼ) / mᵢ⌋
//
// over the mᵢ processors task i is eligible on: while i waits beyond
// rᵢ, every one of those processors is busy, and non-preemptive EDF
// only lets strictly earlier-deadline tasks start in front of i — any
// later-deadline task occupying a processor must have started before
// rᵢ (at most mᵢ of them, the blocking term B). The rᵢ and Fᵢ bounds
// are mutually dependent through message landings and the interference
// windows, so the per-task analysis iterates globally to a fixed point;
// the analysis only trusts a converged fixed point, never a truncated
// iteration.
//
// The verdict is three-valued and *conservative by contract*:
//
//   - Accept proves every deadline met: whenever Analyze accepts, the
//     replay simulator (sim.Replay over sched.Dispatch's schedule, the
//     nominal bus model) meets every deadline. The property tests in
//     this package enforce exactly that, over single-shot and sporadic
//     corpora.
//   - Reject proves at least one deadline missed (a task no present
//     processor can execute, or a feas demand-bound violation — both
//     scheduler-independent certificates).
//   - Inconclusive is everything else; callers fall back to the replay.
//
// The analysis models the time-driven EDF dispatcher family under the
// paper's nominal bus (one delay per message, no queueing); schedules
// produced by other dispatchers, alternative ready policies, or runs
// under a serialized bus are outside its contract and must be verified
// by replay. Workloads using exclusive resources are always
// Inconclusive: a resource floor can stall a ready task while
// processors idle, which breaks the busy-interval argument.
package verify

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/arch"
	"repro/internal/feas"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Verdict is the analysis outcome.
type Verdict int

const (
	// Inconclusive: schedulability was proven neither way.
	Inconclusive Verdict = iota
	// Accept: every deadline is proven met under the time-driven EDF
	// dispatcher and the nominal bus model.
	Accept
	// Reject: the assignment is proven unschedulable.
	Reject
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Inconclusive:
		return "inconclusive"
	case Accept:
		return "accept"
	case Reject:
		return "reject"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Result carries the verdict and the analysis artifacts behind it.
type Result struct {
	Verdict Verdict
	// Reason is a one-line human explanation of a Reject or
	// Inconclusive verdict ("" on Accept).
	Reason string
	// Finish is the per-task worst-case finish bound Fᵢ at the fixed
	// point (valid only on Accept; nil otherwise).
	Finish []rtime.Time
	// Ready is the per-task worst-case ready bound rᵢ at the fixed
	// point (valid only on Accept; nil otherwise).
	Ready []rtime.Time
	// Rounds is the number of global fixed-point sweeps performed.
	Rounds int
}

// Sporadic parameterizes a recurring release of the whole task graph
// under the anchored model of gen.ReleaseTimes: release k's earliest
// time is k·MinGap, and it may be delayed by up to Jitter beyond that,
// so two releases Δ apart arrive between Δ·MinGap−Jitter and
// Δ·MinGap+Jitter from each other (consecutive ones as little as
// MinGap−Jitter apart). Every release reuses the base window assignment
// shifted by its release time (the sim.ReplayReleases contract).
type Sporadic struct {
	// MinGap is the minimum inter-arrival time T between releases.
	MinGap rtime.Time
	// Jitter is the maximum per-release delay J (0 ≤ J < T).
	Jitter rtime.Time
}

// Validate checks the sporadic parameters.
func (sp Sporadic) Validate() error {
	switch {
	case sp.MinGap < 1:
		return fmt.Errorf("verify: sporadic MinGap %d < 1", sp.MinGap)
	case sp.Jitter < 0:
		return fmt.Errorf("verify: sporadic Jitter %d < 0", sp.Jitter)
	case sp.Jitter >= sp.MinGap:
		return fmt.Errorf("verify: sporadic Jitter %d >= MinGap %d (releases could collide)", sp.Jitter, sp.MinGap)
	}
	return nil
}

const (
	// maxRounds bounds the global fixed-point sweeps before giving up.
	maxRounds = 256
	// maxBusyIters bounds one task's busy-wait iteration.
	maxBusyIters = 4096
	// maxBound is the largest busy wait the analysis follows before
	// declaring divergence (a sporadic system denser than its capacity).
	maxBound = rtime.Time(1) << 40
)

// Analyze proves or refutes schedulability of a single-shot window
// assignment under the time-driven EDF dispatcher; see the package
// comment for the exact contract. It never errors on schedulability —
// errors are reserved for malformed inputs (assignment/graph mismatch,
// unset windows).
func Analyze(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (*Result, error) {
	return analyze(g, p, asg, nil)
}

// AnalyzeSporadic is Analyze for a sporadically released graph: the
// whole graph recurs with minimum inter-arrival sp.MinGap and release
// jitter sp.Jitter, each release running under the base windows shifted
// by its release time. An Accept proves every deadline of every release
// met, for any number of releases and any legal release sequence.
func AnalyzeSporadic(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, sp Sporadic) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return analyze(g, p, asg, &sp)
}

// analyzer carries the per-run immutable precomputation.
type analyzer struct {
	g   *taskgraph.Graph
	p   *arch.Platform
	asg *slicing.Assignment
	sp  *Sporadic // nil for single-shot

	n int
	m int
	// elig[i] is the bitmask of processors task i may execute on.
	elig []uint64
	// mi[i] is the population count of elig[i].
	mi []int
	// cmax[i] is task i's largest WCET over its eligible processors.
	cmax []rtime.Time
	// classMask[k] is the bitmask of processors of class k.
	classMask []uint64
	// topo is the graph's topological order.
	topo []int
	// csh memoizes, per distinct eligibility mask, the shared-WCET row:
	// csh[mask][j] is sharedC(j, i) for any i with elig[i] == mask. The
	// number of distinct masks is small (one per pinning pattern), so the
	// rows amortize the per-pair class scan out of the busy-wait loops.
	csh map[uint64][]rtime.Time
	// predComm[i][k] is the worst-case message landing delay from the
	// k-th predecessor of i (aligned with g.Preds(i)), hoisted out of
	// the fixed-point rounds.
	predComm [][]rtime.Time
	// rowOf[i] is csh[elig[i]], hoisted so busy waits index an array
	// instead of hashing the mask.
	rowOf [][]rtime.Time
	// ordTask/ordArr list the tasks sorted by window arrival (parallel
	// slices): the single-shot busy wait sweeps them with a moving
	// cutoff at r+L, so tasks arriving after the fixed point is reached
	// are never even scanned.
	ordTask []int32
	ordArr  []rtime.Time

	r, f []rtime.Time
	// lpC is the reusable blocking-candidate buffer.
	lpC []rtime.Time
}

func analyze(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, sp *Sporadic) (*Result, error) {
	n := g.NumTasks()
	if len(asg.Arrival) != n || len(asg.AbsDeadline) != n {
		return nil, fmt.Errorf("verify: assignment covers %d/%d tasks, graph has %d",
			len(asg.Arrival), len(asg.AbsDeadline), n)
	}
	for i := 0; i < n; i++ {
		if !asg.Arrival[i].IsSet() || !asg.AbsDeadline[i].IsSet() {
			return nil, fmt.Errorf("verify: task %d has an unassigned window", i)
		}
	}
	if n == 0 {
		return &Result{Verdict: Accept}, nil
	}
	m := p.M()
	if m > 64 {
		return &Result{Verdict: Inconclusive,
			Reason: fmt.Sprintf("analysis limited to 64 processors, platform has %d", m)}, nil
	}
	// Exclusive resources stall ready tasks while processors idle,
	// breaking the busy-interval argument the bounds rest on.
	for i := 0; i < n; i++ {
		if len(g.Task(i).Resources) > 0 {
			return &Result{Verdict: Inconclusive,
				Reason: fmt.Sprintf("task %d uses exclusive resources", i)}, nil
		}
	}

	a := &analyzer{g: g, p: p, asg: asg, sp: sp, n: n, m: m}
	a.classMask = make([]uint64, p.NumClasses())
	for q := 0; q < m; q++ {
		a.classMask[p.ClassOf(q)] |= 1 << uint(q)
	}
	a.elig = make([]uint64, n)
	a.mi = make([]int, n)
	a.cmax = make([]rtime.Time, n)
	for i := 0; i < n; i++ {
		t := g.Task(i)
		var mask uint64
		best := rtime.Time(0)
		for q := 0; q < m; q++ {
			if t.Pinned >= 0 && q != t.Pinned {
				continue
			}
			c := t.WCET[p.ClassOf(q)]
			if !c.IsSet() {
				continue
			}
			mask |= 1 << uint(q)
			if c > best {
				best = c
			}
		}
		if mask == 0 {
			// No present processor can ever execute i: the dispatcher
			// marks it missed immediately.
			return &Result{Verdict: Reject,
				Reason: fmt.Sprintf("task %d is eligible on no present processor", i)}, nil
		}
		a.elig[i] = mask
		a.mi[i] = bits.OnesCount64(mask)
		a.cmax[i] = best
	}

	a.topo = g.TopoOrder()
	a.csh = make(map[uint64][]rtime.Time)
	a.predComm = make([][]rtime.Time, n)
	for i := 0; i < n; i++ {
		preds := g.Preds(i)
		if len(preds) == 0 {
			continue
		}
		row := make([]rtime.Time, len(preds))
		for k, j := range preds {
			row[k] = a.maxComm(j, i)
		}
		a.predComm[i] = row
	}
	a.rowOf = make([][]rtime.Time, n)
	for i := 0; i < n; i++ {
		a.rowOf[i] = a.sharedRow(a.elig[i])
	}
	if sp == nil {
		a.ordTask = make([]int32, n)
		for i := range a.ordTask {
			a.ordTask[i] = int32(i)
		}
		sort.Slice(a.ordTask, func(x, y int) bool {
			return asg.Arrival[a.ordTask[x]] < asg.Arrival[a.ordTask[y]]
		})
		a.ordArr = make([]rtime.Time, n)
		for k, j := range a.ordTask {
			a.ordArr[k] = asg.Arrival[j]
		}
	}
	a.r = make([]rtime.Time, n)
	a.f = make([]rtime.Time, n)
	a.lpC = make([]rtime.Time, 0, n)
	for i := 0; i < n; i++ {
		a.r[i] = asg.Arrival[i]
		a.f[i] = asg.Arrival[i] + a.cmax[i]
	}

	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		changed := false
		for _, i := range a.topo {
			ri := asg.Arrival[i]
			for k, j := range g.Preds(i) {
				if land := a.f[j] + a.predComm[i][k]; land > ri {
					ri = land
				}
			}
			wait, ok := a.busyWait(i, ri)
			if !ok {
				return a.failed(rounds,
					fmt.Sprintf("busy-wait iteration for task %d diverged", i)), nil
			}
			fi := ri + wait + a.cmax[i]
			if ri != a.r[i] || fi != a.f[i] {
				a.r[i], a.f[i] = ri, fi
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if rounds == maxRounds {
		return a.failed(rounds, "global response-time iteration did not converge"), nil
	}

	// A converged fixed point with every bound inside its deadline is a
	// proof; a bound past its deadline proves nothing (the bound is an
	// upper envelope), so that case stays Inconclusive.
	for i := 0; i < n; i++ {
		if a.f[i] > asg.AbsDeadline[i] {
			return a.failed(rounds+1,
				fmt.Sprintf("worst-case finish bound %d of task %d exceeds its deadline %d",
					a.f[i], i, asg.AbsDeadline[i])), nil
		}
	}
	return &Result{Verdict: Accept, Finish: a.f, Ready: a.r, Rounds: rounds + 1}, nil
}

// failed builds the verdict for an analysis that could not prove
// schedulability: before settling for Inconclusive it looks for a
// scheduler-independent infeasibility certificate (the feas demand
// bounds) and upgrades to Reject when one exists. Running the O(n²)
// interval enumeration only here keeps it off the Accept fast path —
// sound because a correct Accept can never coexist with a demand-bound
// violation, which proves a miss under every dispatcher.
func (a *analyzer) failed(rounds int, reason string) *Result {
	if bad, err := feas.Infeasible(a.g, a.p, a.asg); err == nil && bad {
		return &Result{Verdict: Reject, Rounds: rounds,
			Reason: "feasibility demand bound violated (see feas.Check)"}
	}
	return &Result{Verdict: Inconclusive, Rounds: rounds, Reason: reason}
}

// maxComm is the worst-case message landing delay from task j to task
// i: the maximum bus cost over every (sender, receiver) processor pair
// the two tasks are eligible on. The analysis does not know placements,
// so it must cover them all.
func (a *analyzer) maxComm(j, i int) rtime.Time {
	items := a.g.MessageItems(j, i)
	if items == 0 {
		return 0
	}
	var worst rtime.Time
	for pj := 0; pj < a.m; pj++ {
		if a.elig[j]&(1<<uint(pj)) == 0 {
			continue
		}
		for q := 0; q < a.m; q++ {
			if a.elig[i]&(1<<uint(q)) == 0 {
				continue
			}
			if c := a.p.CommCost(pj, q, items); c > worst {
				worst = c
			}
		}
	}
	return worst
}

// sharedRow returns (building and memoizing on first use) the
// shared-WCET row for eligibility mask: row[j] is the largest execution
// time task j can occupy one of the mask's processors for — the max
// WCET of j over classes present in mask ∩ elig(j), zero when j shares
// no processor with the mask. One row serves every task with the same
// mask, so the class scan runs once per (distinct mask, task) pair
// instead of once per busy-wait probe.
func (a *analyzer) sharedRow(mask uint64) []rtime.Time {
	if row, ok := a.csh[mask]; ok {
		return row
	}
	row := make([]rtime.Time, a.n)
	for j := 0; j < a.n; j++ {
		shared := a.elig[j] & mask
		if shared == 0 {
			continue
		}
		var best rtime.Time
		wcet := a.g.Task(j).WCET
		for k, cm := range a.classMask {
			if cm&shared == 0 {
				continue
			}
			if c := wcet[k]; c.IsSet() && c > best {
				best = c
			}
		}
		row[j] = best
	}
	a.csh[mask] = row
	return row
}

// copies bounds how many release copies of one task can have offsets,
// relative to the release the analyzed task belongs to, in the
// half-open interval (lo, hi]. Under the anchored model the copy Δ
// releases apart has offset Δ·T + (u₂−u₁) ∈ [ΔT−J, ΔT+J], and the
// Δ = 0 copy — the same release — has offset exactly 0 (both tasks
// shift by the same release time). self drops the Δ = 0 copy entirely
// (it is the analyzed task itself). Single-shot callers never reach it.
func (a *analyzer) copies(lo, hi rtime.Time, self bool) rtime.Time {
	if hi <= lo {
		return 0
	}
	T, J := a.sp.MinGap, a.sp.Jitter
	// Δ ranges over bands [ΔT−J, ΔT+J] intersecting (lo, hi]:
	// ΔT+J > lo and ΔT−J ≤ hi.
	dmin := floorDiv(lo-J, T) + 1
	dmax := floorDiv(hi+J, T)
	k := dmax - dmin + 1
	if k < 0 {
		k = 0
	}
	if dmin <= 0 && 0 <= dmax {
		k-- // the banded Δ = 0 copy: its offset is exactly 0, not ±J
		if !self && lo < 0 && hi >= 0 {
			k++ // and 0 really is inside (lo, hi]
		}
	}
	return k
}

// floorDiv is x/d rounding toward −∞ (d > 0); Go's division truncates
// toward zero, which is wrong for the negative offsets above.
func floorDiv(x, d rtime.Time) rtime.Time {
	q := x / d
	if x%d != 0 && x < 0 {
		q--
	}
	return q
}

// busyWait computes task i's least-fixed-point busy wait Lᵢ for ready
// bound r: the longest interval [r, r+L) that interference and blocking
// can keep all mᵢ eligible processors busy while i is ready. Returns
// ok = false when the iteration diverges (overloaded sporadic system).
func (a *analyzer) busyWait(i int, r rtime.Time) (rtime.Time, bool) {
	if a.sp == nil {
		return a.busyWaitSingle(i, r)
	}
	return a.busyWaitSporadic(i, r)
}

// blockSum is the blocking term: at most one lower-priority carry-in
// per eligible processor, so the mi largest candidates in lpC bound it.
func (a *analyzer) blockSum(mi rtime.Time) rtime.Time {
	var block rtime.Time
	if len(a.lpC) > 0 {
		sort.Slice(a.lpC, func(x, y int) bool { return a.lpC[x] > a.lpC[y] })
		top := int(mi)
		if top > len(a.lpC) {
			top = len(a.lpC)
		}
		for _, c := range a.lpC[:top] {
			block += c
		}
	}
	return block
}

// busyWaitSingle solves the single-shot fixed point with one monotone
// sweep of the arrival order. Interference W⁺(L) counts, inclusively,
// every earlier-deadline task that can arrive by r+L and still be
// unfinished after r; blocking carry-ins arrived strictly before r.
// Both live in the arrival prefix ≤ r+L, so a cursor that only ever
// moves forward classifies each candidate exactly once and the
// iteration L = ⌊W⁺(L)/mᵢ⌋ never rescans — tasks arriving after the
// fixed point settles are never touched. Inclusive counting is what
// makes the bound sound: a competitor arriving exactly at r+L can
// extend the wait, and W⁺(L) < mᵢ·(L+1) at the fixed point rules that
// out.
func (a *analyzer) busyWaitSingle(i int, r rtime.Time) (rtime.Time, bool) {
	asg := a.asg
	di := asg.AbsDeadline[i]
	mi := rtime.Time(a.mi[i])
	csh := a.rowOf[i]
	f := a.f

	a.lpC = a.lpC[:0]
	var w rtime.Time
	pos := 0
	advance := func(bound rtime.Time) {
		for ; pos < a.n; pos++ {
			if a.ordArr[pos] > bound {
				return
			}
			j := a.ordTask[pos]
			if int(j) == i {
				continue
			}
			cj := csh[j]
			if cj == 0 || f[j] <= r {
				continue
			}
			if dj := asg.AbsDeadline[j]; dj < di || (dj == di && int(j) < i) {
				w += cj // higher priority, arrives within the window
			} else if asg.Arrival[j] < r {
				// Lower-priority carry-in: the dispatcher's instant loop
				// always starts the earliest-deadline dispatchable task
				// first, so a later-deadline task only occupies one of
				// i's processors past r when it started strictly before.
				a.lpC = append(a.lpC, cj)
			}
		}
	}
	advance(r)
	block := a.blockSum(mi)

	L := rtime.Time(0)
	for iter := 0; iter < maxBusyIters; iter++ {
		next := (block + w) / mi
		if next == L {
			return L, true
		}
		if next > maxBound {
			return 0, false
		}
		advance(r + next)
		L = next
	}
	return 0, false
}

// busyWaitSporadic solves the fixed point for a sporadically released
// graph. Release copies have no arrival cutoff (the copy count is
// alignment-free), so every probe scans all sharers; the shared-WCET
// row keeps the scan to integer arithmetic.
func (a *analyzer) busyWaitSporadic(i int, r rtime.Time) (rtime.Time, bool) {
	asg := a.asg
	di := asg.AbsDeadline[i]
	mi := rtime.Time(a.mi[i])
	csh := a.rowOf[i]

	// Blocking: copies of j at release offsets o carry in when they
	// have a later deadline (Dⱼ+o > Dᵢ), arrived before r, and may
	// still be running at r. At most one carry-in per processor.
	a.lpC = a.lpC[:0]
	for j := 0; j < a.n; j++ {
		cj := csh[j]
		if cj == 0 {
			continue
		}
		lo := r - a.f[j]
		if dlo := di - asg.AbsDeadline[j]; dlo > lo {
			lo = dlo
		}
		hi := r - asg.Arrival[j] - 1
		k := a.copies(lo, hi, j == i)
		if k > mi {
			k = mi
		}
		for ; k > 0; k-- {
			a.lpC = append(a.lpC, cj)
		}
	}
	block := a.blockSum(mi)

	// Least fixed point of L = ⌊W⁺(L)/mᵢ⌋, counting release copies:
	// copies of j at offsets o interfere as higher-priority work when
	// Dⱼ+o ≤ Dᵢ (deadline ties go against i — the copy ordering is
	// unknown), they arrive by r+L, and may be unfinished after r. The
	// o = 0 copy of i itself is excluded; every other copy of i counts.
	L := rtime.Time(0)
	for iter := 0; iter < maxBusyIters; iter++ {
		w := block
		for j := 0; j < a.n; j++ {
			cj := csh[j]
			if cj == 0 {
				continue
			}
			lo := r - a.f[j]
			hi := r + L - asg.Arrival[j]
			if dhi := di - asg.AbsDeadline[j]; dhi < hi {
				hi = dhi
			}
			w += a.copies(lo, hi, j == i) * cj
		}
		next := w / mi
		if next == L {
			return L, true
		}
		if next > maxBound {
			return 0, false
		}
		L = next
	}
	return 0, false
}
