package verify

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// onePlatform is m identical-class processors over a unit bus.
func onePlatform(t *testing.T, m int) *arch.Platform {
	t.Helper()
	classOf := make([]int, m)
	return arch.MustNew(arch.Unrelated, []arch.Class{{Name: "e0", Speed: 1}}, classOf,
		arch.Bus{DelayPerItem: 1})
}

func asgOf(arr, dl []rtime.Time) *slicing.Assignment {
	rel := make([]rtime.Time, len(arr))
	for i := range arr {
		rel[i] = dl[i] - arr[i]
	}
	return &slicing.Assignment{Arrival: arr, AbsDeadline: dl, RelDeadline: rel}
}

func TestAnalyzeSingleTaskAccept(t *testing.T) {
	p := onePlatform(t, 1)
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", []rtime.Time{10}, 0)
	g.MustFreeze()
	res, err := Analyze(g, p, asgOf([]rtime.Time{0}, []rtime.Time{100}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Accept {
		t.Fatalf("verdict %v (%s), want accept", res.Verdict, res.Reason)
	}
	if res.Finish[0] != 10 {
		t.Fatalf("finish bound %d, want 10", res.Finish[0])
	}
}

func TestAnalyzeChainJitterPropagates(t *testing.T) {
	p := onePlatform(t, 2)
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", []rtime.Time{10}, 0)
	g.MustAddTask("b", []rtime.Time{10}, 0)
	g.MustAddArc(0, 1, 3) // 3 items over the unit bus
	g.MustFreeze()
	res, err := Analyze(g, p, asgOf([]rtime.Time{0, 0}, []rtime.Time{50, 100}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Accept {
		t.Fatalf("verdict %v (%s), want accept", res.Verdict, res.Reason)
	}
	// b's ready bound is a's finish plus the worst-case remote landing.
	if want := res.Finish[0] + 3; res.Ready[1] != want {
		t.Fatalf("ready bound of b = %d, want %d", res.Ready[1], want)
	}
	if want := res.Ready[1] + 10; res.Finish[1] != want {
		t.Fatalf("finish bound of b = %d, want %d", res.Finish[1], want)
	}
}

func TestAnalyzeInterferenceBoundsWait(t *testing.T) {
	// Three independent tasks on one processor, all arriving at 0 with
	// distinct deadlines: the latest-deadline task waits for both
	// earlier ones.
	p := onePlatform(t, 1)
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", []rtime.Time{10}, 0)
	g.MustAddTask("b", []rtime.Time{10}, 0)
	g.MustAddTask("c", []rtime.Time{10}, 0)
	g.MustFreeze()
	res, err := Analyze(g, p, asgOf(
		[]rtime.Time{0, 0, 0}, []rtime.Time{30, 40, 50}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Accept {
		t.Fatalf("verdict %v (%s), want accept", res.Verdict, res.Reason)
	}
	for i, want := range []rtime.Time{10, 20, 30} {
		if res.Finish[i] != want {
			t.Fatalf("finish bound of task %d = %d, want %d", i, res.Finish[i], want)
		}
	}
}

func TestAnalyzeRejectNoEligibleProcessor(t *testing.T) {
	p := onePlatform(t, 1)
	g := taskgraph.NewGraph(2)
	g.MustAddTask("a", []rtime.Time{rtime.Unset, 10}, 0) // class 1 only; platform has class 0
	g.MustFreeze()
	res, err := Analyze(g, p, asgOf([]rtime.Time{0}, []rtime.Time{100}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Reject {
		t.Fatalf("verdict %v, want reject", res.Verdict)
	}
}

func TestAnalyzeRejectWindowTooSmall(t *testing.T) {
	p := onePlatform(t, 1)
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", []rtime.Time{10}, 0)
	g.MustFreeze()
	res, err := Analyze(g, p, asgOf([]rtime.Time{0}, []rtime.Time{5}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Reject {
		t.Fatalf("verdict %v, want reject", res.Verdict)
	}
}

func TestAnalyzeResourcesInconclusive(t *testing.T) {
	p := onePlatform(t, 2)
	g := taskgraph.NewGraph(1)
	tk := g.MustAddTask("a", []rtime.Time{10}, 0)
	tk.Resources = []int{0}
	g.MustFreeze()
	res, err := Analyze(g, p, asgOf([]rtime.Time{0}, []rtime.Time{100}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Inconclusive || !strings.Contains(res.Reason, "resources") {
		t.Fatalf("verdict %v (%q), want inconclusive about resources", res.Verdict, res.Reason)
	}
}

func TestAnalyzeUnsetWindowErrors(t *testing.T) {
	p := onePlatform(t, 1)
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", []rtime.Time{10}, 0)
	g.MustFreeze()
	if _, err := Analyze(g, p, asgOf([]rtime.Time{rtime.Unset}, []rtime.Time{100})); err == nil {
		t.Fatal("want error for unset window")
	}
	if _, err := Analyze(g, p, &slicing.Assignment{}); err == nil {
		t.Fatal("want error for size mismatch")
	}
}

func TestSporadicValidate(t *testing.T) {
	cases := []struct {
		sp Sporadic
		ok bool
	}{
		{Sporadic{MinGap: 10, Jitter: 0}, true},
		{Sporadic{MinGap: 10, Jitter: 9}, true},
		{Sporadic{MinGap: 0, Jitter: 0}, false},
		{Sporadic{MinGap: 10, Jitter: 10}, false},
		{Sporadic{MinGap: 10, Jitter: -1}, false},
	}
	for _, c := range cases {
		if err := c.sp.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.sp, err, c.ok)
		}
	}
}

func TestAnalyzeSporadicWidelySpacedAccept(t *testing.T) {
	// One 10-unit task re-released at least every 1000 units: releases
	// never overlap, so the sporadic bound matches the single-shot one.
	p := onePlatform(t, 1)
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", []rtime.Time{10}, 0)
	g.MustFreeze()
	res, err := AnalyzeSporadic(g, p, asgOf([]rtime.Time{0}, []rtime.Time{100}),
		Sporadic{MinGap: 1000, Jitter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Accept {
		t.Fatalf("verdict %v (%s), want accept", res.Verdict, res.Reason)
	}
	if res.Finish[0] != 10 {
		t.Fatalf("finish bound %d, want 10", res.Finish[0])
	}
}

func TestAnalyzeSporadicNonOverlappingIsTight(t *testing.T) {
	// A 10-unit task re-released at least every 12 units on one
	// processor: each copy finishes before the next can arrive, so the
	// sporadic bound matches the single-shot one exactly.
	p := onePlatform(t, 1)
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", []rtime.Time{10}, 0)
	g.MustFreeze()
	res, err := AnalyzeSporadic(g, p, asgOf([]rtime.Time{0}, []rtime.Time{100}),
		Sporadic{MinGap: 12, Jitter: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Accept {
		t.Fatalf("verdict %v (%s), want accept", res.Verdict, res.Reason)
	}
	if res.Finish[0] != 10 {
		t.Fatalf("finish bound %d, want 10", res.Finish[0])
	}
}

func TestAnalyzeSporadicOverlapGrowsBound(t *testing.T) {
	// A 10-unit task released as often as every 6 units on two
	// processors: consecutive copies genuinely overlap, so earlier
	// self-copies must count as interference and the bound must grow
	// past the single-shot 10 — while the system still fits (release
	// density 10/6 under capacity 2), so it must stay provable.
	p := onePlatform(t, 2)
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", []rtime.Time{10}, 0)
	g.MustFreeze()
	res, err := AnalyzeSporadic(g, p, asgOf([]rtime.Time{0}, []rtime.Time{100}),
		Sporadic{MinGap: 6, Jitter: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Accept {
		t.Fatalf("verdict %v (%s), want accept", res.Verdict, res.Reason)
	}
	if res.Finish[0] <= 10 {
		t.Fatalf("finish bound %d should exceed the single-shot bound", res.Finish[0])
	}
}

func TestAnalyzeSporadicOverloadedInconclusive(t *testing.T) {
	// Utilization 10/8 > 1: the busy-wait iteration diverges; the
	// analysis must give up, not lie.
	p := onePlatform(t, 1)
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", []rtime.Time{10}, 0)
	g.MustFreeze()
	res, err := AnalyzeSporadic(g, p, asgOf([]rtime.Time{0}, []rtime.Time{100}),
		Sporadic{MinGap: 8, Jitter: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Inconclusive {
		t.Fatalf("verdict %v (%s), want inconclusive", res.Verdict, res.Reason)
	}
}
