package verify

import (
	"repro/internal/arch"
	"repro/internal/feas"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// outcome maps an analysis verdict onto the pipeline's verifier
// outcome space.
func outcome(v Verdict) pipeline.VerifyOutcome {
	switch v {
	case Accept:
		return pipeline.VerifyAccepted
	case Reject:
		return pipeline.VerifyRejected
	}
	return pipeline.VerifyInconclusive
}

// AnalyticVerifier is the holistic response-time analysis as a pipeline
// verifier hook: O(fixed-point iterations) instead of O(timeline), and
// conservative — Accepted proves every deadline met under the
// time-driven EDF dispatcher and the nominal bus, Rejected proves a
// miss, anything it cannot prove is Inconclusive (including analysis
// input errors, which are swallowed like FeasVerifier's). Pair it with
// a different dispatcher or a serialized-bus replay and its Accepted
// no longer applies; the serving layer gates on the dispatcher name.
func AnalyticVerifier() pipeline.Verifier {
	run := func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, _ *sched.Schedule) (pipeline.VerifyOutcome, error) {
		res, err := Analyze(g, p, asg)
		if err != nil {
			return pipeline.VerifyInconclusive, nil
		}
		return outcome(res.Verdict), nil
	}
	return pipeline.Verifier{
		Name: "analytic",
		Run:  run,
		RunScratch: func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, s *sched.Schedule, _ *feas.Scratch) (pipeline.VerifyOutcome, error) {
			return run(g, p, asg, s)
		},
	}
}

// ReplayVerifier re-executes the dispatched schedule in the discrete-
// event simulator under the nominal bus model — the ground truth the
// analytic verifier is measured against. It is never inconclusive: the
// schedule either replays validly with every deadline met (Accepted) or
// it does not (Rejected).
func ReplayVerifier() pipeline.Verifier {
	run := func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, s *sched.Schedule) (pipeline.VerifyOutcome, error) {
		return replayOutcome(g, p, asg, s), nil
	}
	return pipeline.Verifier{
		Name: "replay",
		Run:  run,
		RunScratch: func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, s *sched.Schedule, _ *feas.Scratch) (pipeline.VerifyOutcome, error) {
			return run(g, p, asg, s)
		},
	}
}

// replayOutcome is the replay ground-truth verdict on one schedule.
func replayOutcome(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, s *sched.Schedule) pipeline.VerifyOutcome {
	if s == nil || !s.Feasible {
		return pipeline.VerifyRejected
	}
	rep, err := sim.Replay(g, p, asg, s, sim.Options{})
	if err != nil || !rep.Valid || len(rep.DeadlineMisses) > 0 {
		return pipeline.VerifyRejected
	}
	return pipeline.VerifyAccepted
}

// AnalyticFirstVerifier runs the cheap analysis and falls back to the
// replay simulator only when the analysis proves nothing — the
// verify-before-dispatch fast path: workloads the analysis can decide
// cost O(iterations), the rest keep the replay's exact answer.
func AnalyticFirstVerifier() pipeline.Verifier {
	run := func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, s *sched.Schedule) (pipeline.VerifyOutcome, error) {
		if res, err := Analyze(g, p, asg); err == nil && res.Verdict != Inconclusive {
			return outcome(res.Verdict), nil
		}
		return replayOutcome(g, p, asg, s), nil
	}
	return pipeline.Verifier{
		Name: "analytic-first",
		Run:  run,
		RunScratch: func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, s *sched.Schedule, _ *feas.Scratch) (pipeline.VerifyOutcome, error) {
			return run(g, p, asg, s)
		},
	}
}
