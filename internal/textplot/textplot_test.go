package textplot

import (
	"strings"
	"testing"
)

func TestPlotBasicLayout(t *testing.T) {
	out := Plot("demo", []string{"2", "3", "4"}, []Series{
		{Name: "up", Values: []float64{0, 0.5, 1}},
		{Name: "down", Values: []float64{1, 0.5, 0}},
	}, Options{Height: 5, Min: 0, Max: 1, Percent: true})

	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "100%") || !strings.Contains(out, "0%") {
		t.Error("percent axis missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Fatalf("too few lines: %d", len(lines))
	}
	// Top row holds the maxima of both series: 'o' (down at x=2) first,
	// '*' (up at x=4) last.
	top := lines[1]
	if !strings.Contains(top, "o") || !strings.Contains(top, "*") {
		t.Errorf("top row %q should hold both maxima", top)
	}
	bottom := lines[5]
	if !strings.Contains(bottom, "o") || !strings.Contains(bottom, "*") {
		t.Errorf("bottom row %q should hold both minima", bottom)
	}
}

func TestPlotAutoRange(t *testing.T) {
	out := Plot("", []string{"a", "b"}, []Series{{Name: "s", Values: []float64{10, 30}}}, Options{Height: 3})
	if !strings.Contains(out, "30.0") || !strings.Contains(out, "10.0") {
		t.Errorf("auto range labels missing:\n%s", out)
	}
}

func TestPlotDegenerateInputs(t *testing.T) {
	// No data at all must not panic and still render a frame.
	out := Plot("empty", []string{"x"}, nil, Options{})
	if !strings.Contains(out, "+") {
		t.Error("axis frame missing")
	}
	// Constant series must not divide by zero.
	out2 := Plot("const", []string{"x", "y"}, []Series{{Name: "c", Values: []float64{5, 5}}}, Options{})
	if !strings.Contains(out2, "c") {
		t.Error("constant series legend missing")
	}
}

func TestPlotClampsOutOfRange(t *testing.T) {
	out := Plot("", []string{"x"}, []Series{{Name: "s", Values: []float64{2.5}}},
		Options{Height: 4, Min: 0, Max: 1})
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "*") {
		t.Errorf("clamped value should sit on the top row: %q", lines[0])
	}
}

func TestMarkersCycle(t *testing.T) {
	series := make([]Series, len(markers)+1)
	for i := range series {
		series[i] = Series{Name: "s", Values: []float64{float64(i)}}
	}
	// Must not panic on more series than markers.
	_ = Plot("", []string{"x"}, series, Options{})
}

func TestGanttBasics(t *testing.T) {
	out := Gantt([]GanttRow{
		{Label: "p0", Spans: []GanttSpan{{ID: 0, Start: 0, End: 50}, {ID: 1, Start: 50, End: 100}}},
		{Label: "p1", Spans: []GanttSpan{{ID: 2, Start: 25, End: 75}}},
	}, 100, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "aaaaaaaaaabbbbbbbbbb") {
		t.Errorf("p0 row wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], ".....cccccccccc.....") {
		t.Errorf("p1 row wrong: %q", lines[2])
	}
}

func TestGanttDerivesHorizon(t *testing.T) {
	out := Gantt([]GanttRow{{Label: "x", Spans: []GanttSpan{{ID: 0, Start: 0, End: 40}}}}, 0, 10)
	if !strings.Contains(out, "horizon 40") {
		t.Errorf("horizon not derived:\n%s", out)
	}
}

func TestGanttTinySpanLeavesTrace(t *testing.T) {
	out := Gantt([]GanttRow{{Label: "x", Spans: []GanttSpan{{ID: 0, Start: 0, End: 1}}}}, 1000, 10)
	if !strings.Contains(out, "a") {
		t.Errorf("sub-column span vanished:\n%s", out)
	}
}

func TestGanttCustomMark(t *testing.T) {
	out := Gantt([]GanttRow{{Label: "x", Spans: []GanttSpan{{Mark: '#', Start: 0, End: 10}}}}, 10, 5)
	if !strings.Contains(out, "#####") {
		t.Errorf("custom mark lost:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	out := Gantt(nil, 0, 0)
	if !strings.Contains(out, "gantt") {
		t.Error("empty gantt should still render a header")
	}
}
