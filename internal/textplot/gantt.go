package textplot

import (
	"fmt"
	"sort"
	"strings"
)

// GanttRow is one labelled timeline (typically a processor).
type GanttRow struct {
	Label string
	Spans []GanttSpan
}

// GanttSpan is one busy interval on a row.
type GanttSpan struct {
	// Mark identifies the occupant; rendering cycles 'a'..'z' when 0.
	Mark rune
	// ID is used to derive a mark when Mark is 0.
	ID         int
	Start, End int64
}

// Gantt renders rows of busy spans into a fixed-width text chart.
// The time axis spans [0, horizon]; when horizon is 0 it is derived
// from the data.
func Gantt(rows []GanttRow, horizon int64, width int) string {
	if width <= 0 {
		width = 100
	}
	if horizon <= 0 {
		for _, r := range rows {
			for _, s := range r.Spans {
				if s.End > horizon {
					horizon = s.End
				}
			}
		}
		if horizon == 0 {
			horizon = 1
		}
	}
	scale := float64(width) / float64(horizon)

	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "gantt (1 col = %.1f units, horizon %d)\n", float64(horizon)/float64(width), horizon)
	for _, r := range rows {
		line := []rune(strings.Repeat(".", width))
		spans := append([]GanttSpan(nil), r.Spans...)
		sort.Slice(spans, func(a, b int) bool { return spans[a].Start < spans[b].Start })
		for _, s := range spans {
			lo := int(float64(s.Start) * scale)
			hi := int(float64(s.End) * scale)
			if hi > width {
				hi = width
			}
			if lo < 0 {
				lo = 0
			}
			mark := s.Mark
			if mark == 0 {
				mark = rune('a' + s.ID%26)
			}
			if hi == lo && lo < width {
				hi = lo + 1 // sub-column spans still leave a trace
			}
			for c := lo; c < hi; c++ {
				line[c] = mark
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, r.Label, string(line))
	}
	return b.String()
}
