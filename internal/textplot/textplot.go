// Package textplot renders small ASCII line charts so the command-line
// tools can show the paper's figures directly in a terminal, next to the
// numeric tables.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled line.
type Series struct {
	Name   string
	Values []float64
}

// Options controls the rendering.
type Options struct {
	// Height is the number of plot rows (default 12).
	Height int
	// Min and Max fix the Y range; when Min == Max the range is derived
	// from the data.
	Min, Max float64
	// Percent formats the Y axis as percentages of 1.0.
	Percent bool
}

// markers label each series in the grid; later series win collisions,
// which is fine for “who is on top” reading.
const markers = "*o+x#@%&"

// Plot renders the series over the shared X labels.
func Plot(title string, xLabels []string, series []Series, opts Options) string {
	if opts.Height <= 0 {
		opts.Height = 12
	}
	lo, hi := opts.Min, opts.Max
	if lo == hi {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, v := range s.Values {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if math.IsInf(lo, 1) {
			lo, hi = 0, 1
		}
		if lo == hi {
			hi = lo + 1
		}
	}

	cols := len(xLabels)
	colW := 6
	grid := make([][]rune, opts.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", cols*colW))
	}
	for si, s := range series {
		mark := rune(markers[si%len(markers)])
		for i, v := range s.Values {
			if i >= cols {
				break
			}
			frac := (v - lo) / (hi - lo)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			row := opts.Height - 1 - int(math.Round(frac*float64(opts.Height-1)))
			grid[row][i*colW+colW/2] = mark
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	label := func(v float64) string {
		if opts.Percent {
			return fmt.Sprintf("%5.0f%%", v*100)
		}
		return fmt.Sprintf("%6.1f", v)
	}
	for r := 0; r < opts.Height; r++ {
		frac := float64(opts.Height-1-r) / float64(opts.Height-1)
		y := lo + frac*(hi-lo)
		fmt.Fprintf(&b, "%s |%s\n", label(y), string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", 7) + "+" + strings.Repeat("-", cols*colW) + "\n")
	b.WriteString(strings.Repeat(" ", 8))
	for _, x := range xLabels {
		fmt.Fprintf(&b, "%*s", colW, x)
	}
	b.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&b, "        %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}
