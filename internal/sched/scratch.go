package sched

import (
	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// ispan is one busy interval of a processor timeline (InsertEDF's gap
// scanner).
type ispan struct{ start, end rtime.Time }

// Scratch is the reusable working memory of the schedulers in this
// package: the dispatcher's ready/landing tables, the list schedulers'
// ready queues, and the insertion scheduler's timelines. A zero Scratch
// is ready to use; it grows to the largest (tasks × processors) shape it
// has seen. A Scratch is not safe for concurrent use — pool instances
// (pipeline.BuildScratch does) instead of sharing one.
//
// Nothing reachable from a returned *Schedule aliases scratch memory:
// placements, order, and missed lists are freshly allocated per call.
type Scratch struct {
	procFree  []rtime.Time
	resFree   []rtime.Time
	done      []bool
	minC      []rtime.Time
	predsLeft []int32
	landing   []rtime.Time // n×m message-landing matrix
	ready     []int
	timeline  [][]ispan
}

// ensureList sizes the subset every scheduler here shares: idle times,
// resource release times, predecessor counters, and the ready queue.
func (ws *Scratch) ensureList(g *taskgraph.Graph, n, m int) {
	if cap(ws.procFree) < m {
		ws.procFree = make([]rtime.Time, m)
	}
	ws.procFree = ws.procFree[:m]
	for q := range ws.procFree {
		ws.procFree[q] = 0
	}

	maxRes := -1
	for _, t := range g.Tasks() {
		for _, r := range t.Resources {
			if r > maxRes {
				maxRes = r
			}
		}
	}
	if cap(ws.resFree) < maxRes+1 {
		ws.resFree = make([]rtime.Time, maxRes+1)
	}
	ws.resFree = ws.resFree[:maxRes+1]
	for r := range ws.resFree {
		ws.resFree[r] = 0
	}

	if cap(ws.predsLeft) < n {
		ws.predsLeft = make([]int32, n)
	}
	ws.predsLeft = ws.predsLeft[:n]

	if cap(ws.ready) < n {
		ws.ready = make([]int, 0, n)
	}
	ws.ready = ws.ready[:0]
}

// ensure additionally sizes the dispatcher's done/minC/landing tables.
func (ws *Scratch) ensure(g *taskgraph.Graph, n, m int) {
	ws.ensureList(g, n, m)

	if cap(ws.done) < n {
		ws.done = make([]bool, n)
		ws.minC = make([]rtime.Time, n)
	}
	ws.done = ws.done[:n]
	ws.minC = ws.minC[:n]
	for i := 0; i < n; i++ {
		ws.done[i] = false
	}

	if cap(ws.landing) < n*m {
		ws.landing = make([]rtime.Time, n*m)
	}
	ws.landing = ws.landing[:n*m]
}

// timelines returns m empty per-processor timelines, reusing span
// storage from earlier runs.
func (ws *Scratch) timelines(m int) [][]ispan {
	if cap(ws.timeline) < m {
		tl := make([][]ispan, m)
		copy(tl, ws.timeline)
		ws.timeline = tl
	}
	ws.timeline = ws.timeline[:m]
	for q := range ws.timeline {
		ws.timeline[q] = ws.timeline[q][:0]
	}
	return ws.timeline
}
