package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

func TestInsertBackfillsGap(t *testing.T) {
	// Task 0: deadline 100, arrival 50 (committed first by EDF? no —
	// deadline 100 is later). Build the plain-EDF pathology: a task with
	// an early deadline but late arrival reserves the processor tail,
	// and a later-deadline early-arrival task must backfill before it.
	g := taskgraph.NewGraph(1)
	g.MustAddTask("lateArrival", c1(10), 0)  // deadline 70, arrival 50
	g.MustAddTask("earlyArrival", c1(10), 0) // deadline 90, arrival 0
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := manual([]rtime.Time{50, 0}, []rtime.Time{70, 90})

	plain, err := EDF(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	// Plain EDF commits task 0 first at [50,60), then task 1 at [60,70).
	if plain.Placements[1].Start != 60 {
		t.Fatalf("plain EDF start = %d, expected the reservation artifact", plain.Placements[1].Start)
	}

	ins, err := InsertEDF(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	// Insertion places task 1 into the idle gap [0,50).
	if ins.Placements[1].Start != 0 {
		t.Errorf("insertion start = %d, want 0 (backfilled)", ins.Placements[1].Start)
	}
	if ins.Placements[0].Start != 50 {
		t.Errorf("task 0 start = %d, want 50", ins.Placements[0].Start)
	}
	if !ins.Feasible {
		t.Error("insertion schedule should be feasible")
	}
}

func TestInsertRespectsGapSize(t *testing.T) {
	// Gap [0,8) is too small for a 10-unit task; it must go after.
	g := taskgraph.NewGraph(1)
	g.MustAddTask("pinned", c1(10), 0) // [8,18) via arrival 8, tight deadline
	g.MustAddTask("big", c1(10), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := manual([]rtime.Time{8, 0}, []rtime.Time{18, 60})
	s, err := InsertEDF(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Placements[0].Start != 8 {
		t.Fatalf("pinned start = %d", s.Placements[0].Start)
	}
	if s.Placements[1].Start != 18 {
		t.Errorf("big start = %d, want 18 (gap [0,8) too small)", s.Placements[1].Start)
	}
}

func TestInsertFitsExactGap(t *testing.T) {
	// A gap of exactly the task length is usable.
	g := taskgraph.NewGraph(1)
	g.MustAddTask("first", c1(10), 0) // [10,20)
	g.MustAddTask("exact", c1(10), 0) // fits [0,10)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := manual([]rtime.Time{10, 0}, []rtime.Time{20, 40})
	s, err := InsertEDF(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Placements[1].Start != 0 || s.Placements[1].Finish != 10 {
		t.Errorf("exact-fit placement = %+v", s.Placements[1])
	}
}

// Property: insertion schedules verify, and track plain EDF closely on
// generated workloads (strict dominance is impossible: backfilling is a
// greedy heuristic and multiprocessor scheduling anomalies cut both
// ways — the unit tests above pin the specific pathology insertion
// fixes).
func TestInsertVerifiesAndDominatesPlain(t *testing.T) {
	plainSucc, insSucc := 0, 0
	f := func(seed int64) bool {
		cfg := gen.Default(3)
		cfg.Seed = seed
		cfg.OLR = 0.5
		w, err := gen.Generate(cfg)
		if err != nil {
			return false
		}
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			return false
		}
		asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
		if err != nil {
			return false
		}
		plain, err := EDF(w.Graph, w.Platform, asg)
		if err != nil {
			return false
		}
		ins, err := InsertEDF(w.Graph, w.Platform, asg)
		if err != nil {
			return false
		}
		if err := Verify(w.Graph, w.Platform, asg, ins); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if plain.Feasible {
			plainSucc++
		}
		if ins.Feasible {
			insSucc++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
	t.Logf("plain %d, insertion %d", plainSucc, insSucc)
	if insSucc < plainSucc-4 {
		t.Errorf("insertion (%d) far below plain EDF (%d)", insSucc, plainSucc)
	}
}

func TestInsertValidation(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("", c1(5), 0)
	g.MustFreeze()
	if _, err := InsertEDF(g, arch.Homogeneous(1), manual(nil, nil)); err == nil {
		t.Error("short assignment accepted")
	}
	bad := manual([]rtime.Time{rtime.Unset}, []rtime.Time{10})
	if _, err := InsertEDF(g, arch.Homogeneous(1), bad); err == nil {
		t.Error("unset arrival accepted")
	}
}
