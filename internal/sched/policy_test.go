package sched

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{EDFPolicy: "EDF", DMPolicy: "DM", FIFOPolicy: "FIFO", LLFPolicy: "LLF"}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), name)
		}
	}
	if !strings.Contains(Policy(9).String(), "9") {
		t.Error("unknown policy should include its number")
	}
	if len(Policies) != 4 {
		t.Error("Policies should list all four")
	}
}

func TestDispatchWithEDFMatchesDispatch(t *testing.T) {
	cfg := gen.Default(3)
	cfg.Seed = 8
	w := gen.MustGenerate(cfg)
	est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Dispatch(w.Graph, w.Platform, asg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DispatchWith(w.Graph, w.Platform, asg, EDFPolicy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Placements {
		if a.Placements[i] != b.Placements[i] {
			t.Fatalf("task %d differs: %+v vs %+v", i, a.Placements[i], b.Placements[i])
		}
	}
}

func TestPolicyOrderingsDiffer(t *testing.T) {
	// Two independent tasks on one processor. Windows chosen so each
	// policy ranks them differently:
	//   task 0: arrival 0, deadline 100 (d = 100)
	//   task 1: arrival 2, deadline 90  (d = 88)
	// At t=0 only task 0 is ready → it always starts first under any
	// work-conserving policy; instead compare at a shared ready instant
	// by giving both arrival 0:
	//   task 0: [0, 100), c = 10 → laxity 90, arrival 0
	//   task 1: [0, 90),  c = 30 → laxity 60, arrival 0
	// EDF and DM pick task 1 (deadline 90 < 100); LLF picks task 1
	// (laxity 60 < 90); FIFO ties on arrival and falls to the lower ID,
	// task 0 — so FIFO's schedule must differ from EDF's.
	g := taskgraph.NewGraph(1)
	g.MustAddTask("t0", c1(10), 0)
	g.MustAddTask("t1", c1(30), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := manual([]rtime.Time{0, 0}, []rtime.Time{100, 90})

	edf, err := DispatchWith(g, p, asg, EDFPolicy)
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := DispatchWith(g, p, asg, FIFOPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if edf.Placements[1].Start != 0 {
		t.Errorf("EDF should run the tighter task first: %+v", edf.Placements)
	}
	if fifo.Placements[0].Start != 0 {
		t.Errorf("FIFO should run the lower-ID arrival tie first: %+v", fifo.Placements)
	}
}

func TestLLFPrefersLeastLaxity(t *testing.T) {
	// Same deadline, different execution times: LLF runs the long task
	// first (least laxity), EDF ties on deadline and takes the lower ID.
	g := taskgraph.NewGraph(1)
	g.MustAddTask("short", c1(5), 0)
	g.MustAddTask("long", c1(30), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := manual([]rtime.Time{0, 0}, []rtime.Time{80, 80})

	llf, err := DispatchWith(g, p, asg, LLFPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if llf.Placements[1].Start != 0 {
		t.Errorf("LLF should run the long (least-laxity) task first: %+v", llf.Placements)
	}
	edf, err := DispatchWith(g, p, asg, EDFPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if edf.Placements[0].Start != 0 {
		t.Errorf("EDF tie-break should run the lower ID first: %+v", edf.Placements)
	}
}

func TestAllPoliciesVerifyOnGeneratedWorkloads(t *testing.T) {
	cfg := gen.Default(3)
	cfg.Seed = 14
	w := gen.MustGenerate(cfg)
	est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range Policies {
		s, err := DispatchWith(w.Graph, w.Platform, asg, pol)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if err := Verify(w.Graph, w.Platform, asg, s); err != nil {
			t.Errorf("%v: %v", pol, err)
		}
	}
}
