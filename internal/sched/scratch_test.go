package sched

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

// referenceDispatch is a frozen copy of the pre-landing-matrix
// dispatcher, which recomputed readiness by rescanning every predecessor
// on every processor probe. The rewritten DispatchScratch must reproduce
// its schedules bit-for-bit; this copy exists only as that oracle.
func referenceDispatch(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, policy Policy) (*Schedule, error) {
	n := g.NumTasks()
	if len(asg.Arrival) != n || len(asg.AbsDeadline) != n {
		return nil, fmt.Errorf("sched: assignment covers %d tasks, graph has %d", len(asg.Arrival), n)
	}
	for i := 0; i < n; i++ {
		if !asg.Arrival[i].IsSet() || !asg.AbsDeadline[i].IsSet() {
			return nil, fmt.Errorf("sched: task %d has an unassigned window", i)
		}
	}

	s := &Schedule{
		Placements:  make([]Placement, n),
		Feasible:    true,
		MaxLateness: -rtime.Infinity,
	}
	for i := range s.Placements {
		s.Placements[i] = Placement{Proc: -1}
	}

	m := p.M()
	procFree := make([]rtime.Time, m)
	resFree := ResourceTable(g)
	done := make([]bool, n)
	placed := 0

	present := p.ClassesPresent()
	minC := make([]rtime.Time, n)
	for i := 0; i < n; i++ {
		minC[i] = rtime.Infinity
		if pin := g.Task(i).Pinned; pin >= 0 {
			if pin < m {
				if c := g.Task(i).WCET[p.ClassOf(pin)]; c.IsSet() {
					minC[i] = c
				}
			}
		} else {
			for k, c := range g.Task(i).WCET {
				if c.IsSet() && k < len(present) && present[k] && c < minC[i] {
					minC[i] = c
				}
			}
		}
		if minC[i] == rtime.Infinity {
			s.Feasible = false
			s.Missed = append(s.Missed, i)
			done[i] = true
			placed++
		}
	}

	readyOn := func(i, q int) rtime.Time {
		t := asg.Arrival[i]
		for _, pr := range g.Preds(i) {
			pl := s.Placements[pr]
			if pl.Proc < 0 {
				if done[pr] {
					continue
				}
				return rtime.Unset
			}
			arrive := pl.Finish + p.CommCost(pl.Proc, q, g.MessageItems(pr, i))
			if arrive > t {
				t = arrive
			}
		}
		for _, res := range g.Task(i).Resources {
			if resFree[res] > t {
				t = resFree[res]
			}
		}
		return t
	}

	now := rtime.Time(0)
	for placed < n {
		for {
			bestTask, bestProc := -1, -1
			var bestFinish rtime.Time
			for i := 0; i < n; i++ {
				if done[i] {
					continue
				}
				task := g.Task(i)
				if bestTask >= 0 {
					ki := policy.key(asg, i, now, minC[i])
					kb := policy.key(asg, bestTask, now, minC[bestTask])
					if ki > kb || (ki == kb && i > bestTask) {
						continue
					}
				}
				tProc, tFinish := -1, rtime.Time(0)
				for q := 0; q < m; q++ {
					if task.Pinned >= 0 && q != task.Pinned {
						continue
					}
					if procFree[q] > now {
						continue
					}
					class := p.ClassOf(q)
					if !task.EligibleOn(class) {
						continue
					}
					r := readyOn(i, q)
					if !r.IsSet() || r > now {
						continue
					}
					finish := now + task.WCET[class]
					if tProc < 0 || finish < tFinish {
						tProc, tFinish = q, finish
					}
				}
				if tProc >= 0 {
					bestTask, bestProc, bestFinish = i, tProc, tFinish
				}
			}
			if bestTask < 0 {
				break
			}
			s.Placements[bestTask] = Placement{Proc: bestProc, Start: now, Finish: bestFinish}
			procFree[bestProc] = bestFinish
			for _, res := range g.Task(bestTask).Resources {
				resFree[res] = bestFinish
			}
			done[bestTask] = true
			placed++
			s.Order = append(s.Order, bestTask)
			if bestFinish > s.Makespan {
				s.Makespan = bestFinish
			}
			late := bestFinish - asg.AbsDeadline[bestTask]
			if late > s.MaxLateness {
				s.MaxLateness = late
			}
			if late > 0 {
				s.Feasible = false
				s.Missed = append(s.Missed, bestTask)
			}
		}
		if placed == n {
			break
		}

		next := rtime.Infinity
		for q := 0; q < m; q++ {
			if procFree[q] > now && procFree[q] < next {
				next = procFree[q]
			}
		}
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			for q := 0; q < m; q++ {
				if g.Task(i).Pinned >= 0 && q != g.Task(i).Pinned {
					continue
				}
				if !g.Task(i).EligibleOn(p.ClassOf(q)) {
					continue
				}
				r := readyOn(i, q)
				if r.IsSet() && r > now && r < next {
					next = r
				}
			}
		}
		if next == rtime.Infinity {
			for i := 0; i < n; i++ {
				if !done[i] {
					done[i] = true
					placed++
					s.Feasible = false
					s.Missed = append(s.Missed, i)
				}
			}
			break
		}
		now = next
	}
	sort.Ints(s.Missed)
	return s, nil
}

// scratchConfigs returns generator setups covering the dispatcher's
// structural corners: the plain paper workload, exclusive resources, and
// pinned input/output tasks with occasional ineligibility.
func scratchConfigs() []gen.Config {
	plain := gen.Default(3)
	res := gen.Default(4)
	res.NumResources = 3
	res.ResourceProb = 0.4
	pinned := gen.Default(5)
	pinned.PinProb = 0.3
	pinned.IneligibleProb = 0.2
	return []gen.Config{plain, res, pinned}
}

// The landing-matrix dispatcher — with and without a reused scratch —
// must be schedule-identical to the frozen predecessor-rescan oracle on
// every workload and policy.
func TestDispatchScratchMatchesReference(t *testing.T) {
	ws := &Scratch{}
	for ci, cfg := range scratchConfigs() {
		for seed := int64(0); seed < 8; seed++ {
			cfg.Seed = seed
			w := gen.MustGenerate(cfg)
			est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
			if err != nil {
				t.Fatal(err)
			}
			asg, err := slicing.Distribute(w.Graph, est, cfg.M, slicing.AdaptR(), slicing.CalibratedParams())
			if err != nil {
				t.Fatal(err)
			}
			for _, pol := range Policies {
				want, err1 := referenceDispatch(w.Graph, w.Platform, asg, pol)
				got, err2 := DispatchScratch(w.Graph, w.Platform, asg, pol, ws)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("cfg %d seed %d %v: reference err=%v scratch err=%v", ci, seed, pol, err1, err2)
				}
				if err1 == nil && !reflect.DeepEqual(want, got) {
					t.Fatalf("cfg %d seed %d %v: dispatcher diverged from reference\nref:  %+v\ngot:  %+v",
						ci, seed, pol, want, got)
				}
			}
		}
	}
}

// EDF and InsertEDF over a reused scratch must match their
// fresh-allocation runs on every workload.
func TestListSchedulersScratchReuse(t *testing.T) {
	ws := &Scratch{}
	for ci, cfg := range scratchConfigs() {
		for seed := int64(20); seed < 26; seed++ {
			cfg.Seed = seed
			w := gen.MustGenerate(cfg)
			est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
			if err != nil {
				t.Fatal(err)
			}
			asg, err := slicing.Distribute(w.Graph, est, cfg.M, slicing.AdaptR(), slicing.CalibratedParams())
			if err != nil {
				t.Fatal(err)
			}

			want, err1 := EDF(w.Graph, w.Platform, asg)
			got, err2 := EDFScratch(w.Graph, w.Platform, asg, ws)
			if (err1 == nil) != (err2 == nil) || (err1 == nil && !reflect.DeepEqual(want, got)) {
				t.Fatalf("cfg %d seed %d: EDFScratch diverged (err %v vs %v)", ci, seed, err1, err2)
			}

			want, err1 = InsertEDF(w.Graph, w.Platform, asg)
			got, err2 = InsertEDFScratch(w.Graph, w.Platform, asg, ws)
			if (err1 == nil) != (err2 == nil) || (err1 == nil && !reflect.DeepEqual(want, got)) {
				t.Fatalf("cfg %d seed %d: InsertEDFScratch diverged (err %v vs %v)", ci, seed, err1, err2)
			}
		}
	}
}
