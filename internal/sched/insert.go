package sched

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// InsertEDF is the insertion-based variant of the offline list
// scheduler: tasks are still committed in EDF order, but each task may
// be placed into any sufficiently large idle *gap* of a processor
// timeline, not only after the processor's last task. Backfilling
// recovers the capacity that plain EDF reservation wastes when windows
// are staggered, at the cost of O(n) gap scanning per placement —
// overall O(n²·m), the same bound as the paper's baseline.
func InsertEDF(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (*Schedule, error) {
	return InsertEDFScratch(g, p, asg, nil)
}

// InsertEDFScratch is InsertEDF running over reusable scratch memory
// (nil allocates internally). The schedule is identical for any scratch
// state and never aliases it.
func InsertEDFScratch(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, ws *Scratch) (*Schedule, error) {
	if usesResources(g) {
		return nil, fmt.Errorf("sched: InsertEDF does not support exclusive resources; use Dispatch or EDF")
	}
	n := g.NumTasks()
	if len(asg.Arrival) != n || len(asg.AbsDeadline) != n {
		return nil, fmt.Errorf("sched: assignment covers %d tasks, graph has %d", len(asg.Arrival), n)
	}
	for i := 0; i < n; i++ {
		if !asg.Arrival[i].IsSet() || !asg.AbsDeadline[i].IsSet() {
			return nil, fmt.Errorf("sched: task %d has an unassigned window", i)
		}
	}

	s := &Schedule{
		Placements:  make([]Placement, n),
		Feasible:    true,
		MaxLateness: -rtime.Infinity,
	}
	for i := range s.Placements {
		s.Placements[i] = Placement{Proc: -1}
	}

	if ws == nil {
		ws = &Scratch{}
	}
	ws.ensureList(g, n, p.M())
	timeline := ws.timelines(p.M()) // sorted, non-overlapping busy spans

	// earliestFit returns the earliest start ≥ ready on processor q for
	// a task of length c, scanning the gaps of q's timeline.
	earliestFit := func(q int, ready, c rtime.Time) rtime.Time {
		t := ready
		for _, sp := range timeline[q] {
			if t+c <= sp.start {
				return t
			}
			if sp.end > t {
				t = sp.end
			}
		}
		return t
	}
	insert := func(q int, start, end rtime.Time) {
		tl := timeline[q]
		i := sort.Search(len(tl), func(k int) bool { return tl[k].start >= start })
		tl = append(tl, ispan{})
		copy(tl[i+1:], tl[i:])
		tl[i] = ispan{start, end}
		timeline[q] = tl
	}

	unscheduledPreds := ws.predsLeft
	ready := ws.ready
	for i := 0; i < n; i++ {
		unscheduledPreds[i] = int32(len(g.Preds(i)))
		if unscheduledPreds[i] == 0 {
			ready = append(ready, i)
		}
	}

	scheduled := 0
	for len(ready) > 0 {
		sel := 0
		for j := 1; j < len(ready); j++ {
			a, b := ready[j], ready[sel]
			if asg.AbsDeadline[a] < asg.AbsDeadline[b] ||
				(asg.AbsDeadline[a] == asg.AbsDeadline[b] && a < b) {
				sel = j
			}
		}
		t := ready[sel]
		ready = append(ready[:sel], ready[sel+1:]...)
		task := g.Task(t)

		bestProc := -1
		var bestStart, bestFinish rtime.Time
		for q := 0; q < p.M(); q++ {
			if task.Pinned >= 0 && q != task.Pinned {
				continue
			}
			class := p.ClassOf(q)
			if !task.EligibleOn(class) {
				continue
			}
			rdy := asg.Arrival[t]
			for _, pr := range g.Preds(t) {
				pl := s.Placements[pr]
				if pl.Proc < 0 {
					continue
				}
				if arr := pl.Finish + p.CommCost(pl.Proc, q, g.MessageItems(pr, t)); arr > rdy {
					rdy = arr
				}
			}
			c := task.WCET[class]
			start := earliestFit(q, rdy, c)
			finish := start + c
			// Unlike the paper's baseline (earliest start), insertion
			// selects by earliest finish: backfilling onto a slower
			// class for a marginally earlier start is the classic
			// multiprocessor anomaly, and finishing time is what
			// deadlines and successors see.
			if bestProc < 0 || finish < bestFinish || (finish == bestFinish && start < bestStart) {
				bestProc, bestStart, bestFinish = q, start, finish
			}
		}

		if bestProc < 0 {
			s.Feasible = false
			s.Missed = append(s.Missed, t)
		} else {
			s.Placements[t] = Placement{Proc: bestProc, Start: bestStart, Finish: bestFinish}
			insert(bestProc, bestStart, bestFinish)
			if bestFinish > s.Makespan {
				s.Makespan = bestFinish
			}
			late := bestFinish - asg.AbsDeadline[t]
			if late > s.MaxLateness {
				s.MaxLateness = late
			}
			if late > 0 {
				s.Feasible = false
				s.Missed = append(s.Missed, t)
			}
		}
		s.Order = append(s.Order, t)
		scheduled++
		for _, u := range g.Succs(t) {
			unscheduledPreds[u]--
			if unscheduledPreds[u] == 0 {
				ready = append(ready, u)
			}
		}
	}
	if scheduled != n {
		return nil, fmt.Errorf("sched: scheduled %d of %d tasks (precedence cycle?)", scheduled, n)
	}
	sort.Ints(s.Missed)
	return s, nil
}
