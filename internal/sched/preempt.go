package sched

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Slice is one contiguous execution interval of a (possibly preempted)
// task.
type Slice struct {
	Task       int
	Proc       int
	Start, End rtime.Time
}

// PreemptiveSchedule extends Schedule with the execution slices of a
// preemptive run.
type PreemptiveSchedule struct {
	Schedule
	// Slices lists every execution interval in start order; a task that
	// was never preempted has exactly one slice.
	Slices []Slice
	// Preemptions counts events where an unfinished running task lost
	// its processor.
	Preemptions int
	// Migrations counts resumptions on a different processor.
	Migrations int
}

// DispatchPreemptive simulates a global preemptive EDF dispatcher with
// migration — the policy direction the paper's future work (§7.3)
// points at: the slicing technique itself is not tied to non-preemptive
// dispatching.
//
// At every instant the m earliest-deadline ready tasks execute; a task
// prefers to stay on its previous processor, but may resume on another
// eligible one, in which case its remaining execution time is rescaled
// by the ratio of the per-class WCETs (ceiling division, so migration is
// never optimistic). Arrival gating and message delays are as in
// Dispatch: a task is ready on processor q only once its window has
// opened and every predecessor's message has landed on q.
func DispatchPreemptive(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (*PreemptiveSchedule, error) {
	if usesResources(g) {
		// Holding an exclusive resource across a preemption would need a
		// locking protocol (PCP/SRP), out of scope for this dispatcher.
		return nil, fmt.Errorf("sched: DispatchPreemptive does not support exclusive resources; use Dispatch")
	}
	n := g.NumTasks()
	if len(asg.Arrival) != n || len(asg.AbsDeadline) != n {
		return nil, fmt.Errorf("sched: assignment covers %d tasks, graph has %d", len(asg.Arrival), n)
	}
	for i := 0; i < n; i++ {
		if !asg.Arrival[i].IsSet() || !asg.AbsDeadline[i].IsSet() {
			return nil, fmt.Errorf("sched: task %d has an unassigned window", i)
		}
	}

	s := &PreemptiveSchedule{
		Schedule: Schedule{
			Placements:  make([]Placement, n),
			Feasible:    true,
			MaxLateness: -rtime.Infinity,
		},
	}
	for i := range s.Placements {
		s.Placements[i] = Placement{Proc: -1}
	}

	m := p.M()
	var (
		remaining = make([]rtime.Time, n) // work left, in units of lastProc's class
		lastProc  = make([]int, n)        // processor of the most recent slice, -1 never ran
		started   = make([]rtime.Time, n) // first start
		finished  = make([]bool, n)
		doomed    = make([]bool, n)
		running   = make([]int, m) // task per processor, -1 idle
	)
	for i := range lastProc {
		lastProc[i] = -1
		started[i] = rtime.Unset
	}
	for q := range running {
		running[q] = -1
	}

	present := p.ClassesPresent()
	done := 0
	for i := 0; i < n; i++ {
		ok := false
		for k, c := range g.Task(i).WCET {
			if c.IsSet() && k < len(present) && present[k] {
				ok = true
				break
			}
		}
		if !ok {
			doomed[i] = true
			s.Feasible = false
			s.Missed = append(s.Missed, i)
			done++
		}
	}

	readyOn := func(i, q int) rtime.Time {
		t := asg.Arrival[i]
		for _, pr := range g.Preds(i) {
			if doomed[pr] {
				continue
			}
			if !finished[pr] {
				return rtime.Unset
			}
			pl := s.Placements[pr]
			arrive := pl.Finish + p.CommCost(pl.Proc, q, g.MessageItems(pr, i))
			if arrive > t {
				t = arrive
			}
		}
		return t
	}

	// rescale converts remaining work when a task moves between classes.
	rescale := func(rem rtime.Time, i, fromProc, toProc int) rtime.Time {
		cf := g.Task(i).WCET[p.ClassOf(fromProc)]
		ct := g.Task(i).WCET[p.ClassOf(toProc)]
		if cf == ct {
			return rem
		}
		out := (rem*ct + cf - 1) / cf // ceiling: migration never gains work
		if out < 1 {
			out = 1
		}
		return out
	}

	now := rtime.Time(0)
	sliceStart := make([]rtime.Time, m)
	emit := func(task, proc int, start, end rtime.Time) {
		if end <= start {
			return
		}
		if k := len(s.Slices) - 1; k >= 0 && s.Slices[k].Task == task &&
			s.Slices[k].Proc == proc && s.Slices[k].End == start {
			s.Slices[k].End = end
			return
		}
		s.Slices = append(s.Slices, Slice{Task: task, Proc: proc, Start: start, End: end})
	}

	edfLess := func(a, b int) bool {
		if asg.AbsDeadline[a] != asg.AbsDeadline[b] {
			return asg.AbsDeadline[a] < asg.AbsDeadline[b]
		}
		return a < b
	}

	for done < n {
		// Select the executing set: EDF over every task that is ready on
		// at least one processor; each task prefers its previous
		// processor, then the eligible free one with the least (rescaled)
		// remaining work.
		var active []int
		for i := 0; i < n; i++ {
			if !finished[i] && !doomed[i] {
				active = append(active, i)
			}
		}
		sort.Slice(active, func(a, b int) bool { return edfLess(active[a], active[b]) })

		assigned := make([]int, m) // task per proc for this round
		for q := range assigned {
			assigned[q] = -1
		}
		taken := make([]bool, m)
		for _, i := range active {
			task := g.Task(i)
			pick := -1
			var pickRem rtime.Time
			// Prefer the previous processor when usable.
			if lp := lastProc[i]; lp >= 0 && !taken[lp] {
				// (A pinned task's lastProc is always its pin.)
				if r := readyOn(i, lp); r.IsSet() && r <= now {
					pick, pickRem = lp, remaining[i]
				}
			}
			if pick < 0 {
				for q := 0; q < m; q++ {
					if task.Pinned >= 0 && q != task.Pinned {
						continue
					}
					if taken[q] || !task.EligibleOn(p.ClassOf(q)) {
						continue
					}
					r := readyOn(i, q)
					if !r.IsSet() || r > now {
						continue
					}
					var rem rtime.Time
					if lastProc[i] < 0 {
						rem = task.WCET[p.ClassOf(q)]
					} else {
						rem = rescale(remaining[i], i, lastProc[i], q)
					}
					if pick < 0 || rem < pickRem || (rem == pickRem && q < pick) {
						pick, pickRem = q, rem
					}
				}
			}
			if pick < 0 {
				continue
			}
			if lastProc[i] >= 0 && lastProc[i] != pick {
				s.Migrations++
			}
			if lastProc[i] != pick {
				remaining[i] = pickRem
			}
			lastProc[i] = pick
			assigned[pick] = i
			taken[pick] = true
			if !started[i].IsSet() {
				started[i] = now
			}
		}

		// Commit the context switches.
		for q := 0; q < m; q++ {
			if running[q] == assigned[q] {
				continue
			}
			if running[q] >= 0 {
				emit(running[q], q, sliceStart[q], now)
				if !finished[running[q]] {
					s.Preemptions++
				}
			}
			running[q] = assigned[q]
			sliceStart[q] = now
		}

		// Next event: a completion, an arrival, or a message landing for
		// a waiting task.
		next := rtime.Infinity
		for q := 0; q < m; q++ {
			if running[q] >= 0 {
				if t := now + remaining[running[q]]; t < next {
					next = t
				}
			}
		}
		for i := 0; i < n; i++ {
			if finished[i] || doomed[i] {
				continue
			}
			for q := 0; q < m; q++ {
				if g.Task(i).Pinned >= 0 && q != g.Task(i).Pinned {
					continue
				}
				if !g.Task(i).EligibleOn(p.ClassOf(q)) {
					continue
				}
				if r := readyOn(i, q); r.IsSet() && r > now && r < next {
					next = r
				}
			}
		}
		if next == rtime.Infinity {
			for i := 0; i < n; i++ {
				if !finished[i] && !doomed[i] {
					doomed[i] = true
					done++
					s.Feasible = false
					s.Missed = append(s.Missed, i)
				}
			}
			break
		}

		delta := next - now
		for q := 0; q < m; q++ {
			i := running[q]
			if i < 0 {
				continue
			}
			remaining[i] -= delta
			if remaining[i] == 0 {
				emit(i, q, sliceStart[q], next)
				finished[i] = true
				done++
				running[q] = -1
				s.Placements[i] = Placement{Proc: q, Start: started[i], Finish: next}
				if next > s.Makespan {
					s.Makespan = next
				}
				late := next - asg.AbsDeadline[i]
				if late > s.MaxLateness {
					s.MaxLateness = late
				}
				if late > 0 {
					s.Feasible = false
					s.Missed = append(s.Missed, i)
				}
				s.Order = append(s.Order, i)
			}
		}
		now = next
	}
	sort.Ints(s.Missed)
	return s, nil
}
