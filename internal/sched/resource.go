package sched

import (
	"fmt"
	"sort"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// ResourceTable returns a release-time table sized for the largest
// resource index used by any task (empty when the application uses no
// exclusive resources). It is exported for the sim package's fault-
// injected executor, which replays the dispatcher's resource
// bookkeeping outside this package.
func ResourceTable(g *taskgraph.Graph) []rtime.Time {
	max := -1
	for _, t := range g.Tasks() {
		for _, r := range t.Resources {
			if r > max {
				max = r
			}
		}
	}
	return make([]rtime.Time, max+1)
}

// usesResources reports whether any task declares a resource
// requirement.
func usesResources(g *taskgraph.Graph) bool {
	for _, t := range g.Tasks() {
		if len(t.Resources) > 0 {
			return true
		}
	}
	return false
}

// verifyResources checks that no two tasks sharing an exclusive
// resource overlap in time; it is part of Verify and of sim.Replay's
// obligations for resource-bearing applications.
func verifyResources(g *taskgraph.Graph, s *Schedule) error {
	type hold struct {
		task       int
		start, end rtime.Time
	}
	perRes := map[int][]hold{}
	for i, t := range g.Tasks() {
		pl := s.Placements[i]
		if pl.Proc < 0 {
			continue
		}
		for _, r := range t.Resources {
			perRes[r] = append(perRes[r], hold{i, pl.Start, pl.Finish})
		}
	}
	for r, holds := range perRes {
		sort.Slice(holds, func(a, b int) bool { return holds[a].start < holds[b].start })
		for i := 1; i < len(holds); i++ {
			if holds[i].start < holds[i-1].end {
				return fmt.Errorf("sched: resource %d held by tasks %d and %d concurrently",
					r, holds[i-1].task, holds[i].task)
			}
		}
	}
	return nil
}
