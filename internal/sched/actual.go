package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// DispatchActual simulates the time-driven dispatcher when tasks finish
// *earlier* than their worst-case bound: task i executes for
// ceil(frac[i] · WCET) time units on whichever class it lands on
// (minimum one unit). The paper's model treats cᵢ as an upper bound
// (§3.2), so at run time tasks may complete early — and, notoriously,
// earlier completions can *break* a non-preemptive schedule that was
// feasible under full WCETs (the Graham scheduling anomaly: finishing
// early changes which tasks are ready at each dispatch instant).
// DispatchActual makes that effect measurable.
//
// Deadline misses are still judged against the assigned windows. The
// returned schedule reflects actual execution, so it intentionally
// fails Verify's WCET-exactness check.
func DispatchActual(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, frac []float64) (*Schedule, error) {
	n := g.NumTasks()
	if len(frac) != n {
		return nil, fmt.Errorf("sched: %d fractions for %d tasks", len(frac), n)
	}
	for i, f := range frac {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("sched: frac[%d] = %v outside (0, 1]", i, f)
		}
	}
	if len(asg.Arrival) != n || len(asg.AbsDeadline) != n {
		return nil, fmt.Errorf("sched: assignment covers %d tasks, graph has %d", len(asg.Arrival), n)
	}
	for i := 0; i < n; i++ {
		if !asg.Arrival[i].IsSet() || !asg.AbsDeadline[i].IsSet() {
			return nil, fmt.Errorf("sched: task %d has an unassigned window", i)
		}
	}

	exec := func(i, class int) rtime.Time {
		c := rtime.Time(math.Ceil(frac[i] * float64(g.Task(i).WCET[class])))
		if c < 1 {
			c = 1
		}
		return c
	}

	s := &Schedule{
		Placements:  make([]Placement, n),
		Feasible:    true,
		MaxLateness: -rtime.Infinity,
	}
	for i := range s.Placements {
		s.Placements[i] = Placement{Proc: -1}
	}

	m := p.M()
	procFree := make([]rtime.Time, m)
	resFree := ResourceTable(g)
	done := make([]bool, n)
	placed := 0

	present := p.ClassesPresent()
	for i := 0; i < n; i++ {
		ok := false
		for k, c := range g.Task(i).WCET {
			if c.IsSet() && k < len(present) && present[k] {
				ok = true
				break
			}
		}
		if !ok {
			s.Feasible = false
			s.Missed = append(s.Missed, i)
			done[i] = true
			placed++
		}
	}

	readyOn := func(i, q int) rtime.Time {
		t := asg.Arrival[i]
		for _, pr := range g.Preds(i) {
			pl := s.Placements[pr]
			if pl.Proc < 0 {
				if done[pr] {
					continue
				}
				return rtime.Unset
			}
			arrive := pl.Finish + p.CommCost(pl.Proc, q, g.MessageItems(pr, i))
			if arrive > t {
				t = arrive
			}
		}
		for _, res := range g.Task(i).Resources {
			if resFree[res] > t {
				t = resFree[res]
			}
		}
		return t
	}

	now := rtime.Time(0)
	for placed < n {
		for {
			bestTask, bestProc := -1, -1
			var bestFinish rtime.Time
			for i := 0; i < n; i++ {
				if done[i] {
					continue
				}
				task := g.Task(i)
				if bestTask >= 0 {
					if asg.AbsDeadline[i] > asg.AbsDeadline[bestTask] ||
						(asg.AbsDeadline[i] == asg.AbsDeadline[bestTask] && i > bestTask) {
						continue
					}
				}
				tProc, tFinish := -1, rtime.Time(0)
				for q := 0; q < m; q++ {
					if task.Pinned >= 0 && q != task.Pinned {
						continue
					}
					if procFree[q] > now {
						continue
					}
					class := p.ClassOf(q)
					if !task.EligibleOn(class) {
						continue
					}
					r := readyOn(i, q)
					if !r.IsSet() || r > now {
						continue
					}
					// The dispatcher decides with WCET knowledge (it
					// cannot know the actual time in advance), so
					// processor choice uses the worst-case finish.
					finish := now + task.WCET[class]
					if tProc < 0 || finish < tFinish {
						tProc, tFinish = q, finish
					}
				}
				if tProc >= 0 {
					bestTask, bestProc, bestFinish = i, tProc, tFinish
				}
			}
			if bestTask < 0 {
				break
			}
			_ = bestFinish
			// Execution consumes the *actual* time.
			actualFinish := now + exec(bestTask, p.ClassOf(bestProc))
			s.Placements[bestTask] = Placement{Proc: bestProc, Start: now, Finish: actualFinish}
			procFree[bestProc] = actualFinish
			for _, res := range g.Task(bestTask).Resources {
				resFree[res] = actualFinish
			}
			done[bestTask] = true
			placed++
			s.Order = append(s.Order, bestTask)
			if actualFinish > s.Makespan {
				s.Makespan = actualFinish
			}
			late := actualFinish - asg.AbsDeadline[bestTask]
			if late > s.MaxLateness {
				s.MaxLateness = late
			}
			if late > 0 {
				s.Feasible = false
				s.Missed = append(s.Missed, bestTask)
			}
		}
		if placed == n {
			break
		}
		next := rtime.Infinity
		for q := 0; q < m; q++ {
			if procFree[q] > now && procFree[q] < next {
				next = procFree[q]
			}
		}
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			for q := 0; q < m; q++ {
				if g.Task(i).Pinned >= 0 && q != g.Task(i).Pinned {
					continue
				}
				if !g.Task(i).EligibleOn(p.ClassOf(q)) {
					continue
				}
				if r := readyOn(i, q); r.IsSet() && r > now && r < next {
					next = r
				}
			}
		}
		if next == rtime.Infinity {
			for i := 0; i < n; i++ {
				if !done[i] {
					done[i] = true
					placed++
					s.Feasible = false
					s.Missed = append(s.Missed, i)
				}
			}
			break
		}
		now = next
	}
	sort.Ints(s.Missed)
	return s, nil
}
