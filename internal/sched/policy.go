package sched

import (
	"fmt"

	"repro/internal/rtime"
	"repro/internal/slicing"
)

// Policy selects which ready task a work-conserving dispatcher picks
// when a processor is free — the axis the paper's future work (§7.3)
// proposes exploring beyond deadline-driven dispatching.
type Policy int

const (
	// EDFPolicy picks the closest absolute deadline (the paper's
	// baseline, §5.4).
	EDFPolicy Policy = iota
	// DMPolicy (deadline-monotonic) picks the smallest relative
	// deadline — a static priority per task.
	DMPolicy
	// FIFOPolicy picks the earliest arrival time.
	FIFOPolicy
	// LLFPolicy (least laxity first) picks the smallest dynamic laxity
	// D − t − c̄, re-evaluated at each dispatch instant with the task's
	// best eligible WCET.
	LLFPolicy
)

// Policies lists every dispatch policy.
var Policies = []Policy{EDFPolicy, DMPolicy, FIFOPolicy, LLFPolicy}

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case EDFPolicy:
		return "EDF"
	case DMPolicy:
		return "DM"
	case FIFOPolicy:
		return "FIFO"
	case LLFPolicy:
		return "LLF"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// key returns the priority value of task i at instant now under the
// policy (smaller = more urgent). minC is the task's smallest eligible
// WCET, used by LLF.
func (p Policy) key(asg *slicing.Assignment, i int, now, minC rtime.Time) rtime.Time {
	switch p {
	case DMPolicy:
		return asg.RelDeadline[i]
	case FIFOPolicy:
		return asg.Arrival[i]
	case LLFPolicy:
		return asg.AbsDeadline[i] - now - minC
	}
	return asg.AbsDeadline[i]
}
