package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

func c1(v rtime.Time) []rtime.Time { return []rtime.Time{v} }

// manual builds an assignment directly, bypassing the slicer, so the
// scheduler can be tested in isolation.
func manual(arrivals, deadlines []rtime.Time) *slicing.Assignment {
	rel := make([]rtime.Time, len(arrivals))
	for i := range rel {
		rel[i] = deadlines[i] - arrivals[i]
	}
	return &slicing.Assignment{Arrival: arrivals, AbsDeadline: deadlines, RelDeadline: rel}
}

func TestSingleTask(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("", c1(10), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	s, err := EDF(g, p, manual([]rtime.Time{0}, []rtime.Time{10}))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible || s.Placements[0].Start != 0 || s.Placements[0].Finish != 10 {
		t.Errorf("placement = %+v, feasible = %v", s.Placements[0], s.Feasible)
	}
	if s.MaxLateness != 0 || s.Makespan != 10 {
		t.Errorf("lateness = %d, makespan = %d", s.MaxLateness, s.Makespan)
	}
}

func TestDeadlineMiss(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("", c1(10), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	s, err := EDF(g, p, manual([]rtime.Time{0}, []rtime.Time{9}))
	if err != nil {
		t.Fatal(err)
	}
	if s.Feasible {
		t.Error("10-unit task in 9-unit window reported feasible")
	}
	if s.MaxLateness != 1 {
		t.Errorf("MaxLateness = %d, want 1", s.MaxLateness)
	}
	if len(s.Missed) != 1 || s.Missed[0] != 0 {
		t.Errorf("Missed = %v", s.Missed)
	}
}

func TestEDFOrderByDeadline(t *testing.T) {
	// Two independent tasks on one processor: the tighter deadline runs
	// first even though it has the higher ID.
	g := taskgraph.NewGraph(1)
	g.MustAddTask("slack", c1(10), 0)
	g.MustAddTask("tight", c1(10), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	s, err := EDF(g, p, manual([]rtime.Time{0, 0}, []rtime.Time{40, 15}))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible {
		t.Fatalf("should be feasible: %+v", s)
	}
	if s.Placements[1].Start != 0 || s.Placements[0].Start != 10 {
		t.Errorf("EDF order wrong: %+v", s.Placements)
	}
	if len(s.Order) != 2 || s.Order[0] != 1 {
		t.Errorf("Order = %v, want tight first", s.Order)
	}
}

func TestArrivalTimeRespected(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("", c1(5), 0)
	g.MustFreeze()
	p := arch.Homogeneous(2)
	s, err := EDF(g, p, manual([]rtime.Time{20}, []rtime.Time{30}))
	if err != nil {
		t.Fatal(err)
	}
	if s.Placements[0].Start != 20 {
		t.Errorf("start = %d, want arrival 20", s.Placements[0].Start)
	}
}

func TestCommunicationDelaysRemoteSuccessor(t *testing.T) {
	// a → b with a 5-item message. With m=2 and a second task hogging
	// proc 0, b on proc 1 pays the bus cost.
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(10), 0)
	b := g.MustAddTask("b", c1(10), 0)
	g.MustAddArc(a.ID, b.ID, 5)
	g.MustFreeze()

	// One processor: co-located, no comm cost.
	s1, err := EDF(g, arch.Homogeneous(1), manual([]rtime.Time{0, 10}, []rtime.Time{10, 25}))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Placements[b.ID].Start != 10 {
		t.Errorf("co-located successor starts at %d, want 10", s1.Placements[b.ID].Start)
	}

	// Same-processor placement also wins on two processors, because the
	// free co-located start (10) beats the remote start (15).
	s2, err := EDF(g, arch.Homogeneous(2), manual([]rtime.Time{0, 10}, []rtime.Time{10, 25}))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Placements[b.ID].Proc != s2.Placements[a.ID].Proc {
		t.Error("scheduler should co-locate to dodge the bus delay")
	}
	if s2.Placements[b.ID].Start != 10 {
		t.Errorf("start = %d, want 10", s2.Placements[b.ID].Start)
	}
}

func TestRemotePlacementPaysBus(t *testing.T) {
	// a → b, but b is ineligible on a's processor class, forcing a
	// remote placement that pays the 5-unit message delay.
	g := taskgraph.NewGraph(2)
	a := g.MustAddTask("a", []rtime.Time{10, rtime.Unset}, 0)
	b := g.MustAddTask("b", []rtime.Time{rtime.Unset, 10}, 0)
	g.MustAddArc(a.ID, b.ID, 5)
	g.MustFreeze()
	p := arch.MustNew(arch.Unrelated,
		[]arch.Class{{Name: "x"}, {Name: "y"}}, []int{0, 1}, arch.Bus{DelayPerItem: 1})
	s, err := EDF(g, p, manual([]rtime.Time{0, 10}, []rtime.Time{10, 40}))
	if err != nil {
		t.Fatal(err)
	}
	if s.Placements[b.ID].Proc != 1 {
		t.Fatalf("b on proc %d, want 1", s.Placements[b.ID].Proc)
	}
	if s.Placements[b.ID].Start != 15 { // finish 10 + 5 bus units
		t.Errorf("b starts at %d, want 15", s.Placements[b.ID].Start)
	}
	if err := Verify(g, p, manual([]rtime.Time{0, 10}, []rtime.Time{10, 40}), s); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestHeterogeneousPrefersEarlierFinishOnTie(t *testing.T) {
	// Both processors are free at 0; class 1 runs the task faster. Start
	// times tie, so the faster finish should win.
	g := taskgraph.NewGraph(2)
	g.MustAddTask("", []rtime.Time{20, 10}, 0)
	g.MustFreeze()
	p := arch.MustNew(arch.Unrelated,
		[]arch.Class{{Name: "slow"}, {Name: "fast"}}, []int{0, 1}, arch.Bus{DelayPerItem: 1})
	s, err := EDF(g, p, manual([]rtime.Time{0}, []rtime.Time{30}))
	if err != nil {
		t.Fatal(err)
	}
	if s.Placements[0].Proc != 1 || s.Placements[0].Finish != 10 {
		t.Errorf("placement = %+v, want fast processor", s.Placements[0])
	}
}

func TestNoEligibleProcessor(t *testing.T) {
	g := taskgraph.NewGraph(2)
	g.MustAddTask("", []rtime.Time{10, rtime.Unset}, 0)
	g.MustFreeze()
	// Platform only hosts class 1.
	p := arch.MustNew(arch.Unrelated,
		[]arch.Class{{Name: "x"}, {Name: "y"}}, []int{1}, arch.Bus{DelayPerItem: 1})
	s, err := EDF(g, p, manual([]rtime.Time{0}, []rtime.Time{100}))
	if err != nil {
		t.Fatal(err)
	}
	if s.Feasible || s.Placements[0].Proc != -1 {
		t.Error("unplaceable task should make the schedule infeasible")
	}
	if len(s.Missed) != 1 {
		t.Errorf("Missed = %v", s.Missed)
	}
}

func TestAssignmentShapeValidation(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("", c1(5), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	if _, err := EDF(g, p, manual(nil, nil)); err == nil {
		t.Error("short assignment accepted")
	}
	bad := manual([]rtime.Time{rtime.Unset}, []rtime.Time{10})
	if _, err := EDF(g, p, bad); err == nil {
		t.Error("unset arrival accepted")
	}
}

func TestNonPreemptiveContention(t *testing.T) {
	// Three 10-unit tasks, one processor, overlapping windows with
	// deadlines at 10/20/30: feasible only if EDF runs them back to back.
	g := taskgraph.NewGraph(1)
	for i := 0; i < 3; i++ {
		g.MustAddTask("", c1(10), 0)
	}
	g.MustFreeze()
	p := arch.Homogeneous(1)
	s, err := EDF(g, p, manual([]rtime.Time{0, 0, 0}, []rtime.Time{30, 10, 20}))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible {
		t.Fatalf("EDF should pack 3×10 into [0,30): %+v", s.Placements)
	}
	if s.Placements[1].Start != 0 || s.Placements[2].Start != 10 || s.Placements[0].Start != 20 {
		t.Errorf("EDF sequence wrong: %+v", s.Placements)
	}
}

// End-to-end: slicing output feeds the scheduler, and Verify agrees.
func TestSliceThenSchedule(t *testing.T) {
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(10), 0)
	b := g.MustAddTask("b", c1(20), 0)
	c := g.MustAddTask("c", c1(20), 0)
	d := g.MustAddTask("d", c1(10), 0)
	g.MustAddArc(a.ID, b.ID, 1)
	g.MustAddArc(a.ID, c.ID, 1)
	g.MustAddArc(b.ID, d.ID, 1)
	g.MustAddArc(c.ID, d.ID, 1)
	g.Task(d.ID).ETEDeadline = 80
	g.MustFreeze()
	est := []rtime.Time{10, 20, 20, 10}
	asg, err := slicing.Distribute(g, est, 2, slicing.AdaptL(), slicing.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p := arch.Homogeneous(2)
	s, err := EDF(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible {
		t.Fatalf("diamond with OLR 80/60 should schedule on 2 procs: missed %v, windows a=%v D=%v",
			s.Missed, asg.Arrival, asg.AbsDeadline)
	}
	if err := Verify(g, p, asg, s); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// Property: every schedule the EDF scheduler emits passes the
// independent Verify check, on random workloads and platforms.
func TestEDFAlwaysVerifies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nClasses := 1 + rng.Intn(3)
		g := taskgraph.NewGraph(nClasses)
		n := 3 + rng.Intn(20)
		for i := 0; i < n; i++ {
			w := make([]rtime.Time, nClasses)
			ok := false
			for k := range w {
				if rng.Intn(20) == 0 {
					w[k] = rtime.Unset
				} else {
					w[k] = rtime.Time(5 + rng.Intn(30))
					ok = true
				}
			}
			if !ok {
				w[0] = 10
			}
			g.MustAddTask("", w, 0)
		}
		for j := 1; j < n; j++ {
			if rng.Intn(3) > 0 {
				g.MustAddArc(rng.Intn(j), j, rtime.Time(rng.Intn(4)))
			}
		}
		g.MustFreeze()
		for _, out := range g.Outputs() {
			g.Task(out).ETEDeadline = rtime.Time(100 + rng.Intn(900))
		}
		classOf := make([]int, 1+rng.Intn(6))
		for q := range classOf {
			classOf[q] = rng.Intn(nClasses)
		}
		classes := make([]arch.Class, nClasses)
		p := arch.MustNew(arch.Unrelated, classes, classOf, arch.Bus{DelayPerItem: 1})

		est := make([]rtime.Time, n)
		for i := range est {
			est[i] = 10 // crude estimate; scheduler only needs windows
		}
		asg, err := slicing.Distribute(g, est, p.M(), slicing.AdaptG(), slicing.DefaultParams())
		if err != nil {
			return false
		}
		s, err := EDF(g, p, asg)
		if err != nil {
			t.Logf("seed %d: EDF: %v", seed, err)
			return false
		}
		if err := Verify(g, p, asg, s); err != nil {
			t.Logf("seed %d: Verify: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDispatchHonorsNetworkTopology(t *testing.T) {
	// a → b with a 6-item message; b is ineligible on a's class, so it
	// must run remotely. With the shared bus the message costs 6; a
	// dedicated link between procs 0 and 1 makes it free, so b starts
	// right at a's finish.
	g := taskgraph.NewGraph(2)
	a := g.MustAddTask("a", []rtime.Time{10, rtime.Unset}, 0)
	b := g.MustAddTask("b", []rtime.Time{rtime.Unset, 10}, 0)
	g.MustAddArc(a.ID, b.ID, 6)
	g.MustFreeze()
	asg := manual([]rtime.Time{0, 10}, []rtime.Time{10, 40})

	p := arch.MustNew(arch.Unrelated,
		[]arch.Class{{Name: "x"}, {Name: "y"}}, []int{0, 1}, arch.Bus{DelayPerItem: 1})
	s, err := Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Placements[b.ID].Start != 16 {
		t.Fatalf("bus start = %d, want 16", s.Placements[b.ID].Start)
	}

	p.Net = arch.NewNetwork(2).SetLink(0, 1, 0)
	s2, err := Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Placements[b.ID].Start != 10 {
		t.Errorf("linked start = %d, want 10", s2.Placements[b.ID].Start)
	}
	if err := Verify(g, p, asg, s2); err != nil {
		t.Errorf("Verify with network: %v", err)
	}
}
