package sched

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

func fullFrac(n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = 1
	}
	return f
}

func TestActualFullFractionMatchesDispatch(t *testing.T) {
	cfg := gen.Default(3)
	cfg.Seed = 31
	w := gen.MustGenerate(cfg)
	est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Dispatch(w.Graph, w.Platform, asg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DispatchActual(w.Graph, w.Platform, asg, fullFrac(w.Graph.NumTasks()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Placements {
		if a.Placements[i] != b.Placements[i] {
			t.Fatalf("task %d: %+v vs %+v", i, a.Placements[i], b.Placements[i])
		}
	}
}

func TestActualValidation(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("", c1(10), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := manual([]rtime.Time{0}, []rtime.Time{20})
	if _, err := DispatchActual(g, p, asg, nil); err == nil {
		t.Error("missing fractions accepted")
	}
	if _, err := DispatchActual(g, p, asg, []float64{0}); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := DispatchActual(g, p, asg, []float64{1.5}); err == nil {
		t.Error("fraction above 1 accepted")
	}
}

// The Graham-style anomaly, constructed deterministically: a schedule
// that is feasible under full WCETs becomes infeasible when one task
// finishes early, because the early completion lets the dispatcher
// commit a long, later-deadline task before the tight one arrives.
func TestEarlyCompletionAnomaly(t *testing.T) {
	g := taskgraph.NewGraph(1)
	x := g.MustAddTask("X", c1(12), 0) // deadline 12: always dispatched first
	y := g.MustAddTask("Y", c1(14), 0) // slack task
	z := g.MustAddTask("Z", c1(14), 0) // tight, arrives at 11
	_ = x
	_ = y
	_ = z
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := manual(
		[]rtime.Time{0, 0, 11},
		[]rtime.Time{12, 40, 26})

	// Full WCET: X [0,12); at 12 both Y and Z are ready, EDF picks Z
	// (deadline 26 < 40) → Z [12,26) meets, Y [26,40) meets.
	full, err := DispatchActual(g, p, asg, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Feasible {
		t.Fatalf("full-WCET run should be feasible: %+v", full.Placements)
	}

	// X finishes early (10 of 12): at 10 only Y is ready → Y [10,24);
	// Z arrives at 11, waits, runs [24,38) and misses 26.
	early, err := DispatchActual(g, p, asg, []float64{10.0 / 12.0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if early.Feasible {
		t.Fatalf("early completion should trigger the anomaly: %+v", early.Placements)
	}
	if len(early.Missed) != 1 || early.Missed[0] != z.ID {
		t.Errorf("missed = %v, want [Z]", early.Missed)
	}
}

// Statistical view of the anomaly: over random workloads with random
// early completions, count both directions (early completion rescues a
// failing schedule vs breaks a feasible one). Rescues should dominate —
// shorter work usually helps — but breaks must exist.
func TestAnomalyRates(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical study")
	}
	rescued, broken := 0, 0
	const graphs = 200
	for idx := 0; idx < graphs; idx++ {
		cfg := gen.Default(3)
		cfg.OLR = 0.55
		cfg.Seed = gen.SubSeed(3, idx)
		w := gen.MustGenerate(cfg)
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			t.Fatal(err)
		}
		asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
		if err != nil {
			t.Fatal(err)
		}
		full, err := Dispatch(w.Graph, w.Platform, asg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(gen.SubSeed(4, idx)))
		frac := make([]float64, w.Graph.NumTasks())
		for i := range frac {
			frac[i] = 0.5 + 0.5*rng.Float64()
		}
		actual, err := DispatchActual(w.Graph, w.Platform, asg, frac)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case !full.Feasible && actual.Feasible:
			rescued++
		case full.Feasible && !actual.Feasible:
			broken++
		}
	}
	t.Logf("rescued %d, broken (anomaly) %d of %d", rescued, broken, graphs)
	if rescued == 0 {
		t.Error("early completion never helped — suspicious")
	}
	// The anomaly is real but rare; do not demand it on every sample
	// set, only that the mechanism is not impossibly frequent.
	if broken > graphs/4 {
		t.Errorf("anomaly rate %d/%d implausibly high", broken, graphs)
	}
}
