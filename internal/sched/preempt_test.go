package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

func TestPreemptiveSingleTask(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("", c1(10), 0)
	g.MustFreeze()
	s, err := DispatchPreemptive(g, arch.Homogeneous(1), manual([]rtime.Time{0}, []rtime.Time{10}))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible || s.Placements[0].Finish != 10 || s.Preemptions != 0 {
		t.Errorf("got %+v preemptions=%d", s.Placements[0], s.Preemptions)
	}
	if len(s.Slices) != 1 || s.Slices[0] != (Slice{Task: 0, Proc: 0, Start: 0, End: 10}) {
		t.Errorf("slices = %+v", s.Slices)
	}
}

func TestPreemptionRescuesTightArrival(t *testing.T) {
	// Long slack task starts at 0; a tight task arrives at 5 with
	// deadline 20. Non-preemptive dispatch runs the long task to 30 and
	// the tight one misses; preemptive EDF preempts and saves it.
	g := taskgraph.NewGraph(1)
	g.MustAddTask("long", c1(30), 0)
	g.MustAddTask("tight", c1(10), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := manual([]rtime.Time{0, 5}, []rtime.Time{60, 20})

	np, err := Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if np.Feasible {
		t.Fatal("non-preemptive dispatch should miss the tight task")
	}

	pr, err := DispatchPreemptive(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Feasible {
		t.Fatalf("preemptive EDF should save the tight task: %+v", pr.Placements)
	}
	if pr.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", pr.Preemptions)
	}
	// The long task runs 0-5 and 15-40 (two slices); tight runs 5-15.
	if pr.Placements[1].Start != 5 || pr.Placements[1].Finish != 15 {
		t.Errorf("tight placement = %+v", pr.Placements[1])
	}
	if pr.Placements[0].Finish != 40 {
		t.Errorf("long finish = %d, want 40", pr.Placements[0].Finish)
	}
	if len(pr.Slices) != 3 {
		t.Errorf("slices = %+v", pr.Slices)
	}
}

func TestPreemptiveSlicesAccountExactWork(t *testing.T) {
	// Total slice length per task must equal its WCET on the bound
	// class, and slices on one processor must not overlap.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(4)
		cfg := gen.Default(m)
		cfg.Seed = seed
		cfg.OLR = 0.5
		w, err := gen.Generate(cfg)
		if err != nil {
			return false
		}
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			return false
		}
		asg, err := slicing.Distribute(w.Graph, est, m, slicing.AdaptL(), slicing.CalibratedParams())
		if err != nil {
			return false
		}
		s, err := DispatchPreemptive(w.Graph, w.Platform, asg)
		if err != nil {
			return false
		}
		work := make(map[int]rtime.Time)
		procsOf := make(map[int]map[int]bool)
		perProc := make(map[int][]Slice)
		for _, sl := range s.Slices {
			if sl.End <= sl.Start {
				return false
			}
			work[sl.Task] += sl.End - sl.Start
			if procsOf[sl.Task] == nil {
				procsOf[sl.Task] = map[int]bool{}
			}
			procsOf[sl.Task][sl.Proc] = true
			perProc[sl.Proc] = append(perProc[sl.Proc], sl)
		}
		for i := 0; i < w.Graph.NumTasks(); i++ {
			pl := s.Placements[i]
			if pl.Proc < 0 {
				continue
			}
			want := w.Graph.Task(i).WCET[w.Platform.ClassOf(pl.Proc)]
			if len(procsOf[i]) == 1 {
				// No migration: total execution equals the WCET on the
				// single class exactly.
				if work[i] != want {
					t.Logf("seed %d: task %d executed %d, WCET %d", seed, i, work[i], want)
					return false
				}
			} else if work[i] <= 0 {
				return false // migrated tasks still execute real work
			}
			if pl.Start < asg.Arrival[i] {
				return false
			}
		}
		for _, slices := range perProc {
			for a := range slices {
				for b := range slices {
					if a != b && slices[a].Start < slices[b].End && slices[b].Start < slices[a].End {
						return false
					}
				}
			}
		}
		// Precedence: a task's first slice starts at/after each
		// predecessor's finish.
		for _, arc := range w.Graph.Arcs() {
			from, to := s.Placements[arc.From], s.Placements[arc.To]
			if from.Proc < 0 || to.Proc < 0 {
				continue
			}
			if to.Start < from.Finish {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPreemptiveNeverWorseOnGeneratedWorkloads(t *testing.T) {
	// Preemptive EDF should succeed at least as often as non-preemptive
	// dispatch on the paper's workloads (the paper's non-preemptive
	// choice is a platform constraint, not a performance one).
	npSucc, prSucc := 0, 0
	const graphs = 60
	for idx := 0; idx < graphs; idx++ {
		cfg := gen.Default(3)
		cfg.OLR = 0.5
		cfg.Seed = gen.SubSeed(11, idx)
		w := gen.MustGenerate(cfg)
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			t.Fatal(err)
		}
		asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
		if err != nil {
			t.Fatal(err)
		}
		np, err := Dispatch(w.Graph, w.Platform, asg)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := DispatchPreemptive(w.Graph, w.Platform, asg)
		if err != nil {
			t.Fatal(err)
		}
		if np.Feasible {
			npSucc++
		}
		if pr.Feasible {
			prSucc++
		}
	}
	t.Logf("non-preemptive %d/%d, preemptive %d/%d", npSucc, graphs, prSucc, graphs)
	if prSucc < npSucc-3 { // allow a little noise from binding anomalies
		t.Errorf("preemptive (%d) markedly worse than non-preemptive (%d)", prSucc, npSucc)
	}
}

func TestPreemptiveUnplaceableTask(t *testing.T) {
	g := taskgraph.NewGraph(2)
	g.MustAddTask("", []rtime.Time{10, rtime.Unset}, 0)
	g.MustAddTask("", []rtime.Time{rtime.Unset, 10}, 0)
	g.MustAddArc(0, 1, 0)
	g.MustFreeze()
	// Only class 1 present: task 0 unplaceable, task 1 stuck behind it.
	p := arch.MustNew(arch.Unrelated, []arch.Class{{}, {}}, []int{1}, arch.Bus{DelayPerItem: 1})
	s, err := DispatchPreemptive(g, p, manual([]rtime.Time{0, 0}, []rtime.Time{50, 90}))
	if err != nil {
		t.Fatal(err)
	}
	if s.Feasible || len(s.Missed) != 1 || s.Missed[0] != 0 {
		t.Errorf("missed = %v (task 1 can still run: its doomed pred is skipped)", s.Missed)
	}
}
