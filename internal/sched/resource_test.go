package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

// twoSharers builds two independent tasks holding the same resource.
func twoSharers(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(10), 0)
	b := g.MustAddTask("b", c1(10), 0)
	a.Resources = []int{0}
	b.Resources = []int{0}
	g.MustFreeze()
	return g
}

func TestDispatchSerializesResourceSharers(t *testing.T) {
	g := twoSharers(t)
	p := arch.Homogeneous(2) // two processors, but one shared resource
	asg := manual([]rtime.Time{0, 0}, []rtime.Time{30, 30})
	s, err := Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible {
		t.Fatalf("serial execution fits in [0,30): %+v", s.Placements)
	}
	a, b := s.Placements[0], s.Placements[1]
	if a.Start < b.Finish && b.Start < a.Finish {
		t.Errorf("resource sharers overlap: %+v %+v", a, b)
	}
	if err := Verify(g, p, asg, s); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestEDFPlannerSerializesResourceSharers(t *testing.T) {
	g := twoSharers(t)
	p := arch.Homogeneous(2)
	asg := manual([]rtime.Time{0, 0}, []rtime.Time{30, 30})
	s, err := EDF(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Placements[0], s.Placements[1]
	if a.Start < b.Finish && b.Start < a.Finish {
		t.Errorf("planner overlapped resource sharers: %+v %+v", a, b)
	}
	if err := Verify(g, p, asg, s); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestVerifyCatchesResourceOverlap(t *testing.T) {
	g := twoSharers(t)
	p := arch.Homogeneous(2)
	asg := manual([]rtime.Time{0, 0}, []rtime.Time{30, 30})
	s := &Schedule{Placements: []Placement{
		{Proc: 0, Start: 0, Finish: 10},
		{Proc: 1, Start: 5, Finish: 15}, // overlaps the resource hold
	}}
	if err := Verify(g, p, asg, s); err == nil {
		t.Error("concurrent resource hold not caught")
	}
}

func TestDistinctResourcesDoNotSerialize(t *testing.T) {
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(10), 0)
	b := g.MustAddTask("b", c1(10), 0)
	a.Resources = []int{0}
	b.Resources = []int{1}
	g.MustFreeze()
	p := arch.Homogeneous(2)
	asg := manual([]rtime.Time{0, 0}, []rtime.Time{15, 15})
	s, err := Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible || s.Placements[0].Start != 0 || s.Placements[1].Start != 0 {
		t.Errorf("independent resources should run in parallel: %+v", s.Placements)
	}
}

func TestResourceGuards(t *testing.T) {
	g := twoSharers(t)
	p := arch.Homogeneous(2)
	asg := manual([]rtime.Time{0, 0}, []rtime.Time{30, 30})
	if _, err := InsertEDF(g, p, asg); err == nil {
		t.Error("InsertEDF should refuse resource-bearing graphs")
	}
	if _, err := DispatchPreemptive(g, p, asg); err == nil {
		t.Error("DispatchPreemptive should refuse resource-bearing graphs")
	}
}

// Property: generated resource-bearing workloads dispatch into
// schedules whose resource holds never overlap.
func TestGeneratedResourceWorkloadsSerialize(t *testing.T) {
	f := func(seed int64) bool {
		cfg := gen.Default(4)
		cfg.Seed = seed
		cfg.NumResources = 3
		cfg.ResourceProb = 0.4
		w, err := gen.Generate(cfg)
		if err != nil {
			return false
		}
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			return false
		}
		asg, err := slicing.Distribute(w.Graph, est, 4, slicing.AdaptR(), slicing.CalibratedParams())
		if err != nil {
			return false
		}
		s, err := Dispatch(w.Graph, w.Platform, asg)
		if err != nil {
			return false
		}
		if err := Verify(w.Graph, w.Platform, asg, s); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The §7.3 extension claim: on resource-heavy workloads, the
// resource-aware ADAPT-R metric should outperform plain ADAPT-L, since
// it grants extra laxity to the tasks that serialize on shared data
// structures.
func TestAdaptRBeatsAdaptLUnderResourceContention(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a few hundred pipeline runs")
	}
	lSucc, rSucc := 0, 0
	const graphs = 150
	for idx := 0; idx < graphs; idx++ {
		cfg := gen.Default(4)
		cfg.OLR = 0.6
		cfg.Seed = gen.SubSeed(5, idx)
		cfg.NumResources = 2
		cfg.ResourceProb = 0.35
		w := gen.MustGenerate(cfg)
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			t.Fatal(err)
		}
		for _, metric := range []slicing.Metric{slicing.AdaptL(), slicing.AdaptR()} {
			asg, err := slicing.Distribute(w.Graph, est, 4, metric, slicing.CalibratedParams())
			if err != nil {
				t.Fatal(err)
			}
			s, err := Dispatch(w.Graph, w.Platform, asg)
			if err != nil {
				t.Fatal(err)
			}
			if s.Feasible {
				if metric.Name() == "ADAPT-L" {
					lSucc++
				} else {
					rSucc++
				}
			}
		}
	}
	t.Logf("ADAPT-L %d/%d, ADAPT-R %d/%d", lSucc, graphs, rSucc, graphs)
	if rSucc < lSucc {
		t.Errorf("ADAPT-R (%d) should not lose to ADAPT-L (%d) under resource contention", rSucc, lSucc)
	}
}
