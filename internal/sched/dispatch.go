package sched

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Dispatch simulates the non-preemptive, time-driven task dispatching
// strategy of the paper (§1, §3.3) and is the baseline scheduler of the
// experiments: a work-conserving run-time dispatcher that, whenever a
// processor is idle, starts the ready task with the closest absolute
// deadline.
//
// A task is dispatchable on processor q at time t when its arrival time
// has been reached, all its predecessors have finished, and their
// messages have landed on q (finish + bus cost for remote predecessors).
// Unlike EDF (the planning variant in this package), the dispatcher has
// no lookahead: an idle processor takes the best currently-ready task
// even if a more urgent one arrives a moment later — the classic
// non-preemptive anomaly, and a genuine source of deadline misses that
// the deadline-distribution metrics compete to avoid.
func Dispatch(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (*Schedule, error) {
	return DispatchWith(g, p, asg, EDFPolicy)
}

// DispatchWith is Dispatch under an alternative dispatch policy (§7.3's
// policy axis): the same work-conserving time-driven dispatcher, with
// the ready-task selection rule swapped.
func DispatchWith(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, policy Policy) (*Schedule, error) {
	n := g.NumTasks()
	if len(asg.Arrival) != n || len(asg.AbsDeadline) != n {
		return nil, fmt.Errorf("sched: assignment covers %d tasks, graph has %d", len(asg.Arrival), n)
	}
	for i := 0; i < n; i++ {
		if !asg.Arrival[i].IsSet() || !asg.AbsDeadline[i].IsSet() {
			return nil, fmt.Errorf("sched: task %d has an unassigned window", i)
		}
	}

	s := &Schedule{
		Placements:  make([]Placement, n),
		Feasible:    true,
		MaxLateness: -rtime.Infinity,
	}
	for i := range s.Placements {
		s.Placements[i] = Placement{Proc: -1}
	}

	m := p.M()
	procFree := make([]rtime.Time, m)
	resFree := ResourceTable(g)
	done := make([]bool, n)
	placed := 0

	// eligibleAnywhere pre-screens tasks that can never run; minC feeds
	// the LLF policy's dynamic laxity.
	present := p.ClassesPresent()
	minC := make([]rtime.Time, n)
	for i := 0; i < n; i++ {
		minC[i] = rtime.Infinity
		if pin := g.Task(i).Pinned; pin >= 0 {
			if pin < m {
				if c := g.Task(i).WCET[p.ClassOf(pin)]; c.IsSet() {
					minC[i] = c
				}
			}
		} else {
			for k, c := range g.Task(i).WCET {
				if c.IsSet() && k < len(present) && present[k] && c < minC[i] {
					minC[i] = c
				}
			}
		}
		if minC[i] == rtime.Infinity {
			s.Feasible = false
			s.Missed = append(s.Missed, i)
			done[i] = true // treat as absent; successors become stuck too
			placed++
		}
	}

	// readyOn returns the earliest time task i could start on processor
	// q — window arrival, message landings, and the release times of
	// every exclusive resource it needs — or Unset if a predecessor has
	// not finished (or never will).
	readyOn := func(i, q int) rtime.Time {
		t := asg.Arrival[i]
		for _, pr := range g.Preds(i) {
			pl := s.Placements[pr]
			if pl.Proc < 0 {
				if done[pr] {
					continue // unplaceable predecessor: ignore, task is doomed anyway
				}
				return rtime.Unset
			}
			arrive := pl.Finish + p.CommCost(pl.Proc, q, g.MessageItems(pr, i))
			if arrive > t {
				t = arrive
			}
		}
		for _, res := range g.Task(i).Resources {
			if resFree[res] > t {
				t = resFree[res]
			}
		}
		return t
	}

	now := rtime.Time(0)
	for placed < n {
		// Dispatch loop at the current instant: repeatedly take the
		// EDF-closest task that is dispatchable on an idle processor.
		for {
			bestTask, bestProc := -1, -1
			var bestFinish rtime.Time
			for i := 0; i < n; i++ {
				if done[i] {
					continue
				}
				task := g.Task(i)
				// Skip unless strictly better under the policy before
				// probing processors.
				if bestTask >= 0 {
					ki := policy.key(asg, i, now, minC[i])
					kb := policy.key(asg, bestTask, now, minC[bestTask])
					if ki > kb || (ki == kb && i > bestTask) {
						continue
					}
				}
				tProc, tFinish := -1, rtime.Time(0)
				for q := 0; q < m; q++ {
					if task.Pinned >= 0 && q != task.Pinned {
						continue
					}
					if procFree[q] > now {
						continue
					}
					class := p.ClassOf(q)
					if !task.EligibleOn(class) {
						continue
					}
					r := readyOn(i, q)
					if !r.IsSet() || r > now {
						continue
					}
					finish := now + task.WCET[class]
					if tProc < 0 || finish < tFinish {
						tProc, tFinish = q, finish
					}
				}
				if tProc >= 0 {
					bestTask, bestProc, bestFinish = i, tProc, tFinish
				}
			}
			if bestTask < 0 {
				break
			}
			s.Placements[bestTask] = Placement{Proc: bestProc, Start: now, Finish: bestFinish}
			procFree[bestProc] = bestFinish
			for _, res := range g.Task(bestTask).Resources {
				resFree[res] = bestFinish
			}
			done[bestTask] = true
			placed++
			s.Order = append(s.Order, bestTask)
			if bestFinish > s.Makespan {
				s.Makespan = bestFinish
			}
			late := bestFinish - asg.AbsDeadline[bestTask]
			if late > s.MaxLateness {
				s.MaxLateness = late
			}
			if late > 0 {
				s.Feasible = false
				s.Missed = append(s.Missed, bestTask)
			}
		}
		if placed == n {
			break
		}

		// Advance to the next instant anything can change: a processor
		// frees, a task arrives, or a message lands.
		next := rtime.Infinity
		for q := 0; q < m; q++ {
			if procFree[q] > now && procFree[q] < next {
				next = procFree[q]
			}
		}
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			for q := 0; q < m; q++ {
				if g.Task(i).Pinned >= 0 && q != g.Task(i).Pinned {
					continue
				}
				if !g.Task(i).EligibleOn(p.ClassOf(q)) {
					continue
				}
				r := readyOn(i, q)
				if r.IsSet() && r > now && r < next {
					next = r
				}
			}
		}
		if next == rtime.Infinity {
			// Remaining tasks can never start (stuck behind unplaceable
			// predecessors).
			for i := 0; i < n; i++ {
				if !done[i] {
					done[i] = true
					placed++
					s.Feasible = false
					s.Missed = append(s.Missed, i)
				}
			}
			break
		}
		now = next
	}
	sort.Ints(s.Missed)
	return s, nil
}
