package sched

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Dispatch simulates the non-preemptive, time-driven task dispatching
// strategy of the paper (§1, §3.3) and is the baseline scheduler of the
// experiments: a work-conserving run-time dispatcher that, whenever a
// processor is idle, starts the ready task with the closest absolute
// deadline.
//
// A task is dispatchable on processor q at time t when its arrival time
// has been reached, all its predecessors have finished, and their
// messages have landed on q (finish + bus cost for remote predecessors).
// Unlike EDF (the planning variant in this package), the dispatcher has
// no lookahead: an idle processor takes the best currently-ready task
// even if a more urgent one arrives a moment later — the classic
// non-preemptive anomaly, and a genuine source of deadline misses that
// the deadline-distribution metrics compete to avoid.
func Dispatch(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (*Schedule, error) {
	return DispatchScratch(g, p, asg, EDFPolicy, nil)
}

// DispatchWith is Dispatch under an alternative dispatch policy (§7.3's
// policy axis): the same work-conserving time-driven dispatcher, with
// the ready-task selection rule swapped.
func DispatchWith(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, policy Policy) (*Schedule, error) {
	return DispatchScratch(g, p, asg, policy, nil)
}

// DispatchScratch is DispatchWith running over reusable scratch memory
// (nil allocates internally). The schedule is identical for any scratch
// state and never aliases it.
//
// Readiness is tracked incrementally instead of rescanning predecessors:
// landing[i·m+q] carries the latest message-landing time of task i on
// processor q (seeded with the arrival time, folded in as predecessors
// are placed), and predsLeft[i] counts unfinished predecessors — task i
// is dispatchable on q once predsLeft hits zero and
// max(landing[i·m+q], resource floor) has been reached.
func DispatchScratch(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, policy Policy, ws *Scratch) (*Schedule, error) {
	n := g.NumTasks()
	if len(asg.Arrival) != n || len(asg.AbsDeadline) != n {
		return nil, fmt.Errorf("sched: assignment covers %d tasks, graph has %d", len(asg.Arrival), n)
	}
	for i := 0; i < n; i++ {
		if !asg.Arrival[i].IsSet() || !asg.AbsDeadline[i].IsSet() {
			return nil, fmt.Errorf("sched: task %d has an unassigned window", i)
		}
	}

	s := &Schedule{
		Placements:  make([]Placement, n),
		Feasible:    true,
		MaxLateness: -rtime.Infinity,
	}
	for i := range s.Placements {
		s.Placements[i] = Placement{Proc: -1}
	}

	m := p.M()
	if ws == nil {
		ws = &Scratch{}
	}
	ws.ensure(g, n, m)
	procFree, resFree := ws.procFree, ws.resFree
	done, minC := ws.done, ws.minC
	predsLeft, landing := ws.predsLeft, ws.landing
	placed := 0

	for i := 0; i < n; i++ {
		predsLeft[i] = int32(len(g.Preds(i)))
		a := asg.Arrival[i]
		for q := i * m; q < (i+1)*m; q++ {
			landing[q] = a
		}
	}

	// eligibleAnywhere pre-screens tasks that can never run; minC feeds
	// the LLF policy's dynamic laxity.
	present := p.ClassesPresent()
	for i := 0; i < n; i++ {
		minC[i] = rtime.Infinity
		if pin := g.Task(i).Pinned; pin >= 0 {
			if pin < m {
				if c := g.Task(i).WCET[p.ClassOf(pin)]; c.IsSet() {
					minC[i] = c
				}
			}
		} else {
			for k, c := range g.Task(i).WCET {
				if c.IsSet() && k < len(present) && present[k] && c < minC[i] {
					minC[i] = c
				}
			}
		}
		if minC[i] == rtime.Infinity {
			s.Feasible = false
			s.Missed = append(s.Missed, i)
			done[i] = true // treat as absent; successors become stuck too
			placed++
			// An unplaceable predecessor never finishes and never sends:
			// successors wait on it no further (they are doomed to stall
			// at Infinity unless every other input lands).
			for _, u := range g.Succs(i) {
				predsLeft[u]--
			}
		}
	}

	// resFloor is the release time of the latest exclusive resource task
	// i needs — processor-independent, so hoisted out of the q probe.
	resFloor := func(i int) rtime.Time {
		t := rtime.Time(0)
		for _, res := range g.Task(i).Resources {
			if resFree[res] > t {
				t = resFree[res]
			}
		}
		return t
	}

	// The ready list holds exactly the tasks with every predecessor
	// finished and not yet placed; tasks enter when their counter hits
	// zero and leave when placed. Scanning it instead of all n tasks
	// cannot change the outcome — the selection rule (policy key, then
	// task id) is a strict total order, so the winner is scan-order
	// independent.
	ready := ws.ready[:0]
	for i := 0; i < n; i++ {
		if !done[i] && predsLeft[i] == 0 {
			ready = append(ready, i)
		}
	}

	now := rtime.Time(0)
	for placed < n {
		// Dispatch loop at the current instant: repeatedly take the
		// EDF-closest task that is dispatchable on an idle processor.
		for {
			bestTask, bestProc, bestIdx := -1, -1, -1
			var bestFinish rtime.Time
			for ri, i := range ready {
				task := g.Task(i)
				// Skip unless strictly better under the policy before
				// probing processors.
				if bestTask >= 0 {
					ki := policy.key(asg, i, now, minC[i])
					kb := policy.key(asg, bestTask, now, minC[bestTask])
					if ki > kb || (ki == kb && i > bestTask) {
						continue
					}
				}
				floor := resFloor(i)
				if floor > now {
					continue
				}
				base := i * m
				tProc, tFinish := -1, rtime.Time(0)
				for q := 0; q < m; q++ {
					if task.Pinned >= 0 && q != task.Pinned {
						continue
					}
					if procFree[q] > now || landing[base+q] > now {
						continue
					}
					class := p.ClassOf(q)
					if !task.EligibleOn(class) {
						continue
					}
					finish := now + task.WCET[class]
					if tProc < 0 || finish < tFinish {
						tProc, tFinish = q, finish
					}
				}
				if tProc >= 0 {
					bestTask, bestProc, bestFinish, bestIdx = i, tProc, tFinish, ri
				}
			}
			if bestTask < 0 {
				break
			}
			s.Placements[bestTask] = Placement{Proc: bestProc, Start: now, Finish: bestFinish}
			procFree[bestProc] = bestFinish
			for _, res := range g.Task(bestTask).Resources {
				resFree[res] = bestFinish
			}
			done[bestTask] = true
			placed++
			ready[bestIdx] = ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			s.Order = append(s.Order, bestTask)
			for _, u := range g.Succs(bestTask) {
				predsLeft[u]--
				if predsLeft[u] == 0 && !done[u] {
					ready = append(ready, u)
				}
				items := g.MessageItems(bestTask, u)
				ub := u * m
				for q := 0; q < m; q++ {
					if arrive := bestFinish + p.CommCost(bestProc, q, items); arrive > landing[ub+q] {
						landing[ub+q] = arrive
					}
				}
			}
			if bestFinish > s.Makespan {
				s.Makespan = bestFinish
			}
			late := bestFinish - asg.AbsDeadline[bestTask]
			if late > s.MaxLateness {
				s.MaxLateness = late
			}
			if late > 0 {
				s.Feasible = false
				s.Missed = append(s.Missed, bestTask)
			}
		}
		if placed == n {
			break
		}

		// Advance to the next instant anything can change: a processor
		// frees, a task arrives, or a message lands.
		next := rtime.Infinity
		for q := 0; q < m; q++ {
			if procFree[q] > now && procFree[q] < next {
				next = procFree[q]
			}
		}
		for _, i := range ready {
			task := g.Task(i)
			floor := resFloor(i)
			base := i * m
			for q := 0; q < m; q++ {
				if task.Pinned >= 0 && q != task.Pinned {
					continue
				}
				if !task.EligibleOn(p.ClassOf(q)) {
					continue
				}
				r := landing[base+q]
				if floor > r {
					r = floor
				}
				if r > now && r < next {
					next = r
				}
			}
		}
		if next == rtime.Infinity {
			// Remaining tasks can never start (stuck behind unplaceable
			// predecessors).
			for i := 0; i < n; i++ {
				if !done[i] {
					done[i] = true
					placed++
					s.Feasible = false
					s.Missed = append(s.Missed, i)
				}
			}
			break
		}
		now = next
	}
	sort.Ints(s.Missed)
	return s, nil
}
