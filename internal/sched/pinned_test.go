package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

func TestPinnedTaskStaysPut(t *testing.T) {
	// Two identical tasks; task 0 is pinned to processor 1 even though
	// processor 0 is also free.
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("pinned", c1(10), 0)
	g.MustAddTask("free", c1(10), 0)
	a.Pinned = 1
	g.MustFreeze()
	p := arch.Homogeneous(2)
	asg := manual([]rtime.Time{0, 0}, []rtime.Time{20, 20})

	for name, run := range map[string]func() (*Schedule, error){
		"dispatch": func() (*Schedule, error) { return Dispatch(g, p, asg) },
		"planner":  func() (*Schedule, error) { return EDF(g, p, asg) },
		"insert":   func() (*Schedule, error) { return InsertEDF(g, p, asg) },
	} {
		s, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Placements[a.ID].Proc != 1 {
			t.Errorf("%s: pinned task on proc %d, want 1", name, s.Placements[a.ID].Proc)
		}
		if err := Verify(g, p, asg, s); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	pre, err := DispatchPreemptive(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Placements[a.ID].Proc != 1 {
		t.Errorf("preemptive: pinned task on proc %d, want 1", pre.Placements[a.ID].Proc)
	}
}

func TestPinnedTasksSerializeOnSharedProcessor(t *testing.T) {
	// Two tasks pinned to the same processor must serialize even with a
	// second idle processor.
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(10), 0)
	b := g.MustAddTask("b", c1(10), 0)
	a.Pinned, b.Pinned = 0, 0
	g.MustFreeze()
	p := arch.Homogeneous(2)
	asg := manual([]rtime.Time{0, 0}, []rtime.Time{30, 30})
	s, err := Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := s.Placements[a.ID], s.Placements[b.ID]
	if pa.Proc != 0 || pb.Proc != 0 {
		t.Fatalf("placements = %+v %+v", pa, pb)
	}
	if pa.Start < pb.Finish && pb.Start < pa.Finish {
		t.Error("pinned tasks overlap on their processor")
	}
}

func TestVerifyCatchesPinViolation(t *testing.T) {
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(10), 0)
	a.Pinned = 1
	g.MustFreeze()
	p := arch.Homogeneous(2)
	asg := manual([]rtime.Time{0}, []rtime.Time{20})
	s := &Schedule{Placements: []Placement{{Proc: 0, Start: 0, Finish: 10}}}
	if err := Verify(g, p, asg, s); err == nil {
		t.Error("pin violation not caught")
	}
}

func TestPinnedEstimateIsExact(t *testing.T) {
	g := taskgraph.NewGraph(2)
	a := g.MustAddTask("a", []rtime.Time{10, 30}, 0)
	a.Pinned = 1 // class 1 → exact WCET 30, not the average 20
	g.MustFreeze()
	p := arch.MustNew(arch.Unrelated, []arch.Class{{}, {}}, []int{0, 1}, arch.Bus{DelayPerItem: 1})
	est, err := wcet.Estimates(g, p, wcet.AVG)
	if err != nil {
		t.Fatal(err)
	}
	if est[0] != 30 {
		t.Errorf("pinned estimate = %d, want exact 30", est[0])
	}
	// Pinning to a processor of an ineligible class is an error.
	g2 := taskgraph.NewGraph(2)
	b := g2.MustAddTask("b", []rtime.Time{10, rtime.Unset}, 0)
	b.Pinned = 1
	g2.MustFreeze()
	if _, err := wcet.Estimates(g2, p, wcet.AVG); err == nil {
		t.Error("ineligible pin accepted")
	}
}

// Property: generated workloads with pinned boundary tasks run the full
// pipeline, every pin is respected, and the schedule verifies.
func TestPinnedWorkloadsPipeline(t *testing.T) {
	f := func(seed int64) bool {
		cfg := gen.Default(4)
		cfg.Seed = seed
		cfg.PinProb = 0.7
		w, err := gen.Generate(cfg)
		if err != nil {
			return false
		}
		pins := 0
		for _, tk := range w.Graph.Tasks() {
			if tk.Pinned >= 0 {
				pins++
			}
		}
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			return false
		}
		asg, err := slicing.Distribute(w.Graph, est, 4, slicing.AdaptL(), slicing.CalibratedParams())
		if err != nil {
			return false
		}
		s, err := Dispatch(w.Graph, w.Platform, asg)
		if err != nil {
			return false
		}
		for i, tk := range w.Graph.Tasks() {
			if tk.Pinned >= 0 && s.Placements[i].Proc >= 0 && s.Placements[i].Proc != tk.Pinned {
				return false
			}
		}
		return Verify(w.Graph, w.Platform, asg, s) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
