// Package sched implements the baseline task-assignment and scheduling
// strategy of §5.4: a list-scheduling version of the earliest-deadline-
// first (EDF) algorithm for a heterogeneous multiprocessor with a
// non-preemptive, time-driven dispatching strategy.
//
// At each scheduling step the algorithm selects, from all ready tasks
// (tasks whose predecessors have all been scheduled), the one with the
// closest absolute deadline, and places it on the available processor
// that yields the earliest start time, taking into account per-class
// execution times, class eligibility, interprocessor communication cost
// over the shared bus, and the task's arrival-time constraint. The
// complexity is O(n²·m) for n tasks and m processors.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Placement records where and when one task executes.
type Placement struct {
	Proc   int // processor ID, -1 if the task could not be placed
	Start  rtime.Time
	Finish rtime.Time
}

// Schedule is a complete time-driven, non-preemptive multiprocessor
// schedule: each task is mapped to a start time and a processor (§3.3).
type Schedule struct {
	// Placements is indexed by task ID.
	Placements []Placement
	// Feasible reports that every task was placed and finished no later
	// than its assigned absolute deadline.
	Feasible bool
	// Missed lists the IDs of tasks that missed their deadline or could
	// not be placed at all, in increasing ID order.
	Missed []int
	// MaxLateness is max(fᵢ − Dᵢ) over all placed tasks (§4.2): a
	// non-positive value for a valid schedule measures "how far" from
	// infeasibility the schedule is. Unplaceable tasks do not contribute.
	MaxLateness rtime.Time
	// Makespan is the latest finish time over all placed tasks.
	Makespan rtime.Time
	// Order is the EDF dispatch order (task IDs as selected).
	Order []int
}

// LatenessOf returns fᵢ − Dᵢ for a placed task i.
func (s *Schedule) LatenessOf(i int, deadline rtime.Time) rtime.Time {
	return s.Placements[i].Finish - deadline
}

// EDF builds the schedule for graph g on platform p under the
// arrival-time and deadline assignment asg. The sched package does not
// care how the assignment was produced; any assignment with one window
// per task works.
func EDF(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (*Schedule, error) {
	return EDFScratch(g, p, asg, nil)
}

// EDFScratch is EDF running over reusable scratch memory (nil allocates
// internally). The schedule is identical for any scratch state and never
// aliases it.
func EDFScratch(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, ws *Scratch) (*Schedule, error) {
	n := g.NumTasks()
	if len(asg.Arrival) != n || len(asg.AbsDeadline) != n {
		return nil, fmt.Errorf("sched: assignment covers %d tasks, graph has %d", len(asg.Arrival), n)
	}
	for i := 0; i < n; i++ {
		if !asg.Arrival[i].IsSet() || !asg.AbsDeadline[i].IsSet() {
			return nil, fmt.Errorf("sched: task %d has an unassigned window", i)
		}
	}

	s := &Schedule{
		Placements:  make([]Placement, n),
		Feasible:    true,
		MaxLateness: -rtime.Infinity,
	}
	for i := range s.Placements {
		s.Placements[i] = Placement{Proc: -1}
	}

	if ws == nil {
		ws = &Scratch{}
	}
	ws.ensureList(g, n, p.M())
	procFree, resFree := ws.procFree, ws.resFree
	unscheduledPreds := ws.predsLeft
	ready := ws.ready
	for i := 0; i < n; i++ {
		unscheduledPreds[i] = int32(len(g.Preds(i)))
		if unscheduledPreds[i] == 0 {
			ready = append(ready, i)
		}
	}

	scheduled := 0
	for len(ready) > 0 {
		// EDF selection: closest absolute deadline; ties break on the
		// earlier arrival, then the lower ID, for determinism.
		sel := 0
		for j := 1; j < len(ready); j++ {
			a, b := ready[j], ready[sel]
			switch {
			case asg.AbsDeadline[a] < asg.AbsDeadline[b]:
				sel = j
			case asg.AbsDeadline[a] == asg.AbsDeadline[b] && asg.Arrival[a] < asg.Arrival[b]:
				sel = j
			case asg.AbsDeadline[a] == asg.AbsDeadline[b] && asg.Arrival[a] == asg.Arrival[b] && a < b:
				sel = j
			}
		}
		t := ready[sel]
		ready = append(ready[:sel], ready[sel+1:]...)
		task := g.Task(t)

		// Pick the eligible processor with the earliest start time;
		// ties break on the earlier finish (heterogeneity), then the
		// lower processor ID.
		bestProc := -1
		var bestStart, bestFinish rtime.Time
		for q := 0; q < p.M(); q++ {
			if task.Pinned >= 0 && q != task.Pinned {
				continue // strict locality constraint (§1)
			}
			class := p.ClassOf(q)
			if !task.EligibleOn(class) {
				continue
			}
			start := rtime.Max(procFree[q], asg.Arrival[t])
			for _, pr := range g.Preds(t) {
				pl := s.Placements[pr]
				if pl.Proc < 0 {
					continue // unplaceable predecessor; precedence moot
				}
				arrive := pl.Finish + p.CommCost(pl.Proc, q, g.MessageItems(pr, t))
				if arrive > start {
					start = arrive
				}
			}
			for _, res := range task.Resources {
				if resFree[res] > start {
					start = resFree[res]
				}
			}
			finish := start + task.WCET[class]
			if bestProc < 0 || start < bestStart ||
				(start == bestStart && finish < bestFinish) {
				bestProc, bestStart, bestFinish = q, start, finish
			}
		}

		if bestProc < 0 {
			// No processor of an eligible class exists: unschedulable.
			s.Feasible = false
			s.Missed = append(s.Missed, t)
		} else {
			s.Placements[t] = Placement{Proc: bestProc, Start: bestStart, Finish: bestFinish}
			procFree[bestProc] = bestFinish
			for _, res := range task.Resources {
				resFree[res] = bestFinish
			}
			if bestFinish > s.Makespan {
				s.Makespan = bestFinish
			}
			late := bestFinish - asg.AbsDeadline[t]
			if late > s.MaxLateness {
				s.MaxLateness = late
			}
			if late > 0 {
				s.Feasible = false
				s.Missed = append(s.Missed, t)
			}
		}
		s.Order = append(s.Order, t)
		scheduled++

		for _, u := range g.Succs(t) {
			unscheduledPreds[u]--
			if unscheduledPreds[u] == 0 {
				ready = append(ready, u)
			}
		}
	}
	if scheduled != n {
		return nil, fmt.Errorf("sched: scheduled %d of %d tasks (precedence cycle?)", scheduled, n)
	}
	sort.Ints(s.Missed)
	return s, nil
}

// Verify independently checks a schedule against the graph, the platform
// and the assignment: processor exclusivity (non-preemptive, one task at
// a time), class eligibility, arrival-time respect, precedence plus
// communication delays, and WCET-exact execution. It is used by tests
// and by the sim package's replay as a second opinion on the scheduler.
func Verify(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, s *Schedule) error {
	n := g.NumTasks()
	type span struct {
		t     int
		start rtime.Time
		end   rtime.Time
	}
	perProc := make([][]span, p.M())
	for i := 0; i < n; i++ {
		pl := s.Placements[i]
		if pl.Proc < 0 {
			continue
		}
		if pl.Proc >= p.M() {
			return fmt.Errorf("sched: task %d on missing processor %d", i, pl.Proc)
		}
		class := p.ClassOf(pl.Proc)
		if !g.Task(i).EligibleOn(class) {
			return fmt.Errorf("sched: task %d placed on ineligible class %d", i, class)
		}
		if pin := g.Task(i).Pinned; pin >= 0 && pl.Proc != pin {
			return fmt.Errorf("sched: task %d pinned to processor %d but placed on %d", i, pin, pl.Proc)
		}
		if pl.Finish-pl.Start != g.Task(i).WCET[class] {
			return fmt.Errorf("sched: task %d runs %d units, WCET is %d",
				i, pl.Finish-pl.Start, g.Task(i).WCET[class])
		}
		if pl.Start < asg.Arrival[i] {
			return fmt.Errorf("sched: task %d starts at %d before arrival %d",
				i, pl.Start, asg.Arrival[i])
		}
		perProc[pl.Proc] = append(perProc[pl.Proc], span{i, pl.Start, pl.Finish})
	}
	for q, spans := range perProc {
		sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end {
				return fmt.Errorf("sched: processor %d runs tasks %d and %d concurrently",
					q, spans[i-1].t, spans[i].t)
			}
		}
	}
	for _, a := range g.Arcs() {
		from, to := s.Placements[a.From], s.Placements[a.To]
		if from.Proc < 0 || to.Proc < 0 {
			continue
		}
		need := from.Finish + p.CommCost(from.Proc, to.Proc, a.Items)
		if to.Start < need {
			return fmt.Errorf("sched: task %d starts at %d before message from %d lands at %d",
				a.To, to.Start, a.From, need)
		}
	}
	return verifyResources(g, s)
}
