package slicing

import (
	"math"
	"testing"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

func c1(v rtime.Time) []rtime.Time { return []rtime.Time{v} }

// forkJoin builds A→(B,C,D)→E: one source, three parallel middles, one sink.
func forkJoin(t testing.TB, mid rtime.Time) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("A", c1(10), 0)
	var mids []int
	for i := 0; i < 3; i++ {
		mids = append(mids, g.MustAddTask("M", c1(mid), 0).ID)
	}
	e := g.MustAddTask("E", c1(10), 0)
	for _, m := range mids {
		g.MustAddArc(a.ID, m, 1)
		g.MustAddArc(m, e.ID, 1)
	}
	g.MustFreeze()
	return g
}

func envFor(g *taskgraph.Graph, est []rtime.Time, m int) *Env {
	return &Env{G: g, Est: est, M: m, Params: DefaultParams()}
}

func TestPureR(t *testing.T) {
	m := PURE()
	if got := m.R(60, 3, 30); got != 10 {
		t.Errorf("R_PURE = %v, want 10", got)
	}
	if got := m.R(20, 4, 30); got != -2.5 {
		t.Errorf("R_PURE negative laxity = %v, want -2.5", got)
	}
	if !math.IsInf(m.R(10, 0, 0), 1) {
		t.Error("R_PURE with no tasks should be +Inf")
	}
}

func TestNormR(t *testing.T) {
	m := NORM()
	if got := m.R(120, 3, 60); got != 1 {
		t.Errorf("R_NORM = %v, want 1", got)
	}
	if got := m.R(30, 3, 60); got != -0.5 {
		t.Errorf("R_NORM tight = %v, want -0.5", got)
	}
	if !math.IsInf(m.R(10, 3, 0), 1) {
		t.Error("R_NORM with zero cost should be +Inf")
	}
}

func TestPureShares(t *testing.T) {
	m := PURE()
	got := m.Shares(60, []rtime.Time{10, 10, 10})
	for i, want := range []float64{20, 20, 20} {
		if got[i] != want {
			t.Errorf("share[%d] = %v, want %v", i, got[i], want)
		}
	}
	// Unequal costs: equal laxity on top of each cost (eq. 5).
	got = m.Shares(70, []rtime.Time{10, 30})
	if got[0] != 25 || got[1] != 45 {
		t.Errorf("shares = %v, want [25 45]", got)
	}
}

func TestNormShares(t *testing.T) {
	m := NORM()
	got := m.Shares(120, []rtime.Time{10, 20, 30})
	for i, want := range []float64{20, 40, 60} {
		if got[i] != want {
			t.Errorf("share[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestSharesSumToWindow(t *testing.T) {
	for _, m := range Metrics() {
		for _, w := range []rtime.Time{37, 100, 999} {
			costs := []rtime.Time{7, 19, 3, 42}
			sum := 0.0
			for _, s := range m.Shares(w, costs) {
				sum += s
			}
			if math.Abs(sum-float64(w)) > 1e-9 {
				t.Errorf("%s: shares sum to %v for window %d", m.Name(), sum, w)
			}
		}
	}
}

func TestNonAdaptiveVirtualCostsAreEstimates(t *testing.T) {
	g := forkJoin(t, 20)
	est := []rtime.Time{10, 20, 20, 20, 10}
	env := envFor(g, est, 3)
	for _, m := range []Metric{PURE(), NORM()} {
		vc := m.VirtualCosts(env)
		for i := range est {
			if vc[i] != est[i] {
				t.Errorf("%s: ĉ[%d] = %d, want %d", m.Name(), i, vc[i], est[i])
			}
		}
	}
}

func TestAdaptGVirtualCosts(t *testing.T) {
	g := forkJoin(t, 20)
	est := []rtime.Time{10, 20, 20, 20, 10}
	// Workload = 80, critical path = 10+20+10 = 40, ξ = 2.
	// Mean estimate = 16 → threshold 16; the 20s inflate, the 10s don't.
	env := envFor(g, est, 4) // m = 4 → surplus = 1.5·2/4 = 0.75
	vc := AdaptG().VirtualCosts(env)
	want := []rtime.Time{10, 35, 35, 35, 10} // 20·1.75 = 35
	for i := range want {
		if vc[i] != want[i] {
			t.Errorf("ĉ[%d] = %d, want %d", i, vc[i], want[i])
		}
	}
}

func TestAdaptLVirtualCosts(t *testing.T) {
	g := forkJoin(t, 20)
	est := []rtime.Time{10, 20, 20, 20, 10}
	// |Ψ| of each middle task is 2; of the endpoints 0.
	env := envFor(g, est, 2) // surplus = 0.2·2/2 = 0.2 for the middles
	vc := AdaptL().VirtualCosts(env)
	want := []rtime.Time{10, 24, 24, 24, 10}
	for i := range want {
		if vc[i] != want[i] {
			t.Errorf("ĉ[%d] = %d, want %d", i, vc[i], want[i])
		}
	}
}

func TestThresholdFiltersSmallTasks(t *testing.T) {
	g := forkJoin(t, 40)
	est := []rtime.Time{10, 40, 40, 40, 10}
	env := envFor(g, est, 1)
	env.Params.CThres = 40 // explicit absolute threshold
	vc := AdaptL().VirtualCosts(env)
	if vc[0] != 10 || vc[4] != 10 {
		t.Error("tasks below threshold must keep their estimate")
	}
	if vc[1] <= 40 {
		t.Error("tasks at/above threshold must inflate")
	}
}

func TestThresholdFromFactor(t *testing.T) {
	p := Params{CThresFactor: 1.0}
	if got := p.threshold([]rtime.Time{10, 20, 30}); got != 20 {
		t.Errorf("threshold = %d, want 20", got)
	}
	p2 := Params{CThresFactor: 0.5}
	if got := p2.threshold([]rtime.Time{10, 20, 30}); got != 10 {
		t.Errorf("threshold = %d, want 10", got)
	}
	p3 := Params{CThres: 7, CThresFactor: 99}
	if got := p3.threshold([]rtime.Time{10, 20, 30}); got != 7 {
		t.Error("absolute threshold must win over the factor")
	}
	if got := (Params{CThresFactor: 1}).threshold(nil); got != 0 {
		t.Errorf("threshold of empty = %d", got)
	}
}

func TestInflateNeverShrinks(t *testing.T) {
	g := forkJoin(t, 20)
	est := []rtime.Time{10, 20, 20, 20, 10}
	env := envFor(g, est, 3)
	env.Params.KL = -5 // pathological negative factor
	vc := AdaptL().VirtualCosts(env)
	for i := range est {
		if vc[i] < est[i] {
			t.Errorf("ĉ[%d] = %d < c̄ = %d", i, vc[i], est[i])
		}
	}
}

func TestMetricsAndByName(t *testing.T) {
	ms := Metrics()
	wantNames := []string{"PURE", "NORM", "ADAPT-G", "ADAPT-L"}
	if len(ms) != len(wantNames) {
		t.Fatalf("Metrics() returned %d metrics", len(ms))
	}
	for i, m := range ms {
		if m.Name() != wantNames[i] {
			t.Errorf("metric %d = %s, want %s", i, m.Name(), wantNames[i])
		}
		got, err := ByName(m.Name())
		if err != nil || got.Name() != m.Name() {
			t.Errorf("ByName(%s) failed: %v", m.Name(), err)
		}
	}
	if _, err := ByName("BOGUS"); err == nil {
		t.Error("ByName should reject unknown names")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.KG != 1.5 || p.KL != 0.2 || p.CThresFactor != 1.0 || p.CThres != 0 {
		t.Errorf("DefaultParams = %+v, want paper §6 values", p)
	}
}
