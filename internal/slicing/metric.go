// Package slicing implements the paper's primary contribution: the
// slicing technique for distributing end-to-end deadlines over the tasks
// of a heterogeneous distributed real-time application under relaxed
// locality constraints (§4), together with the four critical-path
// metrics it is evaluated with (§4.5):
//
//   - PURE  — pure laxity ratio (Di Natale & Stankovic, eq. 4–5)
//   - NORM  — normalized laxity ratio (Di Natale & Stankovic, eq. 2–3)
//   - ADAPT-G — globally adaptive laxity ratio (Jonsson & Shin, eq. 6–7)
//   - ADAPT-L — locally adaptive laxity ratio (this paper, eq. 8)
//
// The algorithm (Figure 1) repeatedly extracts the most critical path —
// the chain of not-yet-assigned tasks minimizing the metric value R —
// and partitions that chain's end-to-end window into non-overlapping
// slices, one per task. Slices of sequential tasks never overlap, which
// eliminates precedence-induced release jitter and decouples the
// scheduling of sequential tasks on different processors (implications
// I1 and I2 of the paper).
package slicing

import (
	"fmt"
	"math"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// Mode selects how the slicer keeps the constraints recorded by the
// attach step (Figure 1, steps 5–12) consistent across rounds.
type Mode int

const (
	// Consistent (the default) derives transitively consistent earliest-
	// arrival / latest-deadline corridors by ASAP/ALAP propagation over
	// the unassigned subgraph each round, and clamps slice boundaries
	// into them. It reduces to the paper's immediate-neighbour rule for
	// tasks adjacent to a spine and additionally keeps multi-spine
	// constraints coherent (see DESIGN.md).
	Consistent Mode = iota
	// Faithful is the literal Figure-1 bookkeeping: only immediate
	// neighbours of a sliced spine receive constraints, chains run
	// between tasks with recorded boundaries, and no corridor clamping
	// is applied. Windows of precedence-related tasks on different
	// spines can contradict each other; such workloads fail scheduling.
	Faithful
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Consistent:
		return "consistent"
	case Faithful:
		return "faithful"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Params holds the tunables of the adaptive metrics. The zero value is
// not useful; start from DefaultParams (the paper's §6 defaults).
type Params struct {
	// CThres is the absolute execution-time threshold c_thres: tasks
	// with estimated WCET at or above it receive a virtual execution
	// time. If zero, the threshold is CThresFactor times the mean
	// estimated WCET.
	CThres rtime.Time
	// CThresFactor scales the mean estimated WCET into c_thres when
	// CThres is zero. The paper uses 1.0.
	CThresFactor float64
	// KG is the global adaptivity factor k_G of ADAPT-G (paper: 1.5).
	KG float64
	// KL is the local adaptivity factor k_L of ADAPT-L (paper: 0.2).
	KL float64
	// KR is the resource-conflict factor of the ADAPT-R extension; zero
	// means "use KL".
	KR float64
	// Mode selects the constraint-bookkeeping variant (see Mode).
	Mode Mode
}

// DefaultParams returns the paper's §6 defaults: c_thres = 1.0·c_mean,
// k_G = 1.5, k_L = 0.2.
func DefaultParams() Params {
	return Params{CThresFactor: 1.0, KG: 1.5, KL: 0.2}
}

// CalibratedParams returns the adaptivity factors calibrated for this
// implementation's scheduler and generator: c_thres = 1.0·c_mean,
// k_G = 0.5, k_L = 0.1. The paper itself notes (§7.1) that no factor
// value is universally best — the published k_G = 1.5 / k_L = 0.2 were
// tuned for the GAST pipeline, and in this reproduction they over-inflate
// virtual execution times, draining the laxity of sub-threshold tasks
// (see EXPERIMENTS.md for the calibration sweep). The experiment harness
// uses these values.
func CalibratedParams() Params {
	return Params{CThresFactor: 1.0, KG: 0.5, KL: 0.1}
}

// threshold resolves the execution-time threshold for the given
// estimates.
func (p Params) threshold(est []rtime.Time) rtime.Time {
	if p.CThres > 0 {
		return p.CThres
	}
	if len(est) == 0 {
		return 0
	}
	var sum float64
	for _, c := range est {
		sum += float64(c)
	}
	return rtime.Time(math.Round(p.CThresFactor * sum / float64(len(est))))
}

// Env is the environment a metric sees when preparing virtual execution
// times: the application, the WCET estimates, and the platform size.
type Env struct {
	G      *taskgraph.Graph
	Est    []rtime.Time // c̄ᵢ, indexed by task ID
	M      int          // number of processors in the system
	Params Params
}

// Metric is a critical-path metric for the slicing technique. A metric
// does two jobs: it ranks candidate chains (R — lower means more
// critical, so the chain is sliced earlier) and it apportions a chain's
// window into per-task relative-deadline shares.
type Metric interface {
	// Name returns the metric's display name (e.g. "ADAPT-L").
	Name() string
	// VirtualCosts returns ĉᵢ for every task. For the non-adaptive
	// metrics this is the estimate itself; the adaptive metrics inflate
	// tasks above the execution-time threshold.
	VirtualCosts(env *Env) []rtime.Time
	// R evaluates the criticalness of a chain with the given end-to-end
	// window length, task count, and total virtual cost.
	R(window rtime.Time, n int, sumC rtime.Time) float64
	// Shares returns each chain task's relative-deadline share given the
	// window and the tasks' virtual costs. Shares may come out negative
	// for over-constrained windows; the slicer clamps them at zero.
	Shares(window rtime.Time, costs []rtime.Time) []float64
}

// shape factors the two laxity-apportioning rules shared by the metrics:
// pureShape gives every task an equal laxity share on top of its cost
// (eq. 4–5); normShape scales each task's cost by a common factor
// (eq. 2–3).
type shape int

const (
	pureShape shape = iota
	normShape
)

func (s shape) r(window rtime.Time, n int, sumC rtime.Time) float64 {
	switch s {
	case pureShape:
		if n == 0 {
			return math.Inf(1)
		}
		return float64(window-sumC) / float64(n)
	case normShape:
		if sumC == 0 {
			return math.Inf(1)
		}
		return float64(window-sumC) / float64(sumC)
	}
	panic("slicing: unknown shape")
}

func (s shape) shares(window rtime.Time, costs []rtime.Time) []float64 {
	return s.sharesInto(make([]float64, len(costs)), window, costs)
}

// sharesInto is shares writing into caller-provided storage (the slicer
// workspace's scratch), len(out) == len(costs).
func (s shape) sharesInto(out []float64, window rtime.Time, costs []rtime.Time) []float64 {
	var sumC rtime.Time
	for _, c := range costs {
		sumC += c
	}
	r := s.r(window, len(costs), sumC)
	for i, c := range costs {
		switch s {
		case pureShape:
			out[i] = float64(c) + r // dᵢ = ĉᵢ + R (eq. 5)
		case normShape:
			out[i] = float64(c) * (1 + r) // dᵢ = ĉᵢ(1 + R) (eq. 3)
		}
	}
	return out
}

// baseMetric implements Metric from a name, a shape, and a virtual-cost
// rule.
type baseMetric struct {
	name    string
	shape   shape
	virtual func(env *Env) []rtime.Time
}

func (m *baseMetric) Name() string                       { return m.name }
func (m *baseMetric) VirtualCosts(env *Env) []rtime.Time { return m.virtual(env) }
func (m *baseMetric) R(w rtime.Time, n int, s rtime.Time) float64 {
	return m.shape.r(w, n, s)
}
func (m *baseMetric) Shares(w rtime.Time, costs []rtime.Time) []float64 {
	return m.shape.shares(w, costs)
}

func identityCosts(env *Env) []rtime.Time {
	return append([]rtime.Time(nil), env.Est...)
}

// inflate applies the virtual-execution-time rule (eq. 6 / eq. 8): tasks
// whose estimate reaches the threshold get their cost scaled by
// (1 + surplus(i)); others keep the estimate.
func inflate(env *Env, surplus func(i int) float64) []rtime.Time {
	thres := env.Params.threshold(env.Est)
	out := make([]rtime.Time, len(env.Est))
	for i, c := range env.Est {
		if c < thres {
			out[i] = c
			continue
		}
		v := rtime.Time(math.Round(float64(c) * (1 + surplus(i))))
		if v < c {
			v = c // a negative surplus factor never shrinks a task
		}
		out[i] = v
	}
	return out
}

// PURE returns the pure laxity ratio metric: the overall laxity of a
// chain divided by its task count; every task receives an equal share of
// laxity (eq. 4–5).
func PURE() Metric {
	return &baseMetric{name: "PURE", shape: pureShape, virtual: identityCosts}
}

// NORM returns the normalized laxity ratio metric: the overall laxity of
// a chain divided by the sum of its execution times; laxity is assigned
// in proportion to task execution time (eq. 2–3).
func NORM() Metric {
	return &baseMetric{name: "NORM", shape: normShape, virtual: identityCosts}
}

// AdaptG returns the globally adaptive laxity ratio metric (ADAPT-G):
// PURE over virtual execution times, where tasks above the threshold are
// inflated by k_G·ξ/m with ξ the average task-graph parallelism (eq. 6–7).
func AdaptG() Metric {
	return &baseMetric{
		name:  "ADAPT-G",
		shape: pureShape,
		virtual: func(env *Env) []rtime.Time {
			xi := env.G.AvgParallelism(env.Est)
			f := env.Params.KG * xi / float64(env.M)
			return inflate(env, func(int) float64 { return f })
		},
	}
}

// AdaptL returns the locally adaptive laxity ratio metric (ADAPT-L), the
// paper's contribution: PURE over virtual execution times, where a task
// above the threshold is inflated by k_L·|Ψᵢ|/m with Ψᵢ its parallel set
// (eq. 8), so the surplus adapts to the contention each individual task
// actually faces.
func AdaptL() Metric {
	return &baseMetric{
		name:  "ADAPT-L",
		shape: pureShape,
		virtual: func(env *Env) []rtime.Time {
			return inflate(env, func(i int) float64 {
				return env.Params.KL * float64(env.G.ParallelSetSize(i)) / float64(env.M)
			})
		},
	}
}

// Metrics returns the paper's four metrics in presentation order.
func Metrics() []Metric {
	return []Metric{PURE(), NORM(), AdaptG(), AdaptL()}
}

// ByName returns the metric with the given name; besides the paper's
// four it resolves the ADAPT-R and ADAPT-N extensions.
func ByName(name string) (Metric, error) {
	for _, m := range append(Metrics(), AdaptR(), AdaptN()) {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("slicing: unknown metric %q", name)
}
