package slicing

import (
	"fmt"
	"math"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// Assignment is the output of deadline distribution: an execution window
// per task, plus diagnostics about how the windows were derived.
type Assignment struct {
	// Arrival[i] is the absolute arrival time aᵢ of task i: the earliest
	// time at which it may begin execution.
	Arrival []rtime.Time
	// AbsDeadline[i] is the absolute deadline Dᵢ of task i: the latest
	// time by which it must finish.
	AbsDeadline []rtime.Time
	// RelDeadline[i] = Dᵢ − aᵢ (dᵢ), never negative (zero for
	// over-constrained windows).
	RelDeadline []rtime.Time
	// Virtual[i] is the virtual execution time ĉᵢ the metric used.
	Virtual []rtime.Time
	// Chains records the critical paths in extraction order; their
	// concatenation covers every task exactly once.
	Chains [][]int
	// ChainR records the metric value R of each extracted chain, in the
	// same order as Chains — the "criticalness" ranking the algorithm
	// acted on (diagnostics; lower means more critical).
	ChainR []float64
	// OverConstrained reports that the end-to-end deadlines were too
	// tight for a coherent distribution: some window is empty, or the
	// windows of some precedence-related pair overlap. Such an
	// assignment cannot be feasibly scheduled.
	OverConstrained bool
	// Rounds is the number of main-loop iterations (= len(Chains)).
	Rounds int
	// MetricName records which metric produced the assignment.
	MetricName string
}

// Window returns task i's execution window.
func (a *Assignment) Window(i int) rtime.Window {
	return rtime.Window{Arrival: a.Arrival[i], Deadline: a.AbsDeadline[i]}
}

// Laxity returns Xᵢ = dᵢ − c̄ᵢ (§4.2), the slack the metric granted task
// i relative to the supplied estimates. Negative laxity means the window
// cannot hold the task even in isolation.
func (a *Assignment) Laxity(i int, est []rtime.Time) rtime.Time {
	return a.RelDeadline[i] - est[i]
}

// MinLaxity returns the minimum laxity over all tasks, the secondary
// quality measure of §4.2 for workloads with loose deadlines.
func (a *Assignment) MinLaxity(est []rtime.Time) rtime.Time {
	best := rtime.Infinity
	for i := range a.RelDeadline {
		if x := a.Laxity(i, est); x < best {
			best = x
		}
	}
	return best
}

// Validate checks the structural invariants the slicing technique
// guarantees for assignments that are not over-constrained: every task
// has a window, for every precedence arc (i, j) the deadline of i does
// not exceed the arrival of j — i.e. the execution windows of sequential
// tasks never overlap (the property behind implications I1/I2) — and no
// output finishes after its end-to-end deadline (the path constraint,
// eq. 1). Over-constrained assignments are only checked for coverage,
// since the non-overlap guarantee is unachievable for them by
// definition.
func (a *Assignment) Validate(g *taskgraph.Graph) error {
	n := g.NumTasks()
	if len(a.Arrival) != n || len(a.AbsDeadline) != n {
		return fmt.Errorf("slicing: assignment covers %d tasks, graph has %d", len(a.Arrival), n)
	}
	for i := 0; i < n; i++ {
		if !a.Arrival[i].IsSet() || !a.AbsDeadline[i].IsSet() {
			return fmt.Errorf("slicing: task %d has unassigned window", i)
		}
	}
	if a.OverConstrained {
		return nil
	}
	for _, arc := range g.Arcs() {
		if a.AbsDeadline[arc.From] > a.Arrival[arc.To] {
			return fmt.Errorf("slicing: windows of %d → %d overlap (D=%d > a=%d)",
				arc.From, arc.To, a.AbsDeadline[arc.From], a.Arrival[arc.To])
		}
	}
	for _, out := range g.Outputs() {
		ete := g.Task(out).ETEDeadline
		if ete.IsSet() && a.AbsDeadline[out] > ete {
			return fmt.Errorf("slicing: output %d deadline %d exceeds E-T-E deadline %d",
				out, a.AbsDeadline[out], ete)
		}
	}
	return nil
}

// slicer carries one Distribute invocation. All working memory lives in
// the workspace; the slicer itself only binds the invocation's inputs.
type slicer struct {
	g      *taskgraph.Graph
	metric Metric
	mode   Mode
	est    []rtime.Time // c̄, the WCET estimates
	vc     []rtime.Time // ĉ, the metric's virtual costs
	n      int
	topo   []int
	ws     *Workspace
	// assigned/ea/ld alias workspace arrays. In Consistent mode ea/ld
	// are the ASAP/ALAP corridors recomputed every round; in Faithful
	// mode they hold the recorded boundary values of Figure 1's attach
	// step, rtime.Unset when absent.
	assigned []bool
	ea       []rtime.Time
	ld       []rtime.Time
	asg      *Assignment
	// left is |Π|, the number of tasks not yet sliced.
	left int
	// sh devirtualizes the metric's R/Shares rules when the metric is
	// one of the package's shape-based ones (all built-ins are).
	sh   shape
	shOK bool
}

// Distribute runs the SLICING algorithm (Figure 1) over graph g with the
// given WCET estimates, platform size m, metric, and parameters. Every
// output task must carry an end-to-end deadline.
//
// The constraint bookkeeping of steps 5–12 (attaching the remaining
// tasks to the sliced spine) is implemented transitively: before each
// round the earliest arrival EA(τ) and latest deadline LD(τ) of every
// unassigned task are derived by ASAP/ALAP propagation through the
// unassigned subgraph, anchored at the windows already committed and at
// the application's phases and E-T-E deadlines. EA/LD reduce exactly to
// the paper's immediate-neighbour rule for tasks adjacent to a spine,
// and additionally keep multi-spine constraints consistent for tasks
// further away (see DESIGN.md).
func Distribute(g *taskgraph.Graph, est []rtime.Time, m int, metric Metric, params Params) (*Assignment, error) {
	return distribute(&Workspace{}, g, est, m, metric, params)
}

// distribute is Distribute bound to a workspace.
func distribute(ws *Workspace, g *taskgraph.Graph, est []rtime.Time, m int, metric Metric, params Params) (*Assignment, error) {
	if !g.Frozen() {
		return nil, fmt.Errorf("slicing: graph must be frozen")
	}
	if len(est) != g.NumTasks() {
		return nil, fmt.Errorf("slicing: %d estimates for %d tasks", len(est), g.NumTasks())
	}
	if m <= 0 {
		return nil, fmt.Errorf("slicing: system size m=%d", m)
	}
	for _, out := range g.Outputs() {
		if !g.Task(out).ETEDeadline.IsSet() {
			return nil, fmt.Errorf("slicing: output task %d has no end-to-end deadline", out)
		}
	}

	env := &Env{G: g, Est: est, M: m, Params: params}
	n := g.NumTasks()
	vc := metric.VirtualCosts(env)
	ws.prepare(g, vc)
	s := &slicer{
		g:        g,
		metric:   metric,
		mode:     params.Mode,
		est:      est,
		vc:       vc,
		n:        n,
		topo:     g.TopoOrder(),
		ws:       ws,
		assigned: ws.assigned,
		ea:       ws.ea,
		ld:       ws.ld,
		left:     n,
		asg: &Assignment{
			Arrival:     make([]rtime.Time, n),
			AbsDeadline: make([]rtime.Time, n),
			RelDeadline: make([]rtime.Time, n),
			MetricName:  metric.Name(),
		},
	}
	if bm, ok := metric.(*baseMetric); ok {
		s.sh, s.shOK = bm.shape, true
	}
	for i := range s.asg.Arrival {
		s.asg.Arrival[i] = rtime.Unset
		s.asg.AbsDeadline[i] = rtime.Unset
	}
	s.asg.Virtual = append([]rtime.Time(nil), s.vc...)

	if s.mode == Faithful {
		// Step 1 of Figure 1: boundary tasks get their application-level
		// timing; everything else starts unconstrained.
		for i := range s.ea {
			s.ea[i] = rtime.Unset
			s.ld[i] = rtime.Unset
		}
		for _, in := range g.Inputs() {
			s.ea[in] = g.Task(in).Phase
		}
		for _, out := range g.Outputs() {
			s.ld[out] = g.Task(out).ETEDeadline
		}
	}

	for s.left > 0 {
		if s.mode == Consistent {
			s.computeBounds()
		}
		chain, r, ok := s.findCriticalChain()
		if !ok {
			return nil, fmt.Errorf("slicing: internal error: no candidate chain with %d tasks unassigned", s.left)
		}
		s.distribute(chain)
		s.ws.invalidateChain(chain)
		if s.mode == Faithful {
			s.attach(chain)
		}
		s.asg.Chains = append(s.asg.Chains, chain)
		s.asg.ChainR = append(s.asg.ChainR, r)
		s.asg.Rounds++
	}

	// Flag over-constrained outcomes: empty windows, or overlapping
	// windows of precedence-related tasks (possible only when E-T-E
	// deadlines cannot accommodate the workload).
	for i := 0; i < n; i++ {
		if s.asg.RelDeadline[i] <= 0 {
			s.asg.OverConstrained = true
		}
	}
	for _, arc := range g.Arcs() {
		if s.asg.AbsDeadline[arc.From] > s.asg.Arrival[arc.To] {
			s.asg.OverConstrained = true
		}
	}
	return s.asg, nil
}

// computeBounds refreshes EA and LD over the unassigned subgraph.
//
//	EA(τ) = max(φ_τ, max over preds p: p assigned ? D_p : EA(p)+c̄_p)
//	LD(τ) = min(D_ETE if output, min over succs u: u assigned ? a_u : LD(u)−c̄_u)
func (s *slicer) computeBounds() {
	topo := s.topo
	for _, v := range topo {
		if s.assigned[v] {
			continue
		}
		ea := s.g.Task(v).Phase
		for _, p := range s.g.Preds(v) {
			var t rtime.Time
			if s.assigned[p] {
				t = s.asg.AbsDeadline[p]
			} else {
				t = s.ea[p] + s.est[p]
			}
			if t > ea {
				ea = t
			}
		}
		s.ea[v] = ea
	}
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		if s.assigned[v] {
			continue
		}
		ld := rtime.Infinity
		if ete := s.g.Task(v).ETEDeadline; ete.IsSet() {
			ld = ete
		}
		for _, u := range s.g.Succs(v) {
			var t rtime.Time
			if s.assigned[u] {
				t = s.asg.Arrival[u]
			} else {
				t = s.ld[u] - s.est[u]
			}
			if t < ld {
				ld = t
			}
		}
		s.ld[v] = ld
	}
}

// candidate is one evaluated chain.
type candidate struct {
	r          float64
	nTasks     int
	sumC       rtime.Time
	start, end int
	valid      bool
}

// better reports whether b should replace c. Ties break toward longer
// chains (constraining more tasks per window), then larger total cost,
// then lower task IDs, keeping runs deterministic.
func (c *candidate) better(b *candidate) bool {
	if !c.valid {
		return true
	}
	if b.r != c.r {
		return b.r < c.r
	}
	if b.nTasks != c.nTasks {
		return b.nTasks > c.nTasks
	}
	if b.sumC != c.sumC {
		return b.sumC > c.sumC
	}
	if b.start != c.start {
		return b.start < c.start
	}
	return b.end < c.end
}

// findCriticalChain implements Step 3: a sweep over the unassigned
// subgraph that finds the chain minimizing the metric value R. A chain
// may start and end at any unassigned task; its end-to-end window is
// [EA(start), LD(end)]. For a fixed (endpoint, length) pair every
// metric's R is strictly decreasing in the chain's total virtual cost,
// so a per-start DP that keeps the maximum Σĉ for each (node, length)
// finds the exact minimum.
//
// The DP itself is window-free, so its candidate lists are cached per
// start in the workspace and only recomputed for starts whose reachable
// set intersects a chain committed since (the EA/LD windows, which do
// change every round, are applied at evaluation time).
func (s *slicer) findCriticalChain() ([]int, float64, bool) {
	var best candidate
	ws := s.ws
	for start := 0; start < s.n; start++ {
		if s.assigned[start] {
			continue
		}
		if s.mode == Faithful && !s.ea[start].IsSet() {
			continue // Figure 1: chains begin at recorded arrivals
		}
		switch ws.state[start] {
		case candBase, candMid:
		default:
			s.runDP(start)
			s.collectCands(start)
		}
		s.evalCands(start, &best)
	}
	if !best.valid {
		return nil, 0, false
	}
	return s.reconstruct(best.start, best.end, best.nTasks), best.r, true
}

// evalCands folds start's (exact) candidate list into best under the
// current EA/LD windows. The r computation is specialized per shape
// inline — this fold is the hottest loop of the slicer — and candidates
// that lose on R alone (the overwhelming majority) skip the tie-break
// comparison entirely, which is sound because better replaces only on
// strictly smaller r or on a tie.
func (s *slicer) evalCands(start int, best *candidate) {
	eaStart := s.ea[start]
	faithful := s.mode == Faithful
	pure := s.shOK && s.sh == pureShape
	norm := s.shOK && s.sh == normShape
	for _, c := range s.ws.cands[start] {
		end := int(c.end)
		ld := s.ld[end]
		if faithful && !ld.IsSet() {
			continue
		}
		window := ld - eaStart
		var r float64
		switch {
		case pure: // candidate lengths are ≥ 1 by construction
			r = float64(window-c.sum) / float64(c.l)
		case norm:
			if c.sum == 0 {
				r = math.Inf(1)
			} else {
				r = float64(window-c.sum) / float64(c.sum)
			}
		default:
			r = s.metric.R(window, int(c.l), c.sum)
		}
		if best.valid && r > best.r {
			continue
		}
		cand := candidate{r: r, nTasks: int(c.l), sumC: c.sum, start: start, end: end, valid: true}
		if best.better(&cand) {
			*best = cand
		}
	}
}

// runDP runs the per-start longest-chain DP into the workspace's flat
// tables: maxC[v·W+l] is the maximum Σĉ over chains of length l from
// start to v through unassigned tasks, par the matching predecessor.
// Cells are claimed lazily through a per-cell visit stamp and each
// reached node carries its [lo, hi] band of set lengths, so the DP
// initializes nothing up front, scans no unset cells outside the bands,
// and allocates nothing. Nodes are relaxed in topo order (a node's
// cells are final before its own band is scanned), and for equal sums
// the topo-earliest predecessor wins — the same tie-break the dense
// formulation had.
func (s *slicer) runDP(start int) {
	ws := s.ws
	depth := ws.depth
	W := depth + 1
	ws.tick++
	tick := ws.tick
	ws.touched = ws.touched[:0]
	ws.stamp[start] = tick
	ws.touched = append(ws.touched, int32(start))
	ws.lo[start], ws.hi[start] = 1, 1
	c0 := start*W + 1
	ws.maxC[c0] = s.vc[start]
	ws.par[c0] = -1
	ws.cell[c0] = tick

	for _, v := range s.topo {
		if ws.stamp[v] != tick || s.assigned[v] {
			continue
		}
		row := v * W
		hi := ws.hi[v]
		if hi >= int32(depth) {
			hi = int32(depth) - 1 // targets sit at l+1 ≤ depth
		}
		for l := ws.lo[v]; l <= hi; l++ {
			cell := row + int(l)
			if ws.cell[cell] != tick {
				continue // a hole in the band: no chain of this length
			}
			cur := ws.maxC[cell]
			for _, u := range s.g.Succs(v) {
				if s.assigned[u] {
					continue
				}
				uc := u*W + int(l) + 1
				tot := cur + s.vc[u]
				if ws.cell[uc] != tick {
					ws.cell[uc] = tick
					ws.maxC[uc] = tot
					ws.par[uc] = int32(v)
					if ws.stamp[u] != tick {
						ws.stamp[u] = tick
						ws.touched = append(ws.touched, int32(u))
						ws.lo[u], ws.hi[u] = l+1, l+1
					} else {
						if l+1 < ws.lo[u] {
							ws.lo[u] = l + 1
						}
						if l+1 > ws.hi[u] {
							ws.hi[u] = l + 1
						}
					}
				} else if tot > ws.maxC[uc] {
					ws.maxC[uc] = tot
					ws.par[uc] = int32(v)
				}
			}
		}
	}
	ws.dpStart = start
}

// collectCands snapshots the DP's reached (end, length, Σĉ) triples into
// the start's cached candidate list and records the reached-task bitset
// that governs the list's invalidation.
func (s *slicer) collectCands(start int) {
	ws := s.ws
	W := ws.depth + 1
	tick := ws.tick
	rb := ws.reach[start]
	for i := range rb {
		rb[i] = 0
	}
	cl := ws.cands[start][:0]
	for _, v32 := range ws.touched {
		v := int(v32)
		rb[v>>6] |= 1 << (uint(v) & 63)
		row := v * W
		for l := ws.lo[v]; l <= ws.hi[v]; l++ {
			if cell := row + int(l); ws.cell[cell] == tick {
				cl = append(cl, cand{end: v32, l: l, sum: ws.maxC[cell]})
			}
		}
	}
	ws.cands[start] = cl
	if s.left == s.n {
		ws.state[start] = candBase
	} else {
		ws.state[start] = candMid
	}
}

// reconstruct recovers the winning chain by walking the parent table of
// the start's DP, re-running it first unless it is the one still in the
// workspace tables. A cached candidate's DP re-run is bit-identical to
// the run that produced it: its validity guarantees no task it reaches
// was assigned (or re-costed) since.
func (s *slicer) reconstruct(start, end, length int) []int {
	ws := s.ws
	if ws.dpStart != start {
		s.runDP(start)
	}
	W := ws.depth + 1
	chain := make([]int, length)
	v, l := end, length
	for l > 0 {
		chain[l-1] = v
		v, l = int(ws.par[v*W+l]), l-1
	}
	return chain
}

// distribute implements Step 4: partition the chain's end-to-end window
// [EA(first), LD(last)] into per-task slices according to the metric's
// share rule. Raw shares are clamped at zero and converted to integral,
// monotone boundaries by rounding the cumulative share; the boundaries
// are then clamped into each task's [EA, LD] corridor so that no window
// contradicts a constraint recorded by an earlier spine.
func (s *slicer) distribute(chain []int) {
	k := len(chain)
	first, last := chain[0], chain[k-1]
	a0 := s.ea[first]
	dEnd := s.ld[last]
	window := dEnd - a0

	if window <= 0 {
		// Degenerate: the deadline corridor is empty. Give every task
		// the empty window at the corridor edge; scheduling will fail
		// these tasks, as it should.
		d := rtime.Min(dEnd, a0)
		for _, t := range chain {
			s.commit(t, rtime.Max(a0, d), rtime.Max(a0, d))
		}
		return
	}

	costs := s.ws.costs[:k]
	for i, t := range chain {
		costs[i] = s.vc[t]
	}
	var shares []float64
	if s.shOK {
		shares = s.sh.sharesInto(s.ws.shares[:k], window, costs)
	} else {
		shares = s.metric.Shares(window, costs)
	}
	total := 0.0
	for i, sh := range shares {
		if sh < 0 || math.IsNaN(sh) {
			sh = 0
		}
		shares[i] = sh
		total += sh
	}
	if total <= 0 {
		// All shares clamped away (window far smaller than the total
		// cost): fall back to an equal split.
		for i := range shares {
			shares[i] = 1
		}
		total = float64(k)
	}

	// Monotone cumulative rounding: b_j = a0 + round(W·cum_j/total),
	// with b_0 = a0 and b_k = dEnd exactly.
	b := s.ws.bnd[:k+1]
	b[0] = a0
	cum := 0.0
	for i := 0; i < k; i++ {
		cum += shares[i]
		x := a0 + rtime.Time(math.Round(float64(window)*cum/total))
		if x < b[i] {
			x = b[i]
		}
		b[i+1] = x
	}
	b[k] = dEnd

	// In Consistent mode, clamp the interior boundaries into the EA/LD
	// corridors: forward for arrivals, backward for deadlines. For
	// feasible corridors this preserves monotonicity; for infeasible
	// ones the overlap is caught by the post-pass in Distribute.
	// Faithful mode uses the raw boundaries, as Figure 1 does.
	if s.mode == Consistent {
		for i := 1; i < k; i++ {
			if ea := s.ea[chain[i]]; b[i] < ea {
				b[i] = ea
			}
			if b[i] < b[i-1] {
				b[i] = b[i-1]
			}
		}
		for i := k - 1; i >= 1; i-- {
			if ld := s.ld[chain[i-1]]; b[i] > ld {
				b[i] = ld
			}
			if b[i] > b[i+1] {
				b[i] = b[i+1]
			}
		}
	}

	for i, t := range chain {
		s.commit(t, b[i], b[i+1])
	}
}

// attach implements steps 5–12 of Figure 1 for Faithful mode: the sliced
// chain becomes a spine; each unassigned immediate predecessor receives
// an end-to-end deadline equal to the chain task's arrival (earliest
// such arrival wins) and each unassigned immediate successor an arrival
// equal to the chain task's absolute deadline (latest wins).
func (s *slicer) attach(chain []int) {
	for _, t := range chain {
		at, dt := s.asg.Arrival[t], s.asg.AbsDeadline[t]
		for _, p := range s.g.Preds(t) {
			if s.assigned[p] {
				continue
			}
			if !s.ld[p].IsSet() || at < s.ld[p] {
				s.ld[p] = at
			}
		}
		for _, u := range s.g.Succs(t) {
			if s.assigned[u] {
				continue
			}
			if !s.ea[u].IsSet() || dt > s.ea[u] {
				s.ea[u] = dt
			}
		}
	}
}

// commit finalizes one task's window.
func (s *slicer) commit(t int, a, d rtime.Time) {
	s.assigned[t] = true
	s.asg.Arrival[t] = a
	s.asg.AbsDeadline[t] = d
	rel := d - a
	if rel < 0 {
		rel = 0
	}
	s.asg.RelDeadline[t] = rel
	s.left--
}
