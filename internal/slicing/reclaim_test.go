package slicing

import (
	"testing"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

func TestReclaimChainProportional(t *testing.T) {
	// Chain t0→t1→t2, windows [0,20)[20,40)[40,60) under PURE. t0
	// overruns and finishes at 30: the remaining 30 units must be
	// redistributed over t1 and t2 in virtual-cost proportion
	// (equal costs → equal halves: deadlines 45 and 60).
	g := chainGraph(t, []rtime.Time{10, 10, 10}, 60)
	asg := mustDistribute(t, g, 2, PURE())

	pending := []bool{false, true, true}
	nd, ok := ReclaimWindows(g, asg.Virtual, pending, 30, asg.AbsDeadline)
	if !ok {
		t.Fatal("ReclaimWindows found nothing to do")
	}
	if nd[0] != rtime.Unset {
		t.Errorf("non-pending task 0 got deadline %d, want unset", nd[0])
	}
	if nd[1] != 45 || nd[2] != 60 {
		t.Errorf("reclaimed deadlines = %d, %d, want 45, 60", nd[1], nd[2])
	}
}

func TestReclaimNeverExtendsOutputDeadline(t *testing.T) {
	g := chainGraph(t, []rtime.Time{10, 30, 10, 10}, 100)
	asg := mustDistribute(t, g, 2, NORM())
	for _, now := range []rtime.Time{5, 20, 60, 95, 99} {
		pending := []bool{false, true, true, true}
		nd, ok := ReclaimWindows(g, asg.Virtual, pending, now, asg.AbsDeadline)
		if !ok {
			t.Fatalf("now=%d: nothing reclaimed", now)
		}
		if nd[3] > asg.AbsDeadline[3] {
			t.Errorf("now=%d: output deadline extended to %d past %d",
				now, nd[3], asg.AbsDeadline[3])
		}
		for i := 1; i < 3; i++ {
			if nd[i] > nd[i+1] {
				t.Errorf("now=%d: deadlines decrease along arc %d→%d: %d > %d",
					now, i, i+1, nd[i], nd[i+1])
			}
		}
	}
}

func TestReclaimOverload(t *testing.T) {
	// No slack left at all: every pending deadline collapses to now.
	g := chainGraph(t, []rtime.Time{10, 10}, 20)
	asg := mustDistribute(t, g, 1, PURE())
	nd, ok := ReclaimWindows(g, asg.Virtual, []bool{false, true}, 25, asg.AbsDeadline)
	if !ok {
		t.Fatal("nothing reclaimed")
	}
	if nd[1] != 25 {
		t.Errorf("overloaded pending deadline = %d, want 25 (no slack)", nd[1])
	}
	// Past the end-to-end deadline entirely, windows collapse to now:
	// the pending tasks are doomed and the policy signals it.
	nd, ok = ReclaimWindows(g, asg.Virtual, []bool{false, true}, 120, asg.AbsDeadline)
	if !ok || nd[1] != 120 {
		t.Errorf("post-deadline reclamation = %d (ok=%v), want collapse to 120", nd[1], ok)
	}
}

func TestReclaimEmptyPending(t *testing.T) {
	g := chainGraph(t, []rtime.Time{10, 10}, 40)
	asg := mustDistribute(t, g, 1, PURE())
	if _, ok := ReclaimWindows(g, asg.Virtual, []bool{false, false}, 10, asg.AbsDeadline); ok {
		t.Fatal("reclaimed an empty pending set")
	}
}

func TestReclaimZeroRemainingSlack(t *testing.T) {
	// The overrunning task finishes exactly at the end-to-end deadline:
	// zero remaining slack, so every pending deadline collapses to now
	// (σ = 0) — the policy reports the chain as doomed rather than
	// inventing time past the bound.
	g := chainGraph(t, []rtime.Time{10, 10, 10}, 60)
	asg := mustDistribute(t, g, 2, PURE())
	nd, ok := ReclaimWindows(g, asg.Virtual, []bool{false, true, true}, 60, asg.AbsDeadline)
	if !ok {
		t.Fatal("nothing reclaimed")
	}
	if nd[1] != 60 || nd[2] != 60 {
		t.Errorf("zero-slack deadlines = %d, %d, want collapse to 60, 60", nd[1], nd[2])
	}
}

func TestReclaimSinkOverrun(t *testing.T) {
	// The overrunning task is a graph sink: it has no descendants, so the
	// pending set is empty and there is nothing to reclaim — the policy
	// must decline instead of fabricating a deadline set.
	g := chainGraph(t, []rtime.Time{10, 10, 10}, 60)
	asg := mustDistribute(t, g, 2, PURE())
	pending := make([]bool, g.NumTasks()) // no descendants of task 2
	if _, ok := ReclaimWindows(g, asg.Virtual, pending, 70, asg.AbsDeadline); ok {
		t.Fatal("reclaimed windows for a sink overrun with no descendants")
	}
}

func TestReclaimAllDescendantsCompleted(t *testing.T) {
	// Fork 0→{1,2}: task 1 overruns, but its only descendants are
	// already accounted for (none pending). The unaffected sibling
	// branch must not be touched — reclamation declines entirely rather
	// than stretching windows of tasks outside the overrunner's cone.
	g := taskgraph.NewGraph(1)
	for i := 0; i < 3; i++ {
		g.MustAddTask("", c1(10), 0)
	}
	g.MustAddArc(0, 1, 1)
	g.MustAddArc(0, 2, 1)
	g.Task(1).ETEDeadline = 60
	g.Task(2).ETEDeadline = 60
	g.MustFreeze()
	asg := mustDistribute(t, g, 2, PURE())
	if _, ok := ReclaimWindows(g, asg.Virtual, []bool{false, false, false}, 55, asg.AbsDeadline); ok {
		t.Fatal("reclaimed windows although every descendant had completed")
	}
}

func TestReclaimFallsBackWithoutVirtualCosts(t *testing.T) {
	// Distributors outside the slicing family (UD/ED) record no virtual
	// costs; reclamation must still work, treating every task as one
	// unit of load.
	g := chainGraph(t, []rtime.Time{10, 10, 10}, 60)
	asg := mustDistribute(t, g, 2, PURE())
	nd, ok := ReclaimWindows(g, nil, []bool{false, true, true}, 30, asg.AbsDeadline)
	if !ok {
		t.Fatal("nothing reclaimed")
	}
	if nd[1] != 45 || nd[2] != 60 {
		t.Errorf("unit-cost reclaimed deadlines = %d, %d, want 45, 60", nd[1], nd[2])
	}
}
