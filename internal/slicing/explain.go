package slicing

import (
	"fmt"
	"io"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// Explain writes a round-by-round narrative of a completed deadline
// distribution: which chain each round extracted, its metric value R,
// the window it partitioned, and the slices every task received. It is
// the human-readable rendering of Figure 1's execution and backs
// cmd/schedview's -explain flag.
func Explain(w io.Writer, g *taskgraph.Graph, est []rtime.Time, asg *Assignment) error {
	fmt.Fprintf(w, "deadline distribution: metric %s, %d tasks, %d rounds\n",
		asg.MetricName, g.NumTasks(), asg.Rounds)
	if asg.OverConstrained {
		fmt.Fprintf(w, "NOTE: over-constrained — some window is empty or overlaps a successor's\n")
	}
	for round, chain := range asg.Chains {
		first, last := chain[0], chain[len(chain)-1]
		window := asg.AbsDeadline[last] - asg.Arrival[first]
		fmt.Fprintf(w, "\nround %d: chain of %d task(s), window [%s, %s) = %d units",
			round+1, len(chain), asg.Arrival[first], asg.AbsDeadline[last], window)
		if round < len(asg.ChainR) {
			fmt.Fprintf(w, ", R = %.2f", asg.ChainR[round])
		}
		fmt.Fprintln(w)
		for _, t := range chain {
			name := g.Task(t).Name
			if name == "" {
				name = fmt.Sprintf("t%d", t)
			}
			var lax rtime.Time
			if t < len(est) {
				lax = asg.Laxity(t, est)
			}
			fmt.Fprintf(w, "  %-14s ĉ=%-4d slice [%6s, %6s)  d=%-5d laxity=%d\n",
				name, asg.Virtual[t], asg.Arrival[t], asg.AbsDeadline[t],
				asg.RelDeadline[t], lax)
		}
	}
	return nil
}
