package slicing

import (
	"testing"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// resourceForkJoin builds A→(B,C,D)→E where B and C share resource 0.
func resourceForkJoin(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("A", c1(10), 0)
	b := g.MustAddTask("B", c1(20), 0)
	c := g.MustAddTask("C", c1(20), 0)
	d := g.MustAddTask("D", c1(20), 0)
	e := g.MustAddTask("E", c1(10), 0)
	b.Resources = []int{0}
	c.Resources = []int{0}
	for _, mid := range []int{b.ID, c.ID, d.ID} {
		g.MustAddArc(a.ID, mid, 1)
		g.MustAddArc(mid, e.ID, 1)
	}
	e.ETEDeadline = 200
	g.MustFreeze()
	return g
}

func TestAdaptRDegeneratesToAdaptLWithoutResources(t *testing.T) {
	g := forkJoin(t, 20)
	est := []rtime.Time{10, 20, 20, 20, 10}
	env := envFor(g, est, 3)
	vl := AdaptL().VirtualCosts(env)
	vr := AdaptR().VirtualCosts(env)
	for i := range vl {
		if vl[i] != vr[i] {
			t.Errorf("ĉ[%d]: ADAPT-R %d ≠ ADAPT-L %d without resources", i, vr[i], vl[i])
		}
	}
}

func TestAdaptRInflatesResourceConflicts(t *testing.T) {
	g := resourceForkJoin(t)
	est := []rtime.Time{10, 20, 20, 20, 10}
	env := envFor(g, est, 3)
	vl := AdaptL().VirtualCosts(env)
	vr := AdaptR().VirtualCosts(env)
	// B and C conflict on resource 0 → extra surplus; D does not.
	if vr[1] <= vl[1] || vr[2] <= vl[2] {
		t.Errorf("resource sharers not inflated: R=%v L=%v", vr, vl)
	}
	if vr[3] != vl[3] {
		t.Errorf("non-sharer D inflated: R=%d L=%d", vr[3], vl[3])
	}
}

func TestAdaptRUsesKRWhenSet(t *testing.T) {
	g := resourceForkJoin(t)
	est := []rtime.Time{10, 20, 20, 20, 10}
	env := envFor(g, est, 3)
	base := EffectiveContention(env, 1)
	env.Params.KR = 1.0
	big := EffectiveContention(env, 1)
	if big <= base {
		t.Errorf("raising KR should raise the surplus: %v vs %v", big, base)
	}
	// Non-sharers are unaffected by KR.
	env2 := envFor(g, est, 3)
	d0 := EffectiveContention(env2, 3)
	env2.Params.KR = 1.0
	if EffectiveContention(env2, 3) != d0 {
		t.Error("KR affected a task without resource conflicts")
	}
}

func TestResourceConflictsCount(t *testing.T) {
	g := resourceForkJoin(t)
	if got := g.ResourceConflicts(1); got != 1 { // B conflicts with C
		t.Errorf("conflicts(B) = %d, want 1", got)
	}
	if got := g.ResourceConflicts(3); got != 0 { // D holds nothing
		t.Errorf("conflicts(D) = %d, want 0", got)
	}
	if got := g.ResourceConflicts(0); got != 0 { // A holds nothing
		t.Errorf("conflicts(A) = %d, want 0", got)
	}
}

func TestSharesResource(t *testing.T) {
	a := &taskgraph.Task{Resources: []int{0, 2}}
	b := &taskgraph.Task{Resources: []int{2}}
	c := &taskgraph.Task{Resources: []int{1}}
	d := &taskgraph.Task{}
	if !taskgraph.SharesResource(a, b) {
		t.Error("a and b share resource 2")
	}
	if taskgraph.SharesResource(a, c) || taskgraph.SharesResource(b, d) {
		t.Error("false sharing reported")
	}
}

func TestAdaptRDistributes(t *testing.T) {
	g := resourceForkJoin(t)
	est := []rtime.Time{10, 20, 20, 20, 10}
	asg, err := Distribute(g, est, 2, AdaptR(), CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := asg.Validate(g); err != nil {
		t.Fatal(err)
	}
	if asg.MetricName != "ADAPT-R" {
		t.Errorf("metric name = %q", asg.MetricName)
	}
	// The sharers B and C must have at least as much laxity as the
	// non-sharer D: they serialize on the resource.
	lb, lc, ld := asg.Laxity(1, est), asg.Laxity(2, est), asg.Laxity(3, est)
	if lb < ld || lc < ld {
		t.Errorf("sharers' laxity (%d, %d) below non-sharer's (%d)", lb, lc, ld)
	}
}

func TestByNameResolvesAdaptR(t *testing.T) {
	m, err := ByName("ADAPT-R")
	if err != nil || m.Name() != "ADAPT-R" {
		t.Fatalf("ByName(ADAPT-R): %v", err)
	}
}

func TestAdaptNSharesProportionally(t *testing.T) {
	m := AdaptN()
	if m.Name() != "ADAPT-N" {
		t.Fatal("name wrong")
	}
	// NORM shape: shares proportional to virtual costs.
	got := m.Shares(120, []rtime.Time{10, 20, 30})
	for i, want := range []float64{20, 40, 60} {
		if got[i] != want {
			t.Errorf("share[%d] = %v, want %v", i, got[i], want)
		}
	}
	// Virtual costs match ADAPT-L's.
	g := forkJoin(t, 20)
	est := []rtime.Time{10, 20, 20, 20, 10}
	env := envFor(g, est, 2)
	vl := AdaptL().VirtualCosts(env)
	vn := AdaptN().VirtualCosts(env)
	for i := range vl {
		if vl[i] != vn[i] {
			t.Errorf("ĉ[%d]: ADAPT-N %d ≠ ADAPT-L %d", i, vn[i], vl[i])
		}
	}
	if _, err := ByName("ADAPT-N"); err != nil {
		t.Error(err)
	}
}

func TestAdaptNDistributes(t *testing.T) {
	g := forkJoin(t, 40)
	g.Task(4).ETEDeadline = 300
	est := []rtime.Time{10, 40, 40, 40, 10}
	asg, err := Distribute(g, est, 2, AdaptN(), CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := asg.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Proportional sharing: the long middles get much more laxity than
	// the short endpoints.
	if asg.Laxity(1, est) <= asg.Laxity(0, est) {
		t.Errorf("long-task laxity %d should exceed short-task laxity %d",
			asg.Laxity(1, est), asg.Laxity(0, est))
	}
}
