package slicing

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/rtime"
)

// allMetrics is the full metric set the workspace must stay exact for:
// the paper's four plus both extensions (covering both shapes and every
// virtual-cost rule).
func allMetrics() []Metric {
	return append(Metrics(), AdaptR(), AdaptN())
}

func paramsForMode(mode Mode) []Params {
	d := DefaultParams()
	d.Mode = mode
	c := CalibratedParams()
	c.Mode = mode
	return []Params{d, c}
}

// A reused workspace (without retention) must reproduce the fresh
// Distribute result bit-for-bit across arbitrary workload sequences —
// the zero-alloc cold path may change where working memory lives, never
// the assignment.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	for _, mode := range []Mode{Consistent, Faithful} {
		ws := NewWorkspace()
		rng := rand.New(rand.NewSource(7))
		for seed := 0; seed < 25; seed++ {
			g, est := randomWorkload(rng)
			m := 1 + rng.Intn(8)
			for _, metric := range allMetrics() {
				for _, params := range paramsForMode(mode) {
					want, err1 := Distribute(g, est, m, metric, params)
					got, err2 := ws.Distribute(g, est, m, metric, params)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("mode %v seed %d %s: fresh err=%v reuse err=%v",
							mode, seed, metric.Name(), err1, err2)
					}
					if err1 != nil {
						continue
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("mode %v seed %d %s: reused workspace diverged\nfresh: %+v\nreuse: %+v",
							mode, seed, metric.Name(), want, got)
					}
				}
			}
		}
	}
}

// With Retain set, candidate lists survive across builds of the same
// graph and are invalidated by virtual-cost diffs. Every retained build
// must still be bit-identical to a fresh one — across single-task
// estimate bumps, global scalings, metric switches, and interleaved
// foreign graphs that force a full reset.
func TestWorkspaceRetainIncrementalExact(t *testing.T) {
	for _, mode := range []Mode{Consistent, Faithful} {
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 8; trial++ {
			g, est := randomWorkload(rng)
			m := 1 + rng.Intn(4)
			ws := NewWorkspace()
			ws.Retain = true
			metrics := allMetrics()
			metric := metrics[rng.Intn(len(metrics))]
			params := paramsForMode(mode)[rng.Intn(2)]

			cur := append([]rtime.Time(nil), est...)
			check := func(step string) {
				t.Helper()
				want, err1 := Distribute(g, cur, m, metric, params)
				got, err2 := ws.Distribute(g, cur, m, metric, params)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("mode %v trial %d %s: fresh err=%v retained err=%v", mode, trial, step, err1, err2)
				}
				if err1 == nil && !reflect.DeepEqual(want, got) {
					t.Fatalf("mode %v trial %d %s (%s): retained workspace diverged", mode, trial, step, metric.Name())
				}
			}

			check("initial")
			check("repeat-unchanged")
			for step := 0; step < 12; step++ {
				switch rng.Intn(4) {
				case 0: // single-task WCET bump (the ResliceLoop shape)
					i := rng.Intn(len(cur))
					cur[i] += rtime.Time(1 + rng.Intn(10))
					check("bump")
				case 1: // global inflation (breakdown-factor shape)
					for i := range cur {
						cur[i] += cur[i] / 4
					}
					check("inflate")
				case 2: // metric switch under the same estimates
					metric = metrics[rng.Intn(len(metrics))]
					check("metric-switch")
				case 3: // foreign graph resets retention, then back
					g2, est2 := randomWorkload(rng)
					want, err1 := Distribute(g2, est2, m, metric, params)
					got, err2 := ws.Distribute(g2, est2, m, metric, params)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("mode %v trial %d foreign: err %v vs %v", mode, trial, err1, err2)
					}
					if err1 == nil && !reflect.DeepEqual(want, got) {
						t.Fatalf("mode %v trial %d: foreign graph diverged", mode, trial)
					}
					check("return-after-foreign")
				}
			}
		}
	}
}

// The candidate-cache machinery (per-start lists, stale demotion,
// round-0 resurrection of base lists) must be invisible: a retained
// workspace swept across every metric and parameter set at every step
// must select exactly the chains a fresh Distribute does, even as
// single-task bumps accumulate and stale lists pile up between sweeps.
func TestRetainSweepMatchesFresh(t *testing.T) {
	for _, mode := range []Mode{Consistent, Faithful} {
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 10; trial++ {
			g, est := randomWorkload(rng)
			m := 1 + rng.Intn(6)
			ws := NewWorkspace()
			ws.Retain = true
			cur := append([]rtime.Time(nil), est...)
			for step := 0; step < 6; step++ {
				for _, metric := range allMetrics() {
					for _, params := range paramsForMode(mode) {
						want, err1 := Distribute(g, cur, m, metric, params)
						got, err2 := ws.Distribute(g, cur, m, metric, params)
						if (err1 == nil) != (err2 == nil) {
							t.Fatalf("mode %v trial %d %s: errs %v vs %v", mode, trial, metric.Name(), err1, err2)
						}
						if err1 == nil && !reflect.DeepEqual(want, got) {
							t.Fatalf("mode %v trial %d step %d %s: retained sweep diverged from fresh",
								mode, trial, step, metric.Name())
						}
					}
				}
				i := rng.Intn(len(cur))
				cur[i] += rtime.Time(1 + rng.Intn(10))
			}
		}
	}
}

// Assignments produced through a workspace must not alias its memory:
// mutating every workspace array after the build must leave the
// assignment untouched.
func TestWorkspaceOutputDoesNotAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, est := randomWorkload(rng)
	ws := NewWorkspace()
	asg, err := ws.Distribute(g, est, 3, AdaptL(), CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Distribute(g, est, 3, AdaptL(), CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	// Scribble over every workspace slice.
	for i := range ws.ea {
		ws.ea[i], ws.ld[i] = -7, -7
	}
	for i := range ws.vc {
		ws.vc[i] = -7
	}
	for i := range ws.bnd {
		ws.bnd[i] = -7
	}
	for i := range ws.costs {
		ws.costs[i] = -7
	}
	if !reflect.DeepEqual(asg, snap) {
		t.Fatal("assignment aliases workspace memory")
	}
}
