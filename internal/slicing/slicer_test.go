package slicing

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// chainGraph builds a linear chain with the given estimates and an
// end-to-end deadline on the last task.
func chainGraph(t testing.TB, costs []rtime.Time, ete rtime.Time) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.NewGraph(1)
	for _, c := range costs {
		g.MustAddTask("", c1(c), 0)
	}
	for i := 1; i < len(costs); i++ {
		g.MustAddArc(i-1, i, 1)
	}
	g.Task(len(costs) - 1).ETEDeadline = ete
	g.MustFreeze()
	return g
}

func estOf(g *taskgraph.Graph) []rtime.Time {
	est := make([]rtime.Time, g.NumTasks())
	for i, tk := range g.Tasks() {
		est[i] = tk.WCET[0]
	}
	return est
}

func mustDistribute(t testing.TB, g *taskgraph.Graph, m int, metric Metric) *Assignment {
	t.Helper()
	asg, err := Distribute(g, estOf(g), m, metric, DefaultParams())
	if err != nil {
		t.Fatalf("Distribute(%s): %v", metric.Name(), err)
	}
	if err := asg.Validate(g); err != nil {
		t.Fatalf("Validate(%s): %v", metric.Name(), err)
	}
	return asg
}

func TestChainPureSlices(t *testing.T) {
	g := chainGraph(t, []rtime.Time{10, 10, 10}, 60)
	asg := mustDistribute(t, g, 2, PURE())
	// R = (60-30)/3 = 10 → windows [0,20), [20,40), [40,60).
	wantA := []rtime.Time{0, 20, 40}
	wantD := []rtime.Time{20, 40, 60}
	for i := range wantA {
		if asg.Arrival[i] != wantA[i] || asg.AbsDeadline[i] != wantD[i] {
			t.Errorf("task %d window = [%d,%d), want [%d,%d)",
				i, asg.Arrival[i], asg.AbsDeadline[i], wantA[i], wantD[i])
		}
	}
	if asg.Rounds != 1 || len(asg.Chains) != 1 {
		t.Errorf("chain graph should slice in one round, got %d", asg.Rounds)
	}
	if asg.OverConstrained {
		t.Error("loose chain flagged over-constrained")
	}
}

func TestChainNormSlices(t *testing.T) {
	g := chainGraph(t, []rtime.Time{10, 20, 30}, 120)
	asg := mustDistribute(t, g, 2, NORM())
	// R = 1 → d = 20, 40, 60.
	want := []rtime.Time{20, 40, 60}
	for i := range want {
		if asg.RelDeadline[i] != want[i] {
			t.Errorf("d[%d] = %d, want %d", i, asg.RelDeadline[i], want[i])
		}
	}
}

func TestChainPhaseOffset(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("", c1(10), 15) // input arrives at φ = 15
	g.MustAddTask("", c1(10), 0)
	g.MustAddArc(0, 1, 0)
	g.Task(1).ETEDeadline = 55
	g.MustFreeze()
	asg := mustDistribute(t, g, 1, PURE())
	if asg.Arrival[0] != 15 {
		t.Errorf("arrival[0] = %d, want phase 15", asg.Arrival[0])
	}
	if asg.AbsDeadline[1] != 55 {
		t.Errorf("deadline[1] = %d, want 55", asg.AbsDeadline[1])
	}
	if asg.RelDeadline[0]+asg.RelDeadline[1] != 40 {
		t.Errorf("windows should partition [15,55): %v", asg.RelDeadline)
	}
}

func TestDiamondTwoRounds(t *testing.T) {
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("A", c1(10), 0)
	b := g.MustAddTask("B", c1(20), 0)
	c := g.MustAddTask("C", c1(30), 0)
	d := g.MustAddTask("D", c1(10), 0)
	g.MustAddArc(a.ID, b.ID, 1)
	g.MustAddArc(a.ID, c.ID, 1)
	g.MustAddArc(b.ID, d.ID, 1)
	g.MustAddArc(c.ID, d.ID, 1)
	g.Task(d.ID).ETEDeadline = 100
	g.MustFreeze()

	asg := mustDistribute(t, g, 2, PURE())
	if asg.Rounds != 2 {
		t.Fatalf("diamond should need 2 rounds, got %d (%v)", asg.Rounds, asg.Chains)
	}
	// The critical (min-R) path is A→C→D (Σc = 50 beats Σc = 40).
	first := asg.Chains[0]
	if len(first) != 3 || first[0] != a.ID || first[1] != c.ID || first[2] != d.ID {
		t.Errorf("first chain = %v, want [A C D]", first)
	}
	// B must fit between A's deadline and D's arrival.
	if asg.Arrival[b.ID] != asg.AbsDeadline[a.ID] {
		t.Errorf("B arrival = %d, want A deadline %d", asg.Arrival[b.ID], asg.AbsDeadline[a.ID])
	}
	if asg.AbsDeadline[b.ID] != asg.Arrival[d.ID] {
		t.Errorf("B deadline = %d, want D arrival %d", asg.AbsDeadline[b.ID], asg.Arrival[d.ID])
	}
}

func TestOverConstrainedChain(t *testing.T) {
	g := chainGraph(t, []rtime.Time{10, 10, 10}, 2) // window of 2 for 3 tasks
	asg, err := Distribute(g, estOf(g), 1, PURE(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !asg.OverConstrained {
		t.Error("2-unit window over 3 tasks must be flagged over-constrained")
	}
	if err := asg.Validate(g); err != nil {
		t.Errorf("even degenerate assignments keep structural invariants: %v", err)
	}
}

func TestZeroWindow(t *testing.T) {
	g := chainGraph(t, []rtime.Time{5}, 0)
	asg, err := Distribute(g, estOf(g), 1, PURE(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if asg.RelDeadline[0] != 0 {
		t.Errorf("d = %d, want 0", asg.RelDeadline[0])
	}
	if !asg.OverConstrained {
		t.Error("zero window not flagged")
	}
}

func TestDistributeValidation(t *testing.T) {
	g := chainGraph(t, []rtime.Time{5, 5}, 50)
	est := estOf(g)
	if _, err := Distribute(g, est[:1], 2, PURE(), DefaultParams()); err == nil {
		t.Error("estimate length mismatch accepted")
	}
	if _, err := Distribute(g, est, 0, PURE(), DefaultParams()); err == nil {
		t.Error("m = 0 accepted")
	}
	unfrozen := taskgraph.NewGraph(1)
	unfrozen.MustAddTask("", c1(5), 0)
	if _, err := Distribute(unfrozen, []rtime.Time{5}, 1, PURE(), DefaultParams()); err == nil {
		t.Error("unfrozen graph accepted")
	}
	noDeadline := taskgraph.NewGraph(1)
	noDeadline.MustAddTask("", c1(5), 0)
	noDeadline.MustFreeze()
	if _, err := Distribute(noDeadline, []rtime.Time{5}, 1, PURE(), DefaultParams()); err == nil {
		t.Error("missing E-T-E deadline accepted")
	}
}

func TestLaxityAndMinLaxity(t *testing.T) {
	g := chainGraph(t, []rtime.Time{10, 30}, 60)
	asg := mustDistribute(t, g, 1, PURE())
	est := estOf(g)
	// R = (60-40)/2 = 10 → d = [20, 40] → laxity 10 each.
	if asg.Laxity(0, est) != 10 || asg.Laxity(1, est) != 10 {
		t.Errorf("laxities = %d, %d, want 10, 10", asg.Laxity(0, est), asg.Laxity(1, est))
	}
	if asg.MinLaxity(est) != 10 {
		t.Errorf("MinLaxity = %d, want 10", asg.MinLaxity(est))
	}
}

func TestIdenticalCostsMakeMetricsConverge(t *testing.T) {
	// §6.3: with identical estimates, PURE, NORM and ADAPT-G all give
	// dᵢ = D_Φ / n_Φ; only ADAPT-L differs (via |Ψᵢ|).
	g := chainGraph(t, []rtime.Time{20, 20, 20, 20}, 100)
	ref := mustDistribute(t, g, 3, PURE())
	for _, m := range []Metric{NORM(), AdaptG()} {
		asg := mustDistribute(t, g, 3, m)
		for i := range ref.RelDeadline {
			if asg.RelDeadline[i] != ref.RelDeadline[i] {
				t.Errorf("%s: d[%d] = %d, differs from PURE's %d",
					m.Name(), i, asg.RelDeadline[i], ref.RelDeadline[i])
			}
		}
	}
}

func TestMultipleSinksAndSources(t *testing.T) {
	// Two inputs feed one middle task that fans out to two outputs with
	// different E-T-E deadlines.
	g := taskgraph.NewGraph(1)
	i1 := g.MustAddTask("i1", c1(10), 0)
	i2 := g.MustAddTask("i2", c1(15), 0)
	mid := g.MustAddTask("mid", c1(20), 0)
	o1 := g.MustAddTask("o1", c1(10), 0)
	o2 := g.MustAddTask("o2", c1(10), 0)
	g.MustAddArc(i1.ID, mid.ID, 1)
	g.MustAddArc(i2.ID, mid.ID, 1)
	g.MustAddArc(mid.ID, o1.ID, 1)
	g.MustAddArc(mid.ID, o2.ID, 1)
	g.Task(o1.ID).ETEDeadline = 90
	g.Task(o2.ID).ETEDeadline = 120
	g.MustFreeze()
	asg := mustDistribute(t, g, 2, AdaptL())
	if asg.AbsDeadline[o1.ID] > 90 || asg.AbsDeadline[o2.ID] > 120 {
		t.Error("E-T-E deadlines violated")
	}
	// Both outputs arrive exactly when mid's window closes.
	if asg.Arrival[o1.ID] < asg.AbsDeadline[mid.ID] || asg.Arrival[o2.ID] < asg.AbsDeadline[mid.ID] {
		t.Error("outputs must not arrive before mid's deadline")
	}
}

// randomWorkload builds a layered random DAG with deadlines for property
// tests.
func randomWorkload(rng *rand.Rand) (*taskgraph.Graph, []rtime.Time) {
	n := 5 + rng.Intn(25)
	g := taskgraph.NewGraph(1)
	for i := 0; i < n; i++ {
		g.MustAddTask("", c1(rtime.Time(5+rng.Intn(30))), 0)
	}
	for j := 1; j < n; j++ {
		// Every non-first task gets at least one predecessor so the
		// graph is connected enough to be interesting.
		p := rng.Intn(j)
		g.MustAddArc(p, j, rtime.Time(rng.Intn(3)))
		for k := 0; k < 2; k++ {
			q := rng.Intn(j)
			if _, dup := g.ArcBetween(q, j); !dup && rng.Intn(3) == 0 {
				g.MustAddArc(q, j, rtime.Time(rng.Intn(3)))
			}
		}
	}
	est := estOf(g)
	var work rtime.Time
	for _, c := range est {
		work += c
	}
	// OLR between about 0.3 and 1.5.
	olr := 0.3 + rng.Float64()*1.2
	d := rtime.Time(float64(work) * olr)
	// Freeze to find outputs, but deadlines must be set before Freeze is
	// not required — ETEDeadline is a plain field.
	g.MustFreeze()
	for _, out := range g.Outputs() {
		g.Task(out).ETEDeadline = d
	}
	return g, est
}

// Property: for random workloads and all four metrics, Distribute
// succeeds, covers every task exactly once, and preserves the
// non-overlap and E-T-E invariants.
func TestDistributeProperties(t *testing.T) {
	metrics := Metrics()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, est := randomWorkload(rng)
		for _, m := range metrics {
			asg, err := Distribute(g, est, 1+rng.Intn(8), m, DefaultParams())
			if err != nil {
				t.Logf("seed %d metric %s: %v", seed, m.Name(), err)
				return false
			}
			if err := asg.Validate(g); err != nil {
				t.Logf("seed %d metric %s: %v", seed, m.Name(), err)
				return false
			}
			seen := make([]bool, g.NumTasks())
			for _, chain := range asg.Chains {
				if g.ValidateChain(chain) != nil {
					t.Logf("seed %d metric %s: chain %v invalid", seed, m.Name(), chain)
					return false
				}
				for _, id := range chain {
					if seen[id] {
						t.Logf("seed %d metric %s: task %d sliced twice", seed, m.Name(), id)
						return false
					}
					seen[id] = true
				}
			}
			for id, ok := range seen {
				if !ok {
					t.Logf("seed %d metric %s: task %d never sliced", seed, m.Name(), id)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: windows are exactly consecutive along each extracted chain.
func TestChainsPartitionWindows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, est := randomWorkload(rng)
		asg, err := Distribute(g, est, 3, AdaptL(), DefaultParams())
		if err != nil {
			return false
		}
		for _, chain := range asg.Chains {
			for i := 1; i < len(chain); i++ {
				prev, cur := chain[i-1], chain[i]
				if asg.OverConstrained {
					continue // degenerate chains share collapsed windows
				}
				if asg.AbsDeadline[prev] != asg.Arrival[cur] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAssignmentWindowAccessor(t *testing.T) {
	g := chainGraph(t, []rtime.Time{10, 10}, 40)
	asg := mustDistribute(t, g, 1, PURE())
	w := asg.Window(0)
	if w.Arrival != asg.Arrival[0] || w.Deadline != asg.AbsDeadline[0] {
		t.Error("Window accessor inconsistent")
	}
}

func TestChainRRecorded(t *testing.T) {
	g := chainGraph(t, []rtime.Time{10, 10, 10}, 60)
	asg := mustDistribute(t, g, 2, PURE())
	if len(asg.ChainR) != len(asg.Chains) {
		t.Fatalf("ChainR has %d entries for %d chains", len(asg.ChainR), len(asg.Chains))
	}
	// One chain, R = (60-30)/3 = 10.
	if asg.ChainR[0] != 10 {
		t.Errorf("R = %v, want 10", asg.ChainR[0])
	}
}

func TestChainRNonDecreasingCriticalness(t *testing.T) {
	// Chains are extracted most-critical-first; each round's winning R
	// reflects the state at that round, so strict monotonicity is not
	// guaranteed — but the FIRST chain must be the global minimum of
	// round one, which for a fresh graph is the tightest path. Check a
	// diamond: the heavier branch (lower R) goes first.
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("A", c1(10), 0)
	b := g.MustAddTask("B", c1(20), 0)
	c := g.MustAddTask("C", c1(30), 0)
	d := g.MustAddTask("D", c1(10), 0)
	g.MustAddArc(a.ID, b.ID, 1)
	g.MustAddArc(a.ID, c.ID, 1)
	g.MustAddArc(b.ID, d.ID, 1)
	g.MustAddArc(c.ID, d.ID, 1)
	g.Task(d.ID).ETEDeadline = 100
	g.MustFreeze()
	asg := mustDistribute(t, g, 2, PURE())
	if len(asg.ChainR) < 2 {
		t.Fatalf("chains = %v", asg.Chains)
	}
	// First chain: A,C,D with R = (100-50)/3 ≈ 16.67.
	if asg.ChainR[0] < 16.6 || asg.ChainR[0] > 16.7 {
		t.Errorf("first R = %v, want ≈16.67", asg.ChainR[0])
	}
}

// Golden determinism: the full pipeline output for a fixed seed is
// pinned bit-exactly, so any change to tie-breaking, rounding, or chain
// selection shows up as a diff here rather than as silent result drift.
func TestGoldenAssignment(t *testing.T) {
	g := taskgraph.NewGraph(1)
	costs := []rtime.Time{10, 25, 15, 20, 10, 30, 5}
	for _, c := range costs {
		g.MustAddTask("", c1(c), 0)
	}
	// A small series-parallel graph:
	// 0 → {1, 2}, 1 → 3, 2 → {3, 4}, {3, 4} → 5, 5 → 6
	g.MustAddArc(0, 1, 2)
	g.MustAddArc(0, 2, 1)
	g.MustAddArc(1, 3, 3)
	g.MustAddArc(2, 3, 1)
	g.MustAddArc(2, 4, 2)
	g.MustAddArc(3, 5, 1)
	g.MustAddArc(4, 5, 2)
	g.MustAddArc(5, 6, 1)
	g.Task(6).ETEDeadline = 150
	g.MustFreeze()

	asg, err := Distribute(g, costs, 2, AdaptL(), CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := asg.Validate(g); err != nil {
		t.Fatal(err)
	}
	golden := struct {
		arrival, deadline []rtime.Time
		chains            [][]int
	}{
		arrival:  asg.Arrival,
		deadline: asg.AbsDeadline,
		chains:   asg.Chains,
	}
	// Pin the invariant facts first (robust against regeneration):
	if asg.Arrival[0] != 0 || asg.AbsDeadline[6] != 150 {
		t.Fatalf("boundary windows wrong: %v %v", asg.Arrival, asg.AbsDeadline)
	}
	// The longest chain 0→2→3→5→6 (Σĉ maximal) must be sliced first.
	if len(golden.chains[0]) != 5 {
		t.Fatalf("first chain = %v, want the 5-task critical path", golden.chains[0])
	}
	// Then pin the exact values observed at creation time. If an
	// intentional algorithm change shifts them, regenerate this table
	// and note the change in EXPERIMENTS.md.
	wantA := []rtime.Time{0, 21, 21, 60, 60, 93, 134}
	wantD := []rtime.Time{21, 60, 60, 93, 93, 134, 150}
	for i := range wantA {
		if asg.Arrival[i] != wantA[i] || asg.AbsDeadline[i] != wantD[i] {
			t.Errorf("task %d window [%d,%d), golden [%d,%d)",
				i, asg.Arrival[i], asg.AbsDeadline[i], wantA[i], wantD[i])
		}
	}
}

// Faithful mode passes the same structural property battery as the
// default Consistent mode.
func TestFaithfulModeProperties(t *testing.T) {
	params := DefaultParams()
	params.Mode = Faithful
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, est := randomWorkload(rng)
		for _, m := range Metrics() {
			asg, err := Distribute(g, est, 1+rng.Intn(8), m, params)
			if err != nil {
				t.Logf("seed %d metric %s: %v", seed, m.Name(), err)
				return false
			}
			if err := asg.Validate(g); err != nil {
				t.Logf("seed %d metric %s: %v", seed, m.Name(), err)
				return false
			}
			seen := make([]bool, g.NumTasks())
			for _, chain := range asg.Chains {
				if g.ValidateChain(chain) != nil {
					return false
				}
				for _, id := range chain {
					if seen[id] {
						return false
					}
					seen[id] = true
				}
			}
			for _, ok := range seen {
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestExplain(t *testing.T) {
	g := chainGraph(t, []rtime.Time{10, 20, 30}, 120)
	asg := mustDistribute(t, g, 2, AdaptL())
	var b strings.Builder
	if err := Explain(&b, g, estOf(g), asg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"metric ADAPT-L", "round 1", "R =", "laxity", "t0", "t2"} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "over-constrained") {
		t.Error("loose chain flagged over-constrained in narrative")
	}
}
