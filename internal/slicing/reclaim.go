package slicing

import (
	"math"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// ReclaimWindows is the online slack-reclamation recovery policy: when
// a task overruns its window at run time, the windows the slicer
// assigned to its descendants are stale — the overrun consumed part of
// their laxity. ReclaimWindows redistributes the slack that remains
// between `now` (the overrunning task's actual finish) and the original
// end-to-end deadlines over the pending downstream tasks, using the
// same virtual execution times ĉ the active metric derived (so a
// contention-aware metric like ADAPT-L re-awards proportionally more of
// the surviving slack to contention-vulnerable tasks, exactly as it did
// offline).
//
// The redistribution is a uniform laxity-ratio stretch: with top(j) the
// largest ĉ-weighted chain length from any pending source through j
// (inclusive), and E(o) the original absolute deadline of pending
// output o, the stretch factor is
//
//	σ = min over pending outputs o of (E(o) − now) / top(o)
//
// and every pending task j receives the new absolute deadline
// now + ⌊σ·top(j)⌋. By construction no output deadline ever moves past
// its end-to-end bound (σ is the minimum ratio), sequential pending
// tasks keep non-decreasing deadlines along every arc, and when the
// remaining load no longer fits (σ < 1 per virtual unit) the shrinkage
// is shared across the chain in metric proportion instead of falling
// entirely on the last tasks.
//
// virtual[i] is the metric's virtual cost for task i (entries ≤ 0 fall
// back to one unit, covering distributors that do not record virtual
// costs). pending[i] selects the tasks whose windows are redistributed;
// the set must be closed under successors (it is, for "unstarted
// descendants of an overrunning task", since a successor of an
// unstarted task cannot have started). deadline[i] is the original
// absolute-deadline assignment.
//
// The returned slice has a new absolute deadline for every pending task
// and rtime.Unset elsewhere; ok is false when there is nothing to do
// (no pending task).
func ReclaimWindows(g *taskgraph.Graph, virtual []rtime.Time, pending []bool,
	now rtime.Time, deadline []rtime.Time) ([]rtime.Time, bool) {

	n := g.NumTasks()
	any := false
	for i := 0; i < n; i++ {
		if i < len(pending) && pending[i] {
			any = true
			break
		}
	}
	if !any {
		return nil, false
	}

	cost := func(i int) float64 {
		if i < len(virtual) && virtual[i] > 0 {
			return float64(virtual[i])
		}
		return 1
	}

	// Longest ĉ-weighted chain from any pending source through each
	// pending task, via one forward pass in topological order.
	top := make([]float64, n)
	for _, j := range g.TopoOrder() {
		if !pending[j] {
			continue
		}
		var in float64
		for _, p := range g.Preds(j) {
			if pending[p] && top[p] > in {
				in = top[p]
			}
		}
		top[j] = in + cost(j)
	}

	// The stretch factor: the tightest remaining-window-to-remaining-
	// load ratio over the chains ending at pending sinks (tasks with no
	// pending successor — in a successor-closed pending set these are
	// exactly the pending graph outputs, whose deadlines carry the
	// end-to-end bounds).
	sigma := math.Inf(1)
	for j := 0; j < n; j++ {
		if !pending[j] {
			continue
		}
		sink := true
		for _, s := range g.Succs(j) {
			if pending[s] {
				sink = false
				break
			}
		}
		if !sink {
			continue
		}
		window := float64(deadline[j] - now)
		if window <= 0 {
			sigma = 0
			break
		}
		if r := window / top[j]; r < sigma {
			sigma = r
		}
	}
	if math.IsInf(sigma, 1) {
		return nil, false
	}

	out := make([]rtime.Time, n)
	for i := range out {
		out[i] = rtime.Unset
	}
	for j := 0; j < n; j++ {
		if pending[j] {
			out[j] = now + rtime.Time(math.Floor(sigma*top[j]))
		}
	}
	return out, true
}
