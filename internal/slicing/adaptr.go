package slicing

import (
	"math"

	"repro/internal/rtime"
)

// AdaptR returns the resource-aware extension of ADAPT-L, following the
// paper's future-work direction (§7.3: apply the technique "not only to
// computational resources such as processors but also to general
// resources including shared data structures").
//
// A task competing for processors shares m of them with its parallel
// set, so ADAPT-L divides |Ψᵢ| by m. A task holding an exclusive
// resource serializes against *every* parallel task that shares the
// resource, regardless of m, so the conflicting tasks contribute
// undivided:
//
//	ĉᵢ = c̄ᵢ                                            if c̄ᵢ < c_thres
//	ĉᵢ = c̄ᵢ·(1 + k_L·|Ψᵢ|/m + k_R·|Ψᵢ ∩ sharers(i)|)   otherwise
//
// where sharers(i) are the tasks holding at least one resource in
// common with τᵢ. With no resources in the application, ADAPT-R
// degenerates exactly to ADAPT-L. The k_R factor reuses Params.KL by
// default (KR field, zero meaning "same as KL").
func AdaptR() Metric {
	return &baseMetric{
		name:  "ADAPT-R",
		shape: pureShape,
		virtual: func(env *Env) []rtime.Time {
			kr := env.Params.KR
			if kr == 0 {
				kr = env.Params.KL
			}
			return inflate(env, func(i int) float64 {
				base := env.Params.KL * float64(env.G.ParallelSetSize(i)) / float64(env.M)
				return base + kr*float64(env.G.ResourceConflicts(i))
			})
		},
	}
}

// EffectiveContention returns, for diagnostics and tests, the surplus
// factor ADAPT-R assigns to task i before threshold filtering.
func EffectiveContention(env *Env, i int) float64 {
	kr := env.Params.KR
	if kr == 0 {
		kr = env.Params.KL
	}
	if math.IsNaN(kr) {
		kr = 0
	}
	return env.Params.KL*float64(env.G.ParallelSetSize(i))/float64(env.M) +
		kr*float64(env.G.ResourceConflicts(i))
}

// AdaptN is a NORM-shaped adaptive metric: ADAPT-L's virtual execution
// times (eq. 8) fed through NORM's proportional laxity sharing
// (eq. 2–3) instead of PURE's equal sharing. The paper observes (§6.3)
// that NORM overtakes ADAPT-G at large execution-time spreads precisely
// because proportional shares protect long tasks, while the ADAPT
// metrics inherit PURE's equal shares; ADAPT-N tests whether combining
// both mechanisms dominates each.
func AdaptN() Metric {
	return &baseMetric{
		name:  "ADAPT-N",
		shape: normShape,
		virtual: func(env *Env) []rtime.Time {
			return inflate(env, func(i int) float64 {
				return env.Params.KL * float64(env.G.ParallelSetSize(i)) / float64(env.M)
			})
		},
	}
}
