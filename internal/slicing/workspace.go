package slicing

import (
	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// cand is one cached chain candidate of a start task: the best
// (maximum-Σĉ) chain of length l from the start to end. Candidates are
// window-free — the end-to-end window [EA(start), LD(end)] is applied at
// evaluation time, which is what makes them reusable across rounds (and,
// with Retain, across builds): the DP that produces them depends only on
// the graph, the virtual costs, and the set of already-assigned tasks.
type cand struct {
	end int32
	l   int32
	sum rtime.Time
}

// candState tracks the validity of one start's cached candidate list.
type candState uint8

const (
	// candInvalid: no usable candidates; the DP must run.
	candInvalid candState = iota
	// candBase: computed against an empty assigned set (round 0). Base
	// entries survive into the next build of the same graph when Retain
	// is set and no reached task's virtual cost changed.
	candBase
	// candMid: computed mid-build against a partial assigned set; valid
	// for the remainder of this build only.
	candMid
	// candBaseStale: a base list whose reach intersected a chain
	// committed later in the same build. It is unusable for the rest of
	// that build — but it was computed against the empty assigned set,
	// which is exactly the next build's round-0 state, so with Retain it
	// becomes exact (candBase) again at the next prepare unless a
	// reached task's virtual cost changed.
	candBaseStale
)

// Workspace is the reusable working memory of Distribute: the flat
// critical-chain DP tables, the per-start candidate caches, the EA/LD
// corridor arrays, and the slice-boundary scratch. A zero Workspace is
// ready to use; it grows to the largest graph it has seen and never
// shrinks. A Workspace is not safe for concurrent use — pool instances
// (pipeline.BuildScratch does) instead of sharing one.
//
// Nothing reachable from the returned *Assignment ever aliases workspace
// memory: all assignment fields are freshly allocated on every call, so
// assignments stay immutable when the workspace is reused.
type Workspace struct {
	// Retain opts into cross-invocation candidate reuse: when the next
	// Distribute call runs over the same *taskgraph.Graph, round-0
	// candidate lists of starts whose reachable set contains no task
	// with a changed virtual cost are kept instead of recomputed. This
	// is the incremental path pipeline.Rebuild rides for estimate-only
	// deltas. Leave false for independent builds (the default), so a
	// "cold" build never borrows work from a previous identical one.
	Retain bool

	g     *taskgraph.Graph
	n     int
	depth int
	words int // ⌈n/64⌉, the bitset width
	vc    []rtime.Time

	// Per-start candidate store.
	state []candState
	cands [][]cand
	reach [][]uint64 // reach[s]: bitset of tasks the DP from s touched

	// DP scratch for one start at a time. Tables are allocated flat
	// (n×(depth+1)) and cells are claimed lazily via visit stamps (stamp
	// per node, cell per (node, length) entry), with lo/hi bracketing
	// each reached node's set lengths, so a DP touches only the cells it
	// reaches and allocates nothing.
	maxC    []rtime.Time
	par     []int32
	stamp   []uint32
	cell    []uint32
	lo, hi  []int32
	tick    uint32
	touched []int32
	dpStart int // start of the last DP run this round; -1 when stale

	// Per-build slicer state.
	assigned []bool
	ea, ld   []rtime.Time
	dirty    []uint64

	// Slice-boundary scratch.
	costs  []rtime.Time
	shares []float64
	bnd    []rtime.Time
}

// NewWorkspace returns an empty workspace. The zero value is equivalent.
func NewWorkspace() *Workspace { return &Workspace{} }

// Distribute runs the slicing algorithm through this workspace; see the
// package-level Distribute for the algorithm contract. The result is
// identical to Distribute's for any workspace state: reuse (and Retain)
// change where working memory comes from, never the outcome.
func (ws *Workspace) Distribute(g *taskgraph.Graph, est []rtime.Time, m int, metric Metric, params Params) (*Assignment, error) {
	if ws == nil {
		ws = &Workspace{}
	}
	return distribute(ws, g, est, m, metric, params)
}

// prepare sizes the workspace for graph g and reconciles the retained
// candidate store with the new virtual costs: on a fresh graph (or with
// Retain off) everything is invalidated; otherwise base entries survive
// unless a task they reach changed its virtual cost, and mid entries —
// valid only within the build that made them — are always dropped.
func (ws *Workspace) prepare(g *taskgraph.Graph, vc []rtime.Time) {
	n, depth := g.NumTasks(), g.Depth()
	words := (n + 63) / 64
	fresh := !ws.Retain || ws.g != g || ws.n != n || ws.depth != depth

	ws.grow(n, depth, words)

	if fresh {
		for i := 0; i < n; i++ {
			ws.state[i] = candInvalid
		}
		copy(ws.vc, vc)
	} else {
		d := ws.dirty
		for i := range d {
			d[i] = 0
		}
		any := false
		for i := 0; i < n; i++ {
			if ws.vc[i] != vc[i] {
				d[i>>6] |= 1 << (uint(i) & 63)
				ws.vc[i] = vc[i]
				any = true
			}
		}
		for s := 0; s < n; s++ {
			switch ws.state[s] {
			case candMid:
				// Mid lists were computed against a partial assigned set
				// of the previous build; the new build assigns nothing
				// yet, so they must go.
				ws.state[s] = candInvalid
			case candBase, candBaseStale:
				// Base lists were computed against the empty assigned
				// set, which is exactly the new build's round-0 state:
				// they are exact again, unless a reached task's virtual
				// cost changed.
				if any && intersects(ws.reach[s], d) {
					ws.state[s] = candInvalid
				} else {
					ws.state[s] = candBase
				}
			}
		}
	}

	ws.g, ws.n, ws.depth, ws.words = g, n, depth, words
	for i := 0; i < n; i++ {
		ws.assigned[i] = false
	}
	ws.dpStart = -1
}

// grow (re)sizes every array for an n-task, depth-deep graph, keeping
// existing backing stores when they are large enough.
func (ws *Workspace) grow(n, depth, words int) {
	rows := n * (depth + 1)
	if cap(ws.maxC) < rows {
		ws.maxC = make([]rtime.Time, rows)
		ws.par = make([]int32, rows)
	}
	ws.maxC = ws.maxC[:rows]
	ws.par = ws.par[:rows]

	if cap(ws.stamp) < n || cap(ws.cell) < rows {
		// The node and cell stamps share one tick: reset them together
		// so a zeroed new array can never collide with a surviving one.
		ws.stamp = make([]uint32, n)
		ws.cell = make([]uint32, rows)
		ws.tick = 0
	}
	ws.stamp = ws.stamp[:n]
	ws.cell = ws.cell[:rows]
	if cap(ws.lo) < n {
		ws.lo = make([]int32, n)
		ws.hi = make([]int32, n)
	}
	ws.lo, ws.hi = ws.lo[:n], ws.hi[:n]

	if cap(ws.state) < n {
		state := make([]candState, n)
		copy(state, ws.state)
		ws.state = state
	}
	ws.state = ws.state[:n]
	if len(ws.cands) < n {
		cands := make([][]cand, n)
		copy(cands, ws.cands)
		ws.cands = cands
	}
	if len(ws.reach) < n {
		reach := make([][]uint64, n)
		copy(reach, ws.reach)
		ws.reach = reach
	}
	for i := 0; i < n; i++ {
		if cap(ws.reach[i]) < words {
			ws.reach[i] = make([]uint64, words)
		}
		ws.reach[i] = ws.reach[i][:words]
	}

	ws.vc = growTimes(ws.vc, n)
	ws.ea = growTimes(ws.ea, n)
	ws.ld = growTimes(ws.ld, n)
	ws.costs = growTimes(ws.costs, n)
	ws.bnd = growTimes(ws.bnd, n+1)
	if cap(ws.assigned) < n {
		ws.assigned = make([]bool, n)
	}
	ws.assigned = ws.assigned[:n]
	if cap(ws.shares) < n {
		ws.shares = make([]float64, n)
	}
	ws.shares = ws.shares[:n]
	if cap(ws.dirty) < words {
		ws.dirty = make([]uint64, words)
	}
	ws.dirty = ws.dirty[:words]
	if cap(ws.touched) < n {
		ws.touched = make([]int32, 0, n)
	}
}

func growTimes(s []rtime.Time, n int) []rtime.Time {
	if cap(s) < n {
		return make([]rtime.Time, n)
	}
	return s[:n]
}

// intersects reports whether two equal-width bitsets share a bit.
func intersects(a, b []uint64) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// invalidateChain drops every candidate list whose DP reached a task
// of the just-committed chain: those lists were computed when the
// chain's tasks were still unassigned, so their sums and reachability
// are no longer exact. Base lists are demoted to candBaseStale rather
// than candInvalid so that, with Retain, prepare can resurrect them at
// the next build's round 0. Lists whose reach is disjoint from the
// chain would compute bit-identically today and stay valid.
func (ws *Workspace) invalidateChain(chain []int) {
	d := ws.dirty
	for i := range d {
		d[i] = 0
	}
	for _, t := range chain {
		d[t>>6] |= 1 << (uint(t) & 63)
	}
	for s := 0; s < ws.n; s++ {
		switch ws.state[s] {
		case candBase:
			if intersects(ws.reach[s], d) {
				ws.state[s] = candBaseStale
			}
		case candMid:
			if intersects(ws.reach[s], d) {
				ws.state[s] = candInvalid
			}
		}
	}
	ws.dpStart = -1
}
