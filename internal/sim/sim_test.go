package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

func c1(v rtime.Time) []rtime.Time { return []rtime.Time{v} }

// pipelineFixture returns a small two-task remote pipeline with manual
// placements for direct Report checks.
func pipelineFixture(t *testing.T) (*taskgraph.Graph, *arch.Platform, *slicing.Assignment) {
	t.Helper()
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", c1(10), 0)
	g.MustAddTask("b", c1(10), 0)
	g.MustAddArc(0, 1, 4)
	g.MustFreeze()
	p := arch.Homogeneous(2)
	asg := &slicing.Assignment{
		Arrival:     []rtime.Time{0, 10},
		AbsDeadline: []rtime.Time{10, 40},
		RelDeadline: []rtime.Time{10, 30},
	}
	return g, p, asg
}

func TestReplayValidSchedule(t *testing.T) {
	g, p, asg := pipelineFixture(t)
	s := &sched.Schedule{Placements: []sched.Placement{
		{Proc: 0, Start: 0, Finish: 10},
		{Proc: 1, Start: 14, Finish: 24}, // message lands at 10+4
	}}
	r, err := Replay(g, p, asg, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Valid || len(r.Violations) != 0 {
		t.Fatalf("valid schedule rejected: %v", r.Violations)
	}
	if len(r.DeadlineMisses) != 0 {
		t.Errorf("deadline misses: %v", r.DeadlineMisses)
	}
	if r.BusBusy != 4 {
		t.Errorf("BusBusy = %d, want 4", r.BusBusy)
	}
	if r.Makespan != 24 {
		t.Errorf("Makespan = %d, want 24", r.Makespan)
	}
	if u := r.Utilization(); u < 0.41 || u > 0.42 { // 20 / (24·2)
		t.Errorf("Utilization = %v", u)
	}
}

func TestReplayCatchesEarlyStartBeforeMessage(t *testing.T) {
	g, p, asg := pipelineFixture(t)
	s := &sched.Schedule{Placements: []sched.Placement{
		{Proc: 0, Start: 0, Finish: 10},
		{Proc: 1, Start: 12, Finish: 22}, // message lands at 14
	}}
	r, err := Replay(g, p, asg, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Valid {
		t.Fatal("start before message landing not caught")
	}
	if !strings.Contains(strings.Join(r.Violations, ";"), "message") {
		t.Errorf("violations = %v", r.Violations)
	}
}

func TestReplayCatchesProcessorOverlap(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", c1(10), 0)
	g.MustAddTask("b", c1(10), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := &slicing.Assignment{
		Arrival:     []rtime.Time{0, 0},
		AbsDeadline: []rtime.Time{100, 100},
		RelDeadline: []rtime.Time{100, 100},
	}
	s := &sched.Schedule{Placements: []sched.Placement{
		{Proc: 0, Start: 0, Finish: 10},
		{Proc: 0, Start: 5, Finish: 15},
	}}
	r, _ := Replay(g, p, asg, s, Options{})
	if r.Valid {
		t.Fatal("overlapping executions on one processor not caught")
	}
}

func TestReplayCatchesWCETMismatchAndEarlyArrival(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", c1(10), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := &slicing.Assignment{
		Arrival:     []rtime.Time{5},
		AbsDeadline: []rtime.Time{50},
		RelDeadline: []rtime.Time{45},
	}
	s := &sched.Schedule{Placements: []sched.Placement{{Proc: 0, Start: 3, Finish: 9}}}
	r, _ := Replay(g, p, asg, s, Options{})
	if r.Valid || len(r.Violations) < 2 {
		t.Fatalf("want WCET + arrival violations, got %v", r.Violations)
	}
}

func TestReplayCatchesUnplacedAndIneligible(t *testing.T) {
	g := taskgraph.NewGraph(2)
	g.MustAddTask("a", []rtime.Time{10, rtime.Unset}, 0)
	g.MustFreeze()
	p := arch.MustNew(arch.Unrelated, []arch.Class{{}, {}}, []int{1}, arch.Bus{DelayPerItem: 1})
	asg := &slicing.Assignment{
		Arrival:     []rtime.Time{0},
		AbsDeadline: []rtime.Time{50},
		RelDeadline: []rtime.Time{50},
	}
	r, _ := Replay(g, p, asg, &sched.Schedule{Placements: []sched.Placement{{Proc: -1}}}, Options{})
	if r.Valid {
		t.Error("unplaced task not caught")
	}
	r2, _ := Replay(g, p, asg, &sched.Schedule{Placements: []sched.Placement{{Proc: 0, Start: 0, Finish: 10}}}, Options{})
	if r2.Valid {
		t.Error("ineligible placement not caught")
	}
}

func TestReplayReportsDeadlineMissSeparately(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", c1(10), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := &slicing.Assignment{
		Arrival:     []rtime.Time{0},
		AbsDeadline: []rtime.Time{8},
		RelDeadline: []rtime.Time{8},
	}
	s := &sched.Schedule{Placements: []sched.Placement{{Proc: 0, Start: 0, Finish: 10}}}
	r, _ := Replay(g, p, asg, s, Options{})
	if !r.Valid {
		t.Errorf("a deadline miss is not a structural violation: %v", r.Violations)
	}
	if len(r.DeadlineMisses) != 1 || r.DeadlineMisses[0] != 0 {
		t.Errorf("DeadlineMisses = %v", r.DeadlineMisses)
	}
}

func TestSerializedBusQueuesMessages(t *testing.T) {
	// Two senders finish at the same time; their messages must share the
	// bus sequentially, so the second lands later than nominal.
	g := taskgraph.NewGraph(1)
	g.MustAddTask("s1", c1(10), 0)
	g.MustAddTask("s2", c1(10), 0)
	g.MustAddTask("r1", c1(5), 0)
	g.MustAddTask("r2", c1(5), 0)
	g.MustAddArc(0, 2, 4)
	g.MustAddArc(1, 3, 4)
	g.MustFreeze()
	p := arch.Homogeneous(4)
	asg := &slicing.Assignment{
		Arrival:     []rtime.Time{0, 0, 10, 10},
		AbsDeadline: []rtime.Time{10, 10, 60, 60},
		RelDeadline: []rtime.Time{10, 10, 50, 50},
	}
	s := &sched.Schedule{Placements: []sched.Placement{
		{Proc: 0, Start: 0, Finish: 10},
		{Proc: 1, Start: 0, Finish: 10},
		{Proc: 2, Start: 14, Finish: 19}, // nominal landing: 14
		{Proc: 3, Start: 14, Finish: 19},
	}}
	rNom, _ := Replay(g, p, asg, s, Options{})
	if !rNom.Valid {
		t.Fatalf("nominal model should accept: %v", rNom.Violations)
	}
	rSer, _ := Replay(g, p, asg, s, Options{SerializedBus: true})
	if rSer.Valid {
		t.Fatal("serialized bus should flag the second message (lands at 18)")
	}
	if rSer.BusBusy != 8 {
		t.Errorf("BusBusy = %d, want 8", rSer.BusBusy)
	}
	// One transfer must start when the other ends.
	var ends []rtime.Time
	for _, tr := range rSer.Transfers {
		if !tr.SameProc {
			ends = append(ends, tr.End)
		}
	}
	if len(ends) != 2 || ends[0] == ends[1] {
		t.Errorf("transfers not serialized: %+v", rSer.Transfers)
	}
}

// Property: every schedule produced by either scheduler replays cleanly
// under the nominal bus model on generated workloads.
func TestSchedulersReplayCleanly(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		m := 2 + int(mRaw%6)
		cfg := gen.Default(m)
		cfg.Seed = seed
		w, err := gen.Generate(cfg)
		if err != nil {
			return false
		}
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			return false
		}
		asg, err := slicing.Distribute(w.Graph, est, m, slicing.AdaptL(), slicing.CalibratedParams())
		if err != nil {
			return false
		}
		for _, build := range []func() (*sched.Schedule, error){
			func() (*sched.Schedule, error) { return sched.EDF(w.Graph, w.Platform, asg) },
			func() (*sched.Schedule, error) { return sched.Dispatch(w.Graph, w.Platform, asg) },
		} {
			s, err := build()
			if err != nil {
				return false
			}
			r, err := Replay(w.Graph, w.Platform, asg, s, Options{})
			if err != nil {
				return false
			}
			if !r.Valid {
				t.Logf("seed %d m %d: %v", seed, m, r.Violations)
				return false
			}
			// Feasibility agreement: scheduler says feasible ⇔ replay
			// sees no deadline miss (given every task was placed).
			if s.Feasible != (len(r.DeadlineMisses) == 0) {
				t.Logf("seed %d m %d: feasibility disagreement", seed, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Mutation fuzzing: take a valid schedule and apply a random harmful
// mutation; Replay must flag it. Each mutation is constructed to break
// a specific obligation, so a silent pass is a verifier hole.
func TestReplayCatchesMutations(t *testing.T) {
	cfg := gen.Default(3)
	cfg.Seed = 23
	w := gen.MustGenerate(cfg)
	est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	base, err := sched.Dispatch(w.Graph, w.Platform, asg)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := Replay(w.Graph, w.Platform, asg, base, Options{}); !r.Valid {
		t.Fatalf("baseline invalid: %v", r.Violations)
	}

	clone := func() *sched.Schedule {
		c := *base
		c.Placements = append([]sched.Placement(nil), base.Placements...)
		return c2ptr(c)
	}

	rng := rand.New(rand.NewSource(99))
	mutations := []struct {
		name  string
		apply func(s *sched.Schedule) bool // returns false if inapplicable
	}{
		{"start before arrival", func(s *sched.Schedule) bool {
			for _, i := range rng.Perm(len(s.Placements)) {
				pl := &s.Placements[i]
				if pl.Proc >= 0 && pl.Start > 0 && asg.Arrival[i] == pl.Start {
					pl.Start--
					return true
				}
			}
			return false
		}},
		{"shrink execution below WCET", func(s *sched.Schedule) bool {
			for _, i := range rng.Perm(len(s.Placements)) {
				pl := &s.Placements[i]
				if pl.Proc >= 0 {
					pl.Finish--
					return true
				}
			}
			return false
		}},
		{"move to ineligible class", func(s *sched.Schedule) bool {
			for _, i := range rng.Perm(len(s.Placements)) {
				pl := &s.Placements[i]
				if pl.Proc < 0 {
					continue
				}
				for q := 0; q < w.Platform.M(); q++ {
					if !w.Graph.Task(i).EligibleOn(w.Platform.ClassOf(q)) {
						pl.Proc = q
						return true
					}
				}
			}
			return false
		}},
		{"overlap two tasks on one processor", func(s *sched.Schedule) bool {
			// Move the second task of some processor onto the first one's
			// interval.
			byProc := map[int][]int{}
			for i, pl := range s.Placements {
				if pl.Proc >= 0 {
					byProc[pl.Proc] = append(byProc[pl.Proc], i)
				}
			}
			for _, ids := range byProc {
				if len(ids) < 2 {
					continue
				}
				a, b := ids[0], ids[1]
				dur := s.Placements[b].Finish - s.Placements[b].Start
				s.Placements[b].Start = s.Placements[a].Start
				s.Placements[b].Finish = s.Placements[b].Start + dur
				return true
			}
			return false
		}},
		{"drop a placement", func(s *sched.Schedule) bool {
			for _, i := range rng.Perm(len(s.Placements)) {
				if s.Placements[i].Proc >= 0 {
					s.Placements[i] = sched.Placement{Proc: -1}
					return true
				}
			}
			return false
		}},
	}
	for _, mu := range mutations {
		s := clone()
		if !mu.apply(s) {
			t.Logf("mutation %q inapplicable on this workload", mu.name)
			continue
		}
		r, err := Replay(w.Graph, w.Platform, asg, s, Options{})
		if err != nil {
			t.Fatalf("%s: %v", mu.name, err)
		}
		if r.Valid {
			t.Errorf("mutation %q not caught by replay", mu.name)
		}
	}
}

func c2ptr(s sched.Schedule) *sched.Schedule { return &s }
