package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

// chainFixture builds a 3-task chain on one processor with PURE windows
// [0,20) [20,40) [40,60): the workload of the hand-checkable overrun
// table test.
func chainFixture(t *testing.T) (*taskgraph.Graph, *arch.Platform, *slicing.Assignment) {
	t.Helper()
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", c1(10), 0)
	g.MustAddTask("b", c1(10), 0)
	g.MustAddTask("c", c1(10), 0)
	g.MustAddArc(0, 1, 0)
	g.MustAddArc(1, 2, 0)
	g.Task(2).ETEDeadline = 60
	g.MustFreeze()
	p := arch.Homogeneous(1)
	est := []rtime.Time{10, 10, 10}
	asg, err := slicing.Distribute(g, est, 1, slicing.PURE(), slicing.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return g, p, asg
}

// Property: a zero-intensity fault plan is a strict superset of nominal
// replay — the injected execution reproduces the time-driven schedule
// and the nominal Report byte for byte.
func TestZeroIntensityInjectionMatchesReplay(t *testing.T) {
	f := func(seed int64, mRaw uint8, serialized bool) bool {
		m := 2 + int(mRaw%6)
		cfg := gen.Default(m)
		cfg.Seed = seed
		w, err := gen.Generate(cfg)
		if err != nil {
			return false
		}
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			return false
		}
		asg, err := slicing.Distribute(w.Graph, est, m, slicing.AdaptL(), slicing.CalibratedParams())
		if err != nil {
			return false
		}
		s, err := sched.Dispatch(w.Graph, w.Platform, asg)
		if err != nil {
			return false
		}
		nominal, err := Replay(w.Graph, w.Platform, asg, s, Options{SerializedBus: serialized})
		if err != nil {
			return false
		}
		trace, err := faults.Scaled(0, seed).Materialize(w.Graph, w.Platform, 1000)
		if err != nil {
			return false
		}
		ir, err := Inject(w.Graph, w.Platform, asg, s, Options{SerializedBus: serialized, Faults: trace})
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(ir.Executed.Placements, s.Placements) {
			t.Logf("seed %d m %d: executed placements diverge", seed, m)
			return false
		}
		if !reflect.DeepEqual(&ir.Report, nominal) {
			t.Logf("seed %d m %d: reports diverge:\nnominal  %+v\ninjected %+v", seed, m, nominal, ir.Report)
			return false
		}
		if ir.Degradation.Overruns != 0 || ir.Degradation.Aborted != 0 ||
			ir.Degradation.Migrations != 0 || ir.Degradation.Reclamations != 0 {
			t.Logf("seed %d m %d: zero trace reported fault activity: %+v", seed, m, ir.Degradation)
			return false
		}
		// Recovery must also be inert on feasible nominal runs.
		if s.Feasible {
			ir2, err := Inject(w.Graph, w.Platform, asg, s, Options{SerializedBus: serialized, Faults: trace, Reclaim: true})
			if err != nil || !reflect.DeepEqual(&ir2.Report, nominal) {
				t.Logf("seed %d m %d: reclaim perturbed a feasible zero-fault run", seed, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// Table test: one known overrun produces exactly the predicted
// downstream misses. t0 (window [0,20)) runs 4× over on a single
// processor: t0 finishes at 40 (miss, lateness 20), t1 runs [40,50)
// against deadline 40 (miss, lateness 10), t2 runs [50,60) against
// deadline 60 — on time. The end-to-end contract survives.
func TestSingleOverrunPredictedMisses(t *testing.T) {
	g, p, asg := chainFixture(t)
	s, err := sched.Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Feasible {
		t.Fatalf("nominal chain infeasible: %+v", s)
	}
	trace := faults.ZeroTrace(3, 1)
	trace.ExecScale[0] = 4

	ir, err := Inject(g, p, asg, s, Options{Faults: trace})
	if err != nil {
		t.Fatal(err)
	}
	d := ir.Degradation
	wantPlacements := []sched.Placement{
		{Proc: 0, Start: 0, Finish: 40},
		{Proc: 0, Start: 40, Finish: 50},
		{Proc: 0, Start: 50, Finish: 60},
	}
	if !reflect.DeepEqual(ir.Executed.Placements, wantPlacements) {
		t.Fatalf("executed placements = %+v, want %+v", ir.Executed.Placements, wantPlacements)
	}
	if got, want := ir.Executed.Missed, []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("missed = %v, want %v", got, want)
	}
	if d.Misses != 2 || d.ETEMisses != 0 || d.Unplaced != 0 {
		t.Errorf("Misses=%d ETEMisses=%d Unplaced=%d, want 2, 0, 0", d.Misses, d.ETEMisses, d.Unplaced)
	}
	if d.Overruns != 1 {
		t.Errorf("Overruns = %d, want 1", d.Overruns)
	}
	if d.FirstMiss != 40 {
		t.Errorf("FirstMiss = %d, want 40", d.FirstMiss)
	}
	if d.MaxLateness != 20 {
		t.Errorf("MaxLateness = %d, want 20", d.MaxLateness)
	}
	if d.MeanLateness != 15 { // (20 + 10) / 2
		t.Errorf("MeanLateness = %v, want 15", d.MeanLateness)
	}
	if !ir.Valid {
		t.Errorf("injected run structurally invalid: %v", ir.Violations)
	}

	// With recovery: the same overrun triggers exactly one reclamation
	// (the deadline accounting, judged against the original windows, is
	// unchanged on a single processor where no reordering is possible).
	ir2, err := Inject(g, p, asg, s, Options{Faults: trace, Reclaim: true})
	if err != nil {
		t.Fatal(err)
	}
	if ir2.Degradation.Reclamations != 1 {
		t.Errorf("Reclamations = %d, want 1", ir2.Degradation.Reclamations)
	}
	if !reflect.DeepEqual(ir2.Executed.Placements, wantPlacements) {
		t.Errorf("recovery changed a single-processor chain: %+v", ir2.Executed.Placements)
	}
}

// Processor loss: the task running on the dying processor is aborted
// and migrates to the survivor, exploiting relaxed locality.
func TestProcessorLossMigration(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", c1(10), 0)
	g.MustAddTask("b", c1(10), 0)
	g.Task(0).ETEDeadline = 40
	g.Task(1).ETEDeadline = 40
	g.MustFreeze()
	p := arch.Homogeneous(2)
	est := []rtime.Time{10, 10}
	asg, err := slicing.Distribute(g, est, 2, slicing.PURE(), slicing.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	trace := faults.ZeroTrace(2, 2)
	trace.DownAt[0] = 5 // processor 0 dies mid-execution of task 0

	ir, err := Inject(g, p, asg, s, Options{Faults: trace})
	if err != nil {
		t.Fatal(err)
	}
	d := ir.Degradation
	if d.Aborted != 1 || d.Migrations != 1 {
		t.Fatalf("Aborted=%d Migrations=%d, want 1, 1", d.Aborted, d.Migrations)
	}
	pl := ir.Executed.Placements
	if pl[0].Proc != 1 || pl[0].Start != 10 || pl[0].Finish != 20 {
		t.Errorf("migrated task placement = %+v, want proc 1 [10,20)", pl[0])
	}
	if pl[1].Proc != 1 || pl[1].Start != 0 || pl[1].Finish != 10 {
		t.Errorf("survivor placement = %+v, want proc 1 [0,10)", pl[1])
	}
	if !ir.Executed.Feasible || d.Misses != 0 {
		t.Errorf("run should still meet every deadline: %+v", d)
	}
	if !ir.Valid {
		t.Errorf("injected run structurally invalid: %v", ir.Violations)
	}
}

// Total loss: when every eligible processor is gone, the stranded tasks
// are reported unplaced, not looped on forever.
func TestProcessorLossStrandsTasks(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", c1(10), 0)
	g.Task(0).ETEDeadline = 40
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg, err := slicing.Distribute(g, []rtime.Time{10}, 1, slicing.PURE(), slicing.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	trace := faults.ZeroTrace(1, 1)
	trace.DownAt[0] = 5

	ir, err := Inject(g, p, asg, s, Options{Faults: trace})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Degradation.Unplaced != 1 || ir.Degradation.Misses != 1 {
		t.Fatalf("Unplaced=%d Misses=%d, want 1, 1", ir.Degradation.Unplaced, ir.Degradation.Misses)
	}
	if ir.Executed.Feasible {
		t.Error("stranded run reported feasible")
	}
}

// Bus jitter: a jittered message delays its consumer by exactly the
// extra delay, and the injected replay verifies the late landing.
func TestBusJitterDelaysConsumer(t *testing.T) {
	// Two classes, one processor each; a runs only on class 0, b only
	// on class 1, so the message must cross the bus (3 items × 1 unit).
	g := taskgraph.NewGraph(2)
	g.MustAddTask("a", []rtime.Time{10, rtime.Unset}, 0)
	g.MustAddTask("b", []rtime.Time{rtime.Unset, 10}, 0)
	g.MustAddArc(0, 1, 3)
	g.Task(1).ETEDeadline = 60
	g.MustFreeze()
	p := arch.MustNew(arch.Unrelated,
		[]arch.Class{{Name: "e0", Speed: 1}, {Name: "e1", Speed: 1}},
		[]int{0, 1}, arch.Bus{DelayPerItem: 1})
	est := []rtime.Time{10, 10}
	asg, err := slicing.Distribute(g, est, 2, slicing.PURE(), slicing.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	// Nominal landing is 10 + 3 = 13, but the consumer's assigned
	// arrival gates it until its window opens; 27 extra units push the
	// landing past every nominal gate, so the start tracks the landing.
	trace := faults.ZeroTrace(2, 2)
	trace.MsgExtra[[2]int{0, 1}] = 27

	ir, err := Inject(g, p, asg, s, Options{Faults: trace})
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.Transfers) != 1 || ir.Transfers[0].End-ir.Transfers[0].Start != 3+27 {
		t.Fatalf("transfer = %+v, want 30 bus units", ir.Transfers)
	}
	if got, want := ir.Executed.Placements[1].Start, ir.Transfers[0].End; got != want {
		t.Errorf("jittered consumer starts at %d, want the landing at %d", got, want)
	}
	if got := ir.Executed.Placements[1].Start; got <= s.Placements[1].Start {
		t.Errorf("jitter did not delay the consumer: %d vs nominal %d", got, s.Placements[1].Start)
	}
	if !ir.Valid {
		t.Errorf("injected run structurally invalid: %v", ir.Violations)
	}
}

// Recovery effectiveness: on a fork where the overrun's sibling branch
// hogs the EDF priority, reclamation re-prioritizes the starved
// descendant and rescues the end-to-end deadline.
func TestReclaimReordersDispatch(t *testing.T) {
	// d0 → d1 and s0 → s1 compete for one processor. Nominal windows
	// give d1 a later deadline than s1; after d0's overrun, d1's chain
	// is the tight one — only reclamation notices.
	g := taskgraph.NewGraph(1)
	g.MustAddTask("d0", c1(10), 0)
	g.MustAddTask("d1", c1(10), 0)
	g.MustAddTask("s0", c1(10), 0)
	g.MustAddTask("s1", c1(10), 0)
	g.MustAddArc(0, 1, 0)
	g.MustAddArc(2, 3, 0)
	g.Task(1).ETEDeadline = 58
	g.Task(3).ETEDeadline = 60
	g.MustFreeze()
	p := arch.Homogeneous(1)
	est := []rtime.Time{10, 10, 10, 10}
	asg, err := slicing.Distribute(g, est, 1, slicing.PURE(), slicing.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	trace := faults.ZeroTrace(4, 1)
	trace.ExecScale[0] = 3.5 // d0 runs 35, past its window — observable overrun

	plain, err := Inject(g, p, asg, s, Options{Faults: trace})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Inject(g, p, asg, s, Options{Faults: trace, Reclaim: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Degradation.Reclamations == 0 {
		t.Fatal("no reclamation triggered")
	}
	if rec.Degradation.ETEMisses > plain.Degradation.ETEMisses {
		t.Errorf("recovery made end-to-end misses worse: %d > %d",
			rec.Degradation.ETEMisses, plain.Degradation.ETEMisses)
	}
	if !rec.Valid {
		t.Errorf("recovered run structurally invalid: %v", rec.Violations)
	}
}

// Injected executions must satisfy every structural obligation the
// verifier checks, whatever the fault mix — the executor and the
// verifier are independent implementations of the faulted semantics.
func TestInjectedRunsReplayCleanly(t *testing.T) {
	f := func(seed int64, mRaw uint8, intensityRaw uint8, reclaim bool) bool {
		m := 2 + int(mRaw%6)
		intensity := float64(intensityRaw%5) / 4
		cfg := gen.Default(m)
		cfg.Seed = seed
		w, err := gen.Generate(cfg)
		if err != nil {
			return false
		}
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			return false
		}
		asg, err := slicing.Distribute(w.Graph, est, m, slicing.AdaptL(), slicing.CalibratedParams())
		if err != nil {
			return false
		}
		s, err := sched.Dispatch(w.Graph, w.Platform, asg)
		if err != nil {
			return false
		}
		var span rtime.Time
		for _, o := range w.Graph.Outputs() {
			if d := w.Graph.Task(o).ETEDeadline; d > span {
				span = d
			}
		}
		trace, err := faults.Scaled(intensity, seed+1).Materialize(w.Graph, w.Platform, span)
		if err != nil {
			return false
		}
		ir, err := Inject(w.Graph, w.Platform, asg, s, Options{Faults: trace, Reclaim: reclaim})
		if err != nil {
			return false
		}
		if !ir.Valid {
			t.Logf("seed %d m %d intensity %.2f: %v", seed, m, intensity, ir.Violations)
			return false
		}
		d := ir.Degradation
		if d.Misses != len(ir.Executed.Missed) || d.MissRatio() < 0 || d.MissRatio() > 1 {
			t.Logf("seed %d: inconsistent accounting %+v", seed, d)
			return false
		}
		if d.Misses != len(ir.DeadlineMisses)+d.Unplaced {
			t.Logf("seed %d: %d misses != %d placed + %d unplaced",
				seed, d.Misses, len(ir.DeadlineMisses), d.Unplaced)
			return false
		}
		if (d.Misses == 0) != ir.Executed.Feasible {
			t.Logf("seed %d: feasibility disagreement", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}
