package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// ShiftAssignment builds the window assignment of a release-major
// expansion (gen.ExpandReleases) from a base assignment: the copy of
// task i in release k runs under the base window shifted by the k-th
// release time. This is the sporadic windows contract the analytic
// verifier (internal/verify) proves against: every release reuses the
// base deadline distribution relative to its own release instant.
func ShiftAssignment(asg *slicing.Assignment, times []rtime.Time) (*slicing.Assignment, error) {
	n := len(asg.Arrival)
	if len(asg.AbsDeadline) != n {
		return nil, fmt.Errorf("sim: assignment arrival/deadline length mismatch %d/%d", n, len(asg.AbsDeadline))
	}
	out := &slicing.Assignment{
		Arrival:     make([]rtime.Time, 0, n*len(times)),
		AbsDeadline: make([]rtime.Time, 0, n*len(times)),
		RelDeadline: make([]rtime.Time, 0, n*len(times)),
		MetricName:  asg.MetricName,
	}
	for _, t0 := range times {
		for i := 0; i < n; i++ {
			out.Arrival = append(out.Arrival, asg.Arrival[i]+t0)
			out.AbsDeadline = append(out.AbsDeadline, asg.AbsDeadline[i]+t0)
			out.RelDeadline = append(out.RelDeadline, asg.AbsDeadline[i]-asg.Arrival[i])
		}
	}
	return out, nil
}

// ExpandSystem materializes a sporadically released system as a single
// one-shot system: the base graph g is expanded over the seeded release
// times of rel (gen.ExpandReleases, release-major), every release runs
// under the base window assignment shifted by its release time, and the
// expanded system is scheduled by the time-driven EDF dispatcher. The
// release times come back too, so callers sizing per-release state (for
// example a fault trace over the expanded task set) know the copy
// count and offsets.
func ExpandSystem(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment,
	rel gen.Release, seed int64) (*taskgraph.Graph, *slicing.Assignment, *sched.Schedule, []rtime.Time, error) {

	times, err := gen.ReleaseTimes(rel, seed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	expanded, err := gen.ExpandReleases(g, times)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	easg, err := ShiftAssignment(asg, times)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	s, err := sched.Dispatch(expanded, p, easg)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return expanded, easg, s, times, nil
}

// ReplayReleases dispatches and replays a sporadically released graph
// (ExpandSystem followed by Replay under opts). It returns the replay
// report together with the dispatched schedule and the expanded
// assignment (indexed release-major, copy of task i in release k at
// k·n+i).
func ReplayReleases(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment,
	rel gen.Release, seed int64, opts Options) (*Report, *sched.Schedule, *slicing.Assignment, error) {

	expanded, easg, s, _, err := ExpandSystem(g, p, asg, rel, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	rep, err := Replay(expanded, p, easg, s, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	return rep, s, easg, nil
}
