package sim

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Degradation quantifies how far a fault-injected run fell from the
// nominal contract. All deadline accounting is against the *original*
// window assignment: slack reclamation may re-prioritize the
// dispatcher, but it never redefines success.
type Degradation struct {
	// Tasks is the application size (the miss-ratio denominator).
	Tasks int
	// Misses counts tasks that finished after their originally
	// assigned absolute deadline, plus tasks that could not be placed
	// at all.
	Misses int
	// ETEMisses counts output tasks among Misses — end-to-end deadline
	// violations, the failures the application actually observes.
	ETEMisses int
	// MandatoryMisses counts tasks of Mandatory criticality among
	// Misses (including unplaced mandatory tasks). For all-mandatory
	// graphs it equals Misses; the graceful-degradation mode controller
	// treats any non-zero value as an inadmissible frame.
	MandatoryMisses int
	// MeanLateness is the mean positive lateness over missing placed
	// tasks (0 when nothing missed).
	MeanLateness float64
	// MaxLateness is max(fᵢ − Dᵢ) over placed tasks (negative values
	// are margin).
	MaxLateness rtime.Time
	// FirstMiss is the earliest finish time of a missing task
	// (rtime.Unset when nothing missed) — how long the system ran
	// before degrading.
	FirstMiss rtime.Time
	// Overruns counts completed executions that consumed more than
	// their nominal WCET.
	Overruns int
	// Aborted counts executions cut short by a processor failure (the
	// work is lost).
	Aborted int
	// Migrations counts re-dispatches of aborted tasks onto surviving
	// processors (possible because locality is relaxed, §1).
	Migrations int
	// Reclamations counts slack-reclamation events (0 unless
	// Options.Reclaim).
	Reclamations int
	// Unplaced counts tasks that never completed anywhere (e.g. every
	// eligible processor died).
	Unplaced int
}

// MissRatio returns Misses/Tasks in [0, 1].
func (d Degradation) MissRatio() float64 {
	if d.Tasks == 0 {
		return 0
	}
	return float64(d.Misses) / float64(d.Tasks)
}

// InjectedReport is the outcome of executing a schedule under a fault
// trace: the replay verification of the perturbed run, the schedule
// that actually executed, and the degradation accounting.
type InjectedReport struct {
	// Report verifies the executed (not the planned) schedule under the
	// faulted timing model. Under a zero trace it is byte-identical to
	// the nominal Replay report.
	Report
	// Executed is the schedule the fault-aware dispatcher actually
	// produced; under a zero trace it equals the planned schedule for
	// time-driven plans.
	Executed *sched.Schedule
	// Degradation is the miss/lateness accounting against the original
	// assignment.
	Degradation Degradation
}

// Inject executes the planned schedule for graph g on platform p under
// the fault trace in opts.Faults and reports the degradation. The
// execution model is the paper's non-preemptive time-driven EDF
// dispatcher (the same run-time system sched.Dispatch simulates), with
// run-time deviations applied:
//
//   - tasks execute for their trace-perturbed time (WCET overruns,
//     class slowdown) while the dispatcher keeps deciding with nominal
//     WCET knowledge — it cannot foresee an overrun;
//   - a processor accepts no work from its failure instant on, and the
//     task it is running at that instant is aborted (work lost) and
//     re-dispatched on a surviving eligible processor, exploiting the
//     relaxed locality assumption;
//   - remote messages land late by their jitter.
//
// With opts.Reclaim, each observed overrun triggers the online
// slack-reclamation policy: the remaining end-to-end slack is
// redistributed over the overrunning task's pending descendants using
// the active metric's virtual costs (slicing.ReclaimWindows), which
// re-prioritizes subsequent EDF decisions and relaxes stale arrival
// gates. Deadline misses are always judged against the original
// assignment.
//
// The planned schedule s is the nominal baseline: it sizes the run and
// anchors the degradation comparison. Under a zero trace the injected
// execution reproduces sched.Dispatch exactly, making injection a
// strict superset of nominal replay.
func Inject(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment,
	s *sched.Schedule, opts Options) (*InjectedReport, error) {

	n := g.NumTasks()
	if len(s.Placements) != n {
		return nil, fmt.Errorf("sim: schedule covers %d tasks, graph has %d", len(s.Placements), n)
	}
	if len(asg.Arrival) != n || len(asg.AbsDeadline) != n {
		return nil, fmt.Errorf("sim: assignment covers %d tasks, graph has %d", len(asg.Arrival), n)
	}
	for i := 0; i < n; i++ {
		if !asg.Arrival[i].IsSet() || !asg.AbsDeadline[i].IsSet() {
			return nil, fmt.Errorf("sim: task %d has an unassigned window", i)
		}
	}
	trace := opts.Faults
	if trace == nil {
		trace = faults.ZeroTrace(n, p.M())
	}
	if len(trace.ExecScale) != n || len(trace.Slow) != p.M() {
		return nil, fmt.Errorf("sim: fault trace sized for %d tasks / %d processors, workload has %d / %d",
			len(trace.ExecScale), len(trace.Slow), n, p.M())
	}

	ex := &sched.Schedule{
		Placements:  make([]sched.Placement, n),
		Feasible:    true,
		MaxLateness: -rtime.Infinity,
	}
	for i := range ex.Placements {
		ex.Placements[i] = sched.Placement{Proc: -1}
	}
	var deg Degradation
	deg.Tasks = n
	deg.FirstMiss = rtime.Unset

	m := p.M()
	procFree := make([]rtime.Time, m)
	resFree := sched.ResourceTable(g)
	done := make([]bool, n)
	placed := 0

	// Dynamic state the faults and the recovery policy evolve: EDF
	// deadlines, effective arrivals, and the earliest re-dispatch time
	// of aborted tasks.
	dl := append([]rtime.Time(nil), asg.AbsDeadline...)
	arr := append([]rtime.Time(nil), asg.Arrival...)
	blockedUntil := make([]rtime.Time, n)
	wasAborted := make([]bool, n)

	// Pending reclamations: an overrun is only observable when the task
	// finishes, so its recovery applies at that instant, not at the
	// dispatch instant the simulator learns the outcome.
	type reclaimEvent struct {
		at   rtime.Time
		task int
	}
	var reclaims []reclaimEvent

	// The dispatcher's a-priori screen, as in sched.Dispatch: tasks
	// with no eligible processor at all can never run.
	present := p.ClassesPresent()
	for i := 0; i < n; i++ {
		ok := false
		if pin := g.Task(i).Pinned; pin >= 0 {
			if pin < m && g.Task(i).WCET[p.ClassOf(pin)].IsSet() {
				ok = true
			}
		} else {
			for k, c := range g.Task(i).WCET {
				if c.IsSet() && k < len(present) && present[k] {
					ok = true
					break
				}
			}
		}
		if !ok {
			ex.Feasible = false
			ex.Missed = append(ex.Missed, i)
			done[i] = true
			placed++
		}
	}

	dead := func(q int, at rtime.Time) bool { return trace.DownAt[q] <= at }

	// readyOn is sched.Dispatch's readiness rule over the effective
	// arrivals, plus message jitter and the abort gate.
	readyOn := func(i, q int) rtime.Time {
		t := rtime.Max(arr[i], blockedUntil[i])
		for _, pr := range g.Preds(i) {
			pl := ex.Placements[pr]
			if pl.Proc < 0 {
				if done[pr] {
					continue // unplaceable predecessor: task is doomed anyway
				}
				return rtime.Unset
			}
			arrive := pl.Finish + p.CommCost(pl.Proc, q, g.MessageItems(pr, i))
			if pl.Proc != q {
				arrive += trace.ExtraMsg(pr, i)
			}
			if arrive > t {
				t = arrive
			}
		}
		for _, res := range g.Task(i).Resources {
			if resFree[res] > t {
				t = resFree[res]
			}
		}
		return t
	}

	applyReclaims := func(now rtime.Time) {
		for k := 0; k < len(reclaims); {
			ev := reclaims[k]
			if ev.at > now {
				k++
				continue
			}
			reclaims = append(reclaims[:k], reclaims[k+1:]...)
			pending := make([]bool, n)
			any := false
			for j := 0; j < n; j++ {
				if !done[j] && g.Reaches(ev.task, j) {
					pending[j] = true
					any = true
				}
			}
			if !any {
				continue
			}
			nd, ok := slicing.ReclaimWindows(g, asg.Virtual, pending, ev.at, asg.AbsDeadline)
			if !ok {
				continue
			}
			deg.Reclamations++
			for j := 0; j < n; j++ {
				if !pending[j] {
					continue
				}
				dl[j] = nd[j]
				if arr[j] > ev.at {
					arr[j] = ev.at // the stale arrival gate is reclaimed too
				}
			}
		}
	}

	var latenessSum float64
	now := rtime.Time(0)
	for placed < n {
		if opts.Reclaim {
			applyReclaims(now)
		}
		// Dispatch loop at the current instant: repeatedly take the
		// EDF-closest (under the possibly reclaimed deadlines) task
		// that is dispatchable on an idle, surviving processor.
		for {
			bestTask, bestProc := -1, -1
			for i := 0; i < n; i++ {
				if done[i] {
					continue
				}
				task := g.Task(i)
				if bestTask >= 0 {
					if dl[i] > dl[bestTask] || (dl[i] == dl[bestTask] && i > bestTask) {
						continue
					}
				}
				tProc, tFinish := -1, rtime.Time(0)
				for q := 0; q < m; q++ {
					if task.Pinned >= 0 && q != task.Pinned {
						continue
					}
					if dead(q, now) || procFree[q] > now {
						continue
					}
					class := p.ClassOf(q)
					if !task.EligibleOn(class) {
						continue
					}
					r := readyOn(i, q)
					if !r.IsSet() || r > now {
						continue
					}
					// Processor choice uses worst-case knowledge: the
					// dispatcher cannot foresee overruns or slowdowns.
					finish := now + task.WCET[class]
					if tProc < 0 || finish < tFinish {
						tProc, tFinish = q, finish
					}
				}
				if tProc >= 0 {
					bestTask, bestProc = i, tProc
				}
			}
			if bestTask < 0 {
				break
			}
			task := g.Task(bestTask)
			class := p.ClassOf(bestProc)
			nominal := task.WCET[class]
			actual := trace.Exec(bestTask, bestProc, nominal)
			finish := now + actual
			if down := trace.DownAt[bestProc]; down < finish {
				// The processor dies mid-execution: the work is lost
				// and the task must be re-dispatched elsewhere.
				deg.Aborted++
				wasAborted[bestTask] = true
				blockedUntil[bestTask] = down
				procFree[bestProc] = down
				for _, res := range task.Resources {
					resFree[res] = down
				}
				continue
			}
			if wasAborted[bestTask] {
				deg.Migrations++
				wasAborted[bestTask] = false
			}
			if actual > nominal {
				deg.Overruns++
			}
			ex.Placements[bestTask] = sched.Placement{Proc: bestProc, Start: now, Finish: finish}
			procFree[bestProc] = finish
			for _, res := range task.Resources {
				resFree[res] = finish
			}
			done[bestTask] = true
			placed++
			ex.Order = append(ex.Order, bestTask)
			if finish > ex.Makespan {
				ex.Makespan = finish
			}
			late := finish - asg.AbsDeadline[bestTask]
			if late > ex.MaxLateness {
				ex.MaxLateness = late
			}
			if late > 0 {
				ex.Feasible = false
				ex.Missed = append(ex.Missed, bestTask)
				latenessSum += float64(late)
				if !deg.FirstMiss.IsSet() || finish < deg.FirstMiss {
					deg.FirstMiss = finish
				}
			}
			if opts.Reclaim && finish > dl[bestTask] {
				reclaims = append(reclaims, reclaimEvent{at: finish, task: bestTask})
			}
		}
		if placed == n {
			break
		}

		// Advance to the next instant anything can change: a surviving
		// processor frees, a task becomes ready, or a queued recovery
		// event relaxes an arrival gate.
		next := rtime.Infinity
		for q := 0; q < m; q++ {
			if dead(q, now) {
				continue
			}
			if procFree[q] > now && procFree[q] < next {
				next = procFree[q]
			}
		}
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			for q := 0; q < m; q++ {
				if g.Task(i).Pinned >= 0 && q != g.Task(i).Pinned {
					continue
				}
				if !g.Task(i).EligibleOn(p.ClassOf(q)) {
					continue
				}
				if dead(q, now) {
					continue // q is already dead; it never hosts i again
				}
				r := readyOn(i, q)
				if r.IsSet() && r > now && r < next {
					next = r
				}
			}
		}
		if opts.Reclaim {
			for _, ev := range reclaims {
				if ev.at > now && ev.at < next {
					next = ev.at
				}
			}
		}
		if next == rtime.Infinity {
			// Remaining tasks can never run (stuck behind unplaceable
			// predecessors, or every eligible processor died).
			for i := 0; i < n; i++ {
				if !done[i] {
					done[i] = true
					placed++
					ex.Feasible = false
					ex.Missed = append(ex.Missed, i)
				}
			}
			break
		}
		now = next
	}
	sort.Ints(ex.Missed)

	// Degradation accounting against the original assignment.
	outputs := map[int]bool{}
	for _, o := range g.Outputs() {
		outputs[o] = true
	}
	deg.Misses = len(ex.Missed)
	for _, i := range ex.Missed {
		if outputs[i] {
			deg.ETEMisses++
		}
		if g.Task(i).Criticality == taskgraph.Mandatory {
			deg.MandatoryMisses++
		}
		if ex.Placements[i].Proc < 0 {
			deg.Unplaced++
		}
	}
	if missedPlaced := deg.Misses - deg.Unplaced; missedPlaced > 0 {
		deg.MeanLateness = latenessSum / float64(missedPlaced)
	}
	deg.MaxLateness = ex.MaxLateness

	// Verify the executed schedule under the faulted timing model: the
	// injected run must satisfy every structural obligation the nominal
	// one does, with the perturbed execution times, effective arrivals,
	// and jittered messages as the expectations.
	lossy := false
	for _, d := range trace.DownAt {
		if d < rtime.Infinity {
			lossy = true
			break
		}
	}
	tm := timing{
		exec: func(i, q int) rtime.Time {
			return trace.Exec(i, q, g.Task(i).WCET[p.ClassOf(q)])
		},
		arrival:  func(i int) rtime.Time { return arr[i] },
		extraMsg: trace.ExtraMsg,
		// Tasks stranded by a processor loss are degradation, not a
		// structural violation; without loss the nominal rule applies,
		// preserving zero-trace identity.
		allowUnplaced: lossy,
	}
	rep, err := replay(g, p, asg, ex, opts, tm)
	if err != nil {
		return nil, err
	}
	return &InjectedReport{Report: *rep, Executed: ex, Degradation: deg}, nil
}
