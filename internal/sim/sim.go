// Package sim replays a static multiprocessor schedule on the modelled
// platform as a discrete-event simulation and verifies every run-time
// obligation: processor exclusivity under non-preemptive dispatch, class
// eligibility, WCET-exact execution, arrival-time gating, precedence with
// message delays, and deadline compliance.
//
// The replay exists as a second, independent implementation of the
// platform semantics (the role GAST's execution engine played for the
// paper): the sched package *constructs* schedules, sim *re-executes*
// them. Disagreement between the two is a bug in one of them, which the
// property tests exploit.
//
// Beyond the nominal-delay bus model of the paper (§3.1, one time unit
// per data item, messages never queue), Replay optionally serializes the
// shared bus: messages occupy it one at a time in FCFS order of their
// ready times. The paper's nominal delay is an upper bound *per message*
// but not *per bus*, so a schedule that is valid under the nominal model
// can be reported as violating under serialization — quantifying how
// much headroom the nominal model hides.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Options configures a replay.
type Options struct {
	// SerializedBus makes messages occupy the shared bus exclusively, in
	// FCFS order of their ready times (ties broken by arc order). When
	// false the paper's nominal-delay model is used.
	SerializedBus bool
	// Faults, when non-nil, switches Replay from verification to
	// fault-injected execution: the schedule is re-executed by the
	// time-driven dispatcher under the trace's WCET overruns, processor
	// degradation/loss, and bus jitter, and the Report describes the
	// perturbed run (see Inject for the full degradation accounting).
	// A zero trace reproduces the nominal replay exactly.
	Faults *faults.Trace
	// Reclaim enables the online slack-reclamation recovery policy
	// during fault-injected execution: when a task overruns its window,
	// the remaining end-to-end slack is redistributed over its pending
	// descendants using the active metric's virtual costs
	// (slicing.ReclaimWindows), re-prioritizing the dispatcher.
	Reclaim bool
}

// timing is the execution-time model a replay verifies against: nominal
// replay expects WCET-exact execution, original arrivals, and nominal
// bus delays; fault-injected replay expects the trace-perturbed
// equivalents.
type timing struct {
	// exec is the expected execution length of task i on processor q.
	exec func(i, q int) rtime.Time
	// arrival is the effective arrival time of task i (slack
	// reclamation may relax the assigned one).
	arrival func(i int) rtime.Time
	// extraMsg is additional bus delay for the (from, to) message.
	extraMsg func(from, to int) rtime.Time
	// allowUnplaced tolerates tasks with no placement: legitimate only
	// for fault-injected runs where a processor loss stranded them.
	allowUnplaced bool
}

// nominalTiming is the paper's model: WCET-exact on the landing class,
// assigned arrivals, nominal bus.
func nominalTiming(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) timing {
	return timing{
		exec:     func(i, q int) rtime.Time { return g.Task(i).WCET[p.ClassOf(q)] },
		arrival:  func(i int) rtime.Time { return asg.Arrival[i] },
		extraMsg: func(from, to int) rtime.Time { return 0 },
	}
}

// Transfer describes one message movement over the bus.
type Transfer struct {
	From, To   int // task IDs
	Items      rtime.Time
	Ready      rtime.Time // sender finish time
	Start, End rtime.Time // bus occupancy interval
	SameProc   bool
}

// Report is the outcome of a replay.
type Report struct {
	// Valid reports that no structural violation occurred (deadline
	// misses are tracked separately in DeadlineMisses, matching the
	// paper's distinction between an invalid schedule and an infeasible
	// one).
	Valid bool
	// Violations lists every structural problem found.
	Violations []string
	// DeadlineMisses lists tasks that finish after their absolute
	// deadline.
	DeadlineMisses []int
	// Transfers lists all remote message movements in bus order.
	Transfers []Transfer
	// BusBusy is the total bus occupancy.
	BusBusy rtime.Time
	// ProcBusy is the per-processor busy time.
	ProcBusy []rtime.Time
	// Makespan is the latest finish (or message landing) observed.
	Makespan rtime.Time
}

// Utilization returns the mean processor utilization over the makespan.
func (r *Report) Utilization() float64 {
	if r.Makespan <= 0 || len(r.ProcBusy) == 0 {
		return 0
	}
	var busy rtime.Time
	for _, b := range r.ProcBusy {
		busy += b
	}
	return float64(busy) / (float64(r.Makespan) * float64(len(r.ProcBusy)))
}

func (r *Report) violate(format string, args ...any) {
	r.Valid = false
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// Replay re-executes schedule s for graph g on platform p under the
// window assignment asg. When opts.Faults is set the schedule is
// instead executed under the fault trace (see Inject) and the report
// describes the perturbed run.
func Replay(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment,
	s *sched.Schedule, opts Options) (*Report, error) {

	if opts.Faults != nil {
		ir, err := Inject(g, p, asg, s, opts)
		if err != nil {
			return nil, err
		}
		return &ir.Report, nil
	}
	return replay(g, p, asg, s, opts, nominalTiming(g, p, asg))
}

// replay is the verification core, parameterized by the timing model
// the schedule is held against.
func replay(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment,
	s *sched.Schedule, opts Options, tm timing) (*Report, error) {

	n := g.NumTasks()
	if len(s.Placements) != n {
		return nil, fmt.Errorf("sim: schedule covers %d tasks, graph has %d", len(s.Placements), n)
	}
	r := &Report{Valid: true, ProcBusy: make([]rtime.Time, p.M())}

	// Phase 1: per-task static checks and processor accounting.
	type span struct {
		t          int
		start, end rtime.Time
	}
	perProc := make([][]span, p.M())
	for i := 0; i < n; i++ {
		pl := s.Placements[i]
		if pl.Proc < 0 {
			if !tm.allowUnplaced {
				r.violate("task %d was never placed", i)
			}
			continue
		}
		if pl.Proc >= p.M() {
			r.violate("task %d placed on missing processor %d", i, pl.Proc)
			continue
		}
		class := p.ClassOf(pl.Proc)
		if !g.Task(i).EligibleOn(class) {
			r.violate("task %d placed on ineligible class %d", i, class)
			continue
		}
		if pin := g.Task(i).Pinned; pin >= 0 && pl.Proc != pin {
			r.violate("task %d pinned to processor %d but placed on %d", i, pin, pl.Proc)
		}
		if got, want := pl.Finish-pl.Start, tm.exec(i, pl.Proc); got != want {
			r.violate("task %d executes for %d units, WCET on class %d is %d", i, got, class, want)
		}
		if arr := tm.arrival(i); pl.Start < arr {
			r.violate("task %d starts at %d before its arrival %d", i, pl.Start, arr)
		}
		perProc[pl.Proc] = append(perProc[pl.Proc], span{i, pl.Start, pl.Finish})
		r.ProcBusy[pl.Proc] += pl.Finish - pl.Start
		if pl.Finish > r.Makespan {
			r.Makespan = pl.Finish
		}
		if pl.Finish > asg.AbsDeadline[i] {
			r.DeadlineMisses = append(r.DeadlineMisses, i)
		}
	}
	for q, spans := range perProc {
		sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end {
				r.violate("processor %d preempted: tasks %d and %d overlap", q, spans[i-1].t, spans[i].t)
			}
		}
	}

	// Phase 2: message timing. Collect remote transfers, order them, and
	// either charge the nominal per-message delay or serialize the bus.
	for _, a := range g.Arcs() {
		from, to := s.Placements[a.From], s.Placements[a.To]
		if from.Proc < 0 || to.Proc < 0 {
			continue
		}
		same := from.Proc == to.Proc
		tr := Transfer{
			From: a.From, To: a.To, Items: a.Items,
			Ready: from.Finish, SameProc: same,
		}
		if same || a.Items <= 0 {
			tr.Start, tr.End = from.Finish, from.Finish
		} else {
			tr.Start = from.Finish
			tr.End = from.Finish + p.CommCost(from.Proc, to.Proc, a.Items) + tm.extraMsg(a.From, a.To)
		}
		r.Transfers = append(r.Transfers, tr)
	}
	sort.Slice(r.Transfers, func(i, j int) bool {
		a, b := r.Transfers[i], r.Transfers[j]
		if a.Ready != b.Ready {
			return a.Ready < b.Ready
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	if opts.SerializedBus {
		var busFree rtime.Time
		for i := range r.Transfers {
			tr := &r.Transfers[i]
			if tr.SameProc || tr.Items <= 0 {
				continue
			}
			start := rtime.Max(tr.Ready, busFree)
			tr.Start = start
			tr.End = start + p.CommCost(s.Placements[tr.From].Proc, s.Placements[tr.To].Proc, tr.Items) +
				tm.extraMsg(tr.From, tr.To)
			busFree = tr.End
		}
	}
	for _, tr := range r.Transfers {
		if tr.SameProc || tr.Items <= 0 {
			continue
		}
		r.BusBusy += tr.End - tr.Start
		if tr.End > r.Makespan {
			r.Makespan = tr.End
		}
		start := s.Placements[tr.To].Start
		if start < tr.End {
			r.violate("task %d starts at %d before its message from %d lands at %d",
				tr.To, start, tr.From, tr.End)
		}
	}
	// Co-located precedence still requires finish-before-start.
	for _, a := range g.Arcs() {
		from, to := s.Placements[a.From], s.Placements[a.To]
		if from.Proc < 0 || to.Proc < 0 {
			continue
		}
		if from.Proc == to.Proc && to.Start < from.Finish {
			r.violate("task %d starts at %d before co-located predecessor %d finishes at %d",
				a.To, to.Start, a.From, from.Finish)
		}
	}

	// Phase 3: exclusive resources (the §7.3 extension) — two holders of
	// the same resource may never overlap, independent of processors.
	type hold struct {
		t          int
		start, end rtime.Time
	}
	perRes := map[int][]hold{}
	for i, t := range g.Tasks() {
		pl := s.Placements[i]
		if pl.Proc < 0 {
			continue
		}
		for _, res := range t.Resources {
			perRes[res] = append(perRes[res], hold{i, pl.Start, pl.Finish})
		}
	}
	for res, holds := range perRes {
		sort.Slice(holds, func(a, b int) bool { return holds[a].start < holds[b].start })
		for i := 1; i < len(holds); i++ {
			if holds[i].start < holds[i-1].end {
				r.violate("resource %d held by tasks %d and %d concurrently",
					res, holds[i-1].t, holds[i].t)
			}
		}
	}
	sort.Ints(r.DeadlineMisses)
	return r, nil
}
