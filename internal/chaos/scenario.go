// Package chaos injects failures into the pland fleet on purpose. A
// declarative scenario file names the faults — added latency, 5xx
// answers, dropped connections, full peer blackouts — and a seeded
// injector applies them deterministically, mirroring how
// internal/faults injects WCET overruns and processor losses into
// schedules: the same scenario and seed reproduce the same fault
// pattern, so a chaos run is a regression test, not a dice roll.
//
// The injector wraps both sides of the wire: Middleware wraps a pland
// server handler (faults happen where the peer is), Transport wraps an
// http.RoundTripper (faults happen on the path to the peer). The fleet
// smoke test and cmd/loadgen drive both.
package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Duration is time.Duration with JSON string encoding ("150ms", "30s"),
// so scenario files read like the rest of the repo's flag surface.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"150ms\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Window is a relative time interval: After the injector starts, For
// long.
type Window struct {
	// After is the delay from injector start to the window opening.
	After Duration `json:"after"`
	// For is how long the window stays open; it must be positive.
	For Duration `json:"for"`
}

// Rule is one fault source. Peer selects which fleet member it applies
// to; the effect fields are independent — one rule may inject latency
// and errors at once.
type Rule struct {
	// Peer names the fleet member this rule applies to; "" or "*" means
	// every peer.
	Peer string `json:"peer,omitempty"`

	// Latency is added to matching requests with probability
	// LatencyProb.
	Latency     Duration `json:"latency,omitempty"`
	LatencyProb float64  `json:"latencyProb,omitempty"`

	// ErrorCode is answered (without running the real handler) with
	// probability ErrorProb; it must be a 4xx/5xx status.
	ErrorCode int     `json:"errorCode,omitempty"`
	ErrorProb float64 `json:"errorProb,omitempty"`

	// DropProb aborts the connection without any HTTP answer — the
	// client sees EOF/reset, the connect-refused failure class.
	DropProb float64 `json:"dropProb,omitempty"`

	// Blackout drops every matching request during the window: the peer
	// is effectively dead for that span without killing the process.
	Blackout *Window `json:"blackout,omitempty"`
}

// active reports whether the rule has any effect at all.
func (r *Rule) active() bool {
	return (r.Latency > 0 && r.LatencyProb > 0) ||
		(r.ErrorCode != 0 && r.ErrorProb > 0) ||
		r.DropProb > 0 ||
		r.Blackout != nil
}

// matches reports whether the rule applies to the named peer.
func (r *Rule) matches(peer string) bool {
	return r.Peer == "" || r.Peer == "*" || r.Peer == peer
}

// Scenario is a parsed chaos scenario: the PRNG seed plus the fault
// rules.
type Scenario struct {
	// Seed drives every probabilistic decision. The same scenario, peer
	// name, and request order reproduce the same fault pattern.
	Seed int64 `json:"seed"`
	// Rules are evaluated in order on every request.
	Rules []Rule `json:"rules"`
}

// ParseScenario reads and validates a scenario. Unknown fields are
// errors — a typoed "latencyPorb" silently doing nothing is exactly the
// kind of false negative a chaos suite exists to avoid.
func ParseScenario(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	// Trailing garbage after the scenario object is malformed input.
	if dec.More() {
		return nil, fmt.Errorf("chaos: trailing data after scenario")
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadScenario parses a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := ParseScenario(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

func (sc *Scenario) validate() error {
	if len(sc.Rules) == 0 {
		return fmt.Errorf("chaos: scenario has no rules")
	}
	for i := range sc.Rules {
		r := &sc.Rules[i]
		if err := probOK("latencyProb", r.LatencyProb); err != nil {
			return ruleErr(i, err)
		}
		if err := probOK("errorProb", r.ErrorProb); err != nil {
			return ruleErr(i, err)
		}
		if err := probOK("dropProb", r.DropProb); err != nil {
			return ruleErr(i, err)
		}
		if r.Latency < 0 {
			return ruleErr(i, fmt.Errorf("negative latency %v", time.Duration(r.Latency)))
		}
		if r.Latency > 0 && r.LatencyProb == 0 {
			return ruleErr(i, fmt.Errorf("latency set but latencyProb is 0"))
		}
		if r.ErrorCode != 0 && (r.ErrorCode < 400 || r.ErrorCode > 599) {
			return ruleErr(i, fmt.Errorf("errorCode %d outside 4xx/5xx", r.ErrorCode))
		}
		if r.ErrorCode != 0 && r.ErrorProb == 0 {
			return ruleErr(i, fmt.Errorf("errorCode set but errorProb is 0"))
		}
		if r.ErrorProb > 0 && r.ErrorCode == 0 {
			return ruleErr(i, fmt.Errorf("errorProb set but errorCode is 0"))
		}
		if b := r.Blackout; b != nil {
			if b.After < 0 {
				return ruleErr(i, fmt.Errorf("blackout.after is negative"))
			}
			if b.For <= 0 {
				return ruleErr(i, fmt.Errorf("blackout.for must be positive"))
			}
		}
		if !r.active() {
			return ruleErr(i, fmt.Errorf("rule has no effect (no latency, error, drop, or blackout)"))
		}
	}
	return nil
}

func probOK(name string, p float64) error {
	// NaN fails both comparisons' complements, so reject via negation.
	if !(p >= 0 && p <= 1) {
		return fmt.Errorf("%s %v outside [0, 1]", name, p)
	}
	return nil
}

func ruleErr(i int, err error) error {
	return fmt.Errorf("chaos: rule %d: %w", i, err)
}
