package chaos

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzParseScenario hammers the scenario parser with malformed input.
// The contract matches the journal and workload fuzzers: the parser
// never panics (malformed structure is an error, not a crash), and any
// scenario it accepts survives an encode/decode round-trip unchanged —
// so a checked-in scenario file re-written by tooling keeps injecting
// the same faults.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(`{"seed":42,"rules":[{"peer":"p0","latency":"50ms","latencyProb":0.5}]}`))
	f.Add([]byte(`{"seed":-1,"rules":[{"peer":"*","errorCode":503,"errorProb":0.25},{"dropProb":0.01}]}`))
	f.Add([]byte(`{"rules":[{"peer":"p2","blackout":{"after":"5s","for":"30s"}}]}`))
	f.Add([]byte(`{"rules":[{"latency":"1h","latencyProb":1},{"errorCode":429,"errorProb":1},{"dropProb":1}]}`))
	f.Add([]byte(`{"rules":[]}`))
	f.Add([]byte(`{"rules":[{"dropProb":1.00001}]}`))
	f.Add([]byte(`{"rules":[{"latency":"-5ms","latencyProb":0.5}]}`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted scenario does not re-encode: %v", err)
		}
		sc2, err := ParseScenario(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-encoded scenario does not re-parse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(sc, sc2) {
			t.Fatalf("round-trip changed the scenario:\n%+v\n%+v", sc, sc2)
		}
		// An accepted scenario must be instantiable for any peer without
		// panicking, and drawing from it must not panic either.
		inj := NewInjector(sc, "fuzz-peer")
		for i := 0; i < 8; i++ {
			inj.draw()
		}
	})
}
