package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func parse(t *testing.T, src string) *Scenario {
	t.Helper()
	sc, err := ParseScenario(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestParseScenarioValidation pins the parser's accept/reject surface.
func TestParseScenarioValidation(t *testing.T) {
	good := `{"seed":42,"rules":[
		{"peer":"p0","latency":"50ms","latencyProb":0.5},
		{"peer":"*","errorCode":503,"errorProb":0.1},
		{"dropProb":0.05},
		{"peer":"p2","blackout":{"after":"5s","for":"30s"}}
	]}`
	sc := parse(t, good)
	if sc.Seed != 42 || len(sc.Rules) != 4 {
		t.Fatalf("parsed %+v", sc)
	}
	if got := time.Duration(sc.Rules[0].Latency); got != 50*time.Millisecond {
		t.Fatalf("latency %v", got)
	}

	bad := []struct{ name, src string }{
		{"garbage", `not json`},
		{"no rules", `{"seed":1,"rules":[]}`},
		{"prob > 1", `{"rules":[{"dropProb":1.5}]}`},
		{"negative prob", `{"rules":[{"dropProb":-0.1}]}`},
		{"latency without prob", `{"rules":[{"latency":"1s"}]}`},
		{"error without code", `{"rules":[{"errorProb":0.5}]}`},
		{"code without prob", `{"rules":[{"errorCode":503}]}`},
		{"code out of range", `{"rules":[{"errorCode":200,"errorProb":0.5}]}`},
		{"blackout without for", `{"rules":[{"blackout":{"after":"1s","for":"0s"}}]}`},
		{"negative latency", `{"rules":[{"latency":"-1s","latencyProb":0.5}]}`},
		{"no effect", `{"rules":[{"peer":"p0"}]}`},
		{"unknown field", `{"rules":[{"peer":"p0","latencyPorb":0.5}]}`},
		{"bad duration", `{"rules":[{"latency":"fast","latencyProb":0.5}]}`},
		{"trailing data", `{"rules":[{"dropProb":0.1}]} extra`},
	}
	for _, c := range bad {
		if _, err := ParseScenario(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestInjectorDeterministic: two injectors from the same scenario and
// peer draw identical fault sequences; a different peer draws a
// different (but equally deterministic) one.
func TestInjectorDeterministic(t *testing.T) {
	src := `{"seed":7,"rules":[
		{"latency":"1ms","latencyProb":0.3},
		{"errorCode":500,"errorProb":0.2},
		{"dropProb":0.1}
	]}`
	seq := func(peer string) []verdict {
		inj := NewInjector(parse(t, src), peer)
		out := make([]verdict, 200)
		for i := range out {
			out[i] = inj.draw()
		}
		return out
	}
	a1, a2, b := seq("p0"), seq("p0"), seq("p1")
	same := true
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("draw %d differs across identical injectors: %+v vs %+v", i, a1[i], a2[i])
		}
		if a1[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("peers p0 and p1 drew identical fault sequences")
	}
	// The empirical rates land near the configured probabilities.
	var drops, errs int
	for _, v := range a1 {
		if v.drop {
			drops++
		}
		if v.code != 0 {
			errs++
		}
	}
	if drops == 0 || errs == 0 {
		t.Fatalf("200 draws produced drops=%d errs=%d; scenario never fired", drops, errs)
	}
}

// TestInjectorPeerFilter: rules for other peers are invisible.
func TestInjectorPeerFilter(t *testing.T) {
	sc := parse(t, `{"rules":[{"peer":"other","dropProb":1}]}`)
	inj := NewInjector(sc, "me")
	for i := 0; i < 50; i++ {
		if v := inj.draw(); v.drop || v.code != 0 || v.delay != 0 {
			t.Fatalf("foreign rule fired: %+v", v)
		}
	}
}

// TestMiddlewareInjects drives the server-side wrapper: guaranteed
// error, guaranteed drop, and the /healthz exemption.
func TestMiddlewareInjects(t *testing.T) {
	var served atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	})

	// Guaranteed injected 503: the inner handler never runs.
	inj := NewInjector(parse(t, `{"rules":[{"errorCode":503,"errorProb":1}]}`), "p0")
	ts := httptest.NewServer(inj.Middleware(inner))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "chaos") {
		t.Fatalf("got %d %s", resp.StatusCode, body)
	}
	if served.Load() != 0 {
		t.Fatal("handler ran under a guaranteed error injection")
	}
	// /healthz and /metrics bypass chaos.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err = http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s hit by chaos: %d", path, resp.StatusCode)
		}
	}
	if _, e, _, _ := inj.Counts(); e != 1 {
		t.Fatalf("errored count %d, want 1", e)
	}

	// Guaranteed drop: the client sees a transport error, no status.
	injDrop := NewInjector(parse(t, `{"rules":[{"dropProb":1}]}`), "p0")
	tsDrop := httptest.NewServer(injDrop.Middleware(inner))
	defer tsDrop.Close()
	if _, err := http.Get(tsDrop.URL + "/plan"); err == nil {
		t.Fatal("dropped connection still answered")
	}
	if _, _, d, _ := injDrop.Counts(); d != 1 {
		t.Fatalf("dropped count %d, want 1", d)
	}
}

// TestMiddlewareLatency: injected latency delays the response without
// changing it.
func TestMiddlewareLatency(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	inj := NewInjector(parse(t, `{"rules":[{"latency":"80ms","latencyProb":1}]}`), "p0")
	ts := httptest.NewServer(inj.Middleware(inner))
	defer ts.Close()
	startAt := time.Now()
	resp, err := http.Get(ts.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(startAt); elapsed < 80*time.Millisecond {
		t.Fatalf("answered in %v, want >= 80ms injected latency", elapsed)
	}
	if d, _, _, _ := inj.Counts(); d != 1 {
		t.Fatalf("delayed count %d, want 1", d)
	}
}

// TestBlackoutWindow: inside the window every request drops; outside it
// none do. The injector clock is virtual.
func TestBlackoutWindow(t *testing.T) {
	sc := parse(t, `{"rules":[{"blackout":{"after":"10s","for":"30s"}}]}`)
	inj := NewInjector(sc, "p0")
	now := time.Unix(1000, 0)
	inj.now = func() time.Time { return now }
	inj.start = now

	if v := inj.draw(); v.drop {
		t.Fatal("blackout fired before its window")
	}
	now = now.Add(15 * time.Second)
	if v := inj.draw(); !v.drop {
		t.Fatal("blackout window open but request survived")
	}
	now = now.Add(30 * time.Second) // 45s > 10+30
	if v := inj.draw(); v.drop {
		t.Fatal("blackout fired after its window closed")
	}
}

// TestTransportInjects drives the client-side wrapper: synthesized
// errors and drops without a live server, pass-through otherwise.
func TestTransportInjects(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	inj := NewInjector(parse(t, `{"rules":[{"errorCode":502,"errorProb":1}]}`), "p0")
	c := &http.Client{Transport: inj.Transport(nil)}
	resp, err := c.Get(ts.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway || !strings.Contains(string(body), "chaos") {
		t.Fatalf("got %d %s", resp.StatusCode, body)
	}
	if hits.Load() != 0 {
		t.Fatal("synthesized error still hit the network")
	}

	injDrop := NewInjector(parse(t, `{"rules":[{"dropProb":1}]}`), "p0")
	cDrop := &http.Client{Transport: injDrop.Transport(nil)}
	if _, err := cDrop.Get(ts.URL + "/plan"); err == nil {
		t.Fatal("dropped request returned a response")
	}

	// No matching rule: plain pass-through, health exempt either way.
	injNone := NewInjector(parse(t, `{"rules":[{"peer":"other","dropProb":1}]}`), "p0")
	cNone := &http.Client{Transport: injNone.Transport(nil)}
	resp, err = cNone.Get(ts.URL + "/plan")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pass-through broken: %v %v", resp, err)
	}
	resp.Body.Close()
}
