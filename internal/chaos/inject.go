package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Injector applies a scenario's rules from one peer's point of view:
// only the rules matching the peer name are kept, and the PRNG is
// seeded with seed⊕hash(peer) so each fleet member draws its own
// deterministic fault sequence instead of all peers faulting in
// lockstep.
type Injector struct {
	peer  string
	rules []Rule

	mu  sync.Mutex
	rnd *rand.Rand

	start time.Time
	now   func() time.Time // test hook

	// counters for logs and metrics.
	delayed, errored, dropped, blackedOut atomic.Int64
}

// NewInjector builds the peer's injector. The blackout clock starts
// now: windows are relative to construction, which in pland is process
// start.
func NewInjector(sc *Scenario, peer string) *Injector {
	inj := &Injector{peer: peer, now: time.Now}
	for _, r := range sc.Rules {
		if r.matches(peer) {
			inj.rules = append(inj.rules, r)
		}
	}
	inj.rnd = rand.New(rand.NewSource(sc.Seed ^ int64(hashString(peer))))
	inj.start = inj.now()
	return inj
}

// hashString is FNV-1a 64-bit (the repo's standard content hash).
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime
	}
	return h
}

// verdict is one request's drawn fate.
type verdict struct {
	delay time.Duration
	code  int  // non-zero: answer with this status
	drop  bool // abort the connection with no answer
}

// draw rolls the dice for one request. Rules are evaluated in order;
// the first error/drop effect wins, latency accumulates across rules.
func (inj *Injector) draw() verdict {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	elapsed := inj.now().Sub(inj.start)
	var v verdict
	for i := range inj.rules {
		r := &inj.rules[i]
		if b := r.Blackout; b != nil {
			if elapsed >= time.Duration(b.After) && elapsed < time.Duration(b.After)+time.Duration(b.For) {
				v.drop = true
				return v
			}
		}
		if r.DropProb > 0 && inj.rnd.Float64() < r.DropProb {
			v.drop = true
			return v
		}
		if r.ErrorCode != 0 && v.code == 0 && inj.rnd.Float64() < r.ErrorProb {
			v.code = r.ErrorCode
		}
		if r.Latency > 0 && inj.rnd.Float64() < r.LatencyProb {
			v.delay += time.Duration(r.Latency)
		}
	}
	return v
}

// Counts returns how many requests were delayed, answered with an
// injected error, dropped, and dropped by a blackout window.
func (inj *Injector) Counts() (delayed, errored, dropped, blackedOut int64) {
	return inj.delayed.Load(), inj.errored.Load(), inj.dropped.Load(), inj.blackedOut.Load()
}

// Summary renders the injection counters for logs.
func (inj *Injector) Summary() string {
	d, e, dr, b := inj.Counts()
	return fmt.Sprintf("chaos[%s]: delayed=%d errored=%d dropped=%d blackout=%d", inj.peer, d, e, dr, b)
}

// Middleware wraps a server handler with the injector: matching
// requests are delayed, answered with the injected status, or aborted
// before the real handler runs. Health probes (/healthz) are exempt —
// chaos must not blind the failure detector itself; a blacked-out peer
// is discovered through its refused plan traffic, exactly like a
// process that is wedged rather than dead.
func (inj *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			return
		}
		v := inj.draw()
		if v.delay > 0 {
			inj.delayed.Add(1)
			select {
			case <-time.After(v.delay):
			case <-r.Context().Done():
				return
			}
		}
		if v.drop {
			inj.recordDrop()
			// ErrAbortHandler aborts the response without a reply; the
			// client observes EOF / connection reset.
			panic(http.ErrAbortHandler)
		}
		if v.code != 0 {
			inj.errored.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(v.code)
			fmt.Fprintf(w, `{"error":"chaos: injected %d"}`, v.code)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// recordDrop attributes a dropped request to the blackout counter when
// a window is open, else to the probabilistic drop counter.
func (inj *Injector) recordDrop() {
	inj.mu.Lock()
	elapsed := inj.now().Sub(inj.start)
	inBlackout := false
	for i := range inj.rules {
		if b := inj.rules[i].Blackout; b != nil &&
			elapsed >= time.Duration(b.After) && elapsed < time.Duration(b.After)+time.Duration(b.For) {
			inBlackout = true
			break
		}
	}
	inj.mu.Unlock()
	if inBlackout {
		inj.blackedOut.Add(1)
	} else {
		inj.dropped.Add(1)
	}
}

// droppedError is what the chaos transport returns for an injected
// connection drop.
type droppedError struct{ peer string }

func (e *droppedError) Error() string {
	return fmt.Sprintf("chaos: connection to %s dropped", e.peer)
}

// Timeout marks the drop as a non-timeout network failure (net.Error).
func (e *droppedError) Timeout() bool   { return false }
func (e *droppedError) Temporary() bool { return true }

// Transport wraps an http.RoundTripper with the injector: the same
// fault classes applied on the client side of the wire. A dropped
// request surfaces as a transport error (classified connect-refused by
// the cluster error taxonomy); an injected status synthesizes a
// response without touching the network.
func (inj *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return roundTripFunc(func(r *http.Request) (*http.Response, error) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			return base.RoundTrip(r)
		}
		v := inj.draw()
		if v.delay > 0 {
			inj.delayed.Add(1)
			select {
			case <-time.After(v.delay):
			case <-r.Context().Done():
				return nil, r.Context().Err()
			}
		}
		if v.drop {
			inj.recordDrop()
			return nil, &droppedError{peer: inj.peer}
		}
		if v.code != 0 {
			inj.errored.Add(1)
			rec := newSynthetic(v.code, fmt.Sprintf(`{"error":"chaos: injected %d"}`, v.code))
			return rec, nil
		}
		return base.RoundTrip(r)
	})
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// newSynthetic builds the injected-status response the transport hands
// back in place of a real one.
func newSynthetic(code int, body string) *http.Response {
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
	}
}
