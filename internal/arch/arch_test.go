package arch

import (
	"strings"
	"testing"

	"repro/internal/rtime"
)

func TestNewValidation(t *testing.T) {
	classes := []Class{{Name: "a", Speed: 1}}
	if _, err := New(Identical, nil, []int{0}, Bus{1}); err == nil {
		t.Error("no classes accepted")
	}
	if _, err := New(Identical, classes, nil, Bus{1}); err == nil {
		t.Error("no processors accepted")
	}
	if _, err := New(Identical, classes, []int{1}, Bus{1}); err == nil {
		t.Error("out-of-range class accepted")
	}
	if _, err := New(Identical, classes, []int{0}, Bus{-1}); err == nil {
		t.Error("negative bus delay accepted")
	}
	p, err := New(Identical, classes, []int{0, 0, 0}, Bus{1})
	if err != nil {
		t.Fatalf("valid platform rejected: %v", err)
	}
	if p.M() != 3 || p.NumClasses() != 1 {
		t.Errorf("shape = (%d, %d)", p.M(), p.NumClasses())
	}
}

func TestBusCost(t *testing.T) {
	b := Bus{DelayPerItem: 1}
	if b.Cost(5, false) != 5 {
		t.Error("remote message cost wrong")
	}
	if b.Cost(5, true) != 0 {
		t.Error("co-located message should be free")
	}
	if b.Cost(0, false) != 0 {
		t.Error("empty message should be free")
	}
	b2 := Bus{DelayPerItem: 3}
	if b2.Cost(4, false) != 12 {
		t.Error("delay-per-item scaling wrong")
	}
}

func TestHomogeneous(t *testing.T) {
	p := Homogeneous(4)
	if p.M() != 4 || p.NumClasses() != 1 || p.Kind != Identical {
		t.Errorf("Homogeneous(4) = %v", p)
	}
	for q := 0; q < 4; q++ {
		if p.ClassOf(q) != 0 {
			t.Errorf("ClassOf(%d) = %d", q, p.ClassOf(q))
		}
	}
}

func TestClassesPresent(t *testing.T) {
	classes := []Class{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	p := MustNew(Unrelated, classes, []int{0, 2, 0}, Bus{1})
	present := p.ClassesPresent()
	want := []bool{true, false, true}
	for i := range want {
		if present[i] != want[i] {
			t.Errorf("present[%d] = %v, want %v", i, present[i], want[i])
		}
	}
}

func TestKindString(t *testing.T) {
	if Identical.String() != "identical" || Uniform.String() != "uniform" ||
		Unrelated.String() != "unrelated" {
		t.Error("Kind strings wrong")
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind should include number")
	}
}

func TestPlatformString(t *testing.T) {
	p := Homogeneous(2)
	s := p.String()
	if !strings.Contains(s, "m=2") || !strings.Contains(s, "identical") {
		t.Errorf("String() = %q", s)
	}
}

func TestProcessorIDs(t *testing.T) {
	p := MustNew(Unrelated, []Class{{}, {}}, []int{1, 0, 1}, Bus{2})
	for q, pr := range p.Procs {
		if pr.ID != q {
			t.Errorf("Procs[%d].ID = %d", q, pr.ID)
		}
	}
	_ = rtime.Time(0)
}

func TestCommCostFallsBackToBus(t *testing.T) {
	p := Homogeneous(3)
	if got := p.CommCost(0, 1, 5); got != 5 {
		t.Errorf("bus fallback = %d, want 5", got)
	}
	if p.CommCost(1, 1, 5) != 0 {
		t.Error("co-located should be free")
	}
	if p.CommCost(0, 1, 0) != 0 {
		t.Error("empty message should be free")
	}
	if p.CommCost(-1, 1, 5) != 5 {
		t.Error("out-of-range proc should fall back to bus")
	}
}

func TestNetworkDedicatedLinks(t *testing.T) {
	p := Homogeneous(3)
	p.Net = NewNetwork(3).SetLink(0, 1, 0) // shared-memory-like coupling
	if got := p.CommCost(0, 1, 7); got != 0 {
		t.Errorf("dedicated link cost = %d, want 0", got)
	}
	if got := p.CommCost(1, 0, 7); got != 0 {
		t.Error("links are bidirectional")
	}
	if got := p.CommCost(0, 2, 7); got != 7 {
		t.Errorf("unlinked pair = %d, want bus 7", got)
	}
	p.Net.SetLink(0, 2, 3)
	if got := p.CommCost(0, 2, 7); got != 21 {
		t.Errorf("slow link = %d, want 21", got)
	}
}
