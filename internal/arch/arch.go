// Package arch models the multiprocessor architecture of the paper
// (§3.1): a set P of schedulable processors, each belonging to a
// processor class e(p) ∈ E that determines its hardware configuration,
// and an interconnection network.
//
// The experimental platform of the paper is a shared time-multiplexed
// bus whose communication cost between two processors is one time unit
// per transmitted data item; communication between co-located tasks is
// free (shared memory). Communication is asynchronous: it overlaps with
// computation, so in the scheduler a message only delays the *receiver's*
// earliest start time, never the sender's processor.
package arch

import (
	"fmt"

	"repro/internal/rtime"
)

// Kind classifies the processor set per Graham et al. [16]: identical,
// uniform (per-class speed scaling), or unrelated (arbitrary per-task,
// per-class WCETs). The kind is descriptive — the scheduler always works
// from the per-class WCET arrays — but the generator uses it to decide
// how per-class execution times are drawn.
type Kind int

const (
	// Identical processors: every task runs in the same time anywhere.
	Identical Kind = iota
	// Uniform processors: class k scales a basic execution time by a
	// speed factor.
	Uniform
	// Unrelated processors: per-class times are independent; this is the
	// paper's experimental setting (per-class times drawn independently,
	// plus per-class ineligibility).
	Unrelated
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Identical:
		return "identical"
	case Uniform:
		return "uniform"
	case Unrelated:
		return "unrelated"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Class describes one processor class e_k ∈ E.
type Class struct {
	// Name is a human-readable label.
	Name string
	// Speed is the relative speed used when the platform is generated
	// under the Uniform kind: execution time = basic time / Speed. It is
	// informational for Identical and Unrelated platforms.
	Speed float64
}

// Bus models the time-multiplexed shared-bus interconnection network.
type Bus struct {
	// DelayPerItem is the nominal worst-case communication delay per
	// transmitted data item (1 time unit in the paper's platform).
	DelayPerItem rtime.Time
}

// Cost returns the nominal worst-case communication cost of a message of
// the given size between two distinct processors. Messages between
// co-located tasks cost nothing (§3.1).
func (b Bus) Cost(items rtime.Time, sameProcessor bool) rtime.Time {
	if sameProcessor || items <= 0 {
		return 0
	}
	return items * b.DelayPerItem
}

// Processor is one schedulable processor p_q with its class index into
// Platform.Classes.
type Processor struct {
	ID    int
	Class int
}

// Platform is the complete architecture: classes, processors, and the
// interconnection network.
type Platform struct {
	Kind    Kind
	Classes []Class
	Procs   []Processor
	Bus     Bus
	// Net optionally refines the shared bus with dedicated links; nil
	// means every remote pair uses the bus (the paper's experimental
	// platform).
	Net *Network
}

// New builds a platform with m processors whose classes are given by
// classOf (values index into classes). It validates the shape.
func New(kind Kind, classes []Class, classOf []int, bus Bus) (*Platform, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("arch: platform needs at least one processor class")
	}
	if len(classOf) == 0 {
		return nil, fmt.Errorf("arch: platform needs at least one processor")
	}
	if bus.DelayPerItem < 0 {
		return nil, fmt.Errorf("arch: negative bus delay %d", bus.DelayPerItem)
	}
	p := &Platform{Kind: kind, Classes: classes, Bus: bus}
	for q, k := range classOf {
		if k < 0 || k >= len(classes) {
			return nil, fmt.Errorf("arch: processor %d references missing class %d", q, k)
		}
		p.Procs = append(p.Procs, Processor{ID: q, Class: k})
	}
	return p, nil
}

// MustNew is New that panics on error.
func MustNew(kind Kind, classes []Class, classOf []int, bus Bus) *Platform {
	p, err := New(kind, classes, classOf, bus)
	if err != nil {
		panic(err)
	}
	return p
}

// Homogeneous builds an m-processor platform with a single class and unit
// bus delay — the degenerate configuration of the earlier homogeneous
// work [12], useful for tests and comparisons.
func Homogeneous(m int) *Platform {
	classOf := make([]int, m)
	return MustNew(Identical, []Class{{Name: "cpu", Speed: 1}}, classOf, Bus{DelayPerItem: 1})
}

// M returns the number of processors, the paper's m.
func (p *Platform) M() int { return len(p.Procs) }

// NumClasses returns |E|.
func (p *Platform) NumClasses() int { return len(p.Classes) }

// ClassOf returns the class index of processor q.
func (p *Platform) ClassOf(q int) int { return p.Procs[q].Class }

// ClassesPresent returns, for each class index, whether at least one
// processor of that class exists. A task only eligible on absent classes
// can never be scheduled.
func (p *Platform) ClassesPresent() []bool {
	present := make([]bool, len(p.Classes))
	for _, pr := range p.Procs {
		present[pr.Class] = true
	}
	return present
}

// String summarises the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("%s platform: m=%d, |E|=%d, bus=%d/item",
		p.Kind, p.M(), p.NumClasses(), p.Bus.DelayPerItem)
}

// Network models an arbitrary interconnection topology (§3.1: "an
// arbitrary topology that may include dedicated as well as shared
// links"): the nominal per-item delay between every ordered pair of
// processors. A dedicated point-to-point link gets its own (typically
// lower) delay; pairs without an entry fall back to the shared bus.
type Network struct {
	// delay[f][t] is the per-item delay from processor f to t; values
	// < 0 mean "use the shared-bus delay".
	delay [][]rtime.Time
}

// NewNetwork creates an m-processor topology where every pair initially
// falls back to the shared bus.
func NewNetwork(m int) *Network {
	d := make([][]rtime.Time, m)
	for i := range d {
		d[i] = make([]rtime.Time, m)
		for j := range d[i] {
			d[i][j] = -1
		}
	}
	return &Network{delay: d}
}

// SetLink installs a dedicated link with the given per-item delay in
// both directions. A zero delay models shared-memory-like coupling.
func (n *Network) SetLink(a, b int, perItem rtime.Time) *Network {
	n.delay[a][b] = perItem
	n.delay[b][a] = perItem
	return n
}

// CommCost returns the nominal worst-case cost of moving a message
// between two processors, honoring dedicated links when the platform
// has a Network and falling back to the shared bus otherwise.
// Co-located communication is free (§3.1).
func (p *Platform) CommCost(from, to int, items rtime.Time) rtime.Time {
	if from == to || items <= 0 {
		return 0
	}
	if p.Net != nil && from >= 0 && from < len(p.Net.delay) && to >= 0 && to < len(p.Net.delay) {
		if d := p.Net.delay[from][to]; d >= 0 {
			return items * d
		}
	}
	return items * p.Bus.DelayPerItem
}
