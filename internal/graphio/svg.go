package graphio

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// svgPalette cycles distinguishable fills for task rectangles.
var svgPalette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// WriteScheduleSVG renders a schedule as an SVG Gantt chart: one lane
// per processor, one rectangle per task execution, window brackets under
// each task, and red outlines on deadline misses. The output is
// self-contained and viewable in any browser.
func WriteScheduleSVG(w io.Writer, g *taskgraph.Graph, p *arch.Platform,
	asg *slicing.Assignment, s *sched.Schedule) error {

	const (
		laneH   = 34
		barH    = 22
		leftPad = 70
		topPad  = 30
		width   = 1000
	)
	horizon := s.Makespan
	if horizon < 1 {
		horizon = 1
	}
	scale := func(t rtime.Time) float64 {
		return leftPad + float64(t)/float64(horizon)*(width-leftPad-10)
	}
	height := topPad + laneH*p.M() + 30

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n",
		width, height)
	fmt.Fprintf(w, `<text x="%d" y="16">schedule: makespan %d, %d tasks on %d processors</text>`+"\n",
		leftPad, s.Makespan, g.NumTasks(), p.M())

	// Lanes.
	for q := 0; q < p.M(); q++ {
		y := topPad + q*laneH
		fmt.Fprintf(w, `<text x="6" y="%d">p%d (e%d)</text>`+"\n", y+barH-6, q, p.ClassOf(q))
		fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			leftPad, y+barH+2, width-10, y+barH+2)
	}

	// Task bars with window brackets.
	for i, pl := range s.Placements {
		if pl.Proc < 0 {
			continue
		}
		y := topPad + pl.Proc*laneH
		x0, x1 := scale(pl.Start), scale(pl.Finish)
		stroke := "none"
		if pl.Finish > asg.AbsDeadline[i] {
			stroke = "#d00" // deadline miss
		}
		fill := svgPalette[i%len(svgPalette)]
		fmt.Fprintf(w, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="%s" stroke-width="2"><title>task %d [%d,%d) window [%d,%d)</title></rect>`+"\n",
			x0, y, x1-x0, barH, fill, stroke, i, pl.Start, pl.Finish, asg.Arrival[i], asg.AbsDeadline[i])
		if x1-x0 > 18 {
			fmt.Fprintf(w, `<text x="%.1f" y="%d" fill="#fff">%d</text>`+"\n", x0+3, y+barH-7, i)
		}
		// Window bracket under the bar.
		wx0, wx1 := scale(asg.Arrival[i]), scale(asg.AbsDeadline[i])
		fmt.Fprintf(w, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1" opacity="0.6"/>`+"\n",
			wx0, y+barH+1, wx1, y+barH+1, fill)
	}

	// Time axis labels.
	for f := 0.0; f <= 1.0; f += 0.25 {
		t := rtime.Time(float64(horizon) * f)
		fmt.Fprintf(w, `<text x="%.1f" y="%d" fill="#666">%d</text>`+"\n",
			scale(t), height-8, t)
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

// WriteChartSVG renders labelled success-ratio series (values in [0,1])
// as an SVG line chart — the visual form of the paper's figures.
func WriteChartSVG(w io.Writer, title string, xLabels []string, names []string, series [][]float64) error {
	const (
		width, height = 640, 360
		left, right   = 50, 140
		top, bottom   = 34, 30
		plotW         = width - left - right
		plotH         = height - top - bottom
	)
	if len(names) != len(series) {
		return fmt.Errorf("graphio: %d names for %d series", len(names), len(series))
	}
	cols := len(xLabels)
	if cols < 2 {
		return fmt.Errorf("graphio: need at least two x values")
	}
	x := func(i int) float64 { return left + float64(i)/float64(cols-1)*plotW }
	y := func(v float64) float64 { return top + (1-v)*plotH }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="18" font-size="13">%s</text>`+"\n", left, title)
	// Gridlines at 0/25/50/75/100 %.
	for f := 0.0; f <= 1.0; f += 0.25 {
		fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`+"\n",
			left, y(f), left+plotW, y(f))
		fmt.Fprintf(w, `<text x="%d" y="%.1f" fill="#666">%.0f%%</text>`+"\n", 8, y(f)+4, f*100)
	}
	for i, lbl := range xLabels {
		fmt.Fprintf(w, `<text x="%.1f" y="%d" fill="#666">%s</text>`+"\n", x(i)-8, height-10, lbl)
	}
	for si, vals := range series {
		color := svgPalette[si%len(svgPalette)]
		points := ""
		for i, v := range vals {
			if i >= cols {
				break
			}
			points += fmt.Sprintf("%.1f,%.1f ", x(i), y(clamp01(v)))
		}
		fmt.Fprintf(w, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", points, color)
		for i, v := range vals {
			if i >= cols {
				break
			}
			fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", x(i), y(clamp01(v)), color)
		}
		ly := top + 16*si
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", left+plotW+14, ly, color)
		fmt.Fprintf(w, `<text x="%d" y="%d">%s</text>`+"\n", left+plotW+30, ly+9, names[si])
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
