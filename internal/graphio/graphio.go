// Package graphio serializes workloads and results as JSON so that
// generated task sets can be archived, diffed, and replayed across tool
// invocations (cmd/taskgen writes them, cmd/schedview reads them).
//
// The on-disk format is deliberately explicit — no pointers, no derived
// fields — so files remain stable under refactoring of the in-memory
// types.
package graphio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// TaskJSON is the serialized form of one task.
type TaskJSON struct {
	Name        string       `json:"name,omitempty"`
	WCET        []rtime.Time `json:"wcet"`
	Phase       rtime.Time   `json:"phase,omitempty"`
	Period      rtime.Time   `json:"period,omitempty"`
	ETEDeadline *rtime.Time  `json:"eteDeadline,omitempty"`
	Pinned      *int         `json:"pinned,omitempty"`
	Resources   []int        `json:"resources,omitempty"`
	// Criticality is 0 (mandatory, omitted) or 1 (optional); Value is
	// the optional task's value weight (0 means unset, weighed as 1).
	Criticality int     `json:"criticality,omitempty"`
	Value       float64 `json:"value,omitempty"`
}

// ArcJSON is the serialized form of one precedence arc.
type ArcJSON struct {
	From  int        `json:"from"`
	To    int        `json:"to"`
	Items rtime.Time `json:"items,omitempty"`
}

// GraphJSON is the serialized form of a task graph.
type GraphJSON struct {
	NumClasses int        `json:"numClasses"`
	Tasks      []TaskJSON `json:"tasks"`
	Arcs       []ArcJSON  `json:"arcs"`
}

// PlatformJSON is the serialized form of a platform.
type PlatformJSON struct {
	Kind         string       `json:"kind"`
	Classes      []arch.Class `json:"classes"`
	ClassOf      []int        `json:"classOf"`
	BusDelayItem rtime.Time   `json:"busDelayPerItem"`
	// Links lists dedicated network links (absent for pure-bus
	// platforms).
	Links []LinkJSON `json:"links,omitempty"`
}

// LinkJSON is one dedicated bidirectional link.
type LinkJSON struct {
	A       int        `json:"a"`
	B       int        `json:"b"`
	PerItem rtime.Time `json:"perItem"`
}

// ReleaseJSON is the serialized release policy of a workload: how often
// the whole graph re-arrives. Absent (or mode "single") means the
// paper's single-shot model.
type ReleaseJSON struct {
	Mode   string     `json:"mode"`
	Count  int        `json:"count,omitempty"`
	MinGap rtime.Time `json:"minGap,omitempty"`
	Jitter rtime.Time `json:"jitter,omitempty"`
}

// WorkloadJSON bundles a graph with the platform it targets and an
// optional release policy.
type WorkloadJSON struct {
	Graph    GraphJSON     `json:"graph"`
	Platform *PlatformJSON `json:"platform,omitempty"`
	Release  *ReleaseJSON  `json:"release,omitempty"`
}

// EncodeRelease converts a release policy to its serialized form.
func EncodeRelease(rel gen.Release) ReleaseJSON {
	out := ReleaseJSON{Mode: rel.Mode.String()}
	if rel.Mode == gen.ReleaseSporadic {
		out.Count, out.MinGap, out.Jitter = rel.Count, rel.MinGap, rel.Jitter
	}
	return out
}

// DecodeRelease rebuilds and validates a release policy.
func DecodeRelease(in ReleaseJSON) (gen.Release, error) {
	mode, err := gen.ParseReleaseMode(in.Mode)
	if err != nil {
		return gen.Release{}, fmt.Errorf("graphio: %w", err)
	}
	rel := gen.Release{Mode: mode}
	if mode == gen.ReleaseSporadic {
		rel.Count, rel.MinGap, rel.Jitter = in.Count, in.MinGap, in.Jitter
	} else if in.Count != 0 || in.MinGap != 0 || in.Jitter != 0 {
		return gen.Release{}, fmt.Errorf("graphio: single-shot release carries sporadic parameters (count %d, minGap %d, jitter %d)",
			in.Count, in.MinGap, in.Jitter)
	}
	if err := rel.Validate(); err != nil {
		return gen.Release{}, fmt.Errorf("graphio: %w", err)
	}
	return rel, nil
}

// EncodeGraph converts a frozen graph to its serialized form.
func EncodeGraph(g *taskgraph.Graph) GraphJSON {
	out := GraphJSON{NumClasses: g.NumClasses}
	for _, t := range g.Tasks() {
		tj := TaskJSON{Name: t.Name, WCET: t.WCET, Phase: t.Phase, Period: t.Period,
			Resources: t.Resources, Criticality: int(t.Criticality), Value: t.Value}
		if t.Pinned >= 0 {
			pin := t.Pinned
			tj.Pinned = &pin
		}
		if t.ETEDeadline.IsSet() {
			d := t.ETEDeadline
			tj.ETEDeadline = &d
		}
		out.Tasks = append(out.Tasks, tj)
	}
	for _, a := range g.Arcs() {
		out.Arcs = append(out.Arcs, ArcJSON{From: a.From, To: a.To, Items: a.Items})
	}
	return out
}

// DecodeGraph rebuilds a frozen graph from its serialized form.
func DecodeGraph(in GraphJSON) (*taskgraph.Graph, error) {
	if in.NumClasses <= 0 {
		return nil, fmt.Errorf("graphio: graph declares %d processor classes", in.NumClasses)
	}
	g := taskgraph.NewGraph(in.NumClasses)
	for i, tj := range in.Tasks {
		if tj.Criticality != int(taskgraph.Mandatory) && tj.Criticality != int(taskgraph.Optional) {
			return nil, fmt.Errorf("graphio: task %d has unknown criticality %d", i, tj.Criticality)
		}
		t, err := g.AddTask(tj.Name, tj.WCET, tj.Phase)
		if err != nil {
			return nil, fmt.Errorf("graphio: task %d: %w", i, err)
		}
		t.Period = tj.Period
		t.Resources = tj.Resources
		t.Criticality = taskgraph.Criticality(tj.Criticality)
		t.Value = tj.Value
		if tj.Pinned != nil {
			t.Pinned = *tj.Pinned
		}
		if tj.ETEDeadline != nil {
			t.ETEDeadline = *tj.ETEDeadline
		}
	}
	for _, aj := range in.Arcs {
		if err := g.AddArc(aj.From, aj.To, aj.Items); err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
	}
	if err := g.Freeze(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return g, nil
}

// EncodePlatform converts a platform to its serialized form.
func EncodePlatform(p *arch.Platform) PlatformJSON {
	out := PlatformJSON{
		Kind:         p.Kind.String(),
		Classes:      p.Classes,
		BusDelayItem: p.Bus.DelayPerItem,
	}
	for _, pr := range p.Procs {
		out.ClassOf = append(out.ClassOf, pr.Class)
	}
	if p.Net != nil {
		for a := 0; a < p.M(); a++ {
			for b := a + 1; b < p.M(); b++ {
				// CommCost with one item reveals the effective per-item
				// delay; record pairs that differ from the bus.
				if d := p.CommCost(a, b, 1); d != p.Bus.DelayPerItem {
					out.Links = append(out.Links, LinkJSON{A: a, B: b, PerItem: d})
				}
			}
		}
	}
	return out
}

// DecodePlatform rebuilds a platform from its serialized form.
func DecodePlatform(in PlatformJSON) (*arch.Platform, error) {
	var kind arch.Kind
	switch in.Kind {
	case "identical":
		kind = arch.Identical
	case "uniform":
		kind = arch.Uniform
	case "unrelated", "":
		kind = arch.Unrelated
	default:
		return nil, fmt.Errorf("graphio: unknown platform kind %q", in.Kind)
	}
	p, err := arch.New(kind, in.Classes, in.ClassOf, arch.Bus{DelayPerItem: in.BusDelayItem})
	if err != nil {
		return nil, err
	}
	if len(in.Links) > 0 {
		p.Net = arch.NewNetwork(len(in.ClassOf))
		for _, l := range in.Links {
			if l.A < 0 || l.A >= len(in.ClassOf) || l.B < 0 || l.B >= len(in.ClassOf) {
				return nil, fmt.Errorf("graphio: link %d–%d references missing processor", l.A, l.B)
			}
			p.Net.SetLink(l.A, l.B, l.PerItem)
		}
	}
	return p, nil
}

// IneligibleTaskError reports a workload whose graph names a task that
// cannot execute anywhere on the accompanying platform: every class the
// task is eligible on has no processor present. Such a workload can
// never be scheduled, so loading rejects it at the boundary instead of
// letting the estimator fail deep inside the planning pipeline.
type IneligibleTaskError struct {
	// Task is the task index in the graph; Name its optional label.
	Task int
	Name string
}

// Error implements error.
func (e *IneligibleTaskError) Error() string {
	if e.Name != "" {
		return fmt.Sprintf("graphio: task %d (%s) is eligible on no processor class present on the platform", e.Task, e.Name)
	}
	return fmt.Sprintf("graphio: task %d is eligible on no processor class present on the platform", e.Task)
}

// ValidateEligibility checks that every task of g can run on at least
// one processor class that is actually present on p, returning an
// *IneligibleTaskError for the first task that cannot. ReadWorkload
// applies it automatically whenever the file carries a platform.
func ValidateEligibility(g *taskgraph.Graph, p *arch.Platform) error {
	present := p.ClassesPresent()
	for _, t := range g.Tasks() {
		ok := false
		for k := range present {
			if present[k] && t.EligibleOn(k) {
				ok = true
				break
			}
		}
		if !ok {
			return &IneligibleTaskError{Task: t.ID, Name: t.Name}
		}
	}
	return nil
}

// WriteWorkload writes a workload as indented JSON.
func WriteWorkload(w io.Writer, g *taskgraph.Graph, p *arch.Platform) error {
	return WriteWorkloadRelease(w, g, p, gen.Release{})
}

// WriteWorkloadRelease writes a workload with a release policy; the
// single-shot zero value is omitted from the file, keeping it
// byte-identical to WriteWorkload's output.
func WriteWorkloadRelease(w io.Writer, g *taskgraph.Graph, p *arch.Platform, rel gen.Release) error {
	if err := rel.Validate(); err != nil {
		return fmt.Errorf("graphio: %w", err)
	}
	wl := WorkloadJSON{Graph: EncodeGraph(g)}
	if p != nil {
		pj := EncodePlatform(p)
		wl.Platform = &pj
	}
	if rel.Mode != gen.ReleaseSingle {
		rj := EncodeRelease(rel)
		wl.Release = &rj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(wl)
}

// ReadWorkload parses a workload written by WriteWorkload. The platform
// may be absent, in which case it is returned as nil. A release policy
// in the file is validated but dropped; use ReadWorkloadRelease to keep
// it.
func ReadWorkload(r io.Reader) (*taskgraph.Graph, *arch.Platform, error) {
	g, p, _, err := ReadWorkloadRelease(r)
	return g, p, err
}

// ReadWorkloadRelease parses a workload together with its release
// policy. A file without a release block yields the single-shot zero
// value; a malformed block (unknown mode, zero count or gap, jitter at
// or above the gap) is an error, not a silent single-shot fallback.
func ReadWorkloadRelease(r io.Reader) (*taskgraph.Graph, *arch.Platform, gen.Release, error) {
	var wl WorkloadJSON
	if err := json.NewDecoder(r).Decode(&wl); err != nil {
		return nil, nil, gen.Release{}, fmt.Errorf("graphio: %w", err)
	}
	g, err := DecodeGraph(wl.Graph)
	if err != nil {
		return nil, nil, gen.Release{}, err
	}
	var p *arch.Platform
	if wl.Platform != nil {
		p, err = DecodePlatform(*wl.Platform)
		if err != nil {
			return nil, nil, gen.Release{}, err
		}
		if err := ValidateEligibility(g, p); err != nil {
			return nil, nil, gen.Release{}, err
		}
	}
	var rel gen.Release
	if wl.Release != nil {
		rel, err = DecodeRelease(*wl.Release)
		if err != nil {
			return nil, nil, gen.Release{}, err
		}
	}
	return g, p, rel, nil
}

// ResultJSON serializes one pipeline outcome for archival.
type ResultJSON struct {
	Metric      string       `json:"metric"`
	Arrival     []rtime.Time `json:"arrival"`
	AbsDeadline []rtime.Time `json:"absDeadline"`
	Proc        []int        `json:"proc"`
	Start       []rtime.Time `json:"start"`
	Finish      []rtime.Time `json:"finish"`
	Feasible    bool         `json:"feasible"`
	MaxLateness rtime.Time   `json:"maxLateness"`
	Makespan    rtime.Time   `json:"makespan"`
}

// EncodeResult bundles an assignment and a schedule.
func EncodeResult(asg *slicing.Assignment, s *sched.Schedule) ResultJSON {
	out := ResultJSON{
		Metric:      asg.MetricName,
		Arrival:     asg.Arrival,
		AbsDeadline: asg.AbsDeadline,
		Feasible:    s.Feasible,
		MaxLateness: s.MaxLateness,
		Makespan:    s.Makespan,
	}
	for _, pl := range s.Placements {
		out.Proc = append(out.Proc, pl.Proc)
		out.Start = append(out.Start, pl.Start)
		out.Finish = append(out.Finish, pl.Finish)
	}
	return out
}
