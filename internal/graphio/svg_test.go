package graphio

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

// wellFormed checks the output parses as XML.
func wellFormed(t *testing.T, data []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, data)
		}
	}
}

func TestWriteScheduleSVG(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", []rtime.Time{10}, 0)
	g.MustAddTask("b", []rtime.Time{10}, 0)
	g.MustAddArc(0, 1, 2)
	g.MustFreeze()
	p := arch.Homogeneous(2)
	asg := &slicing.Assignment{
		Arrival:     []rtime.Time{0, 10},
		AbsDeadline: []rtime.Time{10, 15}, // b will miss
		RelDeadline: []rtime.Time{10, 5},
	}
	s := &sched.Schedule{
		Placements: []sched.Placement{
			{Proc: 0, Start: 0, Finish: 10},
			{Proc: 1, Start: 12, Finish: 22},
		},
		Makespan: 22,
	}
	var buf bytes.Buffer
	if err := WriteScheduleSVG(&buf, g, p, asg, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, buf.Bytes())
	if !strings.Contains(out, "makespan 22") {
		t.Error("header missing")
	}
	if strings.Count(out, "<rect") != 2 {
		t.Errorf("want 2 task rects:\n%s", out)
	}
	if !strings.Contains(out, `stroke="#d00"`) {
		t.Error("deadline miss not highlighted")
	}
	if !strings.Contains(out, "window [10,15)") {
		t.Error("window tooltip missing")
	}
}

func TestWriteScheduleSVGGenerated(t *testing.T) {
	cfg := gen.Default(3)
	cfg.Seed = 44
	w := gen.MustGenerate(cfg)
	est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Dispatch(w.Graph, w.Platform, asg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteScheduleSVG(&buf, w.Graph, w.Platform, asg, s); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
}

func TestWriteChartSVG(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChartSVG(&buf, "Figure 2", []string{"2", "3", "4"},
		[]string{"PURE", "ADAPT-L"},
		[][]float64{{0.05, 0.7, 0.95}, {0.3, 0.96, 1.2 /* clamped */}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, buf.Bytes())
	for _, want := range []string{"Figure 2", "PURE", "ADAPT-L", "polyline", "100%", "0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Error("want one polyline per series")
	}
}

func TestWriteChartSVGValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChartSVG(&buf, "t", []string{"1"}, []string{"a"}, [][]float64{{1}}); err == nil {
		t.Error("single x value accepted")
	}
	if err := WriteChartSVG(&buf, "t", []string{"1", "2"}, []string{"a", "b"}, [][]float64{{1, 1}}); err == nil {
		t.Error("name/series mismatch accepted")
	}
}
