package graphio

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadWorkload hammers the workload reader with malformed JSON. The
// contract: it never panics (malformed structure is an error, not a
// crash), and any workload it accepts survives an encode/decode
// round-trip unchanged.
func FuzzReadWorkload(f *testing.F) {
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5]},{"wcet":[3],"eteDeadline":40,"criticality":1,"value":2}],"arcs":[{"from":0,"to":1,"items":2}]}}`))
	f.Add([]byte(`{"graph":{"numClasses":2,"tasks":[{"wcet":[5,-1],"pinned":0}],"arcs":[]},"platform":{"kind":"unrelated","classes":[{"name":"a","speed":1},{"name":"b","speed":2}],"classOf":[0,1],"busDelayPerItem":1,"links":[{"a":0,"b":1,"perItem":3}]}}`))
	f.Add([]byte(`{"graph":{"numClasses":0,"tasks":[],"arcs":[]}}`))
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5]}],"arcs":[{"from":0,"to":7}]}}`))
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5],"criticality":9}]}}`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, p, err := ReadWorkload(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !g.Frozen() {
			t.Fatal("accepted graph is not frozen")
		}
		var buf bytes.Buffer
		if err := WriteWorkload(&buf, g, p); err != nil {
			t.Fatalf("accepted workload does not re-encode: %v", err)
		}
		g2, p2, err := ReadWorkload(&buf)
		if err != nil {
			t.Fatalf("re-encoded workload does not re-decode: %v", err)
		}
		if !reflect.DeepEqual(EncodeGraph(g), EncodeGraph(g2)) {
			t.Fatal("graph round-trip changed the graph")
		}
		if (p == nil) != (p2 == nil) {
			t.Fatal("platform presence changed in round-trip")
		}
		if p != nil && !reflect.DeepEqual(EncodePlatform(p), EncodePlatform(p2)) {
			t.Fatal("platform round-trip changed the platform")
		}
	})
}

// FuzzReadWorkloadRelease hammers the release-aware reader. On top of
// FuzzReadWorkload's contract, any release policy it accepts must pass
// gen.Release.Validate (a malformed release block is an error, never a
// silent single-shot fallback) and must survive an encode/decode
// round-trip unchanged.
func FuzzReadWorkloadRelease(f *testing.F) {
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5]},{"wcet":[3],"eteDeadline":40}],"arcs":[{"from":0,"to":1,"items":2}]},"release":{"mode":"sporadic","count":4,"minGap":30,"jitter":5}}`))
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5]}],"arcs":[]},"release":{"mode":"sporadic","count":2,"minGap":10}}`))
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5]}],"arcs":[]},"release":{"mode":"sporadic","count":2,"minGap":10,"jitter":10}}`))
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5]}],"arcs":[]},"release":{"mode":"sporadic","count":0,"minGap":10}}`))
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5]}],"arcs":[]},"release":{"mode":"every-tuesday"}}`))
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5]}],"arcs":[]},"release":{"mode":"single","count":3}}`))
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5]}],"arcs":[]},"release":{"mode":"sporadic","count":2,"minGap":-4}}`))
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5]}],"arcs":[]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, p, rel, err := ReadWorkloadRelease(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !g.Frozen() {
			t.Fatal("accepted graph is not frozen")
		}
		if err := rel.Validate(); err != nil {
			t.Fatalf("accepted release does not validate: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteWorkloadRelease(&buf, g, p, rel); err != nil {
			t.Fatalf("accepted workload does not re-encode: %v", err)
		}
		g2, p2, rel2, err := ReadWorkloadRelease(&buf)
		if err != nil {
			t.Fatalf("re-encoded workload does not re-decode: %v", err)
		}
		if !reflect.DeepEqual(EncodeGraph(g), EncodeGraph(g2)) {
			t.Fatal("graph round-trip changed the graph")
		}
		if (p == nil) != (p2 == nil) {
			t.Fatal("platform presence changed in round-trip")
		}
		if p != nil && !reflect.DeepEqual(EncodePlatform(p), EncodePlatform(p2)) {
			t.Fatal("platform round-trip changed the platform")
		}
		if rel2 != rel {
			t.Fatalf("release round-trip changed the policy: %+v vs %+v", rel, rel2)
		}
	})
}
