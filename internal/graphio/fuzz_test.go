package graphio

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadWorkload hammers the workload reader with malformed JSON. The
// contract: it never panics (malformed structure is an error, not a
// crash), and any workload it accepts survives an encode/decode
// round-trip unchanged.
func FuzzReadWorkload(f *testing.F) {
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5]},{"wcet":[3],"eteDeadline":40,"criticality":1,"value":2}],"arcs":[{"from":0,"to":1,"items":2}]}}`))
	f.Add([]byte(`{"graph":{"numClasses":2,"tasks":[{"wcet":[5,-1],"pinned":0}],"arcs":[]},"platform":{"kind":"unrelated","classes":[{"name":"a","speed":1},{"name":"b","speed":2}],"classOf":[0,1],"busDelayPerItem":1,"links":[{"a":0,"b":1,"perItem":3}]}}`))
	f.Add([]byte(`{"graph":{"numClasses":0,"tasks":[],"arcs":[]}}`))
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5]}],"arcs":[{"from":0,"to":7}]}}`))
	f.Add([]byte(`{"graph":{"numClasses":1,"tasks":[{"wcet":[5],"criticality":9}]}}`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, p, err := ReadWorkload(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !g.Frozen() {
			t.Fatal("accepted graph is not frozen")
		}
		var buf bytes.Buffer
		if err := WriteWorkload(&buf, g, p); err != nil {
			t.Fatalf("accepted workload does not re-encode: %v", err)
		}
		g2, p2, err := ReadWorkload(&buf)
		if err != nil {
			t.Fatalf("re-encoded workload does not re-decode: %v", err)
		}
		if !reflect.DeepEqual(EncodeGraph(g), EncodeGraph(g2)) {
			t.Fatal("graph round-trip changed the graph")
		}
		if (p == nil) != (p2 == nil) {
			t.Fatal("platform presence changed in round-trip")
		}
		if p != nil && !reflect.DeepEqual(EncodePlatform(p), EncodePlatform(p2)) {
			t.Fatal("platform round-trip changed the platform")
		}
	})
}
