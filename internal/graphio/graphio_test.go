package graphio

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

func roundTrip(t *testing.T, g *taskgraph.Graph) *taskgraph.Graph {
	t.Helper()
	got, err := DecodeGraph(EncodeGraph(g))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	return got
}

func TestGraphRoundTrip(t *testing.T) {
	g := taskgraph.NewGraph(2)
	a := g.MustAddTask("a", []rtime.Time{10, 12}, 3)
	b := g.MustAddTask("b", []rtime.Time{rtime.Unset, 20}, 0)
	a.Period = 100
	b.ETEDeadline = 80
	b.Criticality, b.Value = taskgraph.Optional, 2.5
	g.MustAddArc(a.ID, b.ID, 5)
	g.MustFreeze()

	got := roundTrip(t, g)
	if got.NumTasks() != 2 || got.NumArcs() != 1 || got.NumClasses != 2 {
		t.Fatalf("shape lost: %d tasks, %d arcs", got.NumTasks(), got.NumArcs())
	}
	ga, gb := got.Task(0), got.Task(1)
	if ga.Name != "a" || ga.Phase != 3 || ga.Period != 100 || ga.WCET[1] != 12 {
		t.Errorf("task a lost fields: %+v", ga)
	}
	if gb.WCET[0] != rtime.Unset || gb.ETEDeadline != 80 {
		t.Errorf("task b lost fields: %+v", gb)
	}
	if ga.ETEDeadline.IsSet() {
		t.Error("task a gained a deadline")
	}
	if got.MessageItems(0, 1) != 5 {
		t.Error("arc weight lost")
	}
	if ga.Criticality != taskgraph.Mandatory || gb.Criticality != taskgraph.Optional || gb.Value != 2.5 {
		t.Errorf("criticality lost: %+v, %+v", ga, gb)
	}
}

func TestDecodeGraphRejectsBadInput(t *testing.T) {
	bad := GraphJSON{NumClasses: 1, Tasks: []TaskJSON{{WCET: []rtime.Time{5}}, {WCET: []rtime.Time{5}}},
		Arcs: []ArcJSON{{From: 0, To: 1}, {From: 1, To: 0}}}
	if _, err := DecodeGraph(bad); err == nil {
		t.Error("cyclic serialized graph accepted")
	}
	bad2 := GraphJSON{NumClasses: 1, Tasks: []TaskJSON{{WCET: []rtime.Time{-3}}}}
	if _, err := DecodeGraph(bad2); err == nil {
		t.Error("negative WCET accepted")
	}
	if _, err := DecodeGraph(GraphJSON{NumClasses: 0}); err == nil {
		t.Error("zero-class graph accepted (NewGraph would panic)")
	}
	bad3 := GraphJSON{NumClasses: 1, Tasks: []TaskJSON{{WCET: []rtime.Time{5}, Criticality: 7}}}
	if _, err := DecodeGraph(bad3); err == nil {
		t.Error("unknown criticality accepted")
	}
}

func TestPlatformRoundTrip(t *testing.T) {
	cfg := gen.Default(4)
	cfg.Seed = 5
	w := gen.MustGenerate(cfg)
	pj := EncodePlatform(w.Platform)
	got, err := DecodePlatform(pj)
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != w.Platform.M() || got.NumClasses() != w.Platform.NumClasses() ||
		got.Kind != w.Platform.Kind || got.Bus != w.Platform.Bus {
		t.Errorf("platform lost fields: %v vs %v", got, w.Platform)
	}
	for q := 0; q < got.M(); q++ {
		if got.ClassOf(q) != w.Platform.ClassOf(q) {
			t.Errorf("ClassOf(%d) mismatch", q)
		}
	}
}

func TestDecodePlatformUnknownKind(t *testing.T) {
	if _, err := DecodePlatform(PlatformJSON{Kind: "quantum", Classes: nil, ClassOf: []int{0}}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestWorkloadFileRoundTrip(t *testing.T) {
	cfg := gen.Default(3)
	cfg.Seed = 9
	w := gen.MustGenerate(cfg)
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, w.Graph, w.Platform); err != nil {
		t.Fatal(err)
	}
	g, p, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != w.Graph.NumTasks() || g.NumArcs() != w.Graph.NumArcs() {
		t.Error("graph shape changed through file round trip")
	}
	if p == nil || p.M() != w.Platform.M() {
		t.Error("platform lost")
	}
	// The round-tripped workload runs through the full pipeline.
	est, err := wcet.Estimates(g, p, wcet.AVG)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := slicing.Distribute(g, est, p.M(), slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Dispatch(g, p, asg); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadWithoutPlatform(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("only", []rtime.Time{7}, 0)
	g.MustFreeze()
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "platform") {
		t.Error("nil platform serialized")
	}
	_, p, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Error("platform materialized from nothing")
	}
}

func TestReadWorkloadRejectsGarbage(t *testing.T) {
	if _, _, err := ReadWorkload(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

// A workload whose graph names a task runnable only on a class with no
// processor on the platform is rejected at load with the typed error,
// instead of surfacing later as an estimator failure mid-pipeline.
func TestReadWorkloadRejectsIneligibleTask(t *testing.T) {
	g := taskgraph.NewGraph(2)
	g.MustAddTask("ok", []rtime.Time{5, 6}, 0)
	g.MustAddTask("stranded", []rtime.Time{rtime.Unset, 9}, 0)
	g.MustFreeze()
	// Two classes declared, but every processor is class 0: "stranded"
	// (eligible only on class 1) can never run.
	p, err := arch.New(arch.Unrelated, []arch.Class{{}, {}}, []int{0, 0}, arch.Bus{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, g, p); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadWorkload(&buf)
	var ie *IneligibleTaskError
	if !errors.As(err, &ie) {
		t.Fatalf("want IneligibleTaskError, got %v", err)
	}
	if ie.Task != 1 || ie.Name != "stranded" {
		t.Fatalf("wrong task identified: %+v", ie)
	}
	if !strings.Contains(ie.Error(), "stranded") {
		t.Errorf("message omits the task name: %q", ie.Error())
	}

	// The same workload without a platform loads fine — eligibility is a
	// property of the pair, not of the graph alone.
	buf.Reset()
	if err := WriteWorkload(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadWorkload(&buf); err != nil {
		t.Fatalf("platform-free workload rejected: %v", err)
	}
}

func TestEncodeResult(t *testing.T) {
	asg := &slicing.Assignment{
		MetricName:  "ADAPT-L",
		Arrival:     []rtime.Time{0},
		AbsDeadline: []rtime.Time{10},
	}
	s := &sched.Schedule{
		Placements: []sched.Placement{{Proc: 2, Start: 1, Finish: 9}},
		Feasible:   true, MaxLateness: -1, Makespan: 9,
	}
	r := EncodeResult(asg, s)
	if r.Metric != "ADAPT-L" || r.Proc[0] != 2 || r.Start[0] != 1 || r.Finish[0] != 9 ||
		!r.Feasible || r.MaxLateness != -1 || r.Makespan != 9 {
		t.Errorf("result = %+v", r)
	}
}

// Property: generated workloads survive serialization bit-exactly at the
// structural level.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := gen.Default(3)
		cfg.Seed = seed
		w, err := gen.Generate(cfg)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteWorkload(&buf, w.Graph, w.Platform); err != nil {
			return false
		}
		g, p, err := ReadWorkload(&buf)
		if err != nil || p == nil {
			return false
		}
		if g.NumTasks() != w.Graph.NumTasks() || g.NumArcs() != w.Graph.NumArcs() {
			return false
		}
		for i := 0; i < g.NumTasks(); i++ {
			want, got := w.Graph.Task(i), g.Task(i)
			if want.ETEDeadline != got.ETEDeadline || want.Phase != got.Phase {
				return false
			}
			for k := range want.WCET {
				if want.WCET[k] != got.WCET[k] {
					return false
				}
			}
		}
		for _, a := range w.Graph.Arcs() {
			if g.MessageItems(a.From, a.To) != a.Items {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPlatformNetworkRoundTrip(t *testing.T) {
	p := arch.Homogeneous(3)
	p.Net = arch.NewNetwork(3).SetLink(0, 1, 0)
	p.Net.SetLink(1, 2, 4)
	got, err := DecodePlatform(EncodePlatform(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.CommCost(0, 1, 9) != 0 {
		t.Error("fast link lost")
	}
	if got.CommCost(1, 2, 2) != 8 {
		t.Error("slow link lost")
	}
	if got.CommCost(0, 2, 2) != 2 {
		t.Error("bus fallback changed")
	}
}

func TestDecodePlatformRejectsDanglingLink(t *testing.T) {
	pj := EncodePlatform(arch.Homogeneous(2))
	pj.Links = []LinkJSON{{A: 0, B: 5, PerItem: 1}}
	if _, err := DecodePlatform(pj); err == nil {
		t.Error("dangling link accepted")
	}
}
