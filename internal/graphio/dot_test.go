package graphio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

func TestWriteDOT(t *testing.T) {
	g := taskgraph.NewGraph(2)
	a := g.MustAddTask("sense", []rtime.Time{5, 7}, 0)
	b := g.MustAddTask("", []rtime.Time{rtime.Unset, 9}, 0)
	a.Resources = []int{1}
	b.ETEDeadline = 40
	g.MustAddArc(a.ID, b.ID, 3)
	g.MustFreeze()

	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph taskgraph", "sense", "t1", // unnamed task gets an ID label
		"c=5/7", "c=-/9", // WCET vectors, dash for ineligible
		"D=40", "peripheries=2", // output annotation
		"res=[1]", "style=dashed", // resource annotation
		"n0 -> n1 [label=\"3\"]", // message size on the arc
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTWithAssignment(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("x", []rtime.Time{5}, 0)
	g.Task(0).ETEDeadline = 20
	g.MustFreeze()
	asg := &slicing.Assignment{
		Arrival:     []rtime.Time{0},
		AbsDeadline: []rtime.Time{20},
		RelDeadline: []rtime.Time{20},
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, asg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[0,20)") {
		t.Errorf("window annotation missing:\n%s", buf.String())
	}
}

func TestResourcesRoundTrip(t *testing.T) {
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", []rtime.Time{5}, 0)
	a.Resources = []int{0, 3}
	g.MustFreeze()
	got, err := DecodeGraph(EncodeGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	res := got.Task(0).Resources
	if len(res) != 2 || res[0] != 0 || res[1] != 3 {
		t.Errorf("resources lost: %v", res)
	}
}
