package graphio

import (
	"fmt"
	"io"

	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// WriteDOT renders a task graph in Graphviz DOT format so workloads can
// be visualized with standard tooling. When an assignment is provided,
// each node is annotated with its execution window; output tasks show
// their end-to-end deadline.
func WriteDOT(w io.Writer, g *taskgraph.Graph, asg *slicing.Assignment) error {
	if _, err := fmt.Fprintln(w, "digraph taskgraph {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [shape=box, fontsize=10];")
	for _, t := range g.Tasks() {
		label := t.Name
		if label == "" {
			label = fmt.Sprintf("t%d", t.ID)
		}
		label += fmt.Sprintf("\\nc=%s", wcetLabel(t))
		if asg != nil && t.ID < len(asg.Arrival) && asg.Arrival[t.ID].IsSet() {
			label += fmt.Sprintf("\\n[%d,%d)", asg.Arrival[t.ID], asg.AbsDeadline[t.ID])
		}
		attrs := ""
		if t.ETEDeadline.IsSet() {
			label += fmt.Sprintf("\\nD=%d", t.ETEDeadline)
			attrs = ", peripheries=2"
		}
		if len(t.Resources) > 0 {
			label += fmt.Sprintf("\\nres=%v", t.Resources)
			attrs += ", style=dashed"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\"%s];\n", t.ID, label, attrs); err != nil {
			return err
		}
	}
	for _, a := range g.Arcs() {
		attr := ""
		if a.Items > 0 {
			attr = fmt.Sprintf(" [label=\"%d\"]", a.Items)
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d%s;\n", a.From, a.To, attr); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func wcetLabel(t *taskgraph.Task) string {
	out := ""
	for k, c := range t.WCET {
		if k > 0 {
			out += "/"
		}
		if c.IsSet() {
			out += fmt.Sprintf("%d", c)
		} else {
			out += "-"
		}
	}
	return out
}
