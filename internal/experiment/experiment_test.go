package experiment

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/slicing"
	"repro/internal/stats"
	"repro/internal/wcet"
)

func smallConfig(metric slicing.Metric) Config {
	g := gen.Default(3)
	g.OLR = DefaultOLR
	return Config{
		Gen:        g,
		Metric:     metric,
		Params:     slicing.CalibratedParams(),
		WCET:       wcet.AVG,
		NumGraphs:  30,
		MasterSeed: 42,
	}
}

func TestRunBasics(t *testing.T) {
	p := Run(smallConfig(slicing.AdaptL()))
	if p.Success.Total != 30 {
		t.Fatalf("Total = %d, want 30", p.Success.Total)
	}
	if p.Errors != 0 {
		t.Errorf("Errors = %d", p.Errors)
	}
	if p.Success.Succ == 0 {
		t.Error("ADAPT-L at the default point should schedule some workloads")
	}
	if p.Lateness.N() != 30 || p.MinLaxity.N() != 30 {
		t.Error("secondary measures not accumulated per workload")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	base := smallConfig(slicing.NORM())
	var points []Point
	for _, workers := range []int{1, 2, 7} {
		cfg := base
		cfg.Workers = workers
		points = append(points, Run(cfg))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Success != points[0].Success {
			t.Errorf("workers=%d changed the success count: %v vs %v",
				[]int{1, 2, 7}[i], points[i].Success, points[0].Success)
		}
		// Welford merges are float-order sensitive, so allow rounding
		// noise; the statistics themselves must agree.
		if d := points[i].Lateness.Mean() - points[0].Lateness.Mean(); d > 1e-6 || d < -1e-6 {
			t.Errorf("lateness mean depends on worker count: %v vs %v",
				points[i].Lateness.Mean(), points[0].Lateness.Mean())
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	a := Run(smallConfig(slicing.PURE()))
	cfg := smallConfig(slicing.PURE())
	cfg.MasterSeed = 43
	b := Run(cfg)
	if a.Success == b.Success && a.Lateness.Mean() == b.Lateness.Mean() {
		t.Error("different master seeds gave identical points (suspicious)")
	}
}

func TestSchedulerVariantsBothWork(t *testing.T) {
	for _, s := range []Scheduler{TimeDriven, Planner} {
		cfg := smallConfig(slicing.AdaptL())
		cfg.Scheduler = s
		p := Run(cfg)
		if p.Errors != 0 || p.Success.Total != 30 {
			t.Errorf("%v: errors=%d total=%d", s, p.Errors, p.Success.Total)
		}
	}
	if TimeDriven.String() != "time-driven" || Planner.String() != "planner" {
		t.Error("scheduler names wrong")
	}
	if !strings.Contains(Scheduler(9).String(), "9") {
		t.Error("unknown scheduler should include its number")
	}
}

func TestFigureShapes(t *testing.T) {
	opts := DefaultOptions()
	opts.NumGraphs = 4 // shape check only
	cases := []struct {
		fig     int
		series  int
		columns int
	}{
		{2, 4, 7},
		{3, 4, len(OLRSweep)},
		{4, 4, len(ETDSweep)},
		{5, 3, len(OLRSweep)},
		{6, 3, len(ETDSweep)},
	}
	for _, c := range cases {
		table := Figures[c.fig](opts)
		if len(table.Series) != c.series {
			t.Errorf("fig %d: %d series, want %d", c.fig, len(table.Series), c.series)
		}
		if len(table.XValues) != c.columns {
			t.Errorf("fig %d: %d columns, want %d", c.fig, len(table.XValues), c.columns)
		}
		for _, s := range table.Series {
			if len(s.Points) != c.columns {
				t.Errorf("fig %d series %s: %d points", c.fig, s.Name, len(s.Points))
			}
			for _, p := range s.Points {
				if p.Success.Total != 4 || p.Errors != 0 {
					t.Errorf("fig %d series %s: bad point %+v", c.fig, s.Name, p.Success)
				}
			}
		}
	}
}

func TestTableHelpers(t *testing.T) {
	table := Table{
		Title:   "t",
		XLabel:  "x",
		XValues: []string{"1", "2"},
		Series: []Series{
			{Name: "a", Points: []Point{{}, {}}},
		},
	}
	table.Series[0].Points[0].Success.Add(true)
	table.Series[0].Points[1].Success.Add(false)
	row := table.SuccessRow(0)
	if row[0] != 1 || row[1] != 0 {
		t.Errorf("SuccessRow = %v", row)
	}
	if i, err := table.SeriesByName("a"); err != nil || i != 0 {
		t.Errorf("SeriesByName = %d, %v", i, err)
	}
	if _, err := table.SeriesByName("zzz"); err == nil {
		t.Error("missing series not reported")
	}
}

func TestFormatTable(t *testing.T) {
	table := Table{
		Title:   "Figure X",
		XLabel:  "m",
		XValues: []string{"2", "3"},
		Series:  []Series{{Name: "PURE", Points: make([]Point, 2)}},
	}
	table.Series[0].Points[0].Success = statsRatio(1, 2)
	table.Series[0].Points[1].Success = statsRatio(2, 2)
	out := FormatTable(table)
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "PURE") {
		t.Errorf("table missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "100.0%") {
		t.Errorf("percentages missing:\n%s", out)
	}
	csv := FormatTableCSV(table)
	if !strings.HasPrefix(csv, "series,2,3\n") || !strings.Contains(csv, "PURE,0.5000,1.0000") {
		t.Errorf("CSV wrong:\n%s", csv)
	}
}

func TestOptionsParamsFallback(t *testing.T) {
	var o Options
	if o.params() != slicing.CalibratedParams() {
		t.Error("zero Params should fall back to the calibrated set")
	}
	o.Params = slicing.DefaultParams()
	if o.params() != slicing.DefaultParams() {
		t.Error("explicit Params ignored")
	}
}

// statsRatio builds a Ratio value for table tests.
func statsRatio(succ, total int) (r stats.Ratio) {
	for i := 0; i < total; i++ {
		r.Add(i < succ)
	}
	return r
}

func TestClassifyCountsProvablyInfeasible(t *testing.T) {
	cfg := smallConfig(slicing.PURE())
	cfg.Classify = true
	g := cfg.Gen
	g.OLR = 0.35 // tight enough that many assignments are provably dead
	cfg.Gen = g
	p := Run(cfg)
	if p.ProvablyInfeasible == 0 {
		t.Error("tight point should certify some assignments infeasible")
	}
	failures := p.Success.Total - p.Success.Succ
	if p.ProvablyInfeasible > failures {
		t.Errorf("certified %d infeasible but only %d failed", p.ProvablyInfeasible, failures)
	}
	// Without Classify the counter stays zero.
	cfg.Classify = false
	if q := Run(cfg); q.ProvablyInfeasible != 0 {
		t.Error("counter filled without Classify")
	}
}

// Sporadic releases can only demote a point's successes: a plan counts
// only when every release meets its shifted deadline. And with releases
// spaced far beyond any horizon, each release replays the one-shot
// schedule verbatim, so the success count must match exactly.
func TestRunSporadicRelease(t *testing.T) {
	base := smallConfig(slicing.AdaptL())
	single := Run(base)

	wide := base
	wide.Release = gen.Release{Mode: gen.ReleaseSporadic, Count: 3, MinGap: 1 << 20}
	wp := Run(wide)
	if wp.Errors != 0 {
		t.Fatalf("wide sporadic point errored %d times", wp.Errors)
	}
	if wp.Success != single.Success {
		t.Errorf("disjoint releases changed success: %v, one-shot %v", wp.Success, single.Success)
	}

	tight := base
	tight.Release = gen.Release{Mode: gen.ReleaseSporadic, Count: 4, MinGap: 40, Jitter: 10}
	tp := Run(tight)
	if tp.Errors != 0 {
		t.Fatalf("tight sporadic point errored %d times", tp.Errors)
	}
	if tp.Success.Succ > single.Success.Succ {
		t.Errorf("overlapping releases raised success: %v > %v", tp.Success, single.Success)
	}
	// Secondary measures still grade the base plan.
	if tp.Lateness.N() != single.Lateness.N() {
		t.Errorf("lateness sample size %d, want %d", tp.Lateness.N(), single.Lateness.N())
	}
}
