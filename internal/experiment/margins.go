package experiment

import (
	"context"
	"time"

	"repro/internal/deadline"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/robust"
	"repro/internal/sim"
	"repro/internal/slicing"
	"repro/internal/stats"
	"repro/internal/wcet"
)

// MarginConfig describes one robustness-margin data point: a workload
// distribution, a metric, and either an estimation-error model
// (MarginRun) or a breakdown-factor search (BreakdownRun) to evaluate
// the resulting assignments under.
type MarginConfig struct {
	// Gen is the workload generator configuration (Gen.Seed is ignored;
	// per-graph seeds derive from MasterSeed).
	Gen gen.Config
	// Metric is the critical-path metric under evaluation.
	Metric slicing.Metric
	// Params are the adaptive-metric parameters.
	Params slicing.Params
	// WCET is the estimation strategy the assignments are derived from.
	WCET wcet.Strategy
	// NumGraphs is the sample size per point.
	NumGraphs int
	// MasterSeed makes the study reproducible. Workload idx draws its
	// graph from SubSeed(MasterSeed, idx) and its perturbation from
	// SubSeed(MasterSeed+2, idx) — the perturbation seed does not depend
	// on the metric, so every metric faces the identical estimation
	// error (paired comparison, as everywhere in the harness).
	MasterSeed int64
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Model is the estimation-error scenario MarginRun executes under;
	// the zero model reproduces nominal execution exactly.
	Model wcet.ErrorModel
	// Reclaim runs the online slack-reclamation policy during injected
	// executions.
	Reclaim bool
	// Reslice, when MaxRetries > 0, runs the adaptive re-slicing
	// feedback loop on every workload whose perturbed run misses a
	// deadline, reporting recovery alongside the plain degradation.
	Reslice robust.ResliceOptions
	// Breakdown bounds BreakdownRun's critical-factor search.
	Breakdown robust.BreakdownOptions
	// Timeout is the per-workload wall-clock budget (0 = none); a
	// workload over budget is abandoned and counted in Point.Timeouts.
	Timeout time.Duration
	// Pipe optionally supplies a shared plan cache and instrumentation
	// recorder for the planning pipeline. A shared cache lets the
	// re-slicing loop's first round and the breakdown bisection's probes
	// reuse the nominal plan instead of re-planning it.
	Pipe pipeline.Shared
	// Release selects the release model the perturbed executions run
	// under. The zero value (ReleaseSingle) injects into one release of
	// the plan, as before. With ReleaseSporadic, the plan is expanded
	// over a seeded sporadic release sequence (sim.ExpandSystem) and the
	// estimation-error trace is tiled over every release (faults.Tile),
	// so a margin point grades the recurring workload. The re-slicing
	// feedback loop is single-shot recovery machinery and is skipped on
	// sporadic points. BreakdownRun ignores this field.
	Release gen.Release
}

// builder assembles the pipeline configuration this point plans with.
func (cfg MarginConfig) builder() *pipeline.Builder {
	return &pipeline.Builder{
		Estimator:   pipeline.StrategyEstimator(cfg.WCET),
		Distributor: deadline.Sliced{Metric: cfg.Metric, Params: cfg.Params},
		Cache:       cfg.Pipe.Cache,
		Recorder:    cfg.Pipe.Recorder,
	}
}

// MarginPoint aggregates one estimation-error data point.
type MarginPoint struct {
	// Success counts runs that met every originally assigned deadline
	// under the perturbed truth. At a zero error model it equals the
	// nominal time-driven success ratio for the same (metric, seed).
	Success stats.Ratio
	// MissRatio accumulates the per-run task deadline-miss ratio.
	MissRatio stats.Running
	// ETEMissRatio accumulates the per-run end-to-end (output-task)
	// miss ratio.
	ETEMissRatio stats.Running
	// Recovered counts, over the runs that missed a deadline, those the
	// adaptive re-slicing loop brought back to a clean run (tracked only
	// when Reslice.MaxRetries > 0).
	Recovered stats.Ratio
	// ResliceIters accumulates the feedback iterations of attempted
	// recoveries.
	ResliceIters stats.Running
	// Rebuilds and RebuildHits total the re-slice correction rounds
	// re-planned incrementally and the subset answered from the shared
	// cache (see pipeline.Replanner).
	Rebuilds, RebuildHits int
	// Overruns and Reclamations total the observed overruns and online
	// slack reclamations of the first (pre-reslice) executions.
	Overruns, Reclamations int
	// Errors counts pipeline failures, including panicking workloads.
	Errors int
	// Timeouts counts workloads abandoned at the per-workload budget.
	Timeouts int
	// Abandoned counts abandoned workload goroutines still running when
	// the point finished (see PoolStats.Abandoned); cooperative
	// cancellation normally keeps this at 0.
	Abandoned int
}

// marginOutcome is the per-workload result MarginRun folds.
type marginOutcome struct {
	success      bool
	missRatio    float64
	eteMissRatio float64
	outputs      int
	overruns     int
	reclamations int
	attempted    bool // re-slicing ran
	recovered    bool
	iters        int
	rebuilds     int
	rebuildHits  int
}

// MarginRun evaluates one estimation-error data point: every workload's
// assignment is derived from the estimates, reality is perturbed by one
// draw of cfg.Model, and the schedule is executed by the fault-injected
// dispatcher. With Reslice.MaxRetries > 0, failing runs additionally go
// through the adaptive re-slicing feedback loop.
func MarginRun(cfg MarginConfig) MarginPoint {
	outs, errs, pst := runIndexed(cfg.Workers, cfg.NumGraphs, cfg.Timeout, func(ctx context.Context, idx int) (any, error) {
		return marginRunOne(ctx, cfg, idx)
	})
	var point MarginPoint
	point.Abandoned = pst.Abandoned
	for i := range outs {
		if errs[i] != nil {
			point.Errors++
			if _, ok := errs[i].(*TimeoutError); ok {
				point.Timeouts++
			}
			continue
		}
		o := outs[i].(marginOutcome)
		point.Success.Add(o.success)
		point.MissRatio.Add(o.missRatio)
		if o.outputs > 0 {
			point.ETEMissRatio.Add(o.eteMissRatio)
		}
		point.Overruns += o.overruns
		point.Reclamations += o.reclamations
		if o.attempted {
			point.Recovered.Add(o.recovered)
			point.ResliceIters.Add(float64(o.iters))
			point.Rebuilds += o.rebuilds
			point.RebuildHits += o.rebuildHits
		}
	}
	return point
}

// perturbTrace converts a truth-vs-estimate perturbation into a fault
// trace the injected executor understands: task factors become
// per-task execution scales, class factors become per-processor
// slowdowns.
func perturbTrace(p wcet.Perturbation, m int, classOf func(q int) int) *faults.Trace {
	tr := faults.ZeroTrace(len(p.TaskScale), m)
	copy(tr.ExecScale, p.TaskScale)
	for q := 0; q < m; q++ {
		tr.Slow[q] = p.ClassScale[classOf(q)]
	}
	return tr
}

// marginRunOne executes workload idx under its estimation-error draw.
func marginRunOne(ctx context.Context, cfg MarginConfig, idx int) (marginOutcome, error) {
	var o marginOutcome
	if err := cfg.Model.Validate(); err != nil {
		return o, err
	}
	gcfg := cfg.Gen
	gcfg.Seed = gen.SubSeed(cfg.MasterSeed, idx)
	w, err := gen.Generate(gcfg)
	if err != nil {
		return o, err
	}
	plan, err := cfg.builder().BuildContext(ctx, pipeline.Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		return o, err
	}
	pert := cfg.Model.Draw(w.Graph.NumTasks(), w.Platform.NumClasses(),
		gen.SubSeed(cfg.MasterSeed+2, idx))
	tr := perturbTrace(pert, w.Platform.M(), w.Platform.ClassOf)
	graph, asg, sched := w.Graph, plan.Assignment, plan.Schedule
	itr, sporadic := tr, cfg.Release.Mode == gen.ReleaseSporadic
	if sporadic {
		// Recurring workload: expand the plan over the seeded release
		// sequence and repeat the per-task estimation error for every
		// release (the error lives in the estimate, not the draw).
		eg, easg, es, times, err := sim.ExpandSystem(w.Graph, w.Platform, plan.Assignment, cfg.Release, gcfg.Seed)
		if err != nil {
			return o, err
		}
		graph, asg, sched = eg, easg, es
		itr = tr.Tile(w.Graph.NumTasks(), len(times))
	}
	ir, err := sim.Inject(graph, w.Platform, asg, sched,
		sim.Options{Faults: itr, Reclaim: cfg.Reclaim})
	if err != nil {
		return o, err
	}
	d := ir.Degradation
	o.success = d.Misses == 0
	o.missRatio = d.MissRatio()
	o.outputs = len(graph.Outputs())
	if o.outputs > 0 {
		o.eteMissRatio = float64(d.ETEMisses) / float64(o.outputs)
	}
	o.overruns = d.Overruns
	o.reclamations = d.Reclamations
	if !o.success && !sporadic && cfg.Reslice.MaxRetries > 0 {
		ropt := cfg.Reslice
		ropt.Pipe = cfg.Pipe
		rr, err := robust.ResliceLoopContext(ctx, w.Graph, w.Platform, plan.Estimates, cfg.Metric,
			cfg.Params, tr, ropt)
		if err != nil {
			return o, err
		}
		o.attempted = true
		o.recovered = rr.Recovered
		o.iters = rr.Iterations
		o.rebuilds = rr.Rebuilds
		o.rebuildHits = rr.RebuildHits
	}
	return o, nil
}

// BreakdownPoint aggregates one breakdown-factor data point.
type BreakdownPoint struct {
	// Factor accumulates the per-workload critical WCET scaling factors
	// (workloads that survive at the search cap contribute the cap, so
	// the mean is cap-censored).
	Factor stats.Running
	// Unbounded counts workloads whose assignment survived at the
	// search ceiling.
	Unbounded int
	// Nominal counts workloads that survive unscaled execution — by
	// construction exactly the nominal time-driven success ratio.
	Nominal stats.Ratio
	// Errors counts pipeline failures, including panicking workloads.
	Errors int
	// Timeouts counts workloads abandoned at the per-workload budget.
	Timeouts int
	// Abandoned counts abandoned workload goroutines still running when
	// the point finished (see PoolStats.Abandoned).
	Abandoned int
}

// BreakdownRun measures the distribution of critical WCET scaling
// factors (robust.BreakdownFactor) over the workload sample.
func BreakdownRun(cfg MarginConfig) BreakdownPoint {
	outs, errs, pst := runIndexed(cfg.Workers, cfg.NumGraphs, cfg.Timeout, func(ctx context.Context, idx int) (any, error) {
		return breakdownRunOne(ctx, cfg, idx)
	})
	var point BreakdownPoint
	point.Abandoned = pst.Abandoned
	for i := range outs {
		if errs[i] != nil {
			point.Errors++
			if _, ok := errs[i].(*TimeoutError); ok {
				point.Timeouts++
			}
			continue
		}
		b := outs[i].(robust.Breakdown)
		point.Factor.Add(b.Factor)
		if b.Unbounded {
			point.Unbounded++
		}
		point.Nominal.Add(b.SurvivesNominal)
	}
	return point
}

func breakdownRunOne(ctx context.Context, cfg MarginConfig, idx int) (robust.Breakdown, error) {
	var b robust.Breakdown
	gcfg := cfg.Gen
	gcfg.Seed = gen.SubSeed(cfg.MasterSeed, idx)
	w, err := gen.Generate(gcfg)
	if err != nil {
		return b, err
	}
	// Every bisection probe re-fetches the plan through the pipeline —
	// only the WCET scaling changes between probes, so with a plan cache
	// the workload is planned exactly once. Without a shared cache a
	// private single-entry cache keeps the probes amortized.
	builder := cfg.builder()
	if builder.Cache == nil {
		builder.Cache = pipeline.NewCache(1)
	}
	return robust.BreakdownViaContext(ctx, builder,
		pipeline.Spec{Graph: w.Graph, Platform: w.Platform}, cfg.Breakdown)
}
