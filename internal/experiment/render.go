package experiment

import (
	"fmt"
	"strings"
)

// FormatTable renders a figure table as aligned text: one row per
// series, one column per X value, success ratios as percentages.
func FormatTable(t Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)

	nameW := len(t.XLabel)
	for _, s := range t.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	colW := 7
	for _, x := range t.XValues {
		if len(x)+1 > colW {
			colW = len(x) + 1
		}
	}

	fmt.Fprintf(&b, "%-*s", nameW+2, t.XLabel)
	for _, x := range t.XValues {
		fmt.Fprintf(&b, "%*s", colW, x)
	}
	b.WriteByte('\n')
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%-*s", nameW+2, s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%*s", colW, fmt.Sprintf("%.1f%%", 100*p.Success.Value()))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTableCSV renders the same data as CSV for downstream plotting.
func FormatTableCSV(t Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s\n", strings.Join(t.XValues, ","))
	for _, s := range t.Series {
		b.WriteString(s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, ",%.4f", p.Success.Value())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
