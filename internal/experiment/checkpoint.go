package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// Journal is an append-only JSON-lines checkpoint for long sweeps. The
// first line is a header fingerprinting the sweep configuration; each
// subsequent line records one completed cell as {"key": ..., "value":
// ...}. A sweep consults Lookup before computing a cell and Records the
// result after, so an interrupted run replays instantly up to the crash
// point on resume and recomputes only the missing cells. Because cells
// are keyed (not positional) and the sweep itself folds them in a fixed
// order, a resumed run renders byte-identically to an uninterrupted one.
//
// The journal tolerates a torn trailing line (a crash mid-write): on
// open the valid prefix is kept and the file is rewritten without the
// torn tail before appending resumes.
type Journal struct {
	f     *os.File
	w     *bufio.Writer
	cells map[string]json.RawMessage
}

// journalLine is one record of the file.
type journalLine struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// ErrJournalHeader reports a resume attempt against a journal written
// under a different sweep configuration.
var ErrJournalHeader = errors.New("experiment: journal header does not match the sweep configuration")

// OpenJournal opens (resume=true) or creates (resume=false) a
// checkpoint journal. header fingerprints the sweep configuration; a
// resumed journal whose header differs returns ErrJournalHeader rather
// than silently mixing incompatible cells. A nil *Journal is a valid
// no-op journal (Lookup misses, Record and Close do nothing), so
// callers can thread an optional journal without branching.
func OpenJournal(path, header string, resume bool) (*Journal, error) {
	j := &Journal{cells: make(map[string]json.RawMessage)}
	var lines []journalLine
	if resume {
		data, err := os.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("experiment: resume journal: %w", err)
		}
		if err == nil {
			lines, err = parseJournal(data, header)
			if err != nil {
				return nil, err
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: create journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	if err := j.writeLine(journalLine{Key: "header", Value: mustJSON(header)}); err != nil {
		f.Close()
		return nil, err
	}
	for _, ln := range lines {
		j.cells[ln.Key] = ln.Value
		if err := j.writeLine(ln); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := j.w.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: flush journal: %w", err)
	}
	return j, nil
}

// parseJournal validates the header and returns the valid cell lines,
// dropping a torn trailing line.
func parseJournal(data []byte, header string) ([]journalLine, error) {
	var lines []journalLine
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	first := true
	for sc.Scan() {
		var ln journalLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			// A torn line can only be the last one; anything after it is
			// unreachable because the writer is append-only.
			break
		}
		if first {
			var got string
			if ln.Key != "header" || json.Unmarshal(ln.Value, &got) != nil || got != header {
				return nil, ErrJournalHeader
			}
			first = false
			continue
		}
		lines = append(lines, ln)
	}
	if first {
		// Empty or torn-at-header journal: treat as fresh rather than
		// resuming nothing against a mismatched fingerprint.
		return nil, nil
	}
	return lines, nil
}

// Lookup fetches a previously recorded cell into out, reporting whether
// the key was present.
func (j *Journal) Lookup(key string, out any) (bool, error) {
	if j == nil {
		return false, nil
	}
	raw, ok := j.cells[key]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("experiment: journal cell %q: %w", key, err)
	}
	return true, nil
}

// Record journals one completed cell and flushes it to the file, so a
// crash immediately after still finds it on resume.
func (j *Journal) Record(key string, value any) error {
	if j == nil {
		return nil
	}
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("experiment: journal cell %q: %w", key, err)
	}
	j.cells[key] = raw
	if err := j.writeLine(journalLine{Key: key, Value: raw}); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("experiment: flush journal: %w", err)
	}
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return fmt.Errorf("experiment: flush journal: %w", err)
	}
	return j.f.Close()
}

func (j *Journal) writeLine(ln journalLine) error {
	b, err := json.Marshal(ln)
	if err != nil {
		return fmt.Errorf("experiment: journal line: %w", err)
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("experiment: write journal: %w", err)
	}
	return nil
}

func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
