package experiment

import (
	"reflect"
	"testing"

	"repro/internal/degrade"
	"repro/internal/gen"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

func smallDegradeConfig(metric slicing.Metric, optProb float64, pol degrade.Policy) DegradeConfig {
	g := gen.Default(3)
	g.OLR = DefaultOLR
	g.OptionalProb = optProb
	return DegradeConfig{
		Gen:         g,
		Metric:      metric,
		Params:      slicing.CalibratedParams(),
		WCET:        wcet.AVG,
		NumGraphs:   25,
		MasterSeed:  42,
		Intensities: []float64{0, 0.4, 0.8, 1},
		Degrade:     degrade.Options{Policy: pol},
	}
}

// Zero-degradation identity: with no optional tasks, or with the policy
// disabled, the study's baseline points must be byte-identical to the
// plain fault study at every intensity of the ramp — the degradation
// machinery is a strict superset.
func TestDegradeRunIdentity(t *testing.T) {
	cases := []struct {
		name    string
		optProb float64
		pol     degrade.Policy
	}{
		{"all-mandatory", 0, degrade.ShedLowestValue},
		{"policy-none", 0.4, degrade.None},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallDegradeConfig(slicing.AdaptL(), tc.optProb, tc.pol)
			curve, err := DegradeRun(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for p, intensity := range cfg.Intensities {
				fcfg := FaultConfig{
					Gen: cfg.Gen, Metric: cfg.Metric, Params: cfg.Params,
					WCET: cfg.WCET, NumGraphs: cfg.NumGraphs,
					MasterSeed: cfg.MasterSeed, Intensity: intensity,
				}
				want := FaultRun(fcfg)
				if !reflect.DeepEqual(curve.Points[p].Fault, want) {
					t.Errorf("intensity %v: baseline diverged from FaultRun:\n got %+v\nwant %+v",
						intensity, curve.Points[p].Fault, want)
				}
				// With a single-mode ladder the achieved value is 1
				// wherever the mandatory (= whole) set held.
				pt := curve.Points[p]
				if pt.Escalations != 0 || pt.ModeErrors != 0 {
					t.Errorf("intensity %v: single-mode ladder escalated", intensity)
				}
			}
		})
	}
}

// The study's headline guarantees: the achieved-value curve is
// non-increasing along the intensity ramp, and every admitted workload
// held its mandatory deadlines.
func TestDegradeRunMonotoneValue(t *testing.T) {
	for _, pol := range degrade.Policies {
		cfg := smallDegradeConfig(slicing.AdaptL(), 0.5, pol)
		curve, err := DegradeRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for p, pt := range curve.Points {
			if pt.Errors != 0 {
				t.Fatalf("%v intensity %v: %d errors", pol, curve.Intensities[p], pt.Errors)
			}
			// Admission implies a mandatory-clean frame: the two counts
			// must partition the sample.
			if pt.MandatoryMet.Succ+pt.Rejected != cfg.NumGraphs {
				t.Errorf("%v intensity %v: %d mandatory-clean + %d rejected ≠ %d workloads",
					pol, curve.Intensities[p], pt.MandatoryMet.Succ, pt.Rejected, cfg.NumGraphs)
			}
			if p == 0 {
				continue
			}
			prev := curve.Points[p-1]
			if pt.Value.Mean() > prev.Value.Mean()+1e-12 {
				t.Errorf("%v: value rose %.4f → %.4f at intensity %v",
					pol, prev.Value.Mean(), pt.Value.Mean(), curve.Intensities[p])
			}
			if pt.Level.Mean() < prev.Level.Mean()-1e-12 {
				t.Errorf("%v: admitted level fell %.3f → %.3f at intensity %v",
					pol, prev.Level.Mean(), pt.Level.Mean(), curve.Intensities[p])
			}
			if pt.Rejected < prev.Rejected {
				t.Errorf("%v: rejection latch released: %d → %d",
					pol, prev.Rejected, pt.Rejected)
			}
		}
		// At full intensity something must actually have degraded, or
		// the study exercises nothing.
		last := curve.Points[len(curve.Points)-1]
		if last.Escalations == 0 && last.Rejected == 0 && last.Saturated == 0 {
			t.Errorf("%v: full intensity triggered no degradation at all", pol)
		}
	}
}

// At intensity 0 nothing is hot, so every workload stays at level 0 with
// full value.
func TestDegradeRunNominalFullValue(t *testing.T) {
	cfg := smallDegradeConfig(slicing.AdaptL(), 0.5, degrade.ShedLowestValue)
	cfg.Intensities = []float64{0}
	curve, err := DegradeRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := curve.Points[0]
	// Frames can only be hot at intensity 0 if the nominal schedule
	// already misses; those escalate or reject. Everything admitted at
	// level 0 carries value 1.
	if pt.MandatoryMet.Succ > 0 && pt.Value.Mean() > 1 {
		t.Errorf("value mean %v exceeds 1", pt.Value.Mean())
	}
	if pt.Level.Mean() > 0 && pt.Escalations == 0 {
		t.Errorf("level mean %v with no escalations", pt.Level.Mean())
	}
}

func TestDegradeRunConfigErrors(t *testing.T) {
	cfg := smallDegradeConfig(slicing.PURE(), 0.3, degrade.ShedLowestValue)
	cfg.Intensities = nil
	if _, err := DegradeRun(cfg); err == nil {
		t.Error("empty intensity ramp accepted")
	}
	cfg.Intensities = []float64{0.5, 0.2}
	if _, err := DegradeRun(cfg); err == nil {
		t.Error("descending intensity ramp accepted")
	}
}

// The curve must be byte-identical regardless of worker count: the
// index-ordered fold erases scheduling nondeterminism.
func TestDegradeRunWorkerInvariance(t *testing.T) {
	cfg := smallDegradeConfig(slicing.AdaptG(), 0.5, degrade.ProportionalBudget)
	cfg.NumGraphs = 10
	cfg.Intensities = []float64{0, 1}
	cfg.Workers = 1
	a, err := DegradeRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 7
	b, err := DegradeRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("curve depends on worker count")
	}
}
