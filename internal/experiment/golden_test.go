package experiment

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/degrade"
	"repro/internal/gen"
	"repro/internal/robust"
	"repro/internal/slicing"
	"repro/internal/stats"
	"repro/internal/wcet"
)

// The golden files pin the exact numeric output of the study entry
// points for fixed seeds, so refactors of the planning path (the
// estimate → slice → dispatch sequence now lives in internal/pipeline)
// are provably behavior-preserving: any drift in any aggregate of any
// study shows up as a byte diff. Regenerate with
//
//	go test ./internal/experiment -run TestGolden -update
//
// only when an intentional behavior change is being made.
var update = flag.Bool("update", false, "rewrite the golden study tables")

const goldenSeed = 424242

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("output drifted from %s:\n--- want\n%s--- got\n%s", path, want, got)
	}
}

// fr renders a Running accumulator with full float64 round-trip
// precision, so any numeric drift — not just large ones — breaks the
// golden comparison.
func fr(r stats.Running) string {
	return fmt.Sprintf("n=%d mean=%g min=%g max=%g", r.N(), r.Mean(), r.Min(), r.Max())
}

func TestGoldenRun(t *testing.T) {
	var sb strings.Builder
	for _, olr := range []float64{0.45, 0.8} { // tight deadlines exercise the failure paths
		for _, metric := range slicing.Metrics() {
			for _, schd := range []Scheduler{TimeDriven, Planner} {
				gcfg := gen.Default(3)
				gcfg.OLR = olr
				pt := Run(Config{
					Gen: gcfg, Metric: metric, Params: slicing.CalibratedParams(),
					WCET: wcet.AVG, NumGraphs: 24, MasterSeed: goldenSeed, Scheduler: schd,
					Classify: true,
				})
				fmt.Fprintf(&sb, "olr=%g %s %v succ=%d/%d overc=%d infeas=%d errs=%d late{%s} lax{%s}\n",
					olr, metric.Name(), schd, pt.Success.Succ, pt.Success.Total, pt.OverConstrained,
					pt.ProvablyInfeasible, pt.Errors, fr(pt.Lateness), fr(pt.MinLaxity))
			}
		}
	}
	goldenCompare(t, "golden_run.txt", sb.String())
}

func TestGoldenFaultRun(t *testing.T) {
	var sb strings.Builder
	for _, metric := range []slicing.Metric{slicing.PURE(), slicing.AdaptL()} {
		for _, intensity := range []float64{0, 0.5, 1} {
			for _, reclaim := range []bool{false, true} {
				pt := FaultRun(FaultConfig{
					Gen: gen.Default(3), Metric: metric, Params: slicing.CalibratedParams(),
					WCET: wcet.AVG, NumGraphs: 16, MasterSeed: goldenSeed,
					Intensity: intensity, Reclaim: reclaim,
				})
				fmt.Fprintf(&sb, "%s i=%g reclaim=%v succ=%d/%d miss{%s} ete{%s} meanlate{%s} maxlate{%s} first{%s} ov=%d ab=%d mig=%d rec=%d errs=%d\n",
					metric.Name(), intensity, reclaim, pt.Success.Succ, pt.Success.Total,
					fr(pt.MissRatio), fr(pt.ETEMissRatio), fr(pt.MeanLateness), fr(pt.MaxLateness),
					fr(pt.FirstMiss), pt.Overruns, pt.Aborted, pt.Migrations, pt.Reclamations, pt.Errors)
			}
		}
	}
	goldenCompare(t, "golden_faultrun.txt", sb.String())
}

func TestGoldenMarginRun(t *testing.T) {
	var sb strings.Builder
	for _, kind := range []wcet.ErrorKind{wcet.ErrMultiplicative, wcet.ErrClassBias} {
		for _, level := range []float64{0, 0.5} {
			pt := MarginRun(MarginConfig{
				Gen: gen.Default(3), Metric: slicing.AdaptL(), Params: slicing.CalibratedParams(),
				WCET: wcet.AVG, NumGraphs: 16, MasterSeed: goldenSeed,
				Model:   wcet.ErrorModel{Kind: kind, Level: level},
				Reslice: robust.ResliceOptions{MaxRetries: 3},
			})
			fmt.Fprintf(&sb, "%v lvl=%g succ=%d/%d miss{%s} ete{%s} rec=%d/%d iters{%s} ov=%d rc=%d errs=%d\n",
				kind, level, pt.Success.Succ, pt.Success.Total, fr(pt.MissRatio), fr(pt.ETEMissRatio),
				pt.Recovered.Succ, pt.Recovered.Total, fr(pt.ResliceIters), pt.Overruns,
				pt.Reclamations, pt.Errors)
		}
	}
	for _, metric := range []slicing.Metric{slicing.PURE(), slicing.AdaptL()} {
		pt := BreakdownRun(MarginConfig{
			Gen: gen.Default(3), Metric: metric, Params: slicing.CalibratedParams(),
			WCET: wcet.AVG, NumGraphs: 16, MasterSeed: goldenSeed,
		})
		fmt.Fprintf(&sb, "breakdown %s factor{%s} unbounded=%d nominal=%d/%d errs=%d\n",
			metric.Name(), fr(pt.Factor), pt.Unbounded, pt.Nominal.Succ, pt.Nominal.Total, pt.Errors)
	}
	goldenCompare(t, "golden_marginrun.txt", sb.String())
}

func TestGoldenDegradeRun(t *testing.T) {
	gcfg := gen.Default(3)
	gcfg.OptionalProb = 0.5
	var sb strings.Builder
	for _, pol := range []degrade.Policy{degrade.ShedLowestValue, degrade.ProportionalBudget} {
		curve, err := DegradeRun(DegradeConfig{
			Gen: gcfg, Metric: slicing.AdaptL(), Params: slicing.CalibratedParams(),
			WCET: wcet.AVG, NumGraphs: 10, MasterSeed: goldenSeed,
			Intensities: []float64{0, 0.5, 1},
			Degrade:     degrade.Options{Policy: pol},
			Reclaim:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for p, intensity := range curve.Intensities {
			pt := curve.Points[p]
			fmt.Fprintf(&sb, "%v i=%g value{%s} mand=%d/%d level{%s} esc=%d sat=%d rej=%d moderr=%d fault.succ=%d/%d fault.miss{%s} errs=%d\n",
				pol, intensity, fr(pt.Value), pt.MandatoryMet.Succ, pt.MandatoryMet.Total,
				fr(pt.Level), pt.Escalations, pt.Saturated, pt.Rejected, pt.ModeErrors,
				pt.Fault.Success.Succ, pt.Fault.Success.Total, fr(pt.Fault.MissRatio), pt.Errors)
		}
	}
	goldenCompare(t, "golden_degraderun.txt", sb.String())
}
