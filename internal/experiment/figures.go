package experiment

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

// Options configures a whole figure regeneration.
type Options struct {
	// NumGraphs is the per-point sample size (paper: 1024).
	NumGraphs int
	// MasterSeed seeds all workloads.
	MasterSeed int64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Params overrides the adaptive parameters; zero value means the
	// paper's defaults.
	Params slicing.Params
}

// DefaultOLR is the deadline-tightness operating point of the
// reproduction. The paper runs its default scenario at OLR = 0.8; in
// this implementation the same qualitative regime — failures driven by
// deadline-distribution quality rather than by raw capacity, with the
// paper's metric ordering ADAPT-L > ADAPT-G > NORM > PURE — sits at
// OLR ≈ 0.55 (the pipeline here loses less capacity to dispatch
// artifacts, so deadlines must be proportionally tighter to exercise
// the metrics; see EXPERIMENTS.md).
const DefaultOLR = 0.55

// DefaultOptions uses the paper's 1024 graphs per point and the
// calibrated adaptivity factors.
func DefaultOptions() Options {
	return Options{NumGraphs: 1024, MasterSeed: 19990412, Params: slicing.CalibratedParams()}
}

func (o Options) params() slicing.Params {
	if o.Params == (slicing.Params{}) {
		return slicing.CalibratedParams()
	}
	return o.Params
}

// point evaluates one (generator, metric, strategy) cell.
func (o Options) point(g gen.Config, m slicing.Metric, s wcet.Strategy) Point {
	return Run(Config{
		Gen:        g,
		Metric:     m,
		Params:     o.params(),
		WCET:       s,
		NumGraphs:  o.NumGraphs,
		MasterSeed: o.MasterSeed,
		Workers:    o.Workers,
	})
}

// Fig2 regenerates Figure 2: success ratio as a function of system size
// (m = 2..8) for PURE, NORM, ADAPT-G, and ADAPT-L at ETD = 25 %,
// OLR = DefaultOLR, WCET-AVG.
func Fig2(o Options) Table {
	t := Table{
		Title:  "Figure 2: success ratio vs. system size (ETD=25%, OLR=0.55)",
		XLabel: "processors",
	}
	sizes := []int{2, 3, 4, 5, 6, 7, 8}
	for _, m := range sizes {
		t.XValues = append(t.XValues, fmt.Sprintf("%d", m))
	}
	for _, metric := range slicing.Metrics() {
		s := Series{Name: metric.Name()}
		for _, m := range sizes {
			g := gen.Default(m)
			g.OLR = DefaultOLR
			s.Points = append(s.Points, o.point(g, metric, wcet.AVG))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// OLRSweep is the deadline-tightness axis used by Figures 3 and 5. The
// paper plots "tight" to "loose"; in this implementation's regime the
// transition from near-0 to near-100 % success at m = 3 spans the
// overall laxity ratios 0.40–0.70 (see DefaultOLR).
var OLRSweep = []float64{0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70}

// Fig3 regenerates Figure 3: success ratio as a function of OLR for the
// four metrics on a three-processor system (ETD = 25 %, WCET-AVG).
func Fig3(o Options) Table {
	t := Table{
		Title:  "Figure 3: success ratio vs. OLR (m=3, ETD=25%)",
		XLabel: "OLR",
	}
	for _, olr := range OLRSweep {
		t.XValues = append(t.XValues, fmt.Sprintf("%.2f", olr))
	}
	for _, metric := range slicing.Metrics() {
		s := Series{Name: metric.Name()}
		for _, olr := range OLRSweep {
			g := gen.Default(3)
			g.OLR = olr
			s.Points = append(s.Points, o.point(g, metric, wcet.AVG))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// ETDSweep is the execution-time-distribution axis of Figures 4 and 6:
// 0 % to 100 % in steps of 25 % (§6.3).
var ETDSweep = []float64{0, 0.25, 0.5, 0.75, 1.0}

// Fig4 regenerates Figure 4: success ratio as a function of ETD for the
// four metrics on a three-processor system (OLR = DefaultOLR, WCET-AVG).
func Fig4(o Options) Table {
	t := Table{
		Title:  "Figure 4: success ratio vs. ETD (m=3, OLR=0.55)",
		XLabel: "ETD",
	}
	for _, etd := range ETDSweep {
		t.XValues = append(t.XValues, fmt.Sprintf("%.0f%%", etd*100))
	}
	for _, metric := range slicing.Metrics() {
		s := Series{Name: metric.Name()}
		for _, etd := range ETDSweep {
			g := gen.Default(3)
			g.OLR = DefaultOLR
			g.ETD = etd
			s.Points = append(s.Points, o.point(g, metric, wcet.AVG))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// Fig5 regenerates Figure 5: success ratio for ADAPT-L as a function of
// OLR under the three WCET estimation strategies (m = 3, ETD = 25 %).
func Fig5(o Options) Table {
	t := Table{
		Title:  "Figure 5: ADAPT-L success ratio vs. OLR per WCET strategy (m=3, ETD=25%)",
		XLabel: "OLR",
	}
	for _, olr := range OLRSweep {
		t.XValues = append(t.XValues, fmt.Sprintf("%.2f", olr))
	}
	metric := slicing.AdaptL()
	for _, strat := range wcet.Strategies {
		s := Series{Name: strat.String()}
		for _, olr := range OLRSweep {
			g := gen.Default(3)
			g.OLR = olr
			s.Points = append(s.Points, o.point(g, metric, strat))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// Fig6 regenerates Figure 6: success ratio for ADAPT-L as a function of
// ETD under the three WCET estimation strategies (m = 3, OLR = DefaultOLR).
func Fig6(o Options) Table {
	t := Table{
		Title:  "Figure 6: ADAPT-L success ratio vs. ETD per WCET strategy (m=3, OLR=0.55)",
		XLabel: "ETD",
	}
	for _, etd := range ETDSweep {
		t.XValues = append(t.XValues, fmt.Sprintf("%.0f%%", etd*100))
	}
	metric := slicing.AdaptL()
	for _, strat := range wcet.Strategies {
		s := Series{Name: strat.String()}
		for _, etd := range ETDSweep {
			g := gen.Default(3)
			g.OLR = DefaultOLR
			g.ETD = etd
			s.Points = append(s.Points, o.point(g, metric, strat))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// Figures maps figure numbers to their regenerators.
var Figures = map[int]func(Options) Table{
	2: Fig2, 3: Fig3, 4: Fig4, 5: Fig5, 6: Fig6,
}
