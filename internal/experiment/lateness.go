package experiment

import (
	"fmt"
	"strings"

	"repro/internal/gen"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

// LatenessStudy reproduces the evaluation style of the paper's
// predecessor [12] and of §4.2's secondary quality measure: when E-T-E
// deadlines are loose enough that nearly every workload schedules, the
// metrics are compared on the *maximum task lateness* instead — how far
// from infeasibility the schedule stays (more negative is better, i.e.
// more margin for additional background workload).
//
// The study sweeps OLR over the loose region for a three-processor
// system and reports the mean max lateness of each metric.
func LatenessStudy(o Options) Table {
	t := Table{
		Title:  "Lateness study: mean max lateness vs. OLR (m=3, ETD=25%) — §4.2 secondary measure",
		XLabel: "OLR",
	}
	sweep := []float64{0.70, 0.80, 0.90, 1.00}
	for _, olr := range sweep {
		t.XValues = append(t.XValues, fmt.Sprintf("%.2f", olr))
	}
	for _, metric := range slicing.Metrics() {
		s := Series{Name: metric.Name()}
		for _, olr := range sweep {
			g := gen.Default(3)
			g.OLR = olr
			s.Points = append(s.Points, o.point(g, metric, wcet.AVG))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// FormatLatenessTable renders a table on its Lateness statistic (mean
// max lateness in time units; negative is margin) instead of the
// success ratio.
func FormatLatenessTable(t Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	nameW := len(t.XLabel)
	for _, s := range t.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	const colW = 9
	fmt.Fprintf(&b, "%-*s", nameW+2, t.XLabel)
	for _, x := range t.XValues {
		fmt.Fprintf(&b, "%*s", colW, x)
	}
	b.WriteByte('\n')
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%-*s", nameW+2, s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%*.1f", colW, p.Lateness.Mean())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
