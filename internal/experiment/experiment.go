// Package experiment is the evaluation harness that regenerates the
// paper's figures: it fans workloads out over a worker pool, runs the
// slice→schedule pipeline on each, and aggregates success ratios and the
// secondary quality measures (§4.2).
//
// The harness plays the role of the GAST framework [19] the paper used:
// deterministic workload generation, a parameter sweep per figure, and
// per-cell aggregation. Each data point evaluates Config.NumGraphs
// independent workloads; workload i of a point derives its seed from the
// master seed with gen.SubSeed, so every metric and strategy sees the
// *same* workload sample — paired comparisons, as in the paper.
package experiment

import (
	"context"
	"fmt"

	"repro/internal/deadline"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/slicing"
	"repro/internal/stats"
	"repro/internal/wcet"
)

// Config describes one data point: a workload distribution and a
// pipeline configuration to evaluate on it.
type Config struct {
	// Gen is the workload generator configuration (Gen.Seed is ignored;
	// per-graph seeds derive from MasterSeed).
	Gen gen.Config
	// Metric is the critical-path metric under evaluation.
	Metric slicing.Metric
	// Params are the adaptive-metric parameters (§6 defaults normally).
	Params slicing.Params
	// WCET is the estimation strategy (§5.3).
	WCET wcet.Strategy
	// NumGraphs is the sample size per point (paper: 1024).
	NumGraphs int
	// MasterSeed makes the whole experiment reproducible.
	MasterSeed int64
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Scheduler selects the baseline scheduler variant.
	Scheduler Scheduler
	// Classify additionally runs the feas necessary-condition check on
	// every assignment, filling Point.ProvablyInfeasible. It roughly
	// doubles the per-workload cost (O(n²) boundary intervals), so it is
	// off by default.
	Classify bool
	// Pipe optionally supplies a shared plan cache and instrumentation
	// recorder for the planning pipeline; the zero value plans uncached
	// and unrecorded.
	Pipe pipeline.Shared
	// Release selects the release model the planned system is judged
	// under. The zero value (ReleaseSingle) keeps the classic one-shot
	// evaluation. With ReleaseSporadic, each workload's plan is
	// additionally replayed over a seeded sporadic release sequence
	// (sim.ReplayReleases) and counts as a success only when every
	// release of every task meets its shifted deadline; lateness and
	// laxity still report the base plan, so the secondary measures stay
	// comparable across release models. The release sequence of workload
	// i derives from MasterSeed, so paired comparison across metrics is
	// preserved.
	Release gen.Release
}

// builder assembles the pipeline configuration this point plans with.
func (cfg Config) builder() *pipeline.Builder {
	b := &pipeline.Builder{
		Estimator:   pipeline.StrategyEstimator(cfg.WCET),
		Distributor: deadline.Sliced{Metric: cfg.Metric, Params: cfg.Params},
		Dispatcher:  cfg.Scheduler.dispatcher(),
		Cache:       cfg.Pipe.Cache,
		Recorder:    cfg.Pipe.Recorder,
	}
	if cfg.Classify {
		b.Verifier = pipeline.FeasVerifier()
	}
	return b
}

// Scheduler selects how the assigned windows are scheduled.
type Scheduler int

const (
	// TimeDriven uses sched.Dispatch, the paper's non-preemptive
	// time-driven run-time dispatcher (the default).
	TimeDriven Scheduler = iota
	// Planner uses sched.EDF, the offline greedy list scheduler with
	// per-processor reservation.
	Planner
)

// String implements fmt.Stringer.
func (s Scheduler) String() string {
	switch s {
	case TimeDriven:
		return "time-driven"
	case Planner:
		return "planner"
	}
	return fmt.Sprintf("Scheduler(%d)", int(s))
}

// dispatcher returns the pipeline dispatcher hook of the variant.
func (s Scheduler) dispatcher() pipeline.Dispatcher {
	if s == Planner {
		return pipeline.Planner()
	}
	return pipeline.TimeDriven()
}

// Point aggregates one data point.
type Point struct {
	// Success counts workloads whose schedule met every assigned
	// deadline — the paper's success ratio.
	Success stats.Ratio
	// OverConstrained counts workloads where slicing produced an empty
	// window (guaranteed failures).
	OverConstrained int
	// ProvablyInfeasible counts workloads whose assignment fails a
	// necessary feasibility condition (filled only when Config.Classify
	// is set); these failures are the metric's fault, not the
	// scheduler's.
	ProvablyInfeasible int
	// Lateness accumulates the maximum task lateness of each schedule
	// (§4.2's secondary measure; negative values are margin).
	Lateness stats.Running
	// MinLaxity accumulates the minimum task laxity of each assignment.
	MinLaxity stats.Running
	// Errors counts pipeline failures (generator or slicer errors);
	// always 0 in a healthy configuration.
	Errors int
}

// Run evaluates one data point. Workloads fan out over the
// panic-isolated worker pool and their outcomes fold in index order, so
// the point is byte-identical for every worker count; a workload that
// panics counts as an error for that workload only.
func Run(cfg Config) Point {
	outs, errs, _ := runIndexed(cfg.Workers, cfg.NumGraphs, 0, func(ctx context.Context, idx int) (any, error) {
		return runOne(ctx, cfg, idx)
	})
	var point Point
	for i := range outs {
		if errs[i] != nil {
			point.Errors++
			continue
		}
		o := outs[i].(runOutcome)
		point.Success.Add(o.feasible)
		if o.overConstrained {
			point.OverConstrained++
		}
		if o.provablyInfeasible {
			point.ProvablyInfeasible++
		}
		point.Lateness.Add(o.maxLateness)
		point.MinLaxity.Add(o.minLaxity)
	}
	return point
}

// runOutcome is the per-workload result Run folds.
type runOutcome struct {
	feasible           bool
	overConstrained    bool
	provablyInfeasible bool
	maxLateness        float64
	minLaxity          float64
}

// runOne generates workload idx and runs the planning pipeline on it.
func runOne(ctx context.Context, cfg Config, idx int) (runOutcome, error) {
	var o runOutcome
	gcfg := cfg.Gen
	gcfg.Seed = gen.SubSeed(cfg.MasterSeed, idx)
	w, err := gen.Generate(gcfg)
	if err != nil {
		return o, err
	}
	plan, err := cfg.builder().BuildContext(ctx, pipeline.Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		return o, err
	}
	o.feasible = plan.Verdict.Feasible
	o.overConstrained = plan.Verdict.OverConstrained
	o.provablyInfeasible = plan.Verdict.ProvablyInfeasible
	o.maxLateness = float64(plan.Verdict.MaxLateness)
	o.minLaxity = float64(plan.Verdict.MinLaxity)
	if cfg.Release.Mode == gen.ReleaseSporadic && o.feasible {
		// A plan that survives one release must also survive the
		// recurring workload: replay the seeded release sequence and
		// demote the success when any release misses. The base verdict's
		// lateness/laxity are kept — they grade the plan, not the draw.
		rep, _, _, err := sim.ReplayReleases(w.Graph, w.Platform, plan.Assignment, cfg.Release, gcfg.Seed, sim.Options{})
		if err != nil {
			return o, err
		}
		o.feasible = rep.Valid && len(rep.DeadlineMisses) == 0
	}
	return o, nil
}

// Series is one labelled line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Table is the harness rendering of one paper figure: a sweep on the X
// axis with one series per configuration.
type Table struct {
	Title   string
	XLabel  string
	XValues []string
	Series  []Series
}

// SuccessRow returns the success ratios of one series as floats.
func (t *Table) SuccessRow(series int) []float64 {
	out := make([]float64, len(t.Series[series].Points))
	for i, p := range t.Series[series].Points {
		out[i] = p.Success.Value()
	}
	return out
}

// SeriesByName returns the index of the named series, or an error.
func (t *Table) SeriesByName(name string) (int, error) {
	for i, s := range t.Series {
		if s.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("experiment: no series %q in table %q", name, t.Title)
}
