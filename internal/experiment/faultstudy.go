package experiment

import (
	"runtime"
	"sync"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/slicing"
	"repro/internal/stats"
	"repro/internal/wcet"
)

// FaultConfig describes one robustness data point: a workload
// distribution, a deadline-distribution metric, and a fault intensity to
// execute the resulting schedules under.
type FaultConfig struct {
	// Gen is the workload generator configuration (Gen.Seed is ignored;
	// per-graph seeds derive from MasterSeed).
	Gen gen.Config
	// Metric is the critical-path metric under evaluation.
	Metric slicing.Metric
	// Params are the adaptive-metric parameters.
	Params slicing.Params
	// WCET is the estimation strategy.
	WCET wcet.Strategy
	// NumGraphs is the sample size per point.
	NumGraphs int
	// MasterSeed makes the whole study reproducible. Workload idx draws
	// its graph from SubSeed(MasterSeed, idx) and its fault trace from
	// SubSeed(MasterSeed+1, idx) — the trace seed does not depend on the
	// metric, so every metric faces the identical fault scenario (paired
	// comparison, as everywhere in the harness).
	MasterSeed int64
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Intensity in [0, 1] scales the fault plan (faults.Scaled); 0 is
	// the nominal, fault-free execution.
	Intensity float64
	// Reclaim enables the online slack-reclamation recovery policy.
	Reclaim bool
}

// FaultPoint aggregates the graceful-degradation measures of one data
// point.
type FaultPoint struct {
	// Success counts runs that met every originally assigned deadline
	// despite the faults. At Intensity 0 it equals the nominal
	// time-driven success ratio for the same (metric, seed) point.
	Success stats.Ratio
	// MissRatio accumulates the per-run task deadline-miss ratio.
	MissRatio stats.Running
	// ETEMissRatio accumulates the per-run end-to-end (output-task) miss
	// ratio — the failures the application actually observes.
	ETEMissRatio stats.Running
	// MeanLateness accumulates each run's mean positive lateness.
	MeanLateness stats.Running
	// MaxLateness accumulates each run's maximum lateness.
	MaxLateness stats.Running
	// FirstMiss accumulates the first-miss time over runs that missed —
	// how long the system runs before degrading.
	FirstMiss stats.Running
	// Overruns, Aborted, Migrations and Reclamations total the fault and
	// recovery event counts over the sample.
	Overruns, Aborted, Migrations, Reclamations int
	// Errors counts pipeline failures; always 0 in a healthy
	// configuration.
	Errors int
}

// FaultRun evaluates one robustness data point over the worker pool.
func FaultRun(cfg FaultConfig) FaultPoint {
	var point FaultPoint
	forEachWorkload(cfg.Workers, cfg.NumGraphs, func() any { return &FaultPoint{} },
		func(idx int, acc any) { faultRunOne(cfg, idx, acc.(*FaultPoint)) },
		func(acc any) {
			local := acc.(*FaultPoint)
			point.Success.Succ += local.Success.Succ
			point.Success.Total += local.Success.Total
			point.MissRatio.Merge(local.MissRatio)
			point.ETEMissRatio.Merge(local.ETEMissRatio)
			point.MeanLateness.Merge(local.MeanLateness)
			point.MaxLateness.Merge(local.MaxLateness)
			point.FirstMiss.Merge(local.FirstMiss)
			point.Overruns += local.Overruns
			point.Aborted += local.Aborted
			point.Migrations += local.Migrations
			point.Reclamations += local.Reclamations
			point.Errors += local.Errors
		})
	return point
}

// faultRunOne executes workload idx under its fault trace and folds the
// degradation into p.
func faultRunOne(cfg FaultConfig, idx int, p *FaultPoint) {
	gcfg := cfg.Gen
	gcfg.Seed = gen.SubSeed(cfg.MasterSeed, idx)
	w, err := gen.Generate(gcfg)
	if err != nil {
		p.Errors++
		return
	}
	est, err := wcet.Estimates(w.Graph, w.Platform, cfg.WCET)
	if err != nil {
		p.Errors++
		return
	}
	asg, err := slicing.Distribute(w.Graph, est, w.Platform.M(), cfg.Metric, cfg.Params)
	if err != nil {
		p.Errors++
		return
	}
	s, err := sched.Dispatch(w.Graph, w.Platform, asg)
	if err != nil {
		p.Errors++
		return
	}
	// The failure-instant horizon is the workload's end-to-end deadline:
	// metric-independent, so identical across the compared series.
	var span rtime.Time
	for _, o := range w.Graph.Outputs() {
		if d := w.Graph.Task(o).ETEDeadline; d > span {
			span = d
		}
	}
	plan := faults.Scaled(cfg.Intensity, gen.SubSeed(cfg.MasterSeed+1, idx))
	trace, err := plan.Materialize(w.Graph, w.Platform, span)
	if err != nil {
		p.Errors++
		return
	}
	ir, err := sim.Inject(w.Graph, w.Platform, asg, s, sim.Options{Faults: trace, Reclaim: cfg.Reclaim})
	if err != nil {
		p.Errors++
		return
	}
	d := ir.Degradation
	p.Success.Add(d.Misses == 0)
	p.MissRatio.Add(d.MissRatio())
	if outs := len(w.Graph.Outputs()); outs > 0 {
		p.ETEMissRatio.Add(float64(d.ETEMisses) / float64(outs))
	}
	p.MeanLateness.Add(d.MeanLateness)
	p.MaxLateness.Add(float64(d.MaxLateness))
	if d.FirstMiss.IsSet() {
		p.FirstMiss.Add(float64(d.FirstMiss))
	}
	p.Overruns += d.Overruns
	p.Aborted += d.Aborted
	p.Migrations += d.Migrations
	p.Reclamations += d.Reclamations
}

// forEachWorkload fans workload indices over a worker pool; each worker
// folds into its own accumulator (newAcc) and the accumulators are
// merged under a lock (merge). It mirrors Run's pool so the two studies
// schedule identically.
func forEachWorkload(workers, numGraphs int, newAcc func() any,
	work func(idx int, acc any), merge func(acc any)) {

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numGraphs {
		workers = numGraphs
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		indices = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			acc := newAcc()
			for idx := range indices {
				work(idx, acc)
			}
			mu.Lock()
			merge(acc)
			mu.Unlock()
		}()
	}
	for i := 0; i < numGraphs; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
}
