package experiment

import (
	"context"

	"repro/internal/deadline"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/rtime"
	"repro/internal/sim"
	"repro/internal/slicing"
	"repro/internal/stats"
	"repro/internal/wcet"
)

// FaultConfig describes one robustness data point: a workload
// distribution, a deadline-distribution metric, and a fault intensity to
// execute the resulting schedules under.
type FaultConfig struct {
	// Gen is the workload generator configuration (Gen.Seed is ignored;
	// per-graph seeds derive from MasterSeed).
	Gen gen.Config
	// Metric is the critical-path metric under evaluation.
	Metric slicing.Metric
	// Params are the adaptive-metric parameters.
	Params slicing.Params
	// WCET is the estimation strategy.
	WCET wcet.Strategy
	// NumGraphs is the sample size per point.
	NumGraphs int
	// MasterSeed makes the whole study reproducible. Workload idx draws
	// its graph from SubSeed(MasterSeed, idx) and its fault trace from
	// SubSeed(MasterSeed+1, idx) — the trace seed does not depend on the
	// metric, so every metric faces the identical fault scenario (paired
	// comparison, as everywhere in the harness).
	MasterSeed int64
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Intensity in [0, 1] scales the fault plan (faults.Scaled); 0 is
	// the nominal, fault-free execution.
	Intensity float64
	// Reclaim enables the online slack-reclamation recovery policy.
	Reclaim bool
	// Pipe optionally supplies a shared plan cache and instrumentation
	// recorder for the planning pipeline.
	Pipe pipeline.Shared
	// Release selects the release model the faulted executions run
	// under. The zero value (ReleaseSingle) injects into one release of
	// the plan, as before. With ReleaseSporadic, the plan is expanded
	// over a seeded sporadic release sequence (sim.ExpandSystem) and the
	// fault plan is materialized over the whole released horizon, so
	// overruns and processor failures can land in any release — the
	// graceful-degradation measures then grade the recurring workload.
	Release gen.Release
}

// builder assembles the pipeline configuration this point plans with
// (faults are injected into the nominal time-driven plan).
func (cfg FaultConfig) builder() *pipeline.Builder {
	return &pipeline.Builder{
		Estimator:   pipeline.StrategyEstimator(cfg.WCET),
		Distributor: deadline.Sliced{Metric: cfg.Metric, Params: cfg.Params},
		Cache:       cfg.Pipe.Cache,
		Recorder:    cfg.Pipe.Recorder,
	}
}

// FaultPoint aggregates the graceful-degradation measures of one data
// point.
type FaultPoint struct {
	// Success counts runs that met every originally assigned deadline
	// despite the faults. At Intensity 0 it equals the nominal
	// time-driven success ratio for the same (metric, seed) point.
	Success stats.Ratio
	// MissRatio accumulates the per-run task deadline-miss ratio.
	MissRatio stats.Running
	// ETEMissRatio accumulates the per-run end-to-end (output-task) miss
	// ratio — the failures the application actually observes.
	ETEMissRatio stats.Running
	// MeanLateness accumulates each run's mean positive lateness.
	MeanLateness stats.Running
	// MaxLateness accumulates each run's maximum lateness.
	MaxLateness stats.Running
	// FirstMiss accumulates the first-miss time over runs that missed —
	// how long the system runs before degrading.
	FirstMiss stats.Running
	// Overruns, Aborted, Migrations and Reclamations total the fault and
	// recovery event counts over the sample.
	Overruns, Aborted, Migrations, Reclamations int
	// Errors counts pipeline failures; always 0 in a healthy
	// configuration.
	Errors int
}

// FaultRun evaluates one robustness data point over the panic-isolated
// worker pool; outcomes fold in index order, so the point is
// byte-identical for every worker count.
func FaultRun(cfg FaultConfig) FaultPoint {
	outs, errs, _ := runIndexed(cfg.Workers, cfg.NumGraphs, 0, func(ctx context.Context, idx int) (any, error) {
		return faultRunOne(ctx, cfg, idx)
	})
	var point FaultPoint
	for i := range outs {
		if errs[i] != nil {
			point.Errors++
			continue
		}
		point.fold(outs[i].(faultOutcome))
	}
	return point
}

// fold accumulates one workload outcome into the point. DegradeRun
// reuses it so its per-intensity baseline points stay byte-identical to
// FaultRun's.
func (point *FaultPoint) fold(o faultOutcome) {
	d := o.deg
	point.Success.Add(d.Misses == 0)
	point.MissRatio.Add(d.MissRatio())
	if o.outputs > 0 {
		point.ETEMissRatio.Add(float64(d.ETEMisses) / float64(o.outputs))
	}
	point.MeanLateness.Add(d.MeanLateness)
	point.MaxLateness.Add(float64(d.MaxLateness))
	if d.FirstMiss.IsSet() {
		point.FirstMiss.Add(float64(d.FirstMiss))
	}
	point.Overruns += d.Overruns
	point.Aborted += d.Aborted
	point.Migrations += d.Migrations
	point.Reclamations += d.Reclamations
}

// faultOutcome is the per-workload result FaultRun folds.
type faultOutcome struct {
	deg     sim.Degradation
	outputs int
}

// faultRunOne executes workload idx under its fault trace.
func faultRunOne(ctx context.Context, cfg FaultConfig, idx int) (faultOutcome, error) {
	var o faultOutcome
	gcfg := cfg.Gen
	gcfg.Seed = gen.SubSeed(cfg.MasterSeed, idx)
	w, err := gen.Generate(gcfg)
	if err != nil {
		return o, err
	}
	plan, err := cfg.builder().BuildContext(ctx, pipeline.Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		return o, err
	}
	graph, asg, sched := w.Graph, plan.Assignment, plan.Schedule
	if cfg.Release.Mode == gen.ReleaseSporadic {
		// Recurring workload: the faulted execution covers every release,
		// so faults are drawn over the expanded system and its horizon.
		graph, asg, sched, _, err = sim.ExpandSystem(w.Graph, w.Platform, plan.Assignment, cfg.Release, gcfg.Seed)
		if err != nil {
			return o, err
		}
	}
	// The failure-instant horizon is the workload's end-to-end deadline
	// (of the last release, under sporadic releases): metric-independent,
	// so identical across the compared series.
	var span rtime.Time
	for _, out := range graph.Outputs() {
		if d := graph.Task(out).ETEDeadline; d > span {
			span = d
		}
	}
	fplan := faults.Scaled(cfg.Intensity, gen.SubSeed(cfg.MasterSeed+1, idx))
	trace, err := fplan.Materialize(graph, w.Platform, span)
	if err != nil {
		return o, err
	}
	ir, err := sim.Inject(graph, w.Platform, asg, sched,
		sim.Options{Faults: trace, Reclaim: cfg.Reclaim})
	if err != nil {
		return o, err
	}
	o.deg = ir.Degradation
	o.outputs = len(graph.Outputs())
	return o, nil
}
