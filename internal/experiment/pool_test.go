package experiment

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestRunIndexedOrder checks that results land at their own index for
// every worker count.
func TestRunIndexedOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		outs, errs := runIndexed(workers, 20, 0, func(idx int) (any, error) {
			return idx * idx, nil
		})
		for i := range outs {
			if errs[i] != nil {
				t.Fatalf("workers=%d idx=%d: unexpected error %v", workers, i, errs[i])
			}
			if outs[i].(int) != i*i {
				t.Fatalf("workers=%d idx=%d: got %v, want %d", workers, i, outs[i], i*i)
			}
		}
	}
}

// TestRunIndexedPanicIsolation checks that a panicking workload fails
// only its own index: the process survives and every other workload
// completes normally.
func TestRunIndexedPanicIsolation(t *testing.T) {
	const bad = 5
	outs, errs := runIndexed(4, 10, 0, func(idx int) (any, error) {
		if idx == bad {
			panic("boom")
		}
		return idx, nil
	})
	for i := range outs {
		if i == bad {
			var pe *PanicError
			if !errors.As(errs[i], &pe) {
				t.Fatalf("idx %d: want PanicError, got %v", i, errs[i])
			}
			if pe.Idx != bad || pe.Value != "boom" || len(pe.Stack) == 0 {
				t.Fatalf("idx %d: malformed PanicError %+v", i, pe)
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("idx %d: healthy workload got error %v", i, errs[i])
		}
		if outs[i].(int) != i {
			t.Fatalf("idx %d: got %v", i, outs[i])
		}
	}
}

// TestRunIndexedError checks plain errors propagate per index.
func TestRunIndexedError(t *testing.T) {
	wantErr := fmt.Errorf("nope")
	_, errs := runIndexed(2, 4, 0, func(idx int) (any, error) {
		if idx == 2 {
			return nil, wantErr
		}
		return nil, nil
	})
	if !errors.Is(errs[2], wantErr) {
		t.Fatalf("idx 2: got %v", errs[2])
	}
	for _, i := range []int{0, 1, 3} {
		if errs[i] != nil {
			t.Fatalf("idx %d: got %v", i, errs[i])
		}
	}
}

// TestRunIndexedTimeout checks that a workload exceeding the budget is
// abandoned with a TimeoutError while fast workloads complete.
func TestRunIndexedTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	outs, errs := runIndexed(4, 6, 20*time.Millisecond, func(idx int) (any, error) {
		if idx == 3 {
			<-block
		}
		return idx, nil
	})
	var te *TimeoutError
	if !errors.As(errs[3], &te) {
		t.Fatalf("idx 3: want TimeoutError, got %v", errs[3])
	}
	if te.Idx != 3 {
		t.Fatalf("TimeoutError.Idx = %d", te.Idx)
	}
	for _, i := range []int{0, 1, 2, 4, 5} {
		if errs[i] != nil || outs[i].(int) != i {
			t.Fatalf("idx %d: out=%v err=%v", i, outs[i], errs[i])
		}
	}
}

// TestRunIndexedTimeoutPanic checks panics inside a timed workload are
// still converted, not lost in the extra goroutine.
func TestRunIndexedTimeoutPanic(t *testing.T) {
	_, errs := runIndexed(2, 2, time.Second, func(idx int) (any, error) {
		if idx == 1 {
			panic("timed boom")
		}
		return idx, nil
	})
	var pe *PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("want PanicError, got %v", errs[1])
	}
}
