package experiment

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunIndexedOrder checks that results land at their own index for
// every worker count.
func TestRunIndexedOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		outs, errs, st := runIndexed(workers, 20, 0, func(_ context.Context, idx int) (any, error) {
			return idx * idx, nil
		})
		if st != (PoolStats{}) {
			t.Fatalf("workers=%d: untimed run reported incidents %+v", workers, st)
		}
		for i := range outs {
			if errs[i] != nil {
				t.Fatalf("workers=%d idx=%d: unexpected error %v", workers, i, errs[i])
			}
			if outs[i].(int) != i*i {
				t.Fatalf("workers=%d idx=%d: got %v, want %d", workers, i, outs[i], i*i)
			}
		}
	}
}

// TestRunIndexedPanicIsolation checks that a panicking workload fails
// only its own index: the process survives and every other workload
// completes normally.
func TestRunIndexedPanicIsolation(t *testing.T) {
	const bad = 5
	outs, errs, _ := runIndexed(4, 10, 0, func(_ context.Context, idx int) (any, error) {
		if idx == bad {
			panic("boom")
		}
		return idx, nil
	})
	for i := range outs {
		if i == bad {
			var pe *PanicError
			if !errors.As(errs[i], &pe) {
				t.Fatalf("idx %d: want PanicError, got %v", i, errs[i])
			}
			if pe.Idx != bad || pe.Value != "boom" || len(pe.Stack) == 0 {
				t.Fatalf("idx %d: malformed PanicError %+v", i, pe)
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("idx %d: healthy workload got error %v", i, errs[i])
		}
		if outs[i].(int) != i {
			t.Fatalf("idx %d: got %v", i, outs[i])
		}
	}
}

// TestRunIndexedError checks plain errors propagate per index.
func TestRunIndexedError(t *testing.T) {
	wantErr := fmt.Errorf("nope")
	_, errs, _ := runIndexed(2, 4, 0, func(_ context.Context, idx int) (any, error) {
		if idx == 2 {
			return nil, wantErr
		}
		return nil, nil
	})
	if !errors.Is(errs[2], wantErr) {
		t.Fatalf("idx 2: got %v", errs[2])
	}
	for _, i := range []int{0, 1, 3} {
		if errs[i] != nil {
			t.Fatalf("idx %d: got %v", i, errs[i])
		}
	}
}

// TestRunIndexedTimeout checks that a workload exceeding the budget is
// abandoned with a TimeoutError while fast workloads complete.
func TestRunIndexedTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	outs, errs, st := runIndexed(4, 6, 20*time.Millisecond, func(_ context.Context, idx int) (any, error) {
		if idx == 3 {
			<-block
		}
		return idx, nil
	})
	if st.Timeouts != 1 {
		t.Fatalf("PoolStats.Timeouts = %d, want 1", st.Timeouts)
	}
	if st.Abandoned != 1 {
		t.Fatalf("PoolStats.Abandoned = %d, want 1 (body still blocked at drain)", st.Abandoned)
	}
	var te *TimeoutError
	if !errors.As(errs[3], &te) {
		t.Fatalf("idx 3: want TimeoutError, got %v", errs[3])
	}
	if te.Idx != 3 {
		t.Fatalf("TimeoutError.Idx = %d", te.Idx)
	}
	for _, i := range []int{0, 1, 2, 4, 5} {
		if errs[i] != nil || outs[i].(int) != i {
			t.Fatalf("idx %d: out=%v err=%v", i, outs[i], errs[i])
		}
	}
}

// TestRunIndexedTimeoutPanic checks panics inside a timed workload are
// still converted, not lost in the extra goroutine.
func TestRunIndexedTimeoutPanic(t *testing.T) {
	_, errs, _ := runIndexed(2, 2, time.Second, func(_ context.Context, idx int) (any, error) {
		if idx == 1 {
			panic("timed boom")
		}
		return idx, nil
	})
	var pe *PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("want PanicError, got %v", errs[1])
	}
}

// TestRunIndexedCancelPropagates checks that the per-workload context is
// canceled at the budget, so cooperative bodies can stop computing
// instead of running to completion as zombies.
func TestRunIndexedCancelPropagates(t *testing.T) {
	exited := make(chan error, 1)
	_, errs, st := runIndexed(2, 4, 20*time.Millisecond, func(ctx context.Context, idx int) (any, error) {
		if idx == 1 {
			<-ctx.Done()
			exited <- ctx.Err()
			return nil, ctx.Err()
		}
		return idx, nil
	})
	var te *TimeoutError
	if !errors.As(errs[1], &te) {
		t.Fatalf("idx 1: want TimeoutError, got %v", errs[1])
	}
	if st.Timeouts != 1 {
		t.Fatalf("PoolStats.Timeouts = %d, want 1", st.Timeouts)
	}
	select {
	case err := <-exited:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("body context ended with %v, want DeadlineExceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned body never observed cancellation")
	}
}

// TestRunIndexedAbandonmentBound checks the pool never runs more than
// 2×workers workload bodies at once, even when every body overruns its
// budget: abandoned goroutines hold slots until they return, so workers
// block instead of piling unbounded zombies onto the CPUs.
func TestRunIndexedAbandonmentBound(t *testing.T) {
	const workers = 2
	var live, peak atomic.Int64
	_, errs, st := runIndexed(workers, 12, 5*time.Millisecond, func(ctx context.Context, idx int) (any, error) {
		n := live.Add(1)
		defer live.Add(-1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		// Overrun: keep computing well past abandonment, like a stage
		// that ignores its context.
		<-ctx.Done()
		time.Sleep(30 * time.Millisecond)
		return idx, nil
	})
	if got := peak.Load(); got > 2*workers {
		t.Fatalf("peak live bodies = %d, want <= %d", got, 2*workers)
	}
	for i, err := range errs {
		var te *TimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("idx %d: want TimeoutError, got %v", i, err)
		}
	}
	if st.Timeouts != 12 {
		t.Fatalf("PoolStats.Timeouts = %d, want 12", st.Timeouts)
	}
}
