package experiment

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type cell struct {
	N int     `json:"n"`
	X float64 `json:"x"`
}

// TestJournalRoundTrip checks Record → crash → resume → Lookup.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, "cfg-v1", false)
	if err != nil {
		t.Fatal(err)
	}
	want := cell{N: 3, X: 0.6123456789012345}
	if err := j.Record("a/b", want); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, "cfg-v1", true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var got cell
	ok, err := j2.Lookup("a/b", &got)
	if err != nil || !ok {
		t.Fatalf("Lookup: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v (float must roundtrip exactly)", got, want)
	}
	if ok, _ := j2.Lookup("missing", &got); ok {
		t.Fatal("Lookup hit on a missing key")
	}
}

// TestJournalHeaderMismatch checks that resuming against a journal from
// a different configuration is refused.
func TestJournalHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, "cfg-v1", false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, "cfg-v2", true); !errors.Is(err, ErrJournalHeader) {
		t.Fatalf("want ErrJournalHeader, got %v", err)
	}
}

// TestJournalTornLine checks that a crash mid-write (torn trailing
// line) loses only the torn cell.
func TestJournalTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, "cfg", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("ok", cell{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: append half a JSON line with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","value":{"n":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, "cfg", true)
	if err != nil {
		t.Fatalf("torn journal should resume: %v", err)
	}
	defer j2.Close()
	var c cell
	if ok, _ := j2.Lookup("ok", &c); !ok || c.N != 1 {
		t.Fatalf("valid prefix lost: ok=%v c=%+v", ok, c)
	}
	if ok, _ := j2.Lookup("torn", &c); ok {
		t.Fatal("torn cell should be dropped")
	}
}

// TestJournalResumeMissingFile checks resume against a not-yet-created
// path starts fresh instead of failing.
func TestJournalResumeMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.jsonl")
	j, err := OpenJournal(path, "cfg", true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var c cell
	if ok, _ := j.Lookup("any", &c); ok {
		t.Fatal("fresh journal should be empty")
	}
}

// TestJournalNil checks the nil journal is a usable no-op.
func TestJournalNil(t *testing.T) {
	var j *Journal
	var c cell
	if ok, err := j.Lookup("k", &c); ok || err != nil {
		t.Fatalf("nil Lookup: ok=%v err=%v", ok, err)
	}
	if err := j.Record("k", c); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
