package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/gen"
	"repro/internal/optsched"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

// OptGap quantifies how much of the success-ratio shortfall is the
// *dispatcher's* fault versus the *deadline distribution's* fault. For
// each small random workload it distributes deadlines with the given
// metric and then asks three questions:
//
//  1. does the time-driven EDF dispatcher meet every window?
//  2. if not, does ANY non-preemptive schedule meet them (exact
//     branch-and-bound over active schedules)?
//  3. if not even that, the windows themselves are infeasible — the
//     metric, not the scheduler, lost the workload.
//
// The paper evaluates metrics only through the heuristic scheduler;
// this study separates the two error sources, which the NP-completeness
// framing of §1 leaves entangled.
type OptGapResult struct {
	Graphs int
	// DispatchOK counts workloads the heuristic dispatcher schedules.
	DispatchOK int
	// RescuedByExact counts workloads the dispatcher fails but an exact
	// scheduler proves feasible (dispatcher's fault).
	RescuedByExact int
	// WindowsInfeasible counts workloads where no non-preemptive
	// schedule meets the assigned windows (metric's fault).
	WindowsInfeasible int
	// Inconclusive counts exact searches that exhausted their node
	// budget.
	Inconclusive int
}

// String summarizes the result.
func (r OptGapResult) String() string {
	return fmt.Sprintf("dispatch %d/%d, rescued-by-exact %d, windows-infeasible %d, inconclusive %d",
		r.DispatchOK, r.Graphs, r.RescuedByExact, r.WindowsInfeasible, r.Inconclusive)
}

// OptGapConfig parameterizes the study.
type OptGapConfig struct {
	// Metric under test.
	Metric slicing.Metric
	// Params for the metric.
	Params slicing.Params
	// M is the system size.
	M int
	// OLR is the deadline tightness.
	OLR float64
	// Tasks bounds the graph size (small, for the exact search).
	MinTasks, MaxTasks int
	// NumGraphs is the sample size.
	NumGraphs int
	// MasterSeed drives the workloads.
	MasterSeed int64
	// NodeBudget caps each exact search.
	NodeBudget int
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// OptGap runs the study.
func OptGap(cfg OptGapConfig) OptGapResult {
	if cfg.NodeBudget <= 0 {
		cfg.NodeBudget = 2_000_000
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		res = OptGapResult{Graphs: cfg.NumGraphs}
		ch  = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range ch {
				var local OptGapResult
				optGapOne(cfg, idx, &local)
				mu.Lock()
				res.DispatchOK += local.DispatchOK
				res.RescuedByExact += local.RescuedByExact
				res.WindowsInfeasible += local.WindowsInfeasible
				res.Inconclusive += local.Inconclusive
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.NumGraphs; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return res
}

func optGapOne(cfg OptGapConfig, idx int, out *OptGapResult) {
	gcfg := gen.Default(cfg.M)
	gcfg.Seed = gen.SubSeed(cfg.MasterSeed, idx)
	gcfg.OLR = cfg.OLR
	gcfg.MinTasks, gcfg.MaxTasks = cfg.MinTasks, cfg.MaxTasks
	gcfg.MinDepth, gcfg.MaxDepth = 2, 4
	w, err := gen.Generate(gcfg)
	if err != nil {
		out.Inconclusive++
		return
	}
	est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		out.Inconclusive++
		return
	}
	asg, err := slicing.Distribute(w.Graph, est, cfg.M, cfg.Metric, cfg.Params)
	if err != nil {
		out.Inconclusive++
		return
	}
	d, err := sched.Dispatch(w.Graph, w.Platform, asg)
	if err != nil {
		out.Inconclusive++
		return
	}
	if d.Feasible {
		out.DispatchOK++
		return
	}
	exact, err := optsched.Schedule(w.Graph, w.Platform, asg,
		optsched.Options{NodeBudget: cfg.NodeBudget, StopAtFeasible: true})
	if err != nil {
		out.Inconclusive++
		return
	}
	switch {
	case exact.Schedule != nil && exact.Schedule.Feasible:
		out.RescuedByExact++
	case exact.Optimal:
		out.WindowsInfeasible++
	default:
		out.Inconclusive++
	}
}
