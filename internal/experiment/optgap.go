package experiment

import (
	"context"
	"fmt"

	"repro/internal/deadline"
	"repro/internal/gen"
	"repro/internal/optsched"
	"repro/internal/pipeline"
	"repro/internal/slicing"
)

// OptGap quantifies how much of the success-ratio shortfall is the
// *dispatcher's* fault versus the *deadline distribution's* fault. For
// each small random workload it distributes deadlines with the given
// metric and then asks three questions:
//
//  1. does the time-driven EDF dispatcher meet every window?
//  2. if not, does ANY non-preemptive schedule meet them (exact
//     branch-and-bound over active schedules)?
//  3. if not even that, the windows themselves are infeasible — the
//     metric, not the scheduler, lost the workload.
//
// The paper evaluates metrics only through the heuristic scheduler;
// this study separates the two error sources, which the NP-completeness
// framing of §1 leaves entangled.
type OptGapResult struct {
	Graphs int
	// DispatchOK counts workloads the heuristic dispatcher schedules.
	DispatchOK int
	// RescuedByExact counts workloads the dispatcher fails but an exact
	// scheduler proves feasible (dispatcher's fault).
	RescuedByExact int
	// WindowsInfeasible counts workloads where no non-preemptive
	// schedule meets the assigned windows (metric's fault).
	WindowsInfeasible int
	// Inconclusive counts exact searches that exhausted their node
	// budget.
	Inconclusive int
}

// String summarizes the result.
func (r OptGapResult) String() string {
	return fmt.Sprintf("dispatch %d/%d, rescued-by-exact %d, windows-infeasible %d, inconclusive %d",
		r.DispatchOK, r.Graphs, r.RescuedByExact, r.WindowsInfeasible, r.Inconclusive)
}

// OptGapConfig parameterizes the study.
type OptGapConfig struct {
	// Metric under test.
	Metric slicing.Metric
	// Params for the metric.
	Params slicing.Params
	// M is the system size.
	M int
	// OLR is the deadline tightness.
	OLR float64
	// Tasks bounds the graph size (small, for the exact search).
	MinTasks, MaxTasks int
	// NumGraphs is the sample size.
	NumGraphs int
	// MasterSeed drives the workloads.
	MasterSeed int64
	// NodeBudget caps each exact search.
	NodeBudget int
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Pipe optionally supplies a shared plan cache and instrumentation
	// recorder for the planning pipeline.
	Pipe pipeline.Shared
}

// optGapOutcome classifies one workload of the study.
type optGapOutcome int

const (
	optGapDispatchOK optGapOutcome = iota
	optGapRescued
	optGapInfeasible
	optGapInconclusive
)

// OptGap runs the study over the panic-isolated worker pool; a
// panicking workload counts as inconclusive for that workload only, and
// the tallies are independent of the worker count.
func OptGap(cfg OptGapConfig) OptGapResult {
	if cfg.NodeBudget <= 0 {
		cfg.NodeBudget = 2_000_000
	}
	outs, errs, _ := runIndexed(cfg.Workers, cfg.NumGraphs, 0, func(ctx context.Context, idx int) (any, error) {
		return optGapOne(ctx, cfg, idx), nil
	})
	res := OptGapResult{Graphs: cfg.NumGraphs}
	for i := range outs {
		o := optGapInconclusive
		if errs[i] == nil {
			o = outs[i].(optGapOutcome)
		}
		switch o {
		case optGapDispatchOK:
			res.DispatchOK++
		case optGapRescued:
			res.RescuedByExact++
		case optGapInfeasible:
			res.WindowsInfeasible++
		default:
			res.Inconclusive++
		}
	}
	return res
}

func optGapOne(ctx context.Context, cfg OptGapConfig, idx int) optGapOutcome {
	gcfg := gen.Default(cfg.M)
	gcfg.Seed = gen.SubSeed(cfg.MasterSeed, idx)
	gcfg.OLR = cfg.OLR
	gcfg.MinTasks, gcfg.MaxTasks = cfg.MinTasks, cfg.MaxTasks
	gcfg.MinDepth, gcfg.MaxDepth = 2, 4
	w, err := gen.Generate(gcfg)
	if err != nil {
		return optGapInconclusive
	}
	// Default pipeline hooks: WCET-AVG estimates, time-driven dispatch.
	b := &pipeline.Builder{
		Distributor: deadline.Sliced{Metric: cfg.Metric, Params: cfg.Params},
		Cache:       cfg.Pipe.Cache,
		Recorder:    cfg.Pipe.Recorder,
	}
	plan, err := b.BuildContext(ctx, pipeline.Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		return optGapInconclusive
	}
	if plan.Verdict.Feasible {
		return optGapDispatchOK
	}
	exact, err := optsched.Schedule(w.Graph, w.Platform, plan.Assignment,
		optsched.Options{NodeBudget: cfg.NodeBudget, StopAtFeasible: true})
	if err != nil {
		return optGapInconclusive
	}
	switch {
	case exact.Schedule != nil && exact.Schedule.Feasible:
		return optGapRescued
	case exact.Optimal:
		return optGapInfeasible
	}
	return optGapInconclusive
}
