package experiment

import (
	"context"
	"fmt"
	"time"

	"repro/internal/deadline"
	"repro/internal/degrade"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/rtime"
	"repro/internal/sim"
	"repro/internal/slicing"
	"repro/internal/stats"
	"repro/internal/wcet"
)

// DegradeConfig describes one graceful-degradation study series: a
// mixed-criticality workload distribution, a metric, a degradation
// policy, and an ascending ramp of fault intensities the online mode
// controller climbs.
type DegradeConfig struct {
	// Gen is the workload generator configuration; set Gen.OptionalProb
	// to get optional work to degrade (Gen.Seed is ignored; per-graph
	// seeds derive from MasterSeed).
	Gen gen.Config
	// Metric is the critical-path metric under evaluation.
	Metric slicing.Metric
	// Params are the adaptive-metric parameters.
	Params slicing.Params
	// WCET is the estimation strategy.
	WCET wcet.Strategy
	// NumGraphs is the sample size per intensity.
	NumGraphs int
	// MasterSeed makes the study reproducible, with the same seed split
	// as FaultRun: workload idx draws its graph from
	// SubSeed(MasterSeed, idx) and its fault trace from
	// SubSeed(MasterSeed+1, idx), independent of metric and policy, so
	// every series faces identical workloads and fault scenarios.
	MasterSeed int64
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Intensities is the ascending fault-intensity ramp; each workload
	// is carried through the whole ramp by one controller instance, so
	// its admitted mode level is non-decreasing along it.
	Intensities []float64
	// Degrade selects the degradation policy and ladder depth.
	Degrade degrade.Options
	// Reclaim enables the online slack-reclamation recovery policy
	// inside every executed frame.
	Reclaim bool
	// Timeout is the per-workload wall-clock budget (0 = none).
	Timeout time.Duration
	// Pipe optionally supplies a shared plan cache and instrumentation
	// recorder for the planning pipeline. With a shared cache the
	// baseline fault path re-plans each workload once instead of once
	// per intensity.
	Pipe pipeline.Shared
}

// DegradePoint aggregates one intensity of a degradation series.
type DegradePoint struct {
	// Fault is the plain fault-injection baseline at this intensity —
	// the full application with no mode controller — computed with
	// FaultRun's own per-workload path, so with degradation disabled
	// (Policy None, or no optional tasks) it is byte-identical to the
	// FaultRun point of the same configuration.
	Fault FaultPoint
	// Value accumulates the achieved value fraction: the Quality of the
	// admitted operating mode, or 0 for a rejected workload. Per
	// workload it is non-increasing along the intensity ramp, so the
	// mean is too.
	Value stats.Running
	// MandatoryMet counts workloads whose admitted frame ran with zero
	// mandatory deadline misses. A workload that cannot hold the
	// mandatory set even at the top level is rejected (and stays
	// rejected at higher intensities).
	MandatoryMet stats.Ratio
	// Level accumulates the admitted mode level.
	Level stats.Running
	// Escalations totals the upward mode changes spent at this
	// intensity; Saturated counts workloads that ran at the top level.
	Escalations, Saturated int
	// Rejected counts workloads with no admissible mode at (or before)
	// this intensity.
	Rejected int
	// ModeErrors counts degraded-mode pipeline failures (the mode was
	// treated as inadmissible and the controller escalated past it).
	ModeErrors int
	// Errors counts workload-level pipeline failures, including
	// panicking workloads; Timeouts those abandoned at the budget.
	Errors, Timeouts int
	// Abandoned counts abandoned workload goroutines still running when
	// the series finished (see PoolStats.Abandoned); identical on every
	// point of a curve, since the pool spans the whole ramp.
	Abandoned int
}

// DegradeCurve is one policy/metric series over the intensity ramp.
type DegradeCurve struct {
	Intensities []float64
	Points      []DegradePoint
}

// degradeOutcome is the per-workload result DegradeRun folds: one entry
// per intensity, plus the baseline fault outcome for each.
type degradeOutcome struct {
	fault    []faultOutcome
	faultErr []error
	level    []int
	value    []float64
	mandOK   []bool
	escal    []int
	sat      []bool
	rejected []bool
	modeErrs []int
}

// DegradeRun evaluates one graceful-degradation series. Every workload
// is generated once, its mode ladder built once, and one controller
// instance carries it up the whole intensity ramp: at each intensity
// the current mode executes under the workload's materialized fault
// trace (projected onto the mode's surviving tasks, so every mode faces
// the same scenario), and overloaded frames escalate the controller
// until a frame is admitted or the ladder is exhausted. The achieved
// value of an intensity is the admitted mode's retained-value fraction
// — 0 when even the top mode misses mandatory deadlines, a rejection
// that latches for the rest of the ramp. Both the admitted level and
// the rejection latch are monotone per workload, so every aggregate
// value curve is non-increasing by construction.
//
// Runs on the panic-isolated worker pool; outcomes fold in index order,
// so the curve is byte-identical for every worker count.
func DegradeRun(cfg DegradeConfig) (DegradeCurve, error) {
	ni := len(cfg.Intensities)
	if ni == 0 {
		return DegradeCurve{}, fmt.Errorf("experiment: DegradeRun needs at least one intensity")
	}
	for i := 1; i < ni; i++ {
		if cfg.Intensities[i] < cfg.Intensities[i-1] {
			return DegradeCurve{}, fmt.Errorf("experiment: intensities not ascending at %d", i)
		}
	}
	curve := DegradeCurve{
		Intensities: append([]float64(nil), cfg.Intensities...),
		Points:      make([]DegradePoint, ni),
	}
	outs, errs, pst := runIndexed(cfg.Workers, cfg.NumGraphs, cfg.Timeout, func(ctx context.Context, idx int) (any, error) {
		return degradeRunOne(ctx, cfg, idx)
	})
	for p := range curve.Points {
		curve.Points[p].Abandoned = pst.Abandoned
	}
	for i := range outs {
		if errs[i] != nil {
			_, timedOut := errs[i].(*TimeoutError)
			for p := range curve.Points {
				curve.Points[p].Errors++
				curve.Points[p].Fault.Errors++
				if timedOut {
					curve.Points[p].Timeouts++
				}
			}
			continue
		}
		o := outs[i].(degradeOutcome)
		for p := range curve.Points {
			pt := &curve.Points[p]
			if o.faultErr[p] != nil {
				pt.Fault.Errors++
			} else {
				pt.Fault.fold(o.fault[p])
			}
			pt.Value.Add(o.value[p])
			pt.MandatoryMet.Add(o.mandOK[p])
			pt.Level.Add(float64(o.level[p]))
			pt.Escalations += o.escal[p]
			if o.sat[p] {
				pt.Saturated++
			}
			if o.rejected[p] {
				pt.Rejected++
			}
			pt.ModeErrors += o.modeErrs[p]
		}
	}
	return curve, nil
}

// modePipe is the memoized plan of one operating mode.
type modePipe struct {
	plan *pipeline.Plan
	err  error
}

// degradeRunOne carries workload idx through the whole intensity ramp.
func degradeRunOne(ctx context.Context, cfg DegradeConfig, idx int) (degradeOutcome, error) {
	ni := len(cfg.Intensities)
	o := degradeOutcome{
		fault:    make([]faultOutcome, ni),
		faultErr: make([]error, ni),
		level:    make([]int, ni),
		value:    make([]float64, ni),
		mandOK:   make([]bool, ni),
		escal:    make([]int, ni),
		sat:      make([]bool, ni),
		rejected: make([]bool, ni),
		modeErrs: make([]int, ni),
	}

	gcfg := cfg.Gen
	gcfg.Seed = gen.SubSeed(cfg.MasterSeed, idx)
	w, err := gen.Generate(gcfg)
	if err != nil {
		return o, err
	}
	modes, err := degrade.Modes(w.Graph, cfg.Degrade)
	if err != nil {
		return o, err
	}
	top := len(modes) - 1

	// Lazily memoized plans, one per mode: estimates over the mode
	// graph, re-sliced end-to-end deadlines, re-verified dispatch — one
	// pipeline build per mode level.
	builder := &pipeline.Builder{
		Estimator:   pipeline.StrategyEstimator(cfg.WCET),
		Distributor: deadline.Sliced{Metric: cfg.Metric, Params: cfg.Params},
		Cache:       cfg.Pipe.Cache,
		Recorder:    cfg.Pipe.Recorder,
	}
	pipes := make([]*modePipe, len(modes))
	rp := builder.NewReplanner()
	var lastPlan *pipeline.Plan
	pipe := func(l int) *modePipe {
		if pipes[l] != nil {
			return pipes[l]
		}
		p := &modePipe{}
		pipes[l] = p
		spec := pipeline.Spec{Graph: modes[l].Graph, Platform: w.Platform}
		if lastPlan == nil {
			p.plan, p.err = builder.BuildContext(ctx, spec)
		} else {
			// Each mode level drops tasks, so escalation is a workload
			// delta: the replanner falls back to a full build and the
			// recorder counts it as one, keeping the ladder's planning
			// cost visible next to the loops that do rebuild cheaply.
			p.plan, _, p.err = rp.RebuildContext(ctx, lastPlan, pipeline.WorkloadDelta(spec))
		}
		if p.err == nil {
			lastPlan = p.plan
		}
		return p
	}

	// The failure-instant horizon, as in FaultRun: metric-independent
	// and mode-independent, so every series and mode level faces the
	// same scenario.
	var span rtime.Time
	for _, out := range w.Graph.Outputs() {
		if d := w.Graph.Task(out).ETEDeadline; d > span {
			span = d
		}
	}

	// One controller per workload, carried across the whole ramp. The
	// clean-streak requirement exceeds any possible frame count, so the
	// controller never probes downward mid-study and the admitted level
	// is non-decreasing along the ramp (re-admission is exercised by the
	// unit tests and the example, not the study).
	ctl := degrade.NewController(degrade.ControllerOptions{
		MaxLevel:    top,
		CleanStreak: ni*(top+1) + 1,
	})

	rejected := false
	fcfg := FaultConfig{
		Gen: cfg.Gen, Metric: cfg.Metric, Params: cfg.Params, WCET: cfg.WCET,
		NumGraphs: cfg.NumGraphs, MasterSeed: cfg.MasterSeed, Workers: cfg.Workers,
		Reclaim: cfg.Reclaim, Pipe: cfg.Pipe,
	}
	for p, intensity := range cfg.Intensities {
		// The uncontrolled baseline, via FaultRun's own per-workload
		// path so the fold is byte-identical.
		fcfg.Intensity = intensity
		o.fault[p], o.faultErr[p] = faultRunOne(ctx, fcfg, idx)

		if rejected {
			o.rejected[p] = true
			o.level[p] = top
			continue
		}

		plan := faults.Scaled(intensity, gen.SubSeed(cfg.MasterSeed+1, idx))
		trace, err := plan.Materialize(w.Graph, w.Platform, span)
		if err != nil {
			return o, err
		}

		// Escalate until a frame is admitted or the ladder is exhausted.
		for {
			lv := ctl.Level()
			var deg sim.Degradation
			var frameErr error
			if lv == 0 && o.faultErr[p] == nil {
				// The baseline already executed exactly this frame.
				deg = o.fault[p].deg
			} else {
				pl := pipe(lv)
				if pl.err != nil {
					frameErr = pl.err
				} else {
					ir, err := sim.Inject(modes[lv].Graph, w.Platform, pl.plan.Assignment, pl.plan.Schedule,
						sim.Options{Faults: trace.Project(modes[lv].New2Old), Reclaim: cfg.Reclaim})
					if err != nil {
						frameErr = err
					} else {
						deg = ir.Degradation
					}
				}
			}

			obs := degrade.Observation{
				MandatoryMisses: deg.MandatoryMisses,
				OptionalMisses:  deg.Misses - deg.MandatoryMisses,
				Overruns:        deg.Overruns,
				Aborts:          deg.Aborted,
			}
			if frameErr != nil {
				// An unplannable mode is inadmissible: escalate past it.
				o.modeErrs[p]++
				obs = degrade.Observation{MandatoryMisses: 1}
			}
			tr := ctl.Observe(obs)
			if tr.Cause == degrade.Escalate {
				o.escal[p]++
				continue
			}
			// Admitted (clean frame) or saturated at the top level.
			o.level[p] = lv
			o.sat[p] = lv == top && top > 0
			if frameErr == nil && deg.MandatoryMisses == 0 {
				o.mandOK[p] = true
				o.value[p] = modes[lv].Quality
			} else {
				rejected = true
				o.rejected[p] = true
			}
			break
		}
	}
	return o, nil
}
