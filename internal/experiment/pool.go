package experiment

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// PanicError is a workload panic converted into a per-workload error by
// the pool: one panicking workload fails only its own data point, never
// the process (or the other workloads of the point).
type PanicError struct {
	// Idx is the workload index that panicked.
	Idx int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("experiment: workload %d panicked: %v", e.Idx, e.Value)
}

// TimeoutError reports a workload that exceeded its per-workload
// deadline and was abandoned.
type TimeoutError struct {
	// Idx is the workload index that timed out.
	Idx int
	// Limit is the per-workload budget it exceeded.
	Limit time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("experiment: workload %d exceeded its %v budget", e.Idx, e.Limit)
}

// guard runs one workload with panic isolation.
func guard(idx int, run func(idx int) (any, error)) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, &PanicError{Idx: idx, Value: r, Stack: debug.Stack()}
		}
	}()
	return run(idx)
}

// guardTimed is guard with a wall-clock budget per workload. The
// workload body is CPU-bound and cannot observe cancellation, so on
// timeout its goroutine is abandoned: it finishes (or panics) harmlessly
// in the background and its result is discarded.
func guardTimed(idx int, limit time.Duration, run func(idx int) (any, error)) (any, error) {
	if limit <= 0 {
		return guard(idx, run)
	}
	ctx, cancel := context.WithTimeout(context.Background(), limit)
	defer cancel()
	type result struct {
		out any
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := guard(idx, run)
		ch <- result{out, err}
	}()
	select {
	case r := <-ch:
		return r.out, r.err
	case <-ctx.Done():
		return nil, &TimeoutError{Idx: idx, Limit: limit}
	}
}

// runIndexed fans workload indices 0..num−1 over a worker pool and
// collects one result (or error) per index. The caller folds the
// returned slices in index order, which makes every aggregate — success
// counts and floating-point accumulations alike — byte-identical
// regardless of the worker count or goroutine interleaving.
//
// Each workload runs panic-isolated (PanicError) and, when timeout > 0,
// under a per-workload wall-clock budget (TimeoutError). workers ≤ 0
// means GOMAXPROCS.
func runIndexed(workers, num int, timeout time.Duration,
	run func(idx int) (any, error)) ([]any, []error) {

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > num {
		workers = num
	}
	if workers < 1 {
		workers = 1
	}
	outs := make([]any, num)
	errs := make([]error, num)
	var wg sync.WaitGroup
	indices := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range indices {
				outs[idx], errs[idx] = guardTimed(idx, timeout, run)
			}
		}()
	}
	for i := 0; i < num; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
	return outs, errs
}
