package experiment

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError is a workload panic converted into a per-workload error by
// the pool: one panicking workload fails only its own data point, never
// the process (or the other workloads of the point).
type PanicError struct {
	// Idx is the workload index that panicked.
	Idx int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("experiment: workload %d panicked: %v", e.Idx, e.Value)
}

// TimeoutError reports a workload that exceeded its per-workload
// deadline and was abandoned.
type TimeoutError struct {
	// Idx is the workload index that timed out.
	Idx int
	// Limit is the per-workload budget it exceeded.
	Limit time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("experiment: workload %d exceeded its %v budget", e.Idx, e.Limit)
}

// PoolStats summarizes the pool-level incidents of one runIndexed call
// for the studies' error summaries.
type PoolStats struct {
	// Timeouts counts workloads abandoned at the per-workload budget.
	Timeouts int
	// Abandoned counts abandoned workload goroutines that were *still
	// running* — still stealing CPU from live workers — when the pool
	// drained. The run context is canceled on abandonment and the
	// planning pipeline honors it at stage boundaries, so this is
	// normally 0; a persistent non-zero count means some stage ran a
	// long uninterruptible computation.
	Abandoned int
}

// guard runs one workload with panic isolation.
func guard(ctx context.Context, idx int, run func(ctx context.Context, idx int) (any, error)) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, &PanicError{Idx: idx, Value: r, Stack: debug.Stack()}
		}
	}()
	return run(ctx, idx)
}

// timedPool tracks the timed-execution state shared by one runIndexed
// call: the slot semaphore bounding live workload bodies (abandoned
// ones included) and the incident counters.
type timedPool struct {
	slots    chan struct{}
	timeouts atomic.Int64
	zombies  atomic.Int64
}

// runState resolves the race between a workload finishing and its
// deadline firing: exactly one side observes the other's flag under the
// mutex, so the zombie gauge is incremented iff its decrement will run.
type runState struct {
	mu        sync.Mutex
	finished  bool
	abandoned bool
}

// guardTimed is guard with a wall-clock budget per workload. The
// workload body runs on its own goroutine under a context that is
// canceled at the deadline; a body that overruns is abandoned — its
// result is discarded — but, unlike a plain goroutine leak, it is both
// *bounded* and *cooperatively cancelled*:
//
//   - bounded: every body holds a pool slot until it actually returns,
//     and the pool has only 2×workers slots. Under sustained timeouts a
//     worker whose previous workloads are still running waits for a
//     slot instead of piling a third abandoned goroutine onto the CPUs.
//   - cancelled: the canceled context reaches the planning pipeline,
//     which gives up at the next stage boundary, so abandoned bodies
//     normally exit within one stage rather than running to completion.
func guardTimed(tp *timedPool, idx int, limit time.Duration,
	run func(ctx context.Context, idx int) (any, error)) (any, error) {

	if tp == nil {
		return guard(context.Background(), idx, run)
	}
	tp.slots <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), limit)
	defer cancel()
	type result struct {
		out any
		err error
	}
	ch := make(chan result, 1)
	st := &runState{}
	go func() {
		defer func() { <-tp.slots }()
		out, err := guard(ctx, idx, run)
		st.mu.Lock()
		st.finished = true
		abandoned := st.abandoned
		st.mu.Unlock()
		if abandoned {
			tp.zombies.Add(-1)
		}
		ch <- result{out, err}
	}()
	select {
	case r := <-ch:
		return r.out, r.err
	case <-ctx.Done():
		st.mu.Lock()
		if !st.finished {
			st.abandoned = true
			tp.zombies.Add(1)
		}
		st.mu.Unlock()
		tp.timeouts.Add(1)
		return nil, &TimeoutError{Idx: idx, Limit: limit}
	}
}

// runIndexed fans workload indices 0..num−1 over a worker pool and
// collects one result (or error) per index, plus the pool's incident
// summary. The caller folds the returned slices in index order, which
// makes every aggregate — success counts and floating-point
// accumulations alike — byte-identical regardless of the worker count
// or goroutine interleaving.
//
// Each workload runs panic-isolated (PanicError) and, when timeout > 0,
// under a per-workload wall-clock budget (TimeoutError) with the
// abandoned-goroutine bound described on guardTimed. The workload
// callback receives a context that is canceled when its budget expires
// (the background context when no budget is set); long-running bodies
// should pass it to pipeline.BuildContext. workers ≤ 0 means
// GOMAXPROCS.
func runIndexed(workers, num int, timeout time.Duration,
	run func(ctx context.Context, idx int) (any, error)) ([]any, []error, PoolStats) {

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > num {
		workers = num
	}
	if workers < 1 {
		workers = 1
	}
	var tp *timedPool
	if timeout > 0 {
		tp = &timedPool{slots: make(chan struct{}, 2*workers)}
	}
	outs := make([]any, num)
	errs := make([]error, num)
	var wg sync.WaitGroup
	indices := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range indices {
				outs[idx], errs[idx] = guardTimed(tp, idx, timeout, run)
			}
		}()
	}
	for i := 0; i < num; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
	var st PoolStats
	if tp != nil {
		st.Timeouts = int(tp.timeouts.Load())
		st.Abandoned = int(tp.zombies.Load())
	}
	return outs, errs, st
}
