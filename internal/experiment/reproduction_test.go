package experiment

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

// These tests pin the *qualitative reproduction claims* recorded in
// EXPERIMENTS.md: the metric orderings, convergences, and crossovers
// the paper reports. They run a few thousand pipelines, so they skip
// under -short; sample sizes are chosen so the asserted gaps exceed
// sampling noise by a wide margin.

const reproGraphs = 256

func reproPoint(t *testing.T, m int, olr, etd float64, metric slicing.Metric, strat wcet.Strategy) float64 {
	t.Helper()
	g := gen.Default(m)
	g.OLR = olr
	g.ETD = etd
	p := Run(Config{
		Gen: g, Metric: metric, Params: slicing.CalibratedParams(), WCET: strat,
		NumGraphs: reproGraphs, MasterSeed: 19990412,
	})
	if p.Errors != 0 {
		t.Fatalf("pipeline errors: %d", p.Errors)
	}
	return p.Success.Value()
}

// Figure 2's headline: at small m the ordering is
// ADAPT-L > ADAPT-G > NORM > PURE, with ADAPT-L several times the
// non-adaptive metrics at m = 2; at m = 8 everything schedules.
func TestReproductionFig2Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction guard: thousands of pipelines")
	}
	var v [4]float64
	for i, metric := range slicing.Metrics() {
		v[i] = reproPoint(t, 2, DefaultOLR, 0.25, metric, wcet.AVG)
	}
	pure, norm, ag, al := v[0], v[1], v[2], v[3]
	t.Logf("m=2: PURE %.3f NORM %.3f ADAPT-G %.3f ADAPT-L %.3f", pure, norm, ag, al)
	if !(al > ag && ag > norm && norm > pure) {
		t.Errorf("m=2 ordering broken: %.3f %.3f %.3f %.3f", pure, norm, ag, al)
	}
	if al < 4*pure {
		t.Errorf("ADAPT-L (%.3f) should be several times PURE (%.3f) at m=2", al, pure)
	}
	for _, metric := range slicing.Metrics() {
		if got := reproPoint(t, 8, DefaultOLR, 0.25, metric, wcet.AVG); got < 0.98 {
			t.Errorf("%s at m=8 = %.3f, want ≈1", metric.Name(), got)
		}
	}
}

// Figure 3: success rises monotonically (to sampling noise) with OLR
// and the ordering holds at the tight end.
func TestReproductionFig3Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction guard")
	}
	for _, metric := range []slicing.Metric{slicing.PURE(), slicing.AdaptL()} {
		prev := -1.0
		for _, olr := range []float64{0.40, 0.50, 0.60, 0.70} {
			got := reproPoint(t, 3, olr, 0.25, metric, wcet.AVG)
			if got < prev-0.03 { // allow 3 pts of noise
				t.Errorf("%s not monotone in OLR: %.3f after %.3f", metric.Name(), got, prev)
			}
			prev = got
		}
	}
	tightPure := reproPoint(t, 3, 0.40, 0.25, slicing.PURE(), wcet.AVG)
	tightAL := reproPoint(t, 3, 0.40, 0.25, slicing.AdaptL(), wcet.AVG)
	if tightAL < 3*tightPure {
		t.Errorf("tight OLR: ADAPT-L %.3f should be ≥3× PURE %.3f", tightAL, tightPure)
	}
}

// Figure 4's signature effect: at ETD = 0 the PURE, NORM, and ADAPT-G
// metrics produce *identical* assignments (dᵢ = D_Φ/n_Φ), so their
// success ratios must be equal on the shared workload sample, while
// ADAPT-L stays clearly above them.
func TestReproductionETDZeroConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction guard")
	}
	pure := reproPoint(t, 3, DefaultOLR, 0, slicing.PURE(), wcet.AVG)
	norm := reproPoint(t, 3, DefaultOLR, 0, slicing.NORM(), wcet.AVG)
	ag := reproPoint(t, 3, DefaultOLR, 0, slicing.AdaptG(), wcet.AVG)
	al := reproPoint(t, 3, DefaultOLR, 0, slicing.AdaptL(), wcet.AVG)
	t.Logf("ETD=0: PURE %.3f NORM %.3f ADAPT-G %.3f ADAPT-L %.3f", pure, norm, ag, al)
	// Identical assignments ⇒ identical outcomes up to ±1 workload of
	// slack (threshold rounding can flip a single inflation decision).
	tol := 2.0 / reproGraphs
	if diff(pure, norm) > tol || diff(pure, ag) > tol {
		t.Errorf("ETD=0 convergence broken: %.4f %.4f %.4f", pure, norm, ag)
	}
	if al < pure+0.08 {
		t.Errorf("ADAPT-L (%.3f) should sit clearly above the converged trio (%.3f)", al, pure)
	}
}

// Figure 6's signature: WCET strategies coincide at ETD = 0 and the
// extreme strategies fall below AVG at large ETD.
func TestReproductionWCETStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction guard")
	}
	var zero [3]float64
	for i, strat := range wcet.Strategies {
		zero[i] = reproPoint(t, 3, DefaultOLR, 0, slicing.AdaptL(), strat)
	}
	if zero[0] != zero[1] || zero[0] != zero[2] {
		t.Errorf("strategies differ at ETD=0: %v", zero)
	}
	avg := reproPoint(t, 3, DefaultOLR, 1.0, slicing.AdaptL(), wcet.AVG)
	maxS := reproPoint(t, 3, DefaultOLR, 1.0, slicing.AdaptL(), wcet.MAX)
	minS := reproPoint(t, 3, DefaultOLR, 1.0, slicing.AdaptL(), wcet.MIN)
	t.Logf("ETD=100%%: AVG %.3f MAX %.3f MIN %.3f", avg, maxS, minS)
	if avg < maxS-0.01 || avg < minS-0.01 {
		t.Errorf("AVG should be the robust choice at high ETD: AVG %.3f MAX %.3f MIN %.3f",
			avg, maxS, minS)
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
