package experiment

import (
	"strings"
	"testing"

	"repro/internal/slicing"
)

func TestLatenessStudyShape(t *testing.T) {
	opts := DefaultOptions()
	opts.NumGraphs = 6
	table := LatenessStudy(opts)
	if len(table.Series) != 4 || len(table.XValues) != 4 {
		t.Fatalf("shape = %d series × %d columns", len(table.Series), len(table.XValues))
	}
	for _, s := range table.Series {
		for i, p := range s.Points {
			if p.Lateness.N() != 6 {
				t.Fatalf("series %s point %d has %d lateness samples", s.Name, i, p.Lateness.N())
			}
		}
	}
	// Looser deadlines leave more margin: mean max lateness at OLR 1.0
	// should be below (more negative than) OLR 0.70, for every metric.
	for _, s := range table.Series {
		first := s.Points[0].Lateness.Mean()
		last := s.Points[len(s.Points)-1].Lateness.Mean()
		if last >= first {
			t.Errorf("%s: lateness did not improve with looser deadlines (%.1f → %.1f)",
				s.Name, first, last)
		}
	}
	out := FormatLatenessTable(table)
	if !strings.Contains(out, "Lateness study") || !strings.Contains(out, "ADAPT-L") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}

func TestOptGapSeparatesErrorSources(t *testing.T) {
	if testing.Short() {
		t.Skip("runs exact searches")
	}
	res := OptGap(OptGapConfig{
		Metric:     slicing.PURE(),
		Params:     slicing.CalibratedParams(),
		M:          2,
		OLR:        0.5,
		MinTasks:   8,
		MaxTasks:   12,
		NumGraphs:  60,
		MasterSeed: 33,
		NodeBudget: 300_000,
	})
	t.Logf("%v", res)
	total := res.DispatchOK + res.RescuedByExact + res.WindowsInfeasible + res.Inconclusive
	if total != res.Graphs {
		t.Fatalf("categories sum to %d, want %d", total, res.Graphs)
	}
	if res.DispatchOK == res.Graphs {
		t.Error("study point too loose to be informative (everything dispatches)")
	}
	if res.DispatchOK == 0 {
		t.Error("study point too tight to be informative (nothing dispatches)")
	}
}

func TestOptGapString(t *testing.T) {
	s := OptGapResult{Graphs: 10, DispatchOK: 7, RescuedByExact: 1, WindowsInfeasible: 2}.String()
	if !strings.Contains(s, "7/10") || !strings.Contains(s, "rescued-by-exact 1") {
		t.Errorf("String() = %q", s)
	}
}
