package experiment

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

func smallFaultConfig(metric slicing.Metric, intensity float64) FaultConfig {
	g := gen.Default(3)
	g.OLR = DefaultOLR
	return FaultConfig{
		Gen:        g,
		Metric:     metric,
		Params:     slicing.CalibratedParams(),
		WCET:       wcet.AVG,
		NumGraphs:  30,
		MasterSeed: 42,
		Intensity:  intensity,
	}
}

// At intensity 0 the fault study degenerates to the nominal time-driven
// evaluation: the success ratio must equal Run's for the identical
// (metric, seed) point, and no fault or recovery event may fire.
func TestFaultRunZeroIntensityMatchesNominal(t *testing.T) {
	for _, metric := range []slicing.Metric{slicing.PURE(), slicing.AdaptL()} {
		nominal := Run(smallConfig(metric))
		injected := FaultRun(smallFaultConfig(metric, 0))
		if injected.Success != nominal.Success {
			t.Errorf("%s: zero-intensity success %v, nominal %v",
				metric.Name(), injected.Success, nominal.Success)
		}
		if injected.Overruns != 0 || injected.Aborted != 0 ||
			injected.Migrations != 0 || injected.Reclamations != 0 {
			t.Errorf("%s: fault events at zero intensity: %+v", metric.Name(), injected)
		}
		if injected.Errors != 0 {
			t.Errorf("%s: %d pipeline errors", metric.Name(), injected.Errors)
		}
	}
}

// Degradation is monotone in expectation: cranking intensity may never
// help, and at full intensity some runs must actually degrade.
func TestFaultRunDegradesWithIntensity(t *testing.T) {
	lo := FaultRun(smallFaultConfig(slicing.AdaptL(), 0))
	hi := FaultRun(smallFaultConfig(slicing.AdaptL(), 1))
	if hi.Success.Succ > lo.Success.Succ {
		t.Errorf("full-intensity success %v exceeds nominal %v", hi.Success, lo.Success)
	}
	if hi.Overruns == 0 && hi.Aborted == 0 {
		t.Error("full intensity injected no faults at all")
	}
	if hi.MissRatio.Mean() < lo.MissRatio.Mean() {
		t.Errorf("miss ratio fell under faults: %.3f < %.3f",
			hi.MissRatio.Mean(), lo.MissRatio.Mean())
	}
}

// The study is deterministic: same seed, same point, whatever the
// worker count — the seed-stability contract of the whole harness.
func TestFaultRunDeterministicAcrossWorkerCounts(t *testing.T) {
	base := smallFaultConfig(slicing.AdaptL(), 0.5)
	var points []FaultPoint
	for _, workers := range []int{1, 2, 7} {
		cfg := base
		cfg.Workers = workers
		points = append(points, FaultRun(cfg))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Success != points[0].Success {
			t.Errorf("workers=%d changed the success count: %v vs %v",
				[]int{1, 2, 7}[i], points[i].Success, points[0].Success)
		}
		if points[i].Overruns != points[0].Overruns || points[i].Aborted != points[0].Aborted {
			t.Errorf("workers=%d changed the fault event counts", []int{1, 2, 7}[i])
		}
		if d := points[i].MissRatio.Mean() - points[0].MissRatio.Mean(); d > 1e-9 || d < -1e-9 {
			t.Errorf("miss ratio depends on worker count: %v vs %v",
				points[i].MissRatio.Mean(), points[0].MissRatio.Mean())
		}
	}
}

// Recovery never redefines success, but it must fire under faults and
// may only be judged on the same original deadlines.
func TestFaultRunReclaimFires(t *testing.T) {
	cfg := smallFaultConfig(slicing.AdaptL(), 1)
	cfg.Reclaim = true
	p := FaultRun(cfg)
	if p.Reclamations == 0 {
		t.Error("full intensity with recovery enabled never reclaimed slack")
	}
	if p.Errors != 0 {
		t.Errorf("%d pipeline errors", p.Errors)
	}
}

// At intensity 0 the sporadic fault study replays the released system
// fault-free; with disjoint releases that reduces to the nominal
// success ratio. A positive intensity must run cleanly too.
func TestFaultRunSporadicRelease(t *testing.T) {
	nominal := Run(smallConfig(slicing.AdaptL()))
	cfg := smallFaultConfig(slicing.AdaptL(), 0)
	cfg.Release = gen.Release{Mode: gen.ReleaseSporadic, Count: 3, MinGap: 1 << 20}
	pt := FaultRun(cfg)
	if pt.Errors != 0 {
		t.Fatalf("sporadic fault point errored %d times", pt.Errors)
	}
	if pt.Success != nominal.Success {
		t.Errorf("disjoint sporadic zero-intensity success %v, nominal %v", pt.Success, nominal.Success)
	}

	hot := smallFaultConfig(slicing.AdaptL(), 0.6)
	hot.Release = gen.Release{Mode: gen.ReleaseSporadic, Count: 3, MinGap: 1 << 20}
	hp := FaultRun(hot)
	if hp.Errors != 0 {
		t.Fatalf("faulted sporadic point errored %d times", hp.Errors)
	}
	if hp.Overruns == 0 && hp.Aborted == 0 {
		t.Error("intensity 0.6 over the released horizon injected nothing")
	}
}
