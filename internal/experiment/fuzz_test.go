package experiment

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// FuzzParseJournal hammers the checkpoint-journal parser with torn,
// garbage, and adversarial inputs. The parser's contract: it never
// panics, the only error it reports is a header mismatch, an
// unparseable prefix means "fresh journal" (nil, nil), and parsing is
// deterministic.
func FuzzParseJournal(f *testing.F) {
	f.Add([]byte(`{"key":"header","value":"h"}`+"\n"+`{"key":"a","value":1}`+"\n"), "h")
	f.Add([]byte(`{"key":"header","value":"h"}`+"\n"+`{"key":"a","value":{"x":[1,2`), "h")
	f.Add([]byte(`{"key":"header","value":"other"}`+"\n"), "h")
	f.Add([]byte("not json at all\n"), "h")
	f.Add([]byte(""), "")
	f.Add([]byte(`{"key":"header","value":"h"}`+"\n"+`{"key":"header","value":"h"}`+"\n"), "h")
	f.Add([]byte(`{"key":"a"}`+"\n"), "h")
	f.Fuzz(func(t *testing.T, data []byte, header string) {
		lines, err := parseJournal(data, header)
		if err != nil {
			if !errors.Is(err, ErrJournalHeader) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		again, err2 := parseJournal(data, header)
		if err2 != nil || !reflect.DeepEqual(lines, again) {
			t.Fatalf("parse not deterministic: %v vs %v (err %v)", lines, again, err2)
		}
		if lines != nil {
			// A journal that parsed under this header must reject any
			// other header rather than silently mixing sweeps.
			if _, err := parseJournal(data, header+"x"); !errors.Is(err, ErrJournalHeader) {
				t.Fatalf("mismatched header accepted: %v", err)
			}
			// Every surviving line is valid JSON the writer could have
			// produced (the torn-tail rule admits no garbage cells).
			for i, ln := range lines {
				if _, err := json.Marshal(ln); err != nil {
					t.Fatalf("line %d not re-serializable: %v", i, err)
				}
			}
		}
	})
}
