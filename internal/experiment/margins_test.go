package experiment

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/robust"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

func smallMarginConfig(metric slicing.Metric, model wcet.ErrorModel) MarginConfig {
	g := gen.Default(3)
	g.OLR = DefaultOLR
	return MarginConfig{
		Gen:        g,
		Metric:     metric,
		Params:     slicing.CalibratedParams(),
		WCET:       wcet.AVG,
		NumGraphs:  30,
		MasterSeed: 42,
		Model:      model,
	}
}

// The zero-perturbation identity: a margin study at noise level 0 must
// reproduce the nominal time-driven success ratio exactly — same
// (metric, seed) workloads, identity trace, same dispatcher.
func TestMarginRunZeroModelMatchesNominal(t *testing.T) {
	for _, metric := range []slicing.Metric{slicing.PURE(), slicing.NORM(), slicing.AdaptL()} {
		for _, kind := range append([]wcet.ErrorKind{wcet.ErrNone}, wcet.ErrorKinds...) {
			model := wcet.ErrorModel{Kind: kind, Level: 0}
			nominal := Run(smallConfig(metric))
			pt := MarginRun(smallMarginConfig(metric, model))
			if pt.Success != nominal.Success {
				t.Errorf("%s/%s: zero-level success %v, nominal %v",
					metric.Name(), kind, pt.Success, nominal.Success)
			}
			if pt.Overruns != 0 || pt.Reclamations != 0 {
				t.Errorf("%s/%s: events at zero level: %+v", metric.Name(), kind, pt)
			}
			if pt.Errors != 0 {
				t.Errorf("%s/%s: %d pipeline errors", metric.Name(), kind, pt.Errors)
			}
		}
	}
}

// Estimation error hurts in expectation: a strong multiplicative error
// may never raise the success count, and must inject real overruns.
func TestMarginRunDegradesWithLevel(t *testing.T) {
	zero := MarginRun(smallMarginConfig(slicing.AdaptL(), wcet.ErrorModel{}))
	noisy := MarginRun(smallMarginConfig(slicing.AdaptL(),
		wcet.ErrorModel{Kind: wcet.ErrMultiplicative, Level: 0.5}))
	if noisy.Success.Succ > zero.Success.Succ {
		t.Errorf("noisy success %v exceeds nominal %v", noisy.Success, zero.Success)
	}
	if noisy.Overruns == 0 {
		t.Error("level 0.5 multiplicative error injected no overruns")
	}
}

// The re-slicing loop recovers a measurable share of failing runs, and
// attempts exactly the runs that missed.
func TestMarginRunReslice(t *testing.T) {
	cfg := smallMarginConfig(slicing.AdaptL(),
		wcet.ErrorModel{Kind: wcet.ErrMultiplicative, Level: 0.5})
	cfg.Reslice = robust.ResliceOptions{MaxRetries: 4}
	pt := MarginRun(cfg)
	misses := pt.Success.Total - pt.Success.Succ
	if pt.Recovered.Total != misses-pt.Errors {
		t.Errorf("attempted %d recoveries over %d misses (%d errors)",
			pt.Recovered.Total, misses, pt.Errors)
	}
	if misses > 0 && pt.ResliceIters.N() == 0 {
		t.Error("misses occurred but no re-slicing iterations recorded")
	}
}

// MarginRun is deterministic across worker counts.
func TestMarginRunDeterministicAcrossWorkerCounts(t *testing.T) {
	base := smallMarginConfig(slicing.AdaptL(),
		wcet.ErrorModel{Kind: wcet.ErrHeavyTail, Level: 0.25})
	var pts []MarginPoint
	for _, workers := range []int{1, 2, 7} {
		cfg := base
		cfg.Workers = workers
		pts = append(pts, MarginRun(cfg))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] != pts[0] {
			t.Errorf("workers=%d changed the point: %+v vs %+v",
				[]int{1, 2, 7}[i], pts[i], pts[0])
		}
	}
}

// A panicking workload fails only its own (metric, seed) point: the
// margin run completes, counts one error, and evaluates the rest. The
// panic is induced by a hostile generator configuration detected inside
// the workload body rather than by patching the pipeline.
func TestMarginRunPanicIsolatedToWorkload(t *testing.T) {
	// Drive the panic through the pool directly with the real pipeline
	// body for every other index, proving the composition isolates it.
	cfg := smallMarginConfig(slicing.AdaptL(), wcet.ErrorModel{})
	outs, errs, _ := runIndexed(4, cfg.NumGraphs, 0, func(ctx context.Context, idx int) (any, error) {
		if idx == 7 {
			panic("hostile workload")
		}
		return marginRunOne(ctx, cfg, idx)
	})
	bad := 0
	for i := range outs {
		if errs[i] != nil {
			bad++
			if i != 7 {
				t.Errorf("healthy workload %d failed: %v", i, errs[i])
			}
		}
	}
	if bad != 1 {
		t.Errorf("%d failed workloads, want exactly 1", bad)
	}
}

// BreakdownRun's nominal ratio equals Run's success ratio, by the
// φ = 1 probe identity.
func TestBreakdownRunNominalMatchesRun(t *testing.T) {
	for _, metric := range []slicing.Metric{slicing.PURE(), slicing.AdaptL()} {
		nominal := Run(smallConfig(metric))
		pt := BreakdownRun(smallMarginConfig(metric, wcet.ErrorModel{}))
		if pt.Nominal != nominal.Success {
			t.Errorf("%s: breakdown nominal %v, Run success %v",
				metric.Name(), pt.Nominal, nominal.Success)
		}
		if pt.Errors != 0 {
			t.Errorf("%s: %d errors", metric.Name(), pt.Errors)
		}
	}
}

// The adaptive metric buys measurable robustness margin: ADAPT-L's mean
// breakdown factor is at or above PURE's on the default workload — the
// headline robustness claim of the study.
func TestBreakdownRunAdaptiveBeatsPure(t *testing.T) {
	pure := BreakdownRun(smallMarginConfig(slicing.PURE(), wcet.ErrorModel{}))
	adapt := BreakdownRun(smallMarginConfig(slicing.AdaptL(), wcet.ErrorModel{}))
	if adapt.Factor.Mean() < pure.Factor.Mean() {
		t.Errorf("ADAPT-L mean breakdown %.3f below PURE %.3f",
			adapt.Factor.Mean(), pure.Factor.Mean())
	}
}

// Under disjoint releases and a zero error model the sporadic margin
// study reduces to the nominal one-shot study: every release replays
// the base schedule, the tiled trace is the identity.
func TestMarginRunSporadicRelease(t *testing.T) {
	nominal := Run(smallConfig(slicing.AdaptL()))
	cfg := smallMarginConfig(slicing.AdaptL(), wcet.ErrorModel{})
	cfg.Release = gen.Release{Mode: gen.ReleaseSporadic, Count: 3, MinGap: 1 << 20}
	pt := MarginRun(cfg)
	if pt.Errors != 0 {
		t.Fatalf("sporadic margin point errored %d times", pt.Errors)
	}
	if pt.Success != nominal.Success {
		t.Errorf("disjoint sporadic zero-model success %v, nominal %v", pt.Success, nominal.Success)
	}

	// A real error model runs cleanly over the expanded system and hits
	// every release: at least as many overruns as the one-shot study.
	noisyCfg := smallMarginConfig(slicing.AdaptL(), wcet.ErrorModel{Kind: wcet.ErrMultiplicative, Level: 0.5})
	oneShot := MarginRun(noisyCfg)
	noisyCfg.Release = gen.Release{Mode: gen.ReleaseSporadic, Count: 3, MinGap: 1 << 20}
	released := MarginRun(noisyCfg)
	if released.Errors != 0 {
		t.Fatalf("noisy sporadic margin point errored %d times", released.Errors)
	}
	if released.Overruns < oneShot.Overruns {
		t.Errorf("released study saw %d overruns, one-shot %d", released.Overruns, oneShot.Overruns)
	}
}
