// Package cluster is the fleet layer under the planning service: a
// static set of pland peers, a consistent-hash ring that maps workload
// fingerprints (the plan cache key) onto them, and a health prober that
// routes around peers that stop answering /healthz.
//
// The ring gives every fingerprint a stable owner plus an ordered list
// of fallbacks, so a plan is built once fleet-wide on its owner's cache
// and requests re-route deterministically when the owner dies. The ring
// itself is static — membership is the configured peer list — while
// liveness is dynamic: each Peer carries an alive bit the Prober (or a
// client observing hard failures) flips, and Order/Preference skip dead
// peers without reshuffling the keys owned by live ones.
package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
)

// Peer is one pland process in the fleet: a stable name, its base URL,
// and its observed liveness. The zero liveness is alive, so a fresh
// ring routes everywhere until the prober learns otherwise.
type Peer struct {
	// Name identifies the peer in metrics, logs, and chaos scenarios.
	Name string
	// URL is the peer's base address, e.g. "http://127.0.0.1:8081".
	URL string

	// down is 1 while the peer is considered dead; flipped by the
	// Prober's consecutive-failure accounting or by MarkDown.
	down atomic.Bool
	// downs counts alive→dead transitions, for metrics.
	downs atomic.Int64
}

// Alive reports whether the peer is currently routable.
func (p *Peer) Alive() bool { return !p.down.Load() }

// MarkDown records the peer as dead; the ring routes around it.
func (p *Peer) MarkDown() {
	if p.down.CompareAndSwap(false, true) {
		p.downs.Add(1)
	}
}

// MarkUp records the peer as alive again.
func (p *Peer) MarkUp() { p.down.Store(false) }

// Downs returns the number of alive→dead transitions observed so far.
func (p *Peer) Downs() int64 { return p.downs.Load() }

// Ring is a consistent-hash ring over a static peer list. Each peer
// projects vnodesPerPeer virtual points onto the 64-bit hash circle;
// a key's owner is the peer of the first point clockwise of the key.
// With the peer list fixed, key→owner is a pure function, so every
// fleet member and every client computes the same routing.
type Ring struct {
	peers  []*Peer
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	peer int // index into peers
}

// vnodesPerPeer spreads each peer over the circle so ownership splits
// near-evenly and a dead peer's keys scatter across the survivors
// instead of dog-piling one neighbor.
const vnodesPerPeer = 128

// NewRing builds the ring. Peer names must be unique and non-empty;
// URLs must parse. The peer order in the slice is irrelevant to
// routing (only names are hashed).
func NewRing(peers []*Peer) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p.Name == "" {
			return nil, fmt.Errorf("cluster: peer with empty name (url %q)", p.URL)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		seen[p.Name] = true
		if _, err := url.Parse(p.URL); err != nil || p.URL == "" {
			return nil, fmt.Errorf("cluster: peer %s has bad url %q", p.Name, p.URL)
		}
	}
	r := &Ring{peers: peers}
	for i, p := range peers {
		for v := 0; v < vnodesPerPeer; v++ {
			r.points = append(r.points, ringPoint{
				hash: hashString(fmt.Sprintf("%s#%d", p.Name, v)),
				peer: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// Peers returns the ring's peer list in configuration order.
func (r *Ring) Peers() []*Peer { return r.peers }

// ByName returns the named peer, or nil.
func (r *Ring) ByName(name string) *Peer {
	for _, p := range r.peers {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Owner returns the peer owning key, ignoring liveness. Use Preference
// when dead peers should be routed around.
func (r *Ring) Owner(key uint64) *Peer {
	return r.peers[r.points[r.search(key)].peer]
}

// Order returns every peer exactly once, in ring order starting at
// key's owner. It is the full failover sequence for key: owner first,
// then each successor the key would re-route to as earlier choices die.
func (r *Ring) Order(key uint64) []*Peer {
	out := make([]*Peer, 0, len(r.peers))
	taken := make(map[int]bool, len(r.peers))
	for i, n := r.search(key), 0; n < len(r.points) && len(out) < len(r.peers); i, n = (i+1)%len(r.points), n+1 {
		pt := r.points[i]
		if !taken[pt.peer] {
			taken[pt.peer] = true
			out = append(out, r.peers[pt.peer])
		}
	}
	return out
}

// Preference is Order with dead peers moved to the back: the live
// failover sequence first, then the dead peers in ring order (still
// listed, so a caller with nothing else left can try them — a peer
// marked dead by a stale probe may answer anyway).
func (r *Ring) Preference(key uint64) []*Peer {
	all := r.Order(key)
	out := make([]*Peer, 0, len(all))
	var dead []*Peer
	for _, p := range all {
		if p.Alive() {
			out = append(out, p)
		} else {
			dead = append(dead, p)
		}
	}
	return append(out, dead...)
}

// search returns the index of the first ring point at or clockwise of
// key.
func (r *Ring) search(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		return 0
	}
	return i
}

// hashString is FNV-1a 64-bit, matching the pipeline fingerprint family.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime
	}
	return h
}

// ParsePeers parses a -peers flag value: a comma-separated list of
// "name=url" entries, or bare URLs which are named peer0, peer1, … in
// list order. The returned peers are all alive.
func ParsePeers(spec string) ([]*Peer, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	var peers []*Peer
	for i, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		name, u := fmt.Sprintf("peer%d", i), f
		if eq := strings.Index(f, "="); eq >= 0 {
			name, u = f[:eq], f[eq+1:]
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		peers = append(peers, &Peer{Name: name, URL: u})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return peers, nil
}
