package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"syscall"
	"testing"
	"time"
)

func testPeers(n int) []*Peer {
	peers := make([]*Peer, n)
	for i := range peers {
		peers[i] = &Peer{Name: fmt.Sprintf("p%d", i), URL: fmt.Sprintf("http://127.0.0.1:%d", 9000+i)}
	}
	return peers
}

func mustRing(t *testing.T, peers []*Peer) *Ring {
	t.Helper()
	r, err := NewRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingDeterministic pins the routing contract: owner and failover
// order are pure functions of (peer names, key), independent of the
// configuration order of the peer slice.
func TestRingDeterministic(t *testing.T) {
	a := mustRing(t, testPeers(3))
	shuffled := testPeers(3)
	shuffled[0], shuffled[2] = shuffled[2], shuffled[0]
	b := mustRing(t, shuffled)
	for key := uint64(0); key < 1000; key++ {
		k := key * 0x9e3779b97f4a7c15
		if a.Owner(k).Name != b.Owner(k).Name {
			t.Fatalf("key %d: owner differs across peer orderings", k)
		}
		ao, bo := a.Order(k), b.Order(k)
		for i := range ao {
			if ao[i].Name != bo[i].Name {
				t.Fatalf("key %d: failover order differs at %d", k, i)
			}
		}
	}
}

// TestRingBalance checks the virtual nodes spread ownership within a
// reasonable factor of even.
func TestRingBalance(t *testing.T) {
	r := mustRing(t, testPeers(3))
	const keys = 30000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(uint64(i)*0x9e3779b97f4a7c15).Name]++
	}
	want := keys / 3
	for name, n := range counts {
		if n < want/2 || n > want*2 {
			t.Fatalf("peer %s owns %d of %d keys (want near %d): %v", name, n, keys, want, counts)
		}
	}
}

// TestRingOrderCoversAll: the failover sequence lists every peer
// exactly once, owner first.
func TestRingOrderCoversAll(t *testing.T) {
	r := mustRing(t, testPeers(5))
	for i := 0; i < 100; i++ {
		k := uint64(i) * 0x9e3779b97f4a7c15
		order := r.Order(k)
		if len(order) != 5 {
			t.Fatalf("order has %d peers, want 5", len(order))
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("order[0] != owner for key %d", k)
		}
		seen := map[string]bool{}
		for _, p := range order {
			if seen[p.Name] {
				t.Fatalf("peer %s listed twice", p.Name)
			}
			seen[p.Name] = true
		}
	}
}

// TestRingPreferenceSkipsDead: a dead peer moves to the back of the
// preference list, and keys owned by live peers keep their owner (no
// reshuffle).
func TestRingPreferenceSkipsDead(t *testing.T) {
	peers := testPeers(3)
	r := mustRing(t, peers)

	// Record every owner, kill p1, and check: p1's keys re-route to the
	// next live peer in their order, everyone else's owner is unchanged.
	const keys = 2000
	owners := make([]string, keys)
	for i := range owners {
		owners[i] = r.Owner(uint64(i) * 0x9e3779b97f4a7c15).Name
	}
	peers[1].MarkDown()
	moved := 0
	for i := range owners {
		k := uint64(i) * 0x9e3779b97f4a7c15
		pref := r.Preference(k)
		if pref[len(pref)-1].Name != "p1" {
			t.Fatalf("dead peer not last in preference: %v", names(pref))
		}
		if owners[i] == "p1" {
			moved++
			if got := pref[0].Name; got == "p1" {
				t.Fatalf("key %d still prefers the dead owner", k)
			}
		} else if pref[0].Name != owners[i] {
			t.Fatalf("key %d owned by live %s re-routed to %s", k, owners[i], pref[0].Name)
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: p1 owned no keys")
	}
	// Revival restores the original routing.
	peers[1].MarkUp()
	for i := range owners {
		if got := r.Preference(uint64(i) * 0x9e3779b97f4a7c15)[0].Name; got != owners[i] {
			t.Fatalf("key %d not restored to %s after revival (got %s)", i, owners[i], got)
		}
	}
	if peers[1].Downs() != 1 {
		t.Fatalf("Downs = %d, want 1", peers[1].Downs())
	}
}

func names(ps []*Peer) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// TestNewRingRejects pins the constructor validation.
func TestNewRingRejects(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewRing([]*Peer{{Name: "", URL: "http://x"}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewRing([]*Peer{
		{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"},
	}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := NewRing([]*Peer{{Name: "a", URL: ""}}); err == nil {
		t.Error("empty url accepted")
	}
}

// TestParsePeers pins the -peers flag grammar.
func TestParsePeers(t *testing.T) {
	ps, err := ParsePeers("a=http://h1:1, b=h2:2 ,127.0.0.1:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ name, url string }{
		{"a", "http://h1:1"}, {"b", "http://h2:2"}, {"peer2", "http://127.0.0.1:3"},
	}
	if len(ps) != len(want) {
		t.Fatalf("got %d peers, want %d", len(ps), len(want))
	}
	for i, w := range want {
		if ps[i].Name != w.name || ps[i].URL != w.url {
			t.Errorf("peer %d = %s=%s, want %s=%s", i, ps[i].Name, ps[i].URL, w.name, w.url)
		}
		if !ps[i].Alive() {
			t.Errorf("peer %d starts dead", i)
		}
	}
	if _, err := ParsePeers(" , "); err == nil {
		t.Error("blank list accepted")
	}
}

// TestPeerErrorClassification pins the typed-error surface the retry
// policy depends on: what is retryable and what is not.
func TestPeerErrorClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       *PeerError
		kind      ErrKind
		retryable bool
	}{
		{"connect refused", Classify("p", fmt.Errorf("dial: %w", syscall.ECONNREFUSED)), ConnectRefused, true},
		{"reset", Classify("p", fmt.Errorf("read: %w", syscall.ECONNRESET)), ConnectRefused, true},
		{"deadline", Classify("p", context_DeadlineExceeded()), Timeout, true},
		{"500", StatusError("p", http.StatusInternalServerError, ""), HTTPStatus, true},
		{"503", StatusError("p", http.StatusServiceUnavailable, ""), HTTPStatus, true},
		{"429", StatusError("p", http.StatusTooManyRequests, "2"), HTTPStatus, true},
		{"422", StatusError("p", http.StatusUnprocessableEntity, ""), HTTPStatus, false},
		{"404", StatusError("p", http.StatusNotFound, ""), HTTPStatus, false},
		{"breaker", &PeerError{Peer: "p", Kind: BreakerOpen}, BreakerOpen, true},
	}
	for _, c := range cases {
		if c.err.Kind != c.kind {
			t.Errorf("%s: kind %v, want %v", c.name, c.err.Kind, c.kind)
		}
		if c.err.Retryable() != c.retryable {
			t.Errorf("%s: retryable %v, want %v", c.name, c.err.Retryable(), c.retryable)
		}
		if c.err.Error() == "" {
			t.Errorf("%s: empty message", c.name)
		}
	}
	if got := StatusError("p", 429, "2").RetryAfter; got != 2*time.Second {
		t.Errorf("RetryAfter = %v, want 2s", got)
	}
	var pe *PeerError
	wrapped := fmt.Errorf("attempt: %w", Classify("p", syscall.ECONNREFUSED))
	if !errors.As(wrapped, &pe) {
		t.Error("PeerError does not unwrap with errors.As")
	}
}

func context_DeadlineExceeded() error {
	return fmt.Errorf("wait: %w", errDeadline{})
}

// errDeadline mimics a net.Error timeout without a real socket.
type errDeadline struct{}

func (errDeadline) Error() string   { return "i/o timeout" }
func (errDeadline) Timeout() bool   { return true }
func (errDeadline) Temporary() bool { return true }
