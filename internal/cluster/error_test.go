package cluster

import (
	"net/http"
	"testing"
	"time"
)

// TestParseRetryAfter pins both RFC 9110 header forms against one
// fixed clock: delay-seconds, the three date shapes http.ParseTime
// accepts, and the malformed/past values that must resolve to no
// floor at all.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name, header string
		want         time.Duration
	}{
		{"empty", "", 0},
		{"zero seconds", "0", 0},
		{"integer seconds", "2", 2 * time.Second},
		{"large integer", "120", 2 * time.Minute},
		{"negative seconds", "-3", 0},
		{"http-date ahead", "Sat, 08 Aug 2026 12:00:30 GMT", 30 * time.Second},
		{"http-date far ahead", "Sat, 08 Aug 2026 12:10:00 GMT", 10 * time.Minute},
		{"http-date now", "Sat, 08 Aug 2026 12:00:00 GMT", 0},
		{"http-date past", "Sat, 08 Aug 2026 11:59:00 GMT", 0},
		{"rfc850 date ahead", "Saturday, 08-Aug-26 12:00:05 GMT", 5 * time.Second},
		{"asctime date ahead", "Sat Aug  8 12:00:10 2026", 10 * time.Second},
		{"garbage", "soon", 0},
		{"fractional seconds", "1.5", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.header, now); got != c.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", c.name, c.header, got, c.want)
		}
		e := statusErrorAt("p", 429, c.header, now)
		if e.RetryAfter != c.want {
			t.Errorf("%s: statusErrorAt RetryAfter = %v, want %v", c.name, e.RetryAfter, c.want)
		}
		if e.Status != 429 || e.Kind != HTTPStatus {
			t.Errorf("%s: status/kind mangled: %+v", c.name, e)
		}
	}
}

// TestStatusErrorDateUsesRealClock sanity-checks the exported
// entrypoint against the live clock: a date one minute out yields a
// floor close to a minute, never above it.
func TestStatusErrorDateUsesRealClock(t *testing.T) {
	h := time.Now().Add(time.Minute).UTC().Format(http.TimeFormat)
	got := StatusError("p", 503, h).RetryAfter
	if got <= 50*time.Second || got > time.Minute {
		t.Fatalf("RetryAfter = %v, want in (50s, 1m]", got)
	}
}
