package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHealth is an /healthz endpoint whose behavior the test flips.
type flakyHealth struct {
	code atomic.Int64 // 0 = drop connection, else status
}

func (f *flakyHealth) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c := f.code.Load()
	if c == 0 {
		panic(http.ErrAbortHandler)
	}
	w.WriteHeader(int(c))
}

// TestProberMarksDownAndUp drives the streak accounting: FailAfter
// consecutive bad probes kill a peer, RiseAfter good ones revive it,
// and a single blip does neither.
func TestProberMarksDownAndUp(t *testing.T) {
	h := &flakyHealth{}
	h.code.Store(http.StatusOK)
	ts := httptest.NewServer(h)
	defer ts.Close()

	peers := []*Peer{{Name: "a", URL: ts.URL}}
	ring := mustRing(t, peers)
	p := NewProber(ring, ProberOptions{Interval: 10 * time.Millisecond, Timeout: time.Second, FailAfter: 2, RiseAfter: 2})
	ctx := context.Background()

	p.ProbeOnce(ctx)
	if !peers[0].Alive() {
		t.Fatal("healthy peer marked dead")
	}

	// One failure is a blip, not death.
	h.code.Store(http.StatusServiceUnavailable)
	p.ProbeOnce(ctx)
	if !peers[0].Alive() {
		t.Fatal("peer died after a single failed probe (FailAfter=2)")
	}
	// The second consecutive failure kills it.
	p.ProbeOnce(ctx)
	if peers[0].Alive() {
		t.Fatal("peer alive after FailAfter consecutive failures")
	}

	// One good probe is not enough with RiseAfter=2; two are.
	h.code.Store(http.StatusOK)
	p.ProbeOnce(ctx)
	if peers[0].Alive() {
		t.Fatal("peer revived after a single good probe (RiseAfter=2)")
	}
	p.ProbeOnce(ctx)
	if !peers[0].Alive() {
		t.Fatal("peer not revived after RiseAfter good probes")
	}
	if peers[0].Downs() != 1 {
		t.Fatalf("Downs = %d, want 1", peers[0].Downs())
	}
}

// TestProberDeadProcess: probing an address nothing listens on marks
// the peer dead (the blackout / kill -9 case).
func TestProberDeadProcess(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // the port is now refused

	peers := []*Peer{{Name: "gone", URL: url}}
	p := NewProber(mustRing(t, peers), ProberOptions{Interval: 10 * time.Millisecond, Timeout: 200 * time.Millisecond, FailAfter: 2})
	p.ProbeOnce(context.Background())
	p.ProbeOnce(context.Background())
	if peers[0].Alive() {
		t.Fatal("unreachable peer still alive after FailAfter probes")
	}
}

// TestProberCallbacks: OnDown and OnRise fire exactly once per
// transition — not once per failed or successful probe — and carry the
// transitioning peer.
func TestProberCallbacks(t *testing.T) {
	h := &flakyHealth{}
	h.code.Store(http.StatusOK)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var downs, rises atomic.Int64
	var lastPeer atomic.Value
	peers := []*Peer{{Name: "a", URL: ts.URL}}
	p := NewProber(mustRing(t, peers), ProberOptions{
		Interval:  10 * time.Millisecond,
		Timeout:   time.Second,
		FailAfter: 2,
		RiseAfter: 1,
		OnDown: func(peer *Peer) {
			downs.Add(1)
			lastPeer.Store(peer.Name)
		},
		OnRise: func(peer *Peer) {
			rises.Add(1)
			lastPeer.Store(peer.Name)
		},
	})
	ctx := context.Background()

	p.ProbeOnce(ctx)
	if downs.Load() != 0 || rises.Load() != 0 {
		t.Fatal("callback fired without a transition")
	}

	h.code.Store(0) // drop connections
	p.ProbeOnce(ctx)
	if downs.Load() != 0 {
		t.Fatal("OnDown fired before FailAfter consecutive failures")
	}
	p.ProbeOnce(ctx)
	if downs.Load() != 1 {
		t.Fatalf("OnDown fired %d times at the transition, want 1", downs.Load())
	}
	if got, _ := lastPeer.Load().(string); got != "a" {
		t.Fatalf("OnDown peer %q, want a", got)
	}
	// Further failures are not further transitions.
	p.ProbeOnce(ctx)
	if downs.Load() != 1 {
		t.Fatalf("OnDown fired %d times while already down, want 1", downs.Load())
	}

	h.code.Store(http.StatusOK)
	p.ProbeOnce(ctx)
	if rises.Load() != 1 {
		t.Fatalf("OnRise fired %d times at the transition, want 1", rises.Load())
	}
	p.ProbeOnce(ctx)
	if rises.Load() != 1 {
		t.Fatalf("OnRise fired %d times while already up, want 1", rises.Load())
	}
}

// TestProberRunLoop: the background loop probes on its interval and
// stops with its context.
func TestProberRunLoop(t *testing.T) {
	h := &flakyHealth{}
	h.code.Store(http.StatusOK)
	ts := httptest.NewServer(h)
	defer ts.Close()

	p := NewProber(mustRing(t, []*Peer{{Name: "a", URL: ts.URL}}),
		ProberOptions{Interval: 5 * time.Millisecond, Timeout: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { p.Run(ctx); close(done) }()

	deadline := time.Now().Add(5 * time.Second)
	for p.Rounds() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Rounds() < 3 {
		t.Fatal("prober loop never completed 3 rounds")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("prober did not stop with its context")
	}
}
