package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"syscall"
	"time"
)

// ErrKind classifies how a peer request failed. Retry policy hangs off
// the kind: transport-level failures and server-side errors are worth
// another peer or another attempt, client-side rejections are not.
type ErrKind int

const (
	// ConnectRefused: the peer's address answered with a refusal (or the
	// connection dropped mid-request) — the process is gone or restarting.
	ConnectRefused ErrKind = iota
	// Timeout: the attempt exceeded its per-attempt budget or the
	// transport timed out.
	Timeout
	// HTTPStatus: the peer answered with a non-2xx status; Status holds
	// it. 5xx and 429 are retryable, other 4xx are the caller's fault
	// and retrying cannot fix them.
	HTTPStatus
	// BreakerOpen: no attempt was made — the peer's circuit breaker is
	// open and its cooldown has not elapsed.
	BreakerOpen
)

// String implements fmt.Stringer.
func (k ErrKind) String() string {
	switch k {
	case ConnectRefused:
		return "connect-refused"
	case Timeout:
		return "timeout"
	case HTTPStatus:
		return "http-status"
	case BreakerOpen:
		return "breaker-open"
	}
	return fmt.Sprintf("ErrKind(%d)", int(k))
}

// PeerError is a classified failure of one attempt against one peer.
type PeerError struct {
	// Peer is the name of the peer the attempt targeted.
	Peer string
	// Kind classifies the failure.
	Kind ErrKind
	// Status is the HTTP status for Kind == HTTPStatus (0 otherwise).
	Status int
	// RetryAfter is the peer's 429/503 Retry-After hint, when present.
	RetryAfter time.Duration
	// Err is the underlying transport error, when there is one.
	Err error
}

// Error implements error.
func (e *PeerError) Error() string {
	switch e.Kind {
	case HTTPStatus:
		return fmt.Sprintf("peer %s: http %d", e.Peer, e.Status)
	case BreakerOpen:
		return fmt.Sprintf("peer %s: circuit breaker open", e.Peer)
	default:
		return fmt.Sprintf("peer %s: %s: %v", e.Peer, e.Kind, e.Err)
	}
}

// Unwrap exposes the transport error to errors.Is/As.
func (e *PeerError) Unwrap() error { return e.Err }

// Retryable reports whether another attempt (on this or another peer)
// can plausibly succeed. Connect refusals, timeouts, 5xx, and 429 are
// retryable; other 4xx mean the request itself is bad and every peer
// will reject it the same way.
func (e *PeerError) Retryable() bool {
	switch e.Kind {
	case ConnectRefused, Timeout, BreakerOpen:
		return true
	case HTTPStatus:
		return e.Status >= 500 || e.Status == http.StatusTooManyRequests
	}
	return false
}

// Classify wraps a transport-level error from an attempt against peer
// into a PeerError. Status-based failures are built by the caller (they
// have a response, not an error).
func Classify(peer string, err error) *PeerError {
	kind := ConnectRefused
	switch {
	case errors.Is(err, context.DeadlineExceeded), os.IsTimeout(err):
		kind = Timeout
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			kind = Timeout
		} else if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) {
			kind = ConnectRefused
		}
	}
	return &PeerError{Peer: peer, Kind: kind, Err: err}
}

// StatusError builds the PeerError for a non-2xx response, folding in
// the Retry-After header when the peer sent one. Both RFC 9110 forms
// are understood: delay-seconds ("2") and HTTP-date ("Mon, 02 Jan 2006
// 15:04:05 GMT", plus the legacy RFC 850 and asctime shapes
// http.ParseTime accepts). A malformed header, like an absent one,
// simply leaves RetryAfter zero — a bad hint must never make a failure
// unretryable.
func StatusError(peer string, status int, retryAfter string) *PeerError {
	return statusErrorAt(peer, status, retryAfter, time.Now())
}

// statusErrorAt is StatusError with the clock injected, so the
// HTTP-date arithmetic is testable.
func statusErrorAt(peer string, status int, retryAfter string, now time.Time) *PeerError {
	e := &PeerError{Peer: peer, Kind: HTTPStatus, Status: status}
	e.RetryAfter = parseRetryAfter(retryAfter, now)
	return e
}

// parseRetryAfter resolves a Retry-After header value into a wait
// duration relative to now. Unparseable values, negative delays, and
// dates already in the past all resolve to 0.
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}
