package client

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit breaker position.
type BreakerState int

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: requests are refused without touching the peer until the
	// cooldown elapses.
	Open
	// HalfOpen: the cooldown elapsed; exactly one probe request is let
	// through. Success closes the breaker, failure re-opens it (with the
	// cooldown restarted).
	HalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one peer's circuit breaker. It exists so a dead or
// misbehaving peer stops absorbing attempts (and their timeouts)
// between prober rounds: Threshold consecutive failures open it, the
// cooldown admits a single half-open probe, and one success closes it
// again.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	// transition counters, for metrics.
	opens, closes int64
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether an attempt may proceed. In Open state it flips
// to HalfOpen once the cooldown has elapsed and admits exactly one
// probe; concurrent callers see false until that probe resolves.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success reports a completed attempt that worked.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.closes++
	}
	b.state = Closed
	b.fails = 0
	b.probing = false
}

// Failure reports a completed attempt that failed (with a retryable,
// peer-attributable error — 4xx rejections don't count, the caller
// filters).
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		// The probe failed: straight back to Open, cooldown restarted.
		b.state = Open
		b.openedAt = b.now()
		b.probing = false
		b.opens++
	case Closed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = Open
			b.openedAt = b.now()
			b.opens++
		}
	}
}

// Expire ends an Open breaker's cooldown immediately by backdating the
// open timestamp, so the next Allow admits a half-open probe right
// away. The prober calls this (via Client.NoteRisen) when a dead peer
// answers /healthz again: the breaker opened on stale evidence, and
// waiting out the rest of the cooldown would keep routing around a
// peer the prober has just proven alive. The closed→open→half-open
// discipline itself is untouched — the probe must still succeed before
// full traffic returns.
func (b *breaker) Expire() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open {
		b.openedAt = b.openedAt.Add(-b.cooldown)
	}
}

// State returns the current position, surfacing Open→HalfOpen
// eligibility without consuming the probe slot.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.now().Sub(b.openedAt) >= b.cooldown {
		return HalfOpen
	}
	return b.state
}

// Transitions returns the open and close (recovery) counts.
func (b *breaker) Transitions() (opens, closes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.closes
}
