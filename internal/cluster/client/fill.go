package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"

	"repro/internal/cluster"
)

// Warm-fill transport: the client-side half of the fleet's cache
// digest/fill/handoff protocol. The payloads are opaque bytes here —
// the serving layer owns the plan wire format — but the reliability
// policy is shared with Do: every call is breaker-gated and feeds the
// same per-peer breaker, so a warm-fill sweep cannot dog-pile a peer
// the planning path has already proven dead, and a fill success counts
// as evidence the peer is healthy again.

// errBreakerOpen builds the typed refusal for a peer whose breaker
// rejected the call locally.
func errBreakerOpen(peer string) *cluster.PeerError {
	return &cluster.PeerError{Peer: peer, Kind: cluster.BreakerOpen}
}

// FetchDigest retrieves a peer's cache digest (GET /cache/digest),
// returning the response body verbatim.
func (c *Client) FetchDigest(ctx context.Context, peer *cluster.Peer) ([]byte, error) {
	return c.roundTrip(ctx, peer, http.MethodGet, "/cache/digest", nil)
}

// FetchFill retrieves one serialized plan from a peer
// (GET /cache/fill?key=<token>). A 404 — the peer evicted or never had
// the plan — is returned as a *cluster.PeerError with StatusNotFound
// and gives the breaker positive feedback (the peer answered fine).
func (c *Client) FetchFill(ctx context.Context, peer *cluster.Peer, keyToken string) ([]byte, error) {
	return c.roundTrip(ctx, peer, http.MethodGet, "/cache/fill?key="+keyToken, nil)
}

// PushFill offers one serialized plan to a peer (POST /cache/fill) —
// the hinted-handoff push a fallback peer sends to a risen owner.
func (c *Client) PushFill(ctx context.Context, peer *cluster.Peer, plan []byte) error {
	_, err := c.roundTrip(ctx, peer, http.MethodPost, "/cache/fill", plan)
	return err
}

// roundTrip is one breaker-gated request against one named peer, under
// the client's attempt timeout. There are no retries or hedges: the
// warm-fill loops are periodic, so a failed round simply waits for the
// next one instead of amplifying load on a struggling fleet.
func (c *Client) roundTrip(ctx context.Context, peer *cluster.Peer, method, path string, body []byte) ([]byte, error) {
	b, ok := c.breakers[peer.Name]
	if !ok {
		return nil, fmt.Errorf("client: unknown peer %q", peer.Name)
	}
	if !b.Allow() {
		c.breakerRefusals.Add(1)
		return nil, errBreakerOpen(peer.Name)
	}
	actx, cancel := context.WithTimeout(ctx, c.opt.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, peer.URL+path, rd)
	if err != nil {
		b.Failure()
		return nil, &cluster.PeerError{Peer: peer.Name, Kind: cluster.ConnectRefused, Err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's context died (shutdown, drain): no verdict on
			// the peer.
			return nil, ctx.Err()
		}
		pe := cluster.Classify(peer.Name, err)
		b.Failure()
		return nil, pe
	}
	raw, rerr := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes))
	resp.Body.Close()
	if rerr != nil {
		pe := cluster.Classify(peer.Name, rerr)
		b.Failure()
		return nil, pe
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		b.Success()
		return raw, nil
	}
	pe := cluster.StatusError(peer.Name, resp.StatusCode, resp.Header.Get("Retry-After"))
	if pe.Retryable() {
		b.Failure()
	} else {
		// 404 and friends: the peer is healthy, it just lacks the plan.
		b.Success()
	}
	return nil, pe
}
