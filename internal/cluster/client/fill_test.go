package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
)

// switchable is a handler whose health the test flips; unhealthy it
// drops the connection mid-request, the shape a blackout or kill -9
// presents to clients.
type switchable struct {
	healthy atomic.Bool
	hits    atomic.Int64
}

func (s *switchable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.hits.Add(1)
	if !s.healthy.Load() {
		panic(http.ErrAbortHandler)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(`{"ok":true}`))
}

// TestNoteRisenExpiresBreaker is the prober/breaker coupling
// regression test: a peer that blacked out long enough to open its
// breaker rises again, the prober's OnRise verdict reaches the client
// through NoteRisen, and the very next request probes the peer — the
// open cooldown (an hour here, so the test cannot pass by waiting it
// out) no longer gates recovery.
func TestNoteRisenExpiresBreaker(t *testing.T) {
	h := &switchable{}
	ring, done := fleet(t, map[string]http.Handler{"solo": h})
	defer done()
	c := New(ring, Options{
		MaxAttempts:      1,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
		BaseBackoff:      time.Millisecond,
		AttemptTimeout:   time.Second,
	})
	key := keyOwnedBy(t, ring, "solo")

	for i := 0; i < 3; i++ {
		if _, err := c.Do(context.Background(), PlanRequest{Key: key}); err == nil {
			t.Fatalf("attempt %d against a blacked-out peer succeeded", i)
		}
	}
	if st := c.BreakerState("solo"); st != Open {
		t.Fatalf("breaker %v after threshold failures, want open", st)
	}
	// Control: without the rise verdict the hour-long cooldown refuses.
	var pe *cluster.PeerError
	if _, err := c.Do(context.Background(), PlanRequest{Key: key}); !errors.As(err, &pe) || pe.Kind != cluster.BreakerOpen {
		t.Fatalf("open breaker returned %v, want BreakerOpen", err)
	}

	// The blackout ends. One probe round marks the peer up; its OnRise
	// callback must put the breaker into half-open immediately.
	h.healthy.Store(true)
	peer := ring.ByName("solo")
	peer.MarkDown()
	prober := cluster.NewProber(ring, cluster.ProberOptions{
		Interval:  10 * time.Millisecond,
		Timeout:   time.Second,
		FailAfter: 2,
		RiseAfter: 1,
		OnRise:    func(p *cluster.Peer) { c.NoteRisen(p.Name) },
	})
	prober.ProbeOnce(context.Background())
	if !peer.Alive() {
		t.Fatal("risen peer not marked alive after one good probe")
	}
	if st := c.BreakerState("solo"); st != HalfOpen {
		t.Fatalf("breaker %v within one probe interval of the rise, want half-open", st)
	}
	res, err := c.Do(context.Background(), PlanRequest{Key: key})
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("half-open probe after rise: res=%+v err=%v", res, err)
	}
	if st := c.BreakerState("solo"); st != Closed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}

	// Unknown names are ignored, and expiring a closed breaker is a
	// no-op rather than a state change.
	c.NoteRisen("no-such-peer")
	c.NoteRisen("solo")
	if st := c.BreakerState("solo"); st != Closed {
		t.Fatalf("NoteRisen on a closed breaker moved it to %v", st)
	}
}

// TestWarmFillTransport exercises the digest/fill/push round-trips: the
// payloads travel verbatim, a 404 fill is a typed miss that counts as
// positive breaker feedback, and unknown peers are refused.
func TestWarmFillTransport(t *testing.T) {
	var pushed atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("/cache/digest", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"peer":"a","keys":["k1","k2"]}`))
	})
	mux.HandleFunc("/cache/fill", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			if r.URL.Query().Get("key") != "k1" {
				http.Error(w, "plan not resident", http.StatusNotFound)
				return
			}
			_, _ = w.Write([]byte(`{"plan":"one"}`))
		case http.MethodPost:
			raw, _ := io.ReadAll(r.Body)
			pushed.Store(string(raw))
			w.WriteHeader(http.StatusNoContent)
		}
	})
	ring, done := fleet(t, map[string]http.Handler{"a": mux})
	defer done()
	c := New(ring, Options{AttemptTimeout: time.Second})
	peer := ring.ByName("a")
	ctx := context.Background()

	raw, err := c.FetchDigest(ctx, peer)
	if err != nil || string(raw) != `{"peer":"a","keys":["k1","k2"]}` {
		t.Fatalf("digest: %q, %v", raw, err)
	}
	body, err := c.FetchFill(ctx, peer, "k1")
	if err != nil || string(body) != `{"plan":"one"}` {
		t.Fatalf("fill k1: %q, %v", body, err)
	}

	// k2 was evicted on the far side: a 404 is a typed miss, and the
	// answering peer is healthy, so the breaker stays closed.
	var pe *cluster.PeerError
	if _, err := c.FetchFill(ctx, peer, "k2"); !errors.As(err, &pe) || pe.Status != http.StatusNotFound {
		t.Fatalf("fill miss returned %v, want http 404", err)
	}
	if st := c.BreakerState("a"); st != Closed {
		t.Fatalf("fill miss moved the breaker to %v", st)
	}

	if err := c.PushFill(ctx, peer, []byte(`{"plan":"handoff"}`)); err != nil {
		t.Fatalf("push: %v", err)
	}
	if got, _ := pushed.Load().(string); got != `{"plan":"handoff"}` {
		t.Fatalf("pushed body %q", got)
	}

	if _, err := c.FetchDigest(ctx, &cluster.Peer{Name: "ghost", URL: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("digest from a peer outside the ring succeeded")
	}
}

// TestWarmFillBreakerGated: warm-fill traffic shares the planning
// path's breakers — a peer proven dead is not dog-piled by the
// periodic sweep, and NoteRisen re-admits it.
func TestWarmFillBreakerGated(t *testing.T) {
	dead := httptest.NewServer(http.NewServeMux())
	deadURL := dead.URL
	dead.Close()
	ring, err := cluster.NewRing([]*cluster.Peer{{Name: "a", URL: deadURL}})
	if err != nil {
		t.Fatal(err)
	}
	c := New(ring, Options{
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		AttemptTimeout:   time.Second,
	})
	peer := ring.ByName("a")
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := c.FetchDigest(ctx, peer); err == nil {
			t.Fatalf("digest %d from a dead peer succeeded", i)
		}
	}
	if st := c.BreakerState("a"); st != Open {
		t.Fatalf("breaker %v after repeated digest failures, want open", st)
	}
	var pe *cluster.PeerError
	if _, err := c.FetchDigest(ctx, peer); !errors.As(err, &pe) || pe.Kind != cluster.BreakerOpen {
		t.Fatalf("gated digest returned %v, want BreakerOpen", err)
	}
	if got := c.Snap().BreakerRefusals; got == 0 {
		t.Fatal("breaker refusal not counted")
	}

	// The rise verdict re-admits warm-fill traffic too; the attempt is
	// made (and fails against the still-dead address) instead of being
	// refused locally.
	c.NoteRisen("a")
	if _, err := c.FetchDigest(ctx, peer); !errors.As(err, &pe) || pe.Kind == cluster.BreakerOpen {
		t.Fatalf("post-rise digest refused locally: %v", err)
	}
}
