// Package client is the fault-tolerant planning client of the pland
// fleet. It routes a plan request to its fingerprint's owner on the
// consistent-hash ring and layers the reliability policy on top:
//
//   - per-attempt timeouts, so one stuck peer cannot absorb the whole
//     request budget;
//   - capped exponential backoff with jitter between retries, honoring
//     a 429's Retry-After hint as a floor;
//   - a hedged second request to the next ring peer when the first has
//     not answered within HedgeAfter — tail latency is bought with one
//     duplicate request, and the fleet's per-peer singleflight keeps a
//     hedge from duplicating a cold build when both land on live peers;
//   - a per-peer circuit breaker (closed → open → half-open) so a dead
//     peer stops absorbing attempts and their timeouts between health
//     probes.
//
// Failures are typed (cluster.PeerError): connect refusals, timeouts,
// 5xx, and 429 are retryable on the next ring peer; any other 4xx is a
// property of the request and is returned immediately — no peer will
// judge it differently.
package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// Options configures a Client. The zero value is usable; every field
// falls back to the documented default.
type Options struct {
	// AttemptTimeout bounds each individual attempt; 0 means 10s.
	AttemptTimeout time.Duration
	// MaxAttempts bounds launched requests per Do (retries and hedges
	// both count); 0 means 3.
	MaxAttempts int
	// BaseBackoff is the first retry delay; 0 means 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means 2s.
	MaxBackoff time.Duration
	// HedgeAfter launches a hedged request to the next ring peer when
	// the first attempt has not answered within this duration; 0
	// disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's breaker; 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses before
	// admitting a half-open probe; 0 means 2s.
	BreakerCooldown time.Duration
	// Transport overrides the HTTP transport (chaos injection, tests);
	// nil means http.DefaultTransport.
	Transport http.RoundTripper
	// Seed seeds the jitter PRNG so tests and chaos runs are
	// reproducible; 0 means 1.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 10 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.Transport == nil {
		o.Transport = http.DefaultTransport
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// PlanRequest is one planning call: the routing key (the workload
// fingerprint), the raw query string, the request body, and the
// fleet-facing headers.
type PlanRequest struct {
	// Key routes the request: its ring owner is tried first.
	Key uint64
	// Path is the request path; empty means "/plan". The batch fan-out
	// sets "/plan/batch" and ships a whole owner group in one body —
	// retry, hedging, and breaker policy apply to the group exactly as
	// they would to a single plan.
	Path string
	// Query is the raw query string ("metric=ADAPT-L&verify=1").
	Query string
	// Criticality is sent as X-Plan-Criticality when non-empty, so an
	// overloaded peer sheds Optional requests before Mandatory ones.
	Criticality string
	// Routed marks the request as already peer-routed
	// (X-Plan-Routed: 1): the receiving peer plans locally instead of
	// proxying again, which is what breaks forwarding loops.
	Routed bool
	// Body is the workload JSON.
	Body []byte
}

// PlanResult is the answer of the attempt that won.
type PlanResult struct {
	// Status and Body are the peer's HTTP answer verbatim.
	Status int
	Body   []byte
	// Quality is the peer's X-Plan-Quality header ("full", or
	// "degraded" when the plan was served under brownout); empty when
	// the peer sent none (non-200s, older peers).
	Quality string
	// Peer is the name of the peer that answered.
	Peer string
	// Attempts is how many requests were launched (1 = first try won).
	Attempts int
	// Hedged reports that the winning response came from a hedged
	// request, not the primary.
	Hedged bool
}

// Client is the fleet planning client. It is safe for concurrent use.
type Client struct {
	ring *cluster.Ring
	opt  Options
	http *http.Client

	breakers map[string]*breaker

	rmu sync.Mutex
	rnd *rand.Rand

	// counters for metrics.
	attempts, retries, hedges, hedgeWins atomic.Int64
	successes, breakerRefusals           atomic.Int64
	failures                             [4]atomic.Int64 // by cluster.ErrKind
}

// maxRespBytes bounds how much of a peer response the client buffers.
const maxRespBytes = 64 << 20

// New builds a client over the ring.
func New(ring *cluster.Ring, opt Options) *Client {
	opt = opt.withDefaults()
	c := &Client{
		ring:     ring,
		opt:      opt,
		http:     &http.Client{Transport: opt.Transport},
		breakers: make(map[string]*breaker, len(ring.Peers())),
		rnd:      rand.New(rand.NewSource(opt.Seed)),
	}
	for _, p := range ring.Peers() {
		c.breakers[p.Name] = newBreaker(opt.BreakerThreshold, opt.BreakerCooldown, time.Now)
	}
	return c
}

// BreakerState returns the named peer's breaker position (for metrics
// and tests).
func (c *Client) BreakerState(peer string) BreakerState {
	b, ok := c.breakers[peer]
	if !ok {
		return Closed
	}
	return b.State()
}

// NoteRisen couples the health prober's rise verdict to the breaker:
// when the prober marks a peer alive again, the peer's open breaker
// has its cooldown expired so the very next request probes it instead
// of waiting out the remainder of the open timer. Wire it as the
// prober's OnRise callback. Unknown names are ignored.
func (c *Client) NoteRisen(peer string) {
	if b, ok := c.breakers[peer]; ok {
		b.Expire()
	}
}

// outcome is what one attempt goroutine reports back.
type outcome struct {
	res       *PlanResult
	err       *cluster.PeerError
	hedged    bool
	abandoned bool // the attempt died because Do already returned a winner
}

// Do runs one plan request under the full reliability policy. The
// returned error is nil when some attempt produced a definitive answer
// — a 2xx or a non-retryable 4xx; the caller reads Status to tell them
// apart. When every attempt failed retryably, Do returns the last
// classified *cluster.PeerError, alongside the last HTTP answer (e.g.
// a final 429 with its body) if there was one.
func (c *Client) Do(ctx context.Context, req PlanRequest) (*PlanResult, error) {
	prefs := c.ring.Preference(req.Key)
	attemptCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	results := make(chan outcome, c.opt.MaxAttempts)

	launched, inflight, cursor := 0, 0, 0
	start := func(hedged bool) bool {
		if launched >= c.opt.MaxAttempts {
			return false
		}
		peer := c.pick(prefs, &cursor)
		if peer == nil {
			return false
		}
		launched++
		inflight++
		c.attempts.Add(1)
		if hedged {
			c.hedges.Add(1)
		} else if launched > 1 {
			c.retries.Add(1)
		}
		go func() { results <- c.attempt(attemptCtx, ctx, peer, req, hedged) }()
		return true
	}

	if !start(false) {
		return nil, &cluster.PeerError{Peer: "*", Kind: cluster.BreakerOpen}
	}

	var hedgeC <-chan time.Time
	if c.opt.HedgeAfter > 0 {
		t := time.NewTimer(c.opt.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var retryC <-chan time.Time
	var lastErr *cluster.PeerError
	var lastRes *PlanResult

	for {
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return lastRes, lastErr
			}
			return lastRes, ctx.Err()

		case <-hedgeC:
			hedgeC = nil
			if inflight > 0 {
				start(true)
			}

		case <-retryC:
			retryC = nil
			if !start(false) && inflight == 0 {
				return lastRes, lastErr
			}

		case o := <-results:
			inflight--
			if o.abandoned {
				if inflight == 0 && retryC == nil {
					// Nothing else running and no retry scheduled: the only
					// way here is the caller's context dying mid-attempt.
					if lastErr != nil {
						return lastRes, lastErr
					}
					return lastRes, ctx.Err()
				}
				continue
			}
			if o.err == nil {
				cancelAll()
				c.successes.Add(1)
				if o.hedged {
					c.hedgeWins.Add(1)
				}
				o.res.Attempts = launched
				o.res.Hedged = o.hedged
				return o.res, nil
			}
			c.failures[int(o.err.Kind)].Add(1)
			if !o.err.Retryable() {
				// A definitive 4xx: every peer would reject it the same way.
				cancelAll()
				o.res.Attempts = launched
				o.res.Hedged = o.hedged
				return o.res, nil
			}
			lastErr = o.err
			if o.res != nil {
				lastRes = o.res
			}
			if inflight > 0 || retryC != nil {
				continue // a sibling attempt or a scheduled retry may still win
			}
			if launched >= c.opt.MaxAttempts {
				return lastRes, lastErr
			}
			t := time.NewTimer(c.backoff(launched, o.err.RetryAfter))
			defer t.Stop()
			retryC = t.C
		}
	}
}

// pick returns the next preference-ordered peer whose breaker admits
// an attempt, or nil when every peer refuses.
func (c *Client) pick(prefs []*cluster.Peer, cursor *int) *cluster.Peer {
	for i := 0; i < len(prefs); i++ {
		p := prefs[*cursor%len(prefs)]
		*cursor++
		if c.breakers[p.Name].Allow() {
			return p
		}
		c.breakerRefusals.Add(1)
	}
	return nil
}

// attempt runs one HTTP request against one peer and classifies the
// outcome. Breaker feedback happens here: a 2xx, a non-retryable 4xx,
// or a deliberate shed (429, or 503 with Retry-After) proves the peer
// healthy; a transport failure, 5xx, or bare 503 counts against it. An
// attempt canceled because a sibling already won gives no feedback at
// all — losing a hedge race is not a peer failure.
func (c *Client) attempt(ctx, parent context.Context, peer *cluster.Peer, req PlanRequest, hedged bool) outcome {
	actx, cancel := context.WithTimeout(ctx, c.opt.AttemptTimeout)
	defer cancel()
	path := req.Path
	if path == "" {
		path = "/plan"
	}
	url := peer.URL + path
	if req.Query != "" {
		url += "?" + req.Query
	}
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(req.Body))
	if err != nil {
		return outcome{err: &cluster.PeerError{Peer: peer.Name, Kind: cluster.ConnectRefused, Err: err}, hedged: hedged}
	}
	hreq.Header.Set("Content-Type", "application/json")
	if req.Criticality != "" {
		hreq.Header.Set("X-Plan-Criticality", req.Criticality)
	}
	if req.Routed {
		hreq.Header.Set("X-Plan-Routed", "1")
	}

	resp, err := c.http.Do(hreq)
	if err != nil {
		if ctx.Err() != nil && parent.Err() == nil {
			// cancelAll fired: a sibling attempt won the race.
			return outcome{abandoned: true, hedged: hedged}
		}
		if parent.Err() != nil && actx.Err() != context.DeadlineExceeded {
			// The caller's own context died; not the peer's fault.
			return outcome{abandoned: true, hedged: hedged}
		}
		pe := cluster.Classify(peer.Name, err)
		c.breakers[peer.Name].Failure()
		return outcome{err: pe, hedged: hedged}
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes))
	resp.Body.Close()
	if rerr != nil {
		if ctx.Err() != nil && parent.Err() == nil {
			return outcome{abandoned: true, hedged: hedged}
		}
		pe := cluster.Classify(peer.Name, rerr)
		c.breakers[peer.Name].Failure()
		return outcome{err: pe, hedged: hedged}
	}
	res := &PlanResult{Status: resp.StatusCode, Body: body, Peer: peer.Name,
		Quality: resp.Header.Get("X-Plan-Quality")}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		c.breakers[peer.Name].Success()
		return outcome{res: res, hedged: hedged}
	}
	pe := cluster.StatusError(peer.Name, resp.StatusCode, resp.Header.Get("Retry-After"))
	// A 429, or a 503 carrying an explicit Retry-After, is deliberate
	// shedding from a peer that is up and answering fast. Counting it
	// as a breaker failure would turn every fleet-wide overload into a
	// client-side outage: breakers open on all peers and even cache
	// hits get refused locally. Only a bare 503 (draining, sick proxy)
	// and real transport/5xx failures feed the breaker.
	policyShed := resp.StatusCode == http.StatusTooManyRequests ||
		(resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "")
	switch {
	case policyShed:
		c.breakers[peer.Name].Success()
	case pe.Retryable():
		c.breakers[peer.Name].Failure()
	default:
		// The peer is healthy; the request is bad.
		c.breakers[peer.Name].Success()
	}
	return outcome{res: res, err: pe, hedged: hedged}
}

// backoff computes the delay before launch number n (1-based count of
// already-launched attempts): capped exponential growth with ±50%
// jitter, floored by the peer's Retry-After hint when one was sent.
// The floor itself is capped at the attempt timeout — an HTTP-date
// hint far in the future (a miscalibrated peer, clock skew) must not
// park the request for longer than a single attempt is even allowed
// to run.
func (c *Client) backoff(n int, retryAfter time.Duration) time.Duration {
	d := c.opt.BaseBackoff << uint(n-1)
	if d > c.opt.MaxBackoff || d <= 0 {
		d = c.opt.MaxBackoff
	}
	c.rmu.Lock()
	jittered := d/2 + time.Duration(c.rnd.Int63n(int64(d)))
	c.rmu.Unlock()
	if retryAfter > c.opt.AttemptTimeout {
		retryAfter = c.opt.AttemptTimeout
	}
	if retryAfter > jittered {
		return retryAfter
	}
	return jittered
}

// Snapshot is the client's counter state at one instant.
type Snapshot struct {
	Attempts, Retries, Hedges, HedgeWins int64
	Successes, BreakerRefusals           int64
	// Failures indexes by cluster.ErrKind.
	Failures [4]int64
	// BreakerOpens / BreakerCloses sum transitions over all peers.
	BreakerOpens, BreakerCloses int64
}

// Snap returns the current counters.
func (c *Client) Snap() Snapshot {
	s := Snapshot{
		Attempts:        c.attempts.Load(),
		Retries:         c.retries.Load(),
		Hedges:          c.hedges.Load(),
		HedgeWins:       c.hedgeWins.Load(),
		Successes:       c.successes.Load(),
		BreakerRefusals: c.breakerRefusals.Load(),
	}
	for i := range s.Failures {
		s.Failures[i] = c.failures[i].Load()
	}
	for _, b := range c.breakers {
		o, cl := b.Transitions()
		s.BreakerOpens += o
		s.BreakerCloses += cl
	}
	return s
}

// WriteMetrics renders the client counters and per-peer breaker state
// in the Prometheus text format, with every metric name prefixed (the
// serving layer uses "pland", cmd/loadgen uses "loadgen").
func (c *Client) WriteMetrics(w io.Writer, prefix string) {
	s := c.Snap()
	emit := func(name, kind, help string, rows ...string) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s %s\n", prefix, name, help, prefix, name, kind)
		for _, r := range rows {
			fmt.Fprintf(w, "%s_%s%s\n", prefix, name, r)
		}
	}
	emit("client_attempts_total", "counter", "Peer requests launched (first tries, retries, hedges).",
		fmt.Sprintf(" %d", s.Attempts))
	emit("client_retries_total", "counter", "Backed-off retry launches.",
		fmt.Sprintf(" %d", s.Retries))
	emit("client_hedges_total", "counter", "Hedged second requests launched.",
		fmt.Sprintf(" %d", s.Hedges))
	emit("client_hedge_wins_total", "counter", "Requests won by the hedged attempt.",
		fmt.Sprintf(" %d", s.HedgeWins))
	emit("client_breaker_refusals_total", "counter", "Attempts refused locally by an open breaker.",
		fmt.Sprintf(" %d", s.BreakerRefusals))
	kinds := []cluster.ErrKind{cluster.ConnectRefused, cluster.Timeout, cluster.HTTPStatus, cluster.BreakerOpen}
	rows := make([]string, len(kinds))
	for i, k := range kinds {
		rows[i] = fmt.Sprintf("{kind=%q} %d", k.String(), s.Failures[int(k)])
	}
	emit("client_failures_total", "counter", "Attempt failures by classified kind.", rows...)

	var stateRows, openRows, closeRows, upRows []string
	for _, p := range c.ring.Peers() {
		b := c.breakers[p.Name]
		o, cl := b.Transitions()
		stateRows = append(stateRows, fmt.Sprintf("{peer=%q} %d", p.Name, int(b.State())))
		openRows = append(openRows, fmt.Sprintf("{peer=%q} %d", p.Name, o))
		closeRows = append(closeRows, fmt.Sprintf("{peer=%q} %d", p.Name, cl))
		up := 0
		if p.Alive() {
			up = 1
		}
		upRows = append(upRows, fmt.Sprintf("{peer=%q} %d", p.Name, up))
	}
	emit("peer_breaker_state", "gauge", "Circuit breaker position per peer (0 closed, 1 open, 2 half-open).", stateRows...)
	emit("peer_breaker_opens_total", "counter", "Breaker closed/half-open to open transitions per peer.", openRows...)
	emit("peer_breaker_closes_total", "counter", "Breaker half-open to closed recoveries per peer.", closeRows...)
	emit("peer_up", "gauge", "1 while the health prober considers the peer alive.", upRows...)
}
