package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
)

// keyOwnedBy finds a routing key whose ring owner is the named peer.
func keyOwnedBy(t *testing.T, ring *cluster.Ring, name string) uint64 {
	t.Helper()
	for k := uint64(0); k < 1_000_000; k++ {
		key := k * 0x9e3779b97f4a7c15
		if ring.Owner(key).Name == name {
			return key
		}
	}
	t.Fatalf("no key owned by %s", name)
	return 0
}

// fleet builds a ring of named httptest servers.
func fleet(t *testing.T, handlers map[string]http.Handler) (*cluster.Ring, func()) {
	t.Helper()
	var peers []*cluster.Peer
	var servers []*httptest.Server
	for name, h := range handlers {
		ts := httptest.NewServer(h)
		servers = append(servers, ts)
		peers = append(peers, &cluster.Peer{Name: name, URL: ts.URL})
	}
	ring, err := cluster.NewRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	return ring, func() {
		for _, ts := range servers {
			ts.Close()
		}
	}
}

// countingHandler answers with a fixed status and counts plan hits.
func countingHandler(status int, hits *atomic.Int64, delay time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		w.WriteHeader(status)
		_, _ = w.Write([]byte(`{"ok":true}`))
	})
}

// TestRetryFailsOver: a 500 from the owner retries onto the next ring
// peer and succeeds; the failure shows up typed in the counters.
func TestRetryFailsOver(t *testing.T) {
	var aHits, bHits atomic.Int64
	ring, done := fleet(t, map[string]http.Handler{
		"a": countingHandler(http.StatusInternalServerError, &aHits, 0),
		"b": countingHandler(http.StatusOK, &bHits, 0),
	})
	defer done()
	c := New(ring, Options{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})

	res, err := c.Do(context.Background(), PlanRequest{Key: keyOwnedBy(t, ring, "a")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || res.Peer != "b" {
		t.Fatalf("got %d from %s, want 200 from b", res.Status, res.Peer)
	}
	if res.Attempts != 2 || res.Hedged {
		t.Fatalf("attempts=%d hedged=%v, want 2 unhedged", res.Attempts, res.Hedged)
	}
	s := c.Snap()
	if s.Retries != 1 || s.Failures[int(cluster.HTTPStatus)] != 1 {
		t.Fatalf("counters: %+v", s)
	}
	if aHits.Load() != 1 || bHits.Load() != 1 {
		t.Fatalf("hits a=%d b=%d, want 1/1", aHits.Load(), bHits.Load())
	}
}

// TestNonRetryable4xxReturnsImmediately: a 422 is the request's fault;
// the client hands it back without burning attempts on other peers.
func TestNonRetryable4xxReturnsImmediately(t *testing.T) {
	var aHits, bHits atomic.Int64
	ring, done := fleet(t, map[string]http.Handler{
		"a": countingHandler(http.StatusUnprocessableEntity, &aHits, 0),
		"b": countingHandler(http.StatusOK, &bHits, 0),
	})
	defer done()
	c := New(ring, Options{BaseBackoff: time.Millisecond})

	res, err := c.Do(context.Background(), PlanRequest{Key: keyOwnedBy(t, ring, "a")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusUnprocessableEntity || res.Attempts != 1 {
		t.Fatalf("got %d after %d attempts, want 422 after 1", res.Status, res.Attempts)
	}
	if bHits.Load() != 0 {
		t.Fatal("non-retryable rejection leaked to a second peer")
	}
	if s := c.Snap(); s.Retries != 0 {
		t.Fatalf("retried a non-retryable failure: %+v", s)
	}
}

// TestConnectRefusedFailsOver: a peer nobody listens on is classified
// connect-refused and the next ring peer serves.
func TestConnectRefusedFailsOver(t *testing.T) {
	var bHits atomic.Int64
	dead := httptest.NewServer(http.NewServeMux())
	deadURL := dead.URL
	dead.Close()
	live := httptest.NewServer(countingHandler(http.StatusOK, &bHits, 0))
	defer live.Close()

	ring, err := cluster.NewRing([]*cluster.Peer{
		{Name: "a", URL: deadURL},
		{Name: "b", URL: live.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(ring, Options{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	res, err := c.Do(context.Background(), PlanRequest{Key: keyOwnedBy(t, ring, "a")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Peer != "b" {
		t.Fatalf("served by %s, want b", res.Peer)
	}
	if s := c.Snap(); s.Failures[int(cluster.ConnectRefused)] != 1 {
		t.Fatalf("refusal not classified: %+v", s)
	}
}

// TestHonorsRetryAfter: a 429's Retry-After floors the retry delay
// even when the configured backoff is much smaller.
func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	ring, done := fleet(t, map[string]http.Handler{"a": h})
	defer done()
	c := New(ring, Options{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})

	startAt := time.Now()
	res, err := c.Do(context.Background(), PlanRequest{Key: keyOwnedBy(t, ring, "a")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK {
		t.Fatalf("status %d", res.Status)
	}
	if elapsed := time.Since(startAt); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v, want >= Retry-After of 1s", elapsed)
	}
}

// TestBackoffJitterBounds pins the delay formula: capped exponential
// with jitter in [d/2, 3d/2], floored by Retry-After.
func TestBackoffJitterBounds(t *testing.T) {
	ring, done := fleet(t, map[string]http.Handler{"a": http.NewServeMux()})
	defer done()
	c := New(ring, Options{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 800 * time.Millisecond, Seed: 7})
	for n := 1; n <= 6; n++ {
		want := c.opt.BaseBackoff << uint(n-1)
		if want > c.opt.MaxBackoff {
			want = c.opt.MaxBackoff
		}
		for i := 0; i < 50; i++ {
			d := c.backoff(n, 0)
			if d < want/2 || d > want*3/2 {
				t.Fatalf("backoff(%d) = %v outside [%v, %v]", n, d, want/2, want*3/2)
			}
		}
	}
	if d := c.backoff(1, 5*time.Second); d != 5*time.Second {
		t.Fatalf("Retry-After floor ignored: %v", d)
	}
	// The floor is capped at the attempt timeout: an HTTP-date hint
	// hours out (clock skew, a confused peer) must not stall the retry
	// loop for longer than one attempt may even run.
	if d := c.backoff(1, 3*time.Hour); d != c.opt.AttemptTimeout {
		t.Fatalf("Retry-After floor not capped at the attempt timeout: %v (timeout %v)", d, c.opt.AttemptTimeout)
	}
	if d := c.backoff(1, c.opt.AttemptTimeout-time.Second); d != c.opt.AttemptTimeout-time.Second {
		t.Fatalf("sub-timeout floor should pass through: %v", d)
	}
}

// TestHedgeWins: the owner stalls past HedgeAfter, the hedge lands on
// the next ring peer and wins; the stalled attempt is abandoned without
// counting as a peer failure.
func TestHedgeWins(t *testing.T) {
	var slowHits, fastHits atomic.Int64
	release := make(chan struct{})
	defer close(release)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slowHits.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
			// The hedge won and the client abandoned this attempt.
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	ring, done := fleet(t, map[string]http.Handler{
		"slow": slow,
		"fast": countingHandler(http.StatusOK, &fastHits, 0),
	})
	defer done()
	c := New(ring, Options{HedgeAfter: 30 * time.Millisecond})

	res, err := c.Do(context.Background(), PlanRequest{Key: keyOwnedBy(t, ring, "slow")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Peer != "fast" || !res.Hedged {
		t.Fatalf("got peer=%s hedged=%v, want the hedge to win", res.Peer, res.Hedged)
	}
	s := c.Snap()
	if s.Hedges != 1 || s.HedgeWins != 1 {
		t.Fatalf("hedge counters: %+v", s)
	}
	if s.Failures != [4]int64{} {
		t.Fatalf("abandoned primary counted as failure: %+v", s)
	}
	if c.BreakerState("slow") != Closed {
		t.Fatal("losing a hedge race tripped the slow peer's breaker")
	}
}

// TestHedgeNotLaunchedWhenFastEnough: a primary answering inside
// HedgeAfter never spawns the duplicate.
func TestHedgeNotLaunchedWhenFastEnough(t *testing.T) {
	var aHits, bHits atomic.Int64
	ring, done := fleet(t, map[string]http.Handler{
		"a": countingHandler(http.StatusOK, &aHits, 0),
		"b": countingHandler(http.StatusOK, &bHits, 0),
	})
	defer done()
	c := New(ring, Options{HedgeAfter: 5 * time.Second})
	if _, err := c.Do(context.Background(), PlanRequest{Key: keyOwnedBy(t, ring, "a")}); err != nil {
		t.Fatal(err)
	}
	if s := c.Snap(); s.Hedges != 0 {
		t.Fatalf("hedge launched needlessly: %+v", s)
	}
	if aHits.Load()+bHits.Load() != 1 {
		t.Fatalf("%d requests sent, want 1", aHits.Load()+bHits.Load())
	}
}

// TestDrainDuringInflightHedge is the satellite contract: one peer
// drains (503, the pland drain answer) while the client's hedged
// request is outstanding on it — the request completes with exactly
// one "build" fleet-wide, served by the surviving slow peer.
func TestDrainDuringInflightHedge(t *testing.T) {
	var builds atomic.Int64
	var draining atomic.Bool
	release := make(chan struct{})
	// "owner" accepts and builds slowly (it is healthy, just loaded).
	owner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		builds.Add(1)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"built":"owner"}`))
	})
	// "next" is mid-drain when the hedge arrives: it refuses like a
	// draining pland does, without building.
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"server is draining"}`))
			return
		}
		builds.Add(1)
		w.WriteHeader(http.StatusOK)
	})
	ring, done := fleet(t, map[string]http.Handler{"owner": owner, "next": next})
	defer done()
	draining.Store(true)

	c := New(ring, Options{HedgeAfter: 20 * time.Millisecond, BaseBackoff: time.Millisecond})
	resc := make(chan *PlanResult, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := c.Do(context.Background(), PlanRequest{Key: keyOwnedBy(t, ring, "owner")})
		resc <- res
		errc <- err
	}()

	// Wait until the hedge has been launched and refused by the
	// draining peer (the classified 503 shows up in the counters), then
	// let the owner finish its build.
	deadline := time.Now().Add(5 * time.Second)
	for c.Snap().Failures[int(cluster.HTTPStatus)] == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s := c.Snap(); s.Hedges == 0 || s.Failures[int(cluster.HTTPStatus)] == 0 {
		t.Fatalf("hedge never launched and failed against the draining peer: %+v", s)
	}
	close(release)

	res := <-resc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || res.Peer != "owner" {
		t.Fatalf("got %d from %s, want 200 from owner", res.Status, res.Peer)
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("fleet built %d times, want exactly 1", got)
	}
	// The drain refusal was classified, not fatal.
	if s := c.Snap(); s.Failures[int(cluster.HTTPStatus)] != 1 {
		t.Fatalf("drain 503 not classified: %+v", s)
	}
}

// TestBreakerOpensRefusesRecovers drives the breaker end to end:
// threshold failures open it, an open breaker refuses without touching
// the peer, the cooldown admits a half-open probe, and one success
// closes it.
func TestBreakerOpensRefusesRecovers(t *testing.T) {
	var hits atomic.Int64
	var healthy atomic.Bool
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if healthy.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusInternalServerError)
		}
	})
	ring, done := fleet(t, map[string]http.Handler{"solo": h})
	defer done()
	c := New(ring, Options{
		MaxAttempts:      1,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		BaseBackoff:      time.Millisecond,
	})
	key := keyOwnedBy(t, ring, "solo")

	for i := 0; i < 3; i++ {
		if _, err := c.Do(context.Background(), PlanRequest{Key: key}); err == nil {
			t.Fatalf("attempt %d against a 500 peer succeeded", i)
		}
	}
	if st := c.BreakerState("solo"); st != Open {
		t.Fatalf("breaker %v after threshold failures, want open", st)
	}
	before := hits.Load()
	_, err := c.Do(context.Background(), PlanRequest{Key: key})
	var pe *cluster.PeerError
	if !errors.As(err, &pe) || pe.Kind != cluster.BreakerOpen {
		t.Fatalf("open breaker returned %v, want BreakerOpen", err)
	}
	if hits.Load() != before {
		t.Fatal("open breaker still let a request through")
	}

	// After the cooldown the breaker is half-open: the probe goes
	// through, succeeds, and closes it.
	healthy.Store(true)
	time.Sleep(60 * time.Millisecond)
	if st := c.BreakerState("solo"); st != HalfOpen {
		t.Fatalf("breaker %v after cooldown, want half-open", st)
	}
	res, err := c.Do(context.Background(), PlanRequest{Key: key})
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("half-open probe: res=%+v err=%v", res, err)
	}
	if st := c.BreakerState("solo"); st != Closed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}
	s := c.Snap()
	if s.BreakerOpens != 1 || s.BreakerCloses != 1 || s.BreakerRefusals == 0 {
		t.Fatalf("breaker transition counters: %+v", s)
	}
}

// TestBreakerHalfOpenFailureReopens: a failed probe goes straight back
// to Open with the cooldown restarted.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(2, time.Minute, func() time.Time { return now })
	b.Failure()
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed before cooldown")
	}
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("half-open breaker refused its probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("reopened breaker allowed before its restarted cooldown")
	}
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("second probe refused after restarted cooldown")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
	opens, closes := b.Transitions()
	if opens != 2 || closes != 1 {
		t.Fatalf("transitions = %d/%d, want 2 opens, 1 close", opens, closes)
	}
}

// TestClientMetricsRender sanity-checks the Prometheus rendering.
func TestClientMetricsRender(t *testing.T) {
	var hits atomic.Int64
	ring, done := fleet(t, map[string]http.Handler{"a": countingHandler(http.StatusOK, &hits, 0)})
	defer done()
	c := New(ring, Options{})
	if _, err := c.Do(context.Background(), PlanRequest{Key: 1}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	c.WriteMetrics(&sb, "pland")
	out := sb.String()
	for _, want := range []string{
		"pland_client_attempts_total 1",
		`pland_peer_breaker_state{peer="a"} 0`,
		`pland_peer_up{peer="a"} 1`,
		`pland_client_failures_total{kind="timeout"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
