package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ProberOptions tunes the health prober. The zero value is usable;
// every field falls back to the documented default.
type ProberOptions struct {
	// Interval between probe rounds; 0 means 500ms.
	Interval time.Duration
	// Timeout per /healthz probe; 0 means half the interval.
	Timeout time.Duration
	// FailAfter is the consecutive-failure count that marks a peer dead;
	// 0 means 2. One failed probe is noise (a GC pause, a dropped
	// packet); two in a row is a pattern.
	FailAfter int
	// RiseAfter is the consecutive-success count that marks a dead peer
	// alive again; 0 means 1 — a drained peer answering /healthz 200 is
	// back by definition.
	RiseAfter int
	// Transport overrides the probe HTTP transport (chaos injection,
	// tests); nil means http.DefaultTransport.
	Transport http.RoundTripper
	// OnDown, when non-nil, fires once per alive→dead transition, after
	// the peer is marked. Callbacks run outside the prober's lock, on
	// the probing goroutine; they must not block for long.
	OnDown func(peer *Peer)
	// OnRise, when non-nil, fires once per dead→alive transition, after
	// the peer is marked. This is the hook that couples recovery to the
	// rest of the stack: the planning client expires the risen peer's
	// breaker cooldown so traffic returns within one probe interval,
	// and the serving layer drains its hinted-handoff queue.
	OnRise func(peer *Peer)
}

func (o ProberOptions) withDefaults() ProberOptions {
	if o.Interval <= 0 {
		o.Interval = 500 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = o.Interval / 2
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 2
	}
	if o.RiseAfter <= 0 {
		o.RiseAfter = 1
	}
	if o.Transport == nil {
		o.Transport = http.DefaultTransport
	}
	return o
}

// Prober polls every ring peer's /healthz and maintains its alive bit:
// FailAfter consecutive failed probes mark it dead (the ring and the
// planning client route around it), RiseAfter consecutive successes
// mark it alive again. A draining pland answers /healthz with 503, so
// a fleet member leaves the rotation before its listener closes.
type Prober struct {
	ring   *Ring
	opt    ProberOptions
	client *http.Client

	mu    sync.Mutex
	fails map[string]int // consecutive failed probes per peer
	rises map[string]int // consecutive successful probes per dead peer
	// probes counts completed probe rounds, for tests and metrics.
	probes int64
}

// NewProber builds a prober over the ring's peers. Call Run to start
// probing; until then liveness stays wherever it was.
func NewProber(ring *Ring, opt ProberOptions) *Prober {
	opt = opt.withDefaults()
	return &Prober{
		ring:   ring,
		opt:    opt,
		client: &http.Client{Transport: opt.Transport, Timeout: opt.Timeout},
		fails:  make(map[string]int),
		rises:  make(map[string]int),
	}
}

// Run probes every peer each interval until ctx is done. It blocks;
// callers run it in a goroutine.
func (p *Prober) Run(ctx context.Context) {
	t := time.NewTicker(p.opt.Interval)
	defer t.Stop()
	for {
		p.ProbeOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// ProbeOnce runs one probe round synchronously (all peers in
// parallel). Exposed so tests and callers needing a warm start can
// force a round without waiting an interval.
func (p *Prober) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, peer := range p.ring.Peers() {
		wg.Add(1)
		go func(peer *Peer) {
			defer wg.Done()
			p.observe(peer, p.probe(ctx, peer))
		}(peer)
	}
	wg.Wait()
	p.mu.Lock()
	p.probes++
	p.mu.Unlock()
}

// Rounds returns the number of completed probe rounds.
func (p *Prober) Rounds() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.probes
}

// probe is one GET /healthz against one peer; any transport error or
// non-200 counts as a failed probe.
func (p *Prober) probe(ctx context.Context, peer *Peer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer.URL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return Classify(peer.Name, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return StatusError(peer.Name, resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	return nil
}

// observe folds one probe outcome into the peer's streak accounting.
// Transition callbacks fire after the lock is released, so an OnRise
// hook may probe or message the fleet without deadlocking the prober.
func (p *Prober) observe(peer *Peer, err error) {
	var fell, rose bool
	p.mu.Lock()
	if err != nil {
		p.rises[peer.Name] = 0
		p.fails[peer.Name]++
		if p.fails[peer.Name] >= p.opt.FailAfter && peer.Alive() {
			peer.MarkDown()
			fell = true
		}
	} else {
		p.fails[peer.Name] = 0
		if !peer.Alive() {
			p.rises[peer.Name]++
			if p.rises[peer.Name] >= p.opt.RiseAfter {
				p.rises[peer.Name] = 0
				peer.MarkUp()
				rose = true
			}
		}
	}
	p.mu.Unlock()
	if fell && p.opt.OnDown != nil {
		p.opt.OnDown(peer)
	}
	if rose && p.opt.OnRise != nil {
		p.opt.OnRise(peer)
	}
}

// HealthSummary renders one line per peer for logs.
func (p *Prober) HealthSummary() string {
	s := ""
	for _, peer := range p.ring.Peers() {
		state := "up"
		if !peer.Alive() {
			state = "down"
		}
		s += fmt.Sprintf("%s=%s ", peer.Name, state)
	}
	return s
}
