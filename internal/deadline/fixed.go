package deadline

import (
	"fmt"

	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Fixed replays an explicit window assignment: every task's arrival and
// absolute deadline are given verbatim instead of being derived from the
// estimates. It exists for incremental re-planning (pipeline.Rebuild's
// window deltas): a prior plan's windows — possibly with a few tasks
// overridden for fault-adjusted corridors — are re-dispatched and
// re-verified without re-running the slicer.
//
// Like the overlapping baselines, only empty windows mark the assignment
// over-constrained; window overlap between precedence-related tasks is
// legal here (overridden windows need not respect slicing's
// non-overlap invariant).
type Fixed struct {
	Arrival     []rtime.Time
	AbsDeadline []rtime.Time
}

// Name implements Distributor. Distinct window sets yield distinct
// names, so cached plans never collide across Fixed instances.
func (f Fixed) Name() string {
	// FNV-1a over the window values.
	const offset, prime = uint64(14695981039346656037), uint64(1099511628211)
	h := offset
	mix := func(v rtime.Time) {
		x := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	for _, v := range f.Arrival {
		mix(v)
	}
	for _, v := range f.AbsDeadline {
		mix(v)
	}
	return fmt.Sprintf("FIXED/%016x", h)
}

// Distribute implements Distributor.
func (f Fixed) Distribute(g *taskgraph.Graph, est []rtime.Time, m int) (*slicing.Assignment, error) {
	n := g.NumTasks()
	if len(f.Arrival) != n || len(f.AbsDeadline) != n {
		return nil, fmt.Errorf("deadline: fixed windows cover %d/%d tasks, graph has %d",
			len(f.Arrival), len(f.AbsDeadline), n)
	}
	if len(est) != n {
		return nil, fmt.Errorf("deadline: %d estimates for %d tasks", len(est), n)
	}
	asg := &slicing.Assignment{
		Arrival:     append([]rtime.Time(nil), f.Arrival...),
		AbsDeadline: append([]rtime.Time(nil), f.AbsDeadline...),
		RelDeadline: make([]rtime.Time, n),
		Virtual:     append([]rtime.Time(nil), est...),
		MetricName:  "FIXED",
	}
	for v := 0; v < n; v++ {
		if !asg.Arrival[v].IsSet() || !asg.AbsDeadline[v].IsSet() {
			return nil, fmt.Errorf("deadline: task %d has an unset fixed window", v)
		}
		rel := asg.AbsDeadline[v] - asg.Arrival[v]
		if rel <= 0 {
			rel = rtime.Max(rel, 0)
			asg.OverConstrained = true
		}
		asg.RelDeadline[v] = rel
	}
	return asg, nil
}
