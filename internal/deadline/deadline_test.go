package deadline

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

func c1(v rtime.Time) []rtime.Time { return []rtime.Time{v} }

// chain builds t0 → t1 → t2 with estimates 10/20/30 and deadline 100.
func chain(t *testing.T) (*taskgraph.Graph, []rtime.Time) {
	t.Helper()
	g := taskgraph.NewGraph(1)
	for _, c := range []rtime.Time{10, 20, 30} {
		g.MustAddTask("", c1(c), 0)
	}
	g.MustAddArc(0, 1, 0)
	g.MustAddArc(1, 2, 0)
	g.Task(2).ETEDeadline = 100
	g.MustFreeze()
	return g, []rtime.Time{10, 20, 30}
}

func TestUDWindows(t *testing.T) {
	g, est := chain(t)
	asg, err := UD{}.Distribute(g, est, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All tasks share the ultimate deadline 100.
	for i := 0; i < 3; i++ {
		if asg.AbsDeadline[i] != 100 {
			t.Errorf("D[%d] = %d, want 100", i, asg.AbsDeadline[i])
		}
	}
	// ASAP arrivals: 0, 10, 30.
	want := []rtime.Time{0, 10, 30}
	for i := range want {
		if asg.Arrival[i] != want[i] {
			t.Errorf("a[%d] = %d, want %d", i, asg.Arrival[i], want[i])
		}
	}
	if asg.OverConstrained {
		t.Error("loose UD flagged over-constrained")
	}
}

func TestEDWindows(t *testing.T) {
	g, est := chain(t)
	asg, err := ED{}.Distribute(g, est, 1)
	if err != nil {
		t.Fatal(err)
	}
	// ALAP deadlines: 100, 100-30=70, 70-20=50.
	want := []rtime.Time{50, 70, 100}
	for i := range want {
		if asg.AbsDeadline[i] != want[i] {
			t.Errorf("D[%d] = %d, want %d", i, asg.AbsDeadline[i], want[i])
		}
	}
}

func TestEDOrdersEDFBetterThanUD(t *testing.T) {
	// Under UD, all tasks share one deadline, so EDF cannot tell urgent
	// work apart; ED recovers the precedence-aware ordering. Build a case
	// where that matters: two chains on one processor, one tight.
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("a", c1(10), 0) // tight chain head
	b := g.MustAddTask("b", c1(10), 0)
	x := g.MustAddTask("x", c1(10), 0) // slack task
	g.MustAddArc(a.ID, b.ID, 0)
	g.Task(b.ID).ETEDeadline = 21
	g.Task(x.ID).ETEDeadline = 31
	g.MustFreeze()
	est := []rtime.Time{10, 10, 10}
	p := arch.Homogeneous(1)

	asgED, err := ED{}.Distribute(g, est, 1)
	if err != nil {
		t.Fatal(err)
	}
	sED, err := sched.Dispatch(g, p, asgED)
	if err != nil {
		t.Fatal(err)
	}
	if !sED.Feasible {
		t.Errorf("ED should schedule a(0-10) b(10-20) x(20-30): missed %v", sED.Missed)
	}
	// Under UD, a and x share nothing that orders them except deadline
	// (21 vs 31), so a still wins here; the distinguishing power shows
	// in the deadline values themselves.
	asgUD, err := UD{}.Distribute(g, est, 1)
	if err != nil {
		t.Fatal(err)
	}
	if asgUD.AbsDeadline[a.ID] != 21 || asgED.AbsDeadline[a.ID] != 11 {
		t.Errorf("UD/ED deadlines for a = %d/%d, want 21/11",
			asgUD.AbsDeadline[a.ID], asgED.AbsDeadline[a.ID])
	}
}

func TestOverConstrainedFlag(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("", c1(10), 0)
	g.MustAddTask("", c1(10), 0)
	g.MustAddArc(0, 1, 0)
	g.Task(1).ETEDeadline = 5 // less than the upstream workload
	g.MustFreeze()
	est := []rtime.Time{10, 10}
	asg, err := ED{}.Distribute(g, est, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !asg.OverConstrained {
		t.Error("impossible deadline not flagged")
	}
}

func TestDistributeValidation(t *testing.T) {
	g, est := chain(t)
	if _, err := (UD{}).Distribute(g, est[:1], 1); err == nil {
		t.Error("estimate length mismatch accepted")
	}
	unfrozen := taskgraph.NewGraph(1)
	unfrozen.MustAddTask("", c1(5), 0)
	if _, err := (ED{}).Distribute(unfrozen, []rtime.Time{5}, 1); err == nil {
		t.Error("unfrozen graph accepted")
	}
	noDL := taskgraph.NewGraph(1)
	noDL.MustAddTask("", c1(5), 0)
	noDL.MustFreeze()
	if _, err := (UD{}).Distribute(noDL, []rtime.Time{5}, 1); err == nil {
		t.Error("missing deadline accepted")
	}
}

func TestSlicedAdapter(t *testing.T) {
	g, est := chain(t)
	d := Sliced{Metric: slicing.PURE(), Params: slicing.DefaultParams()}
	if d.Name() != "SLICE/PURE" {
		t.Errorf("Name = %q", d.Name())
	}
	asg, err := d.Distribute(g, est, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := asg.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Slicing partitions; UD overlaps. The adapter must preserve the
	// non-overlap property.
	if asg.AbsDeadline[0] > asg.Arrival[1] {
		t.Error("sliced windows overlap")
	}
}

func TestBaselinesList(t *testing.T) {
	bs := Baselines()
	if len(bs) != 2 || bs[0].Name() != "UD" || bs[1].Name() != "ED" {
		t.Errorf("Baselines = %v", bs)
	}
}

// The slicing-vs-overlap ablation. Slicing buys the distributed-systems
// properties I1 (sequential tasks schedulable independently per
// processor) and I2 (no precedence-induced release jitter) by *paying*
// schedulability under a centralized dispatcher: the overlapping UD/ED
// windows give a fully-informed global dispatcher strictly more freedom,
// so on contended workloads ED must do at least as well as sliced
// ADAPT-L, and slicing must stay within a modest band of it. The test
// also pins the structural difference: sliced windows of sequential
// tasks never overlap, UD windows almost always do.
func TestSlicingOverlapTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a few hundred pipeline runs")
	}
	succ := map[string]int{}
	const graphs = 120
	sliced := Sliced{Metric: slicing.AdaptL(), Params: slicing.CalibratedParams()}
	dists := []Distributor{sliced, UD{}, ED{}}
	overlapSeen := map[string]bool{}
	for idx := 0; idx < graphs; idx++ {
		cfg := gen.Default(3)
		cfg.OLR = 0.5
		cfg.Seed = gen.SubSeed(77, idx)
		w := gen.MustGenerate(cfg)
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dists {
			asg, err := d.Distribute(w.Graph, est, w.Platform.M())
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range w.Graph.Arcs() {
				if asg.AbsDeadline[a.From] > asg.Arrival[a.To] {
					overlapSeen[d.Name()] = true
					break
				}
			}
			s, err := sched.Dispatch(w.Graph, w.Platform, asg)
			if err != nil {
				t.Fatal(err)
			}
			if s.Feasible {
				succ[d.Name()]++
			}
		}
	}
	t.Logf("success out of %d: %v", graphs, succ)
	if overlapSeen["SLICE/ADAPT-L"] {
		t.Error("sliced windows of sequential tasks overlapped")
	}
	if !overlapSeen["UD"] {
		t.Error("UD windows never overlapped; baseline is broken")
	}
	if succ["ED"] < succ["SLICE/ADAPT-L"] {
		t.Errorf("a fully-informed dispatcher under ED (%d) should not lose to sliced windows (%d)",
			succ["ED"], succ["SLICE/ADAPT-L"])
	}
	if succ["SLICE/ADAPT-L"] < succ["ED"]/2 {
		t.Errorf("slicing (%d) should stay within 2x of ED (%d): the I1/I2 properties should not cost more",
			succ["SLICE/ADAPT-L"], succ["ED"])
	}
}
