// Package deadline provides deadline-assignment baselines from the
// related-work lineage of the paper (§2), against which the slicing
// technique can be ablated:
//
//   - UD (ultimate deadline) and ED (effective deadline) are the
//     classical strategies of Kao & Garcia-Molina: every task inherits,
//     respectively, the raw end-to-end deadline of its downstream output
//     or that deadline discounted by the downstream workload.
//
// Both produce *overlapping* execution windows — a task may start as
// soon as its predecessors allow — so, unlike slicing, they neither
// decouple the scheduling of sequential tasks (implication I1) nor
// eliminate precedence-induced release jitter (implication I2). The
// ablation benchmarks quantify what those properties are worth.
//
// The package also defines the Distributor interface that unifies these
// baselines with the slicing pipeline, so schedulers and experiments can
// treat any deadline-assignment strategy uniformly.
package deadline

import (
	"fmt"

	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Distributor assigns an execution window to every task of a graph.
type Distributor interface {
	// Name identifies the strategy in tables and benchmarks.
	Name() string
	// Distribute computes the window assignment for graph g with WCET
	// estimates est on an m-processor system.
	Distribute(g *taskgraph.Graph, est []rtime.Time, m int) (*slicing.Assignment, error)
}

// WorkspaceDistributor is the optional Distributor extension for
// strategies that can run over a reusable slicing workspace. The
// pipeline's pooled build path type-asserts for it; the assignment must
// be identical to Distribute's for any workspace state.
type WorkspaceDistributor interface {
	Distributor
	DistributeWith(ws *slicing.Workspace, g *taskgraph.Graph, est []rtime.Time, m int) (*slicing.Assignment, error)
}

// Sliced adapts the slicing technique to the Distributor interface.
type Sliced struct {
	Metric slicing.Metric
	Params slicing.Params
}

// Name implements Distributor.
func (s Sliced) Name() string { return "SLICE/" + s.Metric.Name() }

// Distribute implements Distributor.
func (s Sliced) Distribute(g *taskgraph.Graph, est []rtime.Time, m int) (*slicing.Assignment, error) {
	return slicing.Distribute(g, est, m, s.Metric, s.Params)
}

// DistributeWith implements WorkspaceDistributor.
func (s Sliced) DistributeWith(ws *slicing.Workspace, g *taskgraph.Graph, est []rtime.Time, m int) (*slicing.Assignment, error) {
	return ws.Distribute(g, est, m, s.Metric, s.Params)
}

// UD is the ultimate-deadline strategy: every task's absolute deadline
// is the end-to-end deadline of its downstream output (the earliest one,
// when several outputs are reachable); its arrival is the earliest time
// its ancestors could possibly let it start (ASAP bound). Windows of
// sequential tasks overlap almost entirely.
type UD struct{}

// Name implements Distributor.
func (UD) Name() string { return "UD" }

// Distribute implements Distributor.
func (UD) Distribute(g *taskgraph.Graph, est []rtime.Time, m int) (*slicing.Assignment, error) {
	return overlapping(g, est, func(v int, ld []rtime.Time) rtime.Time {
		// Ultimate deadline: no discount for downstream work.
		best := rtime.Infinity
		if ete := g.Task(v).ETEDeadline; ete.IsSet() {
			best = ete
		}
		for _, u := range g.Succs(v) {
			if ld[u] < best {
				best = ld[u]
			}
		}
		return best
	}, "UD")
}

// ED is the effective-deadline strategy: like UD, but each task's
// deadline is discounted by the estimated workload that must still
// execute after it (the longest downstream chain), i.e. the ALAP bound.
type ED struct{}

// Name implements Distributor.
func (ED) Name() string { return "ED" }

// Distribute implements Distributor.
func (ED) Distribute(g *taskgraph.Graph, est []rtime.Time, m int) (*slicing.Assignment, error) {
	return overlapping(g, est, func(v int, ld []rtime.Time) rtime.Time {
		best := rtime.Infinity
		if ete := g.Task(v).ETEDeadline; ete.IsSet() {
			best = ete
		}
		for _, u := range g.Succs(v) {
			if t := ld[u] - est[u]; t < best {
				best = t
			}
		}
		return best
	}, "ED")
}

// overlapping builds an assignment with ASAP arrivals and deadlines
// defined by the supplied backward rule.
func overlapping(g *taskgraph.Graph, est []rtime.Time,
	rule func(v int, ld []rtime.Time) rtime.Time, name string) (*slicing.Assignment, error) {

	if !g.Frozen() {
		return nil, fmt.Errorf("deadline: graph must be frozen")
	}
	n := g.NumTasks()
	if len(est) != n {
		return nil, fmt.Errorf("deadline: %d estimates for %d tasks", len(est), n)
	}
	for _, out := range g.Outputs() {
		if !g.Task(out).ETEDeadline.IsSet() {
			return nil, fmt.Errorf("deadline: output task %d has no end-to-end deadline", out)
		}
	}
	asg := &slicing.Assignment{
		Arrival:     make([]rtime.Time, n),
		AbsDeadline: make([]rtime.Time, n),
		RelDeadline: make([]rtime.Time, n),
		Virtual:     append([]rtime.Time(nil), est...),
		MetricName:  name,
	}
	topo := g.TopoOrder()
	// ASAP arrivals.
	for _, v := range topo {
		a := g.Task(v).Phase
		for _, p := range g.Preds(v) {
			if t := asg.Arrival[p] + est[p]; t > a {
				a = t
			}
		}
		asg.Arrival[v] = a
	}
	// Backward deadlines.
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		asg.AbsDeadline[v] = rule(v, asg.AbsDeadline)
	}
	for v := 0; v < n; v++ {
		rel := asg.AbsDeadline[v] - asg.Arrival[v]
		if rel < 0 {
			rel = 0
			asg.OverConstrained = true
		}
		if rel == 0 {
			asg.OverConstrained = true
		}
		asg.RelDeadline[v] = rel
	}
	return asg, nil
}

// Baselines returns the overlapping-window baselines.
func Baselines() []Distributor { return []Distributor{UD{}, ED{}} }
