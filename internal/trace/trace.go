// Package trace derives a structured event log from a schedule: task
// starts, finishes, deadline misses, message transfers, and (for
// preemptive schedules) preemptions and resumptions, all in time order.
// The log feeds cmd/schedview's -trace mode and gives tests a precise,
// order-stable view of what a schedule claims happened.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Kind classifies an event.
type Kind int

const (
	// Start marks the (first) start of a task on a processor.
	Start Kind = iota
	// Finish marks a task's completion.
	Finish
	// Miss marks a completion after the task's absolute deadline.
	Miss
	// Send marks a message leaving its producer for a remote consumer.
	Send
	// Land marks a message arriving at the consumer's processor.
	Land
	// Preempt marks a task losing its processor before completion.
	Preempt
	// Resume marks a preempted task regaining a processor.
	Resume
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Start:
		return "start"
	case Finish:
		return "finish"
	case Miss:
		return "MISS"
	case Send:
		return "send"
	case Land:
		return "land"
	case Preempt:
		return "preempt"
	case Resume:
		return "resume"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one entry of the log.
type Event struct {
	At   rtime.Time
	Kind Kind
	// Task is the acting task; for Send/Land it is the producer.
	Task int
	// Peer is the consumer for Send/Land, -1 otherwise.
	Peer int
	// Proc is the processor involved, -1 when not applicable.
	Proc int
	// Detail carries the lateness for Miss events and the message size
	// for Send/Land.
	Detail rtime.Time
}

// String renders one event compactly.
func (e Event) String() string {
	switch e.Kind {
	case Send, Land:
		return fmt.Sprintf("%6d  %-7s t%d→t%d (%d items)", e.At, e.Kind, e.Task, e.Peer, e.Detail)
	case Miss:
		return fmt.Sprintf("%6d  %-7s t%d late by %d", e.At, e.Kind, e.Task, e.Detail)
	default:
		return fmt.Sprintf("%6d  %-7s t%d on p%d", e.At, e.Kind, e.Task, e.Proc)
	}
}

// Log is a time-ordered event sequence.
type Log []Event

// FromSchedule derives the log of a non-preemptive schedule.
func FromSchedule(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, s *sched.Schedule) Log {
	var log Log
	for i, pl := range s.Placements {
		if pl.Proc < 0 {
			continue
		}
		log = append(log, Event{At: pl.Start, Kind: Start, Task: i, Peer: -1, Proc: pl.Proc})
		log = append(log, Event{At: pl.Finish, Kind: Finish, Task: i, Peer: -1, Proc: pl.Proc})
		if pl.Finish > asg.AbsDeadline[i] {
			log = append(log, Event{
				At: pl.Finish, Kind: Miss, Task: i, Peer: -1, Proc: pl.Proc,
				Detail: pl.Finish - asg.AbsDeadline[i],
			})
		}
	}
	for _, a := range g.Arcs() {
		from, to := s.Placements[a.From], s.Placements[a.To]
		if from.Proc < 0 || to.Proc < 0 || from.Proc == to.Proc || a.Items <= 0 {
			continue
		}
		log = append(log, Event{
			At: from.Finish, Kind: Send, Task: a.From, Peer: a.To, Proc: from.Proc, Detail: a.Items,
		})
		log = append(log, Event{
			At: from.Finish + p.CommCost(from.Proc, to.Proc, a.Items), Kind: Land,
			Task: a.From, Peer: a.To, Proc: to.Proc, Detail: a.Items,
		})
	}
	log.sortStable()
	return log
}

// FromPreemptive derives the log of a preemptive schedule, including
// preemption and resumption events from the slice list.
func FromPreemptive(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, s *sched.PreemptiveSchedule) Log {
	log := FromSchedule(g, p, asg, &s.Schedule)
	// A task's non-first slice begins with a resume; a slice that ends
	// before the task's finish ends with a preemption.
	seen := map[int]bool{}
	for _, sl := range s.Slices {
		if seen[sl.Task] {
			log = append(log, Event{At: sl.Start, Kind: Resume, Task: sl.Task, Peer: -1, Proc: sl.Proc})
		}
		seen[sl.Task] = true
		if sl.End < s.Placements[sl.Task].Finish {
			log = append(log, Event{At: sl.End, Kind: Preempt, Task: sl.Task, Peer: -1, Proc: sl.Proc})
		}
	}
	log.sortStable()
	return log
}

// sortRank orders same-instant events causally: completions and
// message landings *enable* the starts that share their timestamp, so
// they come first.
func sortRank(k Kind) int {
	switch k {
	case Finish:
		return 0
	case Miss:
		return 1
	case Send:
		return 2
	case Land:
		return 3
	case Preempt:
		return 4
	case Resume:
		return 5
	case Start:
		return 6
	}
	return 7
}

// sortStable orders events by time, then causally, then by task ID so
// logs are reproducible.
func (l Log) sortStable() {
	sort.SliceStable(l, func(a, b int) bool {
		if l[a].At != l[b].At {
			return l[a].At < l[b].At
		}
		if ra, rb := sortRank(l[a].Kind), sortRank(l[b].Kind); ra != rb {
			return ra < rb
		}
		return l[a].Task < l[b].Task
	})
}

// Filter returns the events of the given kinds.
func (l Log) Filter(kinds ...Kind) Log {
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out Log
	for _, e := range l {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// String renders the whole log, one event per line.
func (l Log) String() string {
	var b strings.Builder
	for _, e := range l {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
