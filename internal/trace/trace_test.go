package trace

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

func c1(v rtime.Time) []rtime.Time { return []rtime.Time{v} }

func fixture(t *testing.T) (*taskgraph.Graph, *arch.Platform, *slicing.Assignment, *sched.Schedule) {
	t.Helper()
	g := taskgraph.NewGraph(1)
	g.MustAddTask("a", c1(10), 0)
	g.MustAddTask("b", c1(10), 0)
	g.MustAddArc(0, 1, 4)
	g.MustFreeze()
	p := arch.Homogeneous(2)
	asg := &slicing.Assignment{
		Arrival:     []rtime.Time{0, 10},
		AbsDeadline: []rtime.Time{10, 20}, // b will miss (remote landing at 14)
		RelDeadline: []rtime.Time{10, 10},
	}
	s := &sched.Schedule{Placements: []sched.Placement{
		{Proc: 0, Start: 0, Finish: 10},
		{Proc: 1, Start: 14, Finish: 24},
	}}
	return g, p, asg, s
}

func TestFromScheduleEvents(t *testing.T) {
	g, p, asg, s := fixture(t)
	log := FromSchedule(g, p, asg, s)
	// Expected: start a@0, finish a@10 + send@10, land@14, start b@14,
	// finish b@24, miss b@24.
	kinds := []Kind{}
	for _, e := range log {
		kinds = append(kinds, e.Kind)
	}
	want := []Kind{Start, Finish, Send, Land, Start, Finish, Miss}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events: %v", len(kinds), log)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %v, want %v (%v)", i, kinds[i], want[i], log[i])
		}
	}
	// Ordering by time is monotone.
	for i := 1; i < len(log); i++ {
		if log[i].At < log[i-1].At {
			t.Errorf("log out of order at %d: %v", i, log)
		}
	}
	// Miss detail records the lateness.
	miss := log.Filter(Miss)
	if len(miss) != 1 || miss[0].Detail != 4 {
		t.Errorf("miss = %v", miss)
	}
}

func TestNoSendForCoLocated(t *testing.T) {
	g, p, asg, _ := fixture(t)
	s := &sched.Schedule{Placements: []sched.Placement{
		{Proc: 0, Start: 0, Finish: 10},
		{Proc: 0, Start: 10, Finish: 20}, // same processor: no bus traffic
	}}
	log := FromSchedule(g, p, asg, s)
	if len(log.Filter(Send, Land)) != 0 {
		t.Errorf("co-located tasks produced bus events: %v", log)
	}
}

func TestFilterAndString(t *testing.T) {
	g, p, asg, s := fixture(t)
	log := FromSchedule(g, p, asg, s)
	starts := log.Filter(Start)
	if len(starts) != 2 {
		t.Errorf("starts = %v", starts)
	}
	out := log.String()
	for _, want := range []string{"start", "finish", "send", "land", "MISS", "t0→t1 (4 items)"} {
		if !strings.Contains(out, want) {
			t.Errorf("log rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFromPreemptive(t *testing.T) {
	// Force a preemption: long slack task, tight arrival-5 task, one
	// processor.
	g := taskgraph.NewGraph(1)
	g.MustAddTask("long", c1(30), 0)
	g.MustAddTask("tight", c1(10), 0)
	g.MustFreeze()
	p := arch.Homogeneous(1)
	asg := &slicing.Assignment{
		Arrival:     []rtime.Time{0, 5},
		AbsDeadline: []rtime.Time{60, 20},
		RelDeadline: []rtime.Time{60, 15},
	}
	s, err := sched.DispatchPreemptive(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	log := FromPreemptive(g, p, asg, s)
	if n := len(log.Filter(Preempt)); n != 1 {
		t.Errorf("preempt events = %d, want 1\n%s", n, log)
	}
	if n := len(log.Filter(Resume)); n != 1 {
		t.Errorf("resume events = %d, want 1\n%s", n, log)
	}
	// The preemption of the long task happens at t=5.
	pe := log.Filter(Preempt)[0]
	if pe.Task != 0 || pe.At != 5 {
		t.Errorf("preempt = %v", pe)
	}
	re := log.Filter(Resume)[0]
	if re.Task != 0 || re.At != 15 {
		t.Errorf("resume = %v", re)
	}
}

func TestGeneratedWorkloadLogInvariants(t *testing.T) {
	cfg := gen.Default(3)
	cfg.Seed = 17
	w := gen.MustGenerate(cfg)
	est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Dispatch(w.Graph, w.Platform, asg)
	if err != nil {
		t.Fatal(err)
	}
	log := FromSchedule(w.Graph, w.Platform, asg, s)
	// Exactly one start and one finish per placed task.
	starts := map[int]int{}
	finishes := map[int]int{}
	for _, e := range log {
		switch e.Kind {
		case Start:
			starts[e.Task]++
		case Finish:
			finishes[e.Task]++
		}
	}
	for i := 0; i < w.Graph.NumTasks(); i++ {
		if starts[i] != 1 || finishes[i] != 1 {
			t.Fatalf("task %d has %d starts / %d finishes", i, starts[i], finishes[i])
		}
	}
	// Every Send pairs with a Land of the same arc, 1 bus-cost later.
	sends := log.Filter(Send)
	lands := log.Filter(Land)
	if len(sends) != len(lands) {
		t.Fatalf("%d sends vs %d lands", len(sends), len(lands))
	}
	if len(sends) == 0 {
		t.Skip("workload had no remote messages (unlikely)")
	}
}

func TestKindString(t *testing.T) {
	if Start.String() != "start" || Miss.String() != "MISS" || Resume.String() != "resume" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind should include its number")
	}
}
