package rtime

import (
	"testing"
	"testing/quick"
)

func TestIsSet(t *testing.T) {
	cases := []struct {
		t    Time
		want bool
	}{
		{0, true},
		{1, true},
		{Infinity, true},
		{Unset, false},
		{-5, false},
	}
	for _, c := range cases {
		if got := c.t.IsSet(); got != c.want {
			t.Errorf("Time(%d).IsSet() = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 || Min(4, 4) != 4 {
		t.Error("Min wrong")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 || Max(4, 4) != 4 {
		t.Error("Max wrong")
	}
	if Min(Unset, 0) != Unset {
		t.Error("Min should order sentinel below zero")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 {
		t.Error("interior value changed")
	}
	if Clamp(-3, 0, 10) != 0 {
		t.Error("low clamp failed")
	}
	if Clamp(42, 0, 10) != 10 {
		t.Error("high clamp failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Clamp with inverted range should panic")
		}
	}()
	Clamp(0, 10, 0)
}

func TestTimeString(t *testing.T) {
	if Time(17).String() != "17" {
		t.Errorf("got %q", Time(17).String())
	}
	if Unset.String() != "unset" {
		t.Errorf("got %q", Unset.String())
	}
	if Infinity.String() != "inf" {
		t.Errorf("got %q", Infinity.String())
	}
	if (Infinity + 1).String() != "inf" {
		t.Errorf("got %q", (Infinity + 1).String())
	}
}

func TestWindowLen(t *testing.T) {
	cases := []struct {
		w    Window
		want Time
	}{
		{Window{0, 10}, 10},
		{Window{5, 5}, 0},
		{Window{7, 3}, 0}, // inverted: over-constrained chain
	}
	for _, c := range cases {
		if got := c.w.Len(); got != c.want {
			t.Errorf("%v.Len() = %d, want %d", c.w, got, c.want)
		}
	}
}

func TestWindowEmpty(t *testing.T) {
	if (Window{0, 1}).Empty() {
		t.Error("unit window reported empty")
	}
	if !(Window{3, 3}).Empty() {
		t.Error("zero window not reported empty")
	}
	if !(Window{5, 2}).Empty() {
		t.Error("inverted window not reported empty")
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{10, 20}
	if !w.Contains(10, 20) {
		t.Error("exact fit rejected")
	}
	if !w.Contains(12, 15) {
		t.Error("interior rejected")
	}
	if w.Contains(9, 15) {
		t.Error("early start accepted")
	}
	if w.Contains(12, 21) {
		t.Error("late finish accepted")
	}
	if w.Contains(15, 12) {
		t.Error("inverted interval accepted")
	}
}

func TestWindowOverlaps(t *testing.T) {
	a := Window{0, 10}
	cases := []struct {
		b    Window
		want bool
	}{
		{Window{5, 15}, true},
		{Window{10, 20}, false}, // half-open: touching is no overlap
		{Window{-5, 0}, false},
		{Window{3, 3}, false}, // empty never overlaps
		{Window{0, 10}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", a, c.b)
		}
	}
}

func TestGCDLCM(t *testing.T) {
	if GCD(12, 18) != 6 {
		t.Error("GCD(12,18) != 6")
	}
	if GCD(7, 13) != 1 {
		t.Error("GCD of coprimes != 1")
	}
	if LCM(4, 6) != 12 {
		t.Error("LCM(4,6) != 12")
	}
	if LCM(5, 5) != 5 {
		t.Error("LCM(5,5) != 5")
	}
	defer func() {
		if recover() == nil {
			t.Error("GCD with non-positive argument should panic")
		}
	}()
	GCD(0, 5)
}

func TestLCMOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LCM overflow should panic")
		}
	}()
	LCM(Infinity-1, Infinity-3)
}

func TestClampProperty(t *testing.T) {
	f := func(t0, lo, hi int32) bool {
		l, h := Time(lo), Time(hi)
		if l > h {
			l, h = h, l
		}
		got := Clamp(Time(t0), l, h)
		return got >= l && got <= h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGCDProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := Time(a)+1, Time(b)+1
		g := GCD(x, y)
		return g > 0 && x%g == 0 && y%g == 0 && LCM(x, y)%x == 0 && LCM(x, y)%y == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
