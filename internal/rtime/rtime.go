// Package rtime provides the discrete time base used throughout the
// repository.
//
// The paper assumes a discrete global system time indexed by the natural
// numbers (§3.1): task activities begin and end at time units, and all
// application timing parameters are expressed as multiples of time units.
// Time is represented as int64 so that hyperperiod arithmetic
// (LCM of task periods) does not overflow for realistic workloads.
package rtime

import "fmt"

// Time is a point in, or a span of, discrete system time, measured in
// time units.
type Time int64

// Unset marks a timing attribute that has not been assigned yet, e.g. the
// arrival time of a task the deadline-distribution algorithm has not
// reached. All valid times are non-negative, so any negative sentinel is
// safe; -1 is used for readability in dumps.
const Unset Time = -1

// Infinity is a time later than every schedulable event. It is not
// math.MaxInt64 so that adding small spans to it cannot overflow.
const Infinity Time = 1 << 56

// IsSet reports whether t holds an assigned, non-negative time.
func (t Time) IsSet() bool { return t >= 0 }

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clamp limits t to the inclusive range [lo, hi]. It panics if lo > hi.
func Clamp(t, lo, hi Time) Time {
	if lo > hi {
		panic(fmt.Sprintf("rtime: Clamp with inverted range [%d, %d]", lo, hi))
	}
	switch {
	case t < lo:
		return lo
	case t > hi:
		return hi
	}
	return t
}

// String renders the time, using "unset" and "inf" for the sentinels.
func (t Time) String() string {
	switch {
	case t == Unset:
		return "unset"
	case t >= Infinity:
		return "inf"
	}
	return fmt.Sprintf("%d", int64(t))
}

// Window is a half-open execution window [Arrival, Deadline) in absolute
// time: the task may not start before Arrival and must finish no later
// than Deadline. A window with Deadline <= Arrival has no capacity and is
// reported as empty; the deadline-distribution algorithm can produce such
// windows for over-constrained chains, in which case scheduling fails.
type Window struct {
	Arrival  Time
	Deadline Time
}

// Len returns the window length, never negative.
func (w Window) Len() Time {
	if w.Deadline <= w.Arrival {
		return 0
	}
	return w.Deadline - w.Arrival
}

// Empty reports whether the window has no capacity.
func (w Window) Empty() bool { return w.Deadline <= w.Arrival }

// Contains reports whether the closed interval [start, finish] fits
// inside the window.
func (w Window) Contains(start, finish Time) bool {
	return start >= w.Arrival && finish <= w.Deadline && start <= finish
}

// Overlaps reports whether two windows share at least one time unit.
func (w Window) Overlaps(o Window) bool {
	if w.Empty() || o.Empty() {
		return false
	}
	return w.Arrival < o.Deadline && o.Arrival < w.Deadline
}

// String renders the window as "[a, d)".
func (w Window) String() string {
	return fmt.Sprintf("[%s, %s)", w.Arrival, w.Deadline)
}

// GCD returns the greatest common divisor of a and b, both of which must
// be positive.
func GCD(a, b Time) Time {
	if a <= 0 || b <= 0 {
		panic(fmt.Sprintf("rtime: GCD of non-positive times %d, %d", a, b))
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, both of which must be
// positive. It panics on overflow, which for realistic task periods does
// not occur.
func LCM(a, b Time) Time {
	g := GCD(a, b)
	q := a / g
	if q != 0 && b > Infinity/q {
		panic("rtime: LCM overflow")
	}
	return q * b
}
