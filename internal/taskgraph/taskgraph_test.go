package taskgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rtime"
)

// c returns a 1-class WCET vector.
func c(v rtime.Time) []rtime.Time { return []rtime.Time{v} }

// diamond builds A→B, A→C, B→D, C→D with unit messages.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(1)
	a := g.MustAddTask("A", c(10), 0)
	b := g.MustAddTask("B", c(20), 0)
	cc := g.MustAddTask("C", c(30), 0)
	d := g.MustAddTask("D", c(10), 0)
	g.MustAddArc(a.ID, b.ID, 1)
	g.MustAddArc(a.ID, cc.ID, 1)
	g.MustAddArc(b.ID, d.ID, 1)
	g.MustAddArc(cc.ID, d.ID, 1)
	g.MustFreeze()
	return g
}

func TestAddTaskValidation(t *testing.T) {
	g := NewGraph(2)
	if _, err := g.AddTask("bad-len", []rtime.Time{5}, 0); err == nil {
		t.Error("wrong WCET length accepted")
	}
	if _, err := g.AddTask("bad-neg", []rtime.Time{5, -7}, 0); err == nil {
		t.Error("negative non-sentinel WCET accepted")
	}
	if _, err := g.AddTask("bad-zero", []rtime.Time{0, 5}, 0); err == nil {
		t.Error("zero WCET accepted")
	}
	if _, err := g.AddTask("no-class", []rtime.Time{rtime.Unset, rtime.Unset}, 0); err == nil {
		t.Error("fully ineligible task accepted")
	}
	if _, err := g.AddTask("bad-phase", []rtime.Time{5, 5}, -1); err == nil {
		t.Error("negative phase accepted")
	}
	tk, err := g.AddTask("ok", []rtime.Time{5, rtime.Unset}, 3)
	if err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	if tk.ID != 0 || !tk.EligibleOn(0) || tk.EligibleOn(1) || tk.EligibleOn(2) || tk.EligibleOn(-1) {
		t.Error("eligibility wrong")
	}
}

func TestAddArcValidation(t *testing.T) {
	g := NewGraph(1)
	a := g.MustAddTask("a", c(1), 0)
	b := g.MustAddTask("b", c(1), 0)
	if err := g.AddArc(a.ID, a.ID, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddArc(a.ID, 99, 0); err == nil {
		t.Error("dangling arc accepted")
	}
	if err := g.AddArc(a.ID, b.ID, -1); err == nil {
		t.Error("negative message size accepted")
	}
	if err := g.AddArc(a.ID, b.ID, 2); err != nil {
		t.Fatalf("valid arc rejected: %v", err)
	}
	if err := g.AddArc(a.ID, b.ID, 2); err == nil {
		t.Error("duplicate arc accepted")
	}
}

func TestFreezeRejectsCycle(t *testing.T) {
	g := NewGraph(1)
	a := g.MustAddTask("a", c(1), 0)
	b := g.MustAddTask("b", c(1), 0)
	g.MustAddArc(a.ID, b.ID, 0)
	g.MustAddArc(b.ID, a.ID, 0)
	if err := g.Freeze(); err == nil {
		t.Fatal("cyclic graph frozen")
	}
}

func TestFreezeRejectsEmptyAndDouble(t *testing.T) {
	if err := NewGraph(1).Freeze(); err == nil {
		t.Error("empty graph frozen")
	}
	g := NewGraph(1)
	g.MustAddTask("a", c(1), 0)
	g.MustFreeze()
	if err := g.Freeze(); err == nil {
		t.Error("double Freeze accepted")
	}
	if _, err := g.AddTask("late", c(1), 0); err == nil {
		t.Error("AddTask after Freeze accepted")
	}
	if err := g.AddArc(0, 0, 0); err == nil {
		t.Error("AddArc after Freeze accepted")
	}
}

func TestQueriesBeforeFreezePanic(t *testing.T) {
	g := NewGraph(1)
	g.MustAddTask("a", c(1), 0)
	defer func() {
		if recover() == nil {
			t.Error("TopoOrder before Freeze should panic")
		}
	}()
	g.TopoOrder()
}

func TestDiamondStructure(t *testing.T) {
	g := diamond(t)
	if g.NumTasks() != 4 || g.NumArcs() != 4 {
		t.Fatalf("size = (%d, %d)", g.NumTasks(), g.NumArcs())
	}
	if got := g.Inputs(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Inputs = %v", got)
	}
	if got := g.Outputs(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Outputs = %v", got)
	}
	if g.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", g.Depth())
	}
	if g.Level(0) != 0 || g.Level(1) != 1 || g.Level(2) != 1 || g.Level(3) != 2 {
		t.Error("levels wrong")
	}
	if !g.Reaches(0, 3) || g.Reaches(3, 0) || g.Reaches(1, 2) {
		t.Error("reachability wrong")
	}
	if got := g.MessageItems(0, 1); got != 1 {
		t.Errorf("MessageItems(0,1) = %d", got)
	}
	if got := g.MessageItems(1, 2); got != 0 {
		t.Errorf("MessageItems on non-arc = %d", got)
	}
}

func TestDiamondTopoOrder(t *testing.T) {
	g := diamond(t)
	pos := make(map[int]int)
	for i, v := range g.TopoOrder() {
		pos[v] = i
	}
	for _, a := range g.Arcs() {
		if pos[a.From] >= pos[a.To] {
			t.Errorf("arc %d→%d violates topo order", a.From, a.To)
		}
	}
}

func TestDiamondParallelSets(t *testing.T) {
	g := diamond(t)
	// B and C are parallel with each other only.
	if g.ParallelSetSize(1) != 1 || g.ParallelSetSize(2) != 1 {
		t.Errorf("|Ψ_B| = %d, |Ψ_C| = %d, want 1, 1",
			g.ParallelSetSize(1), g.ParallelSetSize(2))
	}
	if g.ParallelSetSize(0) != 0 || g.ParallelSetSize(3) != 0 {
		t.Error("endpoints of a diamond have no parallel tasks")
	}
	if got := g.ParallelSet(1, nil); len(got) != 1 || got[0] != 2 {
		t.Errorf("Ψ_B = %v, want [2]", got)
	}
}

func TestDiamondStaticLevels(t *testing.T) {
	g := diamond(t)
	est := []rtime.Time{10, 20, 30, 10}
	sl := g.StaticLevels(est)
	want := []rtime.Time{50, 30, 40, 10} // A: 10+max(30,40); B: 20+10; C: 30+10; D: 10
	for i := range want {
		if sl[i] != want[i] {
			t.Errorf("SL[%d] = %d, want %d", i, sl[i], want[i])
		}
	}
	if g.CriticalPathLength(est) != 50 {
		t.Errorf("critical path = %d, want 50", g.CriticalPathLength(est))
	}
	if TotalWork(est) != 70 {
		t.Errorf("total work = %d, want 70", TotalWork(est))
	}
	xi := g.AvgParallelism(est)
	if xi < 1.39 || xi > 1.41 { // 70/50
		t.Errorf("ξ = %v, want 1.4", xi)
	}
}

func TestLinearChainHasNoParallelism(t *testing.T) {
	g := NewGraph(1)
	const n = 6
	for i := 0; i < n; i++ {
		g.MustAddTask("", c(5), 0)
	}
	for i := 1; i < n; i++ {
		g.MustAddArc(i-1, i, 0)
	}
	g.MustFreeze()
	if g.Depth() != n {
		t.Errorf("Depth = %d, want %d", g.Depth(), n)
	}
	est := make([]rtime.Time, n)
	for i := range est {
		est[i] = 5
	}
	if xi := g.AvgParallelism(est); xi != 1 {
		t.Errorf("chain ξ = %v, want 1", xi)
	}
	for i := 0; i < n; i++ {
		if g.ParallelSetSize(i) != 0 {
			t.Errorf("|Ψ_%d| = %d, want 0", i, g.ParallelSetSize(i))
		}
	}
}

func TestIndependentTasksAreFullyParallel(t *testing.T) {
	g := NewGraph(1)
	const n = 5
	for i := 0; i < n; i++ {
		g.MustAddTask("", c(7), 0)
	}
	g.MustFreeze()
	for i := 0; i < n; i++ {
		if g.ParallelSetSize(i) != n-1 {
			t.Errorf("|Ψ_%d| = %d, want %d", i, g.ParallelSetSize(i), n-1)
		}
	}
	est := []rtime.Time{7, 7, 7, 7, 7}
	if xi := g.AvgParallelism(est); xi != n {
		t.Errorf("ξ = %v, want %d", xi, n)
	}
	if len(g.Inputs()) != n || len(g.Outputs()) != n {
		t.Error("all isolated tasks are both inputs and outputs")
	}
}

func TestValidateChain(t *testing.T) {
	g := diamond(t)
	if err := g.ValidateChain([]int{0, 1, 3}); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
	if err := g.ValidateChain([]int{0, 3}); err == nil {
		t.Error("0→3 is not an immediate succession but was accepted")
	}
	if err := g.ValidateChain([]int{2}); err != nil {
		t.Errorf("singleton chain rejected: %v", err)
	}
	if err := g.ValidateChain(nil); err != nil {
		t.Errorf("empty chain rejected: %v", err)
	}
}

// randomDAG builds a random layered DAG with n tasks; arcs only go from
// lower to higher IDs so it is acyclic by construction.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := NewGraph(1)
	for i := 0; i < n; i++ {
		g.MustAddTask("", c(rtime.Time(1+rng.Intn(30))), 0)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				g.MustAddArc(i, j, rtime.Time(rng.Intn(3)))
			}
		}
	}
	g.MustFreeze()
	return g
}

// Property: closure is consistent — Reaches(a,b) implies !Reaches(b,a),
// and |Ψᵢ| matches a brute-force count.
func TestClosureProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomDAG(rng, n)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b && g.Reaches(a, b) && g.Reaches(b, a) {
					return false
				}
			}
		}
		for i := 0; i < n; i++ {
			brute := 0
			for j := 0; j < n; j++ {
				if j != i && !g.Reaches(i, j) && !g.Reaches(j, i) {
					brute++
				}
			}
			if brute != g.ParallelSetSize(i) {
				return false
			}
			if got := g.ParallelSet(i, nil); len(got) != brute {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SL(τ) ≥ est(τ), and SL of a task is strictly larger than the
// SL of each of its successors.
func TestStaticLevelProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomDAG(rng, n)
		est := make([]rtime.Time, n)
		for i := range est {
			est[i] = g.Task(i).WCET[0]
		}
		sl := g.StaticLevels(est)
		for i := 0; i < n; i++ {
			if sl[i] < est[i] {
				return false
			}
			for _, s := range g.Succs(i) {
				if sl[i] < est[i]+sl[s] {
					return false
				}
			}
		}
		xi := g.AvgParallelism(est)
		return xi >= 1.0-1e-9 && xi <= float64(n)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: topological order respects all arcs for random DAGs.
func TestTopoOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(25))
		pos := make([]int, g.NumTasks())
		for i, v := range g.TopoOrder() {
			pos[v] = i
		}
		for _, a := range g.Arcs() {
			if pos[a.From] >= pos[a.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLevelWidthsAndDegrees(t *testing.T) {
	g := diamond(t)
	widths := g.LevelWidths()
	if len(widths) != 3 || widths[0] != 1 || widths[1] != 2 || widths[2] != 1 {
		t.Errorf("LevelWidths = %v, want [1 2 1]", widths)
	}
	d := g.Degrees()
	if d.MaxIn != 2 || d.MaxOut != 2 {
		t.Errorf("max degrees = (%d, %d), want (2, 2)", d.MaxIn, d.MaxOut)
	}
	if d.MeanIn != 1.0 || d.MeanOut != 1.0 { // 4 arcs / 4 tasks
		t.Errorf("mean degrees = (%v, %v), want (1, 1)", d.MeanIn, d.MeanOut)
	}
}
