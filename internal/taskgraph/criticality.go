package taskgraph

import (
	"fmt"

	"repro/internal/rtime"
)

// Criticality classifies a task for graceful degradation, following the
// imprecise-computation model: mandatory tasks must always meet their
// deadlines, optional tasks add value when they complete in time but may
// be shed under overload. The zero value is Mandatory, so graphs built
// before the mixed-criticality extension are all-mandatory unchanged.
type Criticality int

const (
	// Mandatory tasks are never shed; the degradation machinery
	// guarantees their end-to-end deadlines at every degradation level.
	Mandatory Criticality = iota
	// Optional tasks contribute Value when they finish in time and are
	// the shedding candidates of the degradation policies.
	Optional
)

// String implements fmt.Stringer.
func (c Criticality) String() string {
	switch c {
	case Mandatory:
		return "mandatory"
	case Optional:
		return "optional"
	}
	return fmt.Sprintf("Criticality(%d)", int(c))
}

// ValueWeight returns the task's value weight for quality accounting: the
// declared Value, or 1 when none was set (Value ≤ 0), so graphs that
// never assign values weigh every task equally.
func (t *Task) ValueWeight() float64 {
	if t.Value <= 0 {
		return 1
	}
	return t.Value
}

// Sheddable returns, for every task, whether it may be removed from the
// graph without orphaning mandatory work: the task and its entire
// descendant set are optional. Shedding a sheddable task together with
// its descendants is always closed (no shed task feeds a kept one), so
// the reduced graph preserves every precedence constraint among the
// kept tasks.
func (g *Graph) Sheddable() []bool {
	g.mustBeFrozen("Sheddable")
	n := len(g.tasks)
	ok := make([]bool, n)
	// Reverse topological order: a task is sheddable iff it is optional
	// and every immediate successor is sheddable.
	for i := n - 1; i >= 0; i-- {
		v := g.topo[i]
		if g.tasks[v].Criticality != Optional {
			continue
		}
		ok[v] = true
		for _, s := range g.succs[v] {
			if !ok[s] {
				ok[v] = false
				break
			}
		}
	}
	return ok
}

// InheritedETE returns, for every task, the tightest end-to-end deadline
// among the output tasks it reaches (its own when it is an output), or
// rtime.Unset when no reachable output declares one. When shedding turns
// an interior task into an output, this is the deadline the reduced
// graph inherits for it: no later than any constraint the task was
// originally on the hook for.
func (g *Graph) InheritedETE() []rtime.Time {
	g.mustBeFrozen("InheritedETE")
	n := len(g.tasks)
	ete := make([]rtime.Time, n)
	for i := n - 1; i >= 0; i-- {
		v := g.topo[i]
		best := rtime.Unset
		if len(g.succs[v]) == 0 {
			best = g.tasks[v].ETEDeadline
		}
		for _, s := range g.succs[v] {
			if d := ete[s]; d.IsSet() && (!best.IsSet() || d < best) {
				best = d
			}
		}
		ete[v] = best
	}
	return ete
}

// Induce returns an unfrozen copy of g restricted to the tasks with
// keep[id] set, together with the old→new (−1 for removed tasks) and
// new→old ID maps. Task attributes are copied; arcs survive when both
// endpoints are kept. The caller may adjust the copied tasks (e.g.
// assign inherited end-to-end deadlines to freshly exposed outputs) and
// must Freeze the copy before use.
func (g *Graph) Induce(keep []bool) (*Graph, []int, []int, error) {
	if len(keep) != len(g.tasks) {
		return nil, nil, nil, fmt.Errorf("taskgraph: Induce mask covers %d tasks, graph has %d",
			len(keep), len(g.tasks))
	}
	out := NewGraph(g.NumClasses)
	old2new := make([]int, len(g.tasks))
	var new2old []int
	for id, t := range g.tasks {
		if !keep[id] {
			old2new[id] = -1
			continue
		}
		nt, err := out.AddTask(t.Name, t.WCET, t.Phase)
		if err != nil {
			return nil, nil, nil, err
		}
		nt.Period = t.Period
		nt.ETEDeadline = t.ETEDeadline
		nt.Pinned = t.Pinned
		nt.Resources = append([]int(nil), t.Resources...)
		nt.Criticality = t.Criticality
		nt.Value = t.Value
		old2new[id] = nt.ID
		new2old = append(new2old, id)
	}
	if len(new2old) == 0 {
		return nil, nil, nil, fmt.Errorf("taskgraph: Induce keeps no task")
	}
	for _, a := range g.arcs {
		if old2new[a.From] < 0 || old2new[a.To] < 0 {
			continue
		}
		if err := out.AddArc(old2new[a.From], old2new[a.To], a.Items); err != nil {
			return nil, nil, nil, err
		}
	}
	return out, old2new, new2old, nil
}
