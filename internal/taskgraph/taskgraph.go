// Package taskgraph models the application of the paper (§3.2): a set of
// tasks under an irreflexive precedence partial order, represented as a
// directed acyclic task graph G = (N, A). Nodes carry per-processor-class
// worst-case execution times (WCETs); arcs carry message sizes in data
// items.
//
// Beyond the raw structure the package computes the derived quantities
// that the deadline-distribution metrics need: topological order,
// transitive closure, static levels SL(τ), the parallel set Ψᵢ of each
// task (tasks that are neither predecessors nor successors, eq. 8), and
// the average task-graph parallelism ξ (eq. 7).
package taskgraph

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/rtime"
)

// Task is one node of the task graph, characterised by the static task
// parameters ⟨cᵢ, φᵢ, dᵢ, Tᵢ⟩ of §3.2. The relative deadline dᵢ and the
// arrival time are *outputs* of deadline distribution and therefore do
// not live here; see package slicing.
type Task struct {
	// ID is the node index in the owning Graph; assigned by AddTask.
	ID int
	// Name is an optional human-readable label used in dumps.
	Name string
	// WCET[k] is the worst-case execution time of the task on a
	// processor of class k, or rtime.Unset if the task may not execute
	// on that class (e.g. it needs special hardware, §5.2). At least one
	// entry must be set.
	WCET []rtime.Time
	// Phase φᵢ is the earliest time at which the first invocation of the
	// task occurs, relative to the time origin. Meaningful for input
	// tasks; interior tasks inherit arrival times from slicing.
	Phase rtime.Time
	// Period Tᵢ is the interval between consecutive invocations; 0 means
	// the task is treated as single-shot (one invocation), which is how
	// the paper's experiments run. Package periodic expands periodic
	// sets over the planning cycle.
	Period rtime.Time
	// ETEDeadline is the end-to-end deadline Dα associated with this
	// task when it is an output task, rtime.Unset otherwise. The
	// generator assigns it from the overall laxity ratio (OLR).
	ETEDeadline rtime.Time
	// Pinned is the processor ID this task is statically assigned to, or
	// -1 under relaxed locality constraints (the paper's default). §1:
	// strict locality constraints arise for tasks bound to resources in
	// their physical proximity, such as sensors and actuators; for such
	// tasks the assignment — and hence the exact WCET — is known a
	// priori.
	Pinned int
	// Resources lists the indices of the exclusive logical resources
	// (shared data structures, devices) the task holds for its whole
	// execution. The paper's future work (§7.3) extends the technique
	// from processors to such general resources; see the resource-aware
	// dispatcher in package sched and the ADAPT-R metric in package
	// slicing. Empty for the paper's core experiments.
	Resources []int
	// Criticality classifies the task for graceful degradation
	// (imprecise-computation model): Mandatory tasks must always meet
	// their deadlines, Optional tasks may be shed under overload. The
	// zero value is Mandatory.
	Criticality Criticality
	// Value is the task's value weight for degraded-quality accounting;
	// ValueWeight treats non-positive values as 1. Only meaningful
	// relative to the other tasks of the same graph.
	Value float64
}

// SharesResource reports whether the two tasks require at least one
// common exclusive resource.
func SharesResource(a, b *Task) bool {
	for _, ra := range a.Resources {
		for _, rb := range b.Resources {
			if ra == rb {
				return true
			}
		}
	}
	return false
}

// EligibleOn reports whether the task may execute on processor class k.
func (t *Task) EligibleOn(k int) bool {
	return k >= 0 && k < len(t.WCET) && t.WCET[k].IsSet()
}

// Arc is a directed precedence constraint τ_from ≺· τ_to, optionally
// carrying a message of Items data items (the arc weight m_{i,j}).
type Arc struct {
	From, To int
	Items    rtime.Time
}

// Graph is an immutable-after-Freeze directed acyclic task graph.
// Construct with NewGraph, populate with AddTask/AddArc, and call Freeze
// before using any query method.
type Graph struct {
	NumClasses int

	tasks []*Task
	arcs  []Arc

	// Adjacency, by task ID. succs/preds hold IDs of immediate
	// successors/predecessors; arcIdx[from][to] indexes into arcs.
	succs  [][]int
	preds  [][]int
	arcIdx map[[2]int]int

	frozen bool

	// Derived, filled by Freeze.
	topo    []int        // topological order of task IDs
	level   []int        // length (in arcs) of the longest incoming path
	desc    []bitset.Set // desc[i]: IDs reachable from i (strict descendants)
	anc     []bitset.Set // anc[i]: IDs that reach i (strict ancestors)
	psetLen []int        // |Ψᵢ|
	inputs  []int
	outputs []int
	depth   int
}

// NewGraph returns an empty graph whose tasks execute on numClasses
// processor classes.
func NewGraph(numClasses int) *Graph {
	if numClasses <= 0 {
		panic("taskgraph: NewGraph needs at least one processor class")
	}
	return &Graph{
		NumClasses: numClasses,
		arcIdx:     make(map[[2]int]int),
	}
}

// AddTask appends a task and returns it. The task's WCET slice must have
// exactly NumClasses entries with at least one set; Phase must be
// non-negative. The returned task's ID is its index in the graph.
func (g *Graph) AddTask(name string, wcet []rtime.Time, phase rtime.Time) (*Task, error) {
	if g.frozen {
		return nil, fmt.Errorf("taskgraph: AddTask on frozen graph")
	}
	if len(wcet) != g.NumClasses {
		return nil, fmt.Errorf("taskgraph: task %q has %d WCET entries, graph has %d classes",
			name, len(wcet), g.NumClasses)
	}
	any := false
	for k, c := range wcet {
		if c == rtime.Unset {
			continue
		}
		if c <= 0 {
			return nil, fmt.Errorf("taskgraph: task %q has non-positive WCET %d on class %d", name, c, k)
		}
		any = true
	}
	if !any {
		return nil, fmt.Errorf("taskgraph: task %q is eligible on no processor class", name)
	}
	if phase < 0 {
		return nil, fmt.Errorf("taskgraph: task %q has negative phase %d", name, phase)
	}
	t := &Task{
		ID:          len(g.tasks),
		Name:        name,
		WCET:        append([]rtime.Time(nil), wcet...),
		Phase:       phase,
		ETEDeadline: rtime.Unset,
		Pinned:      -1,
	}
	g.tasks = append(g.tasks, t)
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	return t, nil
}

// MustAddTask is AddTask that panics on error; it is a convenience for
// tests and examples that build literal graphs.
func (g *Graph) MustAddTask(name string, wcet []rtime.Time, phase rtime.Time) *Task {
	t, err := g.AddTask(name, wcet, phase)
	if err != nil {
		panic(err)
	}
	return t
}

// AddArc records the precedence constraint from ≺· to with a message of
// items data items (0 for pure control dependences). Duplicate arcs and
// self-loops are rejected; cycles are detected at Freeze.
func (g *Graph) AddArc(from, to int, items rtime.Time) error {
	if g.frozen {
		return fmt.Errorf("taskgraph: AddArc on frozen graph")
	}
	if from < 0 || from >= len(g.tasks) || to < 0 || to >= len(g.tasks) {
		return fmt.Errorf("taskgraph: arc (%d → %d) references missing task", from, to)
	}
	if from == to {
		return fmt.Errorf("taskgraph: self-loop on task %d", from)
	}
	if items < 0 {
		return fmt.Errorf("taskgraph: arc (%d → %d) has negative message size", from, to)
	}
	key := [2]int{from, to}
	if _, dup := g.arcIdx[key]; dup {
		return fmt.Errorf("taskgraph: duplicate arc (%d → %d)", from, to)
	}
	g.arcIdx[key] = len(g.arcs)
	g.arcs = append(g.arcs, Arc{From: from, To: to, Items: items})
	g.succs[from] = append(g.succs[from], to)
	g.preds[to] = append(g.preds[to], from)
	return nil
}

// MustAddArc is AddArc that panics on error.
func (g *Graph) MustAddArc(from, to int, items rtime.Time) {
	if err := g.AddArc(from, to, items); err != nil {
		panic(err)
	}
}

// Freeze validates the graph (non-empty, acyclic) and computes the
// derived structures. It must be called exactly once, after which the
// graph is read-only.
func (g *Graph) Freeze() error {
	if g.frozen {
		return fmt.Errorf("taskgraph: Freeze called twice")
	}
	n := len(g.tasks)
	if n == 0 {
		return fmt.Errorf("taskgraph: empty graph")
	}
	// Kahn's algorithm gives the topological order and detects cycles.
	indeg := make([]int, n)
	for _, a := range g.arcs {
		indeg[a.To]++
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	topo := make([]int, 0, n)
	for len(queue) > 0 {
		// Pop the smallest ID for a deterministic order.
		sort.Ints(queue)
		v := queue[0]
		queue = queue[1:]
		topo = append(topo, v)
		for _, s := range g.succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(topo) != n {
		return fmt.Errorf("taskgraph: precedence constraints contain a cycle")
	}
	g.topo = topo

	// Levels and depth.
	g.level = make([]int, n)
	for _, v := range topo {
		for _, p := range g.preds[v] {
			if g.level[p]+1 > g.level[v] {
				g.level[v] = g.level[p] + 1
			}
		}
	}
	g.depth = 0
	for _, l := range g.level {
		if l+1 > g.depth {
			g.depth = l + 1
		}
	}

	// Transitive closure via bitsets, in reverse topological order for
	// descendants and forward order for ancestors: O(n·|A|/64) words.
	g.desc = make([]bitset.Set, n)
	g.anc = make([]bitset.Set, n)
	for i := 0; i < n; i++ {
		g.desc[i] = bitset.New(n)
		g.anc[i] = bitset.New(n)
	}
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		for _, s := range g.succs[v] {
			g.desc[v].Add(s)
			g.desc[v].UnionWith(g.desc[s])
		}
	}
	for _, v := range topo {
		for _, p := range g.preds[v] {
			g.anc[v].Add(p)
			g.anc[v].UnionWith(g.anc[p])
		}
	}

	// Parallel sets: Ψᵢ = T \ ({τᵢ} ∪ desc(i) ∪ anc(i)).
	g.psetLen = make([]int, n)
	for i := 0; i < n; i++ {
		g.psetLen[i] = n - 1 - g.desc[i].Count() - g.anc[i].Count()
	}

	// Inputs and outputs.
	for i := 0; i < n; i++ {
		if len(g.preds[i]) == 0 {
			g.inputs = append(g.inputs, i)
		}
		if len(g.succs[i]) == 0 {
			g.outputs = append(g.outputs, i)
		}
	}
	g.frozen = true
	return nil
}

// MustFreeze is Freeze that panics on error.
func (g *Graph) MustFreeze() {
	if err := g.Freeze(); err != nil {
		panic(err)
	}
}

// Frozen reports whether Freeze has completed.
func (g *Graph) Frozen() bool { return g.frozen }

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumArcs returns the number of precedence arcs.
func (g *Graph) NumArcs() int { return len(g.arcs) }

// Task returns the task with the given ID.
func (g *Graph) Task(id int) *Task { return g.tasks[id] }

// Tasks returns the task slice, indexed by ID. Callers must not mutate it.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Arcs returns the arc slice. Callers must not mutate it.
func (g *Graph) Arcs() []Arc { return g.arcs }

// Succs returns the immediate successors of id. Callers must not mutate it.
func (g *Graph) Succs(id int) []int { return g.succs[id] }

// Preds returns the immediate predecessors of id. Callers must not mutate it.
func (g *Graph) Preds(id int) []int { return g.preds[id] }

// ArcBetween returns the arc from → to and whether it exists.
func (g *Graph) ArcBetween(from, to int) (Arc, bool) {
	if i, ok := g.arcIdx[[2]int{from, to}]; ok {
		return g.arcs[i], true
	}
	return Arc{}, false
}

// MessageItems returns the message size on the arc from → to, or 0 if the
// arc does not exist or carries no data.
func (g *Graph) MessageItems(from, to int) rtime.Time {
	a, ok := g.ArcBetween(from, to)
	if !ok {
		return 0
	}
	return a.Items
}

func (g *Graph) mustBeFrozen(op string) {
	if !g.frozen {
		panic("taskgraph: " + op + " before Freeze")
	}
}

// TopoOrder returns task IDs in a deterministic topological order.
// Callers must not mutate the returned slice.
func (g *Graph) TopoOrder() []int {
	g.mustBeFrozen("TopoOrder")
	return g.topo
}

// Depth returns the number of levels in the graph (length in tasks of the
// longest chain).
func (g *Graph) Depth() int {
	g.mustBeFrozen("Depth")
	return g.depth
}

// Level returns the 0-based level of id: the length in arcs of the
// longest path from any input task to id.
func (g *Graph) Level(id int) int {
	g.mustBeFrozen("Level")
	return g.level[id]
}

// Inputs returns the IDs of tasks with no predecessors.
func (g *Graph) Inputs() []int {
	g.mustBeFrozen("Inputs")
	return g.inputs
}

// Outputs returns the IDs of tasks with no successors.
func (g *Graph) Outputs() []int {
	g.mustBeFrozen("Outputs")
	return g.outputs
}

// Reaches reports whether there is a directed path from a to b (a ≺ b).
func (g *Graph) Reaches(a, b int) bool {
	g.mustBeFrozen("Reaches")
	return g.desc[a].Has(b)
}

// ParallelSetSize returns |Ψᵢ|, the number of tasks that are neither
// predecessors nor successors of id — the candidates for executing in
// parallel with it (eq. 8).
func (g *Graph) ParallelSetSize(id int) int {
	g.mustBeFrozen("ParallelSetSize")
	return g.psetLen[id]
}

// ParallelSet appends the IDs of Ψᵢ to dst in increasing order.
func (g *Graph) ParallelSet(id int, dst []int) []int {
	g.mustBeFrozen("ParallelSet")
	n := len(g.tasks)
	rel := g.desc[id].Clone()
	rel.UnionWith(g.anc[id])
	rel.Add(id)
	for i := 0; i < n; i++ {
		if !rel.Has(i) {
			dst = append(dst, i)
		}
	}
	return dst
}

// ResourceConflicts returns the number of tasks in Ψᵢ (potentially
// parallel tasks) that share at least one exclusive resource with id —
// tasks that serialize with it no matter how many processors exist.
func (g *Graph) ResourceConflicts(id int) int {
	g.mustBeFrozen("ResourceConflicts")
	ti := g.tasks[id]
	if len(ti.Resources) == 0 {
		return 0
	}
	count := 0
	for j := range g.tasks {
		if j == id || g.desc[id].Has(j) || g.anc[id].Has(j) {
			continue
		}
		if SharesResource(ti, g.tasks[j]) {
			count++
		}
	}
	return count
}

// StaticLevels returns SL(τᵢ) for every task under the estimated WCETs
// est: the length of the longest chain that starts at τᵢ and ends at an
// output task, where a chain's length is the sum of the estimated WCETs
// of its tasks (§3.2).
func (g *Graph) StaticLevels(est []rtime.Time) []rtime.Time {
	g.mustBeFrozen("StaticLevels")
	if len(est) != len(g.tasks) {
		panic("taskgraph: StaticLevels estimate length mismatch")
	}
	sl := make([]rtime.Time, len(g.tasks))
	for i := len(g.topo) - 1; i >= 0; i-- {
		v := g.topo[i]
		var best rtime.Time
		for _, s := range g.succs[v] {
			if sl[s] > best {
				best = sl[s]
			}
		}
		sl[v] = est[v] + best
	}
	return sl
}

// CriticalPathLength returns max SL(τ) over all tasks: the length of the
// longest path in the graph under est.
func (g *Graph) CriticalPathLength(est []rtime.Time) rtime.Time {
	var best rtime.Time
	for _, sl := range g.StaticLevels(est) {
		if sl > best {
			best = sl
		}
	}
	return best
}

// TotalWork returns Σ est over all tasks: the application workload.
func TotalWork(est []rtime.Time) rtime.Time {
	var sum rtime.Time
	for _, c := range est {
		sum += c
	}
	return sum
}

// AvgParallelism returns ξ, the average task-graph parallelism (eq. 7):
// the application workload divided by the length of the longest path.
func (g *Graph) AvgParallelism(est []rtime.Time) float64 {
	cp := g.CriticalPathLength(est)
	if cp == 0 {
		return 0
	}
	return float64(TotalWork(est)) / float64(cp)
}

// ValidateChain reports whether ids form a task chain: each element is an
// immediate successor of the previous one.
func (g *Graph) ValidateChain(ids []int) error {
	g.mustBeFrozen("ValidateChain")
	for i := 1; i < len(ids); i++ {
		if _, ok := g.ArcBetween(ids[i-1], ids[i]); !ok {
			return fmt.Errorf("taskgraph: %d → %d is not an arc", ids[i-1], ids[i])
		}
	}
	return nil
}

// LevelWidths returns, for each level, the number of tasks on it — the
// per-stage parallelism profile that drives contention.
func (g *Graph) LevelWidths() []int {
	g.mustBeFrozen("LevelWidths")
	widths := make([]int, g.depth)
	for _, l := range g.level {
		widths[l]++
	}
	return widths
}

// DegreeStats summarises the fan-in/fan-out distribution.
type DegreeStats struct {
	MaxIn, MaxOut   int
	MeanIn, MeanOut float64
}

// Degrees returns the degree statistics of the graph.
func (g *Graph) Degrees() DegreeStats {
	g.mustBeFrozen("Degrees")
	var s DegreeStats
	n := len(g.tasks)
	for i := 0; i < n; i++ {
		in, out := len(g.preds[i]), len(g.succs[i])
		if in > s.MaxIn {
			s.MaxIn = in
		}
		if out > s.MaxOut {
			s.MaxOut = out
		}
		s.MeanIn += float64(in)
		s.MeanOut += float64(out)
	}
	s.MeanIn /= float64(n)
	s.MeanOut /= float64(n)
	return s
}
