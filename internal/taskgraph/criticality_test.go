package taskgraph

import (
	"testing"

	"repro/internal/rtime"
)

// mixed builds the reference mixed-criticality graph:
//
//	A(m) → B(m) → E(o, 0.5, ETE 90)
//	A(m) → C(o, 2) → D(o, 2, ETE 100)
func mixed(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(1)
	a := g.MustAddTask("A", c(10), 0)
	b := g.MustAddTask("B", c(10), 0)
	cc := g.MustAddTask("C", c(10), 0)
	d := g.MustAddTask("D", c(10), 0)
	e := g.MustAddTask("E", c(10), 0)
	cc.Criticality, cc.Value = Optional, 2
	d.Criticality, d.Value = Optional, 2
	e.Criticality, e.Value = Optional, 0.5
	d.ETEDeadline = 100
	e.ETEDeadline = 90
	g.MustAddArc(a.ID, b.ID, 1)
	g.MustAddArc(a.ID, cc.ID, 1)
	g.MustAddArc(cc.ID, d.ID, 1)
	g.MustAddArc(b.ID, e.ID, 1)
	g.MustFreeze()
	return g
}

func TestValueWeight(t *testing.T) {
	if w := (&Task{}).ValueWeight(); w != 1 {
		t.Errorf("default ValueWeight = %v, want 1", w)
	}
	if w := (&Task{Value: -3}).ValueWeight(); w != 1 {
		t.Errorf("negative Value weight = %v, want 1", w)
	}
	if w := (&Task{Value: 2.5}).ValueWeight(); w != 2.5 {
		t.Errorf("ValueWeight = %v, want 2.5", w)
	}
}

func TestSheddable(t *testing.T) {
	g := mixed(t)
	want := []bool{false, false, true, true, true} // A B mandatory
	got := g.Sheddable()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sheddable[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// An optional task feeding a mandatory one is not sheddable.
	g2 := NewGraph(1)
	o := g2.MustAddTask("O", c(5), 0)
	o.Criticality = Optional
	m := g2.MustAddTask("M", c(5), 0)
	g2.MustAddArc(o.ID, m.ID, 0)
	g2.MustFreeze()
	if s := g2.Sheddable(); s[o.ID] || s[m.ID] {
		t.Errorf("Sheddable = %v, want all false", s)
	}
}

func TestSheddableClosed(t *testing.T) {
	g := mixed(t)
	s := g.Sheddable()
	for id, ok := range s {
		if !ok {
			continue
		}
		for _, succ := range g.Succs(id) {
			if !s[succ] {
				t.Errorf("sheddable task %d has unsheddable successor %d", id, succ)
			}
		}
	}
}

func TestInheritedETE(t *testing.T) {
	g := mixed(t)
	ete := g.InheritedETE()
	want := []rtime.Time{90, 90, 100, 100, 90} // A min(90,100)=90, B→E 90
	for i := range want {
		if ete[i] != want[i] {
			t.Errorf("InheritedETE[%d] = %v, want %v", i, ete[i], want[i])
		}
	}
}

func TestInduce(t *testing.T) {
	g := mixed(t)
	// Shed the C→D subtree.
	keep := []bool{true, true, false, false, true}
	ng, old2new, new2old, err := g.Induce(keep)
	if err != nil {
		t.Fatal(err)
	}
	if ng.Frozen() {
		t.Fatal("Induce returned a frozen graph")
	}
	ng.MustFreeze()
	if ng.NumTasks() != 3 || ng.NumArcs() != 2 {
		t.Fatalf("induced graph has %d tasks / %d arcs, want 3 / 2", ng.NumTasks(), ng.NumArcs())
	}
	if old2new[2] != -1 || old2new[3] != -1 {
		t.Errorf("shed tasks mapped to %d, %d; want -1, -1", old2new[2], old2new[3])
	}
	for ni, oi := range new2old {
		if old2new[oi] != ni {
			t.Errorf("map mismatch: new2old[%d] = %d but old2new[%d] = %d", ni, oi, oi, old2new[oi])
		}
		ot, nt := g.Task(oi), ng.Task(ni)
		if nt.Name != ot.Name || nt.Criticality != ot.Criticality || nt.Value != ot.Value ||
			nt.ETEDeadline != ot.ETEDeadline {
			t.Errorf("task %d attributes not copied", oi)
		}
	}
	// Arc A→B and B→E survive with their items.
	if _, ok := ng.ArcBetween(old2new[0], old2new[1]); !ok {
		t.Error("arc A→B lost")
	}
	if _, ok := ng.ArcBetween(old2new[1], old2new[4]); !ok {
		t.Error("arc B→E lost")
	}
}

func TestInduceErrors(t *testing.T) {
	g := mixed(t)
	if _, _, _, err := g.Induce([]bool{true}); err == nil {
		t.Error("short mask accepted")
	}
	if _, _, _, err := g.Induce(make([]bool, g.NumTasks())); err == nil {
		t.Error("empty keep set accepted")
	}
}

func TestCriticalityString(t *testing.T) {
	if Mandatory.String() != "mandatory" || Optional.String() != "optional" {
		t.Error("Criticality strings wrong")
	}
	if Criticality(7).String() != "Criticality(7)" {
		t.Error("unknown Criticality string wrong")
	}
}
