// Package bitset implements a fixed-capacity bit set used for reachability
// computations over task graphs (transitive closure, parallel sets). It is
// allocation-conscious: a Set is a plain []uint64 and all per-element
// operations are branch-free word operations, which keeps the O(n³/64)
// transitive-closure pass cheap even for graphs far larger than the
// 40–60-task workloads of the paper.
package bitset

import "math/bits"

// Set is a bit set over the universe [0, capacity). The zero value of the
// slice type is an empty set of capacity 0; use New for a sized set.
type Set []uint64

const wordBits = 64

// New returns an empty set able to hold elements in [0, n).
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return make(Set, (n+wordBits-1)/wordBits)
}

// Cap returns the capacity of the set in elements (a multiple of 64).
func (s Set) Cap() int { return len(s) * wordBits }

// Add inserts i into the set. i must be within capacity.
func (s Set) Add(i int) { s[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Remove deletes i from the set. i must be within capacity.
func (s Set) Remove(i int) { s[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Has reports whether i is in the set. i must be within capacity.
func (s Set) Has(i int) bool { return s[i/wordBits]&(1<<(uint(i)%wordBits)) != 0 }

// Count returns the number of elements in the set.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// UnionWith adds every element of o to s. The sets must have equal
// capacity.
func (s Set) UnionWith(o Set) {
	checkLen(s, o)
	for i, w := range o {
		s[i] |= w
	}
}

// IntersectWith removes every element of s not in o. The sets must have
// equal capacity.
func (s Set) IntersectWith(o Set) {
	checkLen(s, o)
	for i, w := range o {
		s[i] &= w
	}
}

// DifferenceWith removes every element of o from s. The sets must have
// equal capacity.
func (s Set) DifferenceWith(o Set) {
	checkLen(s, o)
	for i, w := range o {
		s[i] &^= w
	}
}

// Intersects reports whether s and o share at least one element. The sets
// must have equal capacity.
func (s Set) Intersects(o Set) bool {
	checkLen(s, o)
	for i, w := range o {
		if s[i]&w != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Clear removes every element.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Equal reports whether s and o contain exactly the same elements. The
// sets must have equal capacity.
func (s Set) Equal(o Set) bool {
	checkLen(s, o)
	for i, w := range o {
		if s[i] != w {
			return false
		}
	}
	return true
}

// Elements appends the members of the set to dst in increasing order and
// returns the extended slice.
func (s Set) Elements(dst []int) []int {
	for wi, w := range s {
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, base+b)
			w &^= 1 << uint(b)
		}
	}
	return dst
}

func checkLen(a, b Set) {
	if len(a) != len(b) {
		panic("bitset: capacity mismatch")
	}
}
