package bitset

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Count() != 0 {
		t.Errorf("new set has %d elements", s.Count())
	}
	if s.Cap() < 100 {
		t.Errorf("capacity %d < 100", s.Cap())
	}
	for i := 0; i < 100; i++ {
		if s.Has(i) {
			t.Fatalf("new set contains %d", i)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestAddRemoveHas(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Errorf("Add(%d) not visible", i)
		}
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d, want 8", s.Count())
	}
	s.Add(63) // idempotent
	if s.Count() != 8 {
		t.Errorf("duplicate Add changed count to %d", s.Count())
	}
	s.Remove(63)
	if s.Has(63) {
		t.Error("Remove(63) not visible")
	}
	s.Remove(63) // idempotent
	if s.Count() != 7 {
		t.Errorf("Count after remove = %d, want 7", s.Count())
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := New(70), New(70)
	a.Add(1)
	a.Add(65)
	b.Add(65)
	b.Add(3)

	u := a.Clone()
	u.UnionWith(b)
	if got := u.Elements(nil); !equalInts(got, []int{1, 3, 65}) {
		t.Errorf("union = %v", got)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Elements(nil); !equalInts(got, []int{65}) {
		t.Errorf("intersection = %v", got)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.Elements(nil); !equalInts(got, []int{1}) {
		t.Errorf("difference = %v", got)
	}

	if !a.Intersects(b) {
		t.Error("a and b share 65 but Intersects is false")
	}
	c := New(70)
	c.Add(2)
	if a.Intersects(c) {
		t.Error("disjoint sets report intersection")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched UnionWith should panic")
		}
	}()
	New(64).UnionWith(New(128))
}

func TestCloneIndependence(t *testing.T) {
	a := New(10)
	a.Add(5)
	b := a.Clone()
	b.Add(7)
	if a.Has(7) {
		t.Error("mutating clone affected original")
	}
	if !b.Has(5) {
		t.Error("clone lost element")
	}
}

func TestClearAndEqual(t *testing.T) {
	a := New(64)
	a.Add(10)
	a.Add(20)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Clear()
	if b.Count() != 0 {
		t.Error("Clear left elements")
	}
	if a.Equal(b) {
		t.Error("cleared set equal to populated set")
	}
}

func TestElementsOrdered(t *testing.T) {
	s := New(200)
	want := []int{199, 0, 64, 63, 128, 5}
	for _, i := range want {
		s.Add(i)
	}
	sort.Ints(want)
	if got := s.Elements(nil); !equalInts(got, want) {
		t.Errorf("Elements = %v, want %v", got, want)
	}
}

func TestElementsAppends(t *testing.T) {
	s := New(10)
	s.Add(3)
	got := s.Elements([]int{-1})
	if !equalInts(got, []int{-1, 3}) {
		t.Errorf("Elements did not append: %v", got)
	}
}

// Property: a set built from arbitrary inserts reports exactly the
// distinct inserted elements.
func TestAddHasProperty(t *testing.T) {
	f := func(xs []uint8) bool {
		s := New(256)
		seen := map[int]bool{}
		for _, x := range xs {
			s.Add(int(x))
			seen[int(x)] = true
		}
		if s.Count() != len(seen) {
			return false
		}
		for i := 0; i < 256; i++ {
			if s.Has(i) != seen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan-ish identity |A∪B| + |A∩B| == |A| + |B|.
func TestInclusionExclusionProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(256), New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		u := a.Clone()
		u.UnionWith(b)
		i := a.Clone()
		i.IntersectWith(b)
		return u.Count()+i.Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
