package anneal

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

func TestSearchNeverWorseThanStart(t *testing.T) {
	cfg := gen.Default(3)
	cfg.Seed = 12
	cfg.OLR = 0.5
	w := gen.MustGenerate(cfg)
	est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(w.Graph, w.Platform, est, slicing.CalibratedParams(),
		Options{Iterations: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost > res.StartCost {
		t.Errorf("annealing worsened the objective: %.1f → %.1f", res.StartCost, res.BestCost)
	}
	if res.Evaluations < 2 {
		t.Errorf("only %d evaluations", res.Evaluations)
	}
	// The returned artifacts are consistent: re-dispatching the returned
	// assignment reproduces the returned schedule's feasibility.
	s2, err := sched.Dispatch(w.Graph, w.Platform, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Feasible != res.Schedule.Feasible {
		t.Error("returned assignment and schedule disagree")
	}
	if err := res.Assignment.Validate(w.Graph); err != nil {
		t.Errorf("annealed assignment invalid: %v", err)
	}
}

func TestSearchRescuesFailingWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many pipelines")
	}
	// Find workloads ADAPT-L fails and count how many annealing rescues:
	// the headroom above the closed-form metric.
	rescued, failing := 0, 0
	for idx := 0; idx < 40 && failing < 12; idx++ {
		cfg := gen.Default(3)
		cfg.Seed = gen.SubSeed(21, idx)
		cfg.OLR = 0.5
		w := gen.MustGenerate(cfg)
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			t.Fatal(err)
		}
		asg, err := slicing.Distribute(w.Graph, est, 3, slicing.AdaptL(), slicing.CalibratedParams())
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.Dispatch(w.Graph, w.Platform, asg)
		if err != nil {
			t.Fatal(err)
		}
		if s.Feasible {
			continue
		}
		failing++
		res, err := Search(w.Graph, w.Platform, est, slicing.CalibratedParams(),
			Options{Iterations: 250, Seed: gen.SubSeed(22, idx)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Schedule.Feasible {
			rescued++
		}
	}
	t.Logf("annealing rescued %d of %d ADAPT-L failures", rescued, failing)
	if failing == 0 {
		t.Skip("no failing workloads at this point")
	}
	if rescued == 0 {
		t.Error("searched virtual costs should rescue at least one failure (headroom exists)")
	}
}

func TestSearchDeterministic(t *testing.T) {
	cfg := gen.Default(3)
	cfg.Seed = 5
	cfg.OLR = 0.5
	w := gen.MustGenerate(cfg)
	est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Search(w.Graph, w.Platform, est, slicing.CalibratedParams(), Options{Iterations: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(w.Graph, w.Platform, est, slicing.CalibratedParams(), Options{Iterations: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost || a.Evaluations != b.Evaluations {
		t.Errorf("same seed diverged: (%v, %d) vs (%v, %d)",
			a.BestCost, a.Evaluations, b.BestCost, b.Evaluations)
	}
}
