// Package anneal searches the space the adaptive metrics live in.
//
// Every metric in the paper's family — PURE, ADAPT-G, ADAPT-L, ADAPT-R —
// reduces to one decision: the vector of virtual execution times ĉ fed
// to the slicing algorithm. ADAPT-L computes ĉ from a closed-form
// contention model (eq. 8); this package instead *searches* for a good ĉ
// by simulated annealing (the optimization technique the paper's related
// work [15] applies to scheduling), evaluating each candidate by running
// the actual slicing + dispatch pipeline.
//
// The annealed result is not a practical metric — it costs thousands of
// pipeline evaluations per workload, and it peeks at the scheduler — but
// it upper-bounds what any closed-form virtual-cost rule could achieve,
// which quantifies the remaining headroom above ADAPT-L.
package anneal

import (
	"math"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/deadline"
	"repro/internal/pipeline"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Options tunes the search.
type Options struct {
	// Iterations bounds the annealing steps (default 400).
	Iterations int
	// Seed drives the proposal randomness.
	Seed int64
	// InitTemp is the initial acceptance temperature in lateness units
	// (default 20).
	InitTemp float64
}

// Result reports the search outcome.
type Result struct {
	// Assignment is the best window assignment found.
	Assignment *slicing.Assignment
	// Schedule is its dispatch outcome.
	Schedule *sched.Schedule
	// Virtual is the ĉ vector that produced it.
	Virtual []rtime.Time
	// Evaluations counts pipeline runs.
	Evaluations int
	// StartCost and BestCost are the objective before and after.
	StartCost, BestCost float64
}

// fixedCosts is a Metric that replays an externally chosen ĉ vector
// through the slicing machinery (PURE-shaped sharing, like the ADAPT
// family).
type fixedCosts struct {
	vc []rtime.Time
}

func (f *fixedCosts) Name() string { return "ANNEAL" }
func (f *fixedCosts) VirtualCosts(*slicing.Env) []rtime.Time {
	return append([]rtime.Time(nil), f.vc...)
}
func (f *fixedCosts) R(w rtime.Time, n int, sum rtime.Time) float64 {
	if n == 0 {
		return math.Inf(1)
	}
	return float64(w-sum) / float64(n)
}
func (f *fixedCosts) Shares(w rtime.Time, costs []rtime.Time) []float64 {
	var sum rtime.Time
	for _, c := range costs {
		sum += c
	}
	r := f.R(w, len(costs), sum)
	out := make([]float64, len(costs))
	for i, c := range costs {
		out[i] = float64(c) + r
	}
	return out
}

// cost is the annealing objective: missed tasks dominate, max lateness
// breaks ties (so progress continues once feasible).
func cost(s *sched.Schedule) float64 {
	return float64(len(s.Missed))*1000 + float64(s.MaxLateness)
}

// Search anneals the virtual-cost vector for one workload, starting
// from ADAPT-L's closed-form choice.
func Search(g *taskgraph.Graph, p *arch.Platform, est []rtime.Time, params slicing.Params, opt Options) (*Result, error) {
	if opt.Iterations <= 0 {
		opt.Iterations = 400
	}
	if opt.InitTemp <= 0 {
		opt.InitTemp = 20
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Seed the search at ADAPT-L's virtual costs.
	env := &slicing.Env{G: g, Est: est, M: p.M(), Params: params}
	cur := slicing.AdaptL().VirtualCosts(env)

	evaluate := func(vc []rtime.Time) (*slicing.Assignment, *sched.Schedule, float64, error) {
		// A fresh uncached builder per candidate: fixedCosts' identity is
		// the ĉ vector, which its stage name cannot capture, so cached
		// plans would alias across candidates.
		b := &pipeline.Builder{
			Distributor: deadline.Sliced{Metric: &fixedCosts{vc: vc}, Params: params},
		}
		plan, err := b.Build(pipeline.Spec{Graph: g, Platform: p, Estimates: est})
		if err != nil {
			return nil, nil, 0, err
		}
		return plan.Assignment, plan.Schedule, cost(plan.Schedule), nil
	}

	asg, s, curCost, err := evaluate(cur)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Assignment: asg, Schedule: s,
		Virtual:     append([]rtime.Time(nil), cur...),
		Evaluations: 1,
		StartCost:   curCost, BestCost: curCost,
	}
	bestCost := curCost

	n := g.NumTasks()
	for it := 0; it < opt.Iterations; it++ {
		// Proposal: scale one task's virtual cost by a random factor in
		// [0.7, 1.4], never below its estimate.
		cand := append([]rtime.Time(nil), cur...)
		i := rng.Intn(n)
		f := 0.7 + 0.7*rng.Float64()
		v := rtime.Time(math.Round(float64(cand[i]) * f))
		if v < est[i] {
			v = est[i]
		}
		if v == cand[i] {
			v++
		}
		cand[i] = v

		candAsg, candSched, candCost, err := evaluate(cand)
		if err != nil {
			return nil, err
		}
		res.Evaluations++

		temp := opt.InitTemp * (1 - float64(it)/float64(opt.Iterations))
		accept := candCost <= curCost
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp((curCost-candCost)/temp)
		}
		if accept {
			cur, curCost = cand, candCost
			if candCost < bestCost {
				bestCost = candCost
				res.Assignment = candAsg
				res.Schedule = candSched
				res.Virtual = append([]rtime.Time(nil), cand...)
				res.BestCost = candCost
				if candSched.Feasible && candSched.MaxLateness < -30 {
					break // comfortably feasible; stop early
				}
			}
		}
	}
	return res, nil
}
