// Package stats provides the small statistical helpers the experiment
// harness needs: streaming mean/variance (Welford), binomial confidence
// intervals for success ratios, and simple histograms for lateness
// distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of observations with Welford's online
// algorithm, giving numerically stable mean and variance without storing
// the samples.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Merge folds another accumulator into r (parallel reduction).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := float64(r.n + o.n)
	d := o.mean - r.mean
	r.mean += d * float64(o.n) / n
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n += o.n
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// Ratio is a success counter with a Wilson confidence interval, the
// right interval for proportions near 0 or 1 — exactly where the paper's
// interesting data points live.
type Ratio struct {
	Succ, Total int
}

// Add records one trial.
func (r *Ratio) Add(success bool) {
	r.Total++
	if success {
		r.Succ++
	}
}

// Value returns the success ratio in [0, 1] (0 when empty).
func (r Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Succ) / float64(r.Total)
}

// Wilson returns the 95 % Wilson score interval for the ratio.
func (r Ratio) Wilson() (lo, hi float64) {
	if r.Total == 0 {
		return 0, 0
	}
	const z = 1.959964 // 97.5th percentile of the normal distribution
	n := float64(r.Total)
	p := r.Value()
	den := 1 + z*z/n
	center := (p + z*z/(2*n)) / den
	half := z / den * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String renders the ratio as a percentage with its sample size.
func (r Ratio) String() string {
	return fmt.Sprintf("%.1f%% (%d/%d)", 100*r.Value(), r.Succ, r.Total)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram counts observations into equal-width bins over [lo, hi];
// out-of-range values clamp to the edge bins.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
}

// NewHistogram creates a histogram with n bins over [lo, hi].
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: bad histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int {
	n := 0
	for _, b := range h.Bins {
		n += b
	}
	return n
}
