package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Var() != 0 {
		t.Error("empty accumulator not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 || !almost(r.Mean(), 5) {
		t.Errorf("mean = %v, n = %d", r.Mean(), r.N())
	}
	if !almost(r.Var(), 32.0/7) {
		t.Errorf("var = %v, want %v", r.Var(), 32.0/7)
	}
	if !almost(r.StdDev(), math.Sqrt(32.0/7)) {
		t.Errorf("stddev = %v", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	f := func(xsRaw, ysRaw []int16) bool {
		var all, a, b Running
		for _, x := range xsRaw {
			all.Add(float64(x))
			a.Add(float64(x))
		}
		for _, y := range ysRaw {
			all.Add(float64(y))
			b.Add(float64(y))
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		return math.Abs(a.Mean()-all.Mean()) < 1e-6 &&
			math.Abs(a.Var()-all.Var()) < 1e-4 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(3)
	a.Merge(b) // empty other
	if a.N() != 1 || a.Mean() != 3 {
		t.Error("merging empty changed accumulator")
	}
	var c Running
	c.Merge(a) // empty receiver
	if c.N() != 1 || c.Mean() != 3 {
		t.Error("merging into empty lost data")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Error("empty ratio not zero")
	}
	for i := 0; i < 10; i++ {
		r.Add(i < 7)
	}
	if !almost(r.Value(), 0.7) {
		t.Errorf("value = %v", r.Value())
	}
	lo, hi := r.Wilson()
	if lo >= 0.7 || hi <= 0.7 {
		t.Errorf("Wilson interval [%v, %v] should contain 0.7", lo, hi)
	}
	if lo < 0 || hi > 1 {
		t.Errorf("Wilson interval [%v, %v] outside [0, 1]", lo, hi)
	}
	if got := r.String(); got != "70.0% (7/10)" {
		t.Errorf("String = %q", got)
	}
}

func TestWilsonEdgeCases(t *testing.T) {
	var empty Ratio
	lo, hi := empty.Wilson()
	if lo != 0 || hi != 0 {
		t.Error("empty Wilson not zero")
	}
	all := Ratio{Succ: 50, Total: 50}
	lo, hi = all.Wilson()
	if hi < 0.999 || lo > 1 || lo < 0.9 {
		t.Errorf("all-success Wilson = [%v, %v]", lo, hi)
	}
	none := Ratio{Succ: 0, Total: 50}
	lo, hi = none.Wilson()
	if lo != 0 || hi > 0.1 {
		t.Errorf("no-success Wilson = [%v, %v]", lo, hi)
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	small := Ratio{Succ: 5, Total: 10}
	big := Ratio{Succ: 500, Total: 1000}
	slo, shi := small.Wilson()
	blo, bhi := big.Wilson()
	if bhi-blo >= shi-slo {
		t.Error("bigger sample should give a tighter interval")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Error("extremes wrong")
	}
	if !almost(Percentile(xs, 50), 3) {
		t.Errorf("median = %v", Percentile(xs, 50))
	}
	if !almost(Percentile(xs, 25), 2) {
		t.Errorf("p25 = %v", Percentile(xs, 25))
	}
	if !almost(Percentile([]float64{1, 2}, 75), 1.75) {
		t.Errorf("interpolation wrong: %v", Percentile([]float64{1, 2}, 75))
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not zero")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Percentile sorted its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Bins[0] != 3 { // -1 (clamped), 0, 1.9
		t.Errorf("bin0 = %d", h.Bins[0])
	}
	if h.Bins[4] != 3 { // 9.9, 10 (clamped), 42 (clamped)
		t.Errorf("bin4 = %d", h.Bins[4])
	}
	defer func() {
		if recover() == nil {
			t.Error("bad histogram shape should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}
