// Package gen implements the random workload generator of §5.1–5.2: the
// heterogeneous multiprocessor platforms and the random application task
// graphs the paper's experiments are run on.
//
// Every knob of the paper's setup is a Config field with the published
// value as its default: 40–60 tasks per graph, depth 8–12 levels, one to
// three successors/predecessors per task, uniformly distributed execution
// times with mean c_mean = 20 and deviation ±ETD, 5 % per-class
// ineligibility, communication-to-computation ratio CCR = 0.1 over a
// shared bus of one time unit per data item, end-to-end deadlines set
// from the overall laxity ratio OLR, and one to three randomly drawn
// processor classes.
//
// Generation is fully deterministic: a Config carries a seed, and
// SubSeed splits a master seed into independent per-graph seeds, so
// experiments are reproducible and order-independent.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// Config collects every generator parameter. Zero values are invalid;
// start from Default.
type Config struct {
	// Seed drives all randomness of one workload.
	Seed int64

	// MinTasks and MaxTasks bound the task count n (paper: 40–60).
	MinTasks, MaxTasks int
	// MinDepth and MaxDepth bound the number of levels (paper: 8–12).
	MinDepth, MaxDepth int
	// MaxFan bounds the number of immediate successors and predecessors
	// per task (paper: 1–3).
	MaxFan int

	// CMean is the mean task execution time (paper: 20 time units).
	CMean rtime.Time
	// ETD is the execution time distribution: the maximum deviation of a
	// task's execution time from CMean, as a fraction (paper default 0.25).
	ETD float64
	// IneligibleProb is the probability that a task may not execute on a
	// particular processor class (paper: 0.05).
	IneligibleProb float64

	// CCR is the communication-to-computation cost ratio: the mean
	// message communication cost over the mean execution time (paper: 0.1).
	CCR float64
	// OLR is the overall laxity ratio: the end-to-end deadline divided by
	// the average accumulated task-graph workload (paper default 0.8).
	OLR float64

	// M is the number of processors (paper: 2–8).
	M int
	// MinClasses and MaxClasses bound the number of processor classes
	// |E| drawn per workload (paper: 1–3).
	MinClasses, MaxClasses int
	// BusDelayPerItem is the nominal shared-bus delay (paper: 1).
	BusDelayPerItem rtime.Time
	// NumResources is the number of exclusive logical resources in the
	// application (0 for the paper's core experiments; the §7.3
	// extension studies use a few).
	NumResources int
	// ResourceProb is the probability that a task requires one
	// (uniformly chosen) resource.
	ResourceProb float64
	// OptionalProb drives the mixed-criticality labelling for the
	// graceful-degradation studies: walking the graph bottom-up, a task
	// whose successors are all optional becomes Optional with this
	// probability (and draws a value weight uniform in [0.5, 1.5)), so
	// the optional set is always shed-closed — every optional task is
	// sheddable together with its descendants. 0 (the paper's setup)
	// leaves every task mandatory and the workload byte-identical to
	// pre-extension generation.
	OptionalProb float64
	// PinProb is the probability that an input or output task is under
	// a strict locality constraint (§1: sensors and actuators bound to
	// their physical processor): it is pinned to a uniformly chosen
	// processor whose class it can execute on. 0 for the paper's
	// relaxed-constraints experiments.
	PinProb float64
	// Release selects single-shot (the paper's model, the zero value —
	// workloads stay byte-identical) or sporadic recurring releases:
	// the generated graph is expanded into Release.Count copies with
	// seeded release times at least MinGap apart, each delayed by up to
	// Jitter (see ExpandReleases).
	Release Release
	// Shape selects the structural family of the generated graphs
	// (default Layered, the paper's §5.2 generator).
	Shape Shape
	// Kind selects how per-class execution times relate (paper's
	// platform is heterogeneous with independent per-class times, i.e.
	// Unrelated; Identical and Uniform are provided for the homogeneous
	// baselines of the earlier work).
	Kind arch.Kind
}

// Default returns the paper's experimental setup (§5 and §6 defaults)
// for a system of m processors.
func Default(m int) Config {
	return Config{
		MinTasks: 40, MaxTasks: 60,
		MinDepth: 8, MaxDepth: 12,
		MaxFan:         3,
		CMean:          20,
		ETD:            0.25,
		IneligibleProb: 0.05,
		CCR:            0.1,
		OLR:            0.8,
		M:              m,
		MinClasses:     1, MaxClasses: 3,
		BusDelayPerItem: 1,
		Kind:            arch.Unrelated,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.MinTasks < 1 || c.MaxTasks < c.MinTasks:
		return fmt.Errorf("gen: bad task count range [%d, %d]", c.MinTasks, c.MaxTasks)
	case c.MinDepth < 1 || c.MaxDepth < c.MinDepth:
		return fmt.Errorf("gen: bad depth range [%d, %d]", c.MinDepth, c.MaxDepth)
	case c.MinDepth > c.MinTasks:
		return fmt.Errorf("gen: depth %d exceeds task count %d", c.MinDepth, c.MinTasks)
	case c.MaxFan < 1:
		return fmt.Errorf("gen: MaxFan %d", c.MaxFan)
	case c.CMean < 1:
		return fmt.Errorf("gen: CMean %d", c.CMean)
	case c.ETD < 0 || c.ETD > 1:
		return fmt.Errorf("gen: ETD %v outside [0, 1]", c.ETD)
	case c.IneligibleProb < 0 || c.IneligibleProb >= 1:
		return fmt.Errorf("gen: IneligibleProb %v outside [0, 1)", c.IneligibleProb)
	case c.CCR < 0:
		return fmt.Errorf("gen: CCR %v", c.CCR)
	case c.OLR <= 0:
		return fmt.Errorf("gen: OLR %v", c.OLR)
	case c.M < 1:
		return fmt.Errorf("gen: M %d", c.M)
	case c.MinClasses < 1 || c.MaxClasses < c.MinClasses:
		return fmt.Errorf("gen: bad class range [%d, %d]", c.MinClasses, c.MaxClasses)
	case c.BusDelayPerItem < 0:
		return fmt.Errorf("gen: BusDelayPerItem %d", c.BusDelayPerItem)
	case c.NumResources < 0:
		return fmt.Errorf("gen: NumResources %d", c.NumResources)
	case c.ResourceProb < 0 || c.ResourceProb > 1:
		return fmt.Errorf("gen: ResourceProb %v outside [0, 1]", c.ResourceProb)
	case c.ResourceProb > 0 && c.NumResources == 0:
		return fmt.Errorf("gen: ResourceProb %v with no resources", c.ResourceProb)
	case c.PinProb < 0 || c.PinProb > 1:
		return fmt.Errorf("gen: PinProb %v outside [0, 1]", c.PinProb)
	case math.IsNaN(c.OptionalProb) || c.OptionalProb < 0 || c.OptionalProb > 1:
		return fmt.Errorf("gen: OptionalProb %v outside [0, 1]", c.OptionalProb)
	}
	return c.Release.Validate()
}

// Workload is one generated experiment instance: an application task
// graph plus the platform it is to be scheduled on.
type Workload struct {
	Graph    *taskgraph.Graph
	Platform *arch.Platform
	// AvgWork is the average accumulated task graph workload (the OLR
	// denominator): the sum over tasks of the mean valid execution
	// time. For sporadic workloads it is the per-release value.
	AvgWork rtime.Time
	// Releases lists the seeded release times of a sporadic workload
	// (Graph is then the release-major expansion over them); nil for
	// single-shot workloads.
	Releases []rtime.Time
}

// SubSeed derives the idx-th independent sub-seed from a master seed
// using the SplitMix64 finalizer, so per-graph streams do not correlate.
func SubSeed(master int64, idx int) int64 {
	z := uint64(master) + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Generate builds one workload from the configuration.
func Generate(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	platform := genPlatform(cfg, rng)
	g, err := genShaped(cfg, rng, platform)
	if err != nil {
		return nil, err
	}

	// Average accumulated workload and E-T-E deadlines from OLR.
	present := platform.ClassesPresent()
	var avgWork rtime.Time
	for _, t := range g.Tasks() {
		var sum, cnt rtime.Time
		for k, c := range t.WCET {
			if c.IsSet() && present[k] {
				sum += c
				cnt++
			}
		}
		avgWork += (sum + cnt/2) / cnt
	}
	ete := rtime.Time(math.Round(cfg.OLR * float64(avgWork)))
	if ete < 1 {
		ete = 1
	}
	for _, out := range g.Outputs() {
		g.Task(out).ETEDeadline = ete
	}

	// Strict locality constraints for boundary tasks (§1: sensors and
	// actuators). Each pinned task lands on a uniformly chosen processor
	// among those whose class it can execute on.
	if cfg.PinProb > 0 {
		boundary := append(append([]int(nil), g.Inputs()...), g.Outputs()...)
		for _, id := range boundary {
			if rng.Float64() >= cfg.PinProb {
				continue
			}
			t := g.Task(id)
			var procs []int
			for q := 0; q < platform.M(); q++ {
				if t.EligibleOn(platform.ClassOf(q)) {
					procs = append(procs, q)
				}
			}
			if len(procs) > 0 {
				t.Pinned = procs[rng.Intn(len(procs))]
			}
		}
	}
	// Mixed-criticality labelling for the graceful-degradation studies.
	// A separate generator keeps the draw stream of everything above
	// untouched, so OptionalProb = 0 workloads stay byte-identical to
	// pre-extension generation. The bottom-up walk only lets a task go
	// optional when all its successors already are, so the optional set
	// is shed-closed by construction.
	if cfg.OptionalProb > 0 {
		org := rand.New(rand.NewSource(cfg.Seed ^ optionalSeedMix))
		topo := g.TopoOrder()
		for i := len(topo) - 1; i >= 0; i-- {
			id := topo[i]
			closed := true
			for _, s := range g.Succs(id) {
				if g.Task(s).Criticality != taskgraph.Optional {
					closed = false
					break
				}
			}
			if !closed {
				continue
			}
			if org.Float64() < cfg.OptionalProb {
				t := g.Task(id)
				t.Criticality = taskgraph.Optional
				t.Value = 0.5 + org.Float64()
			}
		}
	}
	// Sporadic release expansion, last so the single-shot draw streams
	// above stay untouched (Mode = ReleaseSingle is byte-identical to
	// pre-extension generation).
	var releases []rtime.Time
	if cfg.Release.Mode != ReleaseSingle {
		times, err := ReleaseTimes(cfg.Release, cfg.Seed)
		if err != nil {
			return nil, err
		}
		g, err = ExpandReleases(g, times)
		if err != nil {
			return nil, err
		}
		releases = times
	}
	return &Workload{Graph: g, Platform: platform, AvgWork: avgWork, Releases: releases}, nil
}

// optionalSeedMix decorrelates the criticality-labelling stream from the
// structural stream of the same workload seed.
const optionalSeedMix = 0x5DEECE66D

// MustGenerate is Generate that panics on error; configuration errors
// are programming errors in experiment setup.
func MustGenerate(cfg Config) *Workload {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

func genPlatform(cfg Config, rng *rand.Rand) *arch.Platform {
	ne := cfg.MinClasses + rng.Intn(cfg.MaxClasses-cfg.MinClasses+1)
	classes := make([]arch.Class, ne)
	for k := range classes {
		classes[k] = arch.Class{
			Name: fmt.Sprintf("e%d", k),
			// Speeds only matter for the Uniform kind: within ±ETD.
			Speed: 1 / (1 - cfg.ETD + 2*cfg.ETD*rng.Float64()),
		}
	}
	classOf := make([]int, cfg.M)
	for q := range classOf {
		classOf[q] = rng.Intn(ne)
	}
	// Every generated class should host at least one processor when
	// m >= |E|, otherwise tasks could be eligible only on phantom
	// classes; fix up by assigning the first |E| processors round-robin.
	if cfg.M >= ne {
		for k := 0; k < ne; k++ {
			classOf[k] = k
		}
	}
	return arch.MustNew(cfg.Kind, classes, classOf,
		arch.Bus{DelayPerItem: cfg.BusDelayPerItem})
}

// genGraph builds the layered random DAG of §5.2.
func genGraph(cfg Config, rng *rand.Rand, platform *arch.Platform) (*taskgraph.Graph, error) {
	n := cfg.MinTasks + rng.Intn(cfg.MaxTasks-cfg.MinTasks+1)
	depth := cfg.MinDepth + rng.Intn(cfg.MaxDepth-cfg.MinDepth+1)
	if depth > n {
		depth = n
	}

	// Spread n tasks over depth levels, at least one per level, then
	// smooth so that no level exceeds MaxFan times the previous one —
	// otherwise the mandatory level-to-level arcs could not respect the
	// out-degree bound.
	levelSize := make([]int, depth)
	for l := range levelSize {
		levelSize[l] = 1
	}
	for i := depth; i < n; i++ {
		levelSize[rng.Intn(depth)]++
	}
	for l := 1; l < depth; l++ {
		for levelSize[l] > cfg.MaxFan*levelSize[l-1] {
			levelSize[l]--
			levelSize[l-1]++
		}
	}

	ne := platform.NumClasses()
	present := platform.ClassesPresent()
	g := taskgraph.NewGraph(ne)
	levels := make([][]int, depth)
	for l := 0; l < depth; l++ {
		for j := 0; j < levelSize[l]; j++ {
			wcet := genWCET(cfg, rng, ne, present, platform)
			t, err := g.AddTask(fmt.Sprintf("t%d.%d", l, j), wcet, 0)
			if err != nil {
				return nil, err
			}
			if cfg.NumResources > 0 && rng.Float64() < cfg.ResourceProb {
				t.Resources = []int{rng.Intn(cfg.NumResources)}
			}
			levels[l] = append(levels[l], t.ID)
		}
	}

	// Precedence, in three passes that keep both in- and out-degrees
	// within MaxFan (§5.2: one to three successors/predecessors).
	//
	// Pass 1 — mandatory arcs: every task below level 0 takes exactly
	// one predecessor from the level directly above, pinning its level
	// and hence the graph depth. The level smoothing above guarantees a
	// predecessor with spare out-degree always exists.
	outdeg := make([]int, n)
	msg := func() rtime.Time { return msgItems(cfg, rng) }
	for l := 1; l < depth; l++ {
		for _, t := range levels[l] {
			p := pickPred(rng, levels[l-1], outdeg, cfg.MaxFan)
			g.MustAddArc(p, t, msg())
			outdeg[p]++
		}
	}
	// Pass 2 — extra arcs: each task draws a target in-degree in
	// [1, MaxFan] and fills it from random earlier levels, skipping
	// predecessors without spare out-degree and duplicate arcs.
	for l := 1; l < depth; l++ {
		for _, t := range levels[l] {
			want := 1 + rng.Intn(cfg.MaxFan)
			for len(g.Preds(t)) < want {
				el := rng.Intn(l)
				p := pickPred(rng, levels[el], outdeg, cfg.MaxFan)
				if outdeg[p] >= cfg.MaxFan {
					break // earlier levels saturated; accept fewer preds
				}
				if _, dup := g.ArcBetween(p, t); dup {
					break
				}
				g.MustAddArc(p, t, msg())
				outdeg[p]++
			}
		}
	}
	// Pass 3 — childless interior tasks get one successor on a later
	// level with spare in-degree, preferring the next level, so that
	// almost all outputs sit at the final level. If every later task is
	// saturated the task simply remains an interior output.
	for l := 0; l < depth-1; l++ {
		for _, t := range levels[l] {
			if outdeg[t] > 0 {
				continue
			}
		search:
			for nl := l + 1; nl < depth; nl++ {
				for _, off := range rng.Perm(len(levels[nl])) {
					s := levels[nl][off]
					if len(g.Preds(s)) >= cfg.MaxFan {
						continue
					}
					if _, dup := g.ArcBetween(t, s); dup {
						continue
					}
					g.MustAddArc(t, s, msg())
					outdeg[t]++
					break search
				}
			}
		}
	}
	if err := g.Freeze(); err != nil {
		return nil, err
	}
	return g, nil
}

// pickPred chooses a random element of candidates, preferring those with
// remaining out-degree capacity when outdeg is provided.
func pickPred(rng *rand.Rand, candidates []int, outdeg []int, maxFan int) int {
	if outdeg != nil {
		var free []int
		for _, c := range candidates {
			if outdeg[c] < maxFan {
				free = append(free, c)
			}
		}
		if len(free) > 0 {
			return free[rng.Intn(len(free))]
		}
	}
	return candidates[rng.Intn(len(candidates))]
}

// genWCET draws one task's per-class execution time vector: uniform in
// [CMean(1−ETD), CMean(1+ETD)] with per-class ineligibility, guaranteed
// eligible on at least one class present on the platform.
func genWCET(cfg Config, rng *rand.Rand, ne int, present []bool, platform *arch.Platform) []rtime.Time {
	lo := int64(math.Ceil(float64(cfg.CMean) * (1 - cfg.ETD)))
	hi := int64(math.Floor(float64(cfg.CMean) * (1 + cfg.ETD)))
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	draw := func() rtime.Time { return rtime.Time(lo + rng.Int63n(hi-lo+1)) }

	for {
		w := make([]rtime.Time, ne)
		var base rtime.Time
		if cfg.Kind != arch.Unrelated {
			base = draw()
		}
		okOnPresent := false
		for k := 0; k < ne; k++ {
			if rng.Float64() < cfg.IneligibleProb {
				w[k] = rtime.Unset
				continue
			}
			switch cfg.Kind {
			case arch.Identical:
				w[k] = base
			case arch.Uniform:
				v := rtime.Time(math.Round(float64(base) / platform.Classes[k].Speed))
				if v < 1 {
					v = 1
				}
				w[k] = v
			default: // Unrelated: independent per-class draws
				w[k] = draw()
			}
			if present[k] {
				okOnPresent = true
			}
		}
		if okOnPresent {
			return w
		}
		// Rare (≤ 0.05³): re-roll until the task can run somewhere.
	}
}

// msgItems draws one message size so that the mean communication cost
// over the bus matches CCR·CMean: uniform over [1, 2·CCR·CMean−1], or 0
// when CCR is 0.
func msgItems(cfg Config, rng *rand.Rand) rtime.Time {
	if cfg.CCR <= 0 || cfg.BusDelayPerItem <= 0 {
		return 0
	}
	mean := cfg.CCR * float64(cfg.CMean) / float64(cfg.BusDelayPerItem)
	hi := int64(math.Round(2*mean)) - 1
	if hi < 1 {
		return 1
	}
	return rtime.Time(1 + rng.Int63n(hi))
}
