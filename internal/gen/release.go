package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// ReleaseMode selects how often a generated application is released.
type ReleaseMode int

const (
	// ReleaseSingle is the paper's model: the graph arrives once, at
	// time zero. The zero value, so existing configurations are
	// byte-identical.
	ReleaseSingle ReleaseMode = iota
	// ReleaseSporadic releases the whole graph recurrently with a
	// minimum inter-arrival time and bounded per-release jitter (the
	// sporadic DAG model of Dong & Liu).
	ReleaseSporadic
)

// String implements fmt.Stringer.
func (m ReleaseMode) String() string {
	switch m {
	case ReleaseSingle:
		return "single"
	case ReleaseSporadic:
		return "sporadic"
	}
	return fmt.Sprintf("ReleaseMode(%d)", int(m))
}

// ParseReleaseMode parses a mode name; "" means single-shot.
func ParseReleaseMode(s string) (ReleaseMode, error) {
	switch s {
	case "", "single":
		return ReleaseSingle, nil
	case "sporadic":
		return ReleaseSporadic, nil
	}
	return ReleaseSingle, fmt.Errorf("gen: unknown release mode %q (want single or sporadic)", s)
}

// Release parameterizes recurring releases of a generated application.
// The zero value is the single-shot model.
type Release struct {
	// Mode selects single-shot or sporadic release.
	Mode ReleaseMode
	// Count is the number of releases to expand (sporadic only, ≥ 1).
	Count int
	// MinGap is the minimum inter-arrival time T between consecutive
	// releases (sporadic only, ≥ 1).
	MinGap rtime.Time
	// Jitter is the maximum per-release delay J beyond the earliest
	// release time (0 ≤ J < MinGap): release k arrives at k·T + uₖ with
	// uₖ uniform in [0, J]. Consecutive releases thus arrive at least
	// T − J apart.
	Jitter rtime.Time
}

// Validate checks the release parameters.
func (r Release) Validate() error {
	if r.Mode == ReleaseSingle {
		return nil
	}
	switch {
	case r.Mode != ReleaseSporadic:
		return fmt.Errorf("gen: unknown release mode %d", int(r.Mode))
	case r.Count < 1:
		return fmt.Errorf("gen: release count %d < 1", r.Count)
	case r.MinGap < 1:
		return fmt.Errorf("gen: release MinGap %d < 1", r.MinGap)
	case r.Jitter < 0:
		return fmt.Errorf("gen: release Jitter %d < 0", r.Jitter)
	case r.Jitter >= r.MinGap:
		return fmt.Errorf("gen: release Jitter %d >= MinGap %d (releases could collide)", r.Jitter, r.MinGap)
	}
	return nil
}

// ReleaseTimes draws the seeded release-time sequence: tₖ = k·MinGap +
// uₖ with uₖ uniform in [0, Jitter]. The sequence is strictly
// increasing with consecutive gaps of at least MinGap − Jitter.
func ReleaseTimes(rel Release, seed int64) ([]rtime.Time, error) {
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	if rel.Mode == ReleaseSingle {
		return []rtime.Time{0}, nil
	}
	rng := rand.New(rand.NewSource(seed ^ releaseSeedMix))
	times := make([]rtime.Time, rel.Count)
	for k := range times {
		u := rtime.Time(0)
		if rel.Jitter > 0 {
			u = rtime.Time(rng.Int63n(int64(rel.Jitter) + 1))
		}
		times[k] = rtime.Time(k)*rel.MinGap + u
	}
	return times, nil
}

// releaseSeedMix decorrelates the release-time stream from the
// structural stream of the same workload seed.
const releaseSeedMix = 0x2545F4914F6CDD1D

// ExpandReleases unrolls a frozen graph over the given release times:
// release k contributes a full copy of every task with its phase and
// end-to-end deadline shifted by tₖ, and every arc duplicated within
// the release. Copies are release-major — the copy of task i in
// release k has ID k·n + i — so per-release window shifting is a flat
// index computation. The original graph is not modified.
func ExpandReleases(g *taskgraph.Graph, times []rtime.Time) (*taskgraph.Graph, error) {
	if !g.Frozen() {
		return nil, fmt.Errorf("gen: ExpandReleases needs a frozen graph")
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("gen: ExpandReleases needs at least one release time")
	}
	n := g.NumTasks()
	out := taskgraph.NewGraph(g.NumClasses)
	for k, t0 := range times {
		for _, t := range g.Tasks() {
			nt, err := out.AddTask(fmt.Sprintf("%s@%d", t.Name, k),
				append([]rtime.Time(nil), t.WCET...), t.Phase+t0)
			if err != nil {
				return nil, err
			}
			nt.Period = t.Period
			nt.Pinned = t.Pinned
			nt.Resources = append([]int(nil), t.Resources...)
			nt.Criticality = t.Criticality
			nt.Value = t.Value
			if t.ETEDeadline.IsSet() {
				nt.ETEDeadline = t.ETEDeadline + t0
			}
		}
		for _, a := range g.Arcs() {
			if err := out.AddArc(k*n+a.From, k*n+a.To, a.Items); err != nil {
				return nil, err
			}
		}
	}
	if err := out.Freeze(); err != nil {
		return nil, err
	}
	return out, nil
}
