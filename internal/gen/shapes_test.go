package gen

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/wcet"
)

func TestShapeStrings(t *testing.T) {
	want := map[Shape]string{Layered: "layered", ForkJoin: "fork-join", InTree: "in-tree", OutTree: "out-tree"}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), name)
		}
	}
	if !strings.Contains(Shape(9).String(), "9") {
		t.Error("unknown shape should include its number")
	}
	if len(Shapes) != 4 {
		t.Error("Shapes should list all four")
	}
}

func TestForkJoinStructure(t *testing.T) {
	cfg := Default(3)
	cfg.Seed = 21
	cfg.Shape = ForkJoin
	w := MustGenerate(cfg)
	g := w.Graph
	if n := g.NumTasks(); n < cfg.MinTasks || n > cfg.MaxTasks {
		t.Errorf("n = %d", n)
	}
	// Single input (the first joint) and single output (the last joint).
	if len(g.Inputs()) != 1 {
		t.Errorf("inputs = %v", g.Inputs())
	}
	if len(g.Outputs()) != 1 {
		t.Errorf("outputs = %v", g.Outputs())
	}
	// Section tasks have exactly one predecessor and one successor.
	sections := 0
	for i := 0; i < g.NumTasks(); i++ {
		if strings.HasPrefix(g.Task(i).Name, "s") {
			sections++
			if len(g.Preds(i)) != 1 || len(g.Succs(i)) != 1 {
				t.Errorf("section task %d has fan (%d, %d)", i, len(g.Preds(i)), len(g.Succs(i)))
			}
		}
	}
	if sections == 0 {
		t.Error("no parallel sections generated")
	}
}

func TestInTreeStructure(t *testing.T) {
	cfg := Default(3)
	cfg.Seed = 22
	cfg.Shape = InTree
	w := MustGenerate(cfg)
	g := w.Graph
	if len(g.Outputs()) != 1 || g.Outputs()[0] != 0 {
		t.Errorf("in-tree must have the root as its only output: %v", g.Outputs())
	}
	for i := 0; i < g.NumTasks(); i++ {
		if i != 0 && len(g.Succs(i)) != 1 {
			t.Errorf("in-tree node %d has %d successors", i, len(g.Succs(i)))
		}
	}
	if g.NumArcs() != g.NumTasks()-1 {
		t.Errorf("tree has %d arcs for %d nodes", g.NumArcs(), g.NumTasks())
	}
}

func TestOutTreeStructure(t *testing.T) {
	cfg := Default(3)
	cfg.Seed = 23
	cfg.Shape = OutTree
	w := MustGenerate(cfg)
	g := w.Graph
	if len(g.Inputs()) != 1 || g.Inputs()[0] != 0 {
		t.Errorf("out-tree must have the root as its only input: %v", g.Inputs())
	}
	for i := 1; i < g.NumTasks(); i++ {
		if len(g.Preds(i)) != 1 {
			t.Errorf("out-tree node %d has %d predecessors", i, len(g.Preds(i)))
		}
	}
	// All leaves carry the E-T-E deadline.
	for _, out := range g.Outputs() {
		if !g.Task(out).ETEDeadline.IsSet() {
			t.Errorf("leaf %d has no deadline", out)
		}
	}
}

// Property: every shape generates valid workloads that pass WCET
// estimation for arbitrary seeds.
func TestShapesGenerateValidWorkloads(t *testing.T) {
	f := func(seed int64, sRaw uint8) bool {
		cfg := Default(3)
		cfg.Seed = seed
		cfg.Shape = Shapes[int(sRaw)%len(Shapes)]
		w, err := Generate(cfg)
		if err != nil {
			return false
		}
		if w.Graph.NumTasks() < cfg.MinTasks || w.Graph.NumTasks() > cfg.MaxTasks {
			return false
		}
		if _, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG); err != nil {
			return false
		}
		for _, out := range w.Graph.Outputs() {
			if !w.Graph.Task(out).ETEDeadline.IsSet() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
