package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/wcet"
)

func TestDefaultConfigValid(t *testing.T) {
	for m := 1; m <= 8; m++ {
		if err := Default(m).Validate(); err != nil {
			t.Errorf("Default(%d) invalid: %v", m, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.MinTasks = 0 },
		func(c *Config) { c.MaxTasks = c.MinTasks - 1 },
		func(c *Config) { c.MinDepth = 0 },
		func(c *Config) { c.MaxDepth = c.MinDepth - 1 },
		func(c *Config) { c.MinDepth = c.MinTasks + 1; c.MaxDepth = c.MinDepth },
		func(c *Config) { c.MaxFan = 0 },
		func(c *Config) { c.CMean = 0 },
		func(c *Config) { c.ETD = -0.1 },
		func(c *Config) { c.ETD = 1.5 },
		func(c *Config) { c.IneligibleProb = 1 },
		func(c *Config) { c.CCR = -1 },
		func(c *Config) { c.OLR = 0 },
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.MinClasses = 0 },
		func(c *Config) { c.BusDelayPerItem = -1 },
	}
	for i, mut := range mutations {
		c := Default(3)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Default(4)
	cfg.Seed = 42
	w := MustGenerate(cfg)
	g := w.Graph
	if n := g.NumTasks(); n < 40 || n > 60 {
		t.Errorf("task count %d outside [40, 60]", n)
	}
	if d := g.Depth(); d < 8 || d > 12 {
		t.Errorf("depth %d outside [8, 12]", d)
	}
	if w.Platform.M() != 4 {
		t.Errorf("m = %d", w.Platform.M())
	}
	if ne := w.Platform.NumClasses(); ne < 1 || ne > 3 {
		t.Errorf("|E| = %d outside [1, 3]", ne)
	}
	// Every output task carries the same E-T-E deadline derived from OLR.
	want := rtime.Time(float64(w.AvgWork)*cfg.OLR + 0.5)
	for _, out := range g.Outputs() {
		got := g.Task(out).ETEDeadline
		if got < want-1 || got > want+1 {
			t.Errorf("output %d deadline %d, want ≈ %d", out, got, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Default(3)
	cfg.Seed = 7
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if a.Graph.NumTasks() != b.Graph.NumTasks() || a.Graph.NumArcs() != b.Graph.NumArcs() {
		t.Fatal("same seed produced different shapes")
	}
	for i := 0; i < a.Graph.NumTasks(); i++ {
		ta, tb := a.Graph.Task(i), b.Graph.Task(i)
		for k := range ta.WCET {
			if ta.WCET[k] != tb.WCET[k] {
				t.Fatalf("task %d WCET differs", i)
			}
		}
	}
	cfg.Seed = 8
	c := MustGenerate(cfg)
	if c.Graph.NumTasks() == a.Graph.NumTasks() && c.Graph.NumArcs() == a.Graph.NumArcs() &&
		c.AvgWork == a.AvgWork {
		t.Error("different seeds produced suspiciously identical workloads")
	}
}

func TestSubSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := SubSeed(1, i)
		if seen[s] {
			t.Fatalf("SubSeed collision at index %d", i)
		}
		seen[s] = true
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Error("different masters give equal sub-seeds")
	}
}

func TestWCETRangeRespectsETD(t *testing.T) {
	for _, etd := range []float64{0, 0.25, 0.5, 1.0} {
		cfg := Default(3)
		cfg.Seed = 11
		cfg.ETD = etd
		w := MustGenerate(cfg)
		lo := rtime.Time(float64(cfg.CMean) * (1 - etd))
		if lo < 1 {
			lo = 1
		}
		hi := rtime.Time(float64(cfg.CMean) * (1 + etd))
		for _, tk := range w.Graph.Tasks() {
			for k, c := range tk.WCET {
				if c == rtime.Unset {
					continue
				}
				if c < lo || c > hi {
					t.Fatalf("ETD %v: WCET[%d] = %d outside [%d, %d]", etd, k, c, lo, hi)
				}
			}
		}
	}
}

func TestETDZeroMakesAllTimesEqual(t *testing.T) {
	cfg := Default(3)
	cfg.Seed = 5
	cfg.ETD = 0
	w := MustGenerate(cfg)
	for _, tk := range w.Graph.Tasks() {
		for _, c := range tk.WCET {
			if c != rtime.Unset && c != cfg.CMean {
				t.Fatalf("ETD=0 produced WCET %d ≠ %d", c, cfg.CMean)
			}
		}
	}
}

func TestEveryTaskEligibleOnPresentClass(t *testing.T) {
	cfg := Default(2)
	cfg.Seed = 99
	cfg.IneligibleProb = 0.4 // stress the re-roll path
	w := MustGenerate(cfg)
	if _, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG); err != nil {
		t.Errorf("generated workload has an unplaceable task: %v", err)
	}
}

func TestFanBounds(t *testing.T) {
	cfg := Default(3)
	cfg.Seed = 123
	w := MustGenerate(cfg)
	g := w.Graph
	for i := 0; i < g.NumTasks(); i++ {
		if len(g.Preds(i)) > cfg.MaxFan {
			t.Errorf("task %d has %d predecessors", i, len(g.Preds(i)))
		}
		if len(g.Succs(i)) > cfg.MaxFan {
			t.Errorf("task %d has %d successors", i, len(g.Succs(i)))
		}
	}
}

func TestLevelStructure(t *testing.T) {
	cfg := Default(3)
	cfg.Seed = 321
	w := MustGenerate(cfg)
	g := w.Graph
	d := g.Depth()
	for _, in := range g.Inputs() {
		if g.Level(in) != 0 {
			t.Errorf("input %d at level %d", in, g.Level(in))
		}
	}
	// At least one output sits at the final level, and tasks at the
	// final level are all outputs.
	finalOutputs := 0
	for _, out := range g.Outputs() {
		if g.Level(out) == d-1 {
			finalOutputs++
		}
	}
	if finalOutputs == 0 {
		t.Error("no output at the final level")
	}
	for i := 0; i < g.NumTasks(); i++ {
		if g.Level(i) == d-1 && len(g.Succs(i)) != 0 {
			t.Errorf("final-level task %d has successors", i)
		}
	}
}

func TestMessageSizesMatchCCR(t *testing.T) {
	cfg := Default(3)
	cfg.Seed = 77
	w := MustGenerate(cfg)
	var sum, cnt float64
	for _, a := range w.Graph.Arcs() {
		sum += float64(a.Items)
		cnt++
	}
	mean := sum / cnt
	want := cfg.CCR * float64(cfg.CMean) // 2.0
	if mean < want*0.6 || mean > want*1.4 {
		t.Errorf("mean message size %v, want ≈ %v", mean, want)
	}
}

func TestZeroCCRMeansNoMessages(t *testing.T) {
	cfg := Default(3)
	cfg.Seed = 13
	cfg.CCR = 0
	w := MustGenerate(cfg)
	for _, a := range w.Graph.Arcs() {
		if a.Items != 0 {
			t.Fatalf("CCR=0 but arc carries %d items", a.Items)
		}
	}
}

func TestIdenticalKind(t *testing.T) {
	cfg := Default(3)
	cfg.Seed = 4
	cfg.Kind = arch.Identical
	w := MustGenerate(cfg)
	for _, tk := range w.Graph.Tasks() {
		var first rtime.Time = rtime.Unset
		for _, c := range tk.WCET {
			if c == rtime.Unset {
				continue
			}
			if first == rtime.Unset {
				first = c
			} else if c != first {
				t.Fatalf("identical kind produced differing WCETs %v", tk.WCET)
			}
		}
	}
}

// Property: for arbitrary seeds, generation succeeds and the structural
// guarantees hold.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		cfg := Default(1 + int(mRaw%8))
		cfg.Seed = seed
		w, err := Generate(cfg)
		if err != nil {
			return false
		}
		g := w.Graph
		if g.NumTasks() < cfg.MinTasks || g.NumTasks() > cfg.MaxTasks {
			return false
		}
		if g.Depth() < cfg.MinDepth || g.Depth() > cfg.MaxDepth {
			return false
		}
		for _, out := range g.Outputs() {
			if !g.Task(out).ETEDeadline.IsSet() {
				return false
			}
		}
		if _, err := wcet.Estimates(g, w.Platform, wcet.AVG); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestUniformKindScalesBySpeed(t *testing.T) {
	cfg := Default(3)
	cfg.Seed = 61
	cfg.Kind = arch.Uniform
	w := MustGenerate(cfg)
	if w.Platform.Kind != arch.Uniform {
		t.Fatalf("platform kind = %v", w.Platform.Kind)
	}
	// Under the uniform model, the ratio of two classes' WCETs is the
	// same for every task (up to rounding): check pairwise consistency.
	classes := w.Platform.NumClasses()
	if classes < 2 {
		t.Skip("single class drawn; ratio check vacuous")
	}
	var ratios []float64
	for _, tk := range w.Graph.Tasks() {
		if tk.WCET[0] == rtime.Unset || tk.WCET[1] == rtime.Unset {
			continue
		}
		ratios = append(ratios, float64(tk.WCET[0])/float64(tk.WCET[1]))
	}
	if len(ratios) < 5 {
		t.Skip("not enough dual-eligible tasks")
	}
	for _, r := range ratios {
		if r < ratios[0]*0.8 || r > ratios[0]*1.2 {
			t.Errorf("uniform ratio drifts: %v vs %v", r, ratios[0])
		}
	}
}

func TestPinProbValidation(t *testing.T) {
	cfg := Default(3)
	cfg.PinProb = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("PinProb > 1 accepted")
	}
}

func TestPinnedGenerationPinsOnlyBoundary(t *testing.T) {
	cfg := Default(3)
	cfg.Seed = 8
	cfg.PinProb = 1.0
	w := MustGenerate(cfg)
	g := w.Graph
	isBoundary := map[int]bool{}
	for _, id := range g.Inputs() {
		isBoundary[id] = true
	}
	for _, id := range g.Outputs() {
		isBoundary[id] = true
	}
	pinned := 0
	for _, tk := range g.Tasks() {
		if tk.Pinned >= 0 {
			pinned++
			if !isBoundary[tk.ID] {
				t.Errorf("interior task %d pinned", tk.ID)
			}
			if tk.Pinned >= w.Platform.M() {
				t.Errorf("task %d pinned to missing processor %d", tk.ID, tk.Pinned)
			}
			if !tk.EligibleOn(w.Platform.ClassOf(tk.Pinned)) {
				t.Errorf("task %d pinned to ineligible class", tk.ID)
			}
		}
	}
	if pinned == 0 {
		t.Error("PinProb=1 pinned nothing")
	}
}
