package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// Shape selects the structural family of generated task graphs. The
// paper's experiments use the layered random DAGs of §5.2; the other
// shapes support robustness studies across the application structures
// the paper's introduction names (sequential decompositions, parallel
// sections, reductions).
type Shape int

const (
	// Layered is the §5.2 generator: depth-pinned random layers with
	// fan-in/out between one and MaxFan (the default).
	Layered Shape = iota
	// ForkJoin alternates serial joint tasks with parallel sections —
	// the classic parbegin/parend decomposition. Joint tasks take the
	// whole preceding section as predecessors, so their fan-in is the
	// section width rather than MaxFan.
	ForkJoin
	// InTree is a reduction: every task has exactly one successor; the
	// single output is the root.
	InTree
	// OutTree is a distribution: every task has exactly one
	// predecessor; the single input is the root and the leaves are the
	// outputs.
	OutTree
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Layered:
		return "layered"
	case ForkJoin:
		return "fork-join"
	case InTree:
		return "in-tree"
	case OutTree:
		return "out-tree"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// Shapes lists every generator shape.
var Shapes = []Shape{Layered, ForkJoin, InTree, OutTree}

// genShaped builds the task graph for the configured shape.
func genShaped(cfg Config, rng *rand.Rand, platform *arch.Platform) (*taskgraph.Graph, error) {
	switch cfg.Shape {
	case Layered:
		return genGraph(cfg, rng, platform)
	case ForkJoin:
		return genForkJoin(cfg, rng, platform)
	case InTree:
		return genTree(cfg, rng, platform, false)
	case OutTree:
		return genTree(cfg, rng, platform, true)
	}
	return nil, fmt.Errorf("gen: unknown shape %v", cfg.Shape)
}

// genForkJoin alternates single joint tasks with parallel sections until
// the task budget is spent.
func genForkJoin(cfg Config, rng *rand.Rand, platform *arch.Platform) (*taskgraph.Graph, error) {
	n := cfg.MinTasks + rng.Intn(cfg.MaxTasks-cfg.MinTasks+1)
	ne := platform.NumClasses()
	present := platform.ClassesPresent()
	g := taskgraph.NewGraph(ne)
	msg := func() rtime.Time { return msgItems(cfg, rng) }

	add := func(name string) int {
		t := g.MustAddTask(name, genWCET(cfg, rng, ne, present, platform), 0)
		if cfg.NumResources > 0 && rng.Float64() < cfg.ResourceProb {
			t.Resources = []int{rng.Intn(cfg.NumResources)}
		}
		return t.ID
	}

	joint := add("join0")
	left := n - 1
	section := 0
	for left > 0 {
		section++
		// Parallel section of 2..2·MaxFan tasks (or what remains minus
		// the closing joint).
		width := 2 + rng.Intn(2*cfg.MaxFan)
		if width > left-1 {
			width = left - 1
		}
		if width < 1 {
			// Only room for the closing joint: chain it.
			next := add(fmt.Sprintf("join%d", section))
			g.MustAddArc(joint, next, msg())
			joint = next
			left--
			continue
		}
		var stage []int
		for j := 0; j < width; j++ {
			id := add(fmt.Sprintf("s%d.%d", section, j))
			g.MustAddArc(joint, id, msg())
			stage = append(stage, id)
		}
		next := add(fmt.Sprintf("join%d", section))
		for _, id := range stage {
			g.MustAddArc(id, next, msg())
		}
		joint = next
		left -= width + 1
	}
	if err := g.Freeze(); err != nil {
		return nil, err
	}
	return g, nil
}

// genTree builds an in-tree (out == false: arcs point child → parent,
// one output root) or an out-tree (out == true: arcs point parent →
// child, one input root).
func genTree(cfg Config, rng *rand.Rand, platform *arch.Platform, out bool) (*taskgraph.Graph, error) {
	n := cfg.MinTasks + rng.Intn(cfg.MaxTasks-cfg.MinTasks+1)
	ne := platform.NumClasses()
	present := platform.ClassesPresent()
	g := taskgraph.NewGraph(ne)
	msg := func() rtime.Time { return msgItems(cfg, rng) }

	deg := make([]int, n) // children per node, capped at MaxFan
	for i := 0; i < n; i++ {
		t := g.MustAddTask(fmt.Sprintf("n%d", i), genWCET(cfg, rng, ne, present, platform), 0)
		if cfg.NumResources > 0 && rng.Float64() < cfg.ResourceProb {
			t.Resources = []int{rng.Intn(cfg.NumResources)}
		}
		if i == 0 {
			continue // root
		}
		// Attach to a random earlier node with spare degree.
		parent := -1
		for try := 0; try < 4*n; try++ {
			cand := rng.Intn(i)
			if deg[cand] < cfg.MaxFan {
				parent = cand
				break
			}
		}
		if parent < 0 {
			for cand := 0; cand < i; cand++ {
				if deg[cand] < cfg.MaxFan {
					parent = cand
					break
				}
			}
		}
		if parent < 0 {
			parent = 0 // every node saturated: exceed the cap at the root
		}
		deg[parent]++
		if out {
			g.MustAddArc(parent, t.ID, msg())
		} else {
			g.MustAddArc(t.ID, parent, msg())
		}
	}
	if err := g.Freeze(); err != nil {
		return nil, err
	}
	return g, nil
}
