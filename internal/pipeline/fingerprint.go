package pipeline

import (
	"math"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Key identifies a Plan: the workload fingerprint plus the named stage
// configuration. It is a comparable value type, so it can key a map
// directly. Two Builds with equal Keys produce behaviorally identical
// Plans (the stages are deterministic pure functions of their inputs).
type Key struct {
	// Workload fingerprints the task graph and platform content.
	Workload uint64
	// Estimates hashes the resolved WCET estimate vector, so plans made
	// from explicit estimates (re-slicing feedback) and from an
	// estimator strategy land in the same cache namespace.
	Estimates uint64
	// Distributor, Dispatcher and Verifier are the stage hook names.
	Distributor string
	Dispatcher  string
	Verifier    string
	// Params are the adaptive slicing parameters when the distributor
	// is metric-backed (zero otherwise).
	Params slicing.Params
}

// FNV-1a, 64-bit. Hand-rolled over hash/fnv to hash integers without
// per-field byte-slice churn on this hot path.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type hasher uint64

func newHasher() hasher { return fnvOffset }

func (h *hasher) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x = (x ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	*h = hasher(x)
}

func (h *hasher) i64(v int64)       { h.u64(uint64(v)) }
func (h *hasher) int(v int)         { h.i64(int64(v)) }
func (h *hasher) time(v rtime.Time) { h.i64(int64(v)) }
func (h *hasher) f64(v float64)     { h.u64(math.Float64bits(v)) }

// Fingerprint hashes the planning-relevant content of a workload: every
// task parameter the estimator, distributor, or dispatcher reads, every
// arc, and the platform shape including per-pair communication costs.
// Display names are deliberately excluded — renaming a task must not
// evict its plans.
func Fingerprint(g *taskgraph.Graph, p *arch.Platform) uint64 {
	h := newHasher()
	h.int(g.NumTasks())
	for _, t := range g.Tasks() {
		for _, c := range t.WCET {
			h.time(c)
		}
		h.time(t.Phase)
		h.time(t.Period)
		h.time(t.ETEDeadline)
		h.int(t.Pinned)
		h.int(len(t.Resources))
		for _, r := range t.Resources {
			h.int(r)
		}
		h.int(int(t.Criticality))
		h.f64(t.Value)
	}
	h.int(g.NumArcs())
	for _, a := range g.Arcs() {
		h.int(a.From)
		h.int(a.To)
		h.time(a.Items)
	}
	h.int(int(p.Kind))
	h.int(p.NumClasses())
	for _, c := range p.Classes {
		h.f64(c.Speed)
	}
	h.int(p.M())
	for q := 0; q < p.M(); q++ {
		h.int(p.ClassOf(q))
	}
	h.time(p.Bus.DelayPerItem)
	if p.Net != nil {
		// Dedicated links change per-pair costs; hash the effective
		// per-item cost matrix rather than the private structure.
		for f := 0; f < p.M(); f++ {
			for t := 0; t < p.M(); t++ {
				h.time(p.CommCost(f, t, 1))
			}
		}
	}
	return uint64(h)
}

// hashTimes hashes a WCET estimate vector.
func hashTimes(est []rtime.Time) uint64 {
	h := newHasher()
	h.int(len(est))
	for _, c := range est {
		h.time(c)
	}
	return uint64(h)
}
