package pipeline

import (
	"sync"

	"repro/internal/feas"
	"repro/internal/sched"
	"repro/internal/slicing"
)

// BuildScratch bundles the reusable working memory of one cold build:
// the slicer's workspace (DP tables, candidate caches, corridor arrays),
// the scheduler scratch (ready tables, landing matrix, timelines), and
// the verifier's boundary buffers. Every Build draws one from a package
// pool and returns it afterwards, so steady-state builds allocate only
// the immutable Plan artifact itself — nothing reachable from a Plan
// ever aliases scratch memory (each sub-scratch guarantees this for its
// stage's output).
//
// A BuildScratch is not safe for concurrent use. Replanners own a
// private, retaining instance instead of the pooled ones.
type BuildScratch struct {
	Slicing *slicing.Workspace
	Sched   *sched.Scratch
	Feas    *feas.Scratch
}

// NewBuildScratch returns an empty scratch; its arrays grow to the
// largest workload it serves.
func NewBuildScratch() *BuildScratch {
	return &BuildScratch{
		Slicing: slicing.NewWorkspace(),
		Sched:   &sched.Scratch{},
		Feas:    &feas.Scratch{},
	}
}

var scratchPool = sync.Pool{New: func() any { return NewBuildScratch() }}

func getScratch() *BuildScratch { return scratchPool.Get().(*BuildScratch) }
func putScratch(sc *BuildScratch) {
	if sc.Slicing.Retain {
		// A retaining workspace (a Replanner's) must never enter the
		// shared pool: its cross-build candidate reuse is only exact for
		// its owner's delta sequence.
		return
	}
	scratchPool.Put(sc)
}
