package pipeline_test

// Micro/macro benchmarks of the pipeline core, the repo's perf
// baseline (`make bench` renders them into BENCH_pipeline.json):
//
//   - Build/cold          one full estimate→slice→dispatch build
//   - Build/cached        the same spec through a warm plan cache
//                         (fingerprint + key lookup only)
//   - BreakdownBisection  the robust critical-factor search, whose
//     probes re-fetch the plan through the pipeline: cache=off re-plans
//     on every probe, cache=on plans once — the contrast the plan cache
//     exists for.

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/robust"
)

func benchWorkload(b *testing.B, seed int64) *gen.Workload {
	b.Helper()
	cfg := gen.Default(3)
	cfg.Seed = seed
	w, err := gen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkBuild(b *testing.B) {
	w := benchWorkload(b, 11)
	spec := pipeline.Spec{Graph: w.Graph, Platform: w.Platform}
	b.Run("cold", func(b *testing.B) {
		builder := &pipeline.Builder{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := builder.Build(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		builder := &pipeline.Builder{Cache: pipeline.NewCache(8)}
		if _, err := builder.Build(spec); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := builder.Build(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFingerprint(b *testing.B) {
	w := benchWorkload(b, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pipeline.Fingerprint(w.Graph, w.Platform)
	}
}

// BenchmarkBreakdownBisection measures the breakdown-factor search per
// workload. Each bisection runs ~8 probes; with the plan cache off,
// every probe re-plans the workload, with it on, planning happens once.
func BenchmarkBreakdownBisection(b *testing.B) {
	const samples = 8
	workloads := make([]*gen.Workload, samples)
	for i := range workloads {
		workloads[i] = benchWorkload(b, 100+int64(i))
	}
	run := func(b *testing.B, cached bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := workloads[i%samples]
			builder := &pipeline.Builder{}
			if cached {
				builder.Cache = pipeline.NewCache(1)
			}
			_, err := robust.BreakdownVia(builder,
				pipeline.Spec{Graph: w.Graph, Platform: w.Platform}, robust.BreakdownOptions{})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cache=off", func(b *testing.B) { run(b, false) })
	b.Run("cache=on", func(b *testing.B) { run(b, true) })
}
