package pipeline

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe LRU plan cache. Entries are whole immutable
// *Plan values, so hits return shared pointers; consumers must treat
// plans as read-only (the injection simulators and the replay verifier
// already do — they copy what they perturb).
type Cache struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recently used; values are *cacheEntry
	byK map[Key]*list.Element
}

type cacheEntry struct {
	key  Key
	plan *Plan
}

// NewCache returns an LRU plan cache holding up to capacity plans;
// capacity <= 0 selects a default of 1024.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Cache{cap: capacity, lru: list.New(), byK: make(map[Key]*list.Element)}
}

func (c *Cache) get(k Key) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[k]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

func (c *Cache) put(k Key, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[k]; ok {
		el.Value.(*cacheEntry).plan = p
		c.lru.MoveToFront(el)
		return
	}
	c.byK[k] = c.lru.PushFront(&cacheEntry{key: k, plan: p})
	for c.lru.Len() > c.cap {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.byK, el.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Purge empties the cache.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.byK = make(map[Key]*list.Element)
}
