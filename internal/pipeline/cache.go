package pipeline

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe LRU plan cache. Entries are whole immutable
// *Plan values, so hits return shared pointers; consumers must treat
// plans as read-only (the injection simulators and the replay verifier
// already do — they copy what they perturb).
//
// Internally the cache is striped: large caches spread their keys over
// independently locked LRU shards so parallel builders (the planning
// service, multi-worker sweeps) do not serialize on a single mutex.
// Small caches — unit tests, the cold-build benchmarks' capacity-1
// cache — keep a single shard and therefore exact global LRU order;
// sharded caches bound capacity per shard, which is exact in aggregate
// and approximate only in *which* entry is evicted under skew.
//
// Each shard also carries the in-flight build table used by
// Builder.Build to coalesce concurrent cold misses for the same Key
// (the singleflight layer): N builders racing on one key perform one
// build, and the other N−1 wait for its plan.
type Cache struct {
	shards []cacheShard
}

// maxShards bounds the lock striping; 16 shards remove the single-mutex
// bottleneck for any realistic worker count.
const maxShards = 16

// shardGrain is the capacity per shard below which adding another shard
// stops paying: capacity/shardGrain shards, clamped to [1, maxShards].
const shardGrain = 64

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *cacheEntry
	byK     map[Key]*list.Element
	flights map[Key]*flight
}

type cacheEntry struct {
	key  Key
	plan *Plan
}

// flight is one in-progress cold build that concurrent Builds of the
// same Key join instead of duplicating. plan/err are written exactly
// once, before done is closed.
type flight struct {
	done chan struct{}
	plan *Plan
	err  error
}

// NewCache returns an LRU plan cache holding up to capacity plans;
// capacity <= 0 selects a default of 1024.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1024
	}
	n := capacity / shardGrain
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	c := &Cache{shards: make([]cacheShard, n)}
	per := (capacity + n - 1) / n
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = per
		s.lru = list.New()
		s.byK = make(map[Key]*list.Element)
		s.flights = make(map[Key]*flight)
	}
	return c
}

// shard maps a key to its stripe. Only the workload and estimate hashes
// participate: keys differing in stage names or parameters alone
// colliding onto one shard is harmless (sharding is a lock-contention
// device, not a correctness one).
func (c *Cache) shard(k Key) *cacheShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	h := newHasher()
	h.u64(k.Workload)
	h.u64(k.Estimates)
	return &c.shards[uint64(h)%uint64(len(c.shards))]
}

func (c *Cache) get(k Key) (*Plan, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byK[k]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

func (c *Cache) put(k Key, p *Plan) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(k, p)
}

func (s *cacheShard) putLocked(k Key, p *Plan) {
	if el, ok := s.byK[k]; ok {
		el.Value.(*cacheEntry).plan = p
		s.lru.MoveToFront(el)
		return
	}
	s.byK[k] = s.lru.PushFront(&cacheEntry{key: k, plan: p})
	for s.lru.Len() > s.cap {
		el := s.lru.Back()
		s.lru.Remove(el)
		delete(s.byK, el.Value.(*cacheEntry).key)
	}
}

// acquire is the coalescing lookup Builder.Build runs on a configured
// cache. Exactly one of three outcomes holds:
//
//   - plan != nil: cache hit, use the shared plan;
//   - leader: the caller must build the plan and call complete on f
//     (even on error or panic), or every later build of k deadlocks;
//   - otherwise: another build of k is in flight — wait on f.done and
//     read f.plan/f.err.
//
// Checking the plan table and the flight table under one shard lock
// closes the window where a leader completes between a caller's miss
// and its join, which would otherwise re-run a build whose plan is
// already resident.
func (c *Cache) acquire(k Key) (plan *Plan, f *flight, leader bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byK[k]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).plan, nil, false
	}
	if f, ok := s.flights[k]; ok {
		return nil, f, false
	}
	f = &flight{done: make(chan struct{})}
	s.flights[k] = f
	return nil, f, true
}

// complete resolves a leader's flight: the plan is inserted (errors are
// never cached) and waiters are released. The plan lands in the LRU
// table before the flight is retired, so a racing acquire sees either
// the flight or the cached plan, never a gap.
func (c *Cache) complete(k Key, f *flight, p *Plan, err error) {
	s := c.shard(k)
	s.mu.Lock()
	if err == nil {
		s.putLocked(k, p)
	}
	delete(s.flights, k)
	s.mu.Unlock()
	f.plan, f.err = p, err
	close(f.done)
}

// Lookup returns the cached plan for k, bumping its recency exactly
// like a Build hit. It is the read half of the warm-fill protocol: a
// peer answering GET /cache/fill serves through here.
func (c *Cache) Lookup(k Key) (*Plan, bool) {
	return c.get(k)
}

// LookupWorkload returns a resident plan whose key carries the workload
// fingerprint fp and that satisfies accept (nil accepts any), scanning
// each shard most-recent first. Unlike Lookup it matches regardless of
// estimates or stage configuration — the serving layer's brownout path
// uses it to find *any* prior plan of a workload whose estimator output
// can seed a cheap rebuild. The entry is not promoted: a scan across
// variants must not reorder the LRU.
func (c *Cache) LookupWorkload(fp uint64, accept func(*Plan) bool) (*Plan, bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			p := el.Value.(*cacheEntry).plan
			if p.Key.Workload == fp && (accept == nil || accept(p)) {
				s.mu.Unlock()
				return p, true
			}
		}
		s.mu.Unlock()
	}
	return nil, false
}

// Contains reports whether k is resident without disturbing the LRU
// order — digests and replication scans must not promote every entry
// they enumerate.
func (c *Cache) Contains(k Key) bool {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.byK[k]
	return ok
}

// Install inserts an externally produced plan — a snapshot entry or a
// warm-fill payload — as the most recent entry of its shard, exactly
// as if it had just been built.
func (c *Cache) Install(p *Plan) {
	c.put(p.Key, p)
}

// Keys returns the resident keys in eviction order (least recent
// first), concatenated across shards. The order is exact per shard and
// interleaved arbitrarily between shards, which is the same aggregate
// guarantee the LRU itself gives.
func (c *Cache) Keys() []Key {
	keys := make([]Key, 0, c.Len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Back(); el != nil; el = el.Prev() {
			keys = append(keys, el.Value.(*cacheEntry).key)
		}
		s.mu.Unlock()
	}
	return keys
}

// Plans returns the resident plans in the same order as Keys, so
// installing them sequentially into an empty cache reproduces each
// shard's recency ranking (the last installed is the most recent).
func (c *Cache) Plans() []*Plan {
	plans := make([]*Plan, 0, c.Len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Back(); el != nil; el = el.Prev() {
			plans = append(plans, el.Value.(*cacheEntry).plan)
		}
		s.mu.Unlock()
	}
	return plans
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge empties the cache. In-flight builds are untouched: their plans
// land in the emptied cache when they complete.
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.lru.Init()
		s.byK = make(map[Key]*list.Element)
		s.mu.Unlock()
	}
}
