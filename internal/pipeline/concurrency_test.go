package pipeline

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// slowDispatcher wraps the time-driven dispatcher so the test can hold a
// cold build open until enough concurrent builders have piled onto its
// flight. The name matches TimeDriven so the cache key is unaffected.
func slowDispatcher(enter chan<- struct{}, release <-chan struct{}) Dispatcher {
	return Dispatcher{Name: "time-driven", Run: func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (*sched.Schedule, error) {
		enter <- struct{}{}
		<-release
		return sched.Dispatch(g, p, asg)
	}}
}

// TestBuildCoalesces pins the singleflight contract: N concurrent builds
// of one key run the stages exactly once — one leader plans while the
// followers wait on its flight and share the one plan.
func TestBuildCoalesces(t *testing.T) {
	const followers = 7
	w := workload(t, 3)
	rec := NewRecorder(false)
	enter := make(chan struct{}, 1)
	release := make(chan struct{})
	b := &Builder{
		Dispatcher: slowDispatcher(enter, release),
		Cache:      NewCache(8),
		Recorder:   rec,
	}
	spec := Spec{Graph: w.Graph, Platform: w.Platform}

	plans := make([]*Plan, 1+followers)
	errs := make([]error, 1+followers)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); plans[0], errs[0] = b.Build(spec) }()
	<-enter // the leader is inside dispatch, holding the flight open

	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); plans[i], errs[i] = b.Build(spec) }()
	}
	// Wait until every follower has joined the flight, then let the
	// leader finish.
	for rec.Summary().Coalesced < followers {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	for i := range plans {
		if errs[i] != nil {
			t.Fatalf("builder %d failed: %v", i, errs[i])
		}
		if plans[i] != plans[0] {
			t.Fatalf("builder %d got a different plan instance", i)
		}
	}
	s := rec.Summary()
	if s.Builds != 1 {
		t.Fatalf("Builds = %d, want exactly 1 cold build", s.Builds)
	}
	if s.Coalesced != followers {
		t.Fatalf("Coalesced = %d, want %d", s.Coalesced, followers)
	}
	if s.Hits != 0 || s.Errors != 0 || s.Canceled != 0 {
		t.Fatalf("unexpected counters: %+v", s)
	}
	// A later build of the same key is a plain cache hit.
	if _, err := b.Build(spec); err != nil {
		t.Fatal(err)
	}
	if s = rec.Summary(); s.Hits != 1 || s.Builds != 1 {
		t.Fatalf("post-flight build not served from cache: %+v", s)
	}
}

// TestBuildContextCanceled pins cooperative cancellation: a done context
// ends the build at the next stage boundary with ctx.Err(), counts in
// the Canceled column (not Errors), and caches nothing.
func TestBuildContextCanceled(t *testing.T) {
	w := workload(t, 4)
	rec := NewRecorder(false)
	b := &Builder{Cache: NewCache(8), Recorder: rec}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := b.BuildContext(ctx, Spec{Graph: w.Graph, Platform: w.Platform})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	s := rec.Summary()
	if s.Canceled == 0 {
		t.Fatal("cancellation not recorded")
	}
	if s.Errors != 0 {
		t.Fatalf("cancellation counted as stage error: %+v", s)
	}
	if s.Builds != 0 || b.Cache.Len() != 0 {
		t.Fatalf("canceled build produced a cached plan: %+v, len=%d", s, b.Cache.Len())
	}
}

// TestFollowerRetriesAfterLeaderCanceled pins the retry loop: when the
// leader's own request dies mid-build, a live follower does not inherit
// the cancellation — it retries, becomes the leader, and plans.
func TestFollowerRetriesAfterLeaderCanceled(t *testing.T) {
	w := workload(t, 5)
	rec := NewRecorder(false)
	var calls atomic.Int64
	release := make(chan struct{})
	d := Dispatcher{Name: "time-driven", Run: func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (*sched.Schedule, error) {
		if calls.Add(1) == 1 {
			// First (doomed) leader: wait until the follower has joined
			// the flight, then fail as its canceled request would.
			<-release
			return nil, context.Canceled
		}
		return sched.Dispatch(g, p, asg)
	}}
	b := &Builder{Dispatcher: d, Cache: NewCache(8), Recorder: rec}
	spec := Spec{Graph: w.Graph, Platform: w.Platform}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.Build(spec); !errors.Is(err, context.Canceled) {
			t.Errorf("leader: got %v, want context.Canceled", err)
		}
	}()
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	var followerPlan *Plan
	var followerErr error
	wg.Add(1)
	go func() { defer wg.Done(); followerPlan, followerErr = b.Build(spec) }()
	for rec.Summary().Coalesced == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if followerErr != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", followerErr)
	}
	if followerPlan == nil || !followerPlan.Verdict.Feasible && followerPlan.Schedule == nil {
		t.Fatal("follower retry produced no plan")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("dispatcher ran %d times, want 2 (doomed leader + retried follower)", got)
	}
}

// TestBuildCancelStorm is the fleet's abandoned-hedge pattern at the
// pipeline layer: many requests for the same key where a large subset
// is canceled mid-flight (a hedge loser, a draining peer's proxied
// request) while the rest must still be served. Run under -race it
// checks that doomed leaders hand the flight to live followers, that
// no cancellation leaks into a surviving request, and that in the end
// the key was cold-built as if the storm never happened: one cached
// plan, zero stage errors, and a final build that is a pure hit.
func TestBuildCancelStorm(t *testing.T) {
	const (
		goroutines = 12
		perG       = 10
	)
	w := workload(t, 6)
	spec := Spec{Graph: w.Graph, Platform: w.Platform}
	rec := NewRecorder(false)
	slow := Dispatcher{Name: "time-driven", Run: func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (*sched.Schedule, error) {
		time.Sleep(100 * time.Microsecond) // widen the race window
		return sched.Dispatch(g, p, asg)
	}}
	cache := NewCache(8)

	var survivors, served atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g)))
			b := &Builder{Dispatcher: slow, Cache: cache, Recorder: rec}
			for i := 0; i < perG; i++ {
				if g%2 == 0 {
					// Survivor lane: must always be served.
					survivors.Add(1)
					if plan, err := b.Build(spec); err != nil || plan.Schedule == nil {
						t.Errorf("survivor %d/%d: %v", g, i, err)
						return
					}
					served.Add(1)
					continue
				}
				// Chaos lane: canceled at a random point mid-build, exactly
				// like a hedge race loser or a drained peer's proxy.
				ctx, cancel := context.WithCancel(context.Background())
				timer := time.AfterFunc(time.Duration(rnd.Intn(300))*time.Microsecond, cancel)
				plan, err := b.BuildContext(ctx, spec)
				timer.Stop()
				cancel()
				switch {
				case err == nil:
					if plan.Schedule == nil {
						t.Errorf("chaos %d/%d: plan without schedule", g, i)
						return
					}
				case errors.Is(err, context.Canceled):
					// Its own cancellation; never someone else's error.
				default:
					t.Errorf("chaos %d/%d: unexpected error %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if survivors.Load() != served.Load() {
		t.Fatalf("served %d of %d survivor builds", served.Load(), survivors.Load())
	}
	s := rec.Summary()
	if s.Errors != 0 {
		t.Fatalf("cancel storm surfaced stage errors: %+v", s)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d plans, want 1", cache.Len())
	}
	// The storm settled: one more build is a plain hit, no rebuild.
	before := s.Builds
	b := &Builder{Dispatcher: slow, Cache: cache, Recorder: rec}
	if _, err := b.Build(spec); err != nil {
		t.Fatal(err)
	}
	if after := rec.Summary(); after.Builds != before || after.Hits != s.Hits+1 {
		t.Fatalf("post-storm build not a pure cache hit: before %+v after %+v", s, after)
	}
}

// TestBuildConcurrentStress drives many goroutines through one shared
// small cache with a mix of distinct keys, repeats, and overlapping
// builds. Run under -race it checks the sharded cache and the flight
// table; the accounting identity checks no request was double-served:
// every Build ends as exactly one cold build, cache hit, or coalesced
// wait.
func TestBuildConcurrentStress(t *testing.T) {
	const (
		goroutines = 16
		perG       = 30
		seeds      = 5
	)
	specs := make([]Spec, seeds)
	for i := range specs {
		w := workload(t, int64(10+i))
		specs[i] = Spec{Graph: w.Graph, Platform: w.Platform}
	}
	rec := NewRecorder(false)
	// Capacity below the working set would still be correct, but evicted
	// keys rebuild, breaking the Builds ≤ seeds check; keep them all.
	cache := NewCache(64)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := &Builder{Cache: cache, Recorder: rec}
			for i := 0; i < perG; i++ {
				plan, err := b.Build(specs[(g+i)%seeds])
				if err != nil {
					t.Errorf("goroutine %d build %d: %v", g, i, err)
					return
				}
				if plan.Schedule == nil {
					t.Errorf("goroutine %d build %d: plan without schedule", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := rec.Summary()
	total := s.Builds + s.Hits + s.Coalesced
	if total != goroutines*perG {
		t.Fatalf("Builds+Hits+Coalesced = %d, want %d: %+v", total, goroutines*perG, s)
	}
	if s.Builds < seeds {
		t.Fatalf("Builds = %d, want at least one per distinct key (%d)", s.Builds, seeds)
	}
	if s.Errors != 0 || s.Canceled != 0 {
		t.Fatalf("stress run recorded incidents: %+v", s)
	}
	if got := cache.Len(); got != seeds {
		t.Fatalf("cache holds %d plans, want %d", got, seeds)
	}
}
